// Tests for the caching recursive resolver service (§4.1).
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "resolver/recursive.hpp"

namespace sns::resolver {
namespace {

using dns::name_of;
using dns::Rcode;
using dns::RRType;

struct Fixture {
  core::WhiteHouseWorld world = core::make_white_house_world(123);
  core::SnsDeployment& d = *world.deployment;
};

TEST(Recursive, ResolvesOnBehalfOfStub) {
  Fixture f;
  net::NodeId service = f.d.add_recursive_resolver("isp-resolver", nullptr);
  net::NodeId client = f.d.add_client("laptop", *f.world.cabinet_room, false);
  f.d.network().connect(client, service, net::lan_link());

  auto stub = f.d.make_plain_stub(client, service);
  auto result = stub.resolve(f.world.display, RRType::AAAA);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().stats.rcode, Rcode::NoError);
  ASSERT_FALSE(result.value().records.empty());
  EXPECT_EQ(result.value().records.front().type, RRType::AAAA);
}

TEST(Recursive, RaBitSetAndAaClear) {
  Fixture f;
  net::NodeId service = f.d.add_recursive_resolver("isp-resolver", nullptr);
  RecursiveResolver direct(f.d.network(), service, f.d.directory(), f.d.root_node());
  auto response = direct.handle(dns::make_query(1, f.world.display, RRType::AAAA));
  EXPECT_TRUE(response.header.ra);
  EXPECT_FALSE(response.header.aa);
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
}

TEST(Recursive, RefusesWithoutRdBit) {
  Fixture f;
  net::NodeId service = f.d.add_recursive_resolver("isp-resolver", nullptr);
  RecursiveResolver direct(f.d.network(), service, f.d.directory(), f.d.root_node());
  auto response =
      direct.handle(dns::make_query(1, f.world.display, RRType::AAAA, /*rd=*/false));
  EXPECT_EQ(response.header.rcode, Rcode::Refused);
}

TEST(Recursive, CacheCutsLatencyForSecondClient) {
  Fixture f;
  net::NodeId service = f.d.add_recursive_resolver("isp-resolver", nullptr);
  net::NodeId alice = f.d.add_client("alice", *f.world.cabinet_room, false);
  net::NodeId bob = f.d.add_client("bob", *f.world.cabinet_room, false);
  f.d.network().connect(alice, service, net::lan_link());
  f.d.network().connect(bob, service, net::lan_link());

  auto alice_stub = f.d.make_plain_stub(alice, service);
  auto cold = alice_stub.resolve(f.world.display, RRType::AAAA);
  ASSERT_TRUE(cold.ok());

  // Bob benefits from Alice's lookup: the shared cache answers.
  auto bob_stub = f.d.make_plain_stub(bob, service);
  auto warm = bob_stub.resolve(f.world.display, RRType::AAAA);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().stats.rcode, Rcode::NoError);
  // Warm answer costs ~one LAN RTT; cold cost a full WAN descent.
  EXPECT_LT(warm.value().stats.latency * 20, cold.value().stats.latency);
}

TEST(Recursive, ClientRttIncludesUpstreamWork) {
  // The client's observed latency must include the recursion the
  // service performed (nested virtual time accounting).
  Fixture f;
  net::NodeId service = f.d.add_recursive_resolver("isp-resolver", nullptr);
  net::NodeId client = f.d.add_client("laptop", *f.world.cabinet_room, false);
  f.d.network().connect(client, service, net::lan_link());
  auto stub = f.d.make_plain_stub(client, service);
  stub.set_timeout(net::ms(30000), 1);

  auto result = stub.resolve(f.world.display, RRType::AAAA);
  ASSERT_TRUE(result.ok());
  // Full descent is many WAN hops: hundreds of virtual ms, far more
  // than the client<->service LAN RTT (~0.5 ms).
  EXPECT_GT(result.value().stats.latency, net::ms(100));
}

TEST(Recursive, NegativeAnswersPropagate) {
  Fixture f;
  net::NodeId service = f.d.add_recursive_resolver("isp-resolver", nullptr);
  RecursiveResolver direct(f.d.network(), service, f.d.directory(), f.d.root_node());
  auto response = direct.handle(
      dns::make_query(1, name_of("nonexistent.usa.loc"), RRType::A));
  EXPECT_EQ(response.header.rcode, Rcode::NXDomain);
}

TEST(Recursive, InsideBoundaryResolverSeesInternalView) {
  // A recursive resolver deployed inside the White House LAN serves the
  // internal view to its (internal) clients.
  Fixture f;
  net::NodeId service = f.d.add_recursive_resolver("wh-resolver", f.world.white_house);
  net::NodeId client = f.d.add_client("staff-laptop", *f.world.white_house, true);
  f.d.network().connect(client, service, net::lan_link());
  auto stub = f.d.make_plain_stub(client, service);
  auto result = stub.resolve(f.world.speaker, RRType::BDADDR);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().stats.rcode, Rcode::NoError);
  ASSERT_FALSE(result.value().records.empty());
}

}  // namespace
}  // namespace sns::resolver
