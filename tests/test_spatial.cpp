// Tests for the spatial query subsystem (src/spatial/): AREA rdata
// round-trips, query-box validation (FORMERR semantics), SpatialView
// build/query against a naive filter, the incremental rebuild's
// equivalence with a from-scratch build (mirroring the answer-cache
// test in test_zone_txn.cpp), and the compaction fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "dns/loc.hpp"
#include "dns/message.hpp"
#include "server/zone.hpp"
#include "spatial/area.hpp"
#include "spatial/spatial_view.hpp"
#include "util/rng.hpp"

namespace sns::spatial {
namespace {

using dns::make_loc;
using dns::make_ns;
using dns::make_soa;
using dns::make_txt;
using dns::name_of;
using dns::Name;
using dns::RRType;
using geo::BoundingBox;
using server::ZoneTxn;
using server::ZoneViewPtr;

const Name kApex = name_of("city.loc");

Name sub(const std::string& label) { return name_of(label + ".city.loc"); }

dns::LocData loc_at(double lat, double lon) {
  auto loc = dns::LocData::from_degrees(lat, lon);
  EXPECT_TRUE(loc.ok());
  return loc.value();
}

/// A zone of `n` devices placed deterministically in a small city
/// block around (38.9, -77.04).
ZoneViewPtr city_view(int n, std::uint64_t seed = 42) {
  util::Rng rng(seed);
  server::ZoneBuilder builder(kApex);
  (void)builder.add(make_soa(kApex, sub("ns"), 1));
  (void)builder.add(make_ns(kApex, sub("ns")));
  for (int i = 0; i < n; ++i) {
    double lat = 38.88 + rng.next_double(0, 0.04);
    double lon = -77.06 + rng.next_double(0, 0.04);
    (void)builder.add(make_loc(sub("dev" + std::to_string(i)), loc_at(lat, lon)));
  }
  auto view = std::move(builder).build();
  EXPECT_TRUE(view.ok());
  return std::move(view).value();
}

/// Oracle: filter on the same decoded degrees the view indexes.
std::set<std::string> naive_in_box(const ZoneViewPtr& view, const BoundingBox& box) {
  std::set<std::string> names;
  for (const auto& rr : view->all_records()) {
    const auto* loc = std::get_if<dns::LocData>(&rr.rdata);
    if (loc == nullptr) continue;
    if (box.contains(geo::GeoPoint{loc->latitude_degrees(), loc->longitude_degrees(), 0}))
      names.insert(rr.name.to_string());
  }
  return names;
}

std::set<std::string> view_in_box(const SpatialView& view, const BoundingBox& box,
                                  std::size_t limit = kMaxAreaAnswers) {
  std::vector<const Device*> matched;
  view.query(box, limit, matched);
  std::set<std::string> names;
  for (const auto* dev : matched) names.insert(dev->name.to_string());
  return names;
}

TEST(AreaRdata, WireRoundTripIsExact) {
  // 1e-7-degree fixed point divides back out exactly in a double, so
  // decode(encode(x)) == quantize(x); representable values round-trip
  // bit-for-bit.
  dns::AreaData area{-33.8675, 151.207, -33.75, 151.3};
  dns::ResourceRecord rr;
  rr.name = kApex;
  rr.type = RRType::AREA;
  rr.rdata = area;

  util::ByteWriter w;
  rr.encode(w, nullptr);
  auto wire = std::move(w).take();
  util::ByteReader reader{std::span<const std::uint8_t>(wire)};
  auto decoded = dns::ResourceRecord::decode(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  const auto* round = std::get_if<dns::AreaData>(&decoded.value().rdata);
  ASSERT_NE(round, nullptr);
  EXPECT_DOUBLE_EQ(round->min_lat, area.min_lat);
  EXPECT_DOUBLE_EQ(round->min_lon, area.min_lon);
  EXPECT_DOUBLE_EQ(round->max_lat, area.max_lat);
  EXPECT_DOUBLE_EQ(round->max_lon, area.max_lon);
}

TEST(AreaRdata, PresentationFormatParsesBack) {
  dns::AreaData area{-1.5, -2.25, 3.5, 4.75};
  auto text = dns::rdata_to_string(area);
  EXPECT_EQ(text, "-1.5000000 -2.2500000 3.5000000 4.7500000");
}

TEST(AreaProtocol, MakeQueryParsesBack) {
  BoundingBox box{38.88, -77.06, 38.92, -77.02};
  auto query = make_area_query(0x1234, kApex, box);
  EXPECT_TRUE(is_area_query(query));
  auto parsed = parse_area_query(query);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), box);
  // EDNS riding along must not confuse the parser.
  dns::add_edns(query, 1232);
  auto with_opt = parse_area_query(query);
  ASSERT_TRUE(with_opt.ok());
  EXPECT_EQ(with_opt.value(), box);
}

TEST(AreaProtocol, MalformedBoxesRejected) {
  // Missing box entirely.
  auto bare = dns::make_query(1, kApex, RRType::AREA);
  EXPECT_FALSE(parse_area_query(bare).ok());
  // Two boxes.
  auto twice = make_area_query(2, kApex, BoundingBox{0, 0, 1, 1});
  twice.additionals.push_back(twice.additionals[0]);
  EXPECT_FALSE(parse_area_query(twice).ok());
  // Inverted latitude span.
  EXPECT_FALSE(parse_area_query(make_area_query(3, kApex, BoundingBox{5, 0, 4, 1})).ok());
  // Antimeridian wrap (min_lon > max_lon).
  EXPECT_FALSE(
      parse_area_query(make_area_query(4, kApex, BoundingBox{0, 179.0, 1, -179.0})).ok());
  // Out-of-range coordinates.
  EXPECT_FALSE(
      parse_area_query(make_area_query(5, kApex, BoundingBox{-91.0, 0, 0, 1})).ok());
  EXPECT_FALSE(
      parse_area_query(make_area_query(6, kApex, BoundingBox{0, 0, 1, 180.5})).ok());
}

TEST(AreaProtocol, AnswerAreaRcodes) {
  auto zone = city_view(16);
  auto view = SpatialView::build({zone});

  // Foreign qname: refused, not FORMERR.
  auto foreign = make_area_query(7, name_of("elsewhere.loc"), BoundingBox{0, 0, 1, 1});
  EXPECT_EQ(answer_area(foreign, view.get(), {zone}).header.rcode, dns::Rcode::Refused);

  // Bad box under our apex: FORMERR.
  auto wrapped = make_area_query(8, kApex, BoundingBox{0, 10.0, 1, -10.0});
  EXPECT_EQ(answer_area(wrapped, view.get(), {zone}).header.rcode, dns::Rcode::FormErr);

  // Good box: NoError, LOC answers, authoritative.
  auto good = make_area_query(9, kApex, BoundingBox{38.0, -78.0, 39.0, -77.0});
  auto response = answer_area(good, view.get(), {zone});
  EXPECT_EQ(response.header.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(response.header.qr);
  EXPECT_TRUE(response.header.aa);
  EXPECT_EQ(response.answers.size(), 16u);
  for (const auto& rr : response.answers) EXPECT_EQ(rr.type, RRType::LOC);

  // Null view (spatial disabled) answers empty, not an error.
  auto disabled = answer_area(good, nullptr, {zone});
  EXPECT_EQ(disabled.header.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(disabled.answers.empty());
}

TEST(SpatialViewBuild, MatchesNaiveFilterOnRandomBoxes) {
  auto zone = city_view(300);
  auto view = SpatialView::build({zone});
  EXPECT_EQ(view->size(), 300u);

  util::Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    double lat = 38.87 + rng.next_double(0, 0.05);
    double lon = -77.07 + rng.next_double(0, 0.05);
    BoundingBox box{lat, lon, lat + rng.next_double(0.0005, 0.02),
                    lon + rng.next_double(0.0005, 0.02)};
    EXPECT_EQ(view_in_box(*view, box), naive_in_box(zone, box)) << box.to_string();
  }
}

TEST(SpatialViewBuild, ScopeNarrowsToSubtree) {
  server::ZoneBuilder builder(kApex);
  (void)builder.add(make_soa(kApex, sub("ns"), 1));
  (void)builder.add(make_loc(sub("cam.floor1"), loc_at(10.0, 10.0)));
  (void)builder.add(make_loc(sub("cam.floor2"), loc_at(10.001, 10.001)));
  auto zone = std::move(builder).build();
  ASSERT_TRUE(zone.ok());
  auto view = SpatialView::build({zone.value()});

  BoundingBox everything{9.0, 9.0, 11.0, 11.0};
  std::vector<const Device*> all;
  view->query(everything, kMaxAreaAnswers, all);
  EXPECT_EQ(all.size(), 2u);

  Name floor1 = sub("floor1");
  std::vector<const Device*> scoped;
  view->query(everything, kMaxAreaAnswers, scoped, &floor1);
  ASSERT_EQ(scoped.size(), 1u);
  EXPECT_EQ(scoped[0]->name, sub("cam.floor1"));
}

TEST(SpatialViewBuild, WildcardAndOccludedOwnersNotIndexed) {
  server::ZoneBuilder builder(kApex);
  (void)builder.add(make_soa(kApex, sub("ns"), 1));
  (void)builder.add(make_loc(sub("real"), loc_at(5.0, 5.0)));
  (void)builder.add(make_loc(name_of("*.wild.city.loc"), loc_at(5.0, 5.0)));
  // LOC under a delegation cut: a query for it would get a referral,
  // so the spatial index must skip it too.
  (void)builder.add(make_ns(sub("child"), name_of("ns.child.city.loc")));
  (void)builder.add(make_loc(sub("cam.child"), loc_at(5.0, 5.0)));
  auto zone = std::move(builder).build();
  ASSERT_TRUE(zone.ok());

  auto view = SpatialView::build({zone.value()});
  EXPECT_EQ(view_in_box(*view, BoundingBox{4, 4, 6, 6}),
            (std::set<std::string>{"real.city.loc"}));
}

/// Mirror of AnswerCacheRebuild.IncrementalMatchesFullBuildAfterCommit:
/// a commit re-homes one device, removes another and adds a third; the
/// incremental SpatialView must answer every probe box identically to a
/// from-scratch build of the new views.
TEST(SpatialViewRebuild, IncrementalMatchesFullBuildAfterCommit) {
  auto base = city_view(64);
  auto before = SpatialView::build({base});

  ZoneTxn txn(base);
  // dev3 re-homes across town.
  EXPECT_EQ(txn.remove_rrset(sub("dev3"), RRType::LOC), 1u);
  ASSERT_TRUE(txn.add(make_loc(sub("dev3"), loc_at(38.885, -77.025))).ok());
  // dev5 disappears.
  EXPECT_EQ(txn.remove_rrset(sub("dev5"), RRType::LOC), 1u);
  // dev-new appears.
  ASSERT_TRUE(txn.add(make_loc(sub("dev-new"), loc_at(38.9, -77.045))).ok());
  auto commit = std::move(txn).commit();
  ASSERT_FALSE(commit.ns_touched);

  auto incremental = SpatialView::rebuild(*before, {base}, {commit.view}, commit.touched);
  auto full = SpatialView::build({commit.view});
  EXPECT_EQ(incremental->size(), full->size());

  util::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    double lat = 38.87 + rng.next_double(0, 0.05);
    double lon = -77.07 + rng.next_double(0, 0.05);
    BoundingBox box{lat, lon, lat + rng.next_double(0.001, 0.05),
                    lon + rng.next_double(0.001, 0.05)};
    EXPECT_EQ(view_in_box(*incremental, box), view_in_box(*full, box)) << box.to_string();
  }
  // The whole city, scoped checks included.
  BoundingBox all{38.0, -78.0, 39.0, -77.0};
  EXPECT_EQ(view_in_box(*incremental, all), view_in_box(*full, all));
  EXPECT_FALSE(view_in_box(*incremental, all).contains("dev5.city.loc"));
  EXPECT_TRUE(view_in_box(*incremental, all).contains("dev-new.city.loc"));

  // A second chained commit keeps agreeing (overlay on overlay).
  ZoneTxn txn2(commit.view);
  EXPECT_EQ(txn2.remove_rrset(sub("dev3"), RRType::LOC), 1u);
  ASSERT_TRUE(txn2.add(make_loc(sub("dev3"), loc_at(38.91, -77.03))).ok());
  auto commit2 = std::move(txn2).commit();
  auto chained =
      SpatialView::rebuild(*incremental, {commit.view}, {commit2.view}, commit2.touched);
  auto full2 = SpatialView::build({commit2.view});
  EXPECT_EQ(view_in_box(*chained, all), view_in_box(*full2, all));
  EXPECT_EQ(chained->size(), full2->size());
}

TEST(SpatialViewRebuild, OverlayCompactsPastTheLimit) {
  // Touch more owners than kCompactLimit in one rebuild: the view must
  // fall back to a fresh flat build (empty overlay) and still agree
  // with a from-scratch build.
  const int n = static_cast<int>(SpatialView::kCompactLimit) / 2 + 64;
  auto base = city_view(n);
  auto before = SpatialView::build({base});
  EXPECT_EQ(before->overlay_size(), 0u);

  ZoneTxn txn(base);
  EXPECT_EQ(txn.remove_rrset(sub("dev0"), RRType::LOC), 1u);
  ASSERT_TRUE(txn.add(make_loc(sub("dev0"), loc_at(38.9, -77.05))).ok());
  auto commit = std::move(txn).commit();

  // Claim every device owner was touched — each re-derives to its
  // unchanged records, but the overlay (tombstone + re-add per owner)
  // blows past the cap and triggers compaction.
  std::vector<Name> touched;
  for (int i = 0; i < n; ++i) touched.push_back(sub("dev" + std::to_string(i)));
  auto rebuilt = SpatialView::rebuild(*before, {base}, {commit.view}, touched);
  EXPECT_EQ(rebuilt->overlay_size(), 0u);

  // Compare with an uncapped limit: the set is bigger than the wire
  // answer cap, and base-then-delta scan order means a capped query
  // legitimately returns a different prefix than a flat one.
  const std::size_t everyone = static_cast<std::size_t>(n) * 2;
  auto full = SpatialView::build({commit.view});
  EXPECT_EQ(rebuilt->size(), full->size());
  BoundingBox all{38.0, -78.0, 39.0, -77.0};
  EXPECT_EQ(view_in_box(*rebuilt, all, everyone), view_in_box(*full, all, everyone));

  // A small touched set on the same commit stays incremental.
  auto small = SpatialView::rebuild(*before, {base}, {commit.view}, commit.touched);
  EXPECT_GT(small->overlay_size(), 0u);
  EXPECT_EQ(view_in_box(*small, all, everyone), view_in_box(*full, all, everyone));
}

TEST(SpatialViewQuery, AnswerCapRespected) {
  auto zone = city_view(50);
  auto view = SpatialView::build({zone});
  std::vector<const Device*> matched;
  auto appended = view->query(BoundingBox{38.0, -78.0, 39.0, -77.0}, 10, matched);
  EXPECT_EQ(appended, 10u);
  EXPECT_EQ(matched.size(), 10u);
}

}  // namespace
}  // namespace sns::spatial
