// Tests for the master-file (zone file) parser, including spatial zones
// with SNS extended types.
#include <gtest/gtest.h>

#include "dns/master.hpp"

namespace sns::dns {
namespace {

const Name kOrigin = name_of("oval-office.1600.penn-ave.washington.dc.usa.loc");

TEST(Master, PaperExampleZone) {
  const char* text = R"(
$ORIGIN oval-office.1600.penn-ave.washington.dc.usa.loc.
$TTL 300
@        IN SOA  ns hostmaster 1 3600 600 86400 60
@        IN NS   ns
ns       IN A    10.0.0.5
mic      IN BDADDR 01:23:45:67:89:ab
mic      IN WIFI "wh-iot" 192.0.3.10
speaker  IN BDADDR 0a:1b:2c:3d:4e:5f
speaker  IN DTMF 421#
display  IN AAAA 2001:db8:0:1::12
display  IN LOC  38 53 50.4 N 77 2 14.4 W 18.5m
)";
  auto records = parse_master_file(text, Name{});
  ASSERT_TRUE(records.ok()) << records.error().message;
  ASSERT_EQ(records.value().size(), 9u);

  const auto& soa = records.value()[0];
  EXPECT_EQ(soa.type, RRType::SOA);
  EXPECT_EQ(soa.name, kOrigin);
  EXPECT_EQ(std::get<SoaData>(soa.rdata).mname, name_of("ns." + kOrigin.to_string()));

  const auto& mic_bd = records.value()[3];
  EXPECT_EQ(mic_bd.type, RRType::BDADDR);
  EXPECT_EQ(mic_bd.ttl, 300u);
  EXPECT_EQ(mic_bd.name, name_of("mic." + kOrigin.to_string()));
  EXPECT_EQ(std::get<BdaddrData>(mic_bd.rdata).address.to_string(), "01:23:45:67:89:ab");

  const auto& wifi = records.value()[4];
  EXPECT_EQ(std::get<WifiData>(wifi.rdata).ssid, "wh-iot");
}

TEST(Master, TtlAndClassOrderFlexible) {
  auto a = parse_master_file("host 600 IN A 1.2.3.4", kOrigin);
  auto b = parse_master_file("host IN 600 A 1.2.3.4", kOrigin);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value()[0], b.value()[0]);
  EXPECT_EQ(a.value()[0].ttl, 600u);
}

TEST(Master, TtlUnits) {
  auto records = parse_master_file("$TTL 2h\nhost IN A 1.2.3.4", kOrigin);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.value()[0].ttl, 7200u);
  auto weeks = parse_master_file("host 1w IN A 1.2.3.4", kOrigin);
  ASSERT_TRUE(weeks.ok());
  EXPECT_EQ(weeks.value()[0].ttl, 604800u);
}

TEST(Master, OmittedOwnerRepeatsPrevious) {
  const char* text =
      "mic IN BDADDR 01:23:45:67:89:ab\n"
      "    IN A 192.0.3.10\n";
  auto records = parse_master_file(text, kOrigin);
  ASSERT_TRUE(records.ok()) << records.error().message;
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0].name, records.value()[1].name);
}

TEST(Master, FirstRecordCannotOmitOwner) {
  EXPECT_FALSE(parse_master_file("  IN A 1.2.3.4", kOrigin).ok());
}

TEST(Master, ParenthesesContinuation) {
  const char* text = R"(
@ IN SOA ns.example.com. hostmaster.example.com. (
        42      ; serial
        3600    ; refresh
        600     ; retry
        86400   ; expire
        60 )    ; minimum
)";
  auto records = parse_master_file(text, kOrigin);
  ASSERT_TRUE(records.ok()) << records.error().message;
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(std::get<SoaData>(records.value()[0].rdata).serial, 42u);
  EXPECT_EQ(std::get<SoaData>(records.value()[0].rdata).minimum, 60u);
}

TEST(Master, UnbalancedParenthesesRejected) {
  EXPECT_FALSE(parse_master_file("@ IN SOA a. b. ( 1 2 3 4", kOrigin).ok());
}

TEST(Master, CommentsIgnored) {
  auto records = parse_master_file("; just a comment\nhost IN A 1.2.3.4 ; trailing\n", kOrigin);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.value().size(), 1u);
}

TEST(Master, RelativeNamesInRdata) {
  const char* text =
      "$ORIGIN zone.loc.\n"
      "www IN CNAME server\n"
      "@   IN NS ns\n"
      "@   IN MX 10 mail\n"
      "srv IN SRV 0 0 80 web\n";
  auto records = parse_master_file(text, Name{});
  ASSERT_TRUE(records.ok()) << records.error().message;
  EXPECT_EQ(std::get<CnameData>(records.value()[0].rdata).target, name_of("server.zone.loc"));
  EXPECT_EQ(std::get<NsData>(records.value()[1].rdata).nameserver, name_of("ns.zone.loc"));
  EXPECT_EQ(std::get<MxData>(records.value()[2].rdata).exchange, name_of("mail.zone.loc"));
  EXPECT_EQ(std::get<SrvData>(records.value()[3].rdata).target, name_of("web.zone.loc"));
}

TEST(Master, AbsoluteNamesUntouched) {
  auto records = parse_master_file("www IN CNAME other.example.com.", kOrigin);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(std::get<CnameData>(records.value()[0].rdata).target, name_of("other.example.com"));
}

TEST(Master, ErrorsCarryLineNumbers) {
  auto bad = parse_master_file("host IN A 1.2.3.4\nbroken IN NOPE foo\n", kOrigin);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("line 2"), std::string::npos);
}

TEST(Master, MissingTypeRejected) {
  EXPECT_FALSE(parse_master_file("host IN", kOrigin).ok());
  EXPECT_FALSE(parse_master_file("host 300", kOrigin).ok());
}

TEST(Master, SerializeParseRoundTrip) {
  const char* text = R"(
$ORIGIN room.loc.
$TTL 120
@       IN SOA ns hostmaster 5 3600 600 86400 60
mic     IN BDADDR 01:23:45:67:89:ab
mic     IN WIFI "net" 192.0.3.1
speaker IN DTMF 12#
lamp    IN LORA gw.room.loc. 01ab23cd
)";
  auto records = parse_master_file(text, Name{});
  ASSERT_TRUE(records.ok()) << records.error().message;
  std::string serialized = to_master_file(std::span(records.value()));
  auto reparsed = parse_master_file(serialized, Name{});
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message << "\n" << serialized;
  EXPECT_EQ(reparsed.value(), records.value());
}

TEST(Master, EmptyInputYieldsNoRecords) {
  auto records = parse_master_file("\n\n; nothing\n", kOrigin);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records.value().empty());
}

}  // namespace
}  // namespace sns::dns
