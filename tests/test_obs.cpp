// Tests for the observability subsystem: counter/gauge/histogram math,
// span trees over a real multi-referral resolution, and JSON export.
#include <gtest/gtest.h>

#include <cmath>

#include "core/deployment.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resolver/cache.hpp"
#include "resolver/iterative.hpp"

namespace sns::obs {
namespace {

using dns::Rcode;
using dns::RRType;

// --- Counters and gauges -----------------------------------------------------

TEST(Metrics, CounterArithmetic) {
  MetricsRegistry registry;
  registry.counter("a.b.c").add();
  registry.counter("a.b.c").add(41);
  EXPECT_EQ(registry.counter("a.b.c").value(), 42u);
  EXPECT_EQ(registry.counter_value("a.b.c"), 42u);
  EXPECT_EQ(registry.counter_value("no.such"), std::nullopt);

  registry.counter("a.b.c").reset();
  EXPECT_EQ(registry.counter("a.b.c").value(), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry registry;
  registry.gauge("g").set(2.5);
  registry.gauge("g").add(-1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 1.5);
}

TEST(Metrics, MergeHonoursGaugePolicy) {
  // Shard registries fold into a fleet total: additive gauges sum,
  // Max-policy gauges (e.g. the snapshot generation every shard
  // reports independently) take the maximum instead of multiplying by
  // the shard count.
  MetricsRegistry shard_a, shard_b, total;
  shard_a.counter("server.queries").add(3);
  shard_b.counter("server.queries").add(4);
  shard_a.gauge("runtime.worker.connections").set(5.0);
  shard_b.gauge("runtime.worker.connections").set(2.0);
  for (auto* shard : {&shard_a, &shard_b}) {
    auto& gen = shard->gauge("runtime.worker.snapshot_generation");
    gen.set_merge(Gauge::Merge::Max);
    gen.set(9.0);
  }

  total.merge_from(shard_a);
  total.merge_from(shard_b);
  EXPECT_EQ(total.counter_value("server.queries"), 7u);
  EXPECT_DOUBLE_EQ(total.gauge_value("runtime.worker.connections").value(), 7.0);
  EXPECT_DOUBLE_EQ(total.gauge_value("runtime.worker.snapshot_generation").value(), 9.0);
}

TEST(Metrics, ReferencesStayStableAcrossInserts) {
  MetricsRegistry registry;
  Counter& first = registry.counter("first");
  for (int i = 0; i < 100; ++i) registry.counter("other." + std::to_string(i));
  first.add(7);
  EXPECT_EQ(registry.counter_value("first"), 7u);
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, BasicStatistics) {
  Histogram h;
  for (std::uint64_t v : {10u, 20u, 30u, 40u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantilesWithinLogLinearError) {
  // 16 sub-buckets per octave bound the relative quantile error at
  // ~1/16; use 7% as the test tolerance.
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_NEAR(h.p50(), 5000.0, 5000.0 * 0.07);
  EXPECT_NEAR(h.p90(), 9000.0, 9000.0 * 0.07);
  EXPECT_NEAR(h.p99(), 9900.0, 9900.0 * 0.07);
  // Quantiles are clamped to observed extremes.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 10000.0);
}

TEST(Histogram, SingleValueQuantilesAreExact) {
  Histogram h;
  h.record(777);
  EXPECT_DOUBLE_EQ(h.p50(), 777.0);
  EXPECT_DOUBLE_EQ(h.p99(), 777.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(123);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

// --- JSON export -------------------------------------------------------------

TEST(Json, WriterEscapesAndNests) {
  JsonWriter w;
  w.begin_object();
  w.field("plain", "value");
  w.field("tricky", "a\"b\\c\nd");
  w.begin_array("list");
  w.value(std::int64_t{1});
  w.value(true);
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"plain\":\"value\",\"tricky\":\"a\\\"b\\\\c\\nd\",\"list\":[1,true]}");
}

TEST(Metrics, JsonExportRoundTrip) {
  MetricsRegistry registry;
  registry.counter("resolver.cache.hit").add(3);
  registry.gauge("load").set(0.5);
  registry.histogram("net.hop.latency_us").record(1000);
  registry.histogram("net.hop.latency_us").record(3000);

  std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"resolver.cache.hit\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":4000"), std::string::npos);

  // The export reflects live state: another hit shows up on re-export.
  registry.counter("resolver.cache.hit").add();
  EXPECT_NE(registry.to_json().find("\"resolver.cache.hit\":4"), std::string::npos);
}

// --- Tracer ------------------------------------------------------------------

TEST(Tracer, SpansNestViaStack) {
  net::SimClock clock;
  Tracer tracer(clock);
  tracer.begin_span("outer");
  clock.advance(net::ms(1));
  tracer.begin_span("inner");
  clock.advance(net::ms(2));
  tracer.end_span();
  tracer.end_span();

  ASSERT_EQ(tracer.roots().size(), 1u);
  const Span& outer = tracer.roots().front();
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.duration(), net::ms(3));
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0].name, "inner");
  EXPECT_EQ(outer.children[0].duration(), net::ms(2));
  EXPECT_EQ(outer.depth(), 2);
  EXPECT_EQ(outer.count("inner"), 1);
}

TEST(Tracer, ScopedSpanAnnotatesItselfNotOpenChild) {
  net::SimClock clock;
  Tracer tracer(clock);
  {
    ScopedSpan parent(&tracer, "parent");
    ScopedSpan child(&tracer, "child");
    parent.annotate("who", "parent");  // child is still open
    child.annotate("who", "child");
  }
  ASSERT_EQ(tracer.roots().size(), 1u);
  const Span& parent = tracer.roots().front();
  ASSERT_NE(parent.attribute("who"), nullptr);
  EXPECT_EQ(*parent.attribute("who"), "parent");
  ASSERT_EQ(parent.children.size(), 1u);
  EXPECT_EQ(*parent.children[0].attribute("who"), "child");
}

TEST(Tracer, NullTracerIsSafe) {
  ScopedSpan span(nullptr, "nothing");
  span.annotate("key", "value");
  trace_event(nullptr, "event");  // must not crash
}

TEST(Tracer, BoundedRootsDropOldest) {
  net::SimClock clock;
  Tracer tracer(clock, /*max_roots=*/2);
  for (int i = 0; i < 5; ++i) trace_event(&tracer, "e" + std::to_string(i));
  ASSERT_EQ(tracer.roots().size(), 2u);
  EXPECT_EQ(tracer.roots()[0].name, "e3");
  EXPECT_EQ(tracer.roots()[1].name, "e4");
}

TEST(Tracer, JsonExportShapesSpans) {
  net::SimClock clock;
  Tracer tracer(clock);
  {
    ScopedSpan span(&tracer, "root");
    span.annotate("k", "v");
    trace_event(&tracer, "leaf");
  }
  std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"attrs\":{\"k\":\"v\"}"), std::string::npos);
  EXPECT_NE(json.find("\"children\":[{\"name\":\"leaf\""), std::string::npos);
}

// --- End-to-end: spans + metrics through the White House world ---------------

TEST(ObsIntegration, IterativeResolutionProducesDeepSpanTree) {
  auto world = core::make_white_house_world(9001);
  auto& d = *world.deployment;
  net::NodeId client = d.add_client("remote", *world.cabinet_room, false);
  auto iterative = d.make_iterative(client);

  auto result = iterative.resolve(world.display, RRType::AAAA);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().stats.rcode, Rcode::NoError);

  ASSERT_FALSE(d.tracer().roots().empty());
  const Span& root = d.tracer().roots().back();
  EXPECT_EQ(root.name, "resolver.iterative");
  // resolver.iterative -> resolver.hop -> resolver.branch ->
  // net.exchange -> server.handle: well past the required 3 levels.
  EXPECT_GE(root.depth(), 3);
  // Root -> loc -> usa -> dc -> washington -> penn-ave -> 1600 ->
  // oval-office: one hop span per descent level.
  EXPECT_GE(root.count("resolver.hop"), 7);
  EXPECT_GE(root.count("resolver.branch"), 7);
  EXPECT_GE(root.count("net.exchange"), 7);
  EXPECT_GE(root.count("server.handle"), 7);
  EXPECT_GE(root.count("resolver.referral"), 6);
  ASSERT_NE(root.attribute("rcode"), nullptr);
  EXPECT_EQ(*root.attribute("rcode"), "NOERROR");

  // Metric side of the same story.
  EXPECT_GE(d.metrics().counter_value("resolver.iterative.queries").value_or(0),
            static_cast<std::uint64_t>(result.value().stats.queries_sent));
  const Histogram* hops = d.metrics().find_histogram("net.hop.latency_us");
  ASSERT_NE(hops, nullptr);
  EXPECT_GE(hops->count(), 7u);
}

TEST(ObsIntegration, CacheCountersMatchStubBehaviour) {
  auto world = core::make_white_house_world(9002);
  auto& d = *world.deployment;
  net::NodeId client = d.add_client("device", *world.oval_office, true);
  auto stub = d.make_stub(client, *world.oval_office);
  resolver::DnsCache cache;
  cache.set_metrics(&d.metrics());
  stub.set_cache(&cache);

  auto first = stub.resolve("speaker", RRType::A);
  ASSERT_TRUE(first.ok()) << first.error().message;
  EXPECT_FALSE(first.value().stats.from_cache);
  auto second = stub.resolve("speaker", RRType::A);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().stats.from_cache);

  // One miss (first probe), one hit (second probe); inserts recorded.
  EXPECT_EQ(d.metrics().counter_value("resolver.cache.hit").value_or(0), 1u);
  EXPECT_GE(d.metrics().counter_value("resolver.cache.miss").value_or(0), 1u);
  EXPECT_GE(d.metrics().counter_value("resolver.cache.insert").value_or(0), 1u);

  // The stub's latency histogram saw exactly the uncached resolution.
  const Histogram* latency = d.metrics().find_histogram("resolver.stub.latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 1u);
  EXPECT_EQ(latency->sum(),
            static_cast<std::uint64_t>(first.value().stats.latency.count()));

  // Cached resolutions still produce a span, with the probe inside.
  ASSERT_FALSE(d.tracer().roots().empty());
  const Span& cached_span = d.tracer().roots().back();
  EXPECT_EQ(cached_span.name, "stub.resolve");
  EXPECT_EQ(cached_span.count("resolver.cache.probe"), 1);
  ASSERT_NE(cached_span.attribute("from_cache"), nullptr);
}

TEST(ObsIntegration, QueryStatsJsonSharedShape) {
  resolver::QueryStats stats;
  stats.rcode = Rcode::NoError;
  stats.latency = net::ms(3);
  stats.queries_sent = 2;
  stats.referrals_followed = 1;
  std::string json = stats.to_json();
  EXPECT_NE(json.find("\"rcode\":\"NOERROR\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\":3000"), std::string::npos);
  EXPECT_NE(json.find("\"queries_sent\":2"), std::string::npos);
  EXPECT_NE(json.find("\"from_cache\":false"), std::string::npos);
  EXPECT_NE(json.find("\"referrals_followed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"fanout_max\":1"), std::string::npos);
}

}  // namespace
}  // namespace sns::obs
