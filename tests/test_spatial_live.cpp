// End-to-end AREA queries over the real socket stack: a ServerRuntime
// serving a LOC-bearing zone is queried with reverse geodetic boxes
// over UDP and TCP — including the truncation → TCP retry path for
// dense areas — while RFC 2136 updates re-home devices concurrently.
// The churn test is the headline: reader threads must always see a
// coherent spatial snapshot (static devices never flicker, every
// answer's LOC lies inside the queried box) while a committer thread
// moves devices across town. Run under the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "server/update.hpp"
#include "server/zone.hpp"
#include "spatial/area.hpp"
#include "transport/client.hpp"

namespace sns::runtime {
namespace {

using dns::name_of;
using dns::Name;
using dns::RRType;
using geo::BoundingBox;

const Name kApex = name_of("city.loc");

Name sub(const std::string& label) { return name_of(label + ".city.loc"); }

dns::LocData loc_at(double lat, double lon) {
  auto loc = dns::LocData::from_degrees(lat, lon);
  EXPECT_TRUE(loc.ok());
  return loc.value();
}

// Three disjoint neighbourhoods:
//   kStaticBox  — stat0..stat3, never touched by updates
//   kMobileBox  — mob0..mob7 roam between (10.x, 10.x) and (20.x, 20.x)
//   kDenseBox   — pack0..pack59, all in one block (truncation fodder)
constexpr BoundingBox kStaticBox{38.88, -77.07, 38.93, -77.01};
constexpr BoundingBox kMobileBox{9.0, 9.0, 21.0, 21.0};
constexpr BoundingBox kDenseBox{49.9, 49.9, 50.1, 50.1};
constexpr int kStatics = 4;
constexpr int kMobiles = 8;
constexpr int kDense = 60;

server::ZoneViewPtr make_city() {
  server::ZoneBuilder builder(kApex);
  (void)builder.add(dns::make_soa(kApex, sub("ns"), 1));
  (void)builder.add(dns::make_ns(kApex, sub("ns")));
  for (int i = 0; i < kStatics; ++i)
    (void)builder.add(dns::make_loc(sub("stat" + std::to_string(i)),
                                    loc_at(38.90 + 0.001 * i, -77.04)));
  for (int i = 0; i < kMobiles; ++i)
    (void)builder.add(dns::make_loc(sub("mob" + std::to_string(i)),
                                    loc_at(10.0 + 0.01 * i, 10.0)));
  for (int i = 0; i < kDense; ++i)
    (void)builder.add(dns::make_loc(sub("pack" + std::to_string(i)),
                                    loc_at(50.0 + 0.0001 * i, 50.0)));
  auto view = std::move(builder).build();
  EXPECT_TRUE(view.ok());
  return std::move(view).value();
}

constexpr auto kTimeout = std::chrono::milliseconds(2000);

class SpatialLive : public ::testing::Test {
 protected:
  void start(std::size_t shards, bool spatial = true) {
    auto zone = make_city();
    ASSERT_NE(zone, nullptr);
    RuntimeOptions options;
    options.threads = shards;
    options.spatial = spatial;
    options.drain_grace = std::chrono::milliseconds(500);
    runtime_ = std::make_unique<ServerRuntime>("spatial-test", options);
    auto started = runtime_->start(transport::loopback(0), {zone});
    ASSERT_TRUE(started.ok()) << started.error().message;
    server_ = runtime_->local();
    ASSERT_NE(server_.port, 0);
  }

  void TearDown() override {
    if (runtime_) runtime_->stop();
  }

  static dns::Message area(const BoundingBox& box, std::uint16_t id,
                           const Name& scope = kApex) {
    return spatial::make_area_query(id, scope, box);
  }

  /// Every answer must be a LOC whose decoded point lies inside `box`;
  /// returns the matched owner names.
  static std::vector<std::string> checked_names(const dns::Message& response,
                                                const BoundingBox& box) {
    std::vector<std::string> names;
    for (const auto& rr : response.answers) {
      EXPECT_EQ(rr.type, RRType::LOC);
      const auto* loc = std::get_if<dns::LocData>(&rr.rdata);
      EXPECT_NE(loc, nullptr);
      if (loc != nullptr) {
        EXPECT_TRUE(box.contains(
            geo::GeoPoint{loc->latitude_degrees(), loc->longitude_degrees(), 0}))
            << rr.name.to_string();
      }
      names.push_back(rr.name.to_string());
    }
    return names;
  }

  std::unique_ptr<ServerRuntime> runtime_;
  transport::Endpoint server_;
};

TEST_F(SpatialLive, AreaOverUdpAndTcpReturnsDevicesInBox) {
  start(2);
  auto udp = transport::udp_query(server_, area(kStaticBox, 0x1001));
  ASSERT_TRUE(udp.ok()) << udp.error().message;
  EXPECT_EQ(udp.value().header.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(udp.value().header.aa);
  EXPECT_EQ(checked_names(udp.value(), kStaticBox).size(), 4u);

  auto tcp = transport::tcp_query(server_, area(kMobileBox, 0x1002));
  ASSERT_TRUE(tcp.ok()) << tcp.error().message;
  EXPECT_EQ(checked_names(tcp.value(), kMobileBox).size(), 8u);

  // Empty stretch of ocean: NoError, zero answers.
  auto empty = transport::udp_query(server_, area(BoundingBox{0, 0, 1, 1}, 0x1003));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().header.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(empty.value().answers.empty());
}

TEST_F(SpatialLive, DenseAreaTruncatesThenRetriesOverTcp) {
  start(2);
  transport::QueryOptions classic;
  classic.edns_udp_size = 0;  // 512-byte client: 60 LOC answers cannot fit
  auto out = transport::query_auto(server_, area(kDenseBox, 0x1101), classic);
  ASSERT_TRUE(out.ok()) << out.error().message;
  EXPECT_TRUE(out.value().retried_tcp);
  EXPECT_TRUE(out.value().used_tcp);
  EXPECT_EQ(checked_names(out.value().response, kDenseBox).size(),
            static_cast<std::size_t>(kDense));
}

TEST_F(SpatialLive, MalformedAndForeignBoxesOverTheWire) {
  start(1);
  // Antimeridian wrap: FORMERR, not a crash and not an empty NoError.
  auto wrapped =
      transport::udp_query(server_, area(BoundingBox{0, 179.0, 1, -179.0}, 0x1201));
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(wrapped.value().header.rcode, dns::Rcode::FormErr);

  // Inverted latitude span.
  auto inverted =
      transport::udp_query(server_, area(BoundingBox{5.0, 0.0, 4.0, 1.0}, 0x1202));
  ASSERT_TRUE(inverted.ok());
  EXPECT_EQ(inverted.value().header.rcode, dns::Rcode::FormErr);

  // qname outside every served zone: Refused.
  auto foreign = transport::udp_query(
      server_, area(kStaticBox, 0x1203, name_of("elsewhere.loc")));
  ASSERT_TRUE(foreign.ok());
  EXPECT_EQ(foreign.value().header.rcode, dns::Rcode::Refused);

  obs::MetricsRegistry totals;
  runtime_->merge_metrics(totals);
  EXPECT_EQ(totals.counter_value("spatial.query.formerr").value_or(0), 2u);
}

TEST_F(SpatialLive, QnameScopesTheSearchSubtree) {
  start(1);
  // Scope to one mobile device's own name: only it can match.
  auto scoped =
      transport::udp_query(server_, area(kMobileBox, 0x1301, sub("mob3")));
  ASSERT_TRUE(scoped.ok());
  auto names = checked_names(scoped.value(), kMobileBox);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "mob3.city.loc");
}

TEST_F(SpatialLive, SpatialDisabledServesAreaAsOrdinaryQuery) {
  start(1, /*spatial=*/false);
  // With the index off the AREA query falls through to the ordinary
  // engine: qname exists, no AREA RRset → NoError/NoData, not FORMERR.
  auto response = transport::udp_query(server_, area(kStaticBox, 0x1401));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().header.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(response.value().answers.empty());
}

TEST_F(SpatialLive, MetricsSurfaceInFleetDump) {
  start(2);
  ASSERT_TRUE(transport::udp_query(server_, area(kStaticBox, 0x1501)).ok());
  ASSERT_TRUE(transport::udp_query(server_, area(BoundingBox{0, 0, 1, 1}, 0x1502)).ok());
  ASSERT_TRUE(
      transport::udp_query(server_, area(BoundingBox{1, 1, 0, 0}, 0x1503)).ok());

  std::string json = runtime_->metrics_json();
  EXPECT_NE(json.find("spatial.query.hit"), std::string::npos);
  EXPECT_NE(json.find("spatial.query.empty"), std::string::npos);
  EXPECT_NE(json.find("spatial.query.formerr"), std::string::npos);
  EXPECT_NE(json.find("spatial.query.latency_us"), std::string::npos);

  obs::MetricsRegistry totals;
  runtime_->merge_metrics(totals);
  EXPECT_EQ(totals.counter_value("spatial.query.hit").value_or(0), 1u);
  EXPECT_EQ(totals.counter_value("spatial.query.empty").value_or(0), 1u);
  EXPECT_EQ(totals.counter_value("spatial.query.formerr").value_or(0), 1u);
}

TEST_F(SpatialLive, AreaQueriesStayCoherentUnderConcurrentRehomingChurn) {
  start(3);
  constexpr std::size_t kReaders = 3;
  constexpr int kRounds = 6;
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<bool> stop{false};

  // Readers: the static neighbourhood must never flicker (its owners
  // are untouched by every commit, so each incremental SpatialView
  // rebuild must carry them forward), and every mobile answer must be
  // inside the queried box.
  auto reader = [&](std::size_t r) {
    std::uint16_t id = static_cast<std::uint16_t>(r * 4096);
    while (!stop.load(std::memory_order_acquire)) {
      auto stat = transport::udp_query(server_, area(kStaticBox, ++id));
      if (!stat.ok() || stat.value().header.rcode != dns::Rcode::NoError ||
          stat.value().answers.size() != static_cast<std::size_t>(kStatics)) {
        failures.fetch_add(1);
      }
      auto mob = transport::udp_query(server_, area(kMobileBox, ++id));
      if (!mob.ok() || mob.value().header.rcode != dns::Rcode::NoError) {
        failures.fetch_add(1);
      } else {
        for (const auto& rr : mob.value().answers) {
          const auto* loc = std::get_if<dns::LocData>(&rr.rdata);
          if (loc == nullptr ||
              !kMobileBox.contains(geo::GeoPoint{loc->latitude_degrees(),
                                                 loc->longitude_degrees(), 0}))
            failures.fetch_add(1);
        }
      }
      reads.fetch_add(1);
    }
  };

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) readers.emplace_back(reader, r);

  // Committer: re-home every mobile device each round, alternating
  // between the 10° and 20° blocks (both inside kMobileBox). Each
  // re-homing is a delete + add pair of RFC 2136 updates, each of
  // which publishes a fresh snapshot with an incrementally rebuilt
  // SpatialView.
  std::uint16_t uid = 0x2000;
  for (int round = 0; round < kRounds; ++round) {
    double base = (round % 2 == 0) ? 20.0 : 10.0;
    for (int i = 0; i < kMobiles; ++i) {
      Name owner = sub("mob" + std::to_string(i));
      auto del = transport::tcp_query(
          server_, server::make_update_delete_rrset(++uid, kApex, owner, RRType::LOC));
      ASSERT_TRUE(del.ok()) << del.error().message;
      EXPECT_EQ(del.value().header.rcode, dns::Rcode::NoError);
      auto add = transport::tcp_query(
          server_, server::make_update_add(
                       ++uid, kApex,
                       dns::make_loc(owner, loc_at(base + 0.01 * i, base))));
      ASSERT_TRUE(add.ok()) << add.error().message;
      EXPECT_EQ(add.value().header.rcode, dns::Rcode::NoError);
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(reads.load(), 0u);

  // Churn is over: all eight mobiles ended in a block inside the wide
  // box, and the incremental rebuilds must agree with a from-scratch
  // count.
  auto settled = transport::udp_query(server_, area(kMobileBox, 0x7fff));
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(checked_names(settled.value(), kMobileBox).size(),
            static_cast<std::size_t>(kMobiles));
  obs::MetricsRegistry totals;
  runtime_->merge_metrics(totals);
  EXPECT_GT(totals.counter_value("runtime.spatial.rebuild_incremental").value_or(0), 0u);
}

}  // namespace
}  // namespace sns::runtime
