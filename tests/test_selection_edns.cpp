// Tests for connectivity selection (§2.2), EDNS0/truncation handling
// and NSEC3 authenticated denial served by the authoritative engine.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "core/selection.hpp"
#include "dns/dnssec.hpp"
#include "server/authoritative.hpp"

namespace sns::core {
namespace {

using dns::name_of;
using dns::RRType;

const dns::Name kDevice = name_of("mic.oval-office.loc");

dns::RRset full_answer() {
  return {
      dns::make_bdaddr(kDevice, net::Bdaddr{{1, 2, 3, 4, 5, 6}}),
      dns::make_a(kDevice, net::Ipv4Addr{{192, 0, 3, 10}}),
      dns::make_aaaa(kDevice, net::Ipv6Addr::parse("2001:db8::10").value()),
      dns::make_txt(kDevice, {"sns:zigbee=00:11:22:33:44:55:66:77"}),
      dns::ResourceRecord{kDevice, RRType::DTMF, dns::RRClass::IN, 60,
                          dns::DtmfData{net::DtmfTone{"42#"}}},
  };
}

TEST(Selection, ExtractsEveryFamilyIncludingFallback) {
  auto choices = extract_addresses(full_answer());
  ASSERT_EQ(choices.size(), 5u);
  int fallbacks = 0;
  for (const auto& choice : choices)
    if (choice.from_txt_fallback) ++fallbacks;
  EXPECT_EQ(fallbacks, 1);  // the zigbee TXT
}

TEST(Selection, PreferLocalPicksBluetooth) {
  auto best = choose_address(full_answer(), SelectionPolicy::PreferLocal);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->source_type, RRType::BDADDR);
  EXPECT_EQ(net::family_name(best->address), "bluetooth");
}

TEST(Selection, PreferGlobalPicksIpv6) {
  auto best = choose_address(full_answer(), SelectionPolicy::PreferGlobal);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(net::family_name(best->address), "ipv6");
}

TEST(Selection, WifiYieldsItsIpv4) {
  dns::RRset answer{dns::ResourceRecord{kDevice, RRType::WIFI, dns::RRClass::IN, 60,
                                        dns::WifiData{"net", net::Ipv4Addr{{10, 1, 1, 1}}}}};
  auto choices = extract_addresses(answer);
  ASSERT_EQ(choices.size(), 1u);
  EXPECT_EQ(choices[0].source_type, RRType::WIFI);
  EXPECT_EQ(net::to_string(choices[0].address), "10.1.1.1");
}

TEST(Selection, EmptyAndIrrelevantAnswers) {
  EXPECT_FALSE(choose_address({}).has_value());
  dns::RRset irrelevant{dns::make_txt(kDevice, {"hello"}),
                        dns::make_ns(name_of("oval-office.loc"), name_of("ns.oval-office.loc"))};
  EXPECT_FALSE(choose_address(irrelevant).has_value());
}

// --- EDNS0 / truncation -------------------------------------------------

TEST(Edns, AdvertisedSizeDefaultsTo512) {
  dns::Message query = dns::make_query(1, kDevice, RRType::ANY);
  EXPECT_EQ(dns::advertised_udp_size(query), dns::kClassicUdpLimit);
  dns::add_edns(query, 4096);
  EXPECT_EQ(dns::advertised_udp_size(query), 4096u);
}

TEST(Edns, OversizedAnswerTruncatesWithoutEdns) {
  dns::Message query = dns::make_query(1, kDevice, RRType::TXT);
  dns::Message response = dns::make_response(query, dns::Rcode::NoError, true);
  for (int i = 0; i < 10; ++i)
    response.answers.push_back(dns::make_txt(kDevice, {std::string(100, 'x')}));

  auto wire = dns::encode_for_transport(query, response);
  EXPECT_LE(wire.size(), dns::kClassicUdpLimit);
  auto decoded = dns::Message::decode(std::span(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().header.tc);
  EXPECT_TRUE(decoded.value().answers.empty());

  // With EDNS the same answer goes through whole.
  dns::Message edns_query = query;
  dns::add_edns(edns_query, 4096);
  auto big_wire = dns::encode_for_transport(edns_query, response);
  auto big = dns::Message::decode(std::span(big_wire));
  ASSERT_TRUE(big.ok());
  EXPECT_FALSE(big.value().header.tc);
  EXPECT_EQ(big.value().answers.size(), 10u);
}

TEST(Edns, TruncationPrefixMatchesFullReencode) {
  // The fast path patches the already-encoded header+question prefix;
  // it must produce byte-for-byte what a from-scratch encode of the
  // emptied TC response would.
  dns::Message query = dns::make_query(7, kDevice, RRType::TXT);
  dns::Message response = dns::make_response(query, dns::Rcode::NoError, true);
  for (int i = 0; i < 10; ++i)
    response.answers.push_back(dns::make_txt(kDevice, {std::string(100, 'x')}));
  response.authorities.push_back(dns::make_ns(name_of("loc"), name_of("ns.loc")));

  auto fast = dns::encode_for_transport(query, response);

  dns::Message reference = response;
  reference.header.tc = true;
  reference.answers.clear();
  reference.authorities.clear();
  reference.additionals.clear();
  EXPECT_EQ(fast, reference.encode());
}

TEST(Edns, StubRetriesTruncatedAnswers) {
  // A device with a large TXT RRset behind a deployed edge server: the
  // stub's first query truncates, the EDNS retry succeeds transparently.
  auto world = make_white_house_world(66);
  auto& d = *world.deployment;
  auto zone = world.oval_office->zone->local_zone();
  for (int i = 0; i < 10; ++i)
    (void)zone->add(dns::make_txt(world.speaker,
                                  {std::string(90, static_cast<char>('a' + i))}));

  net::NodeId client = d.add_client("c", *world.oval_office, true);
  auto stub = d.make_stub(client, *world.oval_office);
  auto result = stub.resolve(world.speaker, RRType::TXT);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().stats.rcode, dns::Rcode::NoError);
  EXPECT_EQ(result.value().records.size(), 10u);
}

// --- NSEC3 denial from the server ----------------------------------------

struct KeyedServer {
  server::AuthoritativeServer srv{"keyed"};
  std::shared_ptr<server::Zone> zone;
  dns::ZoneKey key{name_of("oval-office.loc"), {9, 9, 9}};

  KeyedServer() {
    zone = std::make_shared<server::Zone>(name_of("oval-office.loc"),
                                          name_of("ns.oval-office.loc"));
    (void)zone->add(dns::make_bdaddr(kDevice, net::Bdaddr{{1, 2, 3, 4, 5, 6}}));
    srv.add_zone(zone);
    srv.set_zone_key(key, [] { return 1000u; });
    srv.enable_nsec3({0xab}, 3);
  }
};

TEST(Nsec3Denial, NxdomainCarriesCoveringProof) {
  KeyedServer keyed;
  server::ClientContext ctx;
  ctx.internal = true;
  auto response = keyed.srv.handle(
      dns::make_query(1, name_of("ghost.oval-office.loc"), RRType::A), ctx);
  EXPECT_EQ(response.header.rcode, dns::Rcode::NXDomain);
  EXPECT_TRUE(response.header.ad);

  const dns::ResourceRecord* nsec3 = nullptr;
  const dns::ResourceRecord* rrsig = nullptr;
  for (const auto& rr : response.authorities) {
    if (rr.type == RRType::NSEC3) nsec3 = &rr;
    if (rr.type == RRType::RRSIG) rrsig = &rr;
  }
  ASSERT_NE(nsec3, nullptr);
  ASSERT_NE(rrsig, nullptr);
  // The proof actually covers the query name and verifies.
  auto covers = dns::nsec3_covers(*nsec3, name_of("ghost.oval-office.loc"),
                                  name_of("oval-office.loc"));
  ASSERT_TRUE(covers.ok());
  EXPECT_TRUE(covers.value());
  auto verified = dns::verify_rrsig({*nsec3}, std::get<dns::RrsigData>(rrsig->rdata),
                                    keyed.key, 1000);
  EXPECT_TRUE(verified.ok()) << verified.error().message;
}

TEST(Nsec3Denial, NodataCarriesMatchingBitmap) {
  KeyedServer keyed;
  server::ClientContext ctx;
  ctx.internal = true;
  auto response = keyed.srv.handle(dns::make_query(1, kDevice, RRType::AAAA), ctx);
  EXPECT_EQ(response.header.rcode, dns::Rcode::NoError);
  const dns::Nsec3Data* proof = nullptr;
  for (const auto& rr : response.authorities)
    if (const auto* data = std::get_if<dns::Nsec3Data>(&rr.rdata)) proof = data;
  ASSERT_NE(proof, nullptr);
  // Bitmap proves BDADDR exists at the name but AAAA does not.
  EXPECT_NE(std::find(proof->types.begin(), proof->types.end(), RRType::BDADDR),
            proof->types.end());
  EXPECT_EQ(std::find(proof->types.begin(), proof->types.end(), RRType::AAAA),
            proof->types.end());
}

TEST(Nsec3Denial, ChainRefreshesAfterUpdate) {
  KeyedServer keyed;
  server::ClientContext ctx;
  ctx.internal = true;
  // ghost does not exist: covered.
  auto before = keyed.srv.handle(
      dns::make_query(1, name_of("ghost.oval-office.loc"), RRType::A), ctx);
  EXPECT_EQ(before.header.rcode, dns::Rcode::NXDomain);
  // Add it and bump the serial in one transaction, as dynamic update would.
  {
    auto txn = keyed.zone->txn();
    ASSERT_TRUE(txn.add(dns::make_a(name_of("ghost.oval-office.loc"),
                                    net::Ipv4Addr{{10, 0, 0, 2}}))
                    .ok());
    (void)keyed.zone->commit(std::move(txn));
  }
  auto after = keyed.srv.handle(
      dns::make_query(2, name_of("ghost.oval-office.loc"), RRType::A), ctx);
  EXPECT_EQ(after.header.rcode, dns::Rcode::NoError);
  ASSERT_EQ(after.answers.size(), 2u);  // A + RRSIG
  // And a *different* absent name still gets a valid proof from the
  // rebuilt chain (which now includes ghost's hash).
  auto other = keyed.srv.handle(
      dns::make_query(3, name_of("phantom.oval-office.loc"), RRType::A), ctx);
  EXPECT_EQ(other.header.rcode, dns::Rcode::NXDomain);
  bool proof_found = false;
  for (const auto& rr : other.authorities) {
    if (rr.type != RRType::NSEC3) continue;
    auto covers = dns::nsec3_covers(rr, name_of("phantom.oval-office.loc"),
                                    name_of("oval-office.loc"));
    if (covers.ok() && covers.value()) proof_found = true;
  }
  EXPECT_TRUE(proof_found);
}

}  // namespace
}  // namespace sns::core
