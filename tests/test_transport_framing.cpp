// TCP framing state machine under hostile stream arithmetic: RFC 7766
// length prefixes split across reads, pipelined messages, zero-length
// and oversized frames, disconnect mid-message. Pure byte-sequence
// tests — no sockets — which is the point of FrameReader being a
// standalone state machine.
#include <gtest/gtest.h>

#include "transport/frame.hpp"
#include "util/rng.hpp"

namespace sns::transport {
namespace {

util::Bytes frame_of(std::initializer_list<std::uint8_t> payload) {
  util::Bytes out;
  out.reserve(payload.size() + 2);
  out.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(payload.size() & 0xff));
  for (std::uint8_t b : payload) out.push_back(b);
  return out;
}

TEST(TransportFraming, SingleMessageRoundTrip) {
  FrameReader reader;
  auto wire = frame_of({0xde, 0xad, 0xbe, 0xef});
  reader.feed(std::span(wire));
  auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, (util::Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.mid_frame());
}

TEST(TransportFraming, LengthPrefixSplitAcrossReads) {
  // The two length bytes arrive in separate read()s — the classic
  // short-read bug. Then the body itself arrives byte by byte.
  FrameReader reader;
  auto wire = frame_of({1, 2, 3});
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(reader.next().has_value()) << "frame completed early at byte " << i;
    reader.feed(std::span(&wire[i], 1));
    if (i + 1 < wire.size()) {
      EXPECT_TRUE(reader.mid_frame());
    }
  }
  auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, (util::Bytes{1, 2, 3}));
}

TEST(TransportFraming, PipelinedMessagesInOneRead) {
  FrameReader reader;
  util::Bytes wire = frame_of({0xaa});
  auto second = frame_of({0xbb, 0xcc});
  auto third = frame_of({0xdd});
  wire.insert(wire.end(), second.begin(), second.end());
  wire.insert(wire.end(), third.begin(), third.end());
  reader.feed(std::span(wire));
  EXPECT_EQ(*reader.next(), (util::Bytes{0xaa}));
  EXPECT_EQ(*reader.next(), (util::Bytes{0xbb, 0xcc}));
  EXPECT_EQ(*reader.next(), (util::Bytes{0xdd}));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.mid_frame());
}

TEST(TransportFraming, PipelineStraddlingChunks) {
  // Two messages delivered as three arbitrary chunks whose boundaries
  // align with nothing.
  FrameReader reader;
  util::Bytes wire = frame_of({1, 2, 3, 4, 5});
  auto second = frame_of({6, 7});
  wire.insert(wire.end(), second.begin(), second.end());
  reader.feed(std::span(wire.data(), 3));
  EXPECT_FALSE(reader.next().has_value());
  reader.feed(std::span(wire.data() + 3, 5));
  EXPECT_EQ(*reader.next(), (util::Bytes{1, 2, 3, 4, 5}));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.mid_frame());
  reader.feed(std::span(wire.data() + 8, wire.size() - 8));
  EXPECT_EQ(*reader.next(), (util::Bytes{6, 7}));
}

TEST(TransportFraming, ZeroLengthMessageIsFatal) {
  FrameReader reader;
  util::Bytes wire{0x00, 0x00, 0xff};  // length 0 then junk
  reader.feed(std::span(wire));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("zero-length"), std::string::npos);
  // Failed readers stay failed: feeding more never resurrects the stream.
  auto more = frame_of({1});
  reader.feed(std::span(more));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.failed());
}

TEST(TransportFraming, OversizedFrameRejected) {
  FrameReader reader(1024);
  util::Bytes wire{0x04, 0x01};  // declares 1025 bytes > limit 1024
  reader.feed(std::span(wire));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("exceeds"), std::string::npos);
}

TEST(TransportFraming, MaxLengthFrameAccepted) {
  // 65535 is legal: the wire format's ceiling, not beyond it.
  FrameReader reader;
  util::Bytes wire{0xff, 0xff};
  util::Bytes body(65535, 0x42);
  reader.feed(std::span(wire));
  EXPECT_FALSE(reader.next().has_value());
  reader.feed(std::span(body));
  auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), 65535u);
}

TEST(TransportFraming, MidMessageDisconnectIsDetectable) {
  // A peer that dies after sending half a message: the reader reports
  // mid_frame() so the connection owner knows data was lost (vs a clean
  // between-messages close).
  FrameReader reader;
  auto wire = frame_of({1, 2, 3, 4});
  reader.feed(std::span(wire.data(), wire.size() - 2));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.mid_frame());

  FrameReader clean;
  auto full = frame_of({9});
  clean.feed(std::span(full));
  EXPECT_TRUE(clean.next().has_value());
  EXPECT_FALSE(clean.mid_frame());
}

TEST(TransportFraming, FrameMessageRejectsEmptyAndJumbo) {
  util::Bytes empty;
  EXPECT_FALSE(frame_message(std::span(empty)).ok());
  util::Bytes jumbo(65536, 0);
  EXPECT_FALSE(frame_message(std::span(jumbo)).ok());
  util::Bytes max(65535, 7);
  auto framed = frame_message(std::span(max));
  ASSERT_TRUE(framed.ok());
  EXPECT_EQ(framed.value().size(), 65537u);
  EXPECT_EQ(framed.value()[0], 0xff);
  EXPECT_EQ(framed.value()[1], 0xff);
}

TEST(TransportFraming, PropertyRandomChunkingPreservesMessages) {
  // Any sequence of messages, fed in any chunking, comes out intact and
  // in order — the invariant every other framing test is a corner of.
  util::Rng rng(20240806);
  for (int round = 0; round < 50; ++round) {
    std::vector<util::Bytes> messages;
    util::Bytes stream;
    std::size_t count = 1 + rng.next_below(8);
    for (std::size_t m = 0; m < count; ++m) {
      util::Bytes payload(1 + rng.next_below(700));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_below(256));
      auto framed = frame_message(std::span(payload));
      ASSERT_TRUE(framed.ok());
      stream.insert(stream.end(), framed.value().begin(), framed.value().end());
      messages.push_back(std::move(payload));
    }

    FrameReader reader;
    std::vector<util::Bytes> decoded;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      std::size_t chunk = 1 + rng.next_below(97);
      chunk = std::min(chunk, stream.size() - offset);
      reader.feed(std::span(stream.data() + offset, chunk));
      offset += chunk;
      while (auto frame = reader.next()) decoded.push_back(std::move(*frame));
    }
    ASSERT_FALSE(reader.failed());
    EXPECT_FALSE(reader.mid_frame());
    ASSERT_EQ(decoded.size(), messages.size());
    for (std::size_t m = 0; m < messages.size(); ++m) EXPECT_EQ(decoded[m], messages[m]);
  }
}

}  // namespace
}  // namespace sns::transport
