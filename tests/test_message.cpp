// Tests for dns::Message: full-message wire round-trips, flags,
// compression across sections, hostile input.
#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "util/rng.hpp"

namespace sns::dns {
namespace {

Message sample_response() {
  Message query = make_query(0x1234, name_of("display.oval-office.loc"), RRType::ANY);
  Message msg = make_response(query, Rcode::NoError, true);
  msg.answers.push_back(make_a(name_of("display.oval-office.loc"),
                               net::Ipv4Addr{{192, 0, 3, 12}}, 120));
  msg.answers.push_back(make_aaaa(name_of("display.oval-office.loc"),
                                  net::Ipv6Addr::parse("2001:db8::12").value(), 120));
  msg.authorities.push_back(
      make_ns(name_of("oval-office.loc"), name_of("ns.oval-office.loc"), 3600));
  msg.additionals.push_back(make_a(name_of("ns.oval-office.loc"),
                                   net::Ipv4Addr{{10, 0, 0, 5}}, 3600));
  return msg;
}

TEST(Message, EncodeDecodeRoundTrip) {
  Message msg = sample_response();
  auto wire = msg.encode();
  auto decoded = Message::decode(std::span(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value(), msg);
}

TEST(Message, HeaderFlagsRoundTrip) {
  Message msg;
  msg.header.id = 0xbeef;
  msg.header.qr = true;
  msg.header.opcode = Opcode::Update;
  msg.header.aa = true;
  msg.header.tc = true;
  msg.header.rd = false;
  msg.header.ra = true;
  msg.header.ad = true;
  msg.header.rcode = Rcode::NXRRSet;
  auto wire = msg.encode();
  auto decoded = Message::decode(std::span(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().header, msg.header);
}

TEST(Message, CompressionShrinksMessages) {
  Message msg = sample_response();
  auto wire = msg.encode();
  // Sum of uncompressed record sizes must exceed the compressed message.
  std::size_t uncompressed = 12;  // header
  for (const auto& q : msg.questions) uncompressed += q.name.wire_length() + 4;
  auto record_size = [](const ResourceRecord& rr) {
    util::ByteWriter w;
    rr.encode(w, nullptr);
    return w.size();
  };
  for (const auto& rr : msg.answers) uncompressed += record_size(rr);
  for (const auto& rr : msg.authorities) uncompressed += record_size(rr);
  for (const auto& rr : msg.additionals) uncompressed += record_size(rr);
  EXPECT_LT(wire.size(), uncompressed);
}

TEST(Message, MakeQueryShape) {
  Message q = make_query(7, name_of("mic.oval-office.loc"), RRType::BDADDR, false);
  EXPECT_EQ(q.header.id, 7);
  EXPECT_FALSE(q.header.qr);
  EXPECT_FALSE(q.header.rd);
  ASSERT_EQ(q.questions.size(), 1u);
  EXPECT_EQ(q.questions[0].type, RRType::BDADDR);
  EXPECT_TRUE(q.answers.empty());
}

TEST(Message, MakeResponseEchoesQuestion) {
  Message q = make_query(9, name_of("a.loc"), RRType::A);
  Message r = make_response(q, Rcode::NXDomain, true);
  EXPECT_TRUE(r.header.qr);
  EXPECT_TRUE(r.header.aa);
  EXPECT_EQ(r.header.id, 9);
  EXPECT_EQ(r.header.rcode, Rcode::NXDomain);
  ASSERT_EQ(r.questions.size(), 1u);
  EXPECT_EQ(r.questions[0], q.questions[0]);
}

TEST(Message, DecodeRejectsTruncatedHeader) {
  std::vector<std::uint8_t> wire{0x12, 0x34, 0x00};
  EXPECT_FALSE(Message::decode(std::span(wire)).ok());
}

TEST(Message, DecodeRejectsCountOverrun) {
  // Header claims one question but the body is empty.
  Message empty;
  auto wire = empty.encode();
  wire[5] = 1;  // qdcount = 1
  EXPECT_FALSE(Message::decode(std::span(wire)).ok());
}

TEST(Message, DecodeTruncatedMidRecord) {
  Message msg = sample_response();
  auto wire = msg.encode();
  for (std::size_t cut : {wire.size() - 1, wire.size() - 5, wire.size() / 2, std::size_t{13}}) {
    std::vector<std::uint8_t> clipped(wire.begin(),
                                      wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(Message::decode(std::span(clipped)).ok()) << "cut at " << cut;
  }
}

TEST(Message, FuzzBitFlipsNeverCrash) {
  Message msg = sample_response();
  auto wire = msg.encode();
  util::Rng rng(11);
  for (int trial = 0; trial < 3000; ++trial) {
    auto mutated = wire;
    // Flip 1-4 random bytes.
    auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f)
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    (void)Message::decode(std::span(mutated));  // must not crash/hang
  }
}

TEST(Message, FuzzRandomBuffersNeverCrash) {
  util::Rng rng(13);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> wire(rng.next_below(120));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next_below(256));
    (void)Message::decode(std::span(wire));
  }
}

TEST(Message, ToStringMentionsSections) {
  Message msg = sample_response();
  std::string text = msg.to_string();
  EXPECT_NE(text.find("question:"), std::string::npos);
  EXPECT_NE(text.find("authority:"), std::string::npos);
  EXPECT_NE(text.find("additional:"), std::string::npos);
  EXPECT_NE(text.find("display.oval-office.loc"), std::string::npos);
}

TEST(Message, ExtendedTypesInsideMessages) {
  Message query = make_query(1, name_of("speaker.oval-office.loc"), RRType::BDADDR);
  Message msg = make_response(query, Rcode::NoError, true);
  msg.answers.push_back(make_bdaddr(name_of("speaker.oval-office.loc"),
                                    net::Bdaddr{{0xa, 0xb, 0xc, 0xd, 0xe, 0xf}}, 60));
  msg.answers.push_back(ResourceRecord{name_of("speaker.oval-office.loc"), RRType::WIFI,
                                       RRClass::IN, 60,
                                       WifiData{"wh-iot", net::Ipv4Addr{{192, 0, 3, 1}}}});
  auto wire = msg.encode();
  auto decoded = Message::decode(std::span(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), msg);
}

}  // namespace
}  // namespace sns::dns
