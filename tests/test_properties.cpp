// Cross-cutting randomized property tests: whole-message wire
// round-trips, zone-store consistency against a naive oracle, and
// master-file serialisation fixpoints.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "dns/dnssec.hpp"
#include "dns/master.hpp"
#include "server/zone.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sns {
namespace {

using dns::Name;
using dns::name_of;
using dns::ResourceRecord;
using dns::RRType;

// --- generators ---------------------------------------------------------

std::string random_label(util::Rng& rng) {
  std::string label;
  auto len = 1 + rng.next_below(10);
  for (std::uint64_t i = 0; i < len; ++i)
    label += static_cast<char>('a' + rng.next_below(26));
  return label;
}

Name random_name(util::Rng& rng, const Name& suffix) {
  Name name = suffix;
  auto depth = 1 + rng.next_below(3);
  for (std::uint64_t i = 0; i < depth; ++i) {
    auto next = name.prepend(random_label(rng));
    if (!next.ok()) break;
    name = std::move(next).value();
  }
  return name;
}

dns::Rdata random_rdata(util::Rng& rng, RRType& type_out) {
  switch (rng.next_below(7)) {
    case 0:
      type_out = RRType::A;
      return dns::AData{net::Ipv4Addr::from_u32(static_cast<std::uint32_t>(rng.next_u64()))};
    case 1: {
      type_out = RRType::AAAA;
      net::Ipv6Addr a;
      for (auto& octet : a.octets) octet = static_cast<std::uint8_t>(rng.next_below(256));
      return dns::AaaaData{a};
    }
    case 2: {
      type_out = RRType::BDADDR;
      net::Bdaddr a;
      for (auto& octet : a.octets) octet = static_cast<std::uint8_t>(rng.next_below(256));
      return dns::BdaddrData{a};
    }
    case 3:
      type_out = RRType::TXT;
      return dns::TxtData{{random_label(rng), random_label(rng)}};
    case 4:
      type_out = RRType::WIFI;
      return dns::WifiData{random_label(rng),
                           net::Ipv4Addr::from_u32(static_cast<std::uint32_t>(rng.next_u64()))};
    case 5:
      type_out = RRType::DTMF;
      return dns::DtmfData{net::DtmfTone{std::string(1 + rng.next_below(6), '4')}};
    default:
      type_out = RRType::LOC;
      return dns::LocData::from_degrees(rng.next_double(-89, 89), rng.next_double(-179, 179),
                                        rng.next_double(0, 1000))
          .value();
  }
}

ResourceRecord random_record(util::Rng& rng, const Name& zone) {
  RRType type = RRType::A;
  dns::Rdata rdata = random_rdata(rng, type);
  return ResourceRecord{random_name(rng, zone), type, dns::RRClass::IN,
                        static_cast<std::uint32_t>(30 + rng.next_below(3600)),
                        std::move(rdata)};
}

// --- properties -----------------------------------------------------------

TEST(Property, RandomMessagesRoundTripWithCompression) {
  util::Rng rng(42);
  const Name zone = name_of("oval-office.1600.penn-ave.washington.dc.usa.loc");
  for (int trial = 0; trial < 300; ++trial) {
    dns::Message msg;
    msg.header.id = static_cast<std::uint16_t>(rng.next_u64());
    msg.header.qr = rng.chance(0.5);
    msg.header.aa = rng.chance(0.5);
    msg.header.rcode = rng.chance(0.8) ? dns::Rcode::NoError : dns::Rcode::NXDomain;
    msg.questions.push_back(
        dns::Question{random_name(rng, zone), RRType::ANY, dns::RRClass::IN});
    auto answers = rng.next_below(6);
    for (std::uint64_t i = 0; i < answers; ++i)
      msg.answers.push_back(random_record(rng, zone));
    auto authorities = rng.next_below(3);
    for (std::uint64_t i = 0; i < authorities; ++i)
      msg.authorities.push_back(random_record(rng, zone));

    auto wire = msg.encode();
    auto decoded = dns::Message::decode(std::span(wire));
    ASSERT_TRUE(decoded.ok()) << trial << ": " << decoded.error().message;
    EXPECT_EQ(decoded.value(), msg) << "trial " << trial;
  }
}

TEST(Property, CompressionNeverInflatesSharedSuffixMessages) {
  util::Rng rng(43);
  const Name zone = name_of("building.city.loc");
  for (int trial = 0; trial < 50; ++trial) {
    dns::Message msg;
    msg.questions.push_back(dns::Question{random_name(rng, zone), RRType::A, dns::RRClass::IN});
    for (int i = 0; i < 8; ++i) msg.answers.push_back(random_record(rng, zone));
    std::size_t uncompressed = 12;
    for (const auto& q : msg.questions) uncompressed += q.name.wire_length() + 4;
    for (const auto& rr : msg.answers) {
      util::ByteWriter w;
      rr.encode(w, nullptr);
      uncompressed += w.size();
    }
    EXPECT_LE(msg.encode().size(), uncompressed);
  }
}

TEST(Property, ZoneStoreMatchesNaiveOracle) {
  util::Rng rng(44);
  const Name apex = name_of("zone.loc");
  server::Zone zone(apex, name_of("ns.zone.loc"));
  // Oracle: multimap of (name,type) -> rdata list.
  std::map<std::pair<std::string, std::uint16_t>, std::vector<dns::Rdata>> oracle;

  for (int step = 0; step < 1500; ++step) {
    ResourceRecord rr = random_record(rng, apex);
    if (rr.type == RRType::LOC) continue;  // avoid float-equality noise in oracle
    auto key = std::make_pair(util::to_lower(rr.name.to_string()),
                              static_cast<std::uint16_t>(rr.type));
    if (rng.chance(0.75)) {
      if (zone.add(rr).ok()) {
        auto& list = oracle[key];
        bool duplicate = false;
        for (const auto& existing : list)
          if (existing == rr.rdata) duplicate = true;
        if (!duplicate) list.push_back(rr.rdata);
      }
    } else {
      std::size_t removed = zone.remove_rrset(rr.name, rr.type);
      auto it = oracle.find(key);
      std::size_t expected = it == oracle.end() ? 0 : it->second.size();
      EXPECT_EQ(removed, expected) << rr.name.to_string();
      if (it != oracle.end()) oracle.erase(it);
    }
  }

  // Every oracle entry must be findable, with identical multiset rdata.
  for (const auto& [key, rdatas] : oracle) {
    const dns::RRset* found =
        zone.find(name_of(key.first), static_cast<RRType>(key.second));
    ASSERT_NE(found, nullptr) << key.first;
    EXPECT_EQ(found->size(), rdatas.size()) << key.first;
  }
  // Total count: oracle entries + SOA.
  std::size_t total = 1;
  for (const auto& [key, rdatas] : oracle) total += rdatas.size();
  EXPECT_EQ(zone.record_count(), total);
}

TEST(Property, MasterFileSerialisationIsFixpoint) {
  util::Rng rng(45);
  const Name apex = name_of("field.loc");
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<ResourceRecord> records;
    records.push_back(dns::make_soa(apex, name_of("ns.field.loc"), 1));
    auto count = 1 + rng.next_below(12);
    for (std::uint64_t i = 0; i < count; ++i) {
      ResourceRecord rr = random_record(rng, apex);
      if (rr.type == RRType::LOC) continue;  // text form quantises
      records.push_back(std::move(rr));
    }
    std::string once = dns::to_master_file(std::span(records));
    auto parsed = dns::parse_master_file(once, Name{});
    ASSERT_TRUE(parsed.ok()) << parsed.error().message << "\n" << once;
    std::string twice = dns::to_master_file(std::span(parsed.value()));
    EXPECT_EQ(once, twice) << "trial " << trial;
  }
}

TEST(Property, CanonicalRrsetBytesPermutationInvariant) {
  util::Rng rng(46);
  const Name owner = name_of("host.zone.loc");
  for (int trial = 0; trial < 100; ++trial) {
    dns::RRset rrset;
    auto count = 2 + rng.next_below(5);
    for (std::uint64_t i = 0; i < count; ++i)
      rrset.push_back(dns::make_a(
          owner, net::Ipv4Addr::from_u32(static_cast<std::uint32_t>(rng.next_u64())), 60));
    auto baseline = dns::canonical_rrset_bytes(rrset);
    for (int shuffle = 0; shuffle < 3; ++shuffle) {
      for (std::size_t i = rrset.size(); i > 1; --i)
        std::swap(rrset[i - 1], rrset[rng.next_below(i)]);
      EXPECT_EQ(dns::canonical_rrset_bytes(rrset), baseline);
    }
  }
}

TEST(Property, SignaturesSurviveMessageTransit) {
  // Sign an RRset, ship it inside a message over the wire, verify on
  // the far side — end-to-end object security (§4.1).
  util::Rng rng(47);
  dns::ZoneKey key{name_of("zone.loc"), {1, 2, 3, 4}};
  for (int trial = 0; trial < 100; ++trial) {
    Name owner = random_name(rng, key.zone);
    dns::RRset rrset{dns::make_a(
        owner, net::Ipv4Addr::from_u32(static_cast<std::uint32_t>(rng.next_u64())), 300)};
    auto sig = dns::sign_rrset(rrset, key, 100, 200);
    ASSERT_TRUE(sig.ok());

    dns::Message msg;
    msg.questions.push_back(dns::Question{owner, RRType::A, dns::RRClass::IN});
    msg.answers = rrset;
    msg.answers.push_back(sig.value());
    auto wire = msg.encode();
    auto decoded = dns::Message::decode(std::span(wire));
    ASSERT_TRUE(decoded.ok());

    dns::RRset shipped{decoded.value().answers[0]};
    const auto& shipped_sig = std::get<dns::RrsigData>(decoded.value().answers[1].rdata);
    EXPECT_TRUE(dns::verify_rrsig(shipped, shipped_sig, key, 150).ok()) << trial;
  }
}

}  // namespace
}  // namespace sns
