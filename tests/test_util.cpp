// Tests for src/util: byte codecs, strings, SHA-1/HMAC, RNG, Result.
#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/sha1.hpp"
#include "util/strings.hpp"

namespace sns::util {
namespace {

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(0), 42);

  Result<int> bad = fail("boom");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "boom");
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Result, MapAndThen) {
  Result<int> ok = 10;
  auto doubled = std::move(ok).map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 20);

  Result<int> start = 5;
  auto chained = std::move(start).and_then([](int v) -> Result<std::string> {
    if (v > 3) return std::string("big");
    return fail("small");
  });
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(chained.value(), "big");

  Result<int> err = fail("origin");
  auto propagated = std::move(err).map([](int v) { return v + 1; });
  ASSERT_FALSE(propagated.ok());
  EXPECT_EQ(propagated.error().message, "origin");
}

TEST(Bytes, RoundTripIntegers) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  ByteReader r(std::span(w.data()));
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, BigEndianOnWire) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(Bytes, TruncationIsError) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(std::span(w.data()));
  EXPECT_TRUE(r.u8().ok());
  EXPECT_FALSE(r.u8().ok());
  EXPECT_FALSE(r.u16().ok());
  EXPECT_FALSE(r.u32().ok());
  EXPECT_FALSE(r.bytes(1).ok());
}

TEST(Bytes, FailedReadLeavesCursor) {
  ByteWriter w;
  w.u16(0x1234);
  ByteReader r(std::span(w.data()));
  EXPECT_FALSE(r.u32().ok());
  EXPECT_EQ(r.position(), 0u);
  EXPECT_EQ(r.u16().value(), 0x1234);
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u32(7);
  w.patch_u16(0, 0xbeef);
  ByteReader r(std::span(w.data()));
  EXPECT_EQ(r.u16().value(), 0xbeef);
}

TEST(Bytes, SeekAndView) {
  ByteWriter w;
  w.raw(std::string_view("hello world"));
  ByteReader r(std::span(w.data()));
  ASSERT_TRUE(r.skip(6).ok());
  EXPECT_EQ(r.string(5).value(), "world");
  ASSERT_TRUE(r.seek(0).ok());
  auto view = r.view(5);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().size(), 5u);
  EXPECT_FALSE(r.seek(100).ok());
}

TEST(Strings, SplitPreservesEmpty) {
  auto parts = split("a..b.", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  auto parts = split_whitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(iequals("ABC", "abc"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
  EXPECT_TRUE(iends_with("mic.Oval-Office.LOC", ".loc"));
  EXPECT_FALSE(iends_with("x", "longer"));
}

TEST(Strings, HexRoundTrip) {
  std::vector<std::uint8_t> bytes{0x00, 0xff, 0x1a, 0x2b};
  std::string hex = to_hex(std::span(bytes));
  EXPECT_EQ(hex, "00ff1a2b");
  auto back = from_hex(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), bytes);
  EXPECT_FALSE(from_hex("abc").ok());   // odd length
  EXPECT_FALSE(from_hex("zz").ok());    // bad digit
  auto upper = from_hex("00FF1A2B");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(upper.value(), bytes);
}

TEST(Strings, Base32Hex) {
  // RFC 4648 §10 test vector "foobar" -> "cpnmuoj1e8" (no padding).
  std::string input = "foobar";
  std::vector<std::uint8_t> bytes(input.begin(), input.end());
  EXPECT_EQ(to_base32hex(std::span(bytes)), "cpnmuoj1e8");
  std::vector<std::uint8_t> empty;
  EXPECT_EQ(to_base32hex(std::span(empty)), "");
}

TEST(Sha1, KnownVectors) {
  // FIPS 180-1 vectors.
  auto hex_of = [](std::span<const std::uint8_t> data) {
    auto digest = sha1(data);
    return to_hex(std::span(digest.data(), digest.size()));
  };
  std::string abc = "abc";
  std::vector<std::uint8_t> abc_bytes(abc.begin(), abc.end());
  EXPECT_EQ(hex_of(std::span(abc_bytes)), "a9993e364706816aba3e25717850c26c9cd0d89d");
  std::vector<std::uint8_t> empty;
  EXPECT_EQ(hex_of(std::span(empty)), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  std::string long_input = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  std::vector<std::uint8_t> long_bytes(long_input.begin(), long_input.end());
  EXPECT_EQ(hex_of(std::span(long_bytes)), "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edges must not crash and
  // must be distinct.
  std::vector<std::string> digests;
  for (std::size_t n : {54u, 55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::vector<std::uint8_t> data(n, 0x61);
    auto digest = sha1(std::span(data));
    digests.push_back(to_hex(std::span(digest.data(), digest.size())));
  }
  std::sort(digests.begin(), digests.end());
  EXPECT_EQ(std::unique(digests.begin(), digests.end()), digests.end());
}

TEST(HmacSha1, Rfc2202Vectors) {
  // RFC 2202 test case 1.
  std::vector<std::uint8_t> key(20, 0x0b);
  std::string msg = "Hi There";
  std::vector<std::uint8_t> data(msg.begin(), msg.end());
  auto mac = hmac_sha1(std::span(key), std::span(data));
  EXPECT_EQ(to_hex(std::span(mac.data(), mac.size())),
            "b617318655057264e28bc0b6fb378c8ef146be00");

  // RFC 2202 test case 2 ("Jefe").
  std::string key2 = "Jefe";
  std::vector<std::uint8_t> key2_bytes(key2.begin(), key2.end());
  std::string msg2 = "what do ya want for nothing?";
  std::vector<std::uint8_t> data2(msg2.begin(), msg2.end());
  auto mac2 = hmac_sha1(std::span(key2_bytes), std::span(data2));
  EXPECT_EQ(to_hex(std::span(mac2.data(), mac2.size())),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1, LongKeyIsHashed) {
  std::vector<std::uint8_t> key(100, 0xaa);
  std::vector<std::uint8_t> data{1, 2, 3};
  auto mac1 = hmac_sha1(std::span(key), std::span(data));
  auto hashed_key = sha1(std::span(key));
  std::vector<std::uint8_t> key2(hashed_key.begin(), hashed_key.end());
  auto mac2 = hmac_sha1(std::span(key2), std::span(data));
  EXPECT_EQ(mac1, mac2);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i)
    if (a2.next_u64() != c.next_u64()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    double ranged = rng.next_double(5.0, 6.0);
    EXPECT_GE(ranged, 5.0);
    EXPECT_LT(ranged, 6.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(99);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.next_gaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace sns::util
