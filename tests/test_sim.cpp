// Tests for the discrete-event simulator and network model (src/net).
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/sim.hpp"

namespace sns::net {
namespace {

TEST(SimClock, MonotonicAdvance) {
  SimClock clock;
  EXPECT_EQ(clock.now(), TimePoint{0});
  clock.advance(ms(10));
  EXPECT_EQ(clock.now(), ms(10));
  clock.advance_to(ms(25));
  EXPECT_EQ(clock.now(), ms(25));
}

TEST(Scheduler, FiresInTimeOrder) {
  SimClock clock;
  EventScheduler scheduler(clock);
  std::vector<int> fired;
  scheduler.schedule_at(ms(30), [&] { fired.push_back(3); });
  scheduler.schedule_at(ms(10), [&] { fired.push_back(1); });
  scheduler.schedule_at(ms(20), [&] { fired.push_back(2); });
  scheduler.run_until(ms(25));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(clock.now(), ms(25));
  scheduler.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), ms(30));
}

TEST(Scheduler, SameInstantIsFifo) {
  SimClock clock;
  EventScheduler scheduler(clock);
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) scheduler.schedule_at(ms(5), [&fired, i] { fired.push_back(i); });
  scheduler.run_all();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, EventsMayScheduleEvents) {
  SimClock clock;
  EventScheduler scheduler(clock);
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) scheduler.schedule_after(ms(10), tick);
  };
  scheduler.schedule_at(ms(0), tick);
  scheduler.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(clock.now(), ms(40));
}

class NetworkTest : public ::testing::Test {
 protected:
  Network network_{1234};
};

TEST_F(NetworkTest, ExchangeDeliversAndTimesPacket) {
  NodeId a = network_.add_node("a");
  NodeId b = network_.add_node("b");
  network_.connect(a, b, LinkSpec{ms(5), us(0), 0.0});
  network_.set_handler(b, [](std::span<const std::uint8_t> payload, NodeId) {
    util::Bytes reply(payload.begin(), payload.end());
    reply.push_back('!');
    return reply;
  });
  util::Bytes ping{'h', 'i'};
  auto result = network_.exchange(a, b, std::span(ping));
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().response, (util::Bytes{'h', 'i', '!'}));
  EXPECT_EQ(result.value().rtt, ms(10));  // 5 there + 5 back, no jitter
  EXPECT_EQ(network_.clock().now(), ms(10));
  EXPECT_EQ(result.value().attempts, 1);
}

TEST_F(NetworkTest, MultiHopRouting) {
  NodeId a = network_.add_node("a");
  NodeId r = network_.add_node("router");
  NodeId b = network_.add_node("b");
  network_.connect(a, r, LinkSpec{ms(2), us(0), 0.0});
  network_.connect(r, b, LinkSpec{ms(3), us(0), 0.0});
  network_.set_handler(b, [](std::span<const std::uint8_t>, NodeId) {
    return util::Bytes{1};
  });
  util::Bytes payload{0};
  auto result = network_.exchange(a, b, std::span(payload));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rtt, ms(10));  // (2+3)*2
  auto latency = network_.path_latency(a, b);
  ASSERT_TRUE(latency.ok());
  EXPECT_EQ(latency.value(), ms(5));
}

TEST_F(NetworkTest, ShortestPathPreferred) {
  NodeId a = network_.add_node("a");
  NodeId slow = network_.add_node("slow");
  NodeId b = network_.add_node("b");
  network_.connect(a, b, LinkSpec{ms(4), us(0), 0.0});
  network_.connect(a, slow, LinkSpec{ms(10), us(0), 0.0});
  network_.connect(slow, b, LinkSpec{ms(10), us(0), 0.0});
  auto latency = network_.path_latency(a, b);
  ASSERT_TRUE(latency.ok());
  EXPECT_EQ(latency.value(), ms(4));
}

TEST_F(NetworkTest, NoRouteFails) {
  NodeId a = network_.add_node("a");
  NodeId b = network_.add_node("b");  // not connected
  network_.set_handler(b, [](std::span<const std::uint8_t>, NodeId) {
    return util::Bytes{};
  });
  util::Bytes payload{0};
  EXPECT_FALSE(network_.exchange(a, b, std::span(payload)).ok());
  EXPECT_FALSE(network_.path_latency(a, b).ok());
}

TEST_F(NetworkTest, NoHandlerFails) {
  NodeId a = network_.add_node("a");
  NodeId b = network_.add_node("b");
  network_.connect(a, b, lan_link());
  util::Bytes payload{0};
  EXPECT_FALSE(network_.exchange(a, b, std::span(payload)).ok());
}

TEST_F(NetworkTest, LossTriggersRetryAndTimeout) {
  NodeId a = network_.add_node("a");
  NodeId b = network_.add_node("b");
  network_.connect(a, b, LinkSpec{ms(1), us(0), 1.0});  // 100% loss
  network_.set_handler(b, [](std::span<const std::uint8_t>, NodeId) {
    return util::Bytes{};
  });
  util::Bytes payload{0};
  auto result = network_.exchange(a, b, std::span(payload), ms(100), 3);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(network_.clock().now(), ms(300));  // 3 timeouts burned
}

TEST_F(NetworkTest, PartialLossEventuallySucceeds) {
  NodeId a = network_.add_node("a");
  NodeId b = network_.add_node("b");
  network_.connect(a, b, LinkSpec{ms(1), us(0), 0.5});
  network_.set_handler(b, [](std::span<const std::uint8_t>, NodeId) {
    return util::Bytes{7};
  });
  // Each attempt succeeds with p = 0.5 * 0.5 (request AND response must
  // survive); with 10 attempts p(all fail) = 0.75^10 ~ 5.6%.
  int successes = 0;
  for (int i = 0; i < 50; ++i) {
    util::Bytes payload{0};
    if (network_.exchange(a, b, std::span(payload), ms(10), 10).ok()) ++successes;
  }
  EXPECT_GT(successes, 38);
}

TEST_F(NetworkTest, LinkDownBlocksAndRestores) {
  NodeId a = network_.add_node("a");
  NodeId b = network_.add_node("b");
  network_.connect(a, b, lan_link());
  network_.set_handler(b, [](std::span<const std::uint8_t>, NodeId) {
    return util::Bytes{1};
  });
  util::Bytes payload{0};
  EXPECT_TRUE(network_.exchange(a, b, std::span(payload)).ok());
  network_.set_link_down(a, b, true);
  EXPECT_FALSE(network_.exchange(a, b, std::span(payload)).ok());
  network_.set_link_down(a, b, false);
  EXPECT_TRUE(network_.exchange(a, b, std::span(payload)).ok());
}

TEST_F(NetworkTest, MulticastCollectsGroupResponses) {
  NodeId querier = network_.add_node("q");
  for (int i = 0; i < 4; ++i) {
    std::string label = "m";
    label += std::to_string(i);
    NodeId m = network_.add_node(label);
    network_.connect(querier, m, LinkSpec{ms(1 + i), us(0), 0.0});
    network_.join_group(99, m);
    bool responds = i != 2;  // member 2 stays silent
    network_.set_handler(m, [responds, i](std::span<const std::uint8_t>, NodeId)
                                -> std::optional<util::Bytes> {
      if (!responds) return std::nullopt;
      return util::Bytes{static_cast<std::uint8_t>(i)};
    });
  }
  util::Bytes query{0};
  auto responses = network_.multicast_query(querier, 99, std::span(query), ms(100));
  ASSERT_EQ(responses.size(), 3u);
  // Sorted by arrival: member 0 (rtt 2ms) first.
  EXPECT_EQ(responses[0].payload, util::Bytes{0});
  EXPECT_LT(responses[0].elapsed, responses[1].elapsed);
  EXPECT_EQ(network_.clock().now(), ms(100));  // full window waited
}

TEST_F(NetworkTest, MulticastWindowCutsSlowResponders) {
  NodeId querier = network_.add_node("q");
  NodeId slow = network_.add_node("slow");
  network_.connect(querier, slow, LinkSpec{ms(60), us(0), 0.0});
  network_.join_group(7, slow);
  network_.set_handler(slow, [](std::span<const std::uint8_t>, NodeId) {
    return util::Bytes{1};
  });
  util::Bytes query{0};
  auto responses = network_.multicast_query(querier, 7, std::span(query), ms(100));
  EXPECT_TRUE(responses.empty());  // 120ms rtt > 100ms window
}

TEST_F(NetworkTest, ProcessingDelayExtendsRtt) {
  NodeId a = network_.add_node("a");
  NodeId b = network_.add_node("b");
  network_.connect(a, b, LinkSpec{ms(1), us(0), 0.0});
  network_.set_handler(b, [this](std::span<const std::uint8_t>, NodeId) {
    network_.add_processing_delay(ms(50));
    return util::Bytes{1};
  });
  util::Bytes payload{0};
  auto result = network_.exchange(a, b, std::span(payload));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rtt, ms(52));
}

TEST_F(NetworkTest, AudioStaysInRoom) {
  NodeId speaker = network_.add_node("speaker");
  NodeId same_room = network_.add_node("same");
  NodeId other_room = network_.add_node("other");
  NodeId no_room = network_.add_node("none");
  network_.place_in_room(speaker, 1);
  network_.place_in_room(same_room, 1);
  network_.place_in_room(other_room, 2);
  int same_heard = 0, other_heard = 0, none_heard = 0;
  network_.set_audio_handler(same_room,
                             [&](std::span<const std::uint8_t>, NodeId) { ++same_heard; });
  network_.set_audio_handler(other_room,
                             [&](std::span<const std::uint8_t>, NodeId) { ++other_heard; });
  network_.set_audio_handler(no_room,
                             [&](std::span<const std::uint8_t>, NodeId) { ++none_heard; });
  util::Bytes chirp{1, 2, 3};
  network_.audio_broadcast(speaker, std::span(chirp));
  EXPECT_EQ(same_heard, 1);
  EXPECT_EQ(other_heard, 0);
  EXPECT_EQ(none_heard, 0);
  EXPECT_EQ(network_.clock().now(), ms(150));  // chirp duration
  EXPECT_EQ(network_.room_of(speaker), std::optional<std::uint32_t>(1));
  EXPECT_EQ(network_.room_of(no_room), std::nullopt);
}

TEST_F(NetworkTest, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Network net(seed);
    NodeId a = net.add_node("a");
    NodeId b = net.add_node("b");
    net.connect(a, b, LinkSpec{ms(3), ms(2), 0.2});
    net.set_handler(b, [](std::span<const std::uint8_t>, NodeId) { return util::Bytes{1}; });
    std::vector<std::int64_t> rtts;
    for (int i = 0; i < 20; ++i) {
      util::Bytes p{0};
      auto r = net.exchange(a, b, std::span(p), ms(50), 4);
      rtts.push_back(r.ok() ? r.value().rtt.count() : -1);
    }
    return rtts;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace sns::net
