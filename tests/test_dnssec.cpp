// Tests for DNSSEC-shaped signing, NSEC3 and TSIG (§4.1-4.2).
#include <gtest/gtest.h>

#include <algorithm>

#include "dns/dnssec.hpp"
#include "util/strings.hpp"

namespace sns::dns {
namespace {

ZoneKey test_key() {
  return ZoneKey{name_of("oval-office.loc"), {0x01, 0x02, 0x03, 0x04, 0x05}};
}

RRset sample_rrset() {
  Name owner = name_of("display.oval-office.loc");
  return {make_a(owner, net::Ipv4Addr{{192, 0, 3, 12}}, 120),
          make_a(owner, net::Ipv4Addr{{192, 0, 3, 13}}, 120)};
}

TEST(Sign, SignAndVerify) {
  ZoneKey key = test_key();
  RRset rrset = sample_rrset();
  auto signed_rr = sign_rrset(rrset, key, 1000, 2000);
  ASSERT_TRUE(signed_rr.ok()) << signed_rr.error().message;
  const auto& sig = std::get<RrsigData>(signed_rr.value().rdata);
  EXPECT_EQ(sig.type_covered, RRType::A);
  EXPECT_EQ(sig.signer, key.zone);
  EXPECT_EQ(sig.key_tag, key.key_tag());
  EXPECT_TRUE(verify_rrsig(rrset, sig, key, 1500).ok());
}

TEST(Sign, CanonicalOrderIndependent) {
  // Signature over {r1, r2} verifies against {r2, r1}.
  ZoneKey key = test_key();
  RRset rrset = sample_rrset();
  auto signed_rr = sign_rrset(rrset, key, 0, 100);
  ASSERT_TRUE(signed_rr.ok());
  std::swap(rrset[0], rrset[1]);
  EXPECT_TRUE(
      verify_rrsig(rrset, std::get<RrsigData>(signed_rr.value().rdata), key, 50).ok());
}

TEST(Sign, TamperDetected) {
  ZoneKey key = test_key();
  RRset rrset = sample_rrset();
  auto signed_rr = sign_rrset(rrset, key, 0, 100);
  ASSERT_TRUE(signed_rr.ok());
  auto sig = std::get<RrsigData>(signed_rr.value().rdata);
  // Change an address (spoofing, §4.2 risk 3).
  std::get<AData>(rrset[0].rdata).address = net::Ipv4Addr{{6, 6, 6, 6}};
  EXPECT_FALSE(verify_rrsig(rrset, sig, key, 50).ok());
}

TEST(Sign, WrongKeyRejected) {
  ZoneKey key = test_key();
  ZoneKey other{key.zone, {0xff, 0xee}};
  RRset rrset = sample_rrset();
  auto signed_rr = sign_rrset(rrset, key, 0, 100);
  ASSERT_TRUE(signed_rr.ok());
  EXPECT_FALSE(
      verify_rrsig(rrset, std::get<RrsigData>(signed_rr.value().rdata), other, 50).ok());
}

TEST(Sign, ValidityWindowEnforced) {
  ZoneKey key = test_key();
  RRset rrset = sample_rrset();
  auto signed_rr = sign_rrset(rrset, key, 1000, 2000);
  ASSERT_TRUE(signed_rr.ok());
  const auto& sig = std::get<RrsigData>(signed_rr.value().rdata);
  EXPECT_FALSE(verify_rrsig(rrset, sig, key, 999).ok());   // not yet valid
  EXPECT_FALSE(verify_rrsig(rrset, sig, key, 2001).ok());  // expired
  EXPECT_TRUE(verify_rrsig(rrset, sig, key, 1000).ok());
  EXPECT_TRUE(verify_rrsig(rrset, sig, key, 2000).ok());
}

TEST(Sign, CacheDecrementedTtlStillVerifies) {
  ZoneKey key = test_key();
  RRset rrset = sample_rrset();
  auto signed_rr = sign_rrset(rrset, key, 0, 100);
  ASSERT_TRUE(signed_rr.ok());
  for (auto& rr : rrset) rr.ttl = 7;  // aged in a cache
  EXPECT_TRUE(
      verify_rrsig(rrset, std::get<RrsigData>(signed_rr.value().rdata), key, 50).ok());
}

TEST(Sign, RejectsMixedRrsetsAndForeignZones) {
  ZoneKey key = test_key();
  RRset mixed = sample_rrset();
  mixed.push_back(make_txt(mixed.front().name, {"x"}));
  EXPECT_FALSE(sign_rrset(mixed, key, 0, 1).ok());
  RRset foreign{make_a(name_of("host.example.com"), net::Ipv4Addr{{1, 2, 3, 4}})};
  EXPECT_FALSE(sign_rrset(foreign, key, 0, 1).ok());
  EXPECT_FALSE(sign_rrset({}, key, 0, 1).ok());
}

TEST(ZoneKeyMeta, DnskeyAndTag) {
  ZoneKey key = test_key();
  DnskeyData dnskey = key.to_dnskey();
  EXPECT_EQ(dnskey.algorithm, kToyHmacAlgorithm);
  EXPECT_EQ(dnskey.public_key, key.secret);
  ZoneKey other{key.zone, {0x99}};
  EXPECT_NE(key.key_tag(), other.key_tag());
}

// --- NSEC3 -------------------------------------------------------------------

TEST(Nsec3, HashDeterministicAndSaltSensitive) {
  Name name = name_of("mic.oval-office.loc");
  std::vector<std::uint8_t> salt{0xaa, 0xbb};
  auto h1 = nsec3_hash(name, std::span(salt), 10);
  auto h2 = nsec3_hash(name, std::span(salt), 10);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1.size(), 20u);
  std::vector<std::uint8_t> other_salt{0xcc};
  EXPECT_NE(h1, nsec3_hash(name, std::span(other_salt), 10));
  EXPECT_NE(h1, nsec3_hash(name, std::span(salt), 11));
  // Case-insensitive.
  EXPECT_EQ(h1, nsec3_hash(name_of("MIC.Oval-Office.LOC"), std::span(salt), 10));
}

TEST(Nsec3, ChainCoversAbsentNames) {
  Name zone = name_of("oval-office.loc");
  std::vector<std::pair<Name, std::vector<RRType>>> names{
      {zone, {RRType::SOA, RRType::NS}},
      {name_of("mic.oval-office.loc"), {RRType::BDADDR}},
      {name_of("speaker.oval-office.loc"), {RRType::BDADDR, RRType::DTMF}},
      {name_of("display.oval-office.loc"), {RRType::AAAA}},
  };
  std::vector<std::uint8_t> salt{0x01};
  auto chain = build_nsec3_chain(zone, names, std::span(salt), 5, 60);
  ASSERT_EQ(chain.size(), 4u);

  // Every absent name must be covered by exactly one chain record;
  // every present name by none.
  for (const char* absent : {"camera.oval-office.loc", "nothere.oval-office.loc",
                             "a.oval-office.loc", "zzz.oval-office.loc"}) {
    int covering = 0;
    for (const auto& rr : chain) {
      auto covered = nsec3_covers(rr, name_of(absent), zone);
      ASSERT_TRUE(covered.ok());
      if (covered.value()) ++covering;
    }
    EXPECT_EQ(covering, 1) << absent;
  }
  for (const auto& [present, types] : names) {
    for (const auto& rr : chain) {
      auto covered = nsec3_covers(rr, present, zone);
      ASSERT_TRUE(covered.ok());
      EXPECT_FALSE(covered.value()) << present.to_string();
    }
  }
}

TEST(Nsec3, ChainLinksFormCycle) {
  Name zone = name_of("z.loc");
  std::vector<std::pair<Name, std::vector<RRType>>> names{
      {zone, {RRType::SOA}},
      {name_of("a.z.loc"), {RRType::A}},
      {name_of("b.z.loc"), {RRType::A}},
  };
  std::vector<std::uint8_t> salt;
  auto chain = build_nsec3_chain(zone, names, std::span(salt), 0, 60);
  ASSERT_EQ(chain.size(), 3u);
  // The multiset of next-hashes equals the multiset of owner hashes.
  std::vector<std::string> owners, nexts;
  for (const auto& rr : chain) {
    owners.push_back(rr.name.labels().front());
    nexts.push_back(util::to_base32hex(
        std::span(std::get<Nsec3Data>(rr.rdata).next_hashed_owner)));
  }
  std::sort(owners.begin(), owners.end());
  std::sort(nexts.begin(), nexts.end());
  EXPECT_EQ(owners, nexts);
}

TEST(Nsec3, TypeBitmapPreserved) {
  Name zone = name_of("z.loc");
  std::vector<std::pair<Name, std::vector<RRType>>> names{
      {zone, {RRType::SOA, RRType::BDADDR, RRType::WIFI}},
  };
  std::vector<std::uint8_t> salt;
  auto chain = build_nsec3_chain(zone, names, std::span(salt), 0, 60);
  ASSERT_EQ(chain.size(), 1u);
  const auto& data = std::get<Nsec3Data>(chain[0].rdata);
  EXPECT_EQ(data.types, (std::vector<RRType>{RRType::SOA, RRType::BDADDR, RRType::WIFI}));
}

TEST(Nsec3, CoversRejectsNonNsec3) {
  auto rr = make_a(name_of("a.z.loc"), net::Ipv4Addr{{1, 2, 3, 4}});
  EXPECT_FALSE(nsec3_covers(rr, name_of("b.z.loc"), name_of("z.loc")).ok());
}

// --- TSIG --------------------------------------------------------------------

TEST(Tsig, SignVerifyStrips) {
  TsigKey key{name_of("update-key"), {1, 2, 3}};
  Message msg = make_query(55, name_of("mic.oval-office.loc"), RRType::A);
  tsig_sign(msg, key, 100000);
  ASSERT_EQ(msg.additionals.size(), 1u);
  EXPECT_EQ(msg.additionals.back().type, RRType::TSIG);
  auto status = tsig_verify(msg, key, 100010);
  EXPECT_TRUE(status.ok()) << status.error().message;
  EXPECT_TRUE(msg.additionals.empty());  // TSIG consumed
}

TEST(Tsig, SurvivesWireRoundTrip) {
  TsigKey key{name_of("update-key"), {9, 9, 9}};
  Message msg = make_query(56, name_of("a.loc"), RRType::TXT);
  tsig_sign(msg, key, 5000);
  auto wire = msg.encode();
  auto decoded = Message::decode(std::span(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(tsig_verify(decoded.value(), key, 5001).ok());
}

TEST(Tsig, TamperDetected) {
  TsigKey key{name_of("update-key"), {1, 2, 3}};
  Message msg = make_query(57, name_of("a.loc"), RRType::A);
  tsig_sign(msg, key, 100);
  msg.questions[0].type = RRType::AAAA;  // tamper after signing
  EXPECT_FALSE(tsig_verify(msg, key, 100).ok());
  EXPECT_EQ(msg.additionals.size(), 1u);  // left intact on failure
}

TEST(Tsig, WrongKeyOrMissingRejected) {
  TsigKey key{name_of("update-key"), {1, 2, 3}};
  TsigKey wrong{name_of("update-key"), {4, 5, 6}};
  TsigKey other_name{name_of("other-key"), {1, 2, 3}};
  Message msg = make_query(58, name_of("a.loc"), RRType::A);
  EXPECT_FALSE(tsig_verify(msg, key, 0).ok());  // unsigned
  tsig_sign(msg, key, 100);
  Message copy = msg;
  EXPECT_FALSE(tsig_verify(copy, wrong, 100).ok());
  copy = msg;
  EXPECT_FALSE(tsig_verify(copy, other_name, 100).ok());
}

TEST(Tsig, FudgeWindowEnforced) {
  TsigKey key{name_of("update-key"), {1, 2, 3}};
  Message msg = make_query(59, name_of("a.loc"), RRType::A);
  tsig_sign(msg, key, 10000);
  Message late = msg;
  EXPECT_FALSE(tsig_verify(late, key, 10000 + 301).ok());  // beyond 300s fudge
  Message early = msg;
  EXPECT_FALSE(tsig_verify(early, key, 10000 - 301).ok());
  Message in_window = msg;
  EXPECT_TRUE(tsig_verify(in_window, key, 10000 + 299).ok());
}

}  // namespace
}  // namespace sns::dns
