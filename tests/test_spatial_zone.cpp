// Tests for SpatialZone: registration, zero-conf naming, split views,
// geodetic index integration, delegation (src/core/spatial_zone).
#include <gtest/gtest.h>

#include "core/spatial_zone.hpp"

namespace sns::core {
namespace {

using dns::Name;
using dns::name_of;
using dns::RRType;

SpatialZone office_zone(IndexKind kind = IndexKind::Hilbert) {
  auto civic = CivicName::from_components({"usa", "dc", "oval-office"}).value();
  return SpatialZone(civic, geo::BoundingBox{38.897, -77.038, 38.898, -77.037}, kind, 8);
}

Device mic_device() {
  Device device;
  device.function = "mic";
  device.local_addresses = {net::Bdaddr{{1, 2, 3, 4, 5, 6}}, net::Ipv4Addr{{192, 0, 3, 10}}};
  device.position = {38.8975, -77.0375, 18.0};
  return device;
}

TEST(SpatialZone, DomainDerivedFromCivic) {
  auto zone = office_zone();
  EXPECT_EQ(zone.domain(), name_of("oval-office.dc.usa.loc"));
  EXPECT_EQ(zone.local_zone()->apex(), zone.domain());
  EXPECT_EQ(zone.global_zone()->apex(), zone.domain());
}

TEST(SpatialZone, RegisterDerivesRecords) {
  auto zone = office_zone();
  auto name = zone.register_device(mic_device());
  ASSERT_TRUE(name.ok()) << name.error().message;
  EXPECT_EQ(name.value(), name_of("mic.oval-office.dc.usa.loc"));

  // Local view: BDADDR + A + LOC.
  EXPECT_NE(zone.local_zone()->find(name.value(), RRType::BDADDR), nullptr);
  EXPECT_NE(zone.local_zone()->find(name.value(), RRType::A), nullptr);
  const auto* loc = zone.local_zone()->find(name.value(), RRType::LOC);
  ASSERT_NE(loc, nullptr);
  EXPECT_NEAR(std::get<dns::LocData>(loc->front().rdata).latitude_degrees(), 38.8975, 1e-5);

  // No global address: nothing in the global view.
  EXPECT_EQ(zone.global_zone()->find(name.value(), RRType::AAAA), nullptr);
  EXPECT_EQ(zone.global_zone()->find(name.value(), RRType::LOC), nullptr);
}

TEST(SpatialZone, GlobalAddressPublishedExternally) {
  auto zone = office_zone();
  Device device = mic_device();
  device.function = "display";
  device.global_address = net::Ipv6Addr::parse("2001:db8::12").value();
  auto name = zone.register_device(device);
  ASSERT_TRUE(name.ok());
  EXPECT_NE(zone.global_zone()->find(name.value(), RRType::AAAA), nullptr);
  EXPECT_NE(zone.global_zone()->find(name.value(), RRType::LOC), nullptr);
  // The local link addresses still do NOT appear globally.
  EXPECT_EQ(zone.global_zone()->find(name.value(), RRType::BDADDR), nullptr);
}

TEST(SpatialZone, ZeroConfNamingDisambiguates) {
  // §2.3: function names stay unique within the spatial domain.
  auto zone = office_zone();
  auto first = zone.register_device(mic_device());
  auto second = zone.register_device(mic_device());
  auto third = zone.register_device(mic_device());
  ASSERT_TRUE(first.ok() && second.ok() && third.ok());
  EXPECT_EQ(first.value(), name_of("mic.oval-office.dc.usa.loc"));
  EXPECT_EQ(second.value(), name_of("mic-2.oval-office.dc.usa.loc"));
  EXPECT_EQ(third.value(), name_of("mic-3.oval-office.dc.usa.loc"));
  EXPECT_EQ(zone.device_count(), 3u);
}

TEST(SpatialZone, FunctionNamesNormalised) {
  auto zone = office_zone();
  Device device = mic_device();
  device.function = "Ceiling Light";
  auto name = zone.register_device(device);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value(), name_of("ceiling-light.oval-office.dc.usa.loc"));
}

TEST(SpatialZone, RejectsOutOfBoundsDevices) {
  auto zone = office_zone();
  Device device = mic_device();
  device.position = {51.5, -0.12, 0};  // London, not DC
  EXPECT_FALSE(zone.register_device(device).ok());
}

TEST(SpatialZone, GeodeticQueryFindsDevices) {
  auto zone = office_zone();
  auto mic = zone.register_device(mic_device());
  Device far = mic_device();
  far.function = "corner-sensor";
  far.position = {38.8979, -77.0371, 18.0};
  auto corner = zone.register_device(far);
  ASSERT_TRUE(mic.ok() && corner.ok());

  auto near_mic = zone.devices_in(geo::BoundingBox::around({38.8975, -77.0375, 0}, 0.0001));
  ASSERT_EQ(near_mic.size(), 1u);
  EXPECT_EQ(near_mic[0], mic.value());

  auto everything = zone.devices_in(zone.bounds());
  EXPECT_EQ(everything.size(), 2u);
}

TEST(SpatialZone, UpdatePositionMovesIndexAndLoc) {
  auto zone = office_zone();
  auto name = zone.register_device(mic_device()).value();
  geo::GeoPoint new_position{38.8979, -77.0372, 18.0};
  ASSERT_TRUE(zone.update_position(name, new_position).ok());

  auto old_spot = zone.devices_in(geo::BoundingBox::around({38.8975, -77.0375, 0}, 0.0001));
  EXPECT_TRUE(old_spot.empty());
  auto new_spot = zone.devices_in(geo::BoundingBox::around(new_position, 0.0001));
  ASSERT_EQ(new_spot.size(), 1u);

  const auto* loc = zone.local_zone()->find(name, RRType::LOC);
  ASSERT_NE(loc, nullptr);
  EXPECT_NEAR(std::get<dns::LocData>(loc->front().rdata).latitude_degrees(), 38.8979, 1e-5);
  // Out-of-zone moves are rejected (that is a zone *move*, §4.1).
  EXPECT_FALSE(zone.update_position(name, {51.5, -0.12, 0}).ok());
  EXPECT_FALSE(zone.update_position(name_of("ghost.oval-office.dc.usa.loc"),
                                    new_position)
                   .ok());
}

TEST(SpatialZone, DeregisterRemovesEverything) {
  auto zone = office_zone();
  auto name = zone.register_device(mic_device()).value();
  ASSERT_TRUE(zone.deregister_device(name).ok());
  EXPECT_EQ(zone.device_count(), 0u);
  EXPECT_EQ(zone.local_zone()->find(name, RRType::BDADDR), nullptr);
  EXPECT_TRUE(zone.devices_in(zone.bounds()).empty());
  EXPECT_FALSE(zone.deregister_device(name).ok());
  // The function name becomes reusable.
  auto again = zone.register_device(mic_device());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), name);
}

TEST(SpatialZone, DelegationInBothViews) {
  auto zone = office_zone();
  Name child = name_of("closet.oval-office.dc.usa.loc");
  Name ns = name_of("ns.closet.oval-office.dc.usa.loc");
  ASSERT_TRUE(zone.delegate_child(child, ns, net::Ipv4Addr{{10, 0, 0, 9}}).ok());
  for (const auto& view : {zone.local_zone(), zone.global_zone()}) {
    auto result = view->lookup(name_of("x.closet.oval-office.dc.usa.loc"), RRType::A);
    EXPECT_EQ(result.kind, server::Zone::Lookup::Kind::Delegation);
  }
}

TEST(SpatialZone, AllIndexKindsBehaveIdentically) {
  for (IndexKind kind :
       {IndexKind::Naive, IndexKind::Hilbert, IndexKind::RTree, IndexKind::Quadtree}) {
    auto zone = office_zone(kind);
    auto mic = zone.register_device(mic_device());
    ASSERT_TRUE(mic.ok());
    auto found = zone.devices_in(geo::BoundingBox::around({38.8975, -77.0375, 0}, 0.0001));
    EXPECT_EQ(found.size(), 1u) << zone.index().name();
  }
}

TEST(RecordsForAddress, Table1Mapping) {
  Name owner = name_of("dev.zone.loc");
  Name domain = name_of("zone.loc");
  auto check_single = [&](const net::AnyAddress& address, RRType expected) {
    auto records = records_for_address(owner, address, domain);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].type, expected);
    EXPECT_EQ(records[0].name, owner);
  };
  check_single(net::Bdaddr{}, RRType::BDADDR);
  check_single(net::Ipv4Addr{}, RRType::A);
  check_single(net::Ipv6Addr{}, RRType::AAAA);
  check_single(net::DtmfTone{"12#"}, RRType::DTMF);
  check_single(net::LoraDevAddr{7}, RRType::LORA);
  // Zigbee rides the TXT fallback.
  auto zigbee = records_for_address(owner, net::ZigbeeAddr{}, domain);
  ASSERT_EQ(zigbee.size(), 1u);
  EXPECT_EQ(zigbee[0].type, RRType::TXT);
  EXPECT_EQ(std::get<dns::TxtData>(zigbee[0].rdata).strings[0].substr(0, 11), "sns:zigbee=");
  // LORA gateway name derives from the zone.
  auto lora = records_for_address(owner, net::LoraDevAddr{0x01020304}, domain);
  EXPECT_EQ(std::get<dns::LoraData>(lora[0].rdata).gateway, name_of("gw.zone.loc"));
}

}  // namespace
}  // namespace sns::core
