// Tests for the immutable ZoneView + transactional write API
// (src/server/zone): serial policies, structural sharing, base-view
// isolation, the incremental answer-cache rebuild the commit logs
// feed, and a differential property test replaying randomly
// interleaved transactions.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/answer_cache.hpp"
#include "server/authoritative.hpp"
#include "server/update.hpp"
#include "server/zone.hpp"

namespace sns::server {
namespace {

using dns::make_a;
using dns::make_cname;
using dns::make_ns;
using dns::make_soa;
using dns::make_txt;
using dns::name_of;

const Name kApex = name_of("fleet.loc");

Name sub(const std::string& label) { return name_of(label + ".fleet.loc"); }

ZoneViewPtr base_view() {
  ZoneBuilder builder(kApex);
  (void)builder.add(make_soa(kApex, sub("ns"), 1));
  (void)builder.add(make_ns(kApex, sub("ns")));
  (void)builder.add(make_a(sub("ns"), net::Ipv4Addr{{192, 0, 2, 1}}));
  for (int i = 0; i < 8; ++i)
    (void)builder.add(make_txt(sub("dev" + std::to_string(i)), {"home-" + std::to_string(i)}));
  auto view = std::move(builder).build();
  EXPECT_TRUE(view.ok());
  return std::move(view).value();
}

TEST(ZoneTxn, CommitBumpsSerialOnChangeOnly) {
  auto base = base_view();
  EXPECT_EQ(base->serial(), 1u);

  // A dirty txn under BumpOnChange bumps exactly once.
  ZoneTxn txn(base);
  ASSERT_TRUE(txn.add(make_txt(sub("dev8"), {"home-8"})).ok());
  auto commit = std::move(txn).commit();
  EXPECT_TRUE(commit.changed);
  EXPECT_EQ(commit.view->serial(), 2u);

  // An empty txn is a no-op: same serial, changed == false.
  auto noop = ZoneTxn(commit.view);
  auto unchanged = std::move(noop).commit();
  EXPECT_FALSE(unchanged.changed);
  EXPECT_EQ(unchanged.view->serial(), 2u);

  // Serial::Keep never bumps, even for a dirty txn…
  ZoneTxn keep(commit.view);
  ASSERT_TRUE(keep.add(make_txt(sub("dev9"), {"home-9"})).ok());
  auto kept = std::move(keep).commit(ZoneTxn::Serial::Keep);
  EXPECT_TRUE(kept.changed);
  EXPECT_EQ(kept.view->serial(), 2u);

  // …unless bump_serial() forces it.
  ZoneTxn forced(kept.view);
  forced.bump_serial();
  auto bumped = std::move(forced).commit(ZoneTxn::Serial::Keep);
  EXPECT_TRUE(bumped.changed);
  EXPECT_EQ(bumped.view->serial(), 3u);
}

TEST(ZoneTxn, DedupNoOpAddStillMarksDirty) {
  // RFC 2136: re-adding identical rdata is accepted, and an accepted
  // update op bumps the serial even though the zone data is unchanged.
  auto base = base_view();
  ZoneTxn txn(base);
  ASSERT_TRUE(txn.add(make_txt(sub("dev0"), {"home-0"})).ok());
  EXPECT_TRUE(txn.dirty());
  auto commit = std::move(txn).commit();
  EXPECT_EQ(commit.view->serial(), base->serial() + 1);
  EXPECT_EQ(commit.view->find(sub("dev0"), RRType::TXT)->size(), 1u);
}

TEST(ZoneTxn, SoaMnameSurvivesUpdateCycle) {
  // Regression: the old runtime rebuilt zones via Zone(apex, apex),
  // silently replacing the SOA primary NS with the apex. A full RFC
  // 2136 cycle through the engine must leave MNAME and RNAME intact.
  auto base = base_view();
  const auto before = std::get<dns::SoaData>(base->find(kApex, RRType::SOA)->front().rdata);
  ASSERT_EQ(before.mname, sub("ns"));

  auto zone = std::make_shared<Zone>(base);
  AuthoritativeServer engine("txn-test");
  engine.add_zone(zone);
  ClientContext ctx;
  auto ack = engine.handle(
      make_update_add(0x2136, kApex, make_txt(sub("roamer"), {"re-homed"})), ctx);
  ASSERT_EQ(ack.header.rcode, dns::Rcode::NoError);

  const auto after = std::get<dns::SoaData>(zone->find(kApex, RRType::SOA)->front().rdata);
  EXPECT_EQ(after.mname, before.mname);
  EXPECT_EQ(after.rname, before.rname);
  EXPECT_EQ(after.serial, before.serial + 1);
  EXPECT_NE(zone->find(sub("roamer"), RRType::TXT), nullptr);
}

TEST(ZoneTxn, BaseViewIsolatedFromCommit) {
  auto base = base_view();
  std::size_t base_count = base->record_count();

  ZoneTxn txn(base);
  EXPECT_EQ(txn.remove_rrset(sub("dev3"), RRType::TXT), 1u);
  ASSERT_TRUE(txn.add(make_txt(sub("dev100"), {"new-home"})).ok());
  auto commit = std::move(txn).commit();

  // The base snapshot is untouched by the committed successor.
  EXPECT_EQ(base->record_count(), base_count);
  EXPECT_NE(base->find(sub("dev3"), RRType::TXT), nullptr);
  EXPECT_EQ(base->find(sub("dev100"), RRType::TXT), nullptr);
  EXPECT_EQ(base->serial(), 1u);

  EXPECT_EQ(commit.view->find(sub("dev3"), RRType::TXT), nullptr);
  EXPECT_NE(commit.view->find(sub("dev100"), RRType::TXT), nullptr);
}

TEST(ZoneTxn, CommitSharesUntouchedStructureWithBase) {
  auto base = base_view();
  ZoneTxn txn(base);
  ASSERT_TRUE(txn.add(make_txt(sub("dev0"), {"moved"})).ok());
  auto commit = std::move(txn).commit();

  // Untouched owners resolve to the very same RRset object in both
  // views — the successor shares nodes instead of copying the zone.
  for (int i = 1; i < 8; ++i) {
    Name owner = sub("dev" + std::to_string(i));
    EXPECT_EQ(base->find(owner, RRType::TXT), commit.view->find(owner, RRType::TXT))
        << owner.to_string();
  }
  // The touched owner (and the apex, whose serial moved) diverge.
  EXPECT_NE(base->find(sub("dev0"), RRType::TXT), commit.view->find(sub("dev0"), RRType::TXT));
  EXPECT_NE(base->find(kApex, RRType::SOA), commit.view->find(kApex, RRType::SOA));
}

TEST(ZoneTxn, ReadYourWrites) {
  auto base = base_view();
  ZoneTxn txn(base);
  ASSERT_TRUE(txn.add(make_txt(sub("staged"), {"pending"})).ok());
  EXPECT_EQ(txn.remove_rrset(sub("dev1"), RRType::TXT), 1u);

  // Staged state is visible inside the txn, invisible outside it.
  EXPECT_NE(txn.find(sub("staged"), RRType::TXT), nullptr);
  EXPECT_EQ(txn.find(sub("dev1"), RRType::TXT), nullptr);
  EXPECT_FALSE(txn.name_exists(sub("dev1")));
  EXPECT_EQ(base->find(sub("staged"), RRType::TXT), nullptr);
  EXPECT_TRUE(base->name_exists(sub("dev1")));
}

TEST(ZoneTxn, CnameExclusivityEnforced) {
  auto base = base_view();
  ZoneTxn txn(base);
  ASSERT_TRUE(txn.add(make_cname(sub("alias"), sub("dev0"))).ok());
  EXPECT_FALSE(txn.add(make_a(sub("alias"), net::Ipv4Addr{{10, 0, 0, 1}})).ok());
  EXPECT_FALSE(txn.add(make_cname(sub("dev0"), sub("dev1"))).ok());
}

TEST(ZoneTxn, TouchedOwnersAndNsFlagReported) {
  auto base = base_view();
  {
    ZoneTxn txn(base);
    ASSERT_TRUE(txn.add(make_txt(sub("dev0"), {"moved"})).ok());
    auto commit = std::move(txn).commit();
    // dev0 plus the apex (serial bump) — nothing else.
    EXPECT_FALSE(commit.ns_touched);
    ASSERT_EQ(commit.touched.size(), 2u);
    EXPECT_TRUE((commit.touched[0] == kApex) != (commit.touched[1] == kApex));
  }
  {
    ZoneTxn txn(base);
    ASSERT_TRUE(txn.add(make_ns(sub("child"), sub("ns.child"))).ok());
    auto commit = std::move(txn).commit();
    EXPECT_TRUE(commit.ns_touched);
  }
  {
    ZoneTxn txn(base);
    EXPECT_EQ(txn.remove_rrset(kApex, RRType::NS), 1u);
    auto commit = std::move(txn).commit();
    EXPECT_TRUE(commit.ns_touched);
  }
}

TEST(ZoneTxn, EmptyNonTerminalDisappearsWithItsLeaf) {
  // Erasing the only deep name under an ENT must take the ENT with it
  // (the treap range probe, not a stale index entry, decides this).
  auto base = base_view();
  ZoneTxn grow(base);
  ASSERT_TRUE(grow.add(make_a(sub("sensor.shelf"), net::Ipv4Addr{{10, 0, 0, 9}})).ok());
  auto with = std::move(grow).commit();
  EXPECT_EQ(with.view->lookup(sub("shelf"), RRType::A).kind, ZoneView::Lookup::Kind::NoData);

  ZoneTxn shrink(with.view);
  EXPECT_EQ(shrink.remove_name(sub("sensor.shelf")), 1u);
  auto without = std::move(shrink).commit();
  EXPECT_EQ(without.view->lookup(sub("shelf"), RRType::A).kind,
            ZoneView::Lookup::Kind::NxDomain);
  // The intermediate state still serves NoData from its own snapshot.
  EXPECT_EQ(with.view->lookup(sub("shelf"), RRType::A).kind, ZoneView::Lookup::Kind::NoData);
}

TEST(ZoneFacade, CommitLogAccumulatesAndDrains) {
  Zone zone(base_view());
  {
    auto txn = zone.txn();
    ASSERT_TRUE(txn.add(make_txt(sub("dev0"), {"moved"})).ok());
    (void)zone.commit(std::move(txn));
  }
  {
    auto txn = zone.txn();
    EXPECT_EQ(txn.remove_rrset(sub("dev1"), RRType::TXT), 1u);
    (void)zone.commit(std::move(txn));
  }
  const auto& log = zone.commit_log();
  EXPECT_EQ(log.commits, 2u);
  EXPECT_FALSE(log.overflow);
  EXPECT_TRUE(log.touched.count(sub("dev0")) == 1 && log.touched.count(sub("dev1")) == 1);

  auto drained = zone.take_commit_log();
  EXPECT_EQ(drained.commits, 2u);
  EXPECT_EQ(zone.commit_log().commits, 0u);
  EXPECT_TRUE(zone.commit_log().touched.empty());

  // Wholesale replacement can't enumerate owners: it logs an overflow.
  zone.replace(base_view());
  EXPECT_TRUE(zone.commit_log().overflow);
}

TEST(AnswerCacheRebuild, IncrementalMatchesFullBuildAfterCommit) {
  auto base = base_view();
  auto before = runtime::AnswerCache::build({base});
  ASSERT_NE(before, nullptr);

  ZoneTxn txn(base);
  ASSERT_TRUE(txn.add(make_txt(sub("dev2"), {"second-string"})).ok());
  EXPECT_EQ(txn.remove_rrset(sub("dev5"), RRType::TXT), 1u);
  auto commit = std::move(txn).commit();

  auto incremental = runtime::AnswerCache::rebuild(*before, {base}, {commit.view},
                                                   commit.touched);
  auto full = runtime::AnswerCache::build({commit.view});
  ASSERT_NE(incremental, nullptr);
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(incremental->size(), full->size());

  // Every (name, type) the new view serves must answer byte-for-byte
  // identically from the incremental and the from-scratch cache.
  for (const auto& [owner, types] : commit.view->all_names()) {
    for (RRType type : types) {
      auto query = dns::make_query(0x7a7a, owner, type);
      auto wire = query.encode();
      util::Bytes inc_reply, full_reply;
      bool inc_hit = incremental->try_answer(std::span(wire), inc_reply);
      bool full_hit = full->try_answer(std::span(wire), full_reply);
      EXPECT_EQ(inc_hit, full_hit) << owner.to_string() << " " << dns::to_string(type);
      if (inc_hit && full_hit) {
        EXPECT_EQ(inc_reply, full_reply) << owner.to_string();
      }
    }
  }
  // The removed RRset must not answer from the incremental cache.
  auto gone = dns::make_query(0x7a7b, sub("dev5"), RRType::TXT);
  auto gone_wire = gone.encode();
  util::Bytes reply;
  EXPECT_FALSE(incremental->try_answer(std::span(gone_wire), reply));
}

TEST(AnswerCacheRebuild, CnameRehomeNeverPinsForeignRecords) {
  // Regression: rebuild() used to re-derive every type in the old/new
  // union at a touched owner. Replacing dev0's TXT with a CNAME to
  // dev1 made it query (dev0, TXT); the engine chases the CNAME and
  // answers with dev1's TXT — an entry build() would never create. A
  // later commit touching only dev1 recomputed (dev1, TXT) but not
  // (dev0, TXT), so the fast path served dev1's stale records under
  // dev0's key until an unrelated full rebuild.
  auto base = base_view();
  auto cache0 = runtime::AnswerCache::build({base});
  ASSERT_NE(cache0, nullptr);

  // Commit 1: dev0 re-homes — its TXT becomes a CNAME to dev1.
  ZoneTxn alias(base);
  EXPECT_EQ(alias.remove_rrset(sub("dev0"), RRType::TXT), 1u);
  ASSERT_TRUE(alias.add(make_cname(sub("dev0"), sub("dev1"))).ok());
  auto c1 = std::move(alias).commit();
  auto cache1 = runtime::AnswerCache::rebuild(*cache0, {base}, {c1.view}, c1.touched);

  // Commit 2 touches only dev1 (and the apex): its TXT changes.
  ZoneTxn rehome(c1.view);
  EXPECT_EQ(rehome.remove_rrset(sub("dev1"), RRType::TXT), 1u);
  ASSERT_TRUE(rehome.add(make_txt(sub("dev1"), {"moved"})).ok());
  auto c2 = std::move(rehome).commit();
  auto cache2 = runtime::AnswerCache::rebuild(*cache1, {c1.view}, {c2.view}, c2.touched);

  // (dev0, TXT) must MISS so the decoded path chases the CNAME against
  // the live view — a hit could only serve dev1's pre-commit records.
  auto query = dns::make_query(0x2136, sub("dev0"), RRType::TXT);
  auto wire = query.encode();
  util::Bytes reply;
  EXPECT_FALSE(cache2->try_answer(std::span(wire), reply));

  // And the incremental chain agrees hit-for-hit with a fresh build.
  auto full = runtime::AnswerCache::build({c2.view});
  EXPECT_EQ(cache2->size(), full->size());
  for (const auto& [owner, types] : c2.view->all_names()) {
    for (RRType type : types) {
      auto probe = dns::make_query(0x7b7b, owner, type);
      auto probe_wire = probe.encode();
      util::Bytes inc_reply, full_reply;
      bool inc_hit = cache2->try_answer(std::span(probe_wire), inc_reply);
      bool full_hit = full->try_answer(std::span(probe_wire), full_reply);
      EXPECT_EQ(inc_hit, full_hit) << owner.to_string() << " " << dns::to_string(type);
      if (inc_hit && full_hit) {
        EXPECT_EQ(inc_reply, full_reply) << owner.to_string();
      }
    }
  }
}

#ifndef NDEBUG
TEST(ZoneFacadeDeathTest, CommittingStaleTxnAsserts) {
  // Committing a txn opened before an intervening commit would install
  // a view that silently discards that commit (lost update); debug
  // builds must refuse instead of publishing it.
  Zone zone(base_view());
  auto stale = zone.txn();
  ASSERT_TRUE(stale.add(make_txt(sub("late"), {"stale-base"})).ok());
  auto fresh = zone.txn();
  ASSERT_TRUE(fresh.add(make_txt(sub("dev0"), {"intervening"})).ok());
  (void)zone.commit(std::move(fresh));
  EXPECT_DEATH((void)zone.commit(std::move(stale)), "stale Zone view");
}
#endif

// Differential property test: randomly interleaved multi-op
// transactions and the same ops replayed one at a time in program
// order on a second zone must land on byte-identical record sets —
// and rebuilding from scratch out of all_records() must agree with
// both. Txn semantics are sequential (read-your-writes), so each
// staged op sees exactly what a one-op replay at that point would.
TEST(ZoneTxnProperty, InterleavedCommitsMatchOneOpReplay) {
  // Deterministic xorshift so failures reproduce.
  std::uint64_t state = 0x5a172136deadbeefULL;
  auto rng = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  Zone chained(base_view());
  Zone replayed(base_view());

  struct Op {
    enum Kind { Add, RemoveRRset, RemoveRecord, RemoveName } kind;
    ResourceRecord rr;  // Add / RemoveRecord
    Name owner;         // RemoveRRset / RemoveName
    bool accepted;      // outcome on the chained txn
    std::size_t count;  // removal count on the chained txn
  };

  constexpr int kRounds = 60;
  for (int round = 0; round < kRounds; ++round) {
    auto txn = chained.txn();
    std::vector<Op> ops;
    std::size_t n = 1 + rng() % 5;
    for (std::size_t i = 0; i < n; ++i) {
      Name owner = sub("dev" + std::to_string(rng() % 12));
      switch (rng() % 5) {
        case 0: {
          Op op{Op::Add, make_txt(owner, {"home-" + std::to_string(rng() % 6)}), owner, false, 0};
          op.accepted = txn.add(op.rr).ok();
          ops.push_back(op);
          break;
        }
        case 1: {
          Op op{Op::Add,
                make_a(owner, net::Ipv4Addr{{10, 0, 0, static_cast<std::uint8_t>(rng() % 8)}}),
                owner, false, 0};
          op.accepted = txn.add(op.rr).ok();
          ops.push_back(op);
          break;
        }
        case 2: {
          Op op{Op::RemoveRRset, {}, owner, false, 0};
          op.count = txn.remove_rrset(owner, RRType::TXT);
          ops.push_back(op);
          break;
        }
        case 3: {
          Op op{Op::RemoveRecord,
                make_a(owner, net::Ipv4Addr{{10, 0, 0, static_cast<std::uint8_t>(rng() % 8)}}),
                owner, false, 0};
          op.accepted = txn.remove_record(op.rr);
          ops.push_back(op);
          break;
        }
        default: {
          Op op{Op::RemoveName, {}, owner, false, 0};
          op.count = txn.remove_name(owner);
          ops.push_back(op);
          break;
        }
      }
    }
    (void)chained.commit(std::move(txn), ZoneTxn::Serial::Keep);

    // Replay in program order; every outcome must match the txn's.
    for (const auto& op : ops) {
      switch (op.kind) {
        case Op::Add:
          EXPECT_EQ(replayed.add(op.rr).ok(), op.accepted);
          break;
        case Op::RemoveRRset:
          EXPECT_EQ(replayed.remove_rrset(op.owner, RRType::TXT), op.count);
          break;
        case Op::RemoveRecord:
          EXPECT_EQ(replayed.remove_record(op.rr), op.accepted);
          break;
        case Op::RemoveName:
          EXPECT_EQ(replayed.remove_name(op.owner), op.count);
          break;
      }
    }
  }

  // Byte-identical canonical record streams, and a from-scratch build
  // of those records reproduces them exactly — shared nodes hold the
  // same logical content a fresh build would.
  auto records = chained.all_records();
  EXPECT_EQ(records, replayed.all_records());
  auto rebuilt = build_zone_view(kApex, records);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value()->all_records(), records);
  EXPECT_EQ(rebuilt.value()->record_count(), chained.record_count());
}

}  // namespace
}  // namespace sns::server
