// Tests for src/net/address: every address family of §2.2 / Table 1.
#include <gtest/gtest.h>

#include "net/address.hpp"

namespace sns::net {
namespace {

TEST(Ipv4, ParseFormat) {
  auto a = Ipv4Addr::parse("192.0.2.1");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().to_string(), "192.0.2.1");
  EXPECT_EQ(a.value().octets[0], 192);
  EXPECT_EQ(a.value().octets[3], 1);
}

TEST(Ipv4, U32RoundTrip) {
  auto a = Ipv4Addr::parse("10.1.2.3");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(Ipv4Addr::from_u32(a.value().as_u32()), a.value());
  EXPECT_EQ(a.value().as_u32(), 0x0a010203u);
}

TEST(Ipv4, Rejects) {
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").ok());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").ok());
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1").ok());
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d").ok());
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3").ok());
  EXPECT_FALSE(Ipv4Addr::parse("").ok());
}

TEST(Ipv6, ParseFull) {
  auto a = Ipv6Addr::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().to_string(), "2001:db8::1");
}

TEST(Ipv6, ParseCompressed) {
  auto a = Ipv6Addr::parse("2001:db8::1");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().octets[0], 0x20);
  EXPECT_EQ(a.value().octets[15], 0x01);
  auto b = Ipv6Addr::parse("::1");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().to_string(), "::1");
  auto c = Ipv6Addr::parse("::");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().to_string(), "::");
  auto d = Ipv6Addr::parse("fe80::");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().to_string(), "fe80::");
}

TEST(Ipv6, FormatCompressesLongestRun) {
  auto a = Ipv6Addr::parse("1:0:0:2:0:0:0:3");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().to_string(), "1:0:0:2::3");
}

TEST(Ipv6, NoCompressionForSingleZero) {
  auto a = Ipv6Addr::parse("1:0:2:3:4:5:6:7");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().to_string(), "1:0:2:3:4:5:6:7");
}

TEST(Ipv6, RoundTripProperty) {
  for (const char* text : {"2001:db8::1", "::", "::1", "fe80::1:2", "1:2:3:4:5:6:7:8",
                           "2001:db8:0:1::12", "abcd:ef01:2345:6789:abcd:ef01:2345:6789"}) {
    auto a = Ipv6Addr::parse(text);
    ASSERT_TRUE(a.ok()) << text;
    auto b = Ipv6Addr::parse(a.value().to_string());
    ASSERT_TRUE(b.ok()) << text;
    EXPECT_EQ(a.value(), b.value()) << text;
  }
}

TEST(Ipv6, Rejects) {
  EXPECT_FALSE(Ipv6Addr::parse("1:2:3").ok());
  EXPECT_FALSE(Ipv6Addr::parse("1::2::3").ok());
  EXPECT_FALSE(Ipv6Addr::parse("12345::").ok());
  EXPECT_FALSE(Ipv6Addr::parse("g::1").ok());
  EXPECT_FALSE(Ipv6Addr::parse("1:2:3:4:5:6:7:8:9").ok());
}

TEST(Bdaddr, ParseFormat) {
  // Table 1 sample entry.
  auto a = Bdaddr::parse("01:23:45:67:89:AB");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().to_string(), "01:23:45:67:89:ab");
  EXPECT_FALSE(Bdaddr::parse("01:23:45:67:89").ok());
  EXPECT_FALSE(Bdaddr::parse("01:23:45:67:89:ZZ").ok());
  EXPECT_FALSE(Bdaddr::parse("0123456789ab").ok());
}

TEST(Zigbee, ParseFormat) {
  auto a = ZigbeeAddr::parse("00:11:22:33:44:55:66:77");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().to_string(), "00:11:22:33:44:55:66:77");
  EXPECT_FALSE(ZigbeeAddr::parse("00:11:22:33:44:55:66").ok());
}

TEST(Lora, ParseFormat) {
  auto a = LoraDevAddr::parse("01ab23cd");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().value, 0x01ab23cdu);
  EXPECT_EQ(a.value().to_string(), "01ab23cd");
  EXPECT_FALSE(LoraDevAddr::parse("1ab23cd").ok());
  EXPECT_FALSE(LoraDevAddr::parse("01ab23cdef").ok());
}

TEST(Dtmf, ParseValidation) {
  auto a = DtmfTone::parse("421#*");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().to_string(), "421#*");
  EXPECT_FALSE(DtmfTone::parse("").ok());
  EXPECT_FALSE(DtmfTone::parse("12a").ok());
  EXPECT_FALSE(DtmfTone::parse(std::string(33, '1')).ok());
}

TEST(AnyAddress, FamilyNames) {
  EXPECT_EQ(family_name(AnyAddress{Ipv4Addr{}}), "ipv4");
  EXPECT_EQ(family_name(AnyAddress{Ipv6Addr{}}), "ipv6");
  EXPECT_EQ(family_name(AnyAddress{Bdaddr{}}), "bluetooth");
  EXPECT_EQ(family_name(AnyAddress{ZigbeeAddr{}}), "zigbee");
  EXPECT_EQ(family_name(AnyAddress{LoraDevAddr{}}), "lorawan");
  EXPECT_EQ(family_name(AnyAddress{DtmfTone{"1"}}), "audio");
}

TEST(AnyAddress, ConnectivityRankPrefersProximity) {
  // §2.2: choose the most appropriate (most local) option first.
  EXPECT_LT(connectivity_rank(AnyAddress{Bdaddr{}}), connectivity_rank(AnyAddress{Ipv4Addr{}}));
  EXPECT_LT(connectivity_rank(AnyAddress{ZigbeeAddr{}}),
            connectivity_rank(AnyAddress{LoraDevAddr{}}));
  EXPECT_LT(connectivity_rank(AnyAddress{Ipv4Addr{}}), connectivity_rank(AnyAddress{Ipv6Addr{}}));
}

TEST(AnyAddress, ToString) {
  AnyAddress a = Bdaddr{{0x01, 0x23, 0x45, 0x67, 0x89, 0xab}};
  EXPECT_EQ(to_string(a), "01:23:45:67:89:ab");
}

}  // namespace
}  // namespace sns::net
