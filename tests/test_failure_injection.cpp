// Failure-injection tests: the resolution stack under hostile or broken
// conditions — lame delegations, garbage responses, flapping links,
// heavy loss, wrong ids. None of these may crash, hang or mis-answer.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "obs/metrics.hpp"
#include "resolver/iterative.hpp"
#include "resolver/stub.hpp"
#include "util/rng.hpp"

namespace sns {
namespace {

using dns::name_of;
using dns::Rcode;
using dns::RRType;

TEST(FailureInjection, LameDelegationFailsCleanly) {
  // A zone delegates to a nameserver that is not registered anywhere:
  // the iterative resolver must give up with an error, not loop.
  core::SnsDeployment d(500);
  auto civic = core::CivicName::from_components({"lameland"}).value();
  core::ZoneSite& site = d.add_zone(civic, geo::BoundingBox{0, 0, 1, 1}, nullptr);
  ASSERT_TRUE(site.zone
                  ->delegate_child(name_of("void.lameland.loc"),
                                   name_of("ns.void.lameland.loc"),
                                   net::Ipv4Addr{{10, 99, 99, 99}})
                  .ok());

  net::NodeId client = d.network().add_node("client");
  d.network().connect(client, d.loc_node(), net::wan_link());
  auto iterative = d.make_iterative(client);
  auto result = iterative.resolve(name_of("device.void.lameland.loc"), RRType::A);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("lame"), std::string::npos);
}

TEST(FailureInjection, GarbageServerResponsesAreSkipped) {
  // A "server" that answers raw noise: the stub retries and ultimately
  // reports an error instead of crashing on the malformed payload.
  net::Network network(501);
  net::NodeId client = network.add_node("client");
  net::NodeId evil = network.add_node("evil");
  network.connect(client, evil, net::lan_link());
  util::Rng rng(7);
  network.set_handler(evil, [&rng](std::span<const std::uint8_t>, net::NodeId) {
    util::Bytes noise(rng.next_below(64));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_below(256));
    return noise;
  });
  resolver::StubResolver stub(network, client, evil);
  stub.set_timeout(net::ms(50), 2);
  auto result = stub.resolve(name_of("mic.oval-office.loc"), RRType::A);
  EXPECT_FALSE(result.ok());
}

TEST(FailureInjection, MismatchedTransactionIdRejected) {
  // Off-path spoofing 101: a response whose id does not match the query
  // must be rejected (§4.2 address-spoofing risk).
  net::Network network(502);
  net::NodeId client = network.add_node("client");
  net::NodeId spoofer = network.add_node("spoofer");
  network.connect(client, spoofer, net::lan_link());
  network.set_handler(spoofer, [](std::span<const std::uint8_t> payload, net::NodeId) {
    auto query = dns::Message::decode(payload);
    if (!query.ok()) return std::optional<util::Bytes>{};
    dns::Message forged = dns::make_response(query.value(), Rcode::NoError, true);
    forged.header.id = static_cast<std::uint16_t>(query.value().header.id + 1);
    forged.answers.push_back(
        dns::make_a(query.value().questions[0].name, net::Ipv4Addr{{6, 6, 6, 6}}));
    return std::optional<util::Bytes>{forged.encode()};
  });
  resolver::StubResolver stub(network, client, spoofer);
  stub.set_timeout(net::ms(50), 2);
  auto result = stub.resolve(name_of("mic.oval-office.loc"), RRType::A);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("id mismatch"), std::string::npos);
}

TEST(FailureInjection, FlappingUplinkEventuallyResolves) {
  // Link goes down mid-session and comes back: resolution recovers
  // without resolver state corruption.
  auto world = core::make_white_house_world(503);
  auto& d = *world.deployment;
  net::NodeId remote = d.add_client("remote", *world.cabinet_room, false);
  auto iterative = d.make_iterative(remote);

  for (int cycle = 0; cycle < 3; ++cycle) {
    d.network().set_link_down(world.white_house->ns_node, world.penn_ave->ns_node, true);
    auto down = iterative.resolve(world.display, RRType::AAAA);
    EXPECT_FALSE(down.ok()) << "cycle " << cycle;
    d.network().set_link_down(world.white_house->ns_node, world.penn_ave->ns_node, false);
    auto up = iterative.resolve(world.display, RRType::AAAA);
    ASSERT_TRUE(up.ok()) << "cycle " << cycle;
    EXPECT_EQ(up.value().stats.rcode, Rcode::NoError);
  }
}

TEST(FailureInjection, HeavyLossStillConvergesWithRetries) {
  net::Network network(504);
  net::NodeId client = network.add_node("client");
  net::NodeId server_node = network.add_node("server");
  network.connect(client, server_node, net::LinkSpec{net::ms(1), net::us(0), 0.30});
  auto zone = std::make_shared<server::Zone>(name_of("zone.loc"), name_of("ns.zone.loc"));
  (void)zone->add(dns::make_a(name_of("dev.zone.loc"), net::Ipv4Addr{{1, 1, 1, 1}}));
  server::AuthoritativeServer srv("lossy");
  srv.add_zone(zone);
  srv.bind_to_network(network, server_node, [](net::NodeId) {
    server::ClientContext ctx;
    ctx.internal = true;
    return ctx;
  });
  resolver::StubResolver stub(network, client, server_node);
  obs::MetricsRegistry metrics;
  stub.set_metrics(&metrics);
  stub.set_timeout(net::ms(20), 12);  // aggressive retry under loss
  int successes = 0;
  for (int i = 0; i < 30; ++i) {
    auto result = stub.resolve(name_of("dev.zone.loc"), RRType::A);
    if (result.ok() && result.value().stats.rcode == Rcode::NoError) ++successes;
  }
  EXPECT_GE(successes, 28);  // p(12 straight losses) ~ (1-0.49)^12
  // 30% loss each way means most resolutions needed extra attempts; the
  // per-exchange retry accounting must surface that, not drop it.
  EXPECT_GE(metrics.counter_value("resolver.exchange.retry").value_or(0), 1u);
}

TEST(FailureInjection, SilentServerBurnsTimeoutNotForever) {
  net::Network network(505);
  net::NodeId client = network.add_node("client");
  net::NodeId mute = network.add_node("mute");
  network.connect(client, mute, net::lan_link());
  network.set_handler(mute, [](std::span<const std::uint8_t>, net::NodeId) {
    return std::optional<util::Bytes>{};  // receives, never answers
  });
  resolver::StubResolver stub(network, client, mute);
  obs::MetricsRegistry metrics;
  stub.set_metrics(&metrics);
  stub.set_timeout(net::ms(100), 3);
  net::TimePoint before = network.clock().now();
  auto result = stub.resolve(name_of("x.loc"), RRType::A);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(network.clock().now() - before, net::ms(300));  // exactly 3 timeouts
  // The exhausted exchange lands in resolver.exchange.timeout (one per
  // failed exchange, not per attempt); nothing succeeded, so no retries.
  EXPECT_EQ(metrics.counter_value("resolver.exchange.timeout").value_or(0), 1u);
  EXPECT_EQ(metrics.counter_value("resolver.exchange.retry").value_or(0), 0u);
}

TEST(FailureInjection, CnameIntoDeadZoneReturnsPartialChain) {
  // A CNAME pointing into a zone this server does not carry: client
  // gets the alias (and may chase it elsewhere); no error, no loop.
  auto world = core::make_white_house_world(506);
  auto& d = *world.deployment;
  auto zone = world.oval_office->zone->local_zone();
  ASSERT_TRUE(zone->add(dns::make_cname(
                       name_of("ghostly.oval-office.1600.penn-ave.washington.dc.usa.loc"),
                       name_of("gone.elsewhere.example")))
                  .ok());
  net::NodeId client = d.add_client("c", *world.oval_office, true);
  auto stub = d.make_stub(client, *world.oval_office);
  auto result = stub.resolve(
      name_of("ghostly.oval-office.1600.penn-ave.washington.dc.usa.loc"), RRType::A);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().records.size(), 1u);
  EXPECT_EQ(result.value().records[0].type, RRType::CNAME);
}

TEST(FailureInjection, UpdateFromMalformedPayloadIgnored) {
  // Truncated/garbage bytes aimed at the update path are dropped by the
  // server's decoder (handler answers nothing; client times out).
  auto world = core::make_white_house_world(507);
  auto& d = *world.deployment;
  net::NodeId client = d.add_client("attacker", *world.oval_office, true);
  util::Bytes garbage{0xde, 0xad, 0xbe};
  auto result = d.network().exchange(client, world.oval_office->ns_node, std::span(garbage),
                                     net::ms(50), 1);
  EXPECT_FALSE(result.ok());
  // And the zone is untouched.
  EXPECT_EQ(world.oval_office->zone->local_zone()->serial(), 4u);  // 3 devices + initial
}

TEST(FailureInjection, GeoQueryWithInsaneNumbersAnswersGracefully) {
  auto world = core::make_white_house_world(508);
  auto& d = *world.deployment;
  net::NodeId client = d.add_client("c", *world.oval_office, true);
  auto stub = d.make_stub(client, *world.oval_office);
  // Hand-construct a _geo qname with out-of-range numbers.
  auto qname =
      name_of("q-999999999999x999999999999x1._geo." +
              world.oval_office->zone->domain().to_string());
  auto result = stub.resolve(qname, RRType::PTR);
  ASSERT_TRUE(result.ok());
  // Parsed as an area far outside the zone: no devices, no referrals.
  EXPECT_TRUE(result.value().records.empty());
}

}  // namespace
}  // namespace sns
