// Tests for the pluggable SpatialView index backend (snsd
// --spatial-index): the STR-bulk-loaded R-tree must answer every query
// the Hilbert flat array answers, identically, through build, the
// incremental rebuild's overlay, and the compaction fallback — plus
// the federated deepest-apex attribution rule that keeps owners in
// nested zones indexed exactly once.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "dns/loc.hpp"
#include "server/zone.hpp"
#include "spatial/spatial_view.hpp"
#include "util/rng.hpp"

namespace sns::spatial {
namespace {

using dns::make_loc;
using dns::make_ns;
using dns::make_soa;
using dns::name_of;
using dns::Name;
using dns::RRType;
using geo::BoundingBox;
using server::ZoneTxn;
using server::ZoneViewPtr;

const Name kApex = name_of("city.loc");

Name sub(const std::string& label) { return name_of(label + ".city.loc"); }

dns::LocData loc_at(double lat, double lon) {
  auto loc = dns::LocData::from_degrees(lat, lon);
  EXPECT_TRUE(loc.ok());
  return loc.value();
}

ZoneViewPtr city_view(int n, std::uint64_t seed = 42) {
  util::Rng rng(seed);
  server::ZoneBuilder builder(kApex);
  (void)builder.add(make_soa(kApex, sub("ns"), 1));
  (void)builder.add(make_ns(kApex, sub("ns")));
  for (int i = 0; i < n; ++i) {
    double lat = 38.88 + rng.next_double(0, 0.04);
    double lon = -77.06 + rng.next_double(0, 0.04);
    (void)builder.add(make_loc(sub("dev" + std::to_string(i)), loc_at(lat, lon)));
  }
  auto view = std::move(builder).build();
  EXPECT_TRUE(view.ok());
  return std::move(view).value();
}

std::set<std::string> names_in(const SpatialView& view, const BoundingBox& box) {
  std::vector<const Device*> hits;
  view.query(box, 10'000, hits);
  std::set<std::string> names;
  for (const auto* dev : hits) names.insert(dev->name.to_string());
  return names;
}

TEST(SpatialBackend, ToStringNames) {
  EXPECT_STREQ(to_string(SpatialBackend::Hilbert), "hilbert");
  EXPECT_STREQ(to_string(SpatialBackend::RTree), "rtree");
}

TEST(SpatialBackend, RtreeMatchesHilbertOnRandomBoxes) {
  auto zone = city_view(300);
  auto hilbert = SpatialView::build({zone}, SpatialBackend::Hilbert);
  auto rtree = SpatialView::build({zone}, SpatialBackend::RTree);
  EXPECT_EQ(rtree->backend(), SpatialBackend::RTree);
  EXPECT_EQ(rtree->size(), hilbert->size());

  util::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    double lat = 38.88 + rng.next_double(0, 0.03);
    double lon = -77.06 + rng.next_double(0, 0.03);
    BoundingBox box{lat, lon, lat + rng.next_double(0.001, 0.01),
                    lon + rng.next_double(0.001, 0.01)};
    EXPECT_EQ(names_in(*rtree, box), names_in(*hilbert, box)) << "box " << i;
  }
}

TEST(SpatialBackend, RtreeRespectsScopeAndLimit) {
  auto zone = city_view(100);
  auto view = SpatialView::build({zone}, SpatialBackend::RTree);
  BoundingBox everything{38.0, -78.0, 39.5, -76.0};

  std::vector<const Device*> hits;
  EXPECT_EQ(view->query(everything, 10, hits), 10u);

  hits.clear();
  Name scope = sub("dev5");
  view->query(everything, 10'000, hits, &scope);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->name, sub("dev5"));
}

TEST(SpatialBackend, RebuildOverlayKeepsBackendAndMatchesFreshBuild) {
  auto base = city_view(120);
  auto parent = SpatialView::build({base}, SpatialBackend::RTree);

  // Re-home one device and add a brand-new one via the txn API.
  ZoneTxn txn(base);
  ASSERT_EQ(txn.remove_rrset(sub("dev3"), RRType::LOC), 1u);
  ASSERT_TRUE(txn.add(make_loc(sub("dev3"), loc_at(38.9000, -77.0500))).ok());
  ASSERT_TRUE(txn.add(make_loc(sub("newcomer"), loc_at(38.9010, -77.0510))).ok());
  auto commit = std::move(txn).commit();
  ASSERT_TRUE(commit.changed);

  auto rebuilt = SpatialView::rebuild(*parent, {base}, {commit.view}, commit.touched);
  EXPECT_EQ(rebuilt->backend(), SpatialBackend::RTree);
  EXPECT_GT(rebuilt->overlay_size(), 0u);

  auto fresh = SpatialView::build({commit.view}, SpatialBackend::RTree);
  BoundingBox everything{38.0, -78.0, 39.5, -76.0};
  EXPECT_EQ(names_in(*rebuilt, everything), names_in(*fresh, everything));
  BoundingBox around{38.8995, -77.0515, 38.9015, -77.0495};
  auto hits = names_in(*rebuilt, around);
  EXPECT_TRUE(hits.contains("dev3.city.loc"));
  EXPECT_TRUE(hits.contains("newcomer.city.loc"));
}

TEST(SpatialBackend, NestedZonesIndexDeepestApexOnce) {
  // Parent city zone delegating (and, federated, co-hosting) a street
  // zone: the street's devices must be attributed to the street zone
  // and indexed exactly once even though both apexes cover them.
  server::ZoneBuilder parent_builder(kApex);
  (void)parent_builder.add(make_soa(kApex, sub("ns"), 1));
  (void)parent_builder.add(make_ns(kApex, sub("ns")));
  (void)parent_builder.add(make_loc(sub("plaza"), loc_at(38.9, -77.04)));
  (void)parent_builder.add(make_ns(sub("street"), sub("ns.street")));
  auto parent_zone = std::move(parent_builder).build();
  ASSERT_TRUE(parent_zone.ok());

  Name street_apex = sub("street");
  server::ZoneBuilder street_builder(street_apex);
  (void)street_builder.add(make_soa(street_apex, sub("ns.street"), 1));
  (void)street_builder.add(make_ns(street_apex, sub("ns.street")));
  (void)street_builder.add(make_loc(sub("cam.street"), loc_at(38.901, -77.041)));
  auto street_zone = std::move(street_builder).build();
  ASSERT_TRUE(street_zone.ok());

  for (auto backend : {SpatialBackend::Hilbert, SpatialBackend::RTree}) {
    auto view = SpatialView::build({parent_zone.value(), street_zone.value()}, backend);
    // plaza (parent) + cam.street (child) — cam.street once, not twice,
    // and not suppressed by the parent's delegation cut.
    EXPECT_EQ(view->size(), 2u) << to_string(backend);
    BoundingBox everything{38.0, -78.0, 39.5, -76.0};
    auto names = names_in(*view, everything);
    EXPECT_TRUE(names.contains("plaza.city.loc")) << to_string(backend);
    EXPECT_TRUE(names.contains("cam.street.city.loc")) << to_string(backend);
  }
}

TEST(SpatialBackend, EmptyZoneBuildsEmptyRtree) {
  server::ZoneBuilder builder(kApex);
  (void)builder.add(make_soa(kApex, sub("ns"), 1));
  auto zone = std::move(builder).build();
  ASSERT_TRUE(zone.ok());
  auto view = SpatialView::build({zone.value()}, SpatialBackend::RTree);
  EXPECT_EQ(view->size(), 0u);
  std::vector<const Device*> hits;
  EXPECT_EQ(view->query(BoundingBox{-90.0, -180.0, 90.0, 180.0}, 100, hits), 0u);
}

}  // namespace
}  // namespace sns::spatial
