// Tests for Hilbert curves and the interval decomposition (§3.2, Fig 4).
#include <gtest/gtest.h>

#include <set>

#include "geo/hilbert.hpp"
#include "util/rng.hpp"

namespace sns::geo {
namespace {

class HilbertOrder : public ::testing::TestWithParam<int> {};

TEST_P(HilbertOrder, BijectiveOverWholeGrid) {
  int order = GetParam();
  std::uint32_t side = 1u << order;
  std::set<HilbertD> seen;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      HilbertD d = hilbert_xy_to_d(order, x, y);
      EXPECT_LT(d, static_cast<HilbertD>(side) * side);
      EXPECT_TRUE(seen.insert(d).second) << "duplicate d for (" << x << "," << y << ")";
      std::uint32_t rx = 0, ry = 0;
      hilbert_d_to_xy(order, d, rx, ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(side) * side);
}

TEST_P(HilbertOrder, ConsecutiveCellsAreAdjacent) {
  // The defining property of the curve: consecutive distances map to
  // 4-adjacent cells (this is what gives locality, Fig. 4).
  int order = GetParam();
  std::uint32_t side = 1u << order;
  std::uint32_t px = 0, py = 0;
  for (HilbertD d = 0; d < static_cast<HilbertD>(side) * side; ++d) {
    std::uint32_t x = 0, y = 0;
    hilbert_d_to_xy(order, d, x, y);
    if (d > 0) {
      std::uint32_t manhattan = (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
      EXPECT_EQ(manhattan, 1u) << "gap at d=" << d;
    }
    px = x;
    py = y;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertOrder, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Hilbert, Order1MatchesFigure4) {
  // Order 1: the U through (0,0) (0,1) (1,1) (1,0).
  EXPECT_EQ(hilbert_xy_to_d(1, 0, 0), 0u);
  EXPECT_EQ(hilbert_xy_to_d(1, 0, 1), 1u);
  EXPECT_EQ(hilbert_xy_to_d(1, 1, 1), 2u);
  EXPECT_EQ(hilbert_xy_to_d(1, 1, 0), 3u);
}

TEST(Hilbert, HighOrderRoundTrip) {
  util::Rng rng(4);
  for (int order : {10, 16, 24, 31}) {
    for (int trial = 0; trial < 200; ++trial) {
      auto x = static_cast<std::uint32_t>(rng.next_below(1u << order));
      auto y = static_cast<std::uint32_t>(rng.next_below(1u << order));
      HilbertD d = hilbert_xy_to_d(order, x, y);
      std::uint32_t rx = 0, ry = 0;
      hilbert_d_to_xy(order, d, rx, ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
}

TEST(HilbertGrid, PointMapping) {
  HilbertGrid grid(BoundingBox{0, 0, 1, 1}, 4);
  EXPECT_EQ(grid.cells_per_side(), 16u);
  // Corner points map to valid cells; the cell box contains the point.
  for (const GeoPoint& p : {GeoPoint{0.01, 0.01, 0}, GeoPoint{0.99, 0.99, 0},
                            GeoPoint{0.5, 0.25, 0}}) {
    HilbertD d = grid.point_to_d(p);
    EXPECT_TRUE(grid.cell_box(d).contains(p)) << p.to_string();
  }
  // Out-of-domain points clamp, not crash.
  (void)grid.point_to_d(GeoPoint{-5, 99, 0});
}

TEST(HilbertGrid, DecomposeFullDomainIsOneInterval) {
  HilbertGrid grid(BoundingBox{0, 0, 1, 1}, 5);
  auto intervals = grid.decompose(BoundingBox{-1, -1, 2, 2});
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].lo, 0u);
  EXPECT_EQ(intervals[0].hi, 32u * 32 - 1);
}

TEST(HilbertGrid, DecomposeDisjointFromDomainIsEmpty) {
  HilbertGrid grid(BoundingBox{0, 0, 1, 1}, 5);
  EXPECT_TRUE(grid.decompose(BoundingBox{5, 5, 6, 6}).empty());
}

TEST(HilbertGrid, DecomposeMatchesBruteForce) {
  // Property: the union of decomposed intervals equals exactly the set
  // of cells whose box intersects the query.
  util::Rng rng(77);
  HilbertGrid grid(BoundingBox{0, 0, 1, 1}, 6);
  std::uint32_t side = grid.cells_per_side();
  for (int trial = 0; trial < 60; ++trial) {
    double lat0 = rng.next_double(0, 1), lat1 = rng.next_double(0, 1);
    double lon0 = rng.next_double(0, 1), lon1 = rng.next_double(0, 1);
    BoundingBox query{std::min(lat0, lat1), std::min(lon0, lon1), std::max(lat0, lat1),
                      std::max(lon0, lon1)};
    auto intervals = grid.decompose(query);

    // Intervals must be sorted, merged and non-overlapping.
    for (std::size_t i = 0; i + 1 < intervals.size(); ++i)
      EXPECT_GT(intervals[i + 1].lo, intervals[i].hi + 1);

    std::set<HilbertD> covered;
    for (const auto& interval : intervals)
      for (HilbertD d = interval.lo; d <= interval.hi; ++d) covered.insert(d);

    std::set<HilbertD> expected;
    for (std::uint32_t y = 0; y < side; ++y) {
      for (std::uint32_t x = 0; x < side; ++x) {
        HilbertD d = hilbert_xy_to_d(6, x, y);
        if (grid.cell_box(d).intersects(query)) expected.insert(d);
      }
    }
    EXPECT_EQ(covered, expected) << "query " << query.to_string();
  }
}

TEST(HilbertGrid, DecompositionIsCompact) {
  // For a square k x k query the number of intervals grows like the
  // perimeter, not the area — that is what makes lookups logarithmic.
  HilbertGrid grid(BoundingBox{0, 0, 1, 1}, 8);  // 256 x 256 cells
  BoundingBox query{0.3, 0.3, 0.7, 0.7};          // ~102 x 102 cells = ~10400 cells
  auto intervals = grid.decompose(query);
  std::uint64_t cells = 0;
  for (const auto& interval : intervals) cells += interval.hi - interval.lo + 1;
  EXPECT_GT(cells, 10000u);
  EXPECT_LT(intervals.size(), 200u);  // far fewer intervals than cells
}

TEST(HilbertAscii, RendersFigure4Shapes) {
  std::string order1 = render_hilbert_ascii(1);
  // Order 1: a 3x3 canvas with 4 cells and 3 connectors.
  EXPECT_EQ(order1, "*-*\n| |\n* *\n");
  std::string order2 = render_hilbert_ascii(2);
  EXPECT_EQ(std::count(order2.begin(), order2.end(), '*'), 16);
  std::string order3 = render_hilbert_ascii(3);
  EXPECT_EQ(std::count(order3.begin(), order3.end(), '*'), 64);
}

TEST(HilbertLocality, GapGrowsLikeSideNotArea) {
  // Mean curve-distance gap between adjacent cells grows roughly with
  // the grid side (2^n), far below the worst case of ~4^n/2. This is
  // the locality property Figure 4 illustrates.
  for (int order : {3, 4, 6, 8}) {
    double gap = hilbert_adjacency_gap(order);
    double side = static_cast<double>(1u << order);
    EXPECT_GT(gap, 1.0);
    EXPECT_LT(gap, 4.0 * side) << "order " << order;
  }
  // And it beats row-major order, whose horizontal-adjacency gap is 1
  // but vertical gap is the full side; compare against the symmetric
  // worst case instead: gap must shrink relative to total cells.
  double g4 = hilbert_adjacency_gap(4) / static_cast<double>(1u << 8);
  double g8 = hilbert_adjacency_gap(8) / static_cast<double>(1u << 16);
  EXPECT_LT(g8, g4);
}

}  // namespace
}  // namespace sns::geo
