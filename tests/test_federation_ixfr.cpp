// IXFR edge cases (RFC 1995 + RFC 1982): serial-arithmetic wraparound,
// a delta sequence spanning several commits, journal overflow forcing
// the AXFR fallback, and byte-equivalence of an IXFR-patched zone with
// a fresh full-transfer copy.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dns/serial.hpp"
#include "federation/ixfr.hpp"
#include "federation/journal.hpp"
#include "server/zone.hpp"

namespace sns::federation {
namespace {

using dns::make_ns;
using dns::make_soa;
using dns::make_txt;
using dns::name_of;
using dns::Name;
using dns::RRType;
using server::Zone;

const Name kApex = name_of("street.loc");
const Name kNs = name_of("ns.street.loc");

Name sub(const std::string& label) { return name_of(label + ".street.loc"); }

/// Commit `fn`'s staged changes on the primary and feed the journal,
/// the way the runtime's successor_from_facades does.
template <typename Fn>
void commit_and_journal(Zone& primary, JournalSet& journals, Fn&& fn) {
  auto before = primary.view();
  auto txn = primary.txn();
  fn(txn);
  auto commit = primary.commit(std::move(txn));
  ASSERT_TRUE(commit.changed);
  journals.record_commit(*before, *commit.view, commit.touched, false);
}

/// Canonical wire form of a zone's full record set: sorted, packed
/// into one message, encoded. Two zones with equal bytes here hold
/// identical data.
std::vector<std::uint8_t> canonical_bytes(const Zone& zone) {
  auto records = zone.all_records();
  std::sort(records.begin(), records.end(),
            [](const dns::ResourceRecord& a, const dns::ResourceRecord& b) {
              if (a.name.packed() != b.name.packed()) return a.name.packed() < b.name.packed();
              if (a.type != b.type) return a.type < b.type;
              return dns::rdata_to_string(a.rdata) < dns::rdata_to_string(b.rdata);
            });
  dns::Message carrier;
  carrier.answers = std::move(records);
  return carrier.encode();
}

TEST(Rfc1982, WraparoundOrdering) {
  // Plain integer order...
  EXPECT_TRUE(dns::serial_lt(1, 2));
  EXPECT_TRUE(dns::serial_gt(2, 1));
  // ...until the 32-bit space wraps: 0 is *newer* than 0xFFFFFFFF.
  EXPECT_TRUE(dns::serial_lt(0xFFFFFFFFu, 0));
  EXPECT_TRUE(dns::serial_gt(0, 0xFFFFFFFFu));
  EXPECT_TRUE(dns::serial_lt(0xFFFFFF00u, 5));
  EXPECT_FALSE(dns::serial_ge(0xFFFFFF00u, 5));
  // Equality is neither lt nor gt, and ge/le admit it.
  EXPECT_FALSE(dns::serial_lt(7, 7));
  EXPECT_TRUE(dns::serial_ge(7, 7));
  EXPECT_TRUE(dns::serial_le(7, 7));
}

TEST(Ixfr, WraparoundSecondaryStillGetsTheZone) {
  // The zone's serial wrapped past 2^32; the secondary still holds a
  // huge pre-wrap serial. Naive `have >= current` would answer
  // "up to date" forever — RFC 1982 says the secondary is behind.
  auto view = server::build_zone_view(
      kApex, {make_soa(kApex, kNs, 5), make_ns(kApex, kNs),
              make_txt(sub("door"), {"open"})});
  ASSERT_TRUE(view.ok());
  auto answer = serve_transfer_query(make_ixfr_request(1, kApex, 0xFFFFFF00u),
                                     {view.value()}, nullptr);
  EXPECT_EQ(answer.kind, TransferKind::Full);
  EXPECT_GE(answer.response.answers.size(), 3u);

  // And a secondary that *is* current gets the single-SOA answer.
  answer = serve_transfer_query(make_ixfr_request(2, kApex, 5), {view.value()}, nullptr);
  EXPECT_EQ(answer.kind, TransferKind::UpToDate);
  ASSERT_EQ(answer.response.answers.size(), 1u);
  EXPECT_EQ(answer.response.answers.front().type, RRType::SOA);
}

TEST(Ixfr, DeltaSpanningMultipleCommits) {
  Zone primary(kApex, kNs);
  (void)primary.add(make_txt(sub("door"), {"v1"}));
  JournalSet journals;
  auto gen1 = primary.view();  // serial 1

  commit_and_journal(primary, journals, [](server::ZoneTxn& txn) {
    (void)txn.add(make_txt(sub("lamp"), {"on"}));
  });  // serial 2
  commit_and_journal(primary, journals, [](server::ZoneTxn& txn) {
    ASSERT_EQ(txn.remove_rrset(sub("door"), RRType::TXT), 1u);
    (void)txn.add(make_txt(sub("door"), {"v2"}));
  });  // serial 3
  commit_and_journal(primary, journals, [](server::ZoneTxn& txn) {
    (void)txn.add(make_txt(sub("cam"), {"rec"}));
  });  // serial 4
  ASSERT_EQ(primary.serial(), 4u);
  EXPECT_EQ(journals.delta_count(kApex), 3u);

  auto answer = serve_transfer_query(make_ixfr_request(3, kApex, 1),
                                     {primary.view()}, &journals);
  ASSERT_EQ(answer.kind, TransferKind::Incremental);
  // RFC 1995 framing: leading SOA(new) … per-delta SOA pairs … SOA(new).
  const auto& wire = answer.response.answers;
  ASSERT_GE(wire.size(), 2u);
  EXPECT_EQ(std::get<dns::SoaData>(wire.front().rdata).serial, 4u);
  EXPECT_EQ(std::get<dns::SoaData>(wire.back().rdata).serial, 4u);

  // A secondary still at generation 1 patches through all three
  // deltas in one apply.
  Zone secondary(kApex, kNs);
  secondary.replace(gen1);
  auto outcome = apply_transfer_response(secondary, answer.response);
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_EQ(outcome.value().kind, ApplyKind::Patched);
  EXPECT_EQ(secondary.serial(), 4u);
  EXPECT_EQ(canonical_bytes(secondary), canonical_bytes(primary));
}

TEST(Ixfr, OverflowedCommitLogForcesAxfrFallback) {
  Zone primary(kApex, kNs);
  (void)primary.add(make_txt(sub("door"), {"v1"}));
  JournalSet journals;
  auto gen1 = primary.view();

  // A commit whose touched enumeration overflowed: the journal must
  // drop its history rather than serve a delta it cannot vouch for.
  auto before = primary.view();
  auto txn = primary.txn();
  (void)txn.add(make_txt(sub("lamp"), {"on"}));
  auto commit = primary.commit(std::move(txn));
  journals.record_commit(*before, *commit.view, commit.touched, /*overflow=*/true);
  EXPECT_EQ(journals.delta_count(kApex), 0u);

  auto answer = serve_transfer_query(make_ixfr_request(4, kApex, 1),
                                     {primary.view()}, &journals);
  EXPECT_EQ(answer.kind, TransferKind::Full);

  Zone secondary(kApex, kNs);
  secondary.replace(gen1);
  auto outcome = apply_transfer_response(secondary, answer.response);
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_EQ(outcome.value().kind, ApplyKind::Replaced);
  EXPECT_EQ(canonical_bytes(secondary), canonical_bytes(primary));
}

TEST(Ixfr, PatchedZoneIsByteIdenticalToFreshFullTransfer) {
  Zone primary(kApex, kNs);
  (void)primary.add(make_txt(sub("door"), {"v1"}));
  (void)primary.add(make_txt(sub("lamp"), {"off"}));
  JournalSet journals;
  auto gen1 = primary.view();

  for (int i = 0; i < 6; ++i) {
    commit_and_journal(primary, journals, [&](server::ZoneTxn& txn) {
      ASSERT_EQ(txn.remove_rrset(sub("lamp"), RRType::TXT), 1u);
      (void)txn.add(make_txt(sub("lamp"), {"gen" + std::to_string(i)}));
      (void)txn.add(make_txt(sub("dev" + std::to_string(i)), {"new"}));
    });
  }

  // One secondary catches up by deltas, the other by a full transfer.
  Zone patched(kApex, kNs);
  patched.replace(gen1);
  auto ixfr = serve_transfer_query(make_ixfr_request(5, kApex, patched.serial()),
                                   {primary.view()}, &journals);
  ASSERT_EQ(ixfr.kind, TransferKind::Incremental);
  auto patch_outcome = apply_transfer_response(patched, ixfr.response);
  ASSERT_TRUE(patch_outcome.ok()) << patch_outcome.error().message;
  ASSERT_EQ(patch_outcome.value().kind, ApplyKind::Patched);

  Zone fresh(kApex, kNs);
  auto axfr = serve_transfer_query(make_ixfr_request(6, kApex, 0),
                                   {primary.view()}, &journals);
  ASSERT_EQ(axfr.kind, TransferKind::Full);
  auto fresh_outcome = apply_transfer_response(fresh, axfr.response);
  ASSERT_TRUE(fresh_outcome.ok()) << fresh_outcome.error().message;
  ASSERT_EQ(fresh_outcome.value().kind, ApplyKind::Replaced);

  EXPECT_EQ(canonical_bytes(patched), canonical_bytes(fresh));
  EXPECT_EQ(canonical_bytes(patched), canonical_bytes(primary));
  EXPECT_EQ(patched.serial(), primary.serial());
}

TEST(Journal, ChainGapClearsHistory) {
  ZoneJournal journal;
  Delta first;
  first.from_serial = 1;
  first.to_serial = 2;
  journal.append(first);
  EXPECT_EQ(journal.size(), 1u);
  // A delta that does not chain onto the last one means generations
  // were missed — splicing across the hole would corrupt secondaries.
  Delta gapped;
  gapped.from_serial = 5;
  gapped.to_serial = 6;
  journal.append(gapped);
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_FALSE(journal.collect(1, 6).has_value());
  ASSERT_TRUE(journal.collect(5, 6).has_value());
}

TEST(Journal, BudgetDropsOldestDeltas) {
  ZoneJournal journal(/*record_budget=*/10);
  for (std::uint32_t s = 1; s <= 10; ++s) {
    Delta delta;
    delta.from_serial = s;
    delta.to_serial = s + 1;
    delta.added.push_back(make_txt(sub("dev"), {"gen"}));
    journal.append(delta);  // 3 wire records each
  }
  EXPECT_LE(journal.record_load(), 10u);
  // The oldest horizon is gone, the newest still collectable.
  EXPECT_FALSE(journal.collect(1, 11).has_value());
  ASSERT_TRUE(journal.collect(10, 11).has_value());
}

TEST(Ixfr, ApplyRejectsDeltaContradictingLocalState) {
  Zone secondary(kApex, kNs);
  (void)secondary.add(make_txt(sub("door"), {"v1"}));  // serial 1

  // Forge an IXFR that claims to delete a record the zone never held.
  dns::Message response;
  response.header.qr = true;
  response.questions.push_back(dns::Question{kApex, kIxfrType, dns::RRClass::IN});
  response.answers.push_back(make_soa(kApex, kNs, 2));
  response.answers.push_back(make_soa(kApex, kNs, 1));
  response.answers.push_back(make_txt(sub("ghost"), {"never-existed"}));
  response.answers.push_back(make_soa(kApex, kNs, 2));
  response.answers.push_back(make_soa(kApex, kNs, 2));

  auto outcome = apply_transfer_response(secondary, response);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(secondary.serial(), 1u);  // untouched
}

}  // namespace
}  // namespace sns::federation
