// Tests for DNS-SD publication and the two browse paths (§4.1, §1).
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "resolver/browse.hpp"
#include "server/mdns.hpp"

namespace sns::server {
namespace {

using dns::name_of;

const Name kDomain = name_of("oval-office.loc");

ServiceInstance speaker_service() {
  ServiceInstance service;
  service.instance = "Oval Office Speaker";
  service.service_type = "_audio._udp";
  service.domain = kDomain;
  service.host = name_of("speaker.oval-office.loc");
  service.port = 5600;
  service.txt = {"codec=opus", "channels=2"};
  return service;
}

TEST(DnsSd, NamesFollowConvention) {
  auto service = speaker_service();
  auto type_name = service_type_name(service);
  ASSERT_TRUE(type_name.ok());
  EXPECT_EQ(type_name.value(), name_of("_audio._udp.oval-office.loc"));
  auto instance_name = service_instance_name(service);
  ASSERT_TRUE(instance_name.ok());
  EXPECT_EQ(instance_name.value(), name_of("oval-office-speaker._audio._udp.oval-office.loc"));
}

TEST(DnsSd, PublishWritesFourRecords) {
  Zone zone(kDomain, name_of("ns.oval-office.loc"));
  ASSERT_TRUE(publish_service(zone, speaker_service()).ok());
  // Enumeration PTR.
  EXPECT_NE(zone.find(name_of("_services._dns-sd._udp.oval-office.loc"), RRType::PTR), nullptr);
  // Browse PTR.
  const RRset* browse = zone.find(name_of("_audio._udp.oval-office.loc"), RRType::PTR);
  ASSERT_NE(browse, nullptr);
  // Instance SRV + TXT.
  Name instance = name_of("oval-office-speaker._audio._udp.oval-office.loc");
  const RRset* srv = zone.find(instance, RRType::SRV);
  ASSERT_NE(srv, nullptr);
  EXPECT_EQ(std::get<dns::SrvData>(srv->front().rdata).port, 5600);
  EXPECT_NE(zone.find(instance, RRType::TXT), nullptr);
}

TEST(Browse, UnicastFindsServicesThroughEdgeServer) {
  auto world = core::make_white_house_world(11);
  auto& d = *world.deployment;
  // Publish two services into the oval office's local zone.
  auto service = speaker_service();
  service.domain = world.oval_office->zone->domain();
  service.host = world.speaker;
  ASSERT_TRUE(publish_service(*world.oval_office->zone->local_zone(), service).ok());
  ServiceInstance mic_service = service;
  mic_service.instance = "Oval Office Mic";
  mic_service.host = world.mic;
  mic_service.port = 5700;
  ASSERT_TRUE(publish_service(*world.oval_office->zone->local_zone(), mic_service).ok());

  net::NodeId client = d.add_client("browser", *world.oval_office, true);
  auto stub = d.make_stub(client, *world.oval_office);
  auto result =
      resolver::browse_unicast(stub, "_audio._udp", world.oval_office->zone->domain());
  ASSERT_TRUE(result.ok()) << result.error().message;
  ASSERT_EQ(result.value().services.size(), 2u);
  EXPECT_GT(result.value().stats.latency.count(), 0);
  // Sub-10ms on the LAN — the SNS path is fast.
  EXPECT_LT(result.value().stats.latency, net::ms(10));
  bool found_port = false;
  for (const auto& s : result.value().services)
    if (s.port == 5700) found_port = true;
  EXPECT_TRUE(found_port);
}

TEST(Browse, MdnsMulticastIsSlowButFindsServices) {
  net::Network network(5);
  net::NodeId browser = network.add_node("browser");
  net::NodeId device = network.add_node("device");
  network.connect(browser, device, net::wireless_link(0.0));
  network.join_group(kMdnsGroup, browser);

  MdnsResponder responder(network, device);
  responder.publish(speaker_service());

  auto result = resolver::browse_mdns(network, browser, "_audio._udp", kDomain, net::ms(500));
  ASSERT_TRUE(result.ok()) << result.error().message;
  ASSERT_EQ(result.value().services.size(), 1u);
  EXPECT_EQ(result.value().services[0].port, 5600);
  EXPECT_EQ(result.value().services[0].txt.size(), 2u);
  // The layered path burns full listening windows: structurally slow
  // (the §1 complaint). 500 + 250 + 250 ms of windows.
  EXPECT_GE(result.value().stats.latency, net::ms(1000));
}

TEST(Browse, MdnsSilentWhenNothingPublished) {
  net::Network network(6);
  net::NodeId browser = network.add_node("browser");
  auto result = resolver::browse_mdns(network, browser, "_video._udp", kDomain, net::ms(200));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().services.empty());
  EXPECT_GE(result.value().stats.latency, net::ms(200));  // still waited the window
}

TEST(MdnsResponder, AnswersOnlyMatchingQuestions) {
  net::Network network(7);
  net::NodeId browser = network.add_node("browser");
  net::NodeId device = network.add_node("device");
  network.connect(browser, device, net::lan_link());
  MdnsResponder responder(network, device);
  responder.publish(speaker_service());

  // Non-matching service type: silence (not NXDOMAIN) per mDNS custom.
  auto miss = resolver::browse_mdns(network, browser, "_printer._tcp", kDomain, net::ms(300));
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss.value().services.empty());
}

}  // namespace
}  // namespace sns::server
