// Tests for the spatial indexes (§3.2): all implementations must agree
// with the naive oracle on arbitrary workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "geo/flat_hilbert_index.hpp"
#include "geo/hilbert_index.hpp"
#include "geo/naive_index.hpp"
#include "geo/quadtree.hpp"
#include "geo/rtree.hpp"
#include "util/rng.hpp"

namespace sns::geo {
namespace {

const BoundingBox kDomain{0, 0, 10, 10};

std::unique_ptr<SpatialIndex> make_index(const std::string& kind) {
  if (kind == "naive") return std::make_unique<NaiveIndex>();
  if (kind == "hilbert") return std::make_unique<HilbertIndex>(kDomain, 8);
  if (kind == "flat_hilbert") return std::make_unique<FlatHilbertIndex>(kDomain, 8);
  if (kind == "rtree") return std::make_unique<RTree>();
  return std::make_unique<Quadtree>(kDomain);
}

std::vector<EntryId> sorted(std::vector<EntryId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class IndexKindTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IndexKindTest, EmptyIndexReturnsNothing) {
  auto index = make_index(GetParam());
  EXPECT_TRUE(index->query(kDomain).empty());
  EXPECT_EQ(index->size(), 0u);
  EXPECT_FALSE(index->remove(42));
}

TEST_P(IndexKindTest, SingleInsertFindable) {
  auto index = make_index(GetParam());
  index->insert(1, GeoPoint{5, 5, 0});
  EXPECT_EQ(index->size(), 1u);
  EXPECT_EQ(index->query(BoundingBox{4, 4, 6, 6}), std::vector<EntryId>{1});
  EXPECT_TRUE(index->query(BoundingBox{0, 0, 1, 1}).empty());
}

TEST_P(IndexKindTest, BoundaryPointsIncluded) {
  auto index = make_index(GetParam());
  index->insert(1, GeoPoint{2, 2, 0});
  // Query whose edge passes exactly through the point.
  EXPECT_EQ(index->query(BoundingBox{2, 2, 3, 3}).size(), 1u);
  EXPECT_EQ(index->query(BoundingBox{1, 1, 2, 2}).size(), 1u);
}

TEST_P(IndexKindTest, RemoveWorks) {
  auto index = make_index(GetParam());
  index->insert(1, GeoPoint{1, 1, 0});
  index->insert(2, GeoPoint{2, 2, 0});
  index->insert(3, GeoPoint{3, 3, 0});
  EXPECT_TRUE(index->remove(2));
  EXPECT_FALSE(index->remove(2));
  EXPECT_EQ(index->size(), 2u);
  auto result = sorted(index->query(kDomain));
  EXPECT_EQ(result, (std::vector<EntryId>{1, 3}));
}

TEST_P(IndexKindTest, AgreesWithNaiveOnUniformWorkload) {
  util::Rng rng(101);
  auto index = make_index(GetParam());
  NaiveIndex oracle;
  for (EntryId id = 0; id < 500; ++id) {
    GeoPoint p{rng.next_double(0, 10), rng.next_double(0, 10), 0};
    index->insert(id, p);
    oracle.insert(id, p);
  }
  for (int trial = 0; trial < 50; ++trial) {
    double lat = rng.next_double(0, 9), lon = rng.next_double(0, 9);
    double h = rng.next_double(0.01, 3), w = rng.next_double(0.01, 3);
    BoundingBox query{lat, lon, lat + h, lon + w};
    EXPECT_EQ(sorted(index->query(query)), sorted(oracle.query(query)))
        << GetParam() << " query " << query.to_string();
  }
}

TEST_P(IndexKindTest, AgreesWithNaiveOnClusteredWorkload) {
  // The paper notes R-trees may win on sparse/clustered data; whatever
  // the performance, results must stay identical.
  util::Rng rng(202);
  auto index = make_index(GetParam());
  NaiveIndex oracle;
  EntryId id = 0;
  for (int cluster = 0; cluster < 10; ++cluster) {
    GeoPoint center{rng.next_double(1, 9), rng.next_double(1, 9), 0};
    for (int i = 0; i < 60; ++i) {
      GeoPoint p{center.latitude + rng.next_gaussian(0, 0.05),
                 center.longitude + rng.next_gaussian(0, 0.05), 0};
      p.latitude = std::clamp(p.latitude, 0.0, 10.0);
      p.longitude = std::clamp(p.longitude, 0.0, 10.0);
      index->insert(id, p);
      oracle.insert(id, p);
      ++id;
    }
  }
  for (int trial = 0; trial < 50; ++trial) {
    double lat = rng.next_double(0, 9), lon = rng.next_double(0, 9);
    BoundingBox query{lat, lon, lat + rng.next_double(0.05, 2), lon + rng.next_double(0.05, 2)};
    EXPECT_EQ(sorted(index->query(query)), sorted(oracle.query(query))) << GetParam();
  }
}

TEST_P(IndexKindTest, AgreesAfterChurn) {
  // Interleaved inserts and removes (devices moving, §4.1).
  util::Rng rng(303);
  auto index = make_index(GetParam());
  NaiveIndex oracle;
  std::vector<EntryId> alive;
  EntryId next = 0;
  for (int step = 0; step < 800; ++step) {
    if (alive.empty() || rng.chance(0.7)) {
      GeoPoint p{rng.next_double(0, 10), rng.next_double(0, 10), 0};
      index->insert(next, p);
      oracle.insert(next, p);
      alive.push_back(next);
      ++next;
    } else {
      std::size_t pick = rng.next_below(alive.size());
      EntryId victim = alive[pick];
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
      EXPECT_TRUE(index->remove(victim)) << GetParam();
      oracle.remove(victim);
    }
  }
  EXPECT_EQ(index->size(), oracle.size());
  for (int trial = 0; trial < 25; ++trial) {
    double lat = rng.next_double(0, 8), lon = rng.next_double(0, 8);
    BoundingBox query{lat, lon, lat + 2, lon + 2};
    EXPECT_EQ(sorted(index->query(query)), sorted(oracle.query(query))) << GetParam();
  }
}

TEST_P(IndexKindTest, PointQueryFindsExactPoint) {
  auto index = make_index(GetParam());
  GeoPoint p{3.14159, 2.71828, 0};
  index->insert(9, p);
  BoundingBox point_query{p.latitude, p.longitude, p.latitude, p.longitude};
  EXPECT_EQ(index->query(point_query), std::vector<EntryId>{9});
}

TEST_P(IndexKindTest, DuplicateIdRemoveClearsAll) {
  // The SpatialIndex contract: duplicate ids are the caller's bug, the
  // index stores both, and remove(id) clears every copy.
  auto index = make_index(GetParam());
  index->insert(7, GeoPoint{1, 1, 0});
  index->insert(7, GeoPoint{8, 8, 0});
  index->insert(7, GeoPoint{8.25, 8.25, 0});  // two copies in one cell
  index->insert(5, GeoPoint{5, 5, 0});
  EXPECT_EQ(index->size(), 4u);
  EXPECT_EQ(index->query(kDomain).size(), 4u);
  EXPECT_TRUE(index->remove(7));
  EXPECT_FALSE(index->remove(7));
  EXPECT_EQ(index->size(), 1u);
  EXPECT_EQ(index->query(kDomain), std::vector<EntryId>{5});
}

TEST_P(IndexKindTest, AgreesWithNaiveUnderDuplicateIdChurn) {
  // Randomized insert/remove/query with a deliberately tiny id space so
  // duplicates are common; every implementation must agree with the
  // oracle, including the "remove clears all copies" behaviour.
  util::Rng rng(404);
  auto index = make_index(GetParam());
  NaiveIndex oracle;
  for (int step = 0; step < 600; ++step) {
    EntryId id = rng.next_below(12);
    if (rng.chance(0.65)) {
      GeoPoint p{rng.next_double(0, 10), rng.next_double(0, 10), 0};
      index->insert(id, p);
      oracle.insert(id, p);
    } else {
      EXPECT_EQ(index->remove(id), oracle.remove(id)) << GetParam() << " step " << step;
    }
    if (step % 25 == 0) {
      double lat = rng.next_double(0, 8), lon = rng.next_double(0, 8);
      BoundingBox query{lat, lon, lat + rng.next_double(0.1, 4), lon + rng.next_double(0.1, 4)};
      EXPECT_EQ(sorted(index->query(query)), sorted(oracle.query(query)))
          << GetParam() << " step " << step;
      EXPECT_EQ(index->size(), oracle.size()) << GetParam() << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, IndexKindTest,
                         ::testing::Values("naive", "hilbert", "flat_hilbert", "rtree",
                                           "quadtree"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

TEST(FlatHilbertSpecific, BulkLoadMatchesIncrementalInserts) {
  util::Rng rng(11);
  std::vector<std::pair<EntryId, GeoPoint>> entries;
  FlatHilbertIndex incremental(kDomain, 8);
  for (EntryId id = 0; id < 400; ++id) {
    GeoPoint p{rng.next_double(0, 10), rng.next_double(0, 10), 0};
    entries.emplace_back(id, p);
    incremental.insert(id, p);
  }
  FlatHilbertIndex bulk(kDomain, 8);
  bulk.bulk_load(entries);
  for (int trial = 0; trial < 30; ++trial) {
    double lat = rng.next_double(0, 9), lon = rng.next_double(0, 9);
    BoundingBox query{lat, lon, lat + rng.next_double(0.1, 3), lon + rng.next_double(0.1, 3)};
    EXPECT_EQ(sorted(bulk.query(query)), sorted(incremental.query(query)));
  }
}

TEST(RTreeSpecific, BulkLoadMatchesIncrementalInserts) {
  util::Rng rng(13);
  std::vector<std::pair<EntryId, GeoPoint>> entries;
  RTree incremental;
  for (EntryId id = 0; id < 400; ++id) {
    GeoPoint p{rng.next_double(0, 10), rng.next_double(0, 10), 0};
    entries.emplace_back(id, p);
    incremental.insert(id, p);
  }
  RTree bulk;
  bulk.bulk_load(entries);
  EXPECT_EQ(bulk.size(), incremental.size());
  // STR packs ~100% full leaves; height must not exceed the
  // one-at-a-time tree's.
  EXPECT_LE(bulk.height(), incremental.height());
  for (int trial = 0; trial < 30; ++trial) {
    double lat = rng.next_double(0, 9), lon = rng.next_double(0, 9);
    BoundingBox query{lat, lon, lat + rng.next_double(0.1, 3), lon + rng.next_double(0.1, 3)};
    EXPECT_EQ(sorted(bulk.query(query)), sorted(incremental.query(query)));
  }
  // A bulk-loaded tree keeps honouring the ordinary mutation API.
  EXPECT_TRUE(bulk.remove(0));
  bulk.insert(1000, GeoPoint{5, 5, 0});
  auto hits = sorted(bulk.query(BoundingBox{5, 5, 5, 5}));
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 1000) != hits.end());
}

TEST(RTreeSpecific, HeightGrowsLogarithmically) {
  RTree tree;
  util::Rng rng(7);
  for (EntryId id = 0; id < 1000; ++id)
    tree.insert(id, GeoPoint{rng.next_double(0, 10), rng.next_double(0, 10), 0});
  EXPECT_GE(tree.height(), 3);
  EXPECT_LE(tree.height(), 8);  // log_4(1000) ~ 5
}

TEST(RTreeSpecific, BoxEntriesSupported) {
  RTree tree;
  tree.insert_box(1, BoundingBox{0, 0, 2, 2});
  tree.insert_box(2, BoundingBox{5, 5, 7, 7});
  // A query overlapping only the edge of box 1.
  EXPECT_EQ(tree.query(BoundingBox{2, 2, 3, 3}), std::vector<EntryId>{1});
  auto both = tree.query(BoundingBox{0, 0, 10, 10});
  EXPECT_EQ(both.size(), 2u);
}

TEST(HilbertIndexSpecific, GridExposed) {
  HilbertIndex index(kDomain, 6);
  EXPECT_EQ(index.grid().order(), 6);
  EXPECT_EQ(index.grid().cells_per_side(), 64u);
}

TEST(QuadtreeSpecific, DeepSplitStillCorrect) {
  // Many coincident points force the depth cap path.
  Quadtree tree(kDomain, 2, 6);
  for (EntryId id = 0; id < 100; ++id) tree.insert(id, GeoPoint{5, 5, 0});
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_EQ(tree.query(BoundingBox{4.9, 4.9, 5.1, 5.1}).size(), 100u);
}

}  // namespace
}  // namespace sns::geo
