// Tests for the resolver stack: cache, stub (spatial search list),
// iterative resolution with referrals.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "obs/metrics.hpp"
#include "resolver/cache.hpp"
#include "resolver/iterative.hpp"
#include "resolver/stub.hpp"

namespace sns::resolver {
namespace {

using dns::make_a;
using dns::name_of;
using dns::Rcode;
using dns::RRType;

// --- DnsCache ----------------------------------------------------------------

TEST(Cache, PositiveHitWithTtlDecrement) {
  DnsCache cache;
  dns::RRset rrset{make_a(name_of("a.loc"), net::Ipv4Addr{{1, 1, 1, 1}}, 100)};
  cache.put(rrset, net::ms(0));
  auto hit = cache.get(name_of("a.loc"), RRType::A, std::chrono::seconds(40));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0].ttl, 60u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(Cache, ExpiryIsExact) {
  DnsCache cache;
  dns::RRset rrset{make_a(name_of("a.loc"), net::Ipv4Addr{{1, 1, 1, 1}}, 100)};
  cache.put(rrset, net::ms(0));
  EXPECT_TRUE(cache.get(name_of("a.loc"), RRType::A, std::chrono::seconds(100) - net::us(1))
                  .has_value());
  EXPECT_FALSE(cache.get(name_of("a.loc"), RRType::A, std::chrono::seconds(100)).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, MinTtlOfSetGoverns) {
  DnsCache cache;
  dns::RRset rrset{make_a(name_of("a.loc"), net::Ipv4Addr{{1, 1, 1, 1}}, 100),
                   make_a(name_of("a.loc"), net::Ipv4Addr{{2, 2, 2, 2}}, 10)};
  cache.put(rrset, net::ms(0));
  EXPECT_FALSE(cache.get(name_of("a.loc"), RRType::A, std::chrono::seconds(11)).has_value());
}

TEST(Cache, NegativeCaching) {
  DnsCache cache;
  cache.put_negative(name_of("ghost.loc"), RRType::A, Rcode::NXDomain, 60, net::ms(0));
  auto hit = cache.get_negative(name_of("ghost.loc"), RRType::A, std::chrono::seconds(30));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Rcode::NXDomain);
  EXPECT_FALSE(
      cache.get_negative(name_of("ghost.loc"), RRType::A, std::chrono::seconds(61)).has_value());
}

TEST(Cache, LruEvictsOldest) {
  DnsCache cache(3);
  for (int i = 0; i < 4; ++i) {
    dns::RRset rrset{
        make_a(name_of("h" + std::to_string(i) + ".loc"), net::Ipv4Addr{{1, 1, 1, 1}}, 100)};
    cache.put(rrset, net::ms(0));
  }
  // h0 was evicted; h1..h3 remain.
  EXPECT_FALSE(cache.get(name_of("h0.loc"), RRType::A, net::ms(1)).has_value());
  EXPECT_TRUE(cache.get(name_of("h3.loc"), RRType::A, net::ms(1)).has_value());
}

TEST(Cache, TouchKeepsHotEntries) {
  DnsCache cache(2);
  dns::RRset a{make_a(name_of("a.loc"), net::Ipv4Addr{{1, 1, 1, 1}}, 100)};
  dns::RRset b{make_a(name_of("b.loc"), net::Ipv4Addr{{1, 1, 1, 1}}, 100)};
  dns::RRset c{make_a(name_of("c.loc"), net::Ipv4Addr{{1, 1, 1, 1}}, 100)};
  cache.put(a, net::ms(0));
  cache.put(b, net::ms(0));
  (void)cache.get(name_of("a.loc"), RRType::A, net::ms(1));  // touch a
  cache.put(c, net::ms(0));                                   // evicts b, not a
  EXPECT_TRUE(cache.get(name_of("a.loc"), RRType::A, net::ms(2)).has_value());
  EXPECT_FALSE(cache.get(name_of("b.loc"), RRType::A, net::ms(2)).has_value());
}

TEST(Cache, TypeIsPartOfKey) {
  DnsCache cache;
  dns::RRset rrset{make_a(name_of("a.loc"), net::Ipv4Addr{{1, 1, 1, 1}}, 100)};
  cache.put(rrset, net::ms(0));
  EXPECT_FALSE(cache.get(name_of("a.loc"), RRType::AAAA, net::ms(1)).has_value());
}

TEST(Cache, NegativeStoreIsBounded) {
  DnsCache cache(3);
  for (int i = 0; i < 10; ++i)
    cache.put_negative(name_of("g" + std::to_string(i) + ".loc"), RRType::A, Rcode::NXDomain, 60,
                       net::ms(0));
  EXPECT_EQ(cache.negative_size(), 3u);
  // Oldest entries went first; the three most recent remain.
  EXPECT_FALSE(cache.get_negative(name_of("g0.loc"), RRType::A, net::ms(1)).has_value());
  EXPECT_FALSE(cache.get_negative(name_of("g6.loc"), RRType::A, net::ms(1)).has_value());
  EXPECT_TRUE(cache.get_negative(name_of("g7.loc"), RRType::A, net::ms(1)).has_value());
  EXPECT_TRUE(cache.get_negative(name_of("g9.loc"), RRType::A, net::ms(1)).has_value());
}

TEST(Cache, NegativeTouchKeepsHotEntries) {
  DnsCache cache(2);
  cache.put_negative(name_of("a.loc"), RRType::A, Rcode::NXDomain, 60, net::ms(0));
  cache.put_negative(name_of("b.loc"), RRType::A, Rcode::NXDomain, 60, net::ms(0));
  (void)cache.get_negative(name_of("a.loc"), RRType::A, net::ms(1));  // touch a
  cache.put_negative(name_of("c.loc"), RRType::A, Rcode::NXDomain, 60, net::ms(0));
  EXPECT_TRUE(cache.get_negative(name_of("a.loc"), RRType::A, net::ms(2)).has_value());
  EXPECT_FALSE(cache.get_negative(name_of("b.loc"), RRType::A, net::ms(2)).has_value());
}

TEST(Cache, NegativeExpiryErasesEntry) {
  DnsCache cache;
  cache.put_negative(name_of("ghost.loc"), RRType::A, Rcode::NXDomain, 60, net::ms(0));
  EXPECT_EQ(cache.negative_size(), 1u);
  EXPECT_FALSE(
      cache.get_negative(name_of("ghost.loc"), RRType::A, std::chrono::seconds(60)).has_value());
  EXPECT_EQ(cache.negative_size(), 0u);  // expired probe erased the entry
}

TEST(Cache, ReinsertUpdatesRcodeWithoutGrowing) {
  DnsCache cache(4);
  cache.put_negative(name_of("x.loc"), RRType::A, Rcode::NXDomain, 60, net::ms(0));
  cache.put_negative(name_of("x.loc"), RRType::A, Rcode::NoError, 60, net::ms(0));  // NODATA now
  EXPECT_EQ(cache.negative_size(), 1u);
  auto hit = cache.get_negative(name_of("x.loc"), RRType::A, net::ms(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Rcode::NoError);
}

TEST(Cache, MetricsCountersTrackNegativeLifecycle) {
  obs::MetricsRegistry metrics;
  DnsCache cache(2);
  cache.set_metrics(&metrics);
  for (int i = 0; i < 3; ++i)
    cache.put_negative(name_of("n" + std::to_string(i) + ".loc"), RRType::A, Rcode::NXDomain, 60,
                       net::ms(0));
  (void)cache.get_negative(name_of("n2.loc"), RRType::A, net::ms(1));
  EXPECT_EQ(metrics.counter_value("resolver.cache.negative_insert"), 3u);
  EXPECT_EQ(metrics.counter_value("resolver.cache.negative_evict"), 1u);
  EXPECT_EQ(metrics.counter_value("resolver.cache.negative_hit"), 1u);

  dns::RRset rrset{make_a(name_of("a.loc"), net::Ipv4Addr{{1, 1, 1, 1}}, 100)};
  cache.put(rrset, net::ms(0));
  (void)cache.get(name_of("a.loc"), RRType::A, net::ms(1));
  (void)cache.get(name_of("zzz.loc"), RRType::A, net::ms(1));
  EXPECT_EQ(metrics.counter_value("resolver.cache.insert"), 1u);
  EXPECT_EQ(metrics.counter_value("resolver.cache.hit"), 1u);
  EXPECT_EQ(metrics.counter_value("resolver.cache.miss"), 1u);
}

// --- Stub + iterative over a deployed world ----------------------------------

struct Fixture {
  core::WhiteHouseWorld world = core::make_white_house_world(7);
  core::SnsDeployment& d = *world.deployment;
};

TEST(Stub, SearchListCompletesRelativeNames) {
  Fixture f;
  net::NodeId client = f.d.add_client("c", *f.world.oval_office, true);
  auto stub = f.d.make_stub(client, *f.world.oval_office);
  auto result = stub.resolve("speaker", RRType::BDADDR);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().stats.rcode, Rcode::NoError);
  EXPECT_EQ(result.value().effective_name, f.world.speaker);
  ASSERT_EQ(result.value().records.size(), 1u);
}

TEST(Stub, AbsoluteNameSkipsSearchList) {
  Fixture f;
  net::NodeId client = f.d.add_client("c", *f.world.oval_office, true);
  auto stub = f.d.make_stub(client, *f.world.oval_office);
  auto result = stub.resolve(f.world.display.to_string() + ".", RRType::A);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.rcode, Rcode::NoError);
}

TEST(Stub, NxdomainForGarbage) {
  Fixture f;
  net::NodeId client = f.d.add_client("c", *f.world.oval_office, true);
  auto stub = f.d.make_stub(client, *f.world.oval_office);
  auto result = stub.resolve("no-such-device", RRType::A);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.rcode, Rcode::NXDomain);
}

TEST(Stub, CacheMakesRepeatLookupsInstant) {
  Fixture f;
  net::NodeId client = f.d.add_client("c", *f.world.oval_office, true);
  auto stub = f.d.make_stub(client, *f.world.oval_office);
  DnsCache cache;
  stub.set_cache(&cache);

  auto first = stub.resolve(f.world.speaker, RRType::BDADDR);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().stats.from_cache);
  EXPECT_GT(first.value().stats.latency.count(), 0);

  auto second = stub.resolve(f.world.speaker, RRType::BDADDR);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().stats.from_cache);
  EXPECT_EQ(second.value().stats.latency.count(), 0);
  EXPECT_EQ(second.value().records[0].rdata, first.value().records[0].rdata);
}

TEST(Stub, NegativeCachingOfNxdomain) {
  Fixture f;
  net::NodeId client = f.d.add_client("c", *f.world.oval_office, true);
  auto stub = f.d.make_stub(client, *f.world.oval_office);
  DnsCache cache;
  stub.set_cache(&cache);
  Name ghost = name_of("ghost." + f.world.oval_office->zone->domain().to_string());
  ASSERT_TRUE(stub.resolve(ghost, RRType::A).ok());
  auto cached = stub.resolve(ghost, RRType::A);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached.value().stats.from_cache);
  EXPECT_EQ(cached.value().stats.rcode, Rcode::NXDomain);
}

TEST(Iterative, ResolvesThroughFullHierarchy) {
  Fixture f;
  net::NodeId client = f.d.add_client("remote", *f.world.cabinet_room, false);
  auto iterative = f.d.make_iterative(client);
  auto result = iterative.resolve(f.world.display, RRType::AAAA);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().stats.rcode, Rcode::NoError);
  ASSERT_FALSE(result.value().records.empty());
  // Root -> loc is one zone cut; then usa, dc, washington, penn-ave,
  // 1600, oval-office: at least 6 referrals.
  EXPECT_GE(result.value().stats.referrals_followed, 6);
  EXPECT_GE(result.value().stats.queries_sent, 7);
  EXPECT_GT(result.value().stats.latency.count(), 0);
}

TEST(Iterative, ExternalViewServedToRemoteClients) {
  Fixture f;
  net::NodeId client = f.d.add_client("remote", *f.world.cabinet_room, false);
  auto iterative = f.d.make_iterative(client);
  // The mic is presence-protected (§3.1): resolution from outside is
  // REFUSED — the Bluetooth address never leaves the room's view.
  auto mic = iterative.resolve(f.world.mic, RRType::BDADDR);
  ASSERT_TRUE(mic.ok()) << mic.error().message;
  EXPECT_EQ(mic.value().stats.rcode, Rcode::Refused);
  EXPECT_TRUE(mic.value().records.empty());
  // The speaker is not protected but exists only in the internal view:
  // outsiders get NXDOMAIN from the external view.
  auto speaker = iterative.resolve(f.world.speaker, RRType::BDADDR);
  ASSERT_TRUE(speaker.ok()) << speaker.error().message;
  EXPECT_EQ(speaker.value().stats.rcode, Rcode::NXDomain);
}

TEST(Iterative, CacheShortCircuitsSecondResolution) {
  Fixture f;
  net::NodeId client = f.d.add_client("remote", *f.world.cabinet_room, false);
  auto iterative = f.d.make_iterative(client);
  DnsCache cache;
  iterative.set_cache(&cache);
  auto first = iterative.resolve(f.world.display, RRType::AAAA);
  ASSERT_TRUE(first.ok());
  int first_queries = first.value().stats.queries_sent;
  auto second = iterative.resolve(f.world.display, RRType::AAAA);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().stats.queries_sent, 0);
  EXPECT_GT(first_queries, 0);
}

TEST(Iterative, UnresolvableNameFails) {
  Fixture f;
  net::NodeId client = f.d.add_client("remote", *f.world.cabinet_room, false);
  auto iterative = f.d.make_iterative(client);
  auto result = iterative.resolve(name_of("device.nowhere.example"), RRType::A);
  // Root is not authoritative and has no delegation: NXDOMAIN from root.
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.rcode, Rcode::NXDomain);
}

TEST(Directory, LookupByNameAndAddress) {
  ServerDirectory directory;
  directory.register_server(name_of("ns.zone.loc"), net::Ipv4Addr{{10, 0, 0, 7}}, 42);
  EXPECT_EQ(directory.by_name(name_of("ns.zone.loc")), std::optional<net::NodeId>(42));
  EXPECT_EQ(directory.by_address(net::Ipv4Addr{{10, 0, 0, 7}}), std::optional<net::NodeId>(42));
  EXPECT_EQ(directory.by_name(name_of("nope.loc")), std::nullopt);
  EXPECT_EQ(directory.by_address(net::Ipv4Addr{{9, 9, 9, 9}}), std::nullopt);
}

}  // namespace
}  // namespace sns::resolver
