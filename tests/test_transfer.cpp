// Tests for zone transfer (AXFR-shaped replication between edge
// nameservers, §4.2 resilience).
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "server/transfer.hpp"

namespace sns::server {
namespace {

using dns::make_a;
using dns::make_bdaddr;
using dns::name_of;

const Name kApex = name_of("oval-office.loc");

void bump_serial(Zone& zone) {
  auto txn = zone.txn();
  txn.bump_serial();
  (void)zone.commit(std::move(txn));
}

Zone primary_zone() {
  Zone zone(kApex, name_of("ns.oval-office.loc"));
  (void)zone.add(make_bdaddr(name_of("mic.oval-office.loc"), net::Bdaddr{{1, 2, 3, 4, 5, 6}}));
  (void)zone.add(make_a(name_of("display.oval-office.loc"), net::Ipv4Addr{{192, 0, 3, 12}}));
  bump_serial(zone);  // serial 2
  return zone;
}

TEST(Transfer, RequestShape) {
  auto request = make_transfer_request(7, kApex, 5);
  EXPECT_EQ(request.questions.front().type, kAxfrType);
  ASSERT_EQ(request.authorities.size(), 1u);
  EXPECT_EQ(std::get<dns::SoaData>(request.authorities[0].rdata).serial, 5u);
}

TEST(Transfer, FullTransferWhenBehind) {
  Zone primary = primary_zone();
  auto response = serve_transfer(primary, make_transfer_request(1, kApex, 0));
  EXPECT_EQ(response.header.rcode, dns::Rcode::NoError);
  ASSERT_GE(response.answers.size(), 4u);  // SOA + 2 records + SOA
  EXPECT_EQ(response.answers.front().type, RRType::SOA);
  EXPECT_EQ(response.answers.back().type, RRType::SOA);
  EXPECT_EQ(response.answers.front(), response.answers.back());
}

TEST(Transfer, SerialGateSkipsCurrentSecondary) {
  Zone primary = primary_zone();
  auto response = serve_transfer(primary, make_transfer_request(1, kApex, primary.serial()));
  EXPECT_EQ(response.header.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(response.answers.empty());
  // A *newer* claimed serial also skips (secondary ahead — odd but not fatal).
  response = serve_transfer(primary, make_transfer_request(2, kApex, primary.serial() + 10));
  EXPECT_TRUE(response.answers.empty());
}

TEST(Transfer, WrongZoneNotAuth) {
  Zone primary = primary_zone();
  auto response = serve_transfer(primary, make_transfer_request(1, name_of("other.loc"), 0));
  EXPECT_EQ(response.header.rcode, dns::Rcode::NotAuth);
}

TEST(Transfer, ApplyReplacesContents) {
  Zone primary = primary_zone();
  Zone secondary(kApex, name_of("ns2.oval-office.loc"));
  auto response = serve_transfer(primary, make_transfer_request(1, kApex, secondary.serial()));
  auto applied = apply_transfer(secondary, response);
  ASSERT_TRUE(applied.ok()) << applied.error().message;
  EXPECT_TRUE(applied.value());
  EXPECT_EQ(secondary.serial(), primary.serial());
  EXPECT_EQ(secondary.record_count(), primary.record_count());
  EXPECT_NE(secondary.find(name_of("mic.oval-office.loc"), RRType::BDADDR), nullptr);

  // Second refresh: already current, no change.
  auto again = serve_transfer(primary, make_transfer_request(2, kApex, secondary.serial()));
  auto reapplied = apply_transfer(secondary, again);
  ASSERT_TRUE(reapplied.ok());
  EXPECT_FALSE(reapplied.value());
}

TEST(Transfer, RejectsBrokenFraming) {
  Zone primary = primary_zone();
  Zone secondary(kApex, name_of("ns2.oval-office.loc"));
  auto response = serve_transfer(primary, make_transfer_request(1, kApex, 0));
  response.answers.pop_back();  // drop the trailing SOA (truncated transfer)
  EXPECT_FALSE(apply_transfer(secondary, response).ok());

  auto error = dns::make_response(make_transfer_request(2, kApex, 0), dns::Rcode::ServFail,
                                  true);
  EXPECT_FALSE(apply_transfer(secondary, error).ok());
}

TEST(Transfer, OverTheSimulatedNetwork) {
  net::Network network(9);
  net::NodeId primary_node = network.add_node("primary");
  net::NodeId secondary_node = network.add_node("secondary");
  network.connect(primary_node, secondary_node, net::lan_link());

  Zone primary = primary_zone();
  network.set_handler(primary_node,
                      [&primary](std::span<const std::uint8_t> payload, net::NodeId) {
                        auto request = dns::Message::decode(payload);
                        if (!request.ok()) return std::optional<util::Bytes>{};
                        // Transfers are large: honour EDNS by encoding raw.
                        return std::optional<util::Bytes>{
                            serve_transfer(primary, request.value()).encode()};
                      });

  Zone secondary(kApex, name_of("ns2.oval-office.loc"));
  auto refreshed = refresh_secondary(network, secondary_node, primary_node, secondary);
  ASSERT_TRUE(refreshed.ok()) << refreshed.error().message;
  EXPECT_TRUE(refreshed.value());
  EXPECT_EQ(secondary.serial(), primary.serial());

  // Primary changes -> next refresh picks it up.
  (void)primary.add(make_a(name_of("new.oval-office.loc"), net::Ipv4Addr{{10, 0, 0, 1}}));
  bump_serial(primary);
  refreshed = refresh_secondary(network, secondary_node, primary_node, secondary);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_TRUE(refreshed.value());
  EXPECT_NE(secondary.find(name_of("new.oval-office.loc"), RRType::A), nullptr);
}

}  // namespace
}  // namespace sns::server
