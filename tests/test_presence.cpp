// Tests for audio-beacon presence proofs (§3.1).
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "core/presence.hpp"

namespace sns::core {
namespace {

TEST(PresenceToken, DeterministicAndSecretBound) {
  std::vector<std::uint8_t> nonce{1, 2, 3, 4};
  std::string t1 = presence_token("room-secret", std::span(nonce));
  std::string t2 = presence_token("room-secret", std::span(nonce));
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1.size(), 40u);  // hex SHA-1
  EXPECT_NE(t1, presence_token("other-secret", std::span(nonce)));
  std::vector<std::uint8_t> other_nonce{9, 9};
  EXPECT_NE(t1, presence_token("room-secret", std::span(other_nonce)));
}

TEST(Beacon, OnlyCoLocatedListenersHear) {
  net::Network network(3);
  net::NodeId beacon_node = network.add_node("beacon");
  net::NodeId inside = network.add_node("inside");
  net::NodeId outside = network.add_node("outside");
  network.place_in_room(beacon_node, 1);
  network.place_in_room(inside, 1);
  network.place_in_room(outside, 2);

  PresenceBeacon beacon(network, beacon_node, "secret", 42);
  PresenceListener inside_listener(network, inside);
  PresenceListener outside_listener(network, outside);

  EXPECT_FALSE(inside_listener.has_token());
  std::string token = beacon.chirp();
  EXPECT_TRUE(inside_listener.has_token());
  EXPECT_EQ(inside_listener.last_token(), token);
  EXPECT_FALSE(outside_listener.has_token());
}

TEST(Beacon, ChirpRotatesToken) {
  net::Network network(4);
  net::NodeId beacon_node = network.add_node("beacon");
  network.place_in_room(beacon_node, 1);
  PresenceBeacon beacon(network, beacon_node, "secret", 42);
  std::string first = beacon.chirp();
  std::string second = beacon.chirp();
  EXPECT_NE(first, second);
  EXPECT_EQ(beacon.current_token(), second);
  // token_ref() is a live view.
  auto ref = beacon.token_ref();
  EXPECT_EQ(*ref, second);
  std::string third = beacon.chirp();
  EXPECT_EQ(*ref, third);
}

TEST(Presence, EndToEndThroughDeployment) {
  auto world = make_white_house_world(21);
  auto& d = *world.deployment;

  // An insider who has heard no chirp yet: physically in the room, so
  // the room check alone admits them.
  net::NodeId insider = d.add_client("insider", *world.oval_office, true);
  auto stub = d.make_stub(insider, *world.oval_office);
  auto before = stub.resolve(world.mic, dns::RRType::BDADDR);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().stats.rcode, dns::Rcode::NoError);

  // An internal-but-different-room client (e.g. elsewhere in the White
  // House network): refused until it can present a live token.
  net::NodeId hallway = d.add_client("hallway", *world.white_house, true);
  auto hallway_stub = d.make_stub(hallway, *world.oval_office);
  auto refused = hallway_stub.resolve(world.mic, dns::RRType::BDADDR);
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused.value().stats.rcode, dns::Rcode::Refused);

  // Outsiders on the public internet: refused too.
  net::NodeId outsider = d.add_client("outsider", *world.cabinet_room, false);
  auto outsider_stub = d.make_stub(outsider, *world.oval_office);
  auto also_refused = outsider_stub.resolve(world.mic, dns::RRType::ANY);
  ASSERT_TRUE(also_refused.ok());
  EXPECT_EQ(also_refused.value().stats.rcode, dns::Rcode::Refused);

  // The speaker (unprotected) resolves for everyone inside the network.
  auto speaker = hallway_stub.resolve(world.speaker, dns::RRType::BDADDR);
  ASSERT_TRUE(speaker.ok());
  EXPECT_EQ(speaker.value().stats.rcode, dns::Rcode::NoError);
}

TEST(Presence, DeviceInRoomHearsBeaconAndGainsAccess) {
  auto world = make_white_house_world(22);
  auto& d = *world.deployment;
  // The speaker device node is placed in the oval office room by
  // add_device; after a chirp its context carries the token, so it can
  // resolve the protected mic even though token != room check order.
  const Device* speaker = world.oval_office->zone->find_device(world.speaker);
  ASSERT_NE(speaker, nullptr);
  ASSERT_NE(speaker->node, net::kInvalidNode);

  world.oval_office->beacon->chirp();
  auto ctx = d.context_for(speaker->node, *world.oval_office);
  EXPECT_EQ(ctx.presence_tokens.size(), 1u);
  EXPECT_TRUE(ctx.presence_tokens.contains(world.oval_office->beacon->current_token()));

  auto stub = d.make_stub(speaker->node, *world.oval_office);
  auto mic = stub.resolve(world.mic, dns::RRType::BDADDR);
  ASSERT_TRUE(mic.ok());
  EXPECT_EQ(mic.value().stats.rcode, dns::Rcode::NoError);
}

}  // namespace
}  // namespace sns::core
