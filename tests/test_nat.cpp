// Tests for the NAT + PCP-style mapping whose lifetime follows the DNS
// TTL (§3.1).
#include <gtest/gtest.h>

#include "net/nat.hpp"

namespace sns::net {
namespace {

const Ipv4Addr kPublic{{203, 0, 113, 1}};

TEST(Nat, MappingCreatedAndTranslates) {
  NatBox nat(kPublic);
  auto mapping = nat.request_mapping(5, 8080, ms(120000), TimePoint{0});
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping.value().external_ip, kPublic);
  EXPECT_EQ(mapping.value().internal_node, 5u);
  auto hit = nat.translate(mapping.value().external_port, ms(1000));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->internal_node, 5u);
  EXPECT_EQ(hit->internal_port, 8080);
}

TEST(Nat, LifetimeFollowsTtl) {
  // The §3.1 contract: mapping lives exactly as long as the DNS TTL.
  NatBox nat(kPublic);
  Duration ttl = std::chrono::seconds(120);
  auto mapping = nat.request_mapping(5, 443, ttl, TimePoint{0});
  ASSERT_TRUE(mapping.ok());
  EXPECT_TRUE(nat.translate(mapping.value().external_port, ttl - us(1)).has_value());
  EXPECT_FALSE(nat.translate(mapping.value().external_port, ttl).has_value());
}

TEST(Nat, RenewalKeepsPort) {
  NatBox nat(kPublic);
  auto first = nat.request_mapping(5, 443, ms(1000), TimePoint{0});
  ASSERT_TRUE(first.ok());
  auto renewed = nat.request_mapping(5, 443, ms(1000), ms(500));
  ASSERT_TRUE(renewed.ok());
  EXPECT_EQ(renewed.value().external_port, first.value().external_port);
  EXPECT_EQ(renewed.value().expires, ms(1500));
  EXPECT_EQ(nat.active_mappings(ms(1200)), 1u);
}

TEST(Nat, DistinctEndpointsGetDistinctPorts) {
  NatBox nat(kPublic);
  auto a = nat.request_mapping(1, 80, ms(1000), TimePoint{0});
  auto b = nat.request_mapping(2, 80, ms(1000), TimePoint{0});
  auto c = nat.request_mapping(1, 81, ms(1000), TimePoint{0});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a.value().external_port, b.value().external_port);
  EXPECT_NE(a.value().external_port, c.value().external_port);
}

TEST(Nat, ReleaseRemovesMapping) {
  NatBox nat(kPublic);
  auto mapping = nat.request_mapping(3, 22, ms(100000), TimePoint{0});
  ASSERT_TRUE(mapping.ok());
  nat.release_mapping(3, 22);
  EXPECT_FALSE(nat.translate(mapping.value().external_port, ms(1)).has_value());
  nat.release_mapping(3, 22);  // idempotent
}

TEST(Nat, ExpireSweepsOldMappings) {
  NatBox nat(kPublic);
  (void)nat.request_mapping(1, 80, ms(100), TimePoint{0});
  (void)nat.request_mapping(2, 80, ms(200), TimePoint{0});
  (void)nat.request_mapping(3, 80, ms(300), TimePoint{0});
  EXPECT_EQ(nat.expire(ms(250)), 2u);
  EXPECT_EQ(nat.active_mappings(ms(250)), 1u);
}

TEST(Nat, PoolExhaustion) {
  NatBox nat(kPublic);
  for (std::uint16_t i = 0; i < 1000; ++i)
    ASSERT_TRUE(nat.request_mapping(i, 80, ms(10000), TimePoint{0}).ok());
  EXPECT_FALSE(nat.request_mapping(2000, 80, ms(10000), TimePoint{0}).ok());
}

TEST(Nat, UnknownPortDoesNotTranslate) {
  NatBox nat(kPublic);
  EXPECT_FALSE(nat.translate(40000, TimePoint{0}).has_value());
}

}  // namespace
}  // namespace sns::net
