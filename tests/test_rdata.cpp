// Tests for dns rdata codecs: wire round-trip for every type (Table 1
// included), presentation forms, TXT fallback, malformed input.
#include <gtest/gtest.h>

#include "dns/record.hpp"
#include "util/rng.hpp"

namespace sns::dns {
namespace {

Rdata roundtrip(const Rdata& rdata, RRType type) {
  util::ByteWriter w;
  encode_rdata(rdata, w, nullptr);
  util::ByteReader r(std::span(w.data()));
  auto decoded = decode_rdata(type, r, w.size());
  EXPECT_TRUE(decoded.ok()) << to_string(type) << ": "
                            << (decoded.ok() ? "" : decoded.error().message);
  return decoded.ok() ? decoded.value() : Rdata{RawData{}};
}

// --- parameterized wire round-trip over a corpus of every type -------------

struct RdataCase {
  const char* label;
  RRType type;
  Rdata rdata;
};

class RdataRoundTrip : public ::testing::TestWithParam<RdataCase> {};

TEST_P(RdataRoundTrip, WireRoundTrip) {
  const auto& param = GetParam();
  EXPECT_EQ(roundtrip(param.rdata, param.type), param.rdata);
}

TEST_P(RdataRoundTrip, TypeTagMatches) {
  const auto& param = GetParam();
  EXPECT_EQ(rdata_type(param.rdata), param.type);
}

TEST_P(RdataRoundTrip, PresentationRoundTrip) {
  // Types whose presentation form is parseable should round-trip
  // through tokens as well.
  const auto& param = GetParam();
  switch (param.type) {
    case RRType::RRSIG:
    case RRType::DNSKEY:
    case RRType::NSEC3:
    case RRType::TSIG:
    case RRType::OPT:
      return;  // presentation parsing intentionally not supported
    default:
      break;
  }
  std::string text = rdata_to_string(param.rdata);
  std::vector<std::string> tokens;
  // Tokenise respecting quotes (like the master parser does).
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == ' ') {
      ++i;
      continue;
    }
    if (text[i] == '"') {
      std::size_t close = text.find('"', i + 1);
      tokens.push_back(text.substr(i, close - i + 1));
      i = close + 1;
    } else {
      std::size_t end = text.find(' ', i);
      if (end == std::string::npos) end = text.size();
      tokens.push_back(text.substr(i, end - i));
      i = end;
    }
  }
  auto parsed = rdata_from_tokens(param.type, tokens);
  ASSERT_TRUE(parsed.ok()) << to_string(param.type) << ": " << parsed.error().message
                           << " from '" << text << "'";
  if (param.type == RRType::LOC) {
    // LOC round-trips through text with precision quantisation; compare
    // the decoded coordinates instead of raw bytes.
    const auto& a = std::get<LocData>(param.rdata);
    const auto& b = std::get<LocData>(parsed.value());
    EXPECT_NEAR(a.latitude_degrees(), b.latitude_degrees(), 1e-5);
    EXPECT_NEAR(a.longitude_degrees(), b.longitude_degrees(), 1e-5);
    return;
  }
  EXPECT_EQ(parsed.value(), param.rdata) << to_string(param.type) << " '" << text << "'";
}

std::vector<RdataCase> all_cases() {
  auto v6 = net::Ipv6Addr::parse("2001:db8::1").value();
  LocData loc = LocData::from_degrees(38.8974, -77.0374, 15.0).value();
  Nsec3Data nsec3;
  nsec3.iterations = 5;
  nsec3.salt = {0xaa, 0xbb};
  nsec3.next_hashed_owner.assign(20, 0x42);
  nsec3.types = {RRType::A, RRType::TXT, RRType::BDADDR};
  TsigData tsig;
  tsig.algorithm = name_of("hmac-sha1.sig-alg.reg.int");
  tsig.time_signed = 0x123456789aULL;
  tsig.mac = {1, 2, 3, 4};
  tsig.original_id = 77;
  RrsigData rrsig;
  rrsig.type_covered = RRType::AAAA;
  rrsig.algorithm = 250;
  rrsig.labels = 3;
  rrsig.original_ttl = 300;
  rrsig.expiration = 1000000;
  rrsig.inception = 999000;
  rrsig.key_tag = 4242;
  rrsig.signer = name_of("oval-office.loc");
  rrsig.signature = {9, 8, 7};

  return {
      {"A", RRType::A, AData{net::Ipv4Addr{{192, 0, 2, 1}}}},
      {"AAAA", RRType::AAAA, AaaaData{v6}},
      {"NS", RRType::NS, NsData{name_of("ns.oval-office.loc")}},
      {"CNAME", RRType::CNAME, CnameData{name_of("new.cabinet-room.loc")}},
      {"SOA", RRType::SOA,
       SoaData{name_of("ns.loc"), name_of("hostmaster.loc"), 7, 3600, 600, 86400, 60}},
      {"PTR", RRType::PTR, PtrData{name_of("mic.oval-office.loc")}},
      {"MX", RRType::MX, MxData{10, name_of("mail.loc")}},
      {"TXT", RRType::TXT, TxtData{{"hello", "world"}}},
      {"SRV", RRType::SRV, SrvData{0, 5, 8080, name_of("display.oval-office.loc")}},
      {"LOC", RRType::LOC, loc},
      {"SSHFP", RRType::SSHFP, SshfpData{4, 2, {0xde, 0xad, 0xbe, 0xef}}},
      {"RRSIG", RRType::RRSIG, rrsig},
      {"DNSKEY", RRType::DNSKEY, DnskeyData{256, 3, 250, {1, 2, 3}}},
      {"NSEC3", RRType::NSEC3, nsec3},
      {"TSIG", RRType::TSIG, tsig},
      {"BDADDR", RRType::BDADDR, BdaddrData{net::Bdaddr{{1, 0x23, 0x45, 0x67, 0x89, 0xab}}}},
      {"WIFI", RRType::WIFI, WifiData{"wh-iot", net::Ipv4Addr{{192, 0, 3, 1}}}},
      {"LORA", RRType::LORA, LoraData{name_of("gw.field.loc"), net::LoraDevAddr{0x01ab23cd}}},
      {"DTMF", RRType::DTMF, DtmfData{net::DtmfTone{"421#"}}},
  };
}

INSTANTIATE_TEST_SUITE_P(AllTypes, RdataRoundTrip, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<RdataCase>& param_info) {
                           return param_info.param.label;
                         });

// --- targeted behaviours ----------------------------------------------------

TEST(Rdata, UnknownTypeRoundTripsRaw) {
  RawData raw{{1, 2, 3, 4, 5}};
  util::ByteWriter w;
  encode_rdata(Rdata{raw}, w, nullptr);
  util::ByteReader r(std::span(w.data()));
  auto decoded = decode_rdata(static_cast<RRType>(999), r, w.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<RawData>(decoded.value()), raw);
}

TEST(Rdata, EmptyTxtEncodesOneEmptyString) {
  util::ByteWriter w;
  encode_rdata(Rdata{TxtData{}}, w, nullptr);
  EXPECT_EQ(w.size(), 1u);  // single zero-length character-string
}

TEST(Rdata, RdlengthMismatchRejected) {
  util::ByteWriter w;
  encode_rdata(Rdata{AData{net::Ipv4Addr{{1, 2, 3, 4}}}}, w, nullptr);
  util::ByteReader r(std::span(w.data()));
  EXPECT_FALSE(decode_rdata(RRType::A, r, 3).ok());  // claims 3 bytes, A needs 4
}

TEST(Rdata, TruncatedInputsRejected) {
  for (RRType type : {RRType::A, RRType::AAAA, RRType::SOA, RRType::SRV, RRType::LOC,
                      RRType::BDADDR, RRType::WIFI, RRType::TSIG, RRType::NSEC3}) {
    std::vector<std::uint8_t> tiny{0x01};
    util::ByteReader r{std::span(tiny)};
    EXPECT_FALSE(decode_rdata(type, r, tiny.size()).ok()) << to_string(type);
  }
}

TEST(Rdata, FuzzDecodeNeverCrashes) {
  util::Rng rng(99);
  std::vector<RRType> types{RRType::A,     RRType::AAAA,  RRType::SOA,   RRType::TXT,
                            RRType::SRV,   RRType::LOC,   RRType::SSHFP, RRType::RRSIG,
                            RRType::NSEC3, RRType::TSIG,  RRType::BDADDR, RRType::WIFI,
                            RRType::LORA,  RRType::DTMF};
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> wire(rng.next_below(48));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next_below(256));
    util::ByteReader r{std::span(wire)};
    (void)decode_rdata(types[static_cast<std::size_t>(trial) % types.size()], r, wire.size());
  }
}

TEST(TxtFallback, AllExtendedTypes) {
  std::vector<RdataCase> extended;
  for (const auto& c : all_cases())
    if (has_txt_fallback(c.type)) extended.push_back(c);
  ASSERT_EQ(extended.size(), 4u);  // BDADDR WIFI LORA DTMF
  for (const auto& c : extended) {
    auto txt = to_txt_fallback(c.rdata);
    ASSERT_TRUE(txt.ok()) << c.label;
    auto recovered = from_txt_fallback(txt.value());
    ASSERT_TRUE(recovered.ok()) << c.label << ": " << recovered.error().message;
    EXPECT_EQ(recovered.value().first, c.type);
    EXPECT_EQ(recovered.value().second, c.rdata) << c.label;
  }
}

TEST(TxtFallback, RegularTypesHaveNone) {
  EXPECT_FALSE(has_txt_fallback(RRType::A));
  EXPECT_FALSE(to_txt_fallback(Rdata{AData{}}).ok());
}

TEST(TxtFallback, RejectsForeignTxt) {
  EXPECT_FALSE(from_txt_fallback(TxtData{{"v=spf1 -all"}}).ok());
  EXPECT_FALSE(from_txt_fallback(TxtData{{"sns:nonsense=1"}}).ok());
  EXPECT_FALSE(from_txt_fallback(TxtData{{"sns:bluetooth=zz"}}).ok());
  EXPECT_FALSE(from_txt_fallback(TxtData{{"a", "b"}}).ok());
}

TEST(Record, MakersProduceExpectedTypes) {
  Name n = name_of("mic.oval-office.loc");
  EXPECT_EQ(make_a(n, net::Ipv4Addr{{1, 2, 3, 4}}).type, RRType::A);
  EXPECT_EQ(make_bdaddr(n, net::Bdaddr{}).type, RRType::BDADDR);
  EXPECT_EQ(make_srv(n, 80, n).type, RRType::SRV);
  auto soa = make_soa(name_of("oval-office.loc"), name_of("ns.oval-office.loc"), 3);
  EXPECT_EQ(soa.type, RRType::SOA);
  EXPECT_EQ(std::get<SoaData>(soa.rdata).serial, 3u);
}

TEST(Record, WireRoundTripWholeRecord) {
  auto rr = make_bdaddr(name_of("speaker.oval-office.loc"),
                        net::Bdaddr{{0x0a, 0x1b, 0x2c, 0x3d, 0x4e, 0x5f}}, 120);
  util::ByteWriter w;
  rr.encode(w, nullptr);
  util::ByteReader r(std::span(w.data()));
  auto decoded = ResourceRecord::decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), rr);
}

TEST(RRTypeNames, RoundTrip) {
  for (RRType type : {RRType::A, RRType::AAAA, RRType::BDADDR, RRType::WIFI, RRType::LORA,
                      RRType::DTMF, RRType::LOC, RRType::NSEC3}) {
    auto parsed = rrtype_from_string(to_string(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), type);
  }
  auto generic = rrtype_from_string("TYPE65280");
  ASSERT_TRUE(generic.ok());
  EXPECT_EQ(generic.value(), RRType::BDADDR);
  EXPECT_FALSE(rrtype_from_string("NOTATYPE").ok());
}

}  // namespace
}  // namespace sns::dns
