// Property tests for the batched UDP drain and the precompiled-answer
// cache, asserted at the strongest level the contract allows: raw reply
// *bytes*. Batch mode (recvmmsg/sendmmsg) must be byte-for-byte
// equivalent to the single-datagram path, and a cache hit must be
// byte-for-byte equivalent to decode → engine → encode — across a
// traffic mix that interleaves malformed datagrams, case-mangled names,
// EDNS and non-EDNS clients, negative answers and flag oddities with
// ordinary positive queries. Also pins the batch observability contract
// (transport.udp.batch_size actually records multi-datagram rounds).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "dns/master.hpp"
#include "obs/metrics.hpp"
#include "runtime/answer_cache.hpp"
#include "server/authoritative.hpp"
#include "transport/client.hpp"
#include "transport/dns_server.hpp"
#include "transport/event_loop.hpp"

namespace sns::transport {
namespace {

using dns::name_of;
using dns::RRType;

constexpr std::string_view kZoneText = R"(
$ORIGIN office.loc.
$TTL 300
@        IN SOA  ns hostmaster 1 3600 600 86400 60
@        IN NS   ns
ns       IN A    192.0.2.1
mic      IN BDADDR 01:23:45:67:89:ab
mic      IN WIFI  "office-iot" 192.0.3.10
door     IN DTMF  42#
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-1"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-2"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-3"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-4"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-5"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-6"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-7"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-8"
)";

std::shared_ptr<server::Zone> make_zone() {
  auto records = dns::parse_master_file(kZoneText, dns::Name{});
  if (!records.ok()) return nullptr;
  auto view = server::build_zone_view(name_of("office.loc"), std::move(records).value());
  if (!view.ok()) return nullptr;
  return std::make_shared<server::Zone>(std::move(view).value());
}

/// One serving stack: engine + loop + DnsTransportServer, with the loop
/// thread started *on demand* so a test can queue a whole blast of
/// datagrams in the socket buffer first — which is what makes the first
/// batched wake drain full batches deterministically.
class Stack {
 public:
  explicit Stack(std::shared_ptr<server::Zone> zone, std::size_t udp_batch,
                 std::shared_ptr<const runtime::AnswerCache> cache = nullptr)
      : engine_("batch-test") {
    engine_.add_zone(std::move(zone));
    server_ = std::make_unique<DnsTransportServer>(
        loop_, [this](const dns::Message& query, const Endpoint&, Via) {
          return engine_.handle(query, server::ClientContext{});
        });
    server_->set_metrics(&metrics_);
    server_->set_udp_batch(udp_batch);
    if (cache != nullptr)
      server_->set_raw_udp_handler(
          [cache, this](std::span<const std::uint8_t> wire, const Endpoint&, Via,
                        util::Bytes& reply) {
            if (!cache->try_answer(wire, reply)) return false;
            ++cache_hits_;
            return true;
          });
    ok_ = loop_.valid() && server_->start(loopback(0)).ok();
  }

  ~Stack() {
    if (thread_.joinable()) {
      loop_.stop();
      thread_.join();
    }
    server_->close();
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const Endpoint& local() const { return server_->local(); }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }

  void run() { thread_ = std::thread([this] { loop_.run(); }); }

  void stop() {
    if (thread_.joinable()) {
      loop_.stop();
      thread_.join();
    }
  }

 private:
  obs::MetricsRegistry metrics_;
  server::AuthoritativeServer engine_;
  EventLoop loop_;
  std::unique_ptr<DnsTransportServer> server_;
  std::thread thread_;
  // Touched only on the loop thread; read after stop+join.
  std::uint64_t cache_hits_ = 0;
  bool ok_ = false;
};

/// The adversarial traffic mix. Every datagram that owes a reply
/// carries a unique transaction id in its first two bytes (FORMERR
/// replies echo it too), so replies can be matched across servers.
/// `silent` counts the datagrams that owe no reply at all.
std::vector<util::Bytes> make_traffic(std::size_t& silent) {
  std::vector<util::Bytes> out;
  std::uint16_t id = 100;
  auto query = [&](const char* name, RRType type) {
    return dns::make_query(id++, name_of(name), type);
  };
  auto push = [&](dns::Message q) { out.push_back(q.encode()); };

  for (int round = 0; round < 4; ++round) {
    push(query("mic.office.loc", RRType::BDADDR));       // positive, cacheable
    push(query("mic.office.loc", RRType::WIFI));         // second type, same owner
    push(query("ns.office.loc", RRType::A));             // glue-ish in-zone A
    push(query("MiC.OFFICE.loc", RRType::BDADDR));       // case must be echoed
    push(query("ghost.office.loc", RRType::A));          // NXDOMAIN + SOA authority
    push(query("ns.office.loc", RRType::TXT));           // NODATA + SOA authority
    push(query("office.loc", RRType::SOA));              // apex
    {
      auto q = query("big.office.loc", RRType::TXT);     // > 512 bytes: EDNS client
      dns::add_edns(q, 4096);
      push(q);
    }
    {
      auto q = query("big.office.loc", RRType::TXT);     // classic client: truncates
      push(q);
    }
    {
      auto q = query("mic.office.loc", RRType::BDADDR);
      dns::add_edns(q, 1232);                            // empty-OPT EDNS query
      push(q);
    }
    {
      auto q = query("door.office.loc", RRType::DTMF);
      q.header.rd = false;                               // RD clear must be echoed
      push(q);
    }
    {
      auto wire = query("mic.office.loc", RRType::BDADDR).encode();
      wire[2] |= 0x02;                                   // TC set on a *query*
      out.push_back(wire);
    }
    {
      auto wire = query("mic.office.loc", RRType::BDADDR).encode();
      wire[2] |= 0x80;                                   // QR set: a "response"
      out.push_back(wire);
    }
    // Malformed with a surviving id: FORMERR comes back.
    out.push_back({static_cast<std::uint8_t>(id >> 8), static_cast<std::uint8_t>(id & 0xff),
                   0xff, 0xff, 0xff});
    ++id;
    // Malformed without even an id: silence.
    out.push_back({0x00});
    ++silent;
  }
  return out;
}

/// Blast `traffic` at `server` from one socket, then collect replies
/// keyed by transaction id until `expected` arrived or 2 s passed.
std::map<std::uint16_t, util::Bytes> exchange(const Endpoint& server,
                                              const std::vector<util::Bytes>& traffic,
                                              std::size_t expected) {
  std::map<std::uint16_t, util::Bytes> replies;
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return replies;
  sockaddr_in sa{};
  server.to_sockaddr(sa);
  for (const auto& datagram : traffic)
    (void)::sendto(fd, datagram.data(), datagram.size(), 0, reinterpret_cast<sockaddr*>(&sa),
                   sizeof(sa));
  timeval tv{0, 200 * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::uint8_t buf[65535];
  while (replies.size() < expected && std::chrono::steady_clock::now() < deadline) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 2) continue;
    std::uint16_t rid = static_cast<std::uint16_t>((buf[0] << 8) | buf[1]);
    replies.emplace(rid, util::Bytes(buf, buf + n));
  }
  ::close(fd);
  return replies;
}

void expect_identical(const std::map<std::uint16_t, util::Bytes>& a,
                      const std::map<std::uint16_t, util::Bytes>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [id, bytes] : a) {
    auto it = b.find(id);
    ASSERT_NE(it, b.end()) << "no counterpart reply for id " << id;
    EXPECT_EQ(bytes, it->second) << "reply bytes diverge for id " << id;
  }
}

TEST(TransportBatch, BatchModeIsByteForByteEquivalentToSingleDatagramMode) {
  auto zone = make_zone();
  ASSERT_NE(zone, nullptr);
  Stack single(zone, /*udp_batch=*/1);
  Stack batched(zone, /*udp_batch=*/32);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(batched.ok());

  std::size_t silent = 0;
  auto traffic = make_traffic(silent);
  std::size_t expected = traffic.size() - silent;

  // sendto happens before run(): the whole blast sits in the socket
  // buffer when the loop thread takes its first readiness event, so the
  // batched server genuinely drains multi-datagram rounds.
  auto run_one = [&](Stack& stack) {
    std::map<std::uint16_t, util::Bytes> replies;
    int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in sa{};
    stack.local().to_sockaddr(sa);
    for (const auto& datagram : traffic)
      (void)::sendto(fd, datagram.data(), datagram.size(), 0,
                     reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    stack.run();
    timeval tv{0, 200 * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
    std::uint8_t buf[65535];
    while (replies.size() < expected && std::chrono::steady_clock::now() < deadline) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n < 2) continue;
      std::uint16_t rid = static_cast<std::uint16_t>((buf[0] << 8) | buf[1]);
      replies.emplace(rid, util::Bytes(buf, buf + n));
    }
    ::close(fd);
    return replies;
  };

  auto from_single = run_one(single);
  auto from_batched = run_one(batched);
  EXPECT_EQ(from_single.size(), expected);
  expect_identical(from_single, from_batched);

  if (kUdpBatchSupported) {
    // The blast was queued before the loop ran, so the first recvmmsg
    // round must have drained a genuinely multi-datagram batch.
    const auto* histogram = batched.metrics().find_histogram("transport.udp.batch_size");
    ASSERT_NE(histogram, nullptr);
    EXPECT_GE(histogram->count(), 1u);
    EXPECT_GE(histogram->max(), 2u);
  }
}

TEST(TransportBatch, AnswerCacheHitsAreByteForByteEquivalentToDecodedPath) {
  auto zone = make_zone();
  ASSERT_NE(zone, nullptr);
  auto cache = runtime::AnswerCache::build({zone->view()});
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->size(), 0u);

  Stack decoded(zone, /*udp_batch=*/1);
  Stack cached(zone, /*udp_batch=*/32, cache);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(cached.ok());
  decoded.run();
  cached.run();

  std::size_t silent = 0;
  auto traffic = make_traffic(silent);
  std::size_t expected = traffic.size() - silent;
  auto from_decoded = exchange(decoded.local(), traffic, expected);
  auto from_cached = exchange(cached.local(), traffic, expected);
  EXPECT_EQ(from_decoded.size(), expected);
  expect_identical(from_decoded, from_cached);

  // Joining the loop thread makes the hit tally safe to read: the
  // traffic mix contains cacheable positives every round, and identical
  // bytes above prove they came off the fast path unnoticed.
  cached.stop();
  EXPECT_GE(cached.cache_hits(), 4u);
}

TEST(TransportBatch, CacheServesPositivesAndFallsThroughForTheRest) {
  auto zone = make_zone();
  ASSERT_NE(zone, nullptr);
  auto cache = runtime::AnswerCache::build({zone->view()});
  ASSERT_NE(cache, nullptr);

  auto probe = [&](dns::Message query) {
    util::Bytes reply;
    auto wire = query.encode();
    return cache->try_answer(std::span(wire), reply);
  };

  // Positives — including case-mangling and an empty-OPT EDNS query.
  EXPECT_TRUE(probe(dns::make_query(1, name_of("mic.office.loc"), RRType::BDADDR)));
  EXPECT_TRUE(probe(dns::make_query(2, name_of("MIC.Office.LOC"), RRType::BDADDR)));
  {
    auto q = dns::make_query(3, name_of("door.office.loc"), RRType::DTMF);
    dns::add_edns(q, 1232);
    EXPECT_TRUE(probe(q));
  }

  // Equivalence bails: NXDOMAIN, NODATA, over-512 answers, non-Query
  // opcodes (an RFC 2136 UPDATE must reach the engine!), QR set.
  EXPECT_FALSE(probe(dns::make_query(4, name_of("ghost.office.loc"), RRType::A)));
  EXPECT_FALSE(probe(dns::make_query(5, name_of("ns.office.loc"), RRType::TXT)));
  EXPECT_FALSE(probe(dns::make_query(6, name_of("big.office.loc"), RRType::TXT)));
  {
    auto q = dns::make_query(7, name_of("mic.office.loc"), RRType::BDADDR);
    q.header.opcode = dns::Opcode::Update;
    EXPECT_FALSE(probe(q));
  }
  {
    auto q = dns::make_query(8, name_of("mic.office.loc"), RRType::BDADDR);
    q.header.qr = true;
    EXPECT_FALSE(probe(q));
  }
  // Trailing garbage after the question is not provably harmless.
  {
    auto wire = dns::make_query(9, name_of("mic.office.loc"), RRType::BDADDR).encode();
    wire.push_back(0x00);
    util::Bytes reply;
    EXPECT_FALSE(cache->try_answer(std::span(wire), reply));
  }
}

}  // namespace
}  // namespace sns::transport
