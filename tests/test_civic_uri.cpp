// Tests for civic names (§2.3) and SNS URIs (§2.1).
#include <gtest/gtest.h>

#include "core/civic.hpp"
#include "core/uri.hpp"

namespace sns::core {
namespace {

using dns::name_of;

TEST(NormalizeLabel, FoldsToDnsSafe) {
  EXPECT_EQ(normalize_label("Oval Office").value(), "oval-office");
  EXPECT_EQ(normalize_label("1600 Pennsylvania Ave NW").value(), "1600-pennsylvania-ave-nw");
  EXPECT_EQ(normalize_label("Washington, D.C.").value(), "washington-d-c");
  EXPECT_EQ(normalize_label("  DC ").value(), "dc");
  EXPECT_FALSE(normalize_label("!!!").ok());
  EXPECT_FALSE(normalize_label("").ok());
  // Over-long components truncate to a legal label.
  EXPECT_EQ(normalize_label(std::string(100, 'a')).value().size(), 63u);
}

TEST(CivicName, FromComponentsAndDomain) {
  auto civic = CivicName::from_components(
      {"usa", "dc", "washington", "penn-ave", "1600", "Oval Office"});
  ASSERT_TRUE(civic.ok());
  auto domain = civic.value().to_domain();
  ASSERT_TRUE(domain.ok());
  EXPECT_EQ(domain.value(),
            name_of("oval-office.1600.penn-ave.washington.dc.usa.loc"));
}

TEST(CivicName, PostalParseReversesOrder) {
  auto civic = CivicName::parse_postal("Oval Office, 1600 Pennsylvania Ave NW, Washington, DC, USA");
  ASSERT_TRUE(civic.ok());
  const auto& components = civic.value().components();
  ASSERT_EQ(components.size(), 5u);
  EXPECT_EQ(components.front(), "usa");     // broadest first
  EXPECT_EQ(components.back(), "oval-office");
}

TEST(CivicName, DomainRoundTrip) {
  auto civic = CivicName::from_components({"uk", "london", "downing-street", "10"});
  ASSERT_TRUE(civic.ok());
  auto domain = civic.value().to_domain();
  ASSERT_TRUE(domain.ok());
  auto back = CivicName::from_domain(domain.value(), loc_root());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), civic.value());
}

TEST(CivicName, FromDomainRejectsForeign) {
  EXPECT_FALSE(CivicName::from_domain(name_of("host.example.com"), loc_root()).ok());
  EXPECT_FALSE(CivicName::from_domain(loc_root(), loc_root()).ok());
}

TEST(CivicName, IncrementalDeploymentUnderExistingDomain) {
  // §2.3: spatial subdomains at existing DNS domains, e.g.
  // whitehouse.loc.usa.gov.
  auto civic = CivicName::from_components({"whitehouse"});
  ASSERT_TRUE(civic.ok());
  auto domain = civic.value().to_domain(name_of("loc.usa.gov"));
  ASSERT_TRUE(domain.ok());
  EXPECT_EQ(domain.value(), name_of("whitehouse.loc.usa.gov"));
}

TEST(CivicName, ContainmentHierarchy) {
  auto wh = CivicName::from_components({"usa", "dc", "washington"}).value();
  auto office =
      CivicName::from_components({"usa", "dc", "washington", "penn-ave", "1600"}).value();
  EXPECT_TRUE(wh.contains(office));
  EXPECT_TRUE(wh.contains(wh));
  EXPECT_FALSE(office.contains(wh));
  auto other = CivicName::from_components({"usa", "ny"}).value();
  EXPECT_FALSE(other.contains(office));
  EXPECT_EQ(office.parent().components().size(), 4u);
  auto child = wh.child("K Street");
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(child.value().components().back(), "k-street");
  EXPECT_TRUE(wh.contains(child.value()));
}

TEST(CivicName, ToStringNarrowestFirst) {
  auto civic = CivicName::from_components({"usa", "dc"}).value();
  EXPECT_EQ(civic.to_string(), "dc, usa");
}

// --- URIs ---------------------------------------------------------------

TEST(Uri, ParsesPaperExample) {
  auto uri = SnsUri::parse(
      "capnp://mic.oval-office.1600.penn-ave.washington.dc.usa.loc/secret");
  ASSERT_TRUE(uri.ok()) << uri.error().message;
  EXPECT_EQ(uri.value().scheme, "capnp");
  EXPECT_EQ(uri.value().authority,
            name_of("mic.oval-office.1600.penn-ave.washington.dc.usa.loc"));
  EXPECT_EQ(uri.value().path, "/secret");
  EXPECT_FALSE(uri.value().port.has_value());
  EXPECT_TRUE(uri.value().is_spatial(loc_root()));
}

TEST(Uri, PortAndEmptyPath) {
  auto uri = SnsUri::parse("https://display.oval-office.loc:8443");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri.value().port, std::optional<std::uint16_t>(8443));
  EXPECT_EQ(uri.value().path, "");
}

TEST(Uri, RoundTrip) {
  for (const char* text :
       {"capnp://mic.oval-office.loc/secret", "https://cam.field.loc:444/stream",
        "matrix://lobby.hotel.paris.fr.loc/room"}) {
    auto uri = SnsUri::parse(text);
    ASSERT_TRUE(uri.ok()) << text;
    EXPECT_EQ(uri.value().to_string(), text);
  }
}

TEST(Uri, NonSpatialDetected) {
  auto uri = SnsUri::parse("https://www.example.com/index");
  ASSERT_TRUE(uri.ok());
  EXPECT_FALSE(uri.value().is_spatial(loc_root()));
}

TEST(Uri, Rejects) {
  EXPECT_FALSE(SnsUri::parse("no-scheme.loc/x").ok());
  EXPECT_FALSE(SnsUri::parse("://host/x").ok());
  EXPECT_FALSE(SnsUri::parse("http:///x").ok());
  EXPECT_FALSE(SnsUri::parse("http://host:99999/x").ok());
  EXPECT_FALSE(SnsUri::parse("ht tp://host/x").ok());
}

}  // namespace
}  // namespace sns::core
