// Tests for mobility (§4.1): CNAME moves, in-place replacement, and
// wire-level geodetic updates.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "core/mobility.hpp"

namespace sns::core {
namespace {

using dns::name_of;
using dns::Rcode;
using dns::RRType;

TEST(Move, LeavesForwardingCname) {
  auto world = make_white_house_world(44);
  SpatialZone& oval = *world.oval_office->zone;
  SpatialZone& cabinet = *world.cabinet_room->zone;

  auto report = move_device(oval, cabinet, world.speaker);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report.value().old_name, world.speaker);
  EXPECT_TRUE(report.value().new_name.is_subdomain_of(cabinet.domain()));
  EXPECT_TRUE(report.value().cname_created);

  // Gone from the old zone's registry, present in the new one.
  EXPECT_EQ(oval.find_device(world.speaker), nullptr);
  EXPECT_NE(cabinet.find_device(report.value().new_name), nullptr);

  // The old name still answers as a CNAME in both views.
  auto lookup = oval.local_zone()->lookup(world.speaker, RRType::BDADDR);
  EXPECT_EQ(lookup.kind, server::Zone::Lookup::Kind::CName);
  auto global_lookup = oval.global_zone()->lookup(world.speaker, RRType::AAAA);
  EXPECT_EQ(global_lookup.kind, server::Zone::Lookup::Kind::CName);
}

TEST(Move, ResolutionFollowsCnameAcrossZones) {
  // After a within-White-House move (oval office -> a sibling room
  // served by the same building infrastructure), clients resolving the
  // old name get the CNAME plus the new record when the server is
  // authoritative for both.
  SnsDeployment d(45);
  auto house = CivicName::from_components({"usa", "house"}).value();
  ZoneOptions house_opts;
  house_opts.network_boundary = true;  // the house owns its private LAN
  ZoneSite& house_site = d.add_zone(house, geo::BoundingBox{0, 0, 1, 1}, nullptr, house_opts);
  ZoneOptions room_opts;
  room_opts.is_room = true;
  room_opts.uplink = net::lan_link();
  ZoneSite& room_a = d.add_zone(house.child("room-a").value(),
                                geo::BoundingBox{0, 0, 1, 0.5}, &house_site, room_opts);
  ZoneSite& room_b = d.add_zone(house.child("room-b").value(),
                                geo::BoundingBox{0, 0.5, 1, 1}, &house_site, room_opts);

  Device lamp;
  lamp.function = "lamp";
  lamp.local_addresses = {net::Bdaddr{{9, 9, 9, 9, 9, 9}}};
  lamp.position = {0.5, 0.25, 0};
  auto lamp_name = d.add_device(room_a, lamp);
  ASSERT_TRUE(lamp_name.ok());

  auto report = move_device(*room_a.zone, *room_b.zone, lamp_name.value());
  ASSERT_TRUE(report.ok());

  // A client inside room A resolves the old name: CNAME answer pointing
  // at room B (the room-A server is not authoritative for room B, so it
  // returns the alias for the client to chase).
  net::NodeId client = d.add_client("client", room_a, true);
  auto stub = d.make_stub(client, room_a);
  auto result = stub.resolve(lamp_name.value(), RRType::BDADDR);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().records.empty());
  EXPECT_EQ(result.value().records[0].type, RRType::CNAME);
  EXPECT_EQ(std::get<dns::CnameData>(result.value().records[0].rdata).target,
            report.value().new_name);

  // Chasing the target at room B's server yields the BDADDR.
  auto stub_b = d.make_stub(client, room_b);
  auto chased = stub_b.resolve(report.value().new_name, RRType::BDADDR);
  ASSERT_TRUE(chased.ok());
  EXPECT_EQ(chased.value().stats.rcode, Rcode::NoError);
  ASSERT_EQ(chased.value().records.size(), 1u);
}

TEST(Replace, NameSurvivesHardwareSwap) {
  // §1: "if the device is replaced then the replacement should assume
  // the function of its predecessor."
  auto world = make_white_house_world(46);
  SpatialZone& oval = *world.oval_office->zone;

  Device replacement;
  replacement.function = "anything";  // overwritten by replace_device
  replacement.local_addresses = {net::Bdaddr{{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}}};
  replacement.position = {38.897291, -77.037399, 18.0};

  auto name = replace_device(oval, world.speaker, replacement);
  ASSERT_TRUE(name.ok()) << name.error().message;
  EXPECT_EQ(name.value(), world.speaker);  // identity preserved

  const dns::RRset* bd = oval.local_zone()->find(world.speaker, RRType::BDADDR);
  ASSERT_NE(bd, nullptr);
  EXPECT_EQ(std::get<dns::BdaddrData>(bd->front().rdata).address.to_string(),
            "de:ad:be:ef:00:01");
  EXPECT_FALSE(replace_device(oval, name_of("ghost.x.loc"), replacement).ok());
}

TEST(GeodeticUpdate, WireUpdateMovesDevice) {
  auto world = make_white_house_world(47);
  auto& d = *world.deployment;
  SpatialZone& oval = *world.oval_office->zone;

  net::NodeId client = d.add_client("updater", *world.oval_office, true);
  auto stub = d.make_stub(client, *world.oval_office);

  geo::GeoPoint new_position{38.897260, -77.037430, 18.0};
  auto rcode = send_geodetic_update(stub, oval, world.speaker, new_position, std::nullopt, 0);
  ASSERT_TRUE(rcode.ok()) << rcode.error().message;
  EXPECT_EQ(rcode.value(), Rcode::NoError);

  // The LOC RRset served by the zone reflects the new position...
  const dns::RRset* loc = oval.local_zone()->find(world.speaker, RRType::LOC);
  ASSERT_NE(loc, nullptr);
  EXPECT_NEAR(std::get<dns::LocData>(loc->front().rdata).latitude_degrees(),
              new_position.latitude, 1e-5);
  // ...and the geodetic index agrees.
  auto found = oval.devices_in(geo::BoundingBox::around(new_position, 0.00002));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], world.speaker);
}

TEST(GeodeticUpdate, TsigProtectedUpdateNeedsKey) {
  auto world = make_white_house_world(48);
  auto& d = *world.deployment;
  SpatialZone& oval = *world.oval_office->zone;
  dns::TsigKey key{name_of("edge-key"), {0x42, 0x42}};
  world.oval_office->server->set_update_key(key);

  net::NodeId client = d.add_client("updater", *world.oval_office, true);
  auto stub = d.make_stub(client, *world.oval_office);
  geo::GeoPoint new_position{38.897260, -77.037430, 18.0};

  // Unsigned update refused; index unchanged.
  auto unsigned_rcode =
      send_geodetic_update(stub, oval, world.speaker, new_position, std::nullopt, 0);
  ASSERT_TRUE(unsigned_rcode.ok());
  EXPECT_EQ(unsigned_rcode.value(), Rcode::Refused);
  EXPECT_TRUE(oval.devices_in(geo::BoundingBox::around(new_position, 0.00002)).empty());

  // Signed update succeeds.
  auto signed_rcode = send_geodetic_update(stub, oval, world.speaker, new_position, key, 12345);
  ASSERT_TRUE(signed_rcode.ok());
  EXPECT_EQ(signed_rcode.value(), Rcode::NoError);
  EXPECT_EQ(oval.devices_in(geo::BoundingBox::around(new_position, 0.00002)).size(), 1u);
}

}  // namespace
}  // namespace sns::core
