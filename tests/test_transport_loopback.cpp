// Real-socket loopback tests: DnsTransportServer on 127.0.0.1 with an
// ephemeral port, the event loop on a background thread, and the
// blocking client querying it — the same plumbing snsd/sns-dig use,
// exercised in-process. Covers UDP serving, TCP serving, EDNS0-aware
// truncation with automatic TCP retry, connection reuse, idle-timeout
// reaping, malformed-datagram handling and event-loop timer semantics.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <optional>
#include <thread>

#include "dns/master.hpp"
#include "obs/metrics.hpp"
#include "server/authoritative.hpp"
#include "transport/client.hpp"
#include "transport/dns_server.hpp"
#include "transport/event_loop.hpp"

namespace sns::transport {
namespace {

using dns::name_of;
using dns::RRType;

constexpr std::string_view kZoneText = R"(
$ORIGIN office.loc.
$TTL 300
@        IN SOA  ns hostmaster 1 3600 600 86400 60
@        IN NS   ns
ns       IN A    192.0.2.1
mic      IN BDADDR 01:23:45:67:89:ab
mic      IN WIFI  "office-iot" 192.0.3.10
door     IN DTMF  42#
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-1"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-2"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-3"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-4"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-5"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-6"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-7"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-8"
)";

class TransportLoopback : public ::testing::Test {
 protected:
  void start(TcpListener::Options tcp_options = TcpListener::Options()) {
    auto records = dns::parse_master_file(kZoneText, dns::Name{});
    ASSERT_TRUE(records.ok()) << records.error().message;
    auto view = server::build_zone_view(name_of("office.loc"), std::move(records).value());
    ASSERT_TRUE(view.ok()) << view.error().message;
    zone_ = std::make_shared<server::Zone>(std::move(view).value());
    engine_ = std::make_unique<server::AuthoritativeServer>("loopback-test");
    engine_->add_zone(zone_);

    loop_ = std::make_unique<EventLoop>();
    ASSERT_TRUE(loop_->valid());
    transport_ = std::make_unique<DnsTransportServer>(
        *loop_,
        [this](const dns::Message& query, const Endpoint&, Via) {
          return engine_->handle(query, server::ClientContext{});
        },
        tcp_options);
    transport_->set_metrics(&metrics_);
    auto started = transport_->start(loopback(0));
    ASSERT_TRUE(started.ok()) << started.error().message;
    server_ = transport_->local();
    ASSERT_NE(server_.port, 0);
    loop_thread_ = std::thread([this] { loop_->run(); });
  }

  void TearDown() override {
    if (loop_thread_.joinable()) {
      loop_->stop();
      loop_thread_.join();
    }
    if (transport_) transport_->close();
  }

  static dns::Message make(const char* name, RRType type, std::uint16_t id = 0x1234) {
    return dns::make_query(id, name_of(name), type);
  }

  obs::MetricsRegistry metrics_;
  std::shared_ptr<server::Zone> zone_;
  std::unique_ptr<server::AuthoritativeServer> engine_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<DnsTransportServer> transport_;
  std::thread loop_thread_;
  Endpoint server_;
};

TEST_F(TransportLoopback, UdpQueryAnswersFromZone) {
  start();
  auto response = udp_query(server_, make("mic.office.loc", RRType::BDADDR));
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_EQ(response.value().header.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(response.value().header.aa);
  ASSERT_EQ(response.value().answers.size(), 1u);
  EXPECT_EQ(dns::rdata_to_string(response.value().answers[0].rdata), "01:23:45:67:89:ab");
}

TEST_F(TransportLoopback, TcpQueryAnswersFromZone) {
  start();
  auto response = tcp_query(server_, make("door.office.loc", RRType::DTMF));
  ASSERT_TRUE(response.ok()) << response.error().message;
  ASSERT_EQ(response.value().answers.size(), 1u);
  EXPECT_EQ(dns::rdata_to_string(response.value().answers[0].rdata), "42#");
}

TEST_F(TransportLoopback, NxDomainOverBothTransports) {
  start();
  auto udp = udp_query(server_, make("ghost.office.loc", RRType::A));
  ASSERT_TRUE(udp.ok());
  EXPECT_EQ(udp.value().header.rcode, dns::Rcode::NXDomain);
  auto tcp = tcp_query(server_, make("ghost.office.loc", RRType::A));
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp.value().header.rcode, dns::Rcode::NXDomain);
}

TEST_F(TransportLoopback, TruncatedUdpAnswerRetriesOverTcp) {
  start();
  // Classic 512-byte client (no EDNS): the 8-TXT answer cannot fit, so
  // UDP must come back TC=1 and query_auto must transparently fetch the
  // full answer over TCP.
  QueryOptions classic;
  classic.edns_udp_size = 0;
  auto bare = udp_query(server_, make("big.office.loc", RRType::TXT), classic);
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare.value().header.tc);
  EXPECT_TRUE(bare.value().answers.empty());

  auto out = query_auto(server_, make("big.office.loc", RRType::TXT), classic);
  ASSERT_TRUE(out.ok()) << out.error().message;
  EXPECT_TRUE(out.value().retried_tcp);
  EXPECT_TRUE(out.value().used_tcp);
  EXPECT_FALSE(out.value().response.header.tc);
  EXPECT_EQ(out.value().response.answers.size(), 8u);

  // And the retried answer is byte-for-byte what direct TCP serves.
  auto direct = tcp_query(server_, make("big.office.loc", RRType::TXT));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(out.value().response, direct.value());
  EXPECT_GE(metrics_.counter_value("transport.udp.truncated").value_or(0), 1u);
}

TEST_F(TransportLoopback, EdnsPayloadAvoidsTruncation) {
  start();
  // The same big answer fits a 1232-byte advertisement: no TC, no TCP.
  auto out = query_auto(server_, make("big.office.loc", RRType::TXT));
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().retried_tcp);
  EXPECT_FALSE(out.value().used_tcp);
  EXPECT_EQ(out.value().response.answers.size(), 8u);
}

TEST_F(TransportLoopback, TcpConnectionReuseServesManyQueries) {
  start();
  TcpClient client;
  ASSERT_TRUE(client.connect(server_, std::chrono::milliseconds(2000)).ok());
  for (std::uint16_t i = 0; i < 16; ++i) {
    auto response = client.query(make("mic.office.loc", RRType::WIFI, i), //
                                 std::chrono::milliseconds(2000));
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_EQ(response.value().header.id, i);
    ASSERT_EQ(response.value().answers.size(), 1u);
  }
  // All 16 rode one accepted connection.
  EXPECT_EQ(metrics_.counter_value("transport.tcp.accepted").value_or(0), 1u);
  EXPECT_EQ(metrics_.counter_value("transport.tcp.queries").value_or(0), 16u);
}

TEST_F(TransportLoopback, IdleTcpConnectionsAreReaped) {
  TcpListener::Options options;
  options.idle_timeout = std::chrono::milliseconds(80);
  start(options);
  TcpClient client;
  ASSERT_TRUE(client.connect(server_, std::chrono::milliseconds(2000)).ok());
  // First query keeps the connection warm…
  ASSERT_TRUE(client.query(make("mic.office.loc", RRType::BDADDR), //
                           std::chrono::milliseconds(2000))
                  .ok());
  // …then silence longer than the idle timeout gets us hung up on.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto late = client.query(make("mic.office.loc", RRType::BDADDR), //
                           std::chrono::milliseconds(500));
  EXPECT_FALSE(late.ok());
  EXPECT_GE(metrics_.counter_value("transport.tcp.idle_closed").value_or(0), 1u);
}

TEST_F(TransportLoopback, MalformedUdpDatagramGetsFormErr) {
  start();
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in sa{};
  server_.to_sockaddr(sa);
  std::uint8_t garbage[] = {0xab, 0xcd, 0xff, 0xff, 0xff};  // id 0xabcd, then noise
  ASSERT_EQ(::sendto(fd, garbage, sizeof(garbage), 0, reinterpret_cast<sockaddr*>(&sa),
                     sizeof(sa)),
            static_cast<ssize_t>(sizeof(garbage)));
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::uint8_t buf[512];
  ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  ::close(fd);
  ASSERT_GT(n, 0);
  auto reply = dns::Message::decode(std::span(buf, static_cast<std::size_t>(n)));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().header.id, 0xabcd);
  EXPECT_EQ(reply.value().header.rcode, dns::Rcode::FormErr);
  EXPECT_EQ(metrics_.counter_value("transport.udp.malformed").value_or(0), 1u);
}

TEST_F(TransportLoopback, PipelinedAnswerFlushedBeforeBadFrameCloses) {
  start();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in sa{};
  server_.to_sockaddr(sa);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // One valid query, then a 1-byte frame — undecodable, with no id to
  // echo a FormErr back, so the server hangs up. The buffered answer to
  // the first query must still be flushed before the close.
  auto query_wire = make("mic.office.loc", RRType::BDADDR, 0x77aa).encode();
  auto framed = frame_message(std::span(query_wire));
  ASSERT_TRUE(framed.ok());
  auto bytes = framed.value();
  bytes.insert(bytes.end(), {0x00, 0x01, 0xff});
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));

  FrameReader reader;
  std::optional<dns::Message> response;
  while (!response) {
    if (auto frame = reader.next()) {
      auto decoded = dns::Message::decode(std::span(*frame));
      ASSERT_TRUE(decoded.ok());
      response = std::move(decoded).value();
      break;
    }
    ASSERT_FALSE(reader.failed());
    std::uint8_t buf[4096];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "connection closed before the buffered answer was flushed";
    reader.feed(std::span(buf, static_cast<std::size_t>(n)));
  }
  // The trailing bad frame is what makes the server hang up, and the
  // server counts the frame error before closing the socket — so wait
  // for EOF before sampling the counter, or the check races the
  // server thread's processing of the second frame.
  ssize_t eof = 0;
  do {
    std::uint8_t drain[256];
    eof = ::recv(fd, drain, sizeof(drain), 0);
  } while (eof > 0);
  EXPECT_EQ(eof, 0) << "expected the server to close after the bad frame";
  ::close(fd);
  EXPECT_EQ(response->header.id, 0x77aa);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(dns::rdata_to_string(response->answers[0].rdata), "01:23:45:67:89:ab");
  EXPECT_GE(metrics_.counter_value("transport.tcp.frame_errors").value_or(0), 1u);
}

// Regression for the EINTR drain-abort bug: a signal landing while the
// listener drains its socket used to end the whole readiness pass (the
// recvfrom EINTR was treated like EAGAIN). The serving thread is
// peppered with no-op signals below while a client runs sequential
// queries; every one of them must still be answered. Covers both drain
// paths (the fixture's default batch size picks recvmmsg on Linux).
extern "C" void transport_test_noop_signal(int) {}

TEST_F(TransportLoopback, SignalPepperedServingThreadAnswersEveryQuery) {
  struct sigaction action{};
  struct sigaction previous{};
  action.sa_handler = transport_test_noop_signal;  // deliberately no SA_RESTART
  sigemptyset(&action.sa_mask);
  ASSERT_EQ(sigaction(SIGUSR2, &action, &previous), 0);
  start();

  std::atomic<bool> stop{false};
  std::thread pepper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      pthread_kill(loop_thread_.native_handle(), SIGUSR2);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  int answered = 0;
  for (std::uint16_t i = 0; i < 200; ++i) {
    auto response = udp_query(server_, make("mic.office.loc", RRType::BDADDR, i));
    if (response.ok() && response.value().header.id == i &&
        response.value().answers.size() == 1u)
      ++answered;
  }
  stop.store(true, std::memory_order_release);
  pepper.join();
  sigaction(SIGUSR2, &previous, nullptr);
  EXPECT_EQ(answered, 200);
}

// --- sendto/sendmmsg failure accounting ------------------------------------

// A reply sized in (65507, 65535] passes the EDNS advertised-size check
// (the client advertises 65535) but exceeds the IPv4 UDP payload
// ceiling, so the send syscall itself fails with EMSGSIZE — the only
// portable way to make a loopback send fail deterministically. The
// listener must count the dropped reply instead of losing it silently.
class SendErrorLoopback : public ::testing::Test {
 protected:
  void start(std::size_t udp_batch) {
    // 12 header + 22 question ("jumbo.office.loc" IN TXT) = 34 bytes,
    // then kRecords answers at 28 bytes each (2-byte compression
    // pointer owner + 10 fixed + 16 rdata): 34 + 28 * 2339 = 65526.
    constexpr std::size_t kRecords = 2339;
    auto jumbo = name_of("jumbo.office.loc");
    std::vector<dns::ResourceRecord> records;
    records.reserve(kRecords + 2);
    records.push_back(dns::make_soa(name_of("office.loc"), name_of("ns.office.loc"), 1));
    records.push_back(dns::make_ns(name_of("office.loc"), name_of("ns.office.loc")));
    for (std::size_t i = 0; i < kRecords; ++i) {
      char text[16];
      std::snprintf(text, sizeof(text), "DDDDDDDDDDD%04zu", i);  // 15 chars
      records.push_back(dns::make_txt(jumbo, {text}));
    }
    auto view = server::build_zone_view(name_of("office.loc"), std::move(records));
    ASSERT_TRUE(view.ok()) << view.error().message;
    zone_ = std::make_shared<server::Zone>(std::move(view).value());
    engine_ = std::make_unique<server::AuthoritativeServer>("send-error-test");
    engine_->add_zone(zone_);

    loop_ = std::make_unique<EventLoop>();
    ASSERT_TRUE(loop_->valid());
    transport_ = std::make_unique<DnsTransportServer>(
        *loop_, [this](const dns::Message& query, const Endpoint&, Via) {
          return engine_->handle(query, server::ClientContext{});
        });
    transport_->set_metrics(&metrics_);
    transport_->set_udp_batch(udp_batch);
    ASSERT_TRUE(transport_->start(loopback(0)).ok());
    server_ = transport_->local();
    loop_thread_ = std::thread([this] { loop_->run(); });
  }

  void TearDown() override {
    if (loop_thread_.joinable()) {
      loop_->stop();
      loop_thread_.join();
    }
    if (transport_) transport_->close();
  }

  void expect_send_error_counted() {
    QueryOptions options;
    options.edns_udp_size = 65535;  // reply passes the truncation check…
    options.attempts = 1;
    options.timeout = std::chrono::milliseconds(300);
    auto query = dns::make_query(0x6a6a, name_of("jumbo.office.loc"), RRType::TXT);
    auto response = udp_query(server_, query, options);
    EXPECT_FALSE(response.ok());  // …and dies in the send syscall instead
    EXPECT_GE(metrics_.counter_value("transport.udp.send_errors").value_or(0), 1u);
    // The query was handled; only the reply was lost.
    EXPECT_GE(metrics_.counter_value("transport.udp.queries").value_or(0), 1u);
    EXPECT_EQ(metrics_.counter_value("transport.udp.responses").value_or(0), 0u);
  }

  obs::MetricsRegistry metrics_;
  std::shared_ptr<server::Zone> zone_;
  std::unique_ptr<server::AuthoritativeServer> engine_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<DnsTransportServer> transport_;
  std::thread loop_thread_;
  Endpoint server_;
};

TEST_F(SendErrorLoopback, FailedSendtoIsCountedNotSilent) {
  start(/*udp_batch=*/1);
  expect_send_error_counted();
}

TEST_F(SendErrorLoopback, FailedSendmmsgIsCountedNotSilent) {
  if (!kUdpBatchSupported) GTEST_SKIP() << "no batched datagram syscalls on this platform";
  start(/*udp_batch=*/16);
  expect_send_error_counted();
}

TEST(TransportClient, CallerBuiltSmallOptIsNotDuplicated) {
  // A caller-built OPT advertising <= 512 bytes looks exactly like "no
  // EDNS" through advertised_udp_size()'s clamp; udp_query must detect
  // the record itself and not append a second OPT (RFC 6891 allows one).
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in bind_sa{};
  loopback(0).to_sockaddr(bind_sa);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&bind_sa), sizeof(bind_sa)), 0);
  auto sink = local_endpoint(fd);
  ASSERT_TRUE(sink.ok());

  auto query = dns::make_query(0x5150, name_of("mic.office.loc"), RRType::BDADDR);
  dns::add_edns(query, 512);
  QueryOptions options;
  options.attempts = 1;
  options.timeout = std::chrono::milliseconds(100);
  std::thread sender([&] { (void)udp_query(sink.value(), query, options); });

  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::uint8_t buf[2048];
  ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  sender.join();
  ::close(fd);
  ASSERT_GT(n, 0);
  auto seen = dns::Message::decode(std::span(buf, static_cast<std::size_t>(n)));
  ASSERT_TRUE(seen.ok()) << seen.error().message;
  std::size_t opt_count = 0;
  for (const auto& rr : seen.value().additionals)
    if (rr.type == RRType::OPT) ++opt_count;
  EXPECT_EQ(opt_count, 1u);
  EXPECT_EQ(dns::advertised_udp_size(seen.value()), dns::kClassicUdpLimit);
}

// --- event-loop timer semantics (the EventScheduler mirror) ---------------

TEST(TransportEventLoop, TimersFireInDeadlineThenScheduleOrder) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  std::vector<int> order;
  loop.schedule_after(std::chrono::milliseconds(30), [&] { order.push_back(3); });
  loop.schedule_after(std::chrono::milliseconds(5), [&] { order.push_back(1); });
  loop.schedule_after(std::chrono::milliseconds(5), [&] { order.push_back(2); });
  EXPECT_EQ(loop.pending(), 3u);
  auto deadline = loop.now() + std::chrono::milliseconds(500);
  while (loop.pending() > 0 && loop.now() < deadline) loop.run_once(50);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TransportEventLoop, CancelledTimerNeverFires) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  bool fired = false;
  auto id = loop.schedule_after(std::chrono::milliseconds(5), [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  EXPECT_EQ(loop.pending(), 0u);
  loop.run_once(30);
  EXPECT_FALSE(fired);
}

TEST(TransportEventLoop, CancelledEarliestTimerDoesNotBusySpin) {
  // Regression: cancelling the earliest timer used to leave the cached
  // earliest deadline stale. Once wall time passed it, next_timeout_ms()
  // returned 0 forever and run_once() degenerated into a busy spin —
  // the common path, since every TCP read cancels and re-arms an idle
  // timer. With the fix, each run_once() below sleeps until the long
  // timer is due, so only a handful of iterations ever happen.
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  bool fired = false;
  auto earliest = loop.schedule_after(std::chrono::milliseconds(5), [] {});
  loop.schedule_after(std::chrono::milliseconds(150), [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(earliest));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // pass the cancelled deadline
  int iterations = 0;
  auto deadline = loop.now() + std::chrono::milliseconds(3000);
  while (!fired && loop.now() < deadline) {
    loop.run_once(500);
    ++iterations;
  }
  EXPECT_TRUE(fired);
  EXPECT_LT(iterations, 50);
}

TEST(TransportEventLoop, TimerCallbackCanRescheduleItself) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 3) loop.schedule_after(std::chrono::milliseconds(2), tick);
  };
  loop.schedule_after(std::chrono::milliseconds(2), tick);
  auto deadline = loop.now() + std::chrono::milliseconds(2000);
  while (ticks < 3 && loop.now() < deadline) loop.run_once(20);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(loop.pending(), 0u);
}

}  // namespace
}  // namespace sns::transport
