// Tests for the split-horizon authoritative server and RFC 2136 updates.
#include <gtest/gtest.h>

#include "dns/dnssec.hpp"
#include "server/authoritative.hpp"
#include "server/update.hpp"

namespace sns::server {
namespace {

using dns::make_a;
using dns::make_bdaddr;
using dns::make_cname;
using dns::Message;
using dns::name_of;
using dns::Rcode;

const Name kApex = name_of("oval-office.loc");
const Name kMic = name_of("mic.oval-office.loc");
const Name kDisplay = name_of("display.oval-office.loc");

struct World {
  AuthoritativeServer server{"oval"};
  std::shared_ptr<Zone> local;
  std::shared_ptr<Zone> global;

  World() {
    local = std::make_shared<Zone>(kApex, name_of("ns.oval-office.loc"));
    global = std::make_shared<Zone>(kApex, name_of("ns.oval-office.loc"));
    (void)local->add(make_bdaddr(kMic, net::Bdaddr{{1, 2, 3, 4, 5, 6}}));
    (void)local->add(make_a(kDisplay, net::Ipv4Addr{{192, 0, 3, 12}}));
    (void)global->add(
        dns::make_aaaa(kDisplay, net::Ipv6Addr::parse("2001:db8::12").value()));
    std::size_t internal = server.add_view("internal", match_internal());
    std::size_t external = server.add_view("external", match_any());
    server.add_zone(internal, local);
    server.add_zone(external, global);
  }
};

ClientContext internal_ctx() {
  ClientContext ctx;
  ctx.internal = true;
  return ctx;
}

TEST(SplitHorizon, InternalSeesLocalRecords) {
  World world;
  auto response =
      world.server.handle(dns::make_query(1, kMic, dns::RRType::BDADDR), internal_ctx());
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].type, dns::RRType::BDADDR);
  EXPECT_TRUE(response.header.aa);
}

TEST(SplitHorizon, ExternalSeesOnlyGlobalRecords) {
  World world;
  ClientContext outside;  // not internal
  auto aaaa = world.server.handle(dns::make_query(2, kDisplay, dns::RRType::AAAA), outside);
  EXPECT_EQ(aaaa.header.rcode, Rcode::NoError);
  ASSERT_EQ(aaaa.answers.size(), 1u);

  // The mic does not exist in the external view at all.
  auto mic = world.server.handle(dns::make_query(3, kMic, dns::RRType::BDADDR), outside);
  EXPECT_EQ(mic.header.rcode, Rcode::NXDomain);
  EXPECT_TRUE(mic.answers.empty());
}

TEST(SplitHorizon, LocalAddressesNeverLeakOutside) {
  // Property: no response to an external client may contain a BDADDR or
  // RFC1918-style A from the local view.
  World world;
  ClientContext outside;
  for (dns::RRType type : {dns::RRType::A, dns::RRType::BDADDR, dns::RRType::ANY}) {
    for (const Name& qname : {kMic, kDisplay, kApex}) {
      auto response = world.server.handle(dns::make_query(4, qname, type), outside);
      for (const auto& rr : response.answers) {
        EXPECT_NE(rr.type, dns::RRType::BDADDR)
            << "BDADDR leaked for " << qname.to_string();
        if (const auto* a = std::get_if<dns::AData>(&rr.rdata)) {
          EXPECT_NE(a->address.octets[0], 192) << "local A leaked";
        }
      }
    }
  }
}

TEST(Views, FirstMatchWins) {
  AuthoritativeServer server("s");
  auto room_zone = std::make_shared<Zone>(kApex, name_of("ns.oval-office.loc"));
  (void)room_zone->add(dns::make_txt(kMic, {"room-view"}));
  auto fallback_zone = std::make_shared<Zone>(kApex, name_of("ns.oval-office.loc"));
  (void)fallback_zone->add(dns::make_txt(kMic, {"fallback-view"}));
  std::size_t room_view = server.add_view("room", match_room(7));
  std::size_t any_view = server.add_view("any", match_any());
  server.add_zone(room_view, room_zone);
  server.add_zone(any_view, fallback_zone);

  ClientContext in_room;
  in_room.room = 7;
  auto response = server.handle(dns::make_query(1, kMic, dns::RRType::TXT), in_room);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::TxtData>(response.answers[0].rdata).strings[0], "room-view");

  ClientContext elsewhere;
  elsewhere.room = 8;
  response = server.handle(dns::make_query(2, kMic, dns::RRType::TXT), elsewhere);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::TxtData>(response.answers[0].rdata).strings[0], "fallback-view");
}

TEST(Views, NoMatchingViewRefused) {
  AuthoritativeServer server("s");
  std::size_t internal = server.add_view("internal-only", match_internal());
  server.add_zone(internal, std::make_shared<Zone>(kApex, name_of("ns.oval-office.loc")));
  ClientContext outside;
  auto response = server.handle(dns::make_query(1, kMic, dns::RRType::A), outside);
  EXPECT_EQ(response.header.rcode, Rcode::Refused);
}

TEST(Server, UnknownZoneRefused) {
  World world;
  auto response = world.server.handle(
      dns::make_query(1, name_of("x.example.com"), dns::RRType::A), internal_ctx());
  EXPECT_EQ(response.header.rcode, Rcode::Refused);
}

TEST(Server, CnameChased) {
  World world;
  (void)world.local->add(make_cname(name_of("old.oval-office.loc"), kDisplay));
  auto response = world.server.handle(
      dns::make_query(1, name_of("old.oval-office.loc"), dns::RRType::A), internal_ctx());
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  ASSERT_EQ(response.answers.size(), 2u);  // CNAME + A
  EXPECT_EQ(response.answers[0].type, dns::RRType::CNAME);
  EXPECT_EQ(response.answers[1].type, dns::RRType::A);
  EXPECT_EQ(response.answers[1].name, kDisplay);
}

TEST(Server, CnameLoopServFails) {
  World world;
  (void)world.local->add(make_cname(name_of("a.oval-office.loc"),
                                    name_of("b.oval-office.loc")));
  (void)world.local->add(make_cname(name_of("b.oval-office.loc"),
                                    name_of("a.oval-office.loc")));
  auto response = world.server.handle(
      dns::make_query(1, name_of("a.oval-office.loc"), dns::RRType::A), internal_ctx());
  EXPECT_EQ(response.header.rcode, Rcode::ServFail);
}

TEST(Server, NegativeAnswersCarrySoa) {
  World world;
  auto nx = world.server.handle(
      dns::make_query(1, name_of("ghost.oval-office.loc"), dns::RRType::A), internal_ctx());
  EXPECT_EQ(nx.header.rcode, Rcode::NXDomain);
  ASSERT_FALSE(nx.authorities.empty());
  EXPECT_EQ(nx.authorities[0].type, dns::RRType::SOA);

  auto nodata =
      world.server.handle(dns::make_query(2, kMic, dns::RRType::AAAA), internal_ctx());
  EXPECT_EQ(nodata.header.rcode, Rcode::NoError);
  EXPECT_TRUE(nodata.answers.empty());
  ASSERT_FALSE(nodata.authorities.empty());
}

TEST(Server, MultiQuestionRejected) {
  World world;
  Message query = dns::make_query(1, kMic, dns::RRType::A);
  query.questions.push_back(query.questions[0]);
  EXPECT_EQ(world.server.handle(query, internal_ctx()).header.rcode, Rcode::FormErr);
}

TEST(Presence, TokenOrRoomRequired) {
  World world;
  auto token = std::make_shared<std::string>("secret-token");
  world.server.add_presence_rule(PresenceRule{kMic, 7, token});

  // Internal but not in the room, no token: refused.
  ClientContext ctx = internal_ctx();
  auto refused = world.server.handle(dns::make_query(1, kMic, dns::RRType::BDADDR), ctx);
  EXPECT_EQ(refused.header.rcode, Rcode::Refused);

  // Physically in the room: allowed.
  ctx.room = 7;
  auto in_room = world.server.handle(dns::make_query(2, kMic, dns::RRType::BDADDR), ctx);
  EXPECT_EQ(in_room.header.rcode, Rcode::NoError);

  // Remote but holding the live token: allowed.
  ClientContext remote = internal_ctx();
  remote.presence_tokens.insert("secret-token");
  auto with_token = world.server.handle(dns::make_query(3, kMic, dns::RRType::BDADDR), remote);
  EXPECT_EQ(with_token.header.rcode, Rcode::NoError);

  // Token rotates (beacon chirps a new one): old token stops working.
  *token = "rotated";
  auto stale = world.server.handle(dns::make_query(4, kMic, dns::RRType::BDADDR), remote);
  EXPECT_EQ(stale.header.rcode, Rcode::Refused);

  // Unprotected names unaffected throughout.
  ClientContext plain = internal_ctx();
  auto display = world.server.handle(dns::make_query(5, kDisplay, dns::RRType::A), plain);
  EXPECT_EQ(display.header.rcode, Rcode::NoError);
}

TEST(Dnssec, SignedAnswersWhenKeyed) {
  World world;
  dns::ZoneKey key{kApex, {1, 2, 3}};
  world.server.set_zone_key(key, [] { return 5000u; });
  auto response =
      world.server.handle(dns::make_query(1, kDisplay, dns::RRType::A), internal_ctx());
  EXPECT_TRUE(response.header.ad);
  ASSERT_EQ(response.answers.size(), 2u);
  EXPECT_EQ(response.answers[1].type, dns::RRType::RRSIG);
  // The signature verifies.
  dns::RRset rrset{response.answers[0]};
  auto status = dns::verify_rrsig(rrset, std::get<dns::RrsigData>(response.answers[1].rdata),
                                  key, 5000);
  EXPECT_TRUE(status.ok()) << status.error().message;
}

// --- RFC 2136 dynamic update -------------------------------------------------

TEST(Update, AddAndDelete) {
  World world;
  Name sensor = name_of("sensor.oval-office.loc");
  Message add = make_update_add(1, kApex, make_a(sensor, net::Ipv4Addr{{192, 0, 3, 99}}));
  auto response = world.server.handle(add, internal_ctx());
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  EXPECT_NE(world.local->find(sensor, dns::RRType::A), nullptr);
  EXPECT_EQ(world.local->serial(), 2u);  // serial bumped

  Message del = make_update_delete_rrset(2, kApex, sensor, dns::RRType::A);
  response = world.server.handle(del, internal_ctx());
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  EXPECT_EQ(world.local->find(sensor, dns::RRType::A), nullptr);
}

TEST(Update, UnknownZoneNotAuth) {
  World world;
  Message add = make_update_add(1, name_of("other.loc"),
                                make_a(name_of("x.other.loc"), net::Ipv4Addr{{1, 1, 1, 1}}));
  EXPECT_EQ(world.server.handle(add, internal_ctx()).header.rcode, Rcode::NotAuth);
}

TEST(Update, PrerequisitesEnforced) {
  World world;
  Name sensor = name_of("sensor.oval-office.loc");

  // "Name must exist" prerequisite fails -> NXDOMAIN, no change.
  Message guarded = make_update_add(1, kApex, make_a(sensor, net::Ipv4Addr{{1, 1, 1, 1}}));
  dns::ResourceRecord prereq;
  prereq.name = sensor;
  prereq.type = dns::RRType::ANY;
  prereq.klass = dns::RRClass::ANY;
  prereq.ttl = 0;
  prereq.rdata = dns::RawData{};
  guarded.answers.push_back(prereq);
  EXPECT_EQ(world.server.handle(guarded, internal_ctx()).header.rcode, Rcode::NXDomain);
  EXPECT_EQ(world.local->find(sensor, dns::RRType::A), nullptr);

  // "Name must NOT exist" prerequisite against an existing name -> YXDOMAIN.
  Message guarded2 = make_update_add(2, kApex, make_a(sensor, net::Ipv4Addr{{1, 1, 1, 1}}));
  prereq.name = kMic;
  prereq.klass = dns::RRClass::NONE;
  guarded2.answers.push_back(prereq);
  EXPECT_EQ(world.server.handle(guarded2, internal_ctx()).header.rcode, Rcode::YXDomain);

  // Value-dependent RRset prerequisite that matches -> update applies.
  Message guarded3 = make_update_add(3, kApex, make_a(sensor, net::Ipv4Addr{{1, 1, 1, 1}}));
  dns::ResourceRecord value_prereq = make_bdaddr(kMic, net::Bdaddr{{1, 2, 3, 4, 5, 6}});
  value_prereq.ttl = 0;
  guarded3.answers.push_back(value_prereq);
  EXPECT_EQ(world.server.handle(guarded3, internal_ctx()).header.rcode, Rcode::NoError);
  EXPECT_NE(world.local->find(sensor, dns::RRType::A), nullptr);
}

TEST(Update, TsigGateEnforced) {
  World world;
  dns::TsigKey key{name_of("edge-key"), {9, 9, 9}};
  world.server.set_update_key(key);
  Name sensor = name_of("sensor.oval-office.loc");

  // Unsigned update refused.
  Message unsigned_update =
      make_update_add(1, kApex, make_a(sensor, net::Ipv4Addr{{1, 1, 1, 1}}));
  EXPECT_EQ(world.server.handle(unsigned_update, internal_ctx()).header.rcode, Rcode::Refused);

  // Properly signed update accepted.
  Message signed_update =
      make_update_add(2, kApex, make_a(sensor, net::Ipv4Addr{{1, 1, 1, 1}}));
  dns::tsig_sign(signed_update, key, 777);
  EXPECT_EQ(world.server.handle(signed_update, internal_ctx()).header.rcode, Rcode::NoError);

  // Signed with the wrong key: refused.
  Message forged = make_update_add(3, kApex, make_a(sensor, net::Ipv4Addr{{2, 2, 2, 2}}));
  dns::tsig_sign(forged, dns::TsigKey{name_of("edge-key"), {1}}, 777);
  EXPECT_EQ(world.server.handle(forged, internal_ctx()).header.rcode, Rcode::Refused);
}

TEST(Update, DeleteSpecificRecordAndWholeName) {
  World world;
  Name host = name_of("multi.oval-office.loc");
  (void)world.local->add(make_a(host, net::Ipv4Addr{{1, 1, 1, 1}}));
  (void)world.local->add(make_a(host, net::Ipv4Addr{{2, 2, 2, 2}}));
  (void)world.local->add(dns::make_txt(host, {"x"}));

  // Delete one specific A record (class NONE).
  Message del_one = make_update_add(1, kApex, make_a(host, net::Ipv4Addr{{1, 1, 1, 1}}));
  del_one.authorities[0].klass = dns::RRClass::NONE;
  del_one.authorities[0].ttl = 0;
  EXPECT_EQ(world.server.handle(del_one, internal_ctx()).header.rcode, Rcode::NoError);
  EXPECT_EQ(world.local->find(host, dns::RRType::A)->size(), 1u);

  // Delete everything at the name (type ANY class ANY).
  Message del_all = make_update_delete_rrset(2, kApex, host, dns::RRType::ANY);
  EXPECT_EQ(world.server.handle(del_all, internal_ctx()).header.rcode, Rcode::NoError);
  EXPECT_FALSE(world.local->name_exists(host));
}

}  // namespace
}  // namespace sns::server
