// Multi-core runtime loopback tests: a real ServerRuntime (SO_REUSEPORT
// worker shards, RCU-lite zone snapshots) hammered from client threads
// over 127.0.0.1. The stress tests assert the runtime's core contract —
// no lost, duplicated or cross-wired responses under concurrent mixed
// UDP/TCP load, including the truncation → TCP retry path — and that
// live reloads and RFC 2136 updates flip answers without dropping a
// single in-flight query. Run under the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dns/master.hpp"
#include "runtime/runtime.hpp"
#include "server/update.hpp"
#include "transport/client.hpp"

namespace sns::runtime {
namespace {

using dns::name_of;
using dns::RRType;

// Eight per-thread TXT records: client thread i queries t<i%8> and
// must get exactly "payload-t<i%8>" back — any shard cross-wiring a
// response to the wrong socket shows up as a payload mismatch.
constexpr std::string_view kZoneHead = R"(
$ORIGIN stress.loc.
$TTL 300
@        IN SOA  ns hostmaster 1 3600 600 86400 60
@        IN NS   ns
ns       IN A    192.0.2.1
t0       IN TXT  "payload-t0"
t1       IN TXT  "payload-t1"
t2       IN TXT  "payload-t2"
t3       IN TXT  "payload-t3"
t4       IN TXT  "payload-t4"
t5       IN TXT  "payload-t5"
t6       IN TXT  "payload-t6"
t7       IN TXT  "payload-t7"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-1"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-2"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-3"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-4"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-5"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-6"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-7"
big      IN TXT  "padding-padding-padding-padding-padding-padding-padding-padding-padding-8"
marker   IN TXT  ")";

server::ZoneViewPtr make_zone(const std::string& marker_value) {
  std::string text = std::string(kZoneHead) + marker_value + "\"\n";
  auto records = dns::parse_master_file(text, dns::Name{});
  if (!records.ok()) return nullptr;
  auto view = server::build_zone_view(name_of("stress.loc"), std::move(records).value());
  if (!view.ok()) return nullptr;
  return std::move(view).value();
}

constexpr auto kTimeout = std::chrono::milliseconds(2000);

class RuntimeLoopback : public ::testing::Test {
 protected:
  void start(std::size_t shards) {
    auto zone = make_zone("generation-one");
    ASSERT_NE(zone, nullptr);
    RuntimeOptions options;
    options.threads = shards;
    options.drain_grace = std::chrono::milliseconds(500);
    runtime_ = std::make_unique<ServerRuntime>("runtime-test", options);
    auto started = runtime_->start(transport::loopback(0), {zone});
    ASSERT_TRUE(started.ok()) << started.error().message;
    server_ = runtime_->local();
    ASSERT_NE(server_.port, 0);
  }

  void TearDown() override {
    if (runtime_) runtime_->stop();
  }

  static dns::Message make(const std::string& name, RRType type, std::uint16_t id) {
    return dns::make_query(id, name_of(name), type);
  }

  std::unique_ptr<ServerRuntime> runtime_;
  transport::Endpoint server_;
};

TEST_F(RuntimeLoopback, ShardsShareOnePortAndAnswerBothTransports) {
  start(3);
  EXPECT_EQ(runtime_->worker_count(), 3u);
  auto udp = transport::udp_query(server_, make("t0.stress.loc", RRType::TXT, 1));
  ASSERT_TRUE(udp.ok()) << udp.error().message;
  ASSERT_EQ(udp.value().answers.size(), 1u);
  EXPECT_EQ(dns::rdata_to_string(udp.value().answers[0].rdata), "\"payload-t0\"");
  auto tcp = transport::tcp_query(server_, make("t1.stress.loc", RRType::TXT, 2));
  ASSERT_TRUE(tcp.ok()) << tcp.error().message;
  ASSERT_EQ(tcp.value().answers.size(), 1u);
  EXPECT_EQ(dns::rdata_to_string(tcp.value().answers[0].rdata), "\"payload-t1\"");
}

TEST_F(RuntimeLoopback, ConcurrentMixedLoadNoLostDuplicatedOrCrossWiredResponses) {
  start(3);
  constexpr std::size_t kClients = 6;
  constexpr std::uint16_t kOps = 120;
  std::atomic<std::uint64_t> failures{0};

  auto client = [&](std::size_t c) {
    std::string name = "t" + std::to_string(c % 8) + ".stress.loc";
    std::string expected = "\"payload-t" + std::to_string(c % 8) + "\"";
    transport::TcpClient tcp;
    if (!tcp.connect(server_, kTimeout).ok()) {
      failures.fetch_add(kOps);
      return;
    }
    transport::QueryOptions classic;
    classic.edns_udp_size = 0;  // classic 512-byte client: big answers truncate
    for (std::uint16_t i = 0; i < kOps; ++i) {
      std::uint16_t id = static_cast<std::uint16_t>(c * 1000 + i);
      if (i % 10 == 9) {
        // Truncation → automatic TCP retry against whichever shard the
        // kernel picks for the fresh connection.
        auto out = transport::query_auto(server_, make("big.stress.loc", RRType::TXT, id),
                                         classic);
        if (!out.ok() || !out.value().retried_tcp ||
            out.value().response.header.id != id ||
            out.value().response.answers.size() != 8u)
          failures.fetch_add(1);
        continue;
      }
      auto response = (i % 2 == 0)
                          ? transport::udp_query(server_, make(name, RRType::TXT, id))
                          : tcp.query(make(name, RRType::TXT, id), kTimeout);
      if (!response.ok() || response.value().header.id != id ||
          response.value().answers.size() != 1u ||
          dns::rdata_to_string(response.value().answers[0].rdata) != expected)
        failures.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) threads.emplace_back(client, c);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);

  // Every query landed on some shard; the merged totals must account
  // for all of them (udp ops + tcp ops + truncated-retry pairs).
  obs::MetricsRegistry totals;
  runtime_->merge_metrics(totals);
  std::uint64_t udp = totals.counter_value("transport.udp.queries").value_or(0);
  std::uint64_t tcp = totals.counter_value("transport.tcp.queries").value_or(0);
  EXPECT_EQ(udp + tcp, kClients * (kOps + kOps / 10));
  EXPECT_GE(totals.counter_value("transport.udp.truncated").value_or(0),
            kClients * (kOps / 10));
}

TEST_F(RuntimeLoopback, LiveReloadFlipsAnswersMidStressWithoutDroppingQueries) {
  start(2);
  constexpr std::size_t kClients = 3;
  std::atomic<std::uint64_t> failures{0}, saw_new{0}, flip_backs{0};
  std::atomic<bool> stop{false};

  auto client = [&] {
    bool new_seen = false;
    std::uint16_t id = 0;
    while (!stop.load(std::memory_order_acquire)) {
      auto response =
          transport::udp_query(server_, make("marker.stress.loc", RRType::TXT, ++id));
      if (!response.ok() || response.value().answers.size() != 1u) {
        failures.fetch_add(1);
        continue;
      }
      auto text = dns::rdata_to_string(response.value().answers[0].rdata);
      if (text == "\"generation-two\"") {
        if (!new_seen) saw_new.fetch_add(1);
        new_seen = true;
      } else if (text != "\"generation-one\"") {
        failures.fetch_add(1);
      } else if (new_seen) {
        // Publication is a single atomic exchange: once any acquire has
        // returned the new snapshot, no later acquire may return the old.
        flip_backs.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) threads.emplace_back(client);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto zone2 = make_zone("generation-two");
  ASSERT_NE(zone2, nullptr);
  std::uint64_t generation = runtime_->publish({zone2});
  EXPECT_EQ(generation, 2u);

  // Every client must observe the flip (bounded wait), then wind down.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (saw_new.load() < kClients && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_EQ(saw_new.load(), kClients);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(flip_backs.load(), 0u);
}

TEST_F(RuntimeLoopback, DynamicUpdatePublishesCopyOnWriteSnapshot) {
  start(2);
  auto before = runtime_->snapshot();
  std::uint64_t generation_before = runtime_->generation();

  auto update = server::make_update_add(
      0x2136, name_of("stress.loc"),
      dns::make_txt(name_of("fresh.stress.loc"), {"added-by-update"}));
  auto ack = transport::tcp_query(server_, update);
  ASSERT_TRUE(ack.ok()) << ack.error().message;
  EXPECT_EQ(ack.value().header.rcode, dns::Rcode::NoError);

  // The publish happens before the UPDATE response is sent, so the very
  // next query — on any shard — must already see the new record.
  auto got = transport::udp_query(server_, make("fresh.stress.loc", RRType::TXT, 0x2137));
  ASSERT_TRUE(got.ok()) << got.error().message;
  ASSERT_EQ(got.value().answers.size(), 1u);
  EXPECT_EQ(dns::rdata_to_string(got.value().answers[0].rdata), "\"added-by-update\"");

  EXPECT_EQ(runtime_->generation(), generation_before + 1);
  EXPECT_EQ(runtime_->metrics().counter_value("runtime.zone.update").value_or(0), 1u);
  // Copy-on-write: the pre-update snapshot is untouched.
  EXPECT_EQ(before->record_count(), runtime_->snapshot()->record_count() - 1);
}

TEST_F(RuntimeLoopback, UpdateCyclePreservesSoaMnameOverTheWire) {
  // Regression: the old update path rebuilt each zone as
  // Zone(apex, apex), silently replacing the SOA primary NS. The SOA
  // served after a dynamic-update cycle must keep its MNAME and RNAME,
  // with only the serial moving.
  start(1);
  auto before = transport::udp_query(server_, make("stress.loc", RRType::SOA, 0x5301));
  ASSERT_TRUE(before.ok()) << before.error().message;
  ASSERT_EQ(before.value().answers.size(), 1u);
  const auto soa_before = std::get<dns::SoaData>(before.value().answers[0].rdata);
  ASSERT_EQ(soa_before.mname, name_of("ns.stress.loc"));

  auto update = server::make_update_add(
      0x5302, name_of("stress.loc"), dns::make_txt(name_of("roam.stress.loc"), {"re-homed"}));
  auto ack = transport::tcp_query(server_, update);
  ASSERT_TRUE(ack.ok()) << ack.error().message;
  ASSERT_EQ(ack.value().header.rcode, dns::Rcode::NoError);

  auto after = transport::udp_query(server_, make("stress.loc", RRType::SOA, 0x5303));
  ASSERT_TRUE(after.ok()) << after.error().message;
  ASSERT_EQ(after.value().answers.size(), 1u);
  const auto soa_after = std::get<dns::SoaData>(after.value().answers[0].rdata);
  EXPECT_EQ(soa_after.mname, soa_before.mname);
  EXPECT_EQ(soa_after.rname, soa_before.rname);
  EXPECT_EQ(soa_after.serial, soa_before.serial + 1);
}

TEST_F(RuntimeLoopback, RefusedUpdateLeavesSnapshotAlone) {
  start(1);
  std::uint64_t generation_before = runtime_->generation();
  // Zone check must fail: elsewhere.loc is not ours.
  auto update = server::make_update_add(
      0x2138, name_of("elsewhere.loc"),
      dns::make_txt(name_of("x.elsewhere.loc"), {"nope"}));
  auto ack = transport::tcp_query(server_, update);
  ASSERT_TRUE(ack.ok());
  EXPECT_NE(ack.value().header.rcode, dns::Rcode::NoError);
  EXPECT_EQ(runtime_->generation(), generation_before);
  EXPECT_GE(runtime_->metrics().counter_value("runtime.zone.update_refused").value_or(0), 1u);
}

TEST_F(RuntimeLoopback, MetricsJsonMergesFleetTotalsAndPerShardBreakdown) {
  start(2);
  for (std::uint16_t i = 0; i < 4; ++i)
    ASSERT_TRUE(transport::udp_query(server_, make("t0.stress.loc", RRType::TXT, i)).ok());
  std::string json = runtime_->metrics_json();
  EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"total\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("transport.udp.queries"), std::string::npos);
  EXPECT_NE(json.find("runtime.worker.snapshot_refresh"), std::string::npos);
  // The batching/answer-cache observability surface must be in the
  // SIGUSR1 fleet dump from the first query on (created eagerly, so a
  // zero shows up as a zero rather than as absence).
  EXPECT_NE(json.find("runtime.answer_cache.hit"), std::string::npos);
  EXPECT_NE(json.find("runtime.answer_cache.miss"), std::string::npos);
  EXPECT_NE(json.find("transport.udp.send_errors"), std::string::npos);
  if (transport::kUdpBatchSupported) {
    EXPECT_NE(json.find("transport.udp.batch_size"), std::string::npos);
  }
}

TEST_F(RuntimeLoopback, AnswerCacheHitsAndMissesAreCounted) {
  start(1);
  // Positive RRset queries ride the precompiled fast path…
  for (std::uint16_t i = 0; i < 3; ++i)
    ASSERT_TRUE(transport::udp_query(server_, make("t0.stress.loc", RRType::TXT, i)).ok());
  // …while an NXDOMAIN (per-query authority section) must fall through.
  auto nx = transport::udp_query(server_, make("ghost.stress.loc", RRType::TXT, 9));
  ASSERT_TRUE(nx.ok());
  EXPECT_EQ(nx.value().header.rcode, dns::Rcode::NXDomain);

  obs::MetricsRegistry totals;
  runtime_->merge_metrics(totals);
  EXPECT_GE(totals.counter_value("runtime.answer_cache.hit").value_or(0), 3u);
  EXPECT_GE(totals.counter_value("runtime.answer_cache.miss").value_or(0), 1u);
}

TEST_F(RuntimeLoopback, CacheOnAndCacheOffServeIdenticalAnswers) {
  start(1);  // cache on (default)
  auto zone = make_zone("generation-one");
  ASSERT_NE(zone, nullptr);
  RuntimeOptions no_cache;
  no_cache.threads = 1;
  no_cache.answer_cache = false;
  ServerRuntime plain("runtime-test-nocache", no_cache);
  ASSERT_TRUE(plain.start(transport::loopback(0), {zone}).ok());

  // Same ids, same questions, both transports' UDP path: the decoded
  // messages must be indistinguishable with and without the cache.
  const std::pair<const char*, RRType> probes[] = {
      {"t0.stress.loc", RRType::TXT},   // cache hit
      {"T3.STRESS.loc", RRType::TXT},   // case-mangled hit (case echoed)
      {"ns.stress.loc", RRType::A},     // hit
      {"ghost.stress.loc", RRType::A},  // NXDOMAIN: both decode
      {"ns.stress.loc", RRType::TXT},   // NODATA: both decode
      {"stress.loc", RRType::SOA},      // apex
  };
  std::uint16_t id = 0x4100;
  for (const auto& [name, type] : probes) {
    auto with_cache = transport::udp_query(server_, make(name, type, id));
    auto without = transport::udp_query(plain.local(), make(name, type, id));
    ASSERT_TRUE(with_cache.ok()) << name;
    ASSERT_TRUE(without.ok()) << name;
    EXPECT_EQ(with_cache.value(), without.value()) << name;
    ++id;
  }
  plain.stop();
}

TEST_F(RuntimeLoopback, AnswerCacheNeverSurvivesAGenerationBump) {
  start(1);
  // Prime the fast path: this answer now exists as precompiled bytes.
  auto first = transport::udp_query(server_, make("marker.stress.loc", RRType::TXT, 1));
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().answers.size(), 1u);
  EXPECT_EQ(dns::rdata_to_string(first.value().answers[0].rdata), "\"generation-one\"");

  // Path 1: zone reload (what SIGHUP drives). The very next query must
  // serve the new bytes — a stale hit would come back "generation-one".
  auto zone2 = make_zone("generation-two");
  ASSERT_NE(zone2, nullptr);
  std::uint64_t generation = runtime_->publish({zone2});
  EXPECT_EQ(generation, 2u);
  auto second = transport::udp_query(server_, make("marker.stress.loc", RRType::TXT, 2));
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().answers.size(), 1u);
  EXPECT_EQ(dns::rdata_to_string(second.value().answers[0].rdata), "\"generation-two\"");

  // Path 2: RFC 2136 dynamic update widening the very RRset the cache
  // just served. The successor snapshot's cache must carry both strings.
  auto update = server::make_update_add(
      0x2136, name_of("stress.loc"),
      dns::make_txt(name_of("marker.stress.loc"), {"added-by-update"}));
  auto ack = transport::tcp_query(server_, update);
  ASSERT_TRUE(ack.ok()) << ack.error().message;
  ASSERT_EQ(ack.value().header.rcode, dns::Rcode::NoError);
  EXPECT_EQ(runtime_->generation(), 3u);

  auto third = transport::udp_query(server_, make("marker.stress.loc", RRType::TXT, 3));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().answers.size(), 2u);
}

TEST_F(RuntimeLoopback, DrainStopsListenersAndJoinsWorkers) {
  start(2);
  ASSERT_TRUE(transport::udp_query(server_, make("t0.stress.loc", RRType::TXT, 1)).ok());
  runtime_->drain_and_stop();
  EXPECT_FALSE(runtime_->running());
  EXPECT_EQ(runtime_->worker_count(), 0u);
  // Nobody is listening any more.
  transport::QueryOptions options;
  options.attempts = 1;
  options.timeout = std::chrono::milliseconds(200);
  auto after = transport::udp_query(server_, make("t0.stress.loc", RRType::TXT, 2), options);
  EXPECT_FALSE(after.ok());
}

}  // namespace
}  // namespace sns::runtime
