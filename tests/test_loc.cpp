// Tests for RFC 1876 LOC record encoding (§3.2's geodetic encoding).
#include <gtest/gtest.h>

#include "dns/loc.hpp"
#include "util/rng.hpp"

namespace sns::dns {
namespace {

TEST(LocSize, EncodesMantissaExponent) {
  // 1 m = 100 cm = 1e2 -> mantissa 1, exponent 2.
  EXPECT_EQ(encode_loc_size(1.0), 0x12);
  // 10 km = 1e6 cm.
  EXPECT_EQ(encode_loc_size(10000.0), 0x16);
  // 10 m = 1e3 cm.
  EXPECT_EQ(encode_loc_size(10.0), 0x13);
  EXPECT_DOUBLE_EQ(decode_loc_size(0x12), 1.0);
  EXPECT_DOUBLE_EQ(decode_loc_size(0x16), 10000.0);
}

TEST(LocSize, RoundTripIsIdempotent) {
  // encode(decode(x)) == x for all valid encodings.
  for (int mantissa = 1; mantissa <= 9; ++mantissa) {
    for (int exponent = 0; exponent <= 9; ++exponent) {
      auto encoded = static_cast<std::uint8_t>((mantissa << 4) | exponent);
      EXPECT_EQ(encode_loc_size(decode_loc_size(encoded)), encoded);
    }
  }
}

TEST(Loc, WhiteHouseCoordinates) {
  // The paper's example: 38.8974 N, 77.0374 W.
  auto loc = LocData::from_degrees(38.8974, -77.0374, 15.0);
  ASSERT_TRUE(loc.ok());
  EXPECT_NEAR(loc.value().latitude_degrees(), 38.8974, 1e-6);
  EXPECT_NEAR(loc.value().longitude_degrees(), -77.0374, 1e-6);
  EXPECT_NEAR(loc.value().altitude_meters(), 15.0, 0.01);
  std::string text = loc.value().to_string();
  EXPECT_NE(text.find("N"), std::string::npos);
  EXPECT_NE(text.find("W"), std::string::npos);
}

TEST(Loc, EquatorAndMeridianAreOffsets) {
  auto loc = LocData::from_degrees(0.0, 0.0, 0.0);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc.value().latitude, 1u << 31);
  EXPECT_EQ(loc.value().longitude, 1u << 31);
  EXPECT_EQ(loc.value().altitude, 10000000u);  // -100km reference
}

TEST(Loc, RangeChecks) {
  EXPECT_FALSE(LocData::from_degrees(90.1, 0, 0).ok());
  EXPECT_FALSE(LocData::from_degrees(-90.1, 0, 0).ok());
  EXPECT_FALSE(LocData::from_degrees(0, 180.1, 0).ok());
  EXPECT_FALSE(LocData::from_degrees(0, 0, -100001).ok());
  EXPECT_TRUE(LocData::from_degrees(90, 180, 0).ok());
  EXPECT_TRUE(LocData::from_degrees(-90, -180, -100000).ok());
}

TEST(Loc, WireRoundTrip) {
  auto loc = LocData::from_degrees(51.5034, -0.1276, 6.0, 2.0, 100.0, 5.0);
  ASSERT_TRUE(loc.ok());
  util::ByteWriter w;
  loc.value().encode(w);
  EXPECT_EQ(w.size(), 16u);  // RFC 1876 fixed size
  util::ByteReader r{std::span(w.data())};
  auto decoded = LocData::decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), loc.value());
}

TEST(Loc, DecodeRejectsBadVersion) {
  util::ByteWriter w;
  LocData loc;
  loc.encode(w);
  auto wire = w.data();
  wire[0] = 1;  // version 1 unknown
  util::ByteReader r{std::span(wire)};
  EXPECT_FALSE(LocData::decode(r).ok());
}

TEST(Loc, PresentationParse) {
  std::vector<std::string> tokens{"38", "53", "50.616", "N", "77",   "2",
                                  "14.64", "W", "15.00m", "1m", "10000m", "10m"};
  auto loc = LocData::parse(tokens);
  ASSERT_TRUE(loc.ok()) << loc.error().message;
  EXPECT_NEAR(loc.value().latitude_degrees(), 38.8974, 1e-4);
  EXPECT_NEAR(loc.value().longitude_degrees(), -77.0374, 1e-4);
}

TEST(Loc, PresentationParseDegreesOnly) {
  std::vector<std::string> tokens{"52", "N", "0", "E", "20m"};
  auto loc = LocData::parse(tokens);
  ASSERT_TRUE(loc.ok()) << loc.error().message;
  EXPECT_NEAR(loc.value().latitude_degrees(), 52.0, 1e-6);
  EXPECT_NEAR(loc.value().altitude_meters(), 20.0, 0.01);
}

TEST(Loc, PresentationParseRejectsGarbage) {
  EXPECT_FALSE(LocData::parse(std::vector<std::string>{"x", "N"}).ok());
  EXPECT_FALSE(LocData::parse(std::vector<std::string>{"38"}).ok());
  EXPECT_FALSE(LocData::parse(std::vector<std::string>{"38", "Q", "0", "E"}).ok());
}

TEST(Loc, RandomRoundTripProperty) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 500; ++trial) {
    double lat = rng.next_double(-90.0, 90.0);
    double lon = rng.next_double(-180.0, 180.0);
    double alt = rng.next_double(-100.0, 8000.0);
    auto loc = LocData::from_degrees(lat, lon, alt);
    ASSERT_TRUE(loc.ok());
    // Wire round-trip is exact.
    util::ByteWriter w;
    loc.value().encode(w);
    util::ByteReader r{std::span(w.data())};
    auto decoded = LocData::decode(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), loc.value());
    // Degree conversion is within the format's resolution (1/3600000 deg).
    EXPECT_NEAR(decoded.value().latitude_degrees(), lat, 1e-6);
    EXPECT_NEAR(decoded.value().longitude_degrees(), lon, 1e-6);
    EXPECT_NEAR(decoded.value().altitude_meters(), alt, 0.01);
  }
}

}  // namespace
}  // namespace sns::dns
