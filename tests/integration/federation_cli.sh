#!/bin/sh
# End-to-end loopback test for the federated .loc fabric (DESIGN.md §15).
#
# Builds the three-level tree usa.loc → dc.usa.loc → penn-ave.dc.usa.loc
# across three snsd processes sharing one port on distinct loopback
# addresses (glue carries no port, so the fabric shares one):
#
#   127.0.0.1  parent: --zone-dir serving usa.loc + dc.usa.loc, the dc
#              zone delegating penn-ave to the two servers below
#   127.0.0.2  leaf primary: --zone penn-ave.loc
#   127.0.0.3  edge: --edge mirrors penn-ave from the primary via IXFR
#              and serves it stale when the primary dies
#
# Then drives sns-dig through the federation paths: a direct referral
# (NS + glue, no recursion), a full +trace iterative descent from the
# parent to an authoritative leaf answer, the edge answering from its
# mirror, and finally the partition story — kill the primary, wait past
# the edge's expiry horizon, and the edge must keep answering (metrics
# prove it counted the stale serves) while +trace survives by racing
# the dead primary against the live edge.
#
# usage: federation_cli.sh <snsd> <sns-dig> <data-dir>
set -u

SNSD=$1
DIG=$2
DATA=$3

TMP=$(mktemp -d)
PARENT_PID=
LEAF_PID=
EDGE_PID=

cleanup() {
  for pid in "$PARENT_PID" "$LEAF_PID" "$EDGE_PID"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
  done
  for pid in "$PARENT_PID" "$LEAF_PID" "$EDGE_PID"; do
    [ -n "$pid" ] && wait "$pid" 2>/dev/null
  done
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

wait_port() {
  tries=0
  while [ ! -s "$1" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "$2 never wrote its port file"
    kill -0 "$3" 2>/dev/null || fail "$2 exited during startup"
    sleep 0.05
  done
}

# 1. Parent authority: two nested zones from one --zone-dir, ephemeral
#    port realised first so the rest of the fabric can share it.
"$SNSD" --zone-dir "$DATA/parent" --listen 127.0.0.1 --port 0 --threads 2 \
        --port-file "$TMP/parent.port" &
PARENT_PID=$!
wait_port "$TMP/parent.port" parent "$PARENT_PID"
PORT=$(cat "$TMP/parent.port")
echo "parent (usa + dc) on 127.0.0.1:$PORT"

"$SNSD" --zone "$DATA/penn-ave.loc" --listen 127.0.0.2 --port "$PORT" --threads 2 \
        --port-file "$TMP/leaf.port" &
LEAF_PID=$!
wait_port "$TMP/leaf.port" leaf "$LEAF_PID"

# 2. The parent answers its deeper zone directly (deepest-apex match).
OUT=$("$DIG" @127.0.0.1 -p "$PORT" museum.dc.usa.loc LOC +short) ||
  fail "dc query errored"
case "$OUT" in
  *"38 53 30.000 N"*) ;;
  *) fail "dc LOC answer mismatch: '$OUT'" ;;
esac

# 3. A name below the penn-ave cut must come back as a referral: no
#    answers, NS of the cut in authority, glue A records in additional.
OUT=$("$DIG" @127.0.0.1 -p "$PORT" door.1600.penn-ave.dc.usa.loc DTMF +norecurse) ||
  fail "referral query errored"
case "$OUT" in
  *"penn-ave.dc.usa.loc"*"IN NS"*) ;;
  *) fail "expected NS referral: $OUT" ;;
esac
case "$OUT" in
  *"127.0.0.2"*) ;;
  *) fail "expected glue for the leaf primary: $OUT" ;;
esac

# 4. Full iterative descent: +trace from the parent must follow the
#    referral and land an authoritative DTMF answer from the leaf.
OUT=$("$DIG" @127.0.0.1 -p "$PORT" door.1600.penn-ave.dc.usa.loc DTMF +trace) ||
  fail "+trace errored"
case "$OUT" in
  *"[authoritative]"*"42#"*) ;;
  *) fail "+trace did not reach an authoritative answer: $OUT" ;;
esac
case "$OUT" in
  *"Referrals: 1"*) ;;
  *) fail "+trace referral count mismatch: $OUT" ;;
esac

# 5. Edge nameserver: full transfer from the leaf primary, then serve
#    the mirror on 127.0.0.3. Tight refresh/expiry so step 7 is fast.
"$SNSD" --edge 127.0.0.2:"$PORT" --mirror penn-ave.dc.usa.loc \
        --listen 127.0.0.3 --port "$PORT" --threads 2 \
        --refresh-ms 100 --expire-ms 500 \
        --port-file "$TMP/edge.port" --metrics-file "$TMP/edge-metrics.json" &
EDGE_PID=$!
wait_port "$TMP/edge.port" edge "$EDGE_PID"

OUT=$("$DIG" @127.0.0.3 -p "$PORT" mic.oval-office.1600.penn-ave.dc.usa.loc BDADDR +short) ||
  fail "edge mirror query errored"
[ "$OUT" = "01:23:45:67:89:ab" ] || fail "edge mirror answer mismatch: '$OUT'"

# 6. Kill the leaf primary and outwait the edge's expiry horizon.
kill "$LEAF_PID"
wait "$LEAF_PID" 2>/dev/null
LEAF_PID=
sleep 1

# 7. The partition story: the edge must keep answering from stale data.
OUT=$("$DIG" @127.0.0.3 -p "$PORT" big.1600.penn-ave.dc.usa.loc TXT +short) ||
  fail "edge stale query errored"
case "$OUT" in
  *"stale-data-beats-no-data"*) ;;
  *) fail "edge stale answer mismatch: '$OUT'" ;;
esac

# 8. And the metrics must prove it was a stale serve, not luck.
kill -USR1 "$EDGE_PID"
tries=0
while [ ! -s "$TMP/edge-metrics.json" ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || fail "edge never wrote metrics"
  sleep 0.05
done
grep -q '"federation.stale_zones":1' "$TMP/edge-metrics.json" ||
  fail "edge metrics missing stale_zones=1"
grep -Eq '"federation\.stale_serves":[1-9]' "$TMP/edge-metrics.json" ||
  fail "edge metrics missing stale_serves>0"
grep -q '"federation.refresh.axfr":1' "$TMP/edge-metrics.json" ||
  fail "edge should have done exactly one full transfer"

# 9. +trace still resolves: the race finds the live edge behind the
#    same delegation while the dead primary times out.
OUT=$("$DIG" @127.0.0.1 -p "$PORT" door.1600.penn-ave.dc.usa.loc DTMF +trace +short \
      +timeout=500) || fail "+trace through the partition errored"
case "$OUT" in
  *"42#"*) ;;
  *) fail "+trace during partition answer mismatch: '$OUT'" ;;
esac

echo "PASS: federation CLI integration"
