#!/bin/sh
# End-to-end loopback test for the transport subsystem CLIs.
#
# Starts snsd (4 worker shards) on 127.0.0.1 with an ephemeral port
# (discovered through --port-file), then drives sns-dig through the
# paths that matter: UDP lookups of SNS extended types, a forced-TCP
# lookup, a classic-512-byte query whose answer must come back
# truncated and be transparently retried over TCP, and a burst of
# concurrent clients spread across the SO_REUSEPORT shards. Mid-run
# the zone file is rewritten and SIGHUPed: answers must flip to the
# new data without a restart. Finally SIGUSR1 must produce a metrics
# JSON snapshot that reflects the traffic (fleet totals + per shard).
#
# usage: loopback_cli.sh <snsd> <sns-dig> <zone-file>
set -u

SNSD=$1
DIG=$2
ZONE=$3

TMP=$(mktemp -d)
PORT_FILE=$TMP/port
METRICS_FILE=$TMP/metrics.json
LIVE_ZONE=$TMP/zone.loc
SNSD_PID=

cleanup() {
  if [ -n "$SNSD_PID" ]; then
    kill "$SNSD_PID" 2>/dev/null
    wait "$SNSD_PID" 2>/dev/null
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# Serve from a private copy so the reload step can rewrite it.
cp "$ZONE" "$LIVE_ZONE"

"$SNSD" --zone "$LIVE_ZONE" --listen 127.0.0.1 --port 0 --threads 4 \
        --port-file "$PORT_FILE" --metrics-file "$METRICS_FILE" &
SNSD_PID=$!

# Wait for the daemon to bind and publish its port.
tries=0
while [ ! -s "$PORT_FILE" ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || fail "snsd never wrote $PORT_FILE"
  kill -0 "$SNSD_PID" 2>/dev/null || fail "snsd exited during startup"
  sleep 0.05
done
PORT=$(cat "$PORT_FILE")
echo "snsd listening on 127.0.0.1:$PORT"

# 1. UDP lookup of a Bluetooth beacon record.
OUT=$("$DIG" @127.0.0.1 -p "$PORT" speaker.lab.loc BDADDR +short) ||
  fail "BDADDR query errored"
[ "$OUT" = "01:23:45:67:89:ab" ] || fail "BDADDR answer mismatch: '$OUT'"

# 2. UDP lookup of a Wi-Fi locator record.
OUT=$("$DIG" @127.0.0.1 -p "$PORT" printer.lab.loc WIFI +short) ||
  fail "WIFI query errored"
case "$OUT" in
  *lab-iot*192.0.3.20*) ;;
  *) fail "WIFI answer mismatch: '$OUT'" ;;
esac

# 3. Forced-TCP lookup of a DTMF record.
OUT=$("$DIG" @127.0.0.1 -p "$PORT" door.lab.loc DTMF +tcp +short) ||
  fail "TCP DTMF query errored"
[ "$OUT" = "42#" ] || fail "DTMF answer mismatch: '$OUT'"

# 4. LOC record over UDP, full output: the server must mark itself
#    authoritative and answer NOERROR.
OUT=$("$DIG" @127.0.0.1 -p "$PORT" desk.lab.loc LOC) || fail "LOC query errored"
case "$OUT" in
  *"rcode=NOERROR"*) ;;
  *) fail "LOC response not NOERROR: $OUT" ;;
esac

# 5. NXDOMAIN for a name outside the zone data.
OUT=$("$DIG" @127.0.0.1 -p "$PORT" ghost.lab.loc A) || fail "NXDOMAIN query errored"
case "$OUT" in
  *"rcode=NXDOMAIN"*) ;;
  *) fail "expected NXDOMAIN: $OUT" ;;
esac

# 6. The tentpole path: classic 512-byte UDP client, oversized answer.
#    sns-dig must report the truncation and come back with the full
#    8-record TXT RRset fetched over TCP.
OUT=$("$DIG" @127.0.0.1 -p "$PORT" big.lab.loc TXT +bufsize=0 +short) ||
  fail "truncation query errored"
case "$OUT" in
  *"Truncated, retrying over TCP"*) ;;
  *) fail "expected truncation retry notice: $OUT" ;;
esac
COUNT=$(echo "$OUT" | grep -c "padding-padding")
[ "$COUNT" -eq 8 ] || fail "expected 8 TXT answers after TCP retry, got $COUNT"

# 7. Concurrent burst across the SO_REUSEPORT shards: 4 parallel
#    clients, 8 queries each, mixed UDP and TCP. Every single answer
#    must be correct — a shard cross-wiring or dropping a response
#    fails its client's loop.
for c in 1 2 3 4; do
  (
    for i in 1 2 3 4 5 6 7 8; do
      OUT=$("$DIG" @127.0.0.1 -p "$PORT" speaker.lab.loc BDADDR +short) &&
        [ "$OUT" = "01:23:45:67:89:ab" ] || exit 1
      OUT=$("$DIG" @127.0.0.1 -p "$PORT" door.lab.loc DTMF +tcp +short) &&
        [ "$OUT" = "42#" ] || exit 1
    done
  ) &
  eval "CLIENT_$c=$!"
done
for c in 1 2 3 4; do
  eval "wait \$CLIENT_$c" || fail "concurrent client $c saw a bad or missing answer"
done
echo "concurrent burst across 4 shards OK"

# 8. SIGHUP live reload: rewrite the zone (speaker moves to a new
#    Bluetooth address), signal snsd, and the served answer must flip
#    without a restart. Queries keep being answered throughout.
sed 's/01:23:45:67:89:ab/aa:bb:cc:dd:ee:ff/' "$LIVE_ZONE" > "$LIVE_ZONE.new"
mv "$LIVE_ZONE.new" "$LIVE_ZONE"
kill -HUP "$SNSD_PID"
tries=0
while :; do
  OUT=$("$DIG" @127.0.0.1 -p "$PORT" speaker.lab.loc BDADDR +short) ||
    fail "query errored during live reload"
  [ "$OUT" = "aa:bb:cc:dd:ee:ff" ] && break
  [ "$OUT" = "01:23:45:67:89:ab" ] || fail "unexpected answer during reload: '$OUT'"
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || fail "answer never flipped after SIGHUP reload"
  sleep 0.05
done
echo "SIGHUP reload flipped the answer after $tries stale reads"

# 9. SIGUSR1 metrics snapshot reflects the traffic above.
kill -USR1 "$SNSD_PID"
tries=0
while [ ! -s "$METRICS_FILE" ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || fail "snsd never wrote metrics snapshot"
  sleep 0.05
done
grep -q '"transport.udp.queries"' "$METRICS_FILE" || fail "metrics missing udp.queries"
grep -q '"transport.udp.truncated"' "$METRICS_FILE" || fail "metrics missing udp.truncated"
grep -q '"transport.tcp.queries"' "$METRICS_FILE" || fail "metrics missing tcp.queries"
grep -q '"workers":4' "$METRICS_FILE" || fail "metrics missing 4-worker fleet header"
grep -q '"shards"' "$METRICS_FILE" || fail "metrics missing per-shard breakdown"
grep -q '"runtime.zone.reload":1' "$METRICS_FILE" || fail "metrics missing reload counter"

# 10. Graceful shutdown.
kill "$SNSD_PID"
wait "$SNSD_PID"
SNSD_PID=
echo "PASS: loopback CLI integration"
