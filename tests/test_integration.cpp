// End-to-end integration tests over the full deployed world: every
// §-claim of the paper exercised through the real stack (wire messages
// over the simulated network).
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "core/uri.hpp"
#include "dns/dnssec.hpp"
#include "resolver/browse.hpp"
#include "server/mdns.hpp"

namespace sns::core {
namespace {

using dns::name_of;
using dns::Rcode;
using dns::RRType;

struct Fixture {
  WhiteHouseWorld world = make_white_house_world(99);
  SnsDeployment& d = *world.deployment;
};

TEST(Integration, Figure3LocalBluetoothResolution) {
  // "a microphone in the Oval Office … can resolve the spatial name of
  // a nearby speaker to its local Bluetooth Device Address."
  Fixture f;
  const Device* mic = f.world.oval_office->zone->find_device(f.world.mic);
  ASSERT_NE(mic, nullptr);
  auto stub = f.d.make_stub(mic->node, *f.world.oval_office);
  auto result = stub.resolve("speaker", RRType::BDADDR);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.rcode, Rcode::NoError);
  ASSERT_EQ(result.value().records.size(), 1u);
  EXPECT_EQ(result.value().records[0].type, RRType::BDADDR);
  // LAN-local: well under a millisecond of virtual time.
  EXPECT_LT(result.value().stats.latency, net::ms(5));
}

TEST(Integration, Figure3RemoteCameraGetsGlobalAAAA) {
  // "a camera installed in the 10 Downing Street cabinet room … gets
  // the globally resolvable AAAA record corresponding to the display."
  Fixture f;
  const Device* camera = f.world.cabinet_room->zone->find_device(f.world.camera);
  ASSERT_NE(camera, nullptr);
  auto iterative = f.d.make_iterative(camera->node);
  auto result = iterative.resolve(f.world.display, RRType::AAAA);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().stats.rcode, Rcode::NoError);
  ASSERT_FALSE(result.value().records.empty());
  EXPECT_EQ(result.value().records[0].type, RRType::AAAA);
  // And it cannot see the display's local Bluetooth address.
  auto bd = iterative.resolve(f.world.display, RRType::BDADDR);
  ASSERT_TRUE(bd.ok());
  EXPECT_TRUE(bd.value().records.empty());
}

TEST(Integration, SpatialSearchListMatchesPaperExample) {
  // §2.1: clients just need to know their relative location; resolvers
  // append the global location.
  Fixture f;
  net::NodeId tablet = f.d.add_client("tablet", *f.world.oval_office, true);
  auto stub = f.d.make_stub(tablet, *f.world.oval_office);
  auto result = stub.resolve("mic", RRType::ANY);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().effective_name,
            name_of("mic.oval-office.1600.penn-ave.washington.dc.usa.loc"));
}

TEST(Integration, DnssecSignedSpatialAnswers) {
  // §4.1: "DNSSEC operates as usual, which enables us to have
  // authenticated answers to spatial queries."
  Fixture f;
  dns::ZoneKey key{f.world.oval_office->zone->domain(), {7, 7, 7, 7}};
  f.world.oval_office->server->set_zone_key(
      key, [&f] { return f.d.seconds_now(); });

  net::NodeId client = f.d.add_client("validator", *f.world.oval_office, true);
  auto stub = f.d.make_stub(client, *f.world.oval_office);
  auto result = stub.resolve(f.world.speaker, RRType::BDADDR);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().records.size(), 2u);  // BDADDR + RRSIG
  EXPECT_EQ(result.value().records[1].type, RRType::RRSIG);

  dns::RRset answer{result.value().records[0]};
  const auto& sig = std::get<dns::RrsigData>(result.value().records[1].rdata);
  EXPECT_TRUE(dns::verify_rrsig(answer, sig, key, f.d.seconds_now()).ok());

  // A forged record fails validation.
  dns::RRset forged = answer;
  std::get<dns::BdaddrData>(forged[0].rdata).address.octets[0] ^= 0xff;
  EXPECT_FALSE(dns::verify_rrsig(forged, sig, key, f.d.seconds_now()).ok());
}

TEST(Integration, SshfpKeyProvisioning) {
  // §4.1: "securely provision public keys with the SNS using SSHFP
  // records … even their public keys can be replaced through the naming
  // system."
  Fixture f;
  dns::SshfpData fingerprint{4, 2, {0xaa, 0xbb, 0xcc}};
  ASSERT_TRUE(f.world.oval_office->zone->local_zone()
                  ->add(dns::ResourceRecord{f.world.display, RRType::SSHFP, dns::RRClass::IN,
                                            300, fingerprint})
                  .ok());
  net::NodeId client = f.d.add_client("ssh-client", *f.world.oval_office, true);
  auto stub = f.d.make_stub(client, *f.world.oval_office);
  auto result = stub.resolve(f.world.display, RRType::SSHFP);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().records.size(), 1u);
  EXPECT_EQ(std::get<dns::SshfpData>(result.value().records[0].rdata), fingerprint);
}

TEST(Integration, OfflineEdgeKeepsLocalResolutionWorking) {
  // §4.2: "ensuring continued functionality for local devices even in
  // the face of … disconnection from the wider internet."
  Fixture f;
  net::NodeId client = f.d.add_client("local", *f.world.oval_office, true);
  auto stub = f.d.make_stub(client, *f.world.oval_office);

  // Cut the White House off from its uplink (1600 <-> penn-ave).
  f.d.network().set_link_down(f.world.oval_office->ns_node, f.world.white_house->ns_node,
                              false);  // keep room<->building
  f.d.network().set_link_down(f.world.white_house->ns_node, f.world.penn_ave->ns_node, true);

  auto local = stub.resolve(f.world.speaker, RRType::BDADDR);
  ASSERT_TRUE(local.ok()) << local.error().message;
  EXPECT_EQ(local.value().stats.rcode, Rcode::NoError);

  // Meanwhile a remote iterative resolution into the White House fails.
  net::NodeId remote = f.d.add_client("remote", *f.world.cabinet_room, false);
  auto iterative = f.d.make_iterative(remote);
  auto blocked = iterative.resolve(f.world.display, RRType::AAAA);
  EXPECT_FALSE(blocked.ok());

  // Restore and the world heals.
  f.d.network().set_link_down(f.world.white_house->ns_node, f.world.penn_ave->ns_node, false);
  auto healed = iterative.resolve(f.world.display, RRType::AAAA);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed.value().stats.rcode, Rcode::NoError);
}

TEST(Integration, SpatialDnsSdDiscovery) {
  // §4.1: "DNS-SD augmented with spatial information makes service
  // discovery … about finding it in the spatial environment."
  Fixture f;
  server::ServiceInstance service;
  service.instance = "Oval Speaker";
  service.service_type = "_audio._udp";
  service.domain = f.world.oval_office->zone->domain();
  service.host = f.world.speaker;
  service.port = 5600;
  service.txt = {"codec=opus"};
  ASSERT_TRUE(
      server::publish_service(*f.world.oval_office->zone->local_zone(), service).ok());

  net::NodeId client = f.d.add_client("browser", *f.world.oval_office, true);
  auto stub = f.d.make_stub(client, *f.world.oval_office);
  auto browsed = resolver::browse_unicast(stub, "_audio._udp",
                                          f.world.oval_office->zone->domain());
  ASSERT_TRUE(browsed.ok());
  ASSERT_EQ(browsed.value().services.size(), 1u);
  EXPECT_EQ(browsed.value().services[0].host, f.world.speaker);

  // The service is spatial: browsing the Cabinet Room finds nothing.
  net::NodeId remote = f.d.add_client("remote-browser", *f.world.cabinet_room, true);
  auto remote_stub = f.d.make_stub(remote, *f.world.cabinet_room);
  auto empty = resolver::browse_unicast(remote_stub, "_audio._udp",
                                        f.world.cabinet_room->zone->domain());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().services.empty());
}

TEST(Integration, UriNamingEndToEnd) {
  // §2.1: capnp://mic.oval-office.…/secret resolves through the SNS.
  Fixture f;
  auto uri = SnsUri::parse("capnp://" + f.world.speaker.to_string() + "/control");
  ASSERT_TRUE(uri.ok());
  EXPECT_TRUE(uri.value().is_spatial(loc_root()));
  net::NodeId client = f.d.add_client("app", *f.world.oval_office, true);
  auto stub = f.d.make_stub(client, *f.world.oval_office);
  auto result = stub.resolve(uri.value().authority, RRType::BDADDR);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.rcode, Rcode::NoError);
}

TEST(Integration, EdgeLatencyIsMillisecondScale) {
  // §1/§4.2: AR needs ms-scale lookups; the edge nameserver delivers.
  Fixture f;
  net::NodeId headset = f.d.add_client("headset", *f.world.oval_office, true);
  auto stub = f.d.make_stub(headset, *f.world.oval_office);
  resolver::DnsCache cache;
  stub.set_cache(&cache);
  net::Duration worst{0};
  for (int i = 0; i < 20; ++i) {
    auto result = stub.resolve(f.world.display, RRType::A);
    ASSERT_TRUE(result.ok());
    worst = std::max(worst, result.value().stats.latency);
  }
  EXPECT_LT(worst, net::ms(5));
}

TEST(Integration, ZoneTransferToSecondary) {
  // Edge servers can replicate their zone to a secondary (resilience).
  Fixture f;
  auto primary = f.world.oval_office->zone->local_zone();
  auto view = server::build_zone_view(primary->apex(), primary->all_records());
  ASSERT_TRUE(view.ok()) << view.error().message;
  server::Zone secondary(std::move(view).value());
  EXPECT_EQ(secondary.record_count(), primary->record_count());
  EXPECT_EQ(secondary.serial(), primary->serial());
  auto lookup = secondary.lookup(f.world.speaker, RRType::BDADDR);
  EXPECT_EQ(lookup.kind, server::Zone::Lookup::Kind::Success);
}

TEST(Integration, WholeWorldIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    auto world = make_white_house_world(seed);
    auto& d = *world.deployment;
    net::NodeId client = d.add_client("c", *world.oval_office, true);
    auto stub = d.make_stub(client, *world.oval_office);
    std::vector<std::int64_t> latencies;
    for (int i = 0; i < 10; ++i) {
      auto result = stub.resolve(world.speaker, RRType::BDADDR);
      latencies.push_back(result.ok() ? result.value().stats.latency.count() : -1);
    }
    return latencies;
  };
  EXPECT_EQ(run(5), run(5));
}

}  // namespace
}  // namespace sns::core
