// Tests for geodetic resolution (§3.2): the _geo query protocol,
// responder behaviour and iterative descent with border fan-out.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "core/geodetic.hpp"

namespace sns::core {
namespace {

using dns::name_of;
using dns::RRType;

TEST(GeoQueryName, EncodeParseRoundTrip) {
  geo::BoundingBox area{38.8970, -77.0380, 38.8980, -77.0370};
  auto qname = encode_geo_query(area, name_of("oval-office.loc"));
  ASSERT_TRUE(qname.ok()) << qname.error().message;
  EXPECT_TRUE(is_geo_query(qname.value()));
  auto parsed = parse_geo_query(qname.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().second, name_of("oval-office.loc"));
  const auto& box = parsed.value().first;
  EXPECT_NEAR(box.center().latitude, area.center().latitude, 1e-5);
  EXPECT_NEAR(box.center().longitude, area.center().longitude, 1e-5);
}

TEST(GeoQueryName, NegativeCoordinatesSurvive) {
  geo::BoundingBox area{-33.87, 151.20, -33.85, 151.22};  // Sydney
  auto qname = encode_geo_query(area, name_of("au.loc"));
  ASSERT_TRUE(qname.ok());
  auto parsed = parse_geo_query(qname.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_NEAR(parsed.value().first.center().latitude, -33.86, 1e-4);
  EXPECT_NEAR(parsed.value().first.center().longitude, 151.21, 1e-4);
}

TEST(GeoQueryName, RejectsNonGeoNames) {
  EXPECT_FALSE(is_geo_query(name_of("mic.oval-office.loc")));
  EXPECT_FALSE(parse_geo_query(name_of("mic.oval-office.loc")).ok());
  EXPECT_FALSE(parse_geo_query(name_of("q-abc._geo.loc")).ok());
  EXPECT_FALSE(parse_geo_query(name_of("q-1x2._geo.loc")).ok());  // 2 fields
}

TEST(GeoResponder, AnswersDevicesAndReferrals) {
  auto civic = CivicName::from_components({"usa", "dc"}).value();
  SpatialZone zone(civic, geo::BoundingBox{38.0, -78.0, 39.0, -76.0});
  Device sensor;
  sensor.function = "sensor";
  sensor.position = {38.5, -77.0, 0};
  auto sensor_name = zone.register_device(sensor);
  ASSERT_TRUE(sensor_name.ok());

  GeoResponder responder(&zone);
  responder.add_child(GeoChild{name_of("georgetown.dc.usa.loc"),
                               geo::BoundingBox{38.90, -77.08, 38.92, -77.06}, std::nullopt,
                               name_of("ns.georgetown.dc.usa.loc"),
                               net::Ipv4Addr{{10, 0, 0, 40}}});

  // Query covering the sensor but not the child.
  auto qname = encode_geo_query(geo::BoundingBox::around({38.5, -77.0, 0}, 0.01),
                                zone.domain());
  ASSERT_TRUE(qname.ok());
  auto response = responder.handle(dns::make_query(1, qname.value(), RRType::PTR, false));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(std::get<dns::PtrData>(response->answers[0].rdata).target, sensor_name.value());
  EXPECT_TRUE(response->authorities.empty());

  // Query covering the child's footprint: NS referral + glue.
  auto child_q = encode_geo_query(geo::BoundingBox::around({38.91, -77.07, 0}, 0.001),
                                  zone.domain());
  ASSERT_TRUE(child_q.ok());
  response = responder.handle(dns::make_query(2, child_q.value(), RRType::PTR, false));
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->answers.empty());
  ASSERT_EQ(response->authorities.size(), 1u);
  EXPECT_EQ(response->authorities[0].type, RRType::NS);
  ASSERT_EQ(response->additionals.size(), 1u);

  // Query over empty space: NXDOMAIN.
  auto empty_q = encode_geo_query(geo::BoundingBox::around({38.1, -76.2, 0}, 0.001),
                                  zone.domain());
  ASSERT_TRUE(empty_q.ok());
  response = responder.handle(dns::make_query(3, empty_q.value(), RRType::PTR, false));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->header.rcode, dns::Rcode::NXDomain);

  // Geo query for a *different* domain: not ours.
  auto foreign = encode_geo_query(geo::BoundingBox::around({38.5, -77.0, 0}, 0.01),
                                  name_of("other.loc"));
  ASSERT_TRUE(foreign.ok());
  EXPECT_FALSE(responder.handle(dns::make_query(4, foreign.value(), RRType::PTR, false))
                   .has_value());
}

TEST(GeoResponder, PolygonFootprintRefinesReferrals) {
  // A child with a triangular shape: box queries inside the bbox but
  // outside the triangle are not referred.
  GeoResponder responder(name_of("region.loc"));
  geo::Polygon triangle({{0, 0, 0}, {10, 0, 0}, {0, 10, 0}});
  responder.add_child(GeoChild{name_of("tri.region.loc"), triangle.bbox(), triangle,
                               name_of("ns.tri.region.loc"), net::Ipv4Addr{{10, 0, 0, 50}}});

  auto inside = encode_geo_query(geo::BoundingBox{1, 1, 2, 2}, name_of("region.loc"));
  auto corner = encode_geo_query(geo::BoundingBox{8.5, 8.5, 9.5, 9.5}, name_of("region.loc"));
  ASSERT_TRUE(inside.ok() && corner.ok());
  auto hit = responder.handle(dns::make_query(1, inside.value(), RRType::PTR, false));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->authorities.size(), 1u);
  auto miss = responder.handle(dns::make_query(2, corner.value(), RRType::PTR, false));
  ASSERT_TRUE(miss.has_value());
  EXPECT_TRUE(miss->authorities.empty());
}

TEST(GeodeticClient, FullDescentThroughDeployment) {
  auto world = make_white_house_world(33);
  auto& d = *world.deployment;
  net::NodeId client = d.add_client("geo-client", *world.cabinet_room, false);
  auto geo_client = d.make_geodetic_client(client);

  auto result = geo_client.resolve_point({38.89730, -77.03740, 18.0}, 0.0002);
  ASSERT_TRUE(result.ok()) << result.error().message;
  // All three Oval Office devices found.
  EXPECT_EQ(result.value().names.size(), 3u);
  // Descent: .loc -> usa -> dc -> washington -> penn-ave -> 1600 -> oval.
  EXPECT_EQ(result.value().zones_visited, 7);
  EXPECT_GT(result.value().latency.count(), 0);
}

TEST(GeodeticClient, LondonPointFindsCamera) {
  auto world = make_white_house_world(34);
  auto& d = *world.deployment;
  net::NodeId client = d.add_client("geo-client", *world.oval_office, false);
  auto geo_client = d.make_geodetic_client(client);
  auto result = geo_client.resolve_point({51.503345, -0.127755, 6.0}, 0.00005);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().names.size(), 1u);
  EXPECT_EQ(result.value().names[0], world.camera);
}

TEST(GeodeticClient, EmptyAreaFindsNothing) {
  auto world = make_white_house_world(35);
  auto& d = *world.deployment;
  net::NodeId client = d.add_client("geo-client", *world.oval_office, false);
  auto geo_client = d.make_geodetic_client(client);
  // Middle of the Atlantic.
  auto result = geo_client.resolve_point({40.0, -40.0, 0.0}, 0.01);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().names.empty());
  EXPECT_EQ(result.value().zones_visited, 1);  // only .loc consulted
}

TEST(GeodeticClient, BorderQueryFansOut) {
  // Build two adjacent top-level zones and query straddling the border
  // (§3.2: "what if you query a point right on the border? … multiple
  // spatial domains, which it can then pursue concurrently").
  SnsDeployment d(77);
  auto east = CivicName::from_components({"eastland"}).value();
  auto west = CivicName::from_components({"westland"}).value();
  ZoneSite& east_site = d.add_zone(east, geo::BoundingBox{0, 0, 10, 10}, nullptr);
  ZoneSite& west_site = d.add_zone(west, geo::BoundingBox{0, -10, 10, 0}, nullptr);

  Device east_sensor;
  east_sensor.function = "sensor";
  east_sensor.position = {5.0, 0.05, 0};
  Device west_sensor;
  west_sensor.function = "sensor";
  west_sensor.position = {5.0, -0.05, 0};
  ASSERT_TRUE(d.add_device(east_site, east_sensor).ok());
  ASSERT_TRUE(d.add_device(west_site, west_sensor).ok());

  net::NodeId client = d.add_client("client", east_site, false);
  auto geo_client = d.make_geodetic_client(client);
  auto result = geo_client.resolve_point({5.0, 0.0, 0}, 0.1);  // straddles lon 0
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().fanout_max, 2);   // both domains pursued
  EXPECT_EQ(result.value().names.size(), 2u);
  EXPECT_EQ(result.value().zones_visited, 3);  // .loc + both countries
}

TEST(GeodeticClient, DeduplicatesAcrossOverlappingZones) {
  SnsDeployment d(78);
  auto a = CivicName::from_components({"aland"}).value();
  ZoneSite& site = d.add_zone(a, geo::BoundingBox{0, 0, 10, 10}, nullptr);
  Device sensor;
  sensor.function = "sensor";
  sensor.position = {5, 5, 0};
  ASSERT_TRUE(d.add_device(site, sensor).ok());
  net::NodeId client = d.add_client("client", site, false);
  auto geo_client = d.make_geodetic_client(client);
  auto result = geo_client.resolve_area(geo::BoundingBox{4, 4, 6, 6});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().names.size(), 1u);
}

}  // namespace
}  // namespace sns::core
