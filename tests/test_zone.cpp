// Tests for the authoritative zone store and the RFC 1034 lookup
// algorithm (src/server/zone).
#include <gtest/gtest.h>

#include "server/zone.hpp"

namespace sns::server {
namespace {

using dns::make_a;
using dns::make_cname;
using dns::make_ns;
using dns::make_txt;
using dns::name_of;

const Name kApex = name_of("oval-office.loc");

Zone fresh_zone() { return Zone(kApex, name_of("ns.oval-office.loc")); }

TEST(Zone, SynthesisedSoaAtApex) {
  Zone zone = fresh_zone();
  const RRset* soa = zone.find(kApex, RRType::SOA);
  ASSERT_NE(soa, nullptr);
  EXPECT_EQ(zone.serial(), 1u);
  // Serial management is transactional now: a forced-bump empty txn is
  // the explicit-bump idiom (commits of real changes bump implicitly).
  auto txn = zone.txn();
  txn.bump_serial();
  (void)zone.commit(std::move(txn));
  EXPECT_EQ(zone.serial(), 2u);
}

TEST(Zone, AddAndFind) {
  Zone zone = fresh_zone();
  ASSERT_TRUE(zone.add(make_a(name_of("mic.oval-office.loc"), net::Ipv4Addr{{1, 2, 3, 4}})).ok());
  const RRset* found = zone.find(name_of("mic.oval-office.loc"), RRType::A);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->size(), 1u);
}

TEST(Zone, RejectsOutOfZoneRecords) {
  Zone zone = fresh_zone();
  EXPECT_FALSE(zone.add(make_a(name_of("host.example.com"), net::Ipv4Addr{{1, 2, 3, 4}})).ok());
}

TEST(Zone, DuplicateRdataDeduplicated) {
  Zone zone = fresh_zone();
  auto rr = make_a(name_of("mic.oval-office.loc"), net::Ipv4Addr{{1, 2, 3, 4}});
  ASSERT_TRUE(zone.add(rr).ok());
  ASSERT_TRUE(zone.add(rr).ok());
  EXPECT_EQ(zone.find(name_of("mic.oval-office.loc"), RRType::A)->size(), 1u);
}

TEST(Zone, CnameExclusivity) {
  Zone zone = fresh_zone();
  Name moved = name_of("old.oval-office.loc");
  ASSERT_TRUE(zone.add(make_cname(moved, name_of("new.elsewhere.loc"))).ok());
  EXPECT_FALSE(zone.add(make_a(moved, net::Ipv4Addr{{1, 2, 3, 4}})).ok());
  Name host = name_of("host.oval-office.loc");
  ASSERT_TRUE(zone.add(make_a(host, net::Ipv4Addr{{1, 2, 3, 4}})).ok());
  EXPECT_FALSE(zone.add(make_cname(host, name_of("x.loc"))).ok());
}

TEST(Zone, RemoveOperations) {
  Zone zone = fresh_zone();
  Name mic = name_of("mic.oval-office.loc");
  ASSERT_TRUE(zone.add(make_a(mic, net::Ipv4Addr{{1, 2, 3, 4}})).ok());
  ASSERT_TRUE(zone.add(make_a(mic, net::Ipv4Addr{{1, 2, 3, 5}})).ok());
  ASSERT_TRUE(zone.add(make_txt(mic, {"x"})).ok());

  EXPECT_TRUE(zone.remove_record(make_a(mic, net::Ipv4Addr{{1, 2, 3, 4}})));
  EXPECT_FALSE(zone.remove_record(make_a(mic, net::Ipv4Addr{{9, 9, 9, 9}})));
  EXPECT_EQ(zone.find(mic, RRType::A)->size(), 1u);

  EXPECT_EQ(zone.remove_rrset(mic, RRType::A), 1u);
  EXPECT_EQ(zone.find(mic, RRType::A), nullptr);
  EXPECT_NE(zone.find(mic, RRType::TXT), nullptr);

  EXPECT_EQ(zone.remove_name(mic), 1u);
  EXPECT_FALSE(zone.name_exists(mic));
}

TEST(ZoneLookup, SuccessAndNoData) {
  Zone zone = fresh_zone();
  Name mic = name_of("mic.oval-office.loc");
  ASSERT_TRUE(zone.add(make_a(mic, net::Ipv4Addr{{1, 2, 3, 4}})).ok());

  auto hit = zone.lookup(mic, RRType::A);
  EXPECT_EQ(hit.kind, Zone::Lookup::Kind::Success);
  ASSERT_EQ(hit.records.size(), 1u);

  auto nodata = zone.lookup(mic, RRType::AAAA);
  EXPECT_EQ(nodata.kind, Zone::Lookup::Kind::NoData);

  auto nx = zone.lookup(name_of("ghost.oval-office.loc"), RRType::A);
  EXPECT_EQ(nx.kind, Zone::Lookup::Kind::NxDomain);

  auto outside = zone.lookup(name_of("x.example.com"), RRType::A);
  EXPECT_EQ(outside.kind, Zone::Lookup::Kind::NotZone);
}

TEST(ZoneLookup, AnyQueryCollectsAllTypes) {
  Zone zone = fresh_zone();
  Name mic = name_of("mic.oval-office.loc");
  ASSERT_TRUE(zone.add(make_a(mic, net::Ipv4Addr{{1, 2, 3, 4}})).ok());
  ASSERT_TRUE(zone.add(make_txt(mic, {"v"})).ok());
  auto any = zone.lookup(mic, RRType::ANY);
  EXPECT_EQ(any.kind, Zone::Lookup::Kind::Success);
  EXPECT_EQ(any.records.size(), 2u);
}

TEST(ZoneLookup, CnameReturned) {
  Zone zone = fresh_zone();
  Name old = name_of("old.oval-office.loc");
  ASSERT_TRUE(zone.add(make_cname(old, name_of("new.cabinet.loc"))).ok());
  auto result = zone.lookup(old, RRType::A);
  EXPECT_EQ(result.kind, Zone::Lookup::Kind::CName);
  // Direct CNAME query is a plain success.
  auto direct = zone.lookup(old, RRType::CNAME);
  EXPECT_EQ(direct.kind, Zone::Lookup::Kind::Success);
}

TEST(ZoneLookup, DelegationWithGlue) {
  Zone zone = fresh_zone();
  Name child = name_of("closet.oval-office.loc");
  Name child_ns = name_of("ns.closet.oval-office.loc");
  ASSERT_TRUE(zone.add(make_ns(child, child_ns)).ok());
  ASSERT_TRUE(zone.add(make_a(child_ns, net::Ipv4Addr{{10, 0, 0, 9}})).ok());

  auto result = zone.lookup(name_of("sensor.closet.oval-office.loc"), RRType::A);
  EXPECT_EQ(result.kind, Zone::Lookup::Kind::Delegation);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].type, RRType::NS);
  ASSERT_EQ(result.additionals.size(), 1u);
  EXPECT_EQ(result.additionals[0].type, RRType::A);

  // Query exactly at the cut for a non-NS type: still a referral.
  auto at_cut = zone.lookup(child, RRType::A);
  EXPECT_EQ(at_cut.kind, Zone::Lookup::Kind::Delegation);
  // But asking for the NS set itself at the cut answers from here.
  auto ns_query = zone.lookup(child, RRType::NS);
  EXPECT_EQ(ns_query.kind, Zone::Lookup::Kind::Success);
}

TEST(ZoneLookup, ApexNsIsNotDelegation) {
  Zone zone = fresh_zone();
  ASSERT_TRUE(zone.add(make_ns(kApex, name_of("ns.oval-office.loc"))).ok());
  auto result = zone.lookup(name_of("mic.oval-office.loc"), RRType::A);
  EXPECT_EQ(result.kind, Zone::Lookup::Kind::NxDomain);  // not a referral
}

TEST(ZoneLookup, EmptyNonTerminalIsNoData) {
  Zone zone = fresh_zone();
  // Only a deep name exists; the intermediate label owns nothing.
  ASSERT_TRUE(
      zone.add(make_a(name_of("sensor.shelf.oval-office.loc"), net::Ipv4Addr{{1, 1, 1, 1}}))
          .ok());
  auto result = zone.lookup(name_of("shelf.oval-office.loc"), RRType::A);
  EXPECT_EQ(result.kind, Zone::Lookup::Kind::NoData);
}

TEST(ZoneLookup, WildcardSynthesis) {
  Zone zone = fresh_zone();
  ASSERT_TRUE(
      zone.add(make_txt(name_of("*.sensors.oval-office.loc"), {"wildcard"})).ok());
  auto result = zone.lookup(name_of("anything.sensors.oval-office.loc"), RRType::TXT);
  EXPECT_EQ(result.kind, Zone::Lookup::Kind::Success);
  EXPECT_TRUE(result.wildcard);
  ASSERT_EQ(result.records.size(), 1u);
  // Owner rewritten to the query name.
  EXPECT_EQ(result.records[0].name, name_of("anything.sensors.oval-office.loc"));
  // Wildcard does not cover the wildcard owner's parent itself.
  auto parent = zone.lookup(name_of("sensors.oval-office.loc"), RRType::TXT);
  EXPECT_EQ(parent.kind, Zone::Lookup::Kind::NoData);  // ENT above the wildcard
}

TEST(ZoneLookup, WildcardCname) {
  Zone zone = fresh_zone();
  ASSERT_TRUE(zone.add(make_cname(name_of("*.alias.oval-office.loc"),
                                  name_of("real.oval-office.loc")))
                  .ok());
  auto result = zone.lookup(name_of("foo.alias.oval-office.loc"), RRType::A);
  EXPECT_EQ(result.kind, Zone::Lookup::Kind::CName);
  EXPECT_TRUE(result.wildcard);
}

TEST(Zone, AllRecordsCanonicalOrderAndLoad) {
  Zone zone = fresh_zone();
  ASSERT_TRUE(zone.add(make_a(name_of("b.oval-office.loc"), net::Ipv4Addr{{1, 1, 1, 1}})).ok());
  ASSERT_TRUE(zone.add(make_a(name_of("a.oval-office.loc"), net::Ipv4Addr{{2, 2, 2, 2}})).ok());
  auto all = zone.all_records();
  EXPECT_EQ(all.size(), 3u);  // SOA + 2
  // Canonical order: apex first, then a, then b.
  EXPECT_EQ(all[0].type, RRType::SOA);
  EXPECT_EQ(all[1].name, name_of("a.oval-office.loc"));

  // Zone transfer: build a fresh secondary view from the record list.
  auto secondary_view = server::build_zone_view(kApex, all);
  ASSERT_TRUE(secondary_view.ok());
  Zone secondary(std::move(secondary_view).value());
  EXPECT_EQ(secondary.record_count(), 3u);
  EXPECT_NE(secondary.find(name_of("b.oval-office.loc"), RRType::A), nullptr);

  // Building from garbage fails.
  EXPECT_FALSE(
      server::build_zone_view(kApex, {make_a(name_of("x.other.loc"), net::Ipv4Addr{{1, 1, 1, 1}})})
          .ok());
  EXPECT_FALSE(server::build_zone_view(
                   kApex, {make_a(name_of("x.oval-office.loc"), net::Ipv4Addr{{1, 1, 1, 1}})})
                   .ok())
      << "build without SOA must fail";
}

TEST(Zone, TypesAtAndNames) {
  Zone zone = fresh_zone();
  Name mic = name_of("mic.oval-office.loc");
  ASSERT_TRUE(zone.add(make_a(mic, net::Ipv4Addr{{1, 2, 3, 4}})).ok());
  ASSERT_TRUE(zone.add(make_txt(mic, {"x"})).ok());
  auto types = zone.types_at(mic);
  EXPECT_EQ(types.size(), 2u);
  EXPECT_TRUE(zone.types_at(name_of("ghost.oval-office.loc")).empty());
  auto names = zone.all_names();
  EXPECT_EQ(names.size(), 2u);  // apex + mic
}

}  // namespace
}  // namespace sns::server
