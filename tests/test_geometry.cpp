// Tests for geodetic primitives (src/geo/geometry).
#include <gtest/gtest.h>

#include "geo/geometry.hpp"

namespace sns::geo {
namespace {

TEST(Haversine, KnownDistances) {
  // White House to 10 Downing Street: ~5897 km.
  GeoPoint wh{38.8974, -77.0374, 0};
  GeoPoint downing{51.5034, -0.1276, 0};
  EXPECT_NEAR(haversine_m(wh, downing), 5897000.0, 15000.0);
  // Same point: zero.
  EXPECT_DOUBLE_EQ(haversine_m(wh, wh), 0.0);
  // One degree of latitude: ~111.2 km.
  EXPECT_NEAR(haversine_m({0, 0, 0}, {1, 0, 0}), 111195.0, 200.0);
}

TEST(BoundingBox, ContainsPoints) {
  BoundingBox box{10, 20, 30, 40};
  EXPECT_TRUE(box.contains(GeoPoint{20, 30, 0}));
  EXPECT_TRUE(box.contains(GeoPoint{10, 20, 0}));  // boundary inclusive
  EXPECT_TRUE(box.contains(GeoPoint{30, 40, 0}));
  EXPECT_FALSE(box.contains(GeoPoint{9.999, 30, 0}));
  EXPECT_FALSE(box.contains(GeoPoint{20, 40.001, 0}));
}

TEST(BoundingBox, ContainsBoxes) {
  BoundingBox outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.contains(BoundingBox{1, 1, 9, 9}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(BoundingBox{1, 1, 11, 9}));
}

TEST(BoundingBox, Intersections) {
  BoundingBox a{0, 0, 10, 10};
  EXPECT_TRUE(a.intersects(BoundingBox{5, 5, 15, 15}));
  EXPECT_TRUE(a.intersects(BoundingBox{10, 10, 20, 20}));  // touching corner
  EXPECT_FALSE(a.intersects(BoundingBox{10.01, 0, 20, 10}));
  EXPECT_FALSE(a.intersects(BoundingBox{0, 10.01, 10, 20}));
}

TEST(BoundingBox, AroundCenterUnionArea) {
  GeoPoint c{50, 8, 0};
  BoundingBox box = BoundingBox::around(c, 0.5);
  EXPECT_DOUBLE_EQ(box.min_lat, 49.5);
  EXPECT_DOUBLE_EQ(box.max_lon, 8.5);
  EXPECT_EQ(box.center(), c);
  EXPECT_DOUBLE_EQ(box.area(), 1.0);
  BoundingBox other{60, 10, 61, 11};
  BoundingBox all = box.united(other);
  EXPECT_DOUBLE_EQ(all.min_lat, 49.5);
  EXPECT_DOUBLE_EQ(all.max_lat, 61.0);
  EXPECT_DOUBLE_EQ(all.max_lon, 11.0);
}

Polygon triangle() {
  return Polygon({{0, 0, 0}, {10, 0, 0}, {0, 10, 0}});
}

TEST(Polygon, ContainsInterior) {
  Polygon t = triangle();
  EXPECT_TRUE(t.contains(GeoPoint{2, 2, 0}));
  EXPECT_FALSE(t.contains(GeoPoint{6, 6, 0}));   // outside hypotenuse
  EXPECT_FALSE(t.contains(GeoPoint{-1, 5, 0}));
  EXPECT_TRUE(t.contains(GeoPoint{0, 0, 0}));    // vertex counts as inside
}

TEST(Polygon, BboxComputed) {
  Polygon t = triangle();
  EXPECT_EQ(t.bbox(), (BoundingBox{0, 0, 10, 10}));
}

TEST(Polygon, IntersectsBoxCases) {
  Polygon t = triangle();
  // Box fully inside the triangle.
  EXPECT_TRUE(t.intersects(BoundingBox{1, 1, 2, 2}));
  // Triangle vertex inside the box.
  EXPECT_TRUE(t.intersects(BoundingBox{-1, -1, 1, 1}));
  // Edges cross but no vertex containment either way.
  EXPECT_TRUE(t.intersects(BoundingBox{4, -5, 5, 15}));
  // Box inside the bbox but outside the triangle (near hypotenuse corner).
  EXPECT_FALSE(t.intersects(BoundingBox{8.5, 8.5, 9.5, 9.5}));
  // Far away.
  EXPECT_FALSE(t.intersects(BoundingBox{20, 20, 30, 30}));
}

TEST(Polygon, DegenerateIsEmpty) {
  Polygon line({{0, 0, 0}, {1, 1, 0}});
  EXPECT_FALSE(line.contains(GeoPoint{0.5, 0.5, 0}));
}

TEST(Polygon, ComplexConcaveShape) {
  // A U-shape: points in the notch are outside.
  Polygon u({{0, 0, 0}, {0, 10, 0}, {10, 10, 0}, {10, 7, 0}, {3, 7, 0}, {3, 3, 0},
             {10, 3, 0}, {10, 0, 0}});
  EXPECT_TRUE(u.contains(GeoPoint{1, 5, 0}));   // bottom of the U
  EXPECT_TRUE(u.contains(GeoPoint{5, 9, 0}));   // top arm
  EXPECT_TRUE(u.contains(GeoPoint{5, 1, 0}));   // bottom arm
  EXPECT_FALSE(u.contains(GeoPoint{6, 5, 0}));  // inside the notch
}

}  // namespace
}  // namespace sns::geo
