// Tests for the simulated positioning providers (§3.2).
#include <gtest/gtest.h>

#include <cmath>

#include "geo/geometry.hpp"
#include "positioning/gnss.hpp"
#include "positioning/ips.hpp"
#include "positioning/provider.hpp"

namespace sns::positioning {
namespace {

const geo::GeoPoint kTruth{38.8974, -77.0374, 18.0};

TEST(Manual, PerfectFix) {
  ManualProvider manual;
  auto fix = manual.locate(kTruth);
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->position, kTruth);
  EXPECT_LT(fix->accuracy_m, 1.0);
}

TEST(Gnss, OpenSkyMetreScaleAccuracy) {
  GnssProvider gnss(1, SkyCondition::OpenSky);
  double total_error = 0;
  int fixes = 0;
  for (int i = 0; i < 500; ++i) {
    auto fix = gnss.locate(kTruth);
    ASSERT_TRUE(fix.has_value());  // open sky never loses fix
    total_error += geo::haversine_m(fix->position, kTruth);
    ++fixes;
  }
  double mean_error = total_error / fixes;
  EXPECT_GT(mean_error, 0.5);
  EXPECT_LT(mean_error, 10.0);  // ~3m sigma
}

TEST(Gnss, IndoorDegradation) {
  // §3.2: "GNSS is limited in its accuracy indoors".
  GnssProvider open(2, SkyCondition::OpenSky);
  GnssProvider urban(2, SkyCondition::Urban);
  GnssProvider indoor(2, SkyCondition::Indoor);
  GnssProvider deep(2, SkyCondition::DeepIndoor);

  auto stats = [&](GnssProvider& provider) {
    int lost = 0;
    double error = 0;
    int fixes = 0;
    for (int i = 0; i < 500; ++i) {
      auto fix = provider.locate(kTruth);
      if (!fix.has_value()) {
        ++lost;
        continue;
      }
      error += geo::haversine_m(fix->position, kTruth);
      ++fixes;
    }
    return std::pair{lost, fixes > 0 ? error / fixes : 1e9};
  };

  auto [open_lost, open_error] = stats(open);
  auto [urban_lost, urban_error] = stats(urban);
  auto [indoor_lost, indoor_error] = stats(indoor);
  auto [deep_lost, deep_error] = stats(deep);

  EXPECT_EQ(open_lost, 0);
  EXPECT_LT(open_error, urban_error);
  EXPECT_LT(urban_error, indoor_error);
  EXPECT_LT(urban_lost, indoor_lost);
  EXPECT_GT(deep_lost, 450);  // almost never a fix deep indoors
}

TEST(Gnss, ConditionSwitchable) {
  GnssProvider gnss(3, SkyCondition::OpenSky);
  EXPECT_EQ(gnss.condition(), SkyCondition::OpenSky);
  gnss.set_condition(SkyCondition::DeepIndoor);
  EXPECT_EQ(gnss.condition(), SkyCondition::DeepIndoor);
}

class IpsTest : public ::testing::Test {
 protected:
  // Four beacons at the corners of a ~30m room around the truth point.
  void SetUp() override {
    double d = 0.00015;  // ~16m in latitude degrees
    ips_.add_beacon({kTruth.latitude - d, kTruth.longitude - d, 3});
    ips_.add_beacon({kTruth.latitude - d, kTruth.longitude + d, 3});
    ips_.add_beacon({kTruth.latitude + d, kTruth.longitude - d, 3});
    ips_.add_beacon({kTruth.latitude + d, kTruth.longitude + d, 3});
  }
  IpsProvider ips_{99};
};

TEST_F(IpsTest, SubMetreIndoors) {
  // The Active-BAT-style system: sub-metre where beacons cover.
  double total_error = 0;
  for (int i = 0; i < 100; ++i) {
    auto fix = ips_.locate(kTruth);
    ASSERT_TRUE(fix.has_value());
    total_error += geo::haversine_m(fix->position, kTruth);
  }
  EXPECT_LT(total_error / 100, 1.0);
}

TEST_F(IpsTest, NoCoverageNoFix) {
  geo::GeoPoint far{kTruth.latitude + 1.0, kTruth.longitude, 0};
  EXPECT_FALSE(ips_.locate(far).has_value());
}

TEST_F(IpsTest, NeedsThreeBeacons) {
  IpsProvider sparse(1);
  sparse.add_beacon({kTruth.latitude, kTruth.longitude, 3});
  sparse.add_beacon({kTruth.latitude + 0.0001, kTruth.longitude, 3});
  EXPECT_FALSE(sparse.locate(kTruth).has_value());
  EXPECT_EQ(sparse.beacon_count(), 2u);
}

TEST(Providers, PolymorphicUse) {
  // The SNS core consumes providers through the interface.
  GnssProvider gnss(5, SkyCondition::OpenSky);
  ManualProvider manual;
  std::vector<PositionProvider*> providers{&gnss, &manual};
  for (PositionProvider* provider : providers) {
    auto fix = provider->locate(kTruth);
    ASSERT_TRUE(fix.has_value()) << provider->name();
    EXPECT_LT(geo::haversine_m(fix->position, kTruth), 50.0) << provider->name();
  }
}

}  // namespace
}  // namespace sns::positioning
