// Tests for the federation subsystem (src/federation/): zone-directory
// loading, referral detection and the referral cache, live iterative
// resolution through real delegation referrals over loopback sockets,
// and the IXFR-fed edge nameserver converging on a churning primary
// then serving stale through a partition (RFC 8767).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "federation/edge.hpp"
#include "federation/resolver.hpp"
#include "federation/zone_dir.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"
#include "server/zone.hpp"
#include "transport/client.hpp"

namespace sns::federation {
namespace {

using dns::make_a;
using dns::make_ns;
using dns::make_soa;
using dns::make_txt;
using dns::name_of;
using dns::Name;
using dns::RRType;
using server::ZoneViewPtr;

ZoneViewPtr must_build(server::ZoneBuilder builder) {
  auto view = std::move(builder).build();
  EXPECT_TRUE(view.ok());
  return std::move(view).value();
}

/// usa.loc apex zone: owns `liberty`, delegates dc to 127.0.0.1.
ZoneViewPtr usa_zone() {
  server::ZoneBuilder builder(name_of("usa.loc"));
  (void)builder.add(make_soa(name_of("usa.loc"), name_of("ns.usa.loc"), 1));
  (void)builder.add(make_ns(name_of("usa.loc"), name_of("ns.usa.loc")));
  (void)builder.add(make_a(name_of("ns.usa.loc"), net::Ipv4Addr{{127, 0, 0, 1}}));
  (void)builder.add(make_txt(name_of("liberty.usa.loc"), {"statue"}));
  (void)builder.add(make_ns(name_of("dc.usa.loc"), name_of("ns.dc.usa.loc")));
  (void)builder.add(make_a(name_of("ns.dc.usa.loc"), net::Ipv4Addr{{127, 0, 0, 1}}));
  return must_build(std::move(builder));
}

/// dc.usa.loc zone: delegates penn-ave to 127.0.0.2 with glue.
ZoneViewPtr dc_zone() {
  server::ZoneBuilder builder(name_of("dc.usa.loc"));
  (void)builder.add(make_soa(name_of("dc.usa.loc"), name_of("ns.dc.usa.loc"), 1));
  (void)builder.add(make_ns(name_of("dc.usa.loc"), name_of("ns.dc.usa.loc")));
  (void)builder.add(make_a(name_of("ns.dc.usa.loc"), net::Ipv4Addr{{127, 0, 0, 1}}));
  (void)builder.add(make_txt(name_of("museum.dc.usa.loc"), {"air-and-space"}));
  (void)builder.add(
      make_ns(name_of("penn-ave.dc.usa.loc"), name_of("ns.penn-ave.dc.usa.loc")));
  (void)builder.add(
      make_a(name_of("ns.penn-ave.dc.usa.loc"), net::Ipv4Addr{{127, 0, 0, 2}}));
  return must_build(std::move(builder));
}

/// Leaf street zone served by the 127.0.0.2 runtime.
ZoneViewPtr street_zone() {
  server::ZoneBuilder builder(name_of("penn-ave.dc.usa.loc"));
  (void)builder.add(
      make_soa(name_of("penn-ave.dc.usa.loc"), name_of("ns.penn-ave.dc.usa.loc"), 1));
  (void)builder.add(
      make_ns(name_of("penn-ave.dc.usa.loc"), name_of("ns.penn-ave.dc.usa.loc")));
  (void)builder.add(
      make_a(name_of("ns.penn-ave.dc.usa.loc"), net::Ipv4Addr{{127, 0, 0, 2}}));
  (void)builder.add(make_txt(name_of("door.1600.penn-ave.dc.usa.loc"), {"42#"}));
  return must_build(std::move(builder));
}

transport::Endpoint loopback(const char* addr, std::uint16_t port) {
  auto parsed = transport::Endpoint::parse(addr, port);
  EXPECT_TRUE(parsed.ok());
  return parsed.value();
}

TEST(ZoneDir, LoadsSortedZonesAndRejectsDuplicates) {
  auto dir = std::filesystem::path(::testing::TempDir()) / "zone_dir_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream a(dir / "usa.loc");
    a << "$ORIGIN usa.loc.\n@ IN SOA ns hostmaster 1 3600 600 86400 60\n"
         "@ IN NS ns\nns IN A 127.0.0.1\n";
    std::ofstream b(dir / "dc.zone");
    b << "$ORIGIN dc.usa.loc.\n@ IN SOA ns hostmaster 1 3600 600 86400 60\n"
         "@ IN NS ns\nns IN A 127.0.0.1\n";
    std::ofstream ignored(dir / "README.txt");
    ignored << "not a zone\n";
  }
  auto zones = load_zone_dir(dir.string(), name_of("."));
  ASSERT_TRUE(zones.ok()) << zones.error().message;
  ASSERT_EQ(zones.value().size(), 2u);  // README.txt skipped
  // Sorted by filename: dc.zone before usa.loc.
  EXPECT_EQ(zones.value()[0]->apex(), name_of("dc.usa.loc"));
  EXPECT_EQ(zones.value()[1]->apex(), name_of("usa.loc"));

  {
    std::ofstream dup(dir / "zz-dup.loc");
    dup << "$ORIGIN usa.loc.\n@ IN SOA ns hostmaster 9 3600 600 86400 60\n";
  }
  EXPECT_FALSE(load_zone_dir(dir.string(), name_of(".")).ok());

  auto empty = std::filesystem::path(::testing::TempDir()) / "zone_dir_empty";
  std::filesystem::remove_all(empty);
  std::filesystem::create_directories(empty);
  EXPECT_FALSE(load_zone_dir(empty.string(), name_of(".")).ok());
  EXPECT_FALSE(load_zone_dir((empty / "missing").string(), name_of(".")).ok());
}

TEST(ReferralCache, DeepestAncestorWins) {
  ReferralCache cache;
  cache.insert(name_of("usa.loc"), {loopback("127.0.0.1", 53)});
  cache.insert(name_of("dc.usa.loc"), {loopback("127.0.0.2", 53)});

  auto hit = cache.best_for(name_of("door.penn-ave.dc.usa.loc"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->zone, name_of("dc.usa.loc"));

  hit = cache.best_for(name_of("liberty.usa.loc"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->zone, name_of("usa.loc"));

  EXPECT_FALSE(cache.best_for(name_of("elsewhere.example")).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(Referral, ShapeDetection) {
  dns::Message msg;
  msg.header.qr = true;
  msg.header.aa = false;
  msg.authorities.push_back(make_ns(name_of("dc.usa.loc"), name_of("ns.dc.usa.loc")));
  EXPECT_TRUE(is_referral(msg));
  msg.header.aa = true;  // authoritative negative, not a referral
  EXPECT_FALSE(is_referral(msg));
  msg.header.aa = false;
  msg.answers.push_back(make_txt(name_of("x.dc.usa.loc"), {"hit"}));
  EXPECT_FALSE(is_referral(msg));
}

TEST(IterativeLive, ResolvesThroughRealReferralsAndCachesThem) {
  runtime::RuntimeOptions options;
  options.threads = 2;
  runtime::ServerRuntime parent("parent", options);
  ASSERT_TRUE(parent.start(loopback("127.0.0.1", 0), {usa_zone(), dc_zone()}).ok());
  const std::uint16_t port = parent.local().port;

  runtime::ServerRuntime leaf("leaf", options);
  ASSERT_TRUE(leaf.start(loopback("127.0.0.2", port), {street_zone()}).ok());

  ResolveOptions resolve_options;
  resolve_options.glue_port = port;
  resolve_options.query.timeout = std::chrono::milliseconds(500);
  IterativeClient client({parent.local()}, resolve_options);

  std::vector<TraceHop> hops;
  auto answer = client.resolve(name_of("door.1600.penn-ave.dc.usa.loc"), RRType::TXT,
                               [&](const TraceHop& hop) { hops.push_back(hop); });
  ASSERT_TRUE(answer.ok()) << answer.error().message;
  EXPECT_EQ(answer.value().referrals, 1);
  EXPECT_FALSE(answer.value().started_from_cache);
  ASSERT_FALSE(answer.value().response.answers.empty());
  EXPECT_TRUE(answer.value().response.header.aa);
  EXPECT_EQ(std::get<dns::TxtData>(answer.value().response.answers.front().rdata).strings[0],
            "42#");
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_TRUE(hops[0].referral);
  EXPECT_FALSE(hops[1].referral);

  // Second resolution starts from the cached referral: no descent.
  auto again = client.resolve(name_of("door.1600.penn-ave.dc.usa.loc"), RRType::TXT);
  ASSERT_TRUE(again.ok()) << again.error().message;
  EXPECT_TRUE(again.value().started_from_cache);
  EXPECT_EQ(again.value().referrals, 0);

  // A name the parent owns directly resolves in one authoritative wave.
  auto direct = client.resolve(name_of("liberty.usa.loc"), RRType::TXT);
  ASSERT_TRUE(direct.ok()) << direct.error().message;
  EXPECT_FALSE(direct.value().response.answers.empty());

  leaf.stop();
  parent.stop();
}

TEST(EdgeLive, ConvergesViaIxfrThenServesStaleThroughPartition) {
  runtime::RuntimeOptions options;
  options.threads = 2;
  auto primary = std::make_unique<runtime::ServerRuntime>("primary", options);
  ASSERT_TRUE(primary->start(loopback("127.0.0.1", 0), {street_zone()}).ok());
  const auto primary_at = primary->local();

  runtime::ServerRuntime edge_runtime("edge", options);
  EdgeOptions edge_options;
  edge_options.primary = primary_at;
  edge_options.zones = {name_of("penn-ave.dc.usa.loc")};
  edge_options.refresh_interval = std::chrono::milliseconds(50);
  edge_options.expire_after = std::chrono::milliseconds(400);
  edge_options.query.timeout = std::chrono::milliseconds(200);
  EdgeNameserver edge(edge_runtime, edge_options);

  auto views = edge.initial_sync();
  ASSERT_TRUE(views.ok()) << views.error().message;
  ASSERT_TRUE(edge_runtime.start(loopback("127.0.0.2", 0), std::move(views).value()).ok());
  ASSERT_TRUE(edge.start().ok());

  // Churn the primary through its transactional write path — the same
  // commits RFC 2136 updates ride — and the edge must converge by IXFR.
  for (int gen = 0; gen < 3; ++gen) {
    primary->commit_zones([&](std::vector<std::shared_ptr<server::Zone>>& zones) {
      auto txn = zones[0]->txn();
      (void)txn.add(
          make_txt(name_of("lamp" + std::to_string(gen) + ".penn-ave.dc.usa.loc"), {"on"}));
      (void)zones[0]->commit(std::move(txn));
      return true;
    });
  }
  const std::uint32_t target = primary->snapshot()->zones[0]->serial();
  ASSERT_GE(target, 4u);

  auto edge_serial = [&] { return edge_runtime.snapshot()->zones[0]->serial(); };
  for (int i = 0; i < 100 && edge_serial() != target; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(edge_serial(), target) << "edge never converged";

  obs::MetricsRegistry totals;
  edge_runtime.merge_metrics(totals);
  EXPECT_EQ(totals.counter_value("federation.refresh.axfr").value_or(0), 1u)
      << "steady churn must converge by IXFR, not repeated full transfers";
  EXPECT_GE(totals.counter_value("federation.refresh.ixfr").value_or(0), 1u);

  // Partition: kill the primary, outwait the expiry horizon.
  primary->stop();
  primary.reset();
  for (int i = 0; i < 100 && !edge_runtime.serving_stale(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(edge_runtime.serving_stale()) << "edge never flagged staleness";

  // The edge still answers — stale beats dark (RFC 8767).
  auto reply = transport::udp_query(
      edge_runtime.local(),
      dns::make_query(99, name_of("door.1600.penn-ave.dc.usa.loc"), RRType::TXT, false), {});
  ASSERT_TRUE(reply.ok()) << reply.error().message;
  ASSERT_FALSE(reply.value().answers.empty());
  EXPECT_EQ(std::get<dns::TxtData>(reply.value().answers.front().rdata).strings[0], "42#");

  obs::MetricsRegistry after;
  edge_runtime.merge_metrics(after);
  EXPECT_GE(after.counter_value("federation.stale_serves").value_or(0), 1u);

  edge.stop();
  edge_runtime.stop();
}

}  // namespace
}  // namespace sns::federation
