// Tests for dns::Name: parsing, wire form, compression, ordering.
#include <gtest/gtest.h>

#include "dns/name.hpp"
#include "util/rng.hpp"

namespace sns::dns {
namespace {

TEST(Name, ParseBasics) {
  auto n = Name::parse("mic.oval-office.loc");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value().label_count(), 3u);
  EXPECT_EQ(n.value().labels()[0], "mic");
  EXPECT_EQ(n.value().to_string(), "mic.oval-office.loc");
}

TEST(Name, TrailingDotIgnored) {
  auto a = Name::parse("a.b.");
  auto b = Name::parse("a.b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(Name, Root) {
  auto root = Name::parse(".");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root.value().is_root());
  EXPECT_EQ(root.value().to_string(), ".");
  EXPECT_EQ(root.value().wire_length(), 1u);
}

TEST(Name, RejectsInvalid) {
  EXPECT_FALSE(Name::parse("").ok());
  EXPECT_FALSE(Name::parse("a..b").ok());
  EXPECT_FALSE(Name::parse(std::string(64, 'x') + ".com").ok());  // label > 63
  // Total > 255 octets.
  std::string big;
  for (int i = 0; i < 10; ++i) big += std::string(30, 'a') + ".";
  big += "com";
  EXPECT_FALSE(Name::parse(big).ok());
  EXPECT_FALSE(Name::parse("a b.com").ok());  // space in label
}

TEST(Name, CaseInsensitiveEquality) {
  EXPECT_EQ(name_of("Mic.OVAL-office.Loc"), name_of("mic.oval-office.loc"));
}

TEST(Name, SubdomainRelations) {
  Name device = name_of("mic.oval-office.1600.penn-ave.washington.dc.usa.loc");
  Name room = name_of("oval-office.1600.penn-ave.washington.dc.usa.loc");
  Name loc = name_of("loc");
  EXPECT_TRUE(device.is_subdomain_of(room));
  EXPECT_TRUE(device.is_subdomain_of(loc));
  EXPECT_TRUE(device.is_subdomain_of(device));
  EXPECT_TRUE(device.is_subdomain_of(Name{}));  // everything under root
  EXPECT_FALSE(room.is_subdomain_of(device));
  EXPECT_FALSE(name_of("xoval-office.loc").is_subdomain_of(name_of("oval-office.loc")));
}

TEST(Name, ParentPrependConcat) {
  Name room = name_of("oval-office.loc");
  EXPECT_EQ(room.parent(), name_of("loc"));
  auto mic = room.prepend("mic");
  ASSERT_TRUE(mic.ok());
  EXPECT_EQ(mic.value().to_string(), "mic.oval-office.loc");
  auto joined = name_of("mic").concat(room);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value(), mic.value());
  EXPECT_FALSE(room.prepend("bad label").ok());
}

TEST(Name, StripSuffix) {
  Name device = name_of("mic.oval-office.loc");
  auto relative = device.strip_suffix(name_of("oval-office.loc"));
  ASSERT_TRUE(relative.has_value());
  EXPECT_EQ(relative->to_string(), "mic");
  EXPECT_FALSE(device.strip_suffix(name_of("example.com")).has_value());
  auto self = device.strip_suffix(device);
  ASSERT_TRUE(self.has_value());
  EXPECT_TRUE(self->is_root());
}

TEST(Name, WireRoundTripUncompressed) {
  Name n = name_of("mic.oval-office.1600.penn-ave.washington.dc.usa.loc");
  util::ByteWriter w;
  n.encode(w);
  EXPECT_EQ(w.size(), n.wire_length());
  util::ByteReader r(std::span(w.data()));
  auto decoded = Name::decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), n);
  EXPECT_TRUE(r.exhausted());
}

TEST(Name, CompressionSharesSuffixes) {
  Name a = name_of("mic.oval-office.loc");
  Name b = name_of("speaker.oval-office.loc");
  util::ByteWriter w;
  NameCompressor compressor;
  a.encode(w, compressor);
  std::size_t after_first = w.size();
  b.encode(w, compressor);
  // Second name should be much shorter than its full wire form: one
  // label + a 2-byte pointer.
  EXPECT_EQ(w.size() - after_first, 1 + 7 + 2u);

  util::ByteReader r(std::span(w.data()));
  auto da = Name::decode(r);
  auto db = Name::decode(r);
  ASSERT_TRUE(da.ok() && db.ok());
  EXPECT_EQ(da.value(), a);
  EXPECT_EQ(db.value(), b);
}

TEST(Name, CompressionExactDuplicateIsOnePointer) {
  Name a = name_of("display.oval-office.loc");
  util::ByteWriter w;
  NameCompressor compressor;
  a.encode(w, compressor);
  std::size_t after_first = w.size();
  a.encode(w, compressor);
  EXPECT_EQ(w.size() - after_first, 2u);
}

TEST(Name, DecodeRejectsPointerLoops) {
  // A pointer pointing at itself.
  std::vector<std::uint8_t> wire{0xc0, 0x00};
  util::ByteReader r{std::span(wire)};
  EXPECT_FALSE(Name::decode(r).ok());
}

TEST(Name, DecodeRejectsTruncation) {
  std::vector<std::uint8_t> wire{5, 'a', 'b'};  // label claims 5 bytes, has 2
  util::ByteReader r{std::span(wire)};
  EXPECT_FALSE(Name::decode(r).ok());
  std::vector<std::uint8_t> no_terminator{1, 'a'};
  util::ByteReader r2{std::span(no_terminator)};
  EXPECT_FALSE(Name::decode(r2).ok());
}

TEST(Name, DecodeRejectsReservedLabelTypes) {
  std::vector<std::uint8_t> wire{0x80, 'a', 0};  // 10xxxxxx reserved
  util::ByteReader r{std::span(wire)};
  EXPECT_FALSE(Name::decode(r).ok());
}

TEST(Name, CanonicalOrdering) {
  // RFC 4034 §6.1 example ordering.
  std::vector<Name> sorted{
      name_of("example"),       name_of("a.example"),     name_of("yljkjljk.a.example"),
      name_of("z.a.example"),   name_of("zabc.a.example"), name_of("z.example"),
  };
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    EXPECT_LT(sorted[i], sorted[i + 1])
        << sorted[i].to_string() << " !< " << sorted[i + 1].to_string();
  }
}

TEST(Name, OrderingCaseInsensitive) {
  EXPECT_EQ(name_of("A.B") <=> name_of("a.b"), std::strong_ordering::equal);
}

TEST(Name, RandomWireRoundTripProperty) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::string> labels;
    auto count = 1 + rng.next_below(6);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string label;
      auto len = 1 + rng.next_below(12);
      for (std::uint64_t j = 0; j < len; ++j)
        label += static_cast<char>('a' + rng.next_below(26));
      labels.push_back(std::move(label));
    }
    auto name = Name::from_labels(labels);
    ASSERT_TRUE(name.ok());
    util::ByteWriter w;
    name.value().encode(w);
    util::ByteReader r(std::span(w.data()));
    auto decoded = Name::decode(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), name.value());
  }
}

TEST(Name, FuzzDecodeNeverCrashes) {
  util::Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> wire(rng.next_below(40));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next_below(256));
    util::ByteReader r{std::span(wire)};
    (void)Name::decode(r);  // must not crash or loop
  }
}

}  // namespace
}  // namespace sns::dns
