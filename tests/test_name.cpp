// Tests for dns::Name: parsing, wire form, compression, ordering.
#include <gtest/gtest.h>

#include <cctype>
#include <compare>

#include "dns/name.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sns::dns {
namespace {

TEST(Name, ParseBasics) {
  auto n = Name::parse("mic.oval-office.loc");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value().label_count(), 3u);
  EXPECT_EQ(n.value().labels()[0], "mic");
  EXPECT_EQ(n.value().to_string(), "mic.oval-office.loc");
}

TEST(Name, TrailingDotIgnored) {
  auto a = Name::parse("a.b.");
  auto b = Name::parse("a.b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(Name, Root) {
  auto root = Name::parse(".");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root.value().is_root());
  EXPECT_EQ(root.value().to_string(), ".");
  EXPECT_EQ(root.value().wire_length(), 1u);
}

TEST(Name, RejectsInvalid) {
  EXPECT_FALSE(Name::parse("").ok());
  EXPECT_FALSE(Name::parse("a..b").ok());
  EXPECT_FALSE(Name::parse(std::string(64, 'x') + ".com").ok());  // label > 63
  // Total > 255 octets.
  std::string big;
  for (int i = 0; i < 10; ++i) big += std::string(30, 'a') + ".";
  big += "com";
  EXPECT_FALSE(Name::parse(big).ok());
  EXPECT_FALSE(Name::parse("a b.com").ok());  // space in label
}

TEST(Name, CaseInsensitiveEquality) {
  EXPECT_EQ(name_of("Mic.OVAL-office.Loc"), name_of("mic.oval-office.loc"));
}

TEST(Name, SubdomainRelations) {
  Name device = name_of("mic.oval-office.1600.penn-ave.washington.dc.usa.loc");
  Name room = name_of("oval-office.1600.penn-ave.washington.dc.usa.loc");
  Name loc = name_of("loc");
  EXPECT_TRUE(device.is_subdomain_of(room));
  EXPECT_TRUE(device.is_subdomain_of(loc));
  EXPECT_TRUE(device.is_subdomain_of(device));
  EXPECT_TRUE(device.is_subdomain_of(Name{}));  // everything under root
  EXPECT_FALSE(room.is_subdomain_of(device));
  EXPECT_FALSE(name_of("xoval-office.loc").is_subdomain_of(name_of("oval-office.loc")));
}

TEST(Name, ParentPrependConcat) {
  Name room = name_of("oval-office.loc");
  EXPECT_EQ(room.parent(), name_of("loc"));
  auto mic = room.prepend("mic");
  ASSERT_TRUE(mic.ok());
  EXPECT_EQ(mic.value().to_string(), "mic.oval-office.loc");
  auto joined = name_of("mic").concat(room);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value(), mic.value());
  EXPECT_FALSE(room.prepend("bad label").ok());
}

TEST(Name, StripSuffix) {
  Name device = name_of("mic.oval-office.loc");
  auto relative = device.strip_suffix(name_of("oval-office.loc"));
  ASSERT_TRUE(relative.has_value());
  EXPECT_EQ(relative->to_string(), "mic");
  EXPECT_FALSE(device.strip_suffix(name_of("example.com")).has_value());
  auto self = device.strip_suffix(device);
  ASSERT_TRUE(self.has_value());
  EXPECT_TRUE(self->is_root());
}

TEST(Name, WireRoundTripUncompressed) {
  Name n = name_of("mic.oval-office.1600.penn-ave.washington.dc.usa.loc");
  util::ByteWriter w;
  n.encode(w);
  EXPECT_EQ(w.size(), n.wire_length());
  util::ByteReader r(std::span(w.data()));
  auto decoded = Name::decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), n);
  EXPECT_TRUE(r.exhausted());
}

TEST(Name, CompressionSharesSuffixes) {
  Name a = name_of("mic.oval-office.loc");
  Name b = name_of("speaker.oval-office.loc");
  util::ByteWriter w;
  NameCompressor compressor;
  a.encode(w, compressor);
  std::size_t after_first = w.size();
  b.encode(w, compressor);
  // Second name should be much shorter than its full wire form: one
  // label + a 2-byte pointer.
  EXPECT_EQ(w.size() - after_first, 1 + 7 + 2u);

  util::ByteReader r(std::span(w.data()));
  auto da = Name::decode(r);
  auto db = Name::decode(r);
  ASSERT_TRUE(da.ok() && db.ok());
  EXPECT_EQ(da.value(), a);
  EXPECT_EQ(db.value(), b);
}

TEST(Name, CompressionExactDuplicateIsOnePointer) {
  Name a = name_of("display.oval-office.loc");
  util::ByteWriter w;
  NameCompressor compressor;
  a.encode(w, compressor);
  std::size_t after_first = w.size();
  a.encode(w, compressor);
  EXPECT_EQ(w.size() - after_first, 2u);
}

TEST(Name, DecodeRejectsPointerLoops) {
  // A pointer pointing at itself.
  std::vector<std::uint8_t> wire{0xc0, 0x00};
  util::ByteReader r{std::span(wire)};
  EXPECT_FALSE(Name::decode(r).ok());
}

TEST(Name, DecodeRejectsTruncation) {
  std::vector<std::uint8_t> wire{5, 'a', 'b'};  // label claims 5 bytes, has 2
  util::ByteReader r{std::span(wire)};
  EXPECT_FALSE(Name::decode(r).ok());
  std::vector<std::uint8_t> no_terminator{1, 'a'};
  util::ByteReader r2{std::span(no_terminator)};
  EXPECT_FALSE(Name::decode(r2).ok());
}

TEST(Name, DecodeRejectsReservedLabelTypes) {
  std::vector<std::uint8_t> wire{0x80, 'a', 0};  // 10xxxxxx reserved
  util::ByteReader r{std::span(wire)};
  EXPECT_FALSE(Name::decode(r).ok());
}

TEST(Name, CanonicalOrdering) {
  // RFC 4034 §6.1 example ordering.
  std::vector<Name> sorted{
      name_of("example"),       name_of("a.example"),     name_of("yljkjljk.a.example"),
      name_of("z.a.example"),   name_of("zabc.a.example"), name_of("z.example"),
  };
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    EXPECT_LT(sorted[i], sorted[i + 1])
        << sorted[i].to_string() << " !< " << sorted[i + 1].to_string();
  }
}

TEST(Name, OrderingCaseInsensitive) {
  EXPECT_EQ(name_of("A.B") <=> name_of("a.b"), std::strong_ordering::equal);
}

TEST(Name, RandomWireRoundTripProperty) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::string> labels;
    auto count = 1 + rng.next_below(6);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string label;
      auto len = 1 + rng.next_below(12);
      for (std::uint64_t j = 0; j < len; ++j)
        label += static_cast<char>('a' + rng.next_below(26));
      labels.push_back(std::move(label));
    }
    auto name = Name::from_labels(labels);
    ASSERT_TRUE(name.ok());
    util::ByteWriter w;
    name.value().encode(w);
    util::ByteReader r(std::span(w.data()));
    auto decoded = Name::decode(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), name.value());
  }
}

// --- Packed representation vs the label-by-label reference ------------------
//
// The packed key (lowercased wire bytes + offsets + cached hash) must be
// observationally identical to the original per-character tolower
// semantics. The reference comparator below *is* that original
// implementation; the property tests drive both over random deep names.

std::strong_ordering reference_compare(const Name& a, const Name& b) {
  std::size_t na = a.labels().size(), nb = b.labels().size();
  std::size_t common = std::min(na, nb);
  for (std::size_t i = 1; i <= common; ++i) {
    const std::string& la = a.labels()[na - i];
    const std::string& lb = b.labels()[nb - i];
    std::size_t len = std::min(la.size(), lb.size());
    for (std::size_t j = 0; j < len; ++j) {
      auto ca = static_cast<unsigned char>(std::tolower(static_cast<unsigned char>(la[j])));
      auto cb = static_cast<unsigned char>(std::tolower(static_cast<unsigned char>(lb[j])));
      if (ca != cb) return ca <=> cb;
    }
    if (la.size() != lb.size()) return la.size() <=> lb.size();
  }
  return na <=> nb;
}

Name random_name(util::Rng& rng, bool mixed_case) {
  std::vector<std::string> labels;
  auto count = 1 + rng.next_below(8);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string label;
    auto len = 1 + rng.next_below(10);
    for (std::uint64_t j = 0; j < len; ++j) {
      // Small alphabet so random pairs share prefixes/suffixes often.
      char c = static_cast<char>('a' + rng.next_below(4));
      if (mixed_case && rng.chance(0.5))
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      label += c;
    }
    labels.push_back(std::move(label));
  }
  auto name = Name::from_labels(std::move(labels));
  EXPECT_TRUE(name.ok());
  return std::move(name).value();
}

TEST(NamePacked, OrderingAgreesWithReferenceProperty) {
  util::Rng rng(4034);
  for (int trial = 0; trial < 4000; ++trial) {
    Name a = random_name(rng, true);
    Name b = random_name(rng, true);
    EXPECT_EQ(a <=> b, reference_compare(a, b))
        << a.to_string() << " vs " << b.to_string();
    EXPECT_EQ(a == b, reference_compare(a, b) == std::strong_ordering::equal);
    EXPECT_EQ(a <=> a, std::strong_ordering::equal);
  }
}

TEST(NamePacked, HashEqualityMatchesNameEquality) {
  util::Rng rng(1035);
  for (int trial = 0; trial < 2000; ++trial) {
    Name a = random_name(rng, true);
    // A case-mangled copy of `a`: equal name, must hash equal.
    std::vector<std::string> mangled;
    for (const auto& label : a.labels()) {
      std::string copy = label;
      for (auto& c : copy)
        if (rng.chance(0.5)) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      mangled.push_back(std::move(copy));
    }
    Name b = Name::from_labels(std::move(mangled)).value();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(std::hash<Name>{}(a), a.hash());

    // Unequal names: hashes may collide in principle but a systematic
    // collision would break every hashed container; check disagreement
    // implies inequality rather than the (unprovable) converse.
    Name c = random_name(rng, true);
    if (a.hash() != c.hash()) {
      EXPECT_NE(a, c);
    }
  }
}

TEST(NamePacked, PackedSuffixMatchesParentChain) {
  Name device = name_of("Mic.Oval-Office.1600.Penn-Ave.Washington.DC.USA.Loc");
  Name walk = device;
  for (std::size_t i = 0; i < device.label_count(); ++i) {
    EXPECT_EQ(device.packed_suffix(i), walk.packed());
    walk = walk.parent();
  }
  EXPECT_EQ(device.packed_suffix(device.label_count()), std::string_view{});
  EXPECT_TRUE(device.packed().find("mic") != std::string_view::npos);  // lowercased
}

TEST(NamePacked, SubdomainAgreesWithReferenceProperty) {
  util::Rng rng(1918);
  auto reference_subdomain = [](const Name& sub, const Name& anc) {
    if (anc.labels().size() > sub.labels().size()) return false;
    std::size_t offset = sub.labels().size() - anc.labels().size();
    for (std::size_t i = 0; i < anc.labels().size(); ++i)
      if (util::to_lower(sub.labels()[offset + i]) != util::to_lower(anc.labels()[i]))
        return false;
    return true;
  };
  for (int trial = 0; trial < 2000; ++trial) {
    Name a = random_name(rng, true);
    Name b = random_name(rng, true);
    EXPECT_EQ(a.is_subdomain_of(b), reference_subdomain(a, b))
        << a.to_string() << " under " << b.to_string();
    // Every tail of `a` is an ancestor of `a`.
    for (Name n = a; !n.is_root(); n = n.parent()) EXPECT_TRUE(a.is_subdomain_of(n));
  }
}

TEST(NamePacked, WireLengthMatchesEncodedSize) {
  util::Rng rng(255);
  for (int trial = 0; trial < 500; ++trial) {
    Name n = random_name(rng, true);
    util::ByteWriter w;
    n.encode(w);
    EXPECT_EQ(n.wire_length(), w.size());
    EXPECT_EQ(n.packed().size() + 1, w.size());
  }
}

TEST(Name, FuzzDecodeNeverCrashes) {
  util::Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> wire(rng.next_below(40));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next_below(256));
    util::ByteReader r{std::span(wire)};
    (void)Name::decode(r);  // must not crash or loop
  }
}

}  // namespace
}  // namespace sns::dns
