// SnapshotStore concurrency tests: the RCU-lite primitive under the
// multi-core serving runtime. The hammer tests are the point — many
// reader threads acquiring while a writer republishes as fast as it
// can — and they are what the ThreadSanitizer CI job watches: a torn
// pointer, a freed snapshot or a lost update shows up here first.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/snapshot.hpp"
#include "server/zone.hpp"

namespace sns::runtime {
namespace {

// A snapshot whose fields are self-checking: `twin` is always derived
// from `serial` before publication, so a reader observing the pair out
// of sync has seen a torn or half-built snapshot.
struct Checked {
  std::uint64_t serial = 0;
  std::uint64_t twin = 1;  // 2 * serial + 1, always

  static std::shared_ptr<const Checked> make(std::uint64_t serial) {
    auto snap = std::make_shared<Checked>();
    snap->serial = serial;
    snap->twin = 2 * serial + 1;
    return snap;
  }
  [[nodiscard]] bool consistent() const { return twin == 2 * serial + 1; }
};

TEST(SnapshotStore, StartsEmptyWithGenerationZero) {
  SnapshotStore<Checked> store;
  EXPECT_EQ(store.acquire(), nullptr);
  EXPECT_EQ(store.generation(), 0u);
}

TEST(SnapshotStore, InitialSnapshotConstructorPublishes) {
  SnapshotStore<Checked> store(Checked::make(7));
  ASSERT_NE(store.acquire(), nullptr);
  EXPECT_EQ(store.acquire()->serial, 7u);
  EXPECT_EQ(store.generation(), 1u);
}

TEST(SnapshotStore, PublishReplacesAndBumpsGeneration) {
  SnapshotStore<Checked> store;
  EXPECT_EQ(store.publish(Checked::make(1)), 1u);
  EXPECT_EQ(store.publish(Checked::make(2)), 2u);
  EXPECT_EQ(store.acquire()->serial, 2u);
  EXPECT_EQ(store.generation(), 2u);
}

TEST(SnapshotStore, AcquiredSnapshotOutlivesReplacement) {
  SnapshotStore<Checked> store;
  store.publish(Checked::make(1));
  auto pinned = store.acquire();
  store.publish(Checked::make(2));
  // The old generation stays alive (and intact) for as long as some
  // reader holds it — the RCU grace period via refcount.
  EXPECT_EQ(pinned->serial, 1u);
  EXPECT_TRUE(pinned->consistent());
  EXPECT_EQ(store.acquire()->serial, 2u);
}

TEST(SnapshotStore, HammerReadersNeverSeeTornOrStaleReorderedState) {
  // One writer republishing flat out; several readers acquiring in a
  // tight loop. Every acquired snapshot must be internally consistent
  // and serials must be monotone per reader (a snapshot can be stale,
  // but time cannot run backwards).
  SnapshotStore<Checked> store;
  store.publish(Checked::make(0));

  constexpr int kReaders = 4;
  constexpr std::uint64_t kWrites = 4000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn{0}, regressed{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r)
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = store.acquire();
        if (snap == nullptr || !snap->consistent()) torn.fetch_add(1);
        if (snap != nullptr && snap->serial < last) regressed.fetch_add(1);
        if (snap != nullptr) last = snap->serial;
      }
    });

  for (std::uint64_t i = 1; i <= kWrites; ++i) store.publish(Checked::make(i));
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(regressed.load(), 0u);
  EXPECT_EQ(store.generation(), kWrites + 1);
  EXPECT_EQ(store.acquire()->serial, kWrites);
}

TEST(SnapshotStore, ConcurrentUpdatesComposeInsteadOfLosingWork) {
  // update() is read-modify-write under the writer mutex: two threads
  // each incrementing the serial K times must land on exactly 2K.
  SnapshotStore<Checked> store;
  store.publish(Checked::make(0));

  constexpr std::uint64_t kPerThread = 2000;
  auto bump = [&] {
    for (std::uint64_t i = 0; i < kPerThread; ++i)
      store.update([](const SnapshotStore<Checked>::Ptr& cur) {
        return Checked::make(cur->serial + 1);
      });
  };
  std::thread a(bump), b(bump);
  a.join();
  b.join();

  EXPECT_EQ(store.acquire()->serial, 2 * kPerThread);
  EXPECT_EQ(store.generation(), 2 * kPerThread + 1);
}

TEST(SnapshotStore, UpdateReturningNullAbortsWithoutPublishing) {
  // The refused-dynamic-update path: a callback that returns nullptr
  // leaves the current snapshot and generation untouched.
  SnapshotStore<Checked> store;
  store.publish(Checked::make(5));

  std::uint64_t gen = store.update(
      [](const SnapshotStore<Checked>::Ptr&) -> SnapshotStore<Checked>::Ptr {
        return nullptr;
      });
  EXPECT_EQ(gen, 1u);
  EXPECT_EQ(store.generation(), 1u);
  EXPECT_EQ(store.acquire()->serial, 5u);
}

TEST(SnapshotStore, PublishAndUpdateSerialiseWithoutLostWork) {
  // The reload-vs-dynamic-update race: one thread republishing
  // wholesale (SIGHUP reload shape) while another read-modify-writes
  // through update() (RFC 2136 shape). Because both writers hold the
  // store's writer mutex across their whole step, every update()
  // increment lands on whatever snapshot is current at that moment —
  // an update can never publish a successor built from a snapshot a
  // concurrent publish() already replaced.
  SnapshotStore<Checked> store;
  store.publish(Checked::make(0));

  constexpr std::uint64_t kUpdates = 2000;
  constexpr std::uint64_t kReloadBase = 1u << 20;
  std::atomic<bool> stop{false};

  std::thread reloader([&] {
    // do-while: at least one reload is guaranteed, so the final
    // snapshot always has a reload in its history regardless of how
    // the scheduler interleaves the threads.
    std::uint64_t i = 0;
    do {
      store.publish(Checked::make(kReloadBase + (i++ % 16) * kReloadBase));
    } while (!stop.load(std::memory_order_acquire));
  });
  for (std::uint64_t i = 0; i < kUpdates; ++i)
    store.update([](const SnapshotStore<Checked>::Ptr& cur) {
      return Checked::make(cur->serial + 1);
    });
  stop.store(true, std::memory_order_release);
  reloader.join();

  // The final serial must be a reload base plus however many updates
  // landed after that reload — an update applied to a stale
  // pre-reload snapshot would publish a small serial that silently
  // reverted the reload.
  auto last = store.acquire();
  EXPECT_TRUE(last->consistent());
  EXPECT_GE(last->serial, kReloadBase);
  EXPECT_LE(last->serial % kReloadBase, kUpdates);
}

TEST(SnapshotStore, ZoneViewReadersVsCommittersHammer) {
  // The immutable-zone redesign under its intended load: reader
  // threads run real lookups on acquired ZoneViews while a committer
  // chains ZoneTxn commits through the store flat out. Structural
  // sharing means almost every node a reader walks is also reachable
  // from the committer's successor views — the TSan CI job watches
  // this for a write to shared structure.
  using server::Zone;
  using server::ZoneTxn;
  using server::ZoneView;
  const auto apex = dns::name_of("hammer.loc");
  auto dev = [&](std::uint64_t i) {
    return dns::name_of("dev" + std::to_string(i) + ".hammer.loc");
  };

  constexpr std::uint64_t kDevices = 64;
  server::ZoneBuilder builder(apex);
  ASSERT_TRUE(builder.add(dns::make_soa(apex, dns::name_of("ns.hammer.loc"), 1)).ok());
  for (std::uint64_t i = 0; i < kDevices; ++i)
    ASSERT_TRUE(builder.add(dns::make_txt(dev(i), {"home-0"})).ok());
  auto initial = std::move(builder).build();
  ASSERT_TRUE(initial.ok());

  SnapshotStore<ZoneView> store(initial.value());

  constexpr int kReaders = 4;
  constexpr std::uint64_t kCommits = 2000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> bad_lookups{0}, serial_regressions{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r)
    readers.emplace_back([&, r] {
      std::uint32_t last_serial = 0;
      std::uint64_t i = static_cast<std::uint64_t>(r);
      while (!done.load(std::memory_order_acquire)) {
        auto view = store.acquire();
        auto hit = view->lookup(dev(i++ % kDevices), dns::RRType::TXT);
        if (hit.kind != ZoneView::Lookup::Kind::Success || hit.records.size() != 1)
          bad_lookups.fetch_add(1);
        std::uint32_t serial = view->serial();
        if (serial < last_serial) serial_regressions.fetch_add(1);
        last_serial = serial;
      }
    });

  // Each commit re-homes one device: delete its TXT RRset, add the new
  // home — the RFC 2136 mobility op, serial bumped by the commit.
  for (std::uint64_t i = 0; i < kCommits; ++i) {
    store.update([&](const SnapshotStore<ZoneView>::Ptr& cur) {
      ZoneTxn txn(cur);
      txn.remove_rrset(dev(i % kDevices), dns::RRType::TXT);
      EXPECT_TRUE(txn.add(dns::make_txt(dev(i % kDevices), {"home-" + std::to_string(i)})).ok());
      return std::move(txn).commit().view;
    });
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(bad_lookups.load(), 0u);
  EXPECT_EQ(serial_regressions.load(), 0u);
  auto final_view = store.acquire();
  EXPECT_EQ(final_view->serial(), 1u + kCommits);
  EXPECT_EQ(final_view->record_count(), 1u + kDevices);
}

}  // namespace
}  // namespace sns::runtime
