// sensor_field.cpp — environmental sensor management (§4.4, Fig. 5).
//
// A camera-trap field in a Costa Rican rainforest: no global Internet,
// a LoRa gateway and a solar-powered edge nameserver. Demonstrates:
//   * zero-conf spatial naming of sensors dropped into the field,
//   * local-only resolution while the uplink is down (offline-first),
//   * geodetic queries ("which traps are in this valley?"),
//   * signed sensor readings: SSHFP-provisioned keys + RRSIG-signed
//     zone data, so readings can be authenticated later (§4.4: "the
//     devices could sign their readings using certificates issued from
//     the spatial name"),
//   * delayed sync: the uplink comes up for a satellite window and the
//     zone becomes globally resolvable.
#include <cstdio>

#include "core/deployment.hpp"
#include "dns/dnssec.hpp"
#include "positioning/gnss.hpp"
#include "util/rng.hpp"

using namespace sns;

int main() {
  std::printf("Environmental sensor field — Monteverde cloud forest\n\n");

  core::SnsDeployment d(1001);
  auto civic =
      core::CivicName::from_components({"cr", "puntarenas", "monteverde", "sensor-field"})
          .value();
  geo::BoundingBox field{10.300, -84.820, 10.320, -84.790};
  core::ZoneOptions options;
  options.index = core::IndexKind::RTree;  // sparse devices: R-tree (§3.2)
  options.network_boundary = true;
  options.uplink = net::wan_link(net::ms(600), 0.02);  // satellite hop
  core::ZoneSite& site = d.add_zone(civic, field, nullptr, options);

  // The uplink is *normally down*; it opens for short windows.
  d.network().set_link_down(site.ns_node, d.loc_node(), true);

  // Drop 8 camera traps into the field; each takes a (noisy) GNSS fix
  // under forest canopy and registers itself with zero configuration.
  positioning::GnssProvider gnss(55, positioning::SkyCondition::Urban);  // canopy ~ urban
  util::Rng rng(3);
  std::vector<dns::Name> traps;
  for (int i = 0; i < 8; ++i) {
    geo::GeoPoint truth{rng.next_double(10.301, 10.319), rng.next_double(-84.819, -84.791),
                        1400.0};
    auto fix = gnss.locate(truth);
    core::Device trap;
    trap.function = "camera-trap";
    trap.local_addresses = {net::LoraDevAddr{0x2601u + static_cast<std::uint32_t>(i)}};
    trap.position = fix.has_value() ? fix->position : truth;  // manual fallback
    trap.position_accuracy_m = fix.has_value() ? fix->accuracy_m : 0.5;
    auto name = d.add_device(site, trap);
    if (name.ok()) traps.push_back(name.value());
  }
  std::printf("registered %zu camera traps, e.g. %s\n", traps.size(),
              traps.front().to_string().c_str());

  // Provision each trap's signing key via SSHFP and sign the zone data.
  dns::ZoneKey zone_key{site.zone->domain(), {0xc0, 0xff, 0xee}};
  site.server->set_zone_key(zone_key, [&d] { return d.seconds_now(); });
  for (std::size_t i = 0; i < traps.size(); ++i) {
    dns::SshfpData fp{4, 2, {static_cast<std::uint8_t>(i), 0xaa, 0xbb}};
    (void)site.zone->local_zone()->add(
        dns::ResourceRecord{traps[i], dns::RRType::SSHFP, dns::RRClass::IN, 3600, fp});
  }

  // A ranger's handheld on the field LAN: resolution works offline.
  net::NodeId handheld = d.add_client("ranger-handheld", site, true);
  auto stub = d.make_stub(handheld, site);
  auto lora = stub.resolve("camera-trap", dns::RRType::LORA);
  std::printf("\noffline resolution of 'camera-trap' (uplink is DOWN):\n");
  if (lora.ok() && !lora.value().records.empty()) {
    std::printf("  %s\n", lora.value().records.front().to_string().c_str());
    if (lora.value().records.size() > 1 &&
        lora.value().records.back().type == dns::RRType::RRSIG)
      std::printf("  answer is RRSIG-signed (authenticated even off-grid)\n");
  }

  // Geodetic query: which traps sit in the western half of the field?
  geo::BoundingBox west{10.300, -84.820, 10.320, -84.805};
  auto western = site.zone->devices_in(west);
  std::printf("\ntraps in the western valley: %zu of %zu\n", western.size(), traps.size());
  for (const auto& name : western) std::printf("  %s\n", name.to_string().c_str());

  // A trap fails and is swapped for a spare: the name — and therefore
  // every downstream reference — survives; only the key changes.
  core::Device spare;
  spare.local_addresses = {net::LoraDevAddr{0x2699}};
  auto swapped = core::replace_device(*site.zone, traps.front(), spare);
  std::printf("\nhardware swap of %s: %s\n", traps.front().to_string().c_str(),
              swapped.ok() ? "name retained" : swapped.error().message.c_str());

  // Satellite window: uplink up, the field becomes globally queryable.
  d.network().set_link_down(site.ns_node, d.loc_node(), false);
  net::NodeId scientist = d.add_client("lab-in-london", site, false);
  auto iterative = d.make_iterative(scientist);
  auto remote = iterative.resolve(traps.back(), dns::RRType::ANY);
  std::printf("\nsatellite window open — remote lab resolves %s: %s (%.0f ms over %d queries)\n",
              traps.back().to_string().c_str(),
              remote.ok() ? dns::to_string(remote.value().stats.rcode).c_str() : "failed",
              remote.ok()
                  ? std::chrono::duration<double, std::milli>(remote.value().stats.latency).count()
                  : 0.0,
              remote.ok() ? remote.value().stats.queries_sent : 0);
  std::printf("(the traps are LoRa-only: nothing is published in the global view,\n"
              " so outsiders get NXDOMAIN — existence itself stays private, Sec 4.2)\n");
  return 0;
}
