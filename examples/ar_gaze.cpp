// ar_gaze.cpp — spatial names for augmented reality (§1, §4.4, Fig. 1).
//
// Simulates an AR headset in the Oval Office: the wearer's gaze sweeps
// the room at 60 Hz; every fixation becomes a geodetic point query
// ("what am I looking at?") against the room's edge nameserver, and the
// answer's spatial name is then resolved to the best local address
// (lowest connectivity rank, §2.2). The paper substitutes a HoloLens
// with this synthetic gaze source — the code path is identical.
#include <algorithm>
#include <cstdio>

#include "core/deployment.hpp"
#include "util/rng.hpp"

using namespace sns;

namespace {

double to_ms(net::Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

int main() {
  std::printf("AR gaze demo — 120 fixations at 60 Hz in the Oval Office\n\n");
  auto world = core::make_white_house_world(2026);
  auto& d = *world.deployment;

  net::NodeId headset = d.add_client("hololens", *world.oval_office, true);
  auto stub = d.make_stub(headset, *world.oval_office);
  resolver::DnsCache cache;
  stub.set_cache(&cache);
  world.oval_office->beacon->chirp();  // prove presence once

  // Gaze targets: the true device positions, plus fixations on empty
  // wall. The headset's pose estimate carries ~10 cm of noise.
  struct Target {
    const char* label;
    geo::GeoPoint point;
  };
  std::vector<Target> targets{
      {"mic", {38.897291, -77.037399, 18.0}},
      {"speaker", {38.897305, -77.037370, 18.0}},
      {"display", {38.897320, -77.037340, 18.5}},
      {"empty wall", {38.897255, -77.037440, 18.0}},
  };

  util::Rng rng(7);
  std::vector<double> lookup_ms;
  int resolved = 0, misses = 0;
  constexpr double kPoseNoiseDeg = 0.0000009;  // ~10 cm

  for (int fixation = 0; fixation < 120; ++fixation) {
    const Target& target = targets[rng.next_below(targets.size())];
    geo::GeoPoint gaze = target.point;
    gaze.latitude += rng.next_gaussian(0, kPoseNoiseDeg);
    gaze.longitude += rng.next_gaussian(0, kPoseNoiseDeg);

    // Stage 1: geodetic resolution, room-local (the headset asks its
    // own room's nameserver directly, not the global hierarchy).
    auto area = geo::BoundingBox::around(gaze, 0.0000045);  // ~50 cm gaze cone
    auto qname = core::encode_geo_query(area, world.oval_office->zone->domain());
    if (!qname.ok()) continue;
    net::TimePoint t0 = d.network().clock().now();
    auto geo_answer = stub.resolve(qname.value(), dns::RRType::PTR);
    if (!geo_answer.ok() || geo_answer.value().records.empty()) {
      lookup_ms.push_back(to_ms(d.network().clock().now() - t0));
      ++misses;
      continue;
    }
    const auto* ptr = std::get_if<dns::PtrData>(&geo_answer.value().records.front().rdata);
    if (ptr == nullptr) continue;

    // Stage 2: resolve the spatial name to the best local address.
    auto any = stub.resolve(ptr->target, dns::RRType::ANY);
    net::Duration total = d.network().clock().now() - t0;
    lookup_ms.push_back(to_ms(total));
    if (any.ok() && any.value().stats.rcode == dns::Rcode::NoError) {
      ++resolved;
      if (fixation < 6) {
        std::printf("fixation %2d: %-10s -> %-55s %6.2f ms%s\n", fixation, target.label,
                    ptr->target.to_string().c_str(), to_ms(total),
                    any.value().stats.from_cache ? " (cached)" : "");
      }
    }
  }

  std::sort(lookup_ms.begin(), lookup_ms.end());
  auto percentile = [&](double p) {
    return lookup_ms[static_cast<std::size_t>(p * static_cast<double>(lookup_ms.size() - 1))];
  };
  std::printf("\n%d fixations resolved to a device, %d on empty space\n", resolved, misses);
  std::printf("gaze-to-address latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
              percentile(0.50), percentile(0.95), percentile(0.99));
  std::printf("cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));
  std::printf("\nAt 60 Hz a frame budget is 16.7 ms — %s\n",
              percentile(0.95) < 16.7 ? "the SNS fits in a single frame (p95)."
                                      : "lookups exceed one frame at p95.");
  return 0;
}
