// quickstart.cpp — the SNS in one file.
//
// Builds the paper's White House / Downing Street world (Figures 2-3),
// then walks through the core ideas:
//   1. relative spatial names completed by the resolver (§2.1),
//   2. split-horizon resolution: BDADDR inside, AAAA outside (§3.1),
//   3. presence-protected devices (§3.1),
//   4. geodetic resolution: coordinates -> names (§3.2),
//   5. TXT fallback for extended record types (§2.2).
//
// Everything runs on a deterministic simulator; latencies are virtual.
#include <cstdio>

#include "core/deployment.hpp"
#include "core/selection.hpp"
#include "dns/rdata.hpp"

using namespace sns;

namespace {

void show(const char* heading) { std::printf("\n== %s ==\n", heading); }

void show_records(const dns::RRset& records) {
  for (const auto& rr : records) std::printf("  %s\n", rr.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Spatial Name System quickstart\n");
  auto world = core::make_white_house_world(/*seed=*/42);
  auto& d = *world.deployment;

  // --- 1. A device inside the Oval Office resolves a *relative* name.
  show("1. relative spatial name, resolved from inside the room");
  net::NodeId inside = d.add_client("tablet@oval-office", *world.oval_office, /*inside=*/true);
  auto stub = d.make_stub(inside, *world.oval_office);
  auto speaker = stub.resolve("speaker", dns::RRType::BDADDR);
  if (speaker.ok()) {
    std::printf("  query 'speaker' completed to %s\n",
                speaker.value().effective_name.to_string().c_str());
    show_records(speaker.value().records);
    std::printf("  latency: %lld us (virtual)\n",
                static_cast<long long>(speaker.value().stats.latency.count()));
  }

  // --- 2. Split horizon: the same display name, inside vs outside.
  show("2. split-horizon resolution of the display");
  auto display_local = stub.resolve(world.display, dns::RRType::ANY);
  std::printf("  inside the Oval Office:\n");
  if (display_local.ok()) {
    show_records(display_local.value().records);
    // §2.2: pick the most appropriate connectivity option before
    // committing to any one mechanism.
    auto best = core::choose_address(display_local.value().records);
    if (best.has_value())
      std::printf("  -> connect via %s (%s): most-local option wins\n",
                  std::string(net::family_name(best->address)).c_str(),
                  net::to_string(best->address).c_str());
  }

  net::NodeId outside = d.add_client("laptop@internet", *world.cabinet_room, /*inside=*/false);
  auto outside_stub = d.make_stub(outside, *world.oval_office);
  auto display_global = outside_stub.resolve(world.display, dns::RRType::AAAA);
  std::printf("  from the public internet:\n");
  if (display_global.ok()) show_records(display_global.value().records);

  // --- 3. The microphone only resolves with proof of presence.
  show("3. presence-protected microphone");
  auto mic_outside = outside_stub.resolve(world.mic, dns::RRType::ANY);
  if (mic_outside.ok())
    std::printf("  outsider asking for the mic: %s\n",
                dns::to_string(mic_outside.value().stats.rcode).c_str());
  world.oval_office->beacon->chirp();  // room beacon proves co-location
  auto mic_inside = stub.resolve(world.mic, dns::RRType::BDADDR);
  if (mic_inside.ok()) {
    std::printf("  insider (heard the chirp): %s\n",
                dns::to_string(mic_inside.value().stats.rcode).c_str());
    show_records(mic_inside.value().records);
  }

  // --- 4. Geodetic resolution: which devices are at these coordinates?
  show("4. geodetic resolution (38.8973 N, 77.0374 W)");
  auto geo_client = d.make_geodetic_client(outside);
  auto found = geo_client.resolve_point({38.89730, -77.03740, 18.0}, 0.0002);
  if (found.ok()) {
    for (const auto& name : found.value().names) std::printf("  %s\n", name.to_string().c_str());
    std::printf("  descent: %d zones, max fan-out %d, %lld us\n", found.value().zones_visited,
                found.value().fanout_max,
                static_cast<long long>(found.value().latency.count()));
  }

  // --- 5. Extended records survive middleboxes via TXT fallback.
  show("5. TXT fallback for a BDADDR record");
  if (speaker.ok() && !speaker.value().records.empty()) {
    auto fallback = dns::to_txt_fallback(speaker.value().records.front().rdata);
    if (fallback.ok()) {
      std::printf("  TXT form: \"%s\"\n", fallback.value().strings.front().c_str());
      auto recovered = dns::from_txt_fallback(fallback.value());
      if (recovered.ok())
        std::printf("  recovered: %s %s\n", dns::to_string(recovered.value().first).c_str(),
                    dns::rdata_to_string(recovered.value().second).c_str());
    }
  }

  std::printf("\ndone.\n");
  return 0;
}
