// smart_home.cpp — urban device management (§4.4).
//
// "The SNS offers the possibility of separating the management of
// device functions ('living room light') from the address management of
// those devices on local networks. … they can be operated locally in an
// offline-first manner via a direct wireless connection."
//
// A two-room flat: lights, a thermostat and a TV. Shows function-based
// naming, offline-first local control, NAT'd global access created as a
// resolution side-effect (PCP, §3.1) with TTL-bound lifetime, and a
// device moving rooms (CNAME mobility).
#include <cstdio>

#include "core/deployment.hpp"
#include "core/mobility.hpp"
#include "net/nat.hpp"

using namespace sns;

int main() {
  std::printf("Smart home demo — 12 Elm Street\n\n");

  core::SnsDeployment d(7331);
  auto home = core::CivicName::from_components({"uk", "cambridge", "elm-street", "12"}).value();
  core::ZoneOptions home_options;
  home_options.network_boundary = true;  // the home router's NAT
  core::ZoneSite& house = d.add_zone(home, geo::BoundingBox{52.2050, 0.1210, 52.2054, 0.1216},
                                     nullptr, home_options);
  core::ZoneOptions room_options;
  room_options.is_room = true;
  room_options.uplink = net::lan_link();
  core::ZoneSite& living_room = d.add_zone(home.child("living-room").value(),
                                           geo::BoundingBox{52.2050, 0.1210, 52.2052, 0.1216},
                                           &house, room_options);
  core::ZoneSite& bedroom = d.add_zone(home.child("bedroom").value(),
                                       geo::BoundingBox{52.2052, 0.1210, 52.2054, 0.1216},
                                       &house, room_options);

  auto add = [&](core::ZoneSite& room, const char* function, net::AnyAddress address,
                 double lat, double lon) {
    core::Device device;
    device.function = function;
    device.local_addresses = {std::move(address), net::Ipv4Addr{{192, 168, 1, 50}}};
    device.position = {lat, lon, 8.0};
    return d.add_device(room, device);
  };
  auto light = add(living_room, "Ceiling Light", net::ZigbeeAddr{{1, 2, 3, 4, 5, 6, 7, 8}},
                   52.20510, 0.12130);
  auto tv = add(living_room, "TV", net::Bdaddr{{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}},
                52.20512, 0.12145);
  auto thermostat = add(bedroom, "Thermostat", net::DtmfTone{"88#"}, 52.20530, 0.12120);
  if (!light.ok() || !tv.ok() || !thermostat.ok()) return 1;
  std::printf("devices named by function within their spatial domain:\n");
  for (const auto& name : {light.value(), tv.value(), thermostat.value()})
    std::printf("  %s\n", name.to_string().c_str());

  // Offline-first: cut the WAN, control the light from a phone on the
  // home network via its Zigbee address (TXT fallback encoding).
  d.network().set_link_down(house.ns_node, d.loc_node(), true);
  net::NodeId phone = d.add_client("phone", living_room, true);
  auto stub = d.make_stub(phone, living_room);
  auto zigbee = stub.resolve("ceiling-light", dns::RRType::TXT);
  std::printf("\nWAN down; phone resolves 'ceiling-light' locally:\n");
  if (zigbee.ok() && !zigbee.value().records.empty())
    std::printf("  %s\n", zigbee.value().records.front().to_string().c_str());
  d.network().set_link_down(house.ns_node, d.loc_node(), false);

  // Remote access: resolving the TV from outside triggers a PCP mapping
  // on the home NAT; its lifetime is exactly the answer's TTL.
  net::NatBox nat(net::Ipv4Addr{{203, 0, 113, 7}});
  std::uint32_t ttl = 120;
  auto mapping = nat.request_mapping(/*node=*/1, /*port=*/8009, std::chrono::seconds(ttl),
                                     d.network().clock().now());
  if (mapping.ok()) {
    // The external view can now answer with the NAT'd endpoint.
    (void)house.zone->global_zone()->add(dns::make_a(
        tv.value(), mapping.value().external_ip, ttl));
    std::printf("\nresolution side-effect (§3.1): NAT mapping %s:%u -> TV, lifetime = TTL %us\n",
                mapping.value().external_ip.to_string().c_str(),
                mapping.value().external_port, ttl);
    auto now = d.network().clock().now();
    bool live_now = nat.translate(mapping.value().external_port, now).has_value();
    bool live_after =
        nat.translate(mapping.value().external_port, now + std::chrono::seconds(ttl + 1))
            .has_value();
    std::printf("  mapping live now: %s; after TTL expiry: %s\n", live_now ? "yes" : "no",
                live_after ? "yes (BUG)" : "no (expired with the answer)");
  }

  // Mobility: the TV moves to the bedroom; the old name forwards.
  auto report = core::move_device(*living_room.zone, *bedroom.zone, tv.value());
  if (report.ok()) {
    std::printf("\nTV moved to the bedroom:\n  new name: %s\n",
                report.value().new_name.to_string().c_str());
    auto old_name = stub.resolve(tv.value(), dns::RRType::BDADDR);
    if (old_name.ok() && !old_name.value().records.empty() &&
        old_name.value().records.front().type == dns::RRType::CNAME)
      std::printf("  old name still answers: CNAME -> %s\n",
                  dns::rdata_to_string(old_name.value().records.front().rdata).c_str());
  }

  // Function-based replacement: a dead bulb is swapped; 'ceiling-light'
  // keeps working for every automation that referenced it.
  core::Device new_bulb;
  new_bulb.local_addresses = {net::ZigbeeAddr{{8, 7, 6, 5, 4, 3, 2, 1}}};
  auto swapped = core::replace_device(*living_room.zone, light.value(), new_bulb);
  std::printf("\nbulb swapped: %s — automations referencing '%s' untouched\n",
              swapped.ok() ? "ok" : swapped.error().message.c_str(),
              light.value().to_string().c_str());
  return 0;
}
