#include "geo/rtree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace sns::geo {

struct RTree::Node {
  Node* parent = nullptr;
  bool leaf = true;
  BoundingBox box{};

  struct LeafEntry {
    EntryId id;
    BoundingBox box;
  };
  std::vector<LeafEntry> entries;              // when leaf
  std::vector<std::unique_ptr<Node>> children;  // when internal

  [[nodiscard]] std::size_t count() const { return leaf ? entries.size() : children.size(); }

  void recompute_box() {
    bool first = true;
    auto merge = [&](const BoundingBox& b) {
      box = first ? b : box.united(b);
      first = false;
    };
    if (leaf)
      for (const auto& e : entries) merge(e.box);
    else
      for (const auto& c : children) merge(c->box);
  }
};

RTree::RTree(std::size_t max_entries)
    : root_(std::make_unique<Node>()),
      max_entries_(std::max<std::size_t>(4, max_entries)),
      min_entries_(std::max<std::size_t>(2, max_entries / 2)) {}

RTree::~RTree() = default;

namespace {

double enlargement(const BoundingBox& box, const BoundingBox& add) {
  return box.united(add).area() - box.area();
}

}  // namespace

RTree::Node* RTree::choose_leaf(Node* node, const BoundingBox& box) const {
  while (!node->leaf) {
    Node* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::max();
    double best_area = std::numeric_limits<double>::max();
    for (const auto& child : node->children) {
      double grow = enlargement(child->box, box);
      double area = child->box.area();
      if (grow < best_enlargement || (grow == best_enlargement && area < best_area)) {
        best = child.get();
        best_enlargement = grow;
        best_area = area;
      }
    }
    node = best;
  }
  return node;
}

void RTree::adjust_upward(Node* node) {
  while (node != nullptr) {
    node->recompute_box();
    node = node->parent;
  }
}

void RTree::split_and_propagate(Node* node) {
  while (node != nullptr && node->count() > max_entries_) {
    // Quadratic split (Guttman §3.5.2) over either entry kind.
    auto box_of = [&](std::size_t i) -> const BoundingBox& {
      return node->leaf ? node->entries[i].box : node->children[i]->box;
    };
    std::size_t n = node->count();

    // Pick seeds: pair with maximal dead space.
    std::size_t seed_a = 0, seed_b = 1;
    double worst = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double dead = box_of(i).united(box_of(j)).area() - box_of(i).area() - box_of(j).area();
        if (dead > worst) {
          worst = dead;
          seed_a = i;
          seed_b = j;
        }
      }
    }

    auto sibling = std::make_unique<Node>();
    sibling->leaf = node->leaf;
    sibling->parent = node->parent;

    // Distribute members between node (group A) and sibling (group B).
    std::vector<int> group(n, -1);
    group[seed_a] = 0;
    group[seed_b] = 1;
    BoundingBox box_a = box_of(seed_a), box_b = box_of(seed_b);
    std::size_t count_a = 1, count_b = 1;
    std::size_t assigned = 2;
    while (assigned < n) {
      // Force the remainder into a group that must reach min fill.
      std::size_t remaining = n - assigned;
      int forced = -1;
      if (count_a + remaining == min_entries_) forced = 0;
      if (count_b + remaining == min_entries_) forced = 1;

      // Pick the unassigned member with the largest preference gap.
      std::size_t pick = n;
      double best_gap = -1.0;
      int pick_group = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (group[i] != -1) continue;
        double grow_a = enlargement(box_a, box_of(i));
        double grow_b = enlargement(box_b, box_of(i));
        double gap = grow_a > grow_b ? grow_a - grow_b : grow_b - grow_a;
        if (gap > best_gap) {
          best_gap = gap;
          pick = i;
          pick_group = forced != -1 ? forced : (grow_a <= grow_b ? 0 : 1);
        }
      }
      assert(pick < n);
      group[pick] = pick_group;
      if (pick_group == 0) {
        box_a = box_a.united(box_of(pick));
        ++count_a;
      } else {
        box_b = box_b.united(box_of(pick));
        ++count_b;
      }
      ++assigned;
    }

    // Move group-B members into the sibling.
    if (node->leaf) {
      std::vector<Node::LeafEntry> keep;
      for (std::size_t i = 0; i < n; ++i) {
        if (group[i] == 0)
          keep.push_back(node->entries[i]);
        else
          sibling->entries.push_back(node->entries[i]);
      }
      node->entries = std::move(keep);
    } else {
      std::vector<std::unique_ptr<Node>> keep;
      for (std::size_t i = 0; i < n; ++i) {
        if (group[i] == 0) {
          keep.push_back(std::move(node->children[i]));
        } else {
          node->children[i]->parent = sibling.get();
          sibling->children.push_back(std::move(node->children[i]));
        }
      }
      node->children = std::move(keep);
    }
    node->recompute_box();
    sibling->recompute_box();

    if (node->parent == nullptr) {
      // Grow a new root.
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      auto old_root = std::move(root_);
      old_root->parent = new_root.get();
      sibling->parent = new_root.get();
      new_root->children.push_back(std::move(old_root));
      new_root->children.push_back(std::move(sibling));
      new_root->recompute_box();
      root_ = std::move(new_root);
      return;
    }
    Node* parent = node->parent;
    parent->children.push_back(std::move(sibling));
    parent->recompute_box();
    node = parent;
  }
  adjust_upward(node);
}

void RTree::insert_impl(EntryId id, const BoundingBox& box) {
  Node* leaf = choose_leaf(root_.get(), box);
  leaf->entries.push_back(Node::LeafEntry{id, box});
  adjust_upward(leaf);
  split_and_propagate(leaf);
  ++size_;
}

void RTree::insert(EntryId id, const GeoPoint& point) {
  insert_impl(id, BoundingBox{point.latitude, point.longitude, point.latitude, point.longitude});
}

void RTree::insert_box(EntryId id, const BoundingBox& box) { insert_impl(id, box); }

void RTree::bulk_load(const std::vector<std::pair<EntryId, GeoPoint>>& points) {
  // STR (Leutenegger et al. 1997): P = ceil(n/M) leaves arranged in a
  // sqrt(P) x sqrt(P) tiling — sort by one axis, cut into vertical
  // slices of S*M entries, sort each slice by the other axis, pack
  // leaves of M. Then treat the packed nodes as the next level's
  // entries and repeat until one root remains.
  root_ = std::make_unique<Node>();
  size_ = points.size();
  if (points.empty()) return;

  std::vector<Node::LeafEntry> entries;
  entries.reserve(points.size());
  for (const auto& [id, p] : points)
    entries.push_back(Node::LeafEntry{
        id, BoundingBox{p.latitude, p.longitude, p.latitude, p.longitude}});

  const std::size_t cap = max_entries_;
  auto leaf_count = (entries.size() + cap - 1) / cap;
  auto slices = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  std::size_t slice_len = slices * cap;

  std::sort(entries.begin(), entries.end(), [](const Node::LeafEntry& a,
                                               const Node::LeafEntry& b) {
    return a.box.min_lon < b.box.min_lon;
  });

  std::vector<std::unique_ptr<Node>> level;
  level.reserve(leaf_count);
  for (std::size_t s = 0; s < entries.size(); s += slice_len) {
    auto slice_end = std::min(entries.size(), s + slice_len);
    std::sort(entries.begin() + static_cast<std::ptrdiff_t>(s),
              entries.begin() + static_cast<std::ptrdiff_t>(slice_end),
              [](const Node::LeafEntry& a, const Node::LeafEntry& b) {
                return a.box.min_lat < b.box.min_lat;
              });
    for (std::size_t i = s; i < slice_end; i += cap) {
      auto node = std::make_unique<Node>();
      node->leaf = true;
      auto run_end = std::min(slice_end, i + cap);
      node->entries.assign(entries.begin() + static_cast<std::ptrdiff_t>(i),
                           entries.begin() + static_cast<std::ptrdiff_t>(run_end));
      node->recompute_box();
      level.push_back(std::move(node));
    }
  }

  // Pack levels upward. Nodes within a level are already in tile order,
  // so grouping consecutive runs keeps parent boxes tight.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    parents.reserve((level.size() + cap - 1) / cap);
    for (std::size_t i = 0; i < level.size(); i += cap) {
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      auto run_end = std::min(level.size(), i + cap);
      for (std::size_t j = i; j < run_end; ++j) {
        level[j]->parent = parent.get();
        parent->children.push_back(std::move(level[j]));
      }
      parent->recompute_box();
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
  root_->parent = nullptr;
}

bool RTree::remove(EntryId id) {
  // The SpatialIndex contract says remove clears ALL entries under the
  // id (duplicate ids are the caller's bug, but every index must agree
  // on the outcome). Each pass unhooks one entry and recondenses; the
  // reinsertion in the condense step can move surviving duplicates, so
  // a single traversal cannot safely collect them all.
  bool removed = false;
  while (remove_one(id)) removed = true;
  return removed;
}

bool RTree::remove_one(EntryId id) {
  // Locate the leaf holding `id` by exhaustive descent (ids carry no
  // geometry, so a targeted search is not possible without a side map;
  // removals are rare in the SNS — devices move occasionally).
  std::vector<Node*> stack{root_.get()};
  Node* found = nullptr;
  std::size_t found_index = 0;
  while (!stack.empty() && found == nullptr) {
    Node* node = stack.back();
    stack.pop_back();
    if (node->leaf) {
      for (std::size_t i = 0; i < node->entries.size(); ++i) {
        if (node->entries[i].id == id) {
          found = node;
          found_index = i;
          break;
        }
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  if (found == nullptr) return false;

  found->entries.erase(found->entries.begin() + static_cast<std::ptrdiff_t>(found_index));
  --size_;

  // Condense: unhook underflowing nodes and reinsert their entries.
  std::vector<Node::LeafEntry> orphans;
  Node* node = found;
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    if (node->count() < min_entries_) {
      // Collect all leaf entries under `node`.
      std::vector<Node*> collect{node};
      while (!collect.empty()) {
        Node* c = collect.back();
        collect.pop_back();
        if (c->leaf)
          orphans.insert(orphans.end(), c->entries.begin(), c->entries.end());
        else
          for (const auto& child : c->children) collect.push_back(child.get());
      }
      auto it = std::find_if(parent->children.begin(), parent->children.end(),
                             [&](const std::unique_ptr<Node>& p) { return p.get() == node; });
      assert(it != parent->children.end());
      parent->children.erase(it);
    } else {
      node->recompute_box();
    }
    node = parent;
  }
  root_->recompute_box();

  // Shrink the root if it has a single internal child.
  while (!root_->leaf && root_->children.size() == 1) {
    auto only = std::move(root_->children.front());
    only->parent = nullptr;
    root_ = std::move(only);
  }
  if (!root_->leaf && root_->children.empty()) {
    root_ = std::make_unique<Node>();
  }

  size_ -= orphans.size();
  for (const auto& orphan : orphans) insert_impl(orphan.id, orphan.box);
  return true;
}

std::vector<EntryId> RTree::query(const BoundingBox& query) const {
  std::vector<EntryId> out;
  if (size_ == 0) return out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->box.intersects(query) && node->count() > 0) continue;
    if (node->leaf) {
      for (const auto& entry : node->entries)
        if (query.intersects(entry.box)) out.push_back(entry.id);
    } else {
      for (const auto& child : node->children)
        if (child->box.intersects(query)) stack.push_back(child.get());
    }
  }
  return out;
}

int RTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

}  // namespace sns::geo
