// geometry.hpp — geodetic primitives.
//
// §2.3/§3.2 of the paper distinguish civic and geodetic locations; this
// module is the geodetic half: points (lat/lon/alt), axis-aligned
// boxes, and polygons ("encodings supporting polygons" — §3.2) with
// point-in-polygon tests for the complex geometries of high-level
// spatial domains. Coordinates are WGS84-style degrees; distances use
// the haversine great-circle approximation.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace sns::geo {

struct GeoPoint {
  double latitude = 0.0;   // degrees, +N
  double longitude = 0.0;  // degrees, +E
  double altitude = 0.0;   // metres

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// Great-circle distance in metres (ignores altitude).
double haversine_m(const GeoPoint& a, const GeoPoint& b);

/// Axis-aligned lat/lon box. Does not model antimeridian wrapping —
/// spatial domains in the experiments are continent-scale at most.
struct BoundingBox {
  double min_lat = 0.0;
  double min_lon = 0.0;
  double max_lat = 0.0;
  double max_lon = 0.0;

  static BoundingBox around(const GeoPoint& center, double half_side_deg);
  [[nodiscard]] bool contains(const GeoPoint& p) const;
  [[nodiscard]] bool contains(const BoundingBox& other) const;
  [[nodiscard]] bool intersects(const BoundingBox& other) const;
  [[nodiscard]] GeoPoint center() const;
  [[nodiscard]] double width() const { return max_lon - min_lon; }
  [[nodiscard]] double height() const { return max_lat - min_lat; }
  /// Smallest box containing both.
  [[nodiscard]] BoundingBox united(const BoundingBox& other) const;
  /// Area in square degrees (used by R-tree heuristics, not physics).
  [[nodiscard]] double area() const;

  friend bool operator==(const BoundingBox&, const BoundingBox&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// Simple polygon (no holes), vertices in order, implicitly closed.
class Polygon {
 public:
  explicit Polygon(std::vector<GeoPoint> vertices);

  [[nodiscard]] const std::vector<GeoPoint>& vertices() const noexcept { return vertices_; }
  [[nodiscard]] const BoundingBox& bbox() const noexcept { return bbox_; }

  /// Ray-casting point-in-polygon; boundary points count as inside.
  [[nodiscard]] bool contains(const GeoPoint& p) const;

  /// Conservative box-overlap: true if any polygon vertex is in the box,
  /// any box corner is in the polygon, or any edges cross.
  [[nodiscard]] bool intersects(const BoundingBox& box) const;

 private:
  std::vector<GeoPoint> vertices_;
  BoundingBox bbox_;
};

}  // namespace sns::geo
