#include "geo/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sns::geo {

namespace {
constexpr double kEarthRadiusM = 6371000.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}  // namespace

std::string GeoPoint::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "(%.6f, %.6f, %.1fm)", latitude, longitude, altitude);
  return buf;
}

double haversine_m(const GeoPoint& a, const GeoPoint& b) {
  double lat1 = a.latitude * kDegToRad, lat2 = b.latitude * kDegToRad;
  double dlat = (b.latitude - a.latitude) * kDegToRad;
  double dlon = (b.longitude - a.longitude) * kDegToRad;
  double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusM * std::asin(std::sqrt(h));
}

BoundingBox BoundingBox::around(const GeoPoint& center, double half_side_deg) {
  return BoundingBox{center.latitude - half_side_deg, center.longitude - half_side_deg,
                     center.latitude + half_side_deg, center.longitude + half_side_deg};
}

bool BoundingBox::contains(const GeoPoint& p) const {
  return p.latitude >= min_lat && p.latitude <= max_lat && p.longitude >= min_lon &&
         p.longitude <= max_lon;
}

bool BoundingBox::contains(const BoundingBox& other) const {
  return other.min_lat >= min_lat && other.max_lat <= max_lat && other.min_lon >= min_lon &&
         other.max_lon <= max_lon;
}

bool BoundingBox::intersects(const BoundingBox& other) const {
  return !(other.min_lat > max_lat || other.max_lat < min_lat || other.min_lon > max_lon ||
           other.max_lon < min_lon);
}

GeoPoint BoundingBox::center() const {
  return GeoPoint{(min_lat + max_lat) / 2.0, (min_lon + max_lon) / 2.0, 0.0};
}

BoundingBox BoundingBox::united(const BoundingBox& other) const {
  return BoundingBox{std::min(min_lat, other.min_lat), std::min(min_lon, other.min_lon),
                     std::max(max_lat, other.max_lat), std::max(max_lon, other.max_lon)};
}

double BoundingBox::area() const { return std::max(0.0, width()) * std::max(0.0, height()); }

std::string BoundingBox::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "[%.6f..%.6f, %.6f..%.6f]", min_lat, max_lat, min_lon, max_lon);
  return buf;
}

Polygon::Polygon(std::vector<GeoPoint> vertices) : vertices_(std::move(vertices)) {
  if (vertices_.empty()) return;
  bbox_ = BoundingBox{vertices_[0].latitude, vertices_[0].longitude, vertices_[0].latitude,
                      vertices_[0].longitude};
  for (const auto& v : vertices_) {
    bbox_.min_lat = std::min(bbox_.min_lat, v.latitude);
    bbox_.max_lat = std::max(bbox_.max_lat, v.latitude);
    bbox_.min_lon = std::min(bbox_.min_lon, v.longitude);
    bbox_.max_lon = std::max(bbox_.max_lon, v.longitude);
  }
}

bool Polygon::contains(const GeoPoint& p) const {
  if (vertices_.size() < 3 || !bbox_.contains(p)) return false;
  // Ray casting along +longitude.
  bool inside = false;
  std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const GeoPoint& a = vertices_[i];
    const GeoPoint& b = vertices_[j];
    // Boundary tolerance: treat points on an edge as inside.
    double cross = (b.latitude - a.latitude) * (p.longitude - a.longitude) -
                   (b.longitude - a.longitude) * (p.latitude - a.latitude);
    double dot = (p.latitude - a.latitude) * (p.latitude - b.latitude) +
                 (p.longitude - a.longitude) * (p.longitude - b.longitude);
    if (std::fabs(cross) < 1e-12 && dot <= 1e-12) return true;
    bool crosses = (a.latitude > p.latitude) != (b.latitude > p.latitude);
    if (crosses) {
      double intersect_lon =
          a.longitude + (p.latitude - a.latitude) / (b.latitude - a.latitude) *
                            (b.longitude - a.longitude);
      if (p.longitude < intersect_lon) inside = !inside;
    }
  }
  return inside;
}

namespace {

bool segments_cross(const GeoPoint& p1, const GeoPoint& p2, const GeoPoint& q1,
                    const GeoPoint& q2) {
  auto orient = [](const GeoPoint& a, const GeoPoint& b, const GeoPoint& c) {
    double v = (b.longitude - a.longitude) * (c.latitude - a.latitude) -
               (b.latitude - a.latitude) * (c.longitude - a.longitude);
    return v > 1e-15 ? 1 : (v < -1e-15 ? -1 : 0);
  };
  int o1 = orient(p1, p2, q1), o2 = orient(p1, p2, q2);
  int o3 = orient(q1, q2, p1), o4 = orient(q1, q2, p2);
  return o1 != o2 && o3 != o4;
}

}  // namespace

bool Polygon::intersects(const BoundingBox& box) const {
  if (!bbox_.intersects(box)) return false;
  for (const auto& v : vertices_)
    if (box.contains(v)) return true;
  GeoPoint corners[4] = {{box.min_lat, box.min_lon, 0},
                         {box.min_lat, box.max_lon, 0},
                         {box.max_lat, box.max_lon, 0},
                         {box.max_lat, box.min_lon, 0}};
  for (const auto& corner : corners)
    if (contains(corner)) return true;
  std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++)
    for (int e = 0; e < 4; ++e)
      if (segments_cross(vertices_[i], vertices_[j], corners[e], corners[(e + 1) % 4]))
        return true;
  return false;
}

}  // namespace sns::geo
