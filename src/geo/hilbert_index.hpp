// hilbert_index.hpp — the paper's proposed index (§3.2).
//
// Entries are keyed by their Hilbert curve distance in a sorted map;
// a box query decomposes into O(perimeter) curve intervals, each
// answered with one ordered-map range scan: O(log n + k) per interval.
// Cells are finite, so each bucket double-checks exact containment.
#pragma once

#include <map>

#include "geo/hilbert.hpp"
#include "geo/index.hpp"

namespace sns::geo {

class HilbertIndex final : public SpatialIndex {
 public:
  /// `order` picks precision: cell side = domain side / 2^order.
  HilbertIndex(BoundingBox domain, int order) : grid_(domain, order) {}

  void insert(EntryId id, const GeoPoint& point) override;
  bool remove(EntryId id) override;
  [[nodiscard]] std::vector<EntryId> query(const BoundingBox& query) const override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] const char* name() const override { return "hilbert"; }

  [[nodiscard]] const HilbertGrid& grid() const noexcept { return grid_; }

 private:
  struct Entry {
    EntryId id;
    GeoPoint point;
  };
  HilbertGrid grid_;
  std::map<HilbertD, std::vector<Entry>> buckets_;
  // Reverse index for remove(); a multimap because duplicate ids can
  // land in different cells and remove must clear all of them.
  std::multimap<EntryId, HilbertD> cells_;
  std::size_t size_ = 0;
};

}  // namespace sns::geo
