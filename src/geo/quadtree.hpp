// quadtree.hpp — region quadtree (Samet 1984), cited by the paper [45]
// as part of the spatial-indexing design space for geodetic resolution.
#pragma once

#include <memory>

#include "geo/index.hpp"

namespace sns::geo {

class Quadtree final : public SpatialIndex {
 public:
  /// `domain` bounds all inserted points; out-of-domain inserts clamp.
  explicit Quadtree(BoundingBox domain, std::size_t bucket_capacity = 8, int max_depth = 16);
  ~Quadtree() override;
  Quadtree(const Quadtree&) = delete;
  Quadtree& operator=(const Quadtree&) = delete;

  void insert(EntryId id, const GeoPoint& point) override;
  bool remove(EntryId id) override;
  [[nodiscard]] std::vector<EntryId> query(const BoundingBox& query) const override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] const char* name() const override { return "quadtree"; }

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  BoundingBox domain_;
  std::size_t bucket_capacity_;
  int max_depth_;
  std::size_t size_ = 0;
};

}  // namespace sns::geo
