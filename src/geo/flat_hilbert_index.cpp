#include "geo/flat_hilbert_index.hpp"

#include <algorithm>
#include <numeric>

namespace sns::geo {

void FlatHilbertIndex::insert(EntryId id, const GeoPoint& point) {
  keys_.push_back(Key{grid_.point_to_d(point), id});
  points_.push_back(point);
  dirty_ = true;
}

void FlatHilbertIndex::bulk_load(std::vector<std::pair<EntryId, GeoPoint>> entries) {
  keys_.clear();
  points_.clear();
  keys_.reserve(keys_.size() + entries.size());
  points_.reserve(points_.size() + entries.size());
  for (const auto& [id, point] : entries) {
    keys_.push_back(Key{grid_.point_to_d(point), id});
    points_.push_back(point);
  }
  dirty_ = true;
  ensure_sorted();
}

bool FlatHilbertIndex::remove(EntryId id) {
  // Compact both parallel arrays in one pass. Order is preserved, so a
  // sorted array stays sorted and no re-sort is charged.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i].id == id) continue;
    keys_[keep] = keys_[i];
    points_[keep] = points_[i];
    ++keep;
  }
  bool removed = keep != keys_.size();
  keys_.resize(keep);
  points_.resize(keep);
  return removed;
}

void FlatHilbertIndex::ensure_sorted() const {
  if (!dirty_) return;
  // Indirect sort, then apply the permutation to both parallel arrays.
  std::vector<std::uint32_t> perm(keys_.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
    return keys_[a].d != keys_[b].d ? keys_[a].d < keys_[b].d : keys_[a].id < keys_[b].id;
  });
  std::vector<Key> keys(keys_.size());
  std::vector<GeoPoint> points(points_.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    keys[i] = keys_[perm[i]];
    points[i] = points_[perm[i]];
  }
  keys_ = std::move(keys);
  points_ = std::move(points);
  dirty_ = false;
}

std::vector<EntryId> FlatHilbertIndex::query(const BoundingBox& query) const {
  ensure_sorted();
  std::vector<EntryId> out;
  for (const auto& interval : grid_.decompose(query)) {
    auto lo = std::lower_bound(keys_.begin(), keys_.end(), interval.lo,
                               [](const Key& k, HilbertD d) { return k.d < d; });
    for (auto it = lo; it != keys_.end() && it->d <= interval.hi; ++it) {
      auto i = static_cast<std::size_t>(it - keys_.begin());
      if (query.contains(points_[i])) out.push_back(it->id);
    }
  }
  return out;
}

}  // namespace sns::geo
