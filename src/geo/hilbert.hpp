// hilbert.hpp — Hilbert space-filling curves (§3.2, Figure 4).
//
// The paper proposes Hilbert curves to "partition an area and provide a
// spatial index … lookup overlapping interval ranges … in logarithmic
// complexity", with curve order controlling precision. This module
// implements:
//   * cell <-> curve-distance mapping for any order 1..31,
//   * a grid binding the curve to a geographic bounding box,
//   * decomposition of a query box into a minimal set of contiguous
//     curve intervals (the key primitive of the Hilbert spatial index),
//   * ASCII rendering used to regenerate Figure 4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geometry.hpp"

namespace sns::geo {

/// Distance along a Hilbert curve of order n (0 .. 4^n - 1).
using HilbertD = std::uint64_t;

/// Map cell (x, y) to its distance along the order-`order` curve.
/// Precondition: order in [1, 31], x/y < 2^order.
HilbertD hilbert_xy_to_d(int order, std::uint32_t x, std::uint32_t y);

/// Inverse of hilbert_xy_to_d.
void hilbert_d_to_xy(int order, HilbertD d, std::uint32_t& x, std::uint32_t& y);

/// A contiguous range [lo, hi] of curve distances.
struct HilbertInterval {
  HilbertD lo = 0;
  HilbertD hi = 0;
  friend bool operator==(const HilbertInterval&, const HilbertInterval&) = default;
};

/// Binds an order-n Hilbert curve onto a geographic bounding box,
/// providing geodetic <-> cell <-> distance conversions and query
/// decomposition. Cells outside the domain clamp to its edge.
class HilbertGrid {
 public:
  HilbertGrid(BoundingBox domain, int order);

  [[nodiscard]] int order() const noexcept { return order_; }
  [[nodiscard]] const BoundingBox& domain() const noexcept { return domain_; }
  [[nodiscard]] std::uint32_t cells_per_side() const noexcept { return side_; }
  /// Ground size of one cell along latitude, in degrees.
  [[nodiscard]] double cell_height_deg() const;

  [[nodiscard]] HilbertD point_to_d(const GeoPoint& p) const;
  [[nodiscard]] BoundingBox cell_box(HilbertD d) const;

  /// Decompose `query` (clipped to the domain) into contiguous curve
  /// intervals covering exactly the overlapped cells. The result is
  /// sorted and merged; its size is O(perimeter) of the query in cells.
  [[nodiscard]] std::vector<HilbertInterval> decompose(const BoundingBox& query) const;

 private:
  void decompose_node(std::uint32_t x0, std::uint32_t y0, std::uint32_t size, std::uint32_t qx0,
                      std::uint32_t qy0, std::uint32_t qx1, std::uint32_t qy1,
                      std::vector<HilbertInterval>& out) const;
  [[nodiscard]] std::uint32_t lat_to_cell(double lat) const;
  [[nodiscard]] std::uint32_t lon_to_cell(double lon) const;

  BoundingBox domain_;
  int order_;
  std::uint32_t side_;
};

/// ASCII-art rendering of the order-n curve (Figure 4): each cell shows
/// the path through it using box-drawing characters.
std::string render_hilbert_ascii(int order);

/// Locality measure used in the Fig. 4 bench: mean curve-distance gap
/// between horizontally adjacent cells (1.0 = perfect locality).
double hilbert_adjacency_gap(int order);

}  // namespace sns::geo
