// naive_index.hpp — the paper's strawman: check every device, O(n).
#pragma once

#include <vector>

#include "geo/index.hpp"

namespace sns::geo {

class NaiveIndex final : public SpatialIndex {
 public:
  void insert(EntryId id, const GeoPoint& point) override;
  bool remove(EntryId id) override;
  [[nodiscard]] std::vector<EntryId> query(const BoundingBox& query) const override;
  [[nodiscard]] std::size_t size() const override { return entries_.size(); }
  [[nodiscard]] const char* name() const override { return "naive"; }

 private:
  struct Entry {
    EntryId id;
    GeoPoint point;
  };
  std::vector<Entry> entries_;
};

}  // namespace sns::geo
