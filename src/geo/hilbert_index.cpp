#include "geo/hilbert_index.hpp"

#include <algorithm>

namespace sns::geo {

void HilbertIndex::insert(EntryId id, const GeoPoint& point) {
  HilbertD d = grid_.point_to_d(point);
  buckets_[d].push_back(Entry{id, point});
  cells_.emplace(id, d);
  ++size_;
}

bool HilbertIndex::remove(EntryId id) {
  auto [first, last] = cells_.equal_range(id);
  if (first == last) return false;
  bool removed = false;
  for (auto cell = first; cell != last; ++cell) {
    auto bucket = buckets_.find(cell->second);
    if (bucket == buckets_.end()) continue;
    auto& entries = bucket->second;
    auto it = std::remove_if(entries.begin(), entries.end(),
                             [&](const Entry& e) { return e.id == id; });
    std::size_t dropped = static_cast<std::size_t>(entries.end() - it);
    entries.erase(it, entries.end());
    if (entries.empty()) buckets_.erase(bucket);
    size_ -= dropped;
    removed = removed || dropped > 0;
  }
  cells_.erase(first, last);
  return removed;
}

std::vector<EntryId> HilbertIndex::query(const BoundingBox& query) const {
  std::vector<EntryId> out;
  for (const auto& interval : grid_.decompose(query)) {
    for (auto it = buckets_.lower_bound(interval.lo);
         it != buckets_.end() && it->first <= interval.hi; ++it) {
      for (const auto& entry : it->second)
        if (query.contains(entry.point)) out.push_back(entry.id);
    }
  }
  return out;
}

}  // namespace sns::geo
