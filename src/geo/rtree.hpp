// rtree.hpp — R-tree spatial index (Guttman 1984, quadratic split).
//
// The paper (§3.2) notes "alternatives such as R-trees may be more
// efficient for sparse locations" — this implementation lets the E5
// benchmark test exactly that claim against the Hilbert index.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "geo/index.hpp"

namespace sns::geo {

class RTree final : public SpatialIndex {
 public:
  /// Node capacity M; minimum fill is M/2 (m = M/2 per Guttman).
  explicit RTree(std::size_t max_entries = 8);
  ~RTree() override;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  void insert(EntryId id, const GeoPoint& point) override;
  /// Insert an entry with spatial extent (rooms, buildings, domains).
  void insert_box(EntryId id, const BoundingBox& box);
  /// Replace the tree's contents via STR (sort-tile-recursive) bulk
  /// loading: sort by longitude into vertical slices, sort each slice
  /// by latitude, pack full leaves, repeat upward. Produces near-square
  /// node boxes with ~100% fill — the bulk construction a million-entry
  /// bench needs, where one-at-a-time Guttman inserts would spend
  /// minutes in quadratic splits.
  void bulk_load(const std::vector<std::pair<EntryId, GeoPoint>>& points);
  bool remove(EntryId id) override;
  [[nodiscard]] std::vector<EntryId> query(const BoundingBox& query) const override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] const char* name() const override { return "rtree"; }

  /// Tree height (leaves = 1); exposed for tests/benches.
  [[nodiscard]] int height() const;

 private:
  struct Node;
  struct SplitResult;

  void insert_impl(EntryId id, const BoundingBox& box);
  bool remove_one(EntryId id);
  Node* choose_leaf(Node* node, const BoundingBox& box) const;
  void split_and_propagate(Node* node);
  void adjust_upward(Node* node);

  std::unique_ptr<Node> root_;
  std::size_t max_entries_;
  std::size_t min_entries_;
  std::size_t size_ = 0;
};

}  // namespace sns::geo
