#include "geo/naive_index.hpp"

#include <algorithm>

namespace sns::geo {

void NaiveIndex::insert(EntryId id, const GeoPoint& point) {
  entries_.push_back(Entry{id, point});
}

bool NaiveIndex::remove(EntryId id) {
  auto it = std::remove_if(entries_.begin(), entries_.end(),
                           [&](const Entry& e) { return e.id == id; });
  bool removed = it != entries_.end();
  entries_.erase(it, entries_.end());
  return removed;
}

std::vector<EntryId> NaiveIndex::query(const BoundingBox& query) const {
  std::vector<EntryId> out;
  for (const auto& entry : entries_)
    if (query.contains(entry.point)) out.push_back(entry.id);
  return out;
}

}  // namespace sns::geo
