// index.hpp — common interface for geodetic device indexes.
//
// §3.2: "A naive solution … would be O(n) … Instead, we can use existing
// work from spatial indexing" (space-filling curves, R-trees [8,21],
// quadtrees [45]). Every index implements this interface so the
// E5 benchmark can compare them on identical workloads, and so a
// SpatialZone can choose its index ("alternatives such as R-trees may be
// more efficient for sparse locations").
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.hpp"

namespace sns::geo {

/// Opaque entry identifier (the SNS core maps these to device names).
using EntryId = std::uint64_t;

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Insert a point entry. Duplicate ids are the caller's bug; the
  /// index stores both (remove clears all).
  virtual void insert(EntryId id, const GeoPoint& point) = 0;

  /// Remove an entry; returns false if absent.
  virtual bool remove(EntryId id) = 0;

  /// All entries whose point lies inside `query`. Order unspecified.
  [[nodiscard]] virtual std::vector<EntryId> query(const BoundingBox& query) const = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Implementation name for benches ("naive", "hilbert", "rtree", ...).
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace sns::geo
