// flat_hilbert_index.hpp — the Hilbert index at production scale.
//
// HilbertIndex (the diagram-scale reference) keys a std::map of
// per-cell vectors: every entry costs a red-black node plus a vector
// header, and a million devices means a million pointer-chasing cache
// misses before the first containment check. This implementation packs
// the same information into one flat array sorted by curve distance:
//
//   entry        16 bytes (curve distance + id), points parallel
//   build        O(n log n) one-time sort (or free via bulk_load of
//                presorted data)
//   query        decompose into O(perimeter) intervals, binary-search
//                each interval's [lo, hi] span, scan contiguously
//   insert       append + dirty flag; the next query absorbs a re-sort
//
// The serving-path SpatialView (src/spatial/) uses the same layout but
// immutable + snapshot-shared; this class is the mutable SpatialIndex
// adapter so benches and property tests can race the flat layout
// against the map-based reference, the R-tree and the quadtree on
// identical workloads.
#pragma once

#include <vector>

#include "geo/hilbert.hpp"
#include "geo/index.hpp"

namespace sns::geo {

class FlatHilbertIndex final : public SpatialIndex {
 public:
  /// `order` picks precision: cell side = domain side / 2^order.
  FlatHilbertIndex(BoundingBox domain, int order) : grid_(domain, order) {}

  void insert(EntryId id, const GeoPoint& point) override;
  bool remove(EntryId id) override;
  [[nodiscard]] std::vector<EntryId> query(const BoundingBox& query) const override;
  [[nodiscard]] std::size_t size() const override { return keys_.size(); }
  [[nodiscard]] const char* name() const override { return "flat_hilbert"; }

  /// Adopt a whole entry set at once (synthetic-city benches): one
  /// sort, no per-insert dirty churn.
  void bulk_load(std::vector<std::pair<EntryId, GeoPoint>> entries);

  [[nodiscard]] const HilbertGrid& grid() const noexcept { return grid_; }

 private:
  struct Key {
    HilbertD d;
    EntryId id;
  };

  void ensure_sorted() const;

  HilbertGrid grid_;
  // Parallel arrays sorted by curve distance (after ensure_sorted):
  // keys_ is what queries binary-search and scan; points_ carries the
  // exact coordinates for the final containment check.
  mutable std::vector<Key> keys_;
  mutable std::vector<GeoPoint> points_;
  mutable bool dirty_ = false;
};

}  // namespace sns::geo
