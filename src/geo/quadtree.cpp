#include "geo/quadtree.hpp"

#include <algorithm>

namespace sns::geo {

struct Quadtree::Node {
  BoundingBox box;
  int depth = 0;
  struct Entry {
    EntryId id;
    GeoPoint point;
  };
  std::vector<Entry> entries;
  std::unique_ptr<Node> quadrants[4];  // SW, SE, NW, NE

  [[nodiscard]] bool is_leaf() const { return quadrants[0] == nullptr; }

  [[nodiscard]] int quadrant_of(const GeoPoint& p) const {
    GeoPoint mid = box.center();
    int idx = 0;
    if (p.longitude > mid.longitude) idx |= 1;
    if (p.latitude > mid.latitude) idx |= 2;
    return idx;
  }

  [[nodiscard]] BoundingBox quadrant_box(int idx) const {
    GeoPoint mid = box.center();
    double lo_lat = (idx & 2) != 0 ? mid.latitude : box.min_lat;
    double hi_lat = (idx & 2) != 0 ? box.max_lat : mid.latitude;
    double lo_lon = (idx & 1) != 0 ? mid.longitude : box.min_lon;
    double hi_lon = (idx & 1) != 0 ? box.max_lon : mid.longitude;
    return BoundingBox{lo_lat, lo_lon, hi_lat, hi_lon};
  }
};

Quadtree::Quadtree(BoundingBox domain, std::size_t bucket_capacity, int max_depth)
    : root_(std::make_unique<Node>()),
      domain_(domain),
      bucket_capacity_(std::max<std::size_t>(1, bucket_capacity)),
      max_depth_(max_depth) {
  root_->box = domain;
}

Quadtree::~Quadtree() = default;

void Quadtree::insert(EntryId id, const GeoPoint& point) {
  GeoPoint p = point;
  p.latitude = std::clamp(p.latitude, domain_.min_lat, domain_.max_lat);
  p.longitude = std::clamp(p.longitude, domain_.min_lon, domain_.max_lon);

  Node* node = root_.get();
  while (!node->is_leaf()) node = node->quadrants[node->quadrant_of(p)].get();

  node->entries.push_back(Node::Entry{id, p});
  ++size_;

  // Split on overflow (unless depth-capped).
  while (node->entries.size() > bucket_capacity_ && node->depth < max_depth_) {
    for (int q = 0; q < 4; ++q) {
      node->quadrants[q] = std::make_unique<Node>();
      node->quadrants[q]->box = node->quadrant_box(q);
      node->quadrants[q]->depth = node->depth + 1;
    }
    for (const auto& entry : node->entries)
      node->quadrants[node->quadrant_of(entry.point)]->entries.push_back(entry);
    node->entries.clear();
    // Continue splitting the child that may still overflow.
    Node* hot = nullptr;
    for (int q = 0; q < 4; ++q)
      if (node->quadrants[q]->entries.size() > bucket_capacity_) hot = node->quadrants[q].get();
    if (hot == nullptr) break;
    node = hot;
  }
}

bool Quadtree::remove(EntryId id) {
  // Exhaustive walk; acceptable for the SNS's rare relocations. The
  // walk covers every leaf: duplicate ids may straddle leaves and the
  // contract is that remove clears all of them.
  std::vector<Node*> stack{root_.get()};
  bool removed = false;
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      auto it = std::remove_if(node->entries.begin(), node->entries.end(),
                               [&](const Node::Entry& e) { return e.id == id; });
      if (it != node->entries.end()) {
        size_ -= static_cast<std::size_t>(node->entries.end() - it);
        node->entries.erase(it, node->entries.end());
        removed = true;
      }
    } else {
      for (auto& quadrant : node->quadrants) stack.push_back(quadrant.get());
    }
  }
  return removed;
}

std::vector<EntryId> Quadtree::query(const BoundingBox& query) const {
  std::vector<EntryId> out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->box.intersects(query)) continue;
    if (node->is_leaf()) {
      for (const auto& entry : node->entries)
        if (query.contains(entry.point)) out.push_back(entry.id);
    } else {
      for (const auto& quadrant : node->quadrants) stack.push_back(quadrant.get());
    }
  }
  return out;
}

}  // namespace sns::geo
