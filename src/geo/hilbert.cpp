#include "geo/hilbert.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sns::geo {

// Classic bit-twiddling conversion (Hilbert 1891 construction, iterative
// form): walk orders from the top, rotating the quadrant frame.
HilbertD hilbert_xy_to_d(int order, std::uint32_t x, std::uint32_t y) {
  assert(order >= 1 && order <= 31);
  HilbertD d = 0;
  for (std::uint32_t s = 1u << (order - 1); s > 0; s >>= 1) {
    std::uint32_t rx = (x & s) > 0 ? 1 : 0;
    std::uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<HilbertD>(s) * s * ((3 * rx) ^ ry);
    // Rotate quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

void hilbert_d_to_xy(int order, HilbertD d, std::uint32_t& x, std::uint32_t& y) {
  assert(order >= 1 && order <= 31);
  x = y = 0;
  HilbertD t = d;
  for (std::uint32_t s = 1; s < (1u << order); s <<= 1) {
    std::uint32_t rx = static_cast<std::uint32_t>((t / 2) & 1);
    std::uint32_t ry = static_cast<std::uint32_t>((t ^ rx) & 1);
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
}

HilbertGrid::HilbertGrid(BoundingBox domain, int order)
    : domain_(domain), order_(order), side_(1u << order) {
  assert(order >= 1 && order <= 31);
  assert(domain.max_lat > domain.min_lat && domain.max_lon > domain.min_lon);
}

double HilbertGrid::cell_height_deg() const { return domain_.height() / side_; }

std::uint32_t HilbertGrid::lat_to_cell(double lat) const {
  double f = (lat - domain_.min_lat) / domain_.height();
  auto cell = static_cast<std::int64_t>(std::floor(f * side_));
  cell = std::clamp<std::int64_t>(cell, 0, static_cast<std::int64_t>(side_) - 1);
  return static_cast<std::uint32_t>(cell);
}

std::uint32_t HilbertGrid::lon_to_cell(double lon) const {
  double f = (lon - domain_.min_lon) / domain_.width();
  auto cell = static_cast<std::int64_t>(std::floor(f * side_));
  cell = std::clamp<std::int64_t>(cell, 0, static_cast<std::int64_t>(side_) - 1);
  return static_cast<std::uint32_t>(cell);
}

HilbertD HilbertGrid::point_to_d(const GeoPoint& p) const {
  return hilbert_xy_to_d(order_, lon_to_cell(p.longitude), lat_to_cell(p.latitude));
}

BoundingBox HilbertGrid::cell_box(HilbertD d) const {
  std::uint32_t x = 0, y = 0;
  hilbert_d_to_xy(order_, d, x, y);
  double cw = domain_.width() / side_;
  double ch = domain_.height() / side_;
  return BoundingBox{domain_.min_lat + y * ch, domain_.min_lon + x * cw,
                     domain_.min_lat + (y + 1) * ch, domain_.min_lon + (x + 1) * cw};
}

void HilbertGrid::decompose_node(std::uint32_t x0, std::uint32_t y0, std::uint32_t size,
                                 std::uint32_t qx0, std::uint32_t qy0, std::uint32_t qx1,
                                 std::uint32_t qy1,
                                 std::vector<HilbertInterval>& out) const {
  // No overlap with the query rectangle?
  if (x0 > qx1 || x0 + size - 1 < qx0 || y0 > qy1 || y0 + size - 1 < qy0) return;

  bool fully_inside = x0 >= qx0 && x0 + size - 1 <= qx1 && y0 >= qy0 && y0 + size - 1 <= qy1;
  if (fully_inside || size == 1) {
    // Any power-of-two-aligned quadrant is contiguous on the curve; its
    // start is the minimum distance among its corner cells.
    HilbertD d0 = hilbert_xy_to_d(order_, x0, y0);
    if (size > 1) {
      d0 = std::min({d0, hilbert_xy_to_d(order_, x0 + size - 1, y0),
                     hilbert_xy_to_d(order_, x0, y0 + size - 1),
                     hilbert_xy_to_d(order_, x0 + size - 1, y0 + size - 1)});
    }
    out.push_back(HilbertInterval{d0, d0 + static_cast<HilbertD>(size) * size - 1});
    return;
  }
  std::uint32_t half = size / 2;
  decompose_node(x0, y0, half, qx0, qy0, qx1, qy1, out);
  decompose_node(x0 + half, y0, half, qx0, qy0, qx1, qy1, out);
  decompose_node(x0, y0 + half, half, qx0, qy0, qx1, qy1, out);
  decompose_node(x0 + half, y0 + half, half, qx0, qy0, qx1, qy1, out);
}

std::vector<HilbertInterval> HilbertGrid::decompose(const BoundingBox& query) const {
  std::vector<HilbertInterval> out;
  if (!query.intersects(domain_)) return out;
  std::uint32_t qx0 = lon_to_cell(std::max(query.min_lon, domain_.min_lon));
  std::uint32_t qx1 = lon_to_cell(std::min(query.max_lon, domain_.max_lon));
  std::uint32_t qy0 = lat_to_cell(std::max(query.min_lat, domain_.min_lat));
  std::uint32_t qy1 = lat_to_cell(std::min(query.max_lat, domain_.max_lat));
  decompose_node(0, 0, side_, qx0, qy0, qx1, qy1, out);
  std::sort(out.begin(), out.end(),
            [](const HilbertInterval& a, const HilbertInterval& b) { return a.lo < b.lo; });
  // Merge adjacent/overlapping intervals.
  std::vector<HilbertInterval> merged;
  for (const auto& interval : out) {
    if (!merged.empty() && interval.lo <= merged.back().hi + 1)
      merged.back().hi = std::max(merged.back().hi, interval.hi);
    else
      merged.push_back(interval);
  }
  return merged;
}

std::string render_hilbert_ascii(int order) {
  // Draw the curve on a (2*side-1)^2 character canvas: cells at even
  // coordinates, connectors between consecutive cells.
  std::uint32_t side = 1u << order;
  std::uint32_t w = 2 * side - 1;
  std::vector<std::string> canvas(w, std::string(w, ' '));
  std::uint32_t px = 0, py = 0;
  for (HilbertD d = 0; d < static_cast<HilbertD>(side) * side; ++d) {
    std::uint32_t x = 0, y = 0;
    hilbert_d_to_xy(order, d, x, y);
    canvas[w - 1 - 2 * y][2 * x] = '*';
    if (d > 0) {
      // Connector between (px,py) and (x,y) — always 4-adjacent.
      std::uint32_t cx = px + x, cy = py + y;  // == 2*mid
      canvas[w - 1 - cy][cx] = (px == x) ? '|' : '-';
    }
    px = x;
    py = y;
  }
  std::string out;
  for (const auto& row : canvas) {
    out += row;
    out += '\n';
  }
  return out;
}

double hilbert_adjacency_gap(int order) {
  std::uint32_t side = 1u << order;
  double total = 0.0;
  std::uint64_t count = 0;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x + 1 < side; ++x) {
      HilbertD a = hilbert_xy_to_d(order, x, y);
      HilbertD b = hilbert_xy_to_d(order, x + 1, y);
      total += static_cast<double>(a > b ? a - b : b - a);
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace sns::geo
