// runtime.hpp — multi-core authoritative serving runtime.
//
// PR 4's transport serves a zone from one epoll thread; this subsystem
// is the ROADMAP's "as fast as the hardware allows" answer for the
// serving side. A ServerRuntime spawns N Workers (default: one per
// hardware thread), each with its own event loop and SO_REUSEPORT
// listeners on the shared endpoint, all answering from the same zone
// data through an RCU-lite SnapshotStore:
//
//   read path    every query does one atomic snapshot acquire; each
//                worker keeps a shard-private AuthoritativeServer
//                engine that is rebuilt (cheaply — zones are shared
//                immutably) only when the acquired snapshot changes.
//   write path   SIGHUP reloads and RFC 2136 dynamic updates build a
//                copy-on-write successor snapshot off to the side and
//                publish it with one atomic exchange. Serving never
//                pauses; in-flight queries finish on the old snapshot,
//                which dies with its last reference.
//
// Observability is shard-aware: every worker owns a MetricsRegistry
// (zero hot-path sharing); metrics_json() merges the fleet into
// "total" plus a per-shard breakdown, which is what snsd dumps on
// SIGUSR1. See DESIGN.md §10 for the ownership rules.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "federation/journal.hpp"
#include "runtime/answer_cache.hpp"
#include "runtime/snapshot.hpp"
#include "runtime/worker.hpp"
#include "server/authoritative.hpp"
#include "spatial/spatial_view.hpp"

namespace sns::runtime {

struct RuntimeOptions {
  /// Worker shards; 0 = std::thread::hardware_concurrency (min 1).
  std::size_t threads = 0;
  transport::TcpOptions tcp;
  /// How long drain_and_stop() waits for owed TCP answers to flush
  /// before force-closing the stragglers.
  transport::Duration drain_grace = std::chrono::seconds(5);
  transport::Duration stats_interval = std::chrono::milliseconds(500);
  /// Datagrams per UDP syscall round on each shard (recvmmsg/sendmmsg);
  /// 1 disables batching, and non-Linux builds clamp to 1.
  std::size_t udp_batch = transport::kUdpBatchDefault;
  /// Precompile positive answers into every published snapshot and
  /// serve cache hits on the UDP wire fast path (DESIGN.md §12).
  bool answer_cache = true;
  /// Index every LOC-bearing owner into a per-snapshot SpatialView and
  /// answer AREA (reverse geodetic) queries from it (DESIGN.md §14).
  bool spatial = true;
  /// Which index structure backs the SpatialView (DESIGN.md §14;
  /// `snsd --spatial-index` selects it).
  spatial::SpatialBackend spatial_backend = spatial::SpatialBackend::Hilbert;
  /// Answer IXFR/AXFR queries from snapshots + delta journals and keep
  /// a per-zone journal of committed deltas (DESIGN.md §15).
  bool transfers = true;
};

/// One immutable generation of serving state. Zones are ZoneViews —
/// immutable by type, not by convention: the writer paths (SIGHUP
/// reload, RFC 2136) build *successor* views through the transaction
/// API, sharing all untouched structure with the current generation,
/// and publish them with one atomic exchange. The precompiled-answer
/// cache is part of the snapshot for the same reason the zones are: a
/// reader sees cache and zone data consistent by construction, and the
/// generation bump that publishes new zones retires the old cache with
/// them — invalidation needs no locking and has no stale-hit window.
struct ZoneSnapshot {
  std::vector<server::ZoneViewPtr> zones;
  std::shared_ptr<const AnswerCache> answer_cache;  // null when disabled
  /// Reverse geodetic index over the same views (null when disabled);
  /// rebuilt incrementally from commit logs like the answer cache.
  std::shared_ptr<const spatial::SpatialView> spatial;
  [[nodiscard]] std::size_t record_count() const;
};

class ServerRuntime {
 public:
  explicit ServerRuntime(std::string name, RuntimeOptions options = {});
  ~ServerRuntime();
  ServerRuntime(const ServerRuntime&) = delete;
  ServerRuntime& operator=(const ServerRuntime&) = delete;

  /// Require TSIG on RFC 2136 dynamic updates. Set before start().
  void set_update_key(dns::TsigKey key) { update_key_ = std::move(key); }

  /// Publish the initial snapshot, bind every shard to `at` (worker 0
  /// realises ephemeral ports; siblings join it via SO_REUSEPORT) and
  /// start the serving threads.
  util::Status start(const transport::Endpoint& at, std::vector<server::ZoneViewPtr> zones);

  /// Atomically replace the served zone set (the SIGHUP live-reload
  /// path). Readers flip at their next acquire; returns the new
  /// generation.
  std::uint64_t publish(std::vector<server::ZoneViewPtr> zones);

  /// General transactional write path: `fn` runs inside the store's
  /// writer critical section over throwaway facades of the current
  /// zones; returning false aborts (the store is untouched). On true,
  /// a successor snapshot is built from the facades' commit logs —
  /// incremental cache/index rebuilds when the commits enumerated
  /// their touched owners, journal deltas appended for IXFR — and
  /// published. This is how an edge nameserver lands transfer deltas;
  /// RFC 2136 updates ride the same tail internally. Returns the
  /// resulting generation.
  std::uint64_t commit_zones(
      const std::function<bool(std::vector<std::shared_ptr<server::Zone>>&)>& fn);

  /// RFC 8767 flag: an edge nameserver sets this while any mirrored
  /// zone is past its expiry horizon; every successful answer served
  /// meanwhile is counted as federation.stale_serves.
  void set_serving_stale(bool stale) noexcept {
    serving_stale_.store(stale, std::memory_order_relaxed);
  }
  [[nodiscard]] bool serving_stale() const noexcept {
    return serving_stale_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::shared_ptr<const ZoneSnapshot> snapshot() const { return store_.acquire(); }
  [[nodiscard]] std::uint64_t generation() const noexcept { return store_.generation(); }

  /// Realised endpoint (after start(); meaningful with port 0).
  [[nodiscard]] const transport::Endpoint& local() const;
  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }
  [[nodiscard]] bool running() const noexcept { return started_; }

  /// Control-plane registry: runtime.zone.{reload,reload_failed,
  /// update,update_refused} counters. Owned by the thread driving the
  /// runtime (main), readable everywhere.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return runtime_metrics_; }

  /// Fold fleet-wide totals (control plane + every shard) into `into`.
  void merge_metrics(obs::MetricsRegistry& into) const;

  /// {"workers":N,"generation":G,"total":{...},"shards":[{"worker":0,
  ///  ...},...]} — totals merged across the control plane and every
  /// shard, then the per-shard breakdown.
  [[nodiscard]] std::string metrics_json() const;

  /// Graceful shutdown: every shard stops accepting, flushes owed TCP
  /// answers (bounded by drain_grace), then threads are joined.
  void drain_and_stop();
  /// Immediate shutdown: stop loops, join, discard workers.
  void stop();

 private:
  // Shard-private engine cache; lives in the handler closure and is
  // only ever touched by that worker's thread.
  struct Shard {
    std::shared_ptr<const ZoneSnapshot> snap;
    std::unique_ptr<server::AuthoritativeServer> engine;
  };

  transport::DnsHandler make_handler(Worker& worker);
  transport::RawDnsHandler make_raw_handler(Worker& worker);
  /// Snapshot construction: seals the zone list and precompiles the
  /// answer cache from scratch (when enabled).
  [[nodiscard]] std::shared_ptr<ZoneSnapshot> make_snapshot(
      std::vector<server::ZoneViewPtr> zones) const;
  /// Successor snapshot after a commit: reuses the parent's answer
  /// cache incrementally when the commit enumerated its touched owners
  /// and left every delegation alone; falls back to make_snapshot's
  /// full precompile otherwise.
  [[nodiscard]] std::shared_ptr<ZoneSnapshot> make_successor(
      const ZoneSnapshot& parent, std::vector<server::ZoneViewPtr> zones,
      const std::vector<dns::Name>& touched, bool full_rebuild);
  [[nodiscard]] std::unique_ptr<server::AuthoritativeServer> build_engine(
      const ZoneSnapshot& snap, obs::MetricsRegistry* metrics) const;
  dns::Message apply_update(const dns::Message& query, const server::ClientContext& ctx);
  /// Shared tail of apply_update and commit_zones: drain every
  /// facade's commit log, feed the delta journals, build the successor
  /// snapshot. Runs inside the store's writer critical section.
  [[nodiscard]] SnapshotStore<ZoneSnapshot>::Ptr successor_from_facades(
      const ZoneSnapshot& parent,
      const std::vector<std::shared_ptr<server::Zone>>& facades);

  std::string name_;
  RuntimeOptions options_;
  std::optional<dns::TsigKey> update_key_;
  // All writers — publish() reloads and apply_update()'s RFC 2136
  // read-copy-publish — serialise on the store's own writer mutex, so
  // neither path can lose the other's work.
  SnapshotStore<ZoneSnapshot> store_;
  // IXFR delta history per served apex, appended by the same writers
  // (inside the store's critical section) and read by worker shards
  // answering transfer queries; internally locked. A wholesale
  // publish() voids it — secondaries older than the new snapshot fall
  // back to a full transfer, which is the RFC 1995 contract.
  federation::JournalSet journals_;
  std::atomic<bool> serving_stale_{false};
  std::vector<std::unique_ptr<Worker>> workers_;
  obs::MetricsRegistry runtime_metrics_;
  bool started_ = false;
};

}  // namespace sns::runtime
