// answer_cache.hpp — precompiled positive answers for the UDP hot path.
//
// A query that hits an authoritative RRset costs, on the decoded path,
// a full Message::decode, an engine walk and a Message::encode. But an
// authoritative server's positive answers are a pure function of the
// zone contents: for a snapshot of the zone, the wire bytes of the
// answer to (qname, qtype) never change. This cache precomputes them
// once per snapshot — by running the *real* engine and encoder at
// build time — so a hit at serving time is a key probe, one memcpy and
// a 12-byte header patch.
//
// Concurrency comes from immutability, not locking: the cache is built
// off to the side, sealed, and published *inside* a ZoneSnapshot
// through the runtime's SnapshotStore. Every reader thread sees either
// the old snapshot (with its old cache) or the new one; the generation
// bump that publishes a SIGHUP reload or an RFC 2136 update replaces
// the cache wholesale, so invalidation is free and there is no
// hit-after-update window. See DESIGN.md §12.
//
// Since the zone redesign (DESIGN.md §13) a snapshot's zones are
// immutable ZoneViews and a commit reports which owners it touched —
// so the cache no longer has to be recomputed from scratch per update.
// Entries live in a persistent hash trie (util::PMap): rebuild() copies
// the parent cache in O(1), then re-derives only the touched owners'
// entries against the successor views. A 100k-entry cache under
// single-device churn costs a handful of engine calls per update, not
// 100k. The fallback remains: delegation changes (NS touched) and
// wholesale reloads occlude/reveal entire subtrees, so those take the
// full build() path.
//
// Byte-for-byte equivalence with the decoded path is maintained by
// construction (the templates come out of the same engine + encoder)
// plus splicing: the reply echoes the *client's* question bytes
// verbatim, and the header patch reproduces exactly the flag mapping
// make_response applies (opcode/RD/TC/AD echoed, QR+AA set, RA/RCODE
// cleared). Anything the fast path cannot prove equivalent — unusual
// counts, compressed question names, non-IN class, a reply over 512
// bytes (whose fit depends on the querier's EDNS size), a (name, type)
// the engine would answer with anything but a plain positive RRset —
// falls through to the decoded path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/pmap.hpp"

namespace sns::dns {
class Name;
}

namespace sns::server {
class ZoneView;
}

namespace sns::runtime {

class AnswerCache {
 public:
  using ZoneViews = std::vector<std::shared_ptr<const server::ZoneView>>;

  /// Precompile every cacheable (owner, type) of `zones`. Cacheable
  /// means: the engine's answer is a plain authoritative positive
  /// (NoError, non-empty answers, empty authority/additional) — apex
  /// and in-zone RRsets qualify; delegations, glue, wildcard-synthesis
  /// sources and anything occluded below a cut do not.
  [[nodiscard]] static std::shared_ptr<const AnswerCache> build(const ZoneViews& zones);

  /// Incremental successor: share the parent's entries, then re-derive
  /// only `touched` owners against the successor `zones` — for each
  /// touched owner, every type it carried in the old views or carries
  /// in the new ones is invalidated, and exactly the types present in
  /// the new views are (when still cacheable) recomputed — mirroring
  /// build()'s enumeration, so no entry exists here that a full build
  /// would not create. Sound ONLY when no delegation changed: callers must
  /// route NS-touching commits (and anything they cannot enumerate)
  /// through build(). Cost: O(touched × (depth + engine call)).
  [[nodiscard]] static std::shared_ptr<const AnswerCache> rebuild(
      const AnswerCache& parent, const ZoneViews& old_zones, const ZoneViews& new_zones,
      const std::vector<dns::Name>& touched);

  /// Fast-path attempt on a raw query datagram. On hit, assembles the
  /// complete reply into `reply` and returns true. Returns false (and
  /// leaves `reply` alone) whenever equivalence with the decoded path
  /// cannot be guaranteed cheaply; the caller then takes that path.
  [[nodiscard]] bool try_answer(std::span<const std::uint8_t> query_wire,
                                util::Bytes& reply) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    // Key: canonical packed qname bytes (lowercased wire form, as
    // dns::Name::packed()) + 2 big-endian qtype bytes; hash cached so
    // persistent-trie probes and inserts never rehash.
    std::string key;
    std::size_t hash = 0;
    util::Bytes answers;  // wire bytes after the question section
    std::uint16_t ancount = 0;

    [[nodiscard]] std::string_view key_view() const noexcept { return key; }
    [[nodiscard]] std::size_t key_hash() const noexcept { return hash; }
  };

  // Persistent: copying `entries_` is O(1) and shares all structure,
  // which is what makes rebuild() proportional to the touched set.
  util::PMap<Entry> entries_;
};

}  // namespace sns::runtime
