#include "runtime/runtime.hpp"

#include <chrono>
#include <thread>

#include "federation/ixfr.hpp"
#include "obs/json.hpp"
#include "spatial/area.hpp"
#include "spatial/spatial_view.hpp"
#include "util/log.hpp"

namespace sns::runtime {

std::size_t ZoneSnapshot::record_count() const {
  std::size_t total = 0;
  for (const auto& zone : zones) total += zone->record_count();
  return total;
}

ServerRuntime::ServerRuntime(std::string name, RuntimeOptions options)
    : name_(std::move(name)), options_(options) {}

ServerRuntime::~ServerRuntime() { stop(); }

util::Status ServerRuntime::start(const transport::Endpoint& at,
                                  std::vector<server::ZoneViewPtr> zones) {
  if (started_) return util::fail("runtime already started");
  publish(std::move(zones));

  std::size_t n = options_.threads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());

  WorkerOptions worker_options{options_.tcp, options_.stats_interval, options_.udp_batch};
  transport::Endpoint bind_at = at;
  for (std::size_t i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>(i, worker_options);
    worker->set_stats_hook([this](obs::MetricsRegistry& m) {
      // Every shard reports the same fleet-wide generation; max-merge
      // keeps the fleet "total" from multiplying it by the shard count.
      auto& gen = m.gauge("runtime.worker.snapshot_generation");
      gen.set_merge(obs::Gauge::Merge::Max);
      gen.set(static_cast<double>(store_.generation()));
    });
    auto status = worker->start(bind_at, /*reuse_port=*/true, make_handler(*worker),
                                make_raw_handler(*worker));
    if (!status.ok()) {
      stop();
      return status;
    }
    // Worker 0 realises an ephemeral port; every sibling then shares
    // the concrete endpoint through SO_REUSEPORT.
    if (i == 0) bind_at = worker->local();
    workers_.push_back(std::move(worker));
  }
  started_ = true;
  util::log_info("runtime", name_, ": ", workers_.size(), " worker shard",
                 workers_.size() == 1 ? "" : "s", " on ", bind_at.to_string());
  return util::ok_status();
}

std::uint64_t ServerRuntime::publish(std::vector<server::ZoneViewPtr> zones) {
  // A wholesale replacement has no commit log, so no delta can bridge
  // the old and new zone sets: drop the journals and let secondaries
  // behind the new serials take one full transfer each.
  journals_.clear();
  return store_.publish(make_snapshot(std::move(zones)));
}

std::shared_ptr<ZoneSnapshot> ServerRuntime::make_snapshot(
    std::vector<server::ZoneViewPtr> zones) const {
  auto snap = std::make_shared<ZoneSnapshot>();
  snap->zones = std::move(zones);
  // Precompiling here — off the serving path, before the snapshot is
  // visible to any reader — is what lets serving-time hits skip
  // decode/engine/encode entirely without a single lock (DESIGN.md §12).
  if (options_.answer_cache) snap->answer_cache = AnswerCache::build(snap->zones);
  if (options_.spatial)
    snap->spatial = spatial::SpatialView::build(snap->zones, options_.spatial_backend);
  return snap;
}

std::shared_ptr<ZoneSnapshot> ServerRuntime::make_successor(
    const ZoneSnapshot& parent, std::vector<server::ZoneViewPtr> zones,
    const std::vector<dns::Name>& touched, bool full_rebuild) {
  // Per-name invalidation is sound only when the commit enumerated its
  // touched owners and no delegation moved (an NS change occludes or
  // reveals whole subtrees). Everything else shares the parent caches
  // and re-derives O(touched) entries — this is what keeps a dynamic
  // update O(records touched × depth) end to end instead of O(zone).
  // The answer cache and the spatial view follow the same discipline;
  // both are sealed before the snapshot becomes visible to any reader.
  auto snap = std::make_shared<ZoneSnapshot>();
  snap->zones = std::move(zones);
  if (options_.answer_cache) {
    if (full_rebuild || parent.answer_cache == nullptr) {
      runtime_metrics_.counter("runtime.answer_cache.rebuild_full").add();
      snap->answer_cache = AnswerCache::build(snap->zones);
    } else {
      runtime_metrics_.counter("runtime.answer_cache.rebuild_incremental").add();
      snap->answer_cache =
          AnswerCache::rebuild(*parent.answer_cache, parent.zones, snap->zones, touched);
    }
  }
  if (options_.spatial) {
    if (full_rebuild || parent.spatial == nullptr) {
      runtime_metrics_.counter("runtime.spatial.rebuild_full").add();
      snap->spatial = spatial::SpatialView::build(snap->zones, options_.spatial_backend);
    } else {
      // SpatialView::rebuild itself compacts to a full build when the
      // overlay outgrows its cap; that still counts as incremental here
      // (the caller asked for — and the commit permitted — sharing).
      runtime_metrics_.counter("runtime.spatial.rebuild_incremental").add();
      snap->spatial =
          spatial::SpatialView::rebuild(*parent.spatial, parent.zones, snap->zones, touched);
    }
  }
  return snap;
}

const transport::Endpoint& ServerRuntime::local() const {
  static const transport::Endpoint kUnbound{};
  return workers_.empty() ? kUnbound : workers_.front()->local();
}

transport::DnsHandler ServerRuntime::make_handler(Worker& worker) {
  auto shard = std::make_shared<Shard>();
  // Created eagerly: with the answer cache absorbing steady-state UDP
  // traffic, a shard may not build an engine for a long time, and the
  // fleet dump should still show the counter (as zero).
  worker.metrics().counter("runtime.worker.snapshot_refresh");
  // AREA observability (satellite of DESIGN.md §14): outcome counters
  // plus a latency histogram, shard-owned like every worker metric and
  // merged into the SIGUSR1 fleet dump. References taken once, here.
  auto& area_hit = worker.metrics().counter("spatial.query.hit");
  auto& area_empty = worker.metrics().counter("spatial.query.empty");
  auto& area_formerr = worker.metrics().counter("spatial.query.formerr");
  auto& area_latency = worker.metrics().histogram("spatial.query.latency_us");
  // Federation counters, same shard-owned discipline: transfer serving
  // outcomes plus the RFC 8767 stale-answer tally (DESIGN.md §15).
  auto& xfer_uptodate = worker.metrics().counter("federation.transfer.uptodate");
  auto& xfer_ixfr = worker.metrics().counter("federation.transfer.ixfr");
  auto& xfer_axfr = worker.metrics().counter("federation.transfer.axfr");
  auto& xfer_refused = worker.metrics().counter("federation.transfer.refused");
  auto& stale_serves = worker.metrics().counter("federation.stale_serves");
  return [this, shard, &worker, &area_hit, &area_empty, &area_formerr, &area_latency,
          &xfer_uptodate, &xfer_ixfr, &xfer_axfr, &xfer_refused, &stale_serves](
             const dns::Message& query, const transport::Endpoint&, transport::Via) {
    // One atomic load per query; the engine is rebuilt only when the
    // snapshot actually changed (reload/update), which it almost never
    // did — pointer equality is the fast path.
    auto snap = store_.acquire();
    if (shard->snap != snap) {
      shard->engine = build_engine(*snap, &worker.metrics());
      shard->snap = std::move(snap);
      worker.metrics().counter("runtime.worker.snapshot_refresh").add();
    }
    // Real clients are outside every spatial view; split-horizon
    // deployments would map source addresses to richer contexts here.
    server::ClientContext ctx;
    if (query.header.opcode == dns::Opcode::Update) return apply_update(query, ctx);
    // IXFR/AXFR questions are answered from the snapshot plus the
    // delta journals, ahead of the engine (whose lookup algorithm has
    // no notion of a transfer question). Over UDP a big answer simply
    // truncates and the secondary retries over TCP, like any response.
    if (options_.transfers && federation::is_transfer_query(query)) {
      auto answer = federation::serve_transfer_query(query, shard->snap->zones, &journals_);
      switch (answer.kind) {
        case federation::TransferKind::UpToDate: xfer_uptodate.add(); break;
        case federation::TransferKind::Incremental: xfer_ixfr.add(); break;
        case federation::TransferKind::Full: xfer_axfr.add(); break;
        case federation::TransferKind::Refused: xfer_refused.add(); break;
      }
      return answer.response;
    }
    // Reverse geodetic queries are answered straight from the
    // snapshot's spatial index — the engine never sees them, but the
    // response flows through the ordinary truncation/TCP-retry path.
    if (options_.spatial && spatial::is_area_query(query)) {
      auto start = std::chrono::steady_clock::now();
      auto response =
          spatial::answer_area(query, shard->snap->spatial.get(), shard->snap->zones);
      auto elapsed = std::chrono::steady_clock::now() - start;
      area_latency.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
      if (response.header.rcode == dns::Rcode::FormErr) {
        area_formerr.add();
      } else if (response.header.rcode == dns::Rcode::NoError) {
        (response.answers.empty() ? area_empty : area_hit).add();
      }
      if (serving_stale() && response.header.rcode == dns::Rcode::NoError) stale_serves.add();
      return response;
    }
    auto response = shard->engine->handle(query, ctx);
    // RFC 8767 accounting: while the edge's mirror is past expiry,
    // every successful answer is by definition served from stale data.
    if (serving_stale() && response.header.rcode == dns::Rcode::NoError) stale_serves.add();
    return response;
  };
}

transport::RawDnsHandler ServerRuntime::make_raw_handler(Worker& worker) {
  if (!options_.answer_cache) return nullptr;
  // Counter references are stable for the registry's lifetime; taking
  // them here (before the worker thread starts) keeps the hot path to
  // one relaxed add. Creating them eagerly also makes the cache's
  // counters visible in fleet dumps from the first SIGUSR1 on.
  auto& hits = worker.metrics().counter("runtime.answer_cache.hit");
  auto& misses = worker.metrics().counter("runtime.answer_cache.miss");
  auto& stale_serves = worker.metrics().counter("federation.stale_serves");
  return [this, &hits, &misses, &stale_serves](std::span<const std::uint8_t> wire,
                                               const transport::Endpoint&, transport::Via,
                                               util::Bytes& reply) {
    auto snap = store_.acquire();
    if (snap->answer_cache != nullptr && snap->answer_cache->try_answer(wire, reply)) {
      hits.add();
      // Cache hits are positive answers by construction; during a
      // parent partition they are stale ones (RFC 8767 tally).
      if (serving_stale()) stale_serves.add();
      return true;
    }
    // Misses include every datagram the fast path cannot prove
    // equivalent (negative answers, malformed input, exotic flags) —
    // they all fall through to the decoded path.
    misses.add();
    return false;
  };
}

std::unique_ptr<server::AuthoritativeServer> ServerRuntime::build_engine(
    const ZoneSnapshot& snap, obs::MetricsRegistry* metrics) const {
  auto engine = std::make_unique<server::AuthoritativeServer>(name_);
  // Each shard wraps the shared immutable views in its own facades —
  // O(1) per zone, no record is copied, and no facade ever crosses a
  // thread.
  for (const auto& view : snap.zones) engine->add_zone(std::make_shared<server::Zone>(view));
  if (update_key_) engine->set_update_key(*update_key_);
  engine->set_metrics(metrics);
  return engine;
}

dns::Message ServerRuntime::apply_update(const dns::Message& query,
                                         const server::ClientContext& ctx) {
  // RFC 2136 write path, run entirely inside SnapshotStore::update()
  // so the read-copy-publish step serialises with every other writer
  // on the store's own mutex — in particular with publish() (the
  // SIGHUP live-reload path on the control-plane thread). A reload
  // landing mid-update can no longer be silently reverted by a
  // successor built from the pre-reload snapshot, and vice versa.
  //
  // Since the immutable-zone redesign this step is O(records touched ×
  // depth), not O(zone): the current views are wrapped in throwaway
  // facades (no copying), the update engine commits transactions whose
  // successors share all untouched structure, and the commit logs say
  // exactly which owners the precompiled-answer cache must re-derive.
  // Readers keep serving the old snapshot throughout — a failed or
  // refused update returns nullptr and leaves no trace.
  dns::Message response;
  store_.update([&](const SnapshotStore<ZoneSnapshot>::Ptr& cur)
                    -> SnapshotStore<ZoneSnapshot>::Ptr {
    std::vector<std::shared_ptr<server::Zone>> facades;
    facades.reserve(cur->zones.size());
    for (const auto& view : cur->zones)
      facades.push_back(std::make_shared<server::Zone>(view));

    server::AuthoritativeServer scratch(name_);
    for (const auto& facade : facades) scratch.add_zone(facade);
    if (update_key_) scratch.set_update_key(*update_key_);
    response = scratch.handle(query, ctx);

    if (response.header.rcode != dns::Rcode::NoError) {
      runtime_metrics_.counter("runtime.zone.update_refused").add();
      return nullptr;
    }
    runtime_metrics_.counter("runtime.zone.update").add();
    // The successor's answer cache is sealed before the publish below
    // makes it visible — a reader never pairs new zones with the old
    // cache or vice versa.
    return successor_from_facades(*cur, facades);
  });
  return response;
}

SnapshotStore<ZoneSnapshot>::Ptr ServerRuntime::successor_from_facades(
    const ZoneSnapshot& parent, const std::vector<std::shared_ptr<server::Zone>>& facades) {
  std::vector<server::ZoneViewPtr> new_zones;
  new_zones.reserve(facades.size());
  std::vector<dns::Name> touched;
  bool full_rebuild = false;
  for (std::size_t i = 0; i < facades.size(); ++i) {
    auto log = facades[i]->take_commit_log();
    new_zones.push_back(facades[i]->view());
    if (log.overflow || log.ns_touched) full_rebuild = true;
    std::vector<dns::Name> zone_touched(log.touched.begin(), log.touched.end());
    // Feed the IXFR journal while the old and new views of this zone
    // are both in hand — the same commit metadata that drives the
    // incremental cache rebuild IS the RFC 1995 delta (DESIGN.md §15).
    // An overflowed log voids the journal instead (its enumeration is
    // incomplete, and a wrong delta is worse than a full transfer).
    if (options_.transfers && i < parent.zones.size())
      journals_.record_commit(*parent.zones[i], *new_zones.back(), zone_touched,
                              log.overflow);
    touched.insert(touched.end(), zone_touched.begin(), zone_touched.end());
  }
  return make_successor(parent, std::move(new_zones), touched, full_rebuild);
}

std::uint64_t ServerRuntime::commit_zones(
    const std::function<bool(std::vector<std::shared_ptr<server::Zone>>&)>& fn) {
  return store_.update([&](const SnapshotStore<ZoneSnapshot>::Ptr& cur)
                           -> SnapshotStore<ZoneSnapshot>::Ptr {
    if (cur == nullptr) return nullptr;
    std::vector<std::shared_ptr<server::Zone>> facades;
    facades.reserve(cur->zones.size());
    for (const auto& view : cur->zones)
      facades.push_back(std::make_shared<server::Zone>(view));
    if (!fn(facades)) return nullptr;
    return successor_from_facades(*cur, facades);
  });
}

void ServerRuntime::merge_metrics(obs::MetricsRegistry& into) const {
  into.merge_from(runtime_metrics_);
  for (const auto& worker : workers_) into.merge_from(worker->metrics());
}

std::string ServerRuntime::metrics_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.field("workers", static_cast<std::uint64_t>(workers_.size()));
  w.field("generation", generation());
  obs::MetricsRegistry total;
  merge_metrics(total);
  w.begin_object("total");
  total.write_fields(w);
  w.end_object();
  w.begin_array("shards");
  for (const auto& worker : workers_) {
    w.begin_object();
    w.field("worker", static_cast<std::uint64_t>(worker->index()));
    worker->metrics().write_fields(w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void ServerRuntime::drain_and_stop() {
  for (auto& worker : workers_) worker->begin_drain(options_.drain_grace);
  for (auto& worker : workers_) worker->join();
  workers_.clear();
  started_ = false;
}

void ServerRuntime::stop() {
  for (auto& worker : workers_) worker->stop();
  for (auto& worker : workers_) worker->join();
  workers_.clear();
  started_ = false;
}

}  // namespace sns::runtime
