#include "runtime/worker.hpp"

#include "util/log.hpp"

namespace sns::runtime {

Worker::Worker(std::size_t index, WorkerOptions options)
    : index_(index), options_(options) {}

Worker::~Worker() {
  stop();
  join();
}

util::Status Worker::start(const transport::Endpoint& at, bool reuse_port,
                           transport::DnsHandler handler, transport::RawDnsHandler raw) {
  if (!loop_.valid()) return util::fail("worker " + std::to_string(index_) + ": event loop init");
  server_ = std::make_unique<transport::DnsTransportServer>(loop_, std::move(handler),
                                                            options_.tcp);
  server_->set_metrics(&metrics_);
  server_->set_udp_batch(options_.udp_batch);
  if (raw) server_->set_raw_udp_handler(std::move(raw));
  if (auto started = server_->start(at, reuse_port); !started.ok()) return started;

  // Self-rescheduling gauge refresh; armed before run() starts, so the
  // timer (like everything else on the loop) is loop-thread-owned.
  loop_.schedule_after(options_.stats_interval, [this] { stats_tick(); });
  refresh_stats();

  thread_ = std::thread([this] {
    util::log_debug("runtime", "worker ", index_, " serving on ", server_->local().to_string());
    loop_.run();
  });
  return util::ok_status();
}

void Worker::begin_drain(transport::Duration grace) {
  loop_.post([this, grace] {
    server_->drain();
    drain_check();
    loop_.schedule_after(grace, [this] {
      if (!loop_.stopped()) {
        metrics_.counter("runtime.worker.drain_forced").add();
        loop_.stop();
      }
    });
  });
}

void Worker::drain_check() {
  if (server_->drained()) {
    loop_.stop();
    return;
  }
  loop_.schedule_after(std::chrono::milliseconds(10), [this] { drain_check(); });
}

void Worker::stop() { loop_.stop(); }

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

void Worker::stats_tick() {
  refresh_stats();
  loop_.schedule_after(options_.stats_interval, [this] { stats_tick(); });
}

void Worker::refresh_stats() {
  if (server_ != nullptr) {
    metrics_.gauge("runtime.worker.connections")
        .set(static_cast<double>(server_->tcp().open_connections()));
    metrics_.gauge("runtime.worker.queue_depth_bytes")
        .set(static_cast<double>(server_->tcp().buffered_bytes()));
  }
  metrics_.gauge("runtime.worker.timers_pending").set(static_cast<double>(loop_.pending()));
  if (stats_hook_) stats_hook_(metrics_);
}

}  // namespace sns::runtime
