// snapshot.hpp — RCU-lite copy-on-write snapshot store.
//
// The concurrency primitive the multi-core serving runtime is built
// on (DESIGN.md §10). The problem it solves: N worker shards answer
// queries against shared zone data while SIGHUP reloads and RFC 2136
// dynamic updates replace that data mid-flight — and a reader must
// never see a half-applied mutation or a freed zone.
//
// The classic answers are a reader-writer lock (readers serialise on a
// contended cache line, writers stall the fleet) or full RCU (needs
// quiescent-state tracking). This store is the middle point that DNS
// serving actually needs, because reads outnumber writes by orders of
// magnitude:
//
//   readers   acquire() — one atomic shared_ptr load per query. The
//             returned snapshot is immutable and kept alive by its
//             refcount for exactly as long as the query handler holds
//             it; no reader ever blocks a writer or another reader.
//   writers   build a complete successor off to the side (copy-on-
//             write), then publish() it with a single atomic exchange.
//             Writers serialise among themselves on a mutex that
//             readers never touch.
//
// Grace periods fall out of shared_ptr refcounting: the old snapshot
// is destroyed when the last in-flight query drops it, which is the
// RCU "wait for readers" rule enforced by the type system instead of
// by scheduler bookkeeping.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace sns::runtime {

template <typename T>
class SnapshotStore {
 public:
  using Ptr = std::shared_ptr<const T>;

  SnapshotStore() = default;
  explicit SnapshotStore(Ptr initial) {
    if (initial != nullptr) publish(std::move(initial));
  }

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Reader side: the current snapshot, pinned for as long as the
  /// returned pointer lives. Wait-free from the caller's perspective
  /// and safe from any thread.
  [[nodiscard]] Ptr acquire() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Monotonic publish count; 0 until the first publish. Safe from any
  /// thread (workers export it as a gauge). Loosely coupled to
  /// acquire(): the count is bumped immediately *before* the pointer
  /// store, so a racing reader may briefly pair the new generation
  /// with the previous snapshot — but never a published snapshot with
  /// a stale count.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Writer side: make `next` the snapshot every subsequent acquire()
  /// returns. Returns the new generation.
  std::uint64_t publish(Ptr next) {
    std::lock_guard lock(writer_mu_);
    std::uint64_t gen = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
    current_.store(std::move(next), std::memory_order_release);
    return gen;
  }

  /// Writer side, read-modify-write: `fn` receives the current
  /// snapshot and returns its successor; the whole step runs under the
  /// writer mutex so concurrent update() and publish() calls compose
  /// instead of losing each other's work. `fn` may return nullptr to
  /// abort, leaving the store untouched (no generation bump) — the
  /// refused-RFC-2136-update path. Returns the resulting generation
  /// either way.
  template <typename Fn>
  std::uint64_t update(Fn&& fn) {
    std::lock_guard lock(writer_mu_);
    Ptr next = std::forward<Fn>(fn)(current_.load(std::memory_order_acquire));
    if (next == nullptr) return generation_.load(std::memory_order_acquire);
    std::uint64_t gen = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
    current_.store(std::move(next), std::memory_order_release);
    return gen;
  }

 private:
  std::atomic<Ptr> current_{};
  std::atomic<std::uint64_t> generation_{0};
  std::mutex writer_mu_;
};

}  // namespace sns::runtime
