#include "runtime/answer_cache.hpp"

#include <set>

#include "dns/message.hpp"
#include "server/authoritative.hpp"
#include "server/zone.hpp"

namespace sns::runtime {

using dns::RRType;

namespace {

// Header flag bits (wire order), mirroring dns/message.cpp.
constexpr std::uint16_t kQrBit = 0x8000;
constexpr std::uint16_t kOpcodeMask = 0x7800;
constexpr std::uint16_t kAaBit = 0x0400;
constexpr std::uint16_t kTcBit = 0x0200;
constexpr std::uint16_t kRdBit = 0x0100;
constexpr std::uint16_t kAdBit = 0x0020;

char ascii_lower(std::uint8_t c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + ('a' - 'A')) : static_cast<char>(c);
}

std::uint16_t rd16(std::span<const std::uint8_t> wire, std::size_t at) {
  return static_cast<std::uint16_t>((wire[at] << 8) | wire[at + 1]);
}

void wr16(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

/// The only additional section the fast path accepts: exactly one
/// empty-rdata OPT (root owner), which is what every EDNS0 client sends
/// and the engine ignores. Anything else could make Message::decode
/// fail (FORMERR on the decoded path), so equivalence demands we bail.
bool is_plain_opt(std::span<const std::uint8_t> wire, std::size_t at) {
  // 0x00 root name, type OPT, class = payload size, 4 TTL bytes, rdlen 0.
  constexpr std::size_t kEmptyOptLen = 11;
  if (wire.size() - at != kEmptyOptLen) return false;
  return wire[at] == 0 && rd16(wire, at + 1) == static_cast<std::uint16_t>(dns::RRType::OPT) &&
         rd16(wire, at + 9) == 0;
}

std::string make_key(std::string_view packed_name, dns::RRType type) {
  std::string key(packed_name);
  key.push_back(static_cast<char>(static_cast<std::uint16_t>(type) >> 8));
  key.push_back(static_cast<char>(static_cast<std::uint16_t>(type) & 0xff));
  return key;
}

/// A response the fast path may cache under (qname, qtype): a plain
/// authoritative positive whose every answer record is literally the
/// queried RRset. A delegation, occluded glue, NODATA-with-SOA or
/// anything carrying authority/additional records has per-query
/// structure the header-patch splice cannot reproduce. The owner/type
/// check guards the incremental path: the engine chases CNAMEs, so a
/// query for a type the owner no longer carries can still produce a
/// positive answer dragging in ANOTHER owner's records — caching that
/// would pin those records under a key no commit touching their real
/// owner ever invalidates.
bool cacheable(const dns::Message& response, const dns::Name& qname, dns::RRType qtype) {
  if (response.header.rcode != dns::Rcode::NoError || !response.header.aa ||
      response.answers.empty() || !response.authorities.empty() ||
      !response.additionals.empty())
    return false;
  for (const auto& rr : response.answers)
    if (rr.name != qname || rr.type != qtype) return false;
  return true;
}

/// The scratch engine mirrors ServerRuntime::build_engine's single
/// catch-all view with no signing and no presence rules — the
/// configuration under which answers depend only on (qname, qtype).
server::AuthoritativeServer make_scratch(const AnswerCache::ZoneViews& zones) {
  server::AuthoritativeServer scratch("answer-cache");
  for (const auto& view : zones)
    scratch.add_zone(std::make_shared<server::Zone>(view));
  return scratch;
}

}  // namespace

std::shared_ptr<const AnswerCache> AnswerCache::build(const ZoneViews& zones) {
  auto cache = std::make_shared<AnswerCache>();

  // The templates come out of the very engine + encoder the decoded
  // path runs, so a hit cannot drift from what the slow path would
  // serve.
  server::AuthoritativeServer scratch = make_scratch(zones);
  server::ClientContext ctx;

  for (const auto& zone : zones) {
    const dns::Name* owner = nullptr;
    dns::RRType type{};
    for (const auto& rr : zone->all_records()) {
      if (owner != nullptr && rr.name == *owner && rr.type == type) continue;  // same RRset
      owner = &rr.name;
      type = rr.type;

      auto query = dns::make_query(0, rr.name, rr.type, /*recursion_desired=*/false);
      dns::Message response = scratch.handle(query, ctx);
      if (!cacheable(response, rr.name, rr.type)) continue;

      auto encoded = response.encode_with_layout();
      // Whether a >512-byte reply fits depends on the querier's EDNS
      // advertised size, which only the decoded path evaluates.
      if (encoded.wire.size() > dns::kClassicUdpLimit) continue;

      auto entry = std::make_shared<Entry>();
      entry->key = make_key(rr.name.packed(), rr.type);
      entry->hash = util::fnv1a(entry->key);
      entry->answers.assign(encoded.wire.begin() +
                                static_cast<std::ptrdiff_t>(encoded.questions_end),
                            encoded.wire.end());
      entry->ancount = static_cast<std::uint16_t>(response.answers.size());
      cache->entries_.set(std::move(entry));
    }
  }
  return cache;
}

std::shared_ptr<const AnswerCache> AnswerCache::rebuild(const AnswerCache& parent,
                                                        const ZoneViews& old_zones,
                                                        const ZoneViews& new_zones,
                                                        const std::vector<dns::Name>& touched) {
  auto cache = std::make_shared<AnswerCache>();
  cache->entries_ = parent.entries_;  // O(1): persistent structural share

  server::AuthoritativeServer scratch = make_scratch(new_zones);
  server::ClientContext ctx;

  for (const dns::Name& name : touched) {
    // Invalidate every type the owner carried before OR after the
    // commit: removed types must lose their entries, added/changed
    // types must regain fresh ones. Types outside the union cannot
    // have changed answers while delegations are untouched (negative
    // and synthesized answers are never cached).
    std::set<RRType> stale;
    for (const auto& view : old_zones)
      for (RRType t : view->types_at(name)) stale.insert(t);
    // But only types the owner carries NOW regain entries — the same
    // enumeration build() runs. Querying a departed type is not a
    // no-op: if the commit left a CNAME at the owner, the engine
    // chases it and answers with the target's records, an entry
    // build() would never create and no later commit would ever
    // invalidate (cacheable() rejects it too; this keeps the probe
    // set minimal).
    std::set<RRType> present;
    for (const auto& view : new_zones)
      for (RRType t : view->types_at(name)) present.insert(t);

    for (RRType type : stale) {
      if (present.contains(type)) continue;  // erased + re-derived below
      std::string key = make_key(name.packed(), type);
      cache->entries_.erase(key, util::fnv1a(key));
    }
    for (RRType type : present) {
      std::string key = make_key(name.packed(), type);
      std::size_t hash = util::fnv1a(key);
      cache->entries_.erase(key, hash);

      auto query = dns::make_query(0, name, type, /*recursion_desired=*/false);
      dns::Message response = scratch.handle(query, ctx);
      if (!cacheable(response, name, type)) continue;
      auto encoded = response.encode_with_layout();
      if (encoded.wire.size() > dns::kClassicUdpLimit) continue;

      auto entry = std::make_shared<Entry>();
      entry->key = std::move(key);
      entry->hash = hash;
      entry->answers.assign(encoded.wire.begin() +
                                static_cast<std::ptrdiff_t>(encoded.questions_end),
                            encoded.wire.end());
      entry->ancount = static_cast<std::uint16_t>(response.answers.size());
      cache->entries_.set(std::move(entry));
    }
  }
  return cache;
}

bool AnswerCache::try_answer(std::span<const std::uint8_t> query_wire,
                             util::Bytes& reply) const {
  constexpr std::size_t kHeader = 12;
  // Smallest hittable query: header + root name + qtype + qclass.
  if (entries_.empty() || query_wire.size() < kHeader + 1 + 4) return false;

  std::uint16_t flags = rd16(query_wire, 2);
  if ((flags & kQrBit) != 0) return false;         // a response, not a query
  if ((flags & kOpcodeMask) != 0) return false;    // only opcode Query (Update → engine!)
  if (rd16(query_wire, 4) != 1) return false;      // qdcount
  if (rd16(query_wire, 6) != 0) return false;      // ancount
  if (rd16(query_wire, 8) != 0) return false;      // nscount
  std::uint16_t arcount = rd16(query_wire, 10);
  if (arcount > 1) return false;

  // Walk the question name: plain labels only (a compression pointer in
  // a question is legal but nothing our clients emit — slow path), and
  // lowercase into the probe key exactly as Name::packed() does.
  std::string key;
  key.reserve(48);
  std::size_t pos = kHeader;
  for (;;) {
    if (pos >= query_wire.size()) return false;
    std::uint8_t len = query_wire[pos];
    if (len == 0) {
      ++pos;
      break;
    }
    if (len > 63) return false;  // compression pointer or malformed
    if (pos + 1 + len > query_wire.size()) return false;
    if (key.size() + 1 + len > 255) return false;  // name too long to be valid
    key.push_back(static_cast<char>(len));
    for (std::size_t i = 0; i < len; ++i) key.push_back(ascii_lower(query_wire[pos + 1 + i]));
    pos += 1 + static_cast<std::size_t>(len);
  }
  if (pos + 4 > query_wire.size()) return false;
  std::uint16_t qtype = rd16(query_wire, pos);
  if (rd16(query_wire, pos + 2) != 1) return false;  // class IN only
  std::size_t question_end = pos + 4;

  // Everything after the question must be either nothing or the one
  // empty OPT; arbitrary trailing bytes go to the decoded path.
  if (arcount == 0 ? question_end != query_wire.size()
                   : !is_plain_opt(query_wire, question_end))
    return false;

  key.push_back(static_cast<char>(qtype >> 8));
  key.push_back(static_cast<char>(qtype & 0xff));
  const Entry* entry = entries_.find(key, util::fnv1a(key));
  if (entry == nullptr) return false;

  // Assemble: patched header, the client's question bytes verbatim
  // (case echoed; identical label lengths keep the template's
  // compression pointers valid), precompiled answer bytes. The flag
  // mapping reproduces make_response: opcode/TC/RD/AD echoed, QR and
  // AA set, RA and RCODE cleared, Z bits dropped.
  std::size_t question_len = question_end - kHeader;
  reply.clear();
  reply.reserve(kHeader + question_len + entry->answers.size());
  reply.push_back(query_wire[0]);  // id
  reply.push_back(query_wire[1]);
  wr16(reply, static_cast<std::uint16_t>(
                  (flags & (kOpcodeMask | kTcBit | kRdBit | kAdBit)) | kQrBit | kAaBit));
  wr16(reply, 1);               // qdcount
  wr16(reply, entry->ancount);  // ancount
  wr16(reply, 0);               // nscount
  wr16(reply, 0);               // arcount (the engine never echoes an OPT)
  reply.insert(reply.end(), query_wire.begin() + kHeader,
               query_wire.begin() + static_cast<std::ptrdiff_t>(question_end));
  reply.insert(reply.end(), entry->answers.begin(), entry->answers.end());
  return true;
}

}  // namespace sns::runtime
