// worker.hpp — one serving shard of the multi-core runtime.
//
// A Worker is the unit of parallelism: its own transport::EventLoop on
// its own thread, its own UDP+TCP listeners bound to the shared
// endpoint via SO_REUSEPORT (the kernel spreads datagrams and accepts
// across sibling shards), and its own obs::MetricsRegistry so the hot
// path never contends on a shared counter cache line. Nothing inside a
// worker is touched by another thread except through two doors:
// EventLoop::post() (the control plane injecting loop-owned work, e.g.
// drain) and the registry's relaxed atomics (the dump path reading a
// live shard's numbers). See DESIGN.md §10 for the ownership table.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "obs/metrics.hpp"
#include "transport/dns_server.hpp"
#include "transport/event_loop.hpp"

namespace sns::runtime {

struct WorkerOptions {
  transport::TcpOptions tcp;
  /// Cadence of the self-scheduled gauge refresh (connections, queue
  /// depth, snapshot generation) on the worker's own loop.
  transport::Duration stats_interval = std::chrono::milliseconds(500);
  /// Datagrams per UDP syscall round (UdpListener::set_batch_size).
  std::size_t udp_batch = transport::kUdpBatchDefault;
};

class Worker {
 public:
  Worker(std::size_t index, WorkerOptions options);
  ~Worker();
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Extra gauges folded into each stats refresh (the runtime uses
  /// this to stamp the current snapshot generation). Set before
  /// start(); runs on the worker thread.
  void set_stats_hook(std::function<void(obs::MetricsRegistry&)> hook) {
    stats_hook_ = std::move(hook);
  }

  /// Bind both listeners to `at` (SO_REUSEPORT when `reuse_port`) with
  /// `handler` as the query entry point — preceded on UDP by the
  /// optional `raw` wire fast path (handler.hpp) — then start the
  /// serving thread. Both handlers run on this worker's thread only.
  util::Status start(const transport::Endpoint& at, bool reuse_port,
                     transport::DnsHandler handler, transport::RawDnsHandler raw = nullptr);

  /// Graceful shutdown: posts a drain to the loop (stop accepting,
  /// flush owed TCP answers), polls for completion on the loop's own
  /// timer wheel, and force-stops at `grace`. join() afterwards.
  void begin_drain(transport::Duration grace);

  /// Immediate stop (thread-safe); join() afterwards.
  void stop();
  void join();

  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] const transport::Endpoint& local() const noexcept { return server_->local(); }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] transport::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] bool running() const noexcept { return thread_.joinable(); }

 private:
  void refresh_stats();
  void stats_tick();
  void drain_check();

  std::size_t index_;
  WorkerOptions options_;
  obs::MetricsRegistry metrics_;
  transport::EventLoop loop_;
  std::unique_ptr<transport::DnsTransportServer> server_;
  std::function<void(obs::MetricsRegistry&)> stats_hook_;
  std::thread thread_;
};

}  // namespace sns::runtime
