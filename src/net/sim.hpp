// sim.hpp — deterministic discrete-event simulation core.
//
// All SNS experiments run on virtual time: a SimClock that only moves
// when the simulation says so, plus an EventScheduler for timed
// callbacks (mapping expiries, beacon chirps, cache TTLs). Determinism
// is the point — every benchmark in EXPERIMENTS.md reproduces exactly
// from its seed.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sns::net {

/// Virtual time since simulation start.
using Duration = std::chrono::microseconds;
using TimePoint = std::chrono::microseconds;

constexpr Duration ms(std::int64_t v) { return std::chrono::milliseconds(v); }
constexpr Duration us(std::int64_t v) { return Duration(v); }

/// Monotonic virtual clock. Only the scheduler (or an explicit
/// advance) moves it; nothing reads wall-clock time.
class SimClock {
 public:
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Move time forward. Precondition: t >= now().
  void advance_to(TimePoint t);
  void advance(Duration d) { advance_to(now_ + d); }

 private:
  TimePoint now_{0};
};

/// Priority queue of timed callbacks over a SimClock.
///
/// Events scheduled for the same instant fire in scheduling order
/// (stable), which keeps runs reproducible.
class EventScheduler {
 public:
  explicit EventScheduler(SimClock& clock) : clock_(clock) {}

  void schedule_at(TimePoint t, std::function<void()> fn);
  void schedule_after(Duration d, std::function<void()> fn) {
    schedule_at(clock_.now() + d, std::move(fn));
  }

  /// Run every event due at or before `t`, advancing the clock to each
  /// event's time, and finally to `t`.
  void run_until(TimePoint t);

  /// Run until the queue is empty.
  void run_all();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  SimClock& clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sns::net
