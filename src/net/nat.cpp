#include "net/nat.hpp"

namespace sns::net {

using util::fail;
using util::Result;

Result<NatMapping> NatBox::request_mapping(NodeId internal_node, std::uint16_t internal_port,
                                           Duration lifetime, TimePoint now) {
  auto key = std::make_pair(internal_node, internal_port);
  auto existing = by_internal_.find(key);
  if (existing != by_internal_.end()) {
    // Renewal: extend the lifetime of the existing mapping in place.
    NatMapping& m = by_port_.at(existing->second);
    m.expires = now + lifetime;
    return m;
  }
  if (by_port_.size() >= 1000) return fail("nat: port pool exhausted");
  while (by_port_.contains(next_port_)) ++next_port_;
  NatMapping m{external_ip_, next_port_, internal_node, internal_port, now + lifetime};
  by_port_[next_port_] = m;
  by_internal_[key] = next_port_;
  ++next_port_;
  return m;
}

void NatBox::release_mapping(NodeId internal_node, std::uint16_t internal_port) {
  auto key = std::make_pair(internal_node, internal_port);
  auto it = by_internal_.find(key);
  if (it == by_internal_.end()) return;
  by_port_.erase(it->second);
  by_internal_.erase(it);
}

std::optional<NatMapping> NatBox::translate(std::uint16_t external_port, TimePoint now) const {
  auto it = by_port_.find(external_port);
  if (it == by_port_.end() || it->second.expires <= now) return std::nullopt;
  return it->second;
}

std::size_t NatBox::expire(TimePoint now) {
  std::size_t evicted = 0;
  for (auto it = by_port_.begin(); it != by_port_.end();) {
    if (it->second.expires <= now) {
      by_internal_.erase({it->second.internal_node, it->second.internal_port});
      it = by_port_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

std::size_t NatBox::active_mappings(TimePoint now) const {
  std::size_t count = 0;
  for (const auto& [port, m] : by_port_)
    if (m.expires > now) ++count;
  return count;
}

}  // namespace sns::net
