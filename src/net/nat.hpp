// nat.hpp — simulated NAT with a PCP-style mapping protocol.
//
// §3.1 of the paper: "if the device hosting the spatial name is behind
// NAT, a global IP could be dynamically created for a particular port as
// a side-effect of the DNS resolution using, for example, the Port
// Control Protocol … maintained for the duration of the DNS response
// TTL". NatBox implements exactly that contract: MAP requests create an
// (external ip, external port) → internal endpoint binding whose
// lifetime is supplied by the caller (the SNS sets it to the answer's
// TTL), and translation fails once the mapping expires.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "net/address.hpp"
#include "net/network.hpp"
#include "net/sim.hpp"
#include "util/result.hpp"

namespace sns::net {

/// An active inbound mapping on the NAT.
struct NatMapping {
  Ipv4Addr external_ip;
  std::uint16_t external_port = 0;
  NodeId internal_node = kInvalidNode;
  std::uint16_t internal_port = 0;
  TimePoint expires{0};
};

class NatBox {
 public:
  /// `external_ip` is the NAT's public address; mappings hand out ports
  /// from `first_port` upward.
  NatBox(Ipv4Addr external_ip, std::uint16_t first_port = 40000)
      : external_ip_(external_ip), next_port_(first_port) {}

  /// PCP MAP: create (or renew) an inbound mapping for the internal
  /// endpoint with the given lifetime. Renewal keeps the same external
  /// port. Fails when the (deliberately finite) port pool is exhausted.
  util::Result<NatMapping> request_mapping(NodeId internal_node, std::uint16_t internal_port,
                                           Duration lifetime, TimePoint now);

  /// PCP MAP with lifetime 0: delete the mapping (RFC 6887 §15).
  void release_mapping(NodeId internal_node, std::uint16_t internal_port);

  /// Inbound translation: which internal endpoint does this external
  /// port reach right now? nullopt = no live mapping (dropped packet).
  [[nodiscard]] std::optional<NatMapping> translate(std::uint16_t external_port,
                                                    TimePoint now) const;

  /// Drop expired mappings; returns how many were evicted.
  std::size_t expire(TimePoint now);

  [[nodiscard]] std::size_t active_mappings(TimePoint now) const;
  [[nodiscard]] Ipv4Addr external_ip() const { return external_ip_; }

 private:
  Ipv4Addr external_ip_;
  std::uint16_t next_port_;
  // Keyed by external port; secondary index by internal endpoint for renewal.
  std::map<std::uint16_t, NatMapping> by_port_;
  std::map<std::pair<NodeId, std::uint16_t>, std::uint16_t> by_internal_;
};

}  // namespace sns::net
