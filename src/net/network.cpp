#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sns::net {

using util::fail;
using util::Result;

LinkSpec lan_link() { return LinkSpec{us(200), us(50), 0.0}; }

LinkSpec wan_link(Duration latency, double loss) { return LinkSpec{latency, latency / 10, loss}; }

LinkSpec wireless_link(double loss) { return LinkSpec{ms(2), us(500), loss}; }

Network::Network(std::uint64_t seed) : scheduler_(clock_), rng_(seed) {}

NodeId Network::add_node(std::string name) {
  nodes_.push_back(NodeState{std::move(name), {}, {}, {}, std::nullopt});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::connect(NodeId a, NodeId b, LinkSpec spec) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  nodes_[a].edges.push_back(Edge{b, spec, false});
  nodes_[b].edges.push_back(Edge{a, spec, false});
}

void Network::set_link_down(NodeId a, NodeId b, bool down) {
  for (auto& e : nodes_[a].edges)
    if (e.peer == b) e.down = down;
  for (auto& e : nodes_[b].edges)
    if (e.peer == a) e.down = down;
}

const std::string& Network::node_name(NodeId id) const { return nodes_.at(id).name; }

void Network::set_handler(NodeId node, Handler handler) {
  nodes_.at(node).handler = std::move(handler);
}

const Network::Edge* Network::find_edge(NodeId from, NodeId to) const {
  for (const auto& e : nodes_[from].edges)
    if (e.peer == to && !e.down) return &e;
  return nullptr;
}

std::vector<NodeId> Network::route(NodeId from, NodeId to) const {
  if (from == to) return {};
  constexpr auto kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(nodes_.size(), kInf);
  std::vector<NodeId> prev(nodes_.size(), kInvalidNode);
  using Item = std::pair<std::int64_t, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[from] = 0;
  heap.emplace(0, from);
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    for (const auto& e : nodes_[u].edges) {
      if (e.down) continue;
      std::int64_t nd = d + e.spec.latency.count();
      if (nd < dist[e.peer]) {
        dist[e.peer] = nd;
        prev[e.peer] = u;
        heap.emplace(nd, e.peer);
      }
    }
  }
  if (dist[to] == kInf) return {};
  std::vector<NodeId> path;
  for (NodeId v = to; v != from; v = prev[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<Duration> Network::sample_path(const std::vector<NodeId>& path, NodeId from) {
  Duration total{0};
  NodeId current = from;
  for (NodeId hop : path) {
    const Edge* edge = find_edge(current, hop);
    if (edge == nullptr) return std::nullopt;  // link went down mid-route
    if (edge->spec.loss > 0.0 && rng_.chance(edge->spec.loss)) return std::nullopt;
    Duration jitter{0};
    if (edge->spec.jitter.count() > 0)
      jitter = Duration(static_cast<std::int64_t>(
          rng_.next_below(static_cast<std::uint64_t>(edge->spec.jitter.count()))));
    total += edge->spec.latency + jitter;
    current = hop;
  }
  return total;
}

Result<Duration> Network::path_latency(NodeId from, NodeId to) const {
  auto path = route(from, to);
  if (path.empty() && from != to) return fail("no route from " + nodes_[from].name + " to " +
                                              nodes_[to].name);
  Duration total{0};
  NodeId current = from;
  for (NodeId hop : path) {
    const Edge* edge = find_edge(current, hop);
    if (edge == nullptr) return fail("link down on route");
    total += edge->spec.latency;
    current = hop;
  }
  return total;
}

Result<ExchangeResult> Network::exchange(NodeId from, NodeId to,
                                         std::span<const std::uint8_t> payload, Duration timeout,
                                         int max_attempts) {
  assert(from < nodes_.size() && to < nodes_.size());
  auto path = route(from, to);
  if (path.empty() && from != to)
    return fail("no route from " + nodes_[from].name + " to " + nodes_[to].name);
  if (!nodes_[to].handler) return fail("destination " + nodes_[to].name + " has no handler");

  obs::ScopedSpan span(tracer_, "net.exchange");
  span.annotate("from", nodes_[from].name);
  span.annotate("to", nodes_[to].name);

  TimePoint start = clock_.now();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    TimePoint attempt_start = clock_.now();
    auto forward = sample_path(path, from);
    std::optional<util::Bytes> response;
    std::optional<Duration> backward;
    if (forward.has_value()) {
      clock_.advance(*forward);  // request delivered
      // The handler may itself advance virtual time (e.g. a recursive
      // resolver performing upstream queries) and/or charge explicit
      // processing delay; both are reflected in the realised RTT.
      Duration saved_delay = processing_delay_;
      processing_delay_ = Duration{0};
      response = nodes_[to].handler(payload, from);
      clock_.advance(processing_delay_);
      processing_delay_ = saved_delay;
      if (response.has_value()) {
        // Response retraces the path in reverse.
        std::vector<NodeId> back(path.rbegin() + 1, path.rend());
        back.push_back(from);
        backward = sample_path(back, to);
      }
    }
    if (forward && response && backward) {
      clock_.advance(*backward);
      Duration rtt = clock_.now() - start;
      if (metrics_ != nullptr) {
        metrics_->counter("net.exchange.count").add();
        if (attempt > 1)
          metrics_->counter("net.exchange.retries").add(static_cast<std::uint64_t>(attempt - 1));
        metrics_->histogram("net.hop.latency_us")
            .record(static_cast<std::uint64_t>(rtt.count()));
      }
      span.annotate("rtt_us", static_cast<std::int64_t>(rtt.count()));
      span.annotate("attempts", static_cast<std::int64_t>(attempt));
      return ExchangeResult{std::move(*response), rtt, attempt};
    }
    if (metrics_ != nullptr) metrics_->counter("net.exchange.lost_attempts").add();
    // Lost somewhere (or the server stayed silent): burn the remainder
    // of this attempt's timeout (the clock may already have passed it
    // if a silent handler did slow nested work).
    TimePoint deadline = attempt_start + timeout;
    if (clock_.now() < deadline) clock_.advance_to(deadline);
  }
  if (metrics_ != nullptr) metrics_->counter("net.exchange.timeouts").add();
  span.annotate("outcome", "timeout");
  return fail("exchange timed out after " + std::to_string(max_attempts) + " attempts");
}

void Network::join_group(std::uint32_t group, NodeId node) { groups_[group].push_back(node); }

std::vector<MulticastResponse> Network::multicast_query(NodeId from, std::uint32_t group,
                                                        std::span<const std::uint8_t> payload,
                                                        Duration window) {
  obs::ScopedSpan span(tracer_, "net.multicast");
  if (metrics_ != nullptr) metrics_->counter("net.multicast.queries").add();
  std::vector<MulticastResponse> out;
  auto it = groups_.find(group);
  if (it != groups_.end()) {
    for (NodeId member : it->second) {
      if (member == from || !nodes_[member].handler) continue;
      auto path = route(from, member);
      if (path.empty() && member != from) continue;
      auto forward = sample_path(path, from);
      if (!forward) continue;  // multicast is unreliable: no retry
      Duration saved_delay = processing_delay_;
      processing_delay_ = Duration{0};
      auto response = nodes_[member].handler(payload, from);
      *forward += processing_delay_;
      processing_delay_ = saved_delay;
      if (!response) continue;
      std::vector<NodeId> back(path.rbegin() + 1, path.rend());
      back.push_back(from);
      auto backward = sample_path(back, member);
      if (!backward) continue;
      Duration arrival = *forward + *backward;
      if (arrival <= window) out.push_back(MulticastResponse{member, std::move(*response), arrival});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MulticastResponse& a, const MulticastResponse& b) {
              return a.elapsed < b.elapsed;
            });
  clock_.advance(window);
  span.annotate("responses", static_cast<std::int64_t>(out.size()));
  if (metrics_ != nullptr)
    metrics_->counter("net.multicast.responses").add(out.size());
  return out;
}

void Network::place_in_room(NodeId node, std::uint32_t room) { nodes_.at(node).room = room; }

std::optional<std::uint32_t> Network::room_of(NodeId node) const { return nodes_.at(node).room; }

void Network::set_audio_handler(NodeId node, AudioHandler handler) {
  nodes_.at(node).audio_handler = std::move(handler);
}

void Network::audio_broadcast(NodeId from, std::span<const std::uint8_t> payload,
                              Duration chirp_duration) {
  auto room = nodes_.at(from).room;
  clock_.advance(chirp_duration);
  if (!room.has_value()) return;  // chirping into the void
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (id == from) continue;
    const auto& node = nodes_[id];
    if (node.room == room && node.audio_handler) node.audio_handler(payload, from);
  }
}

}  // namespace sns::net
