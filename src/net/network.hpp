// network.hpp — simulated multi-protocol network topology.
//
// Models everything the SNS needs from a network, per DESIGN.md §2:
//   * nodes connected by point-to-point links with latency, jitter and
//     loss (LAN links ~sub-ms, WAN links tens of ms);
//   * synchronous request/response ("UDP query with timeout & retry"),
//     which is how the DNS client code talks to servers — latency is
//     accounted in virtual time, so resolution latency benchmarks are
//     exact;
//   * multicast groups for mDNS / DNS-SD;
//   * a room-scoped audio broadcast medium for the paper's
//     audio-beacon presence proofs (§3.1) and DTMF addressing (Table 1);
//   * link up/down control for the offline-edge ablation (§4.2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "net/sim.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace sns::obs {
class MetricsRegistry;
class Tracer;
}  // namespace sns::obs

namespace sns::net {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xffffffff;

/// Parameters of one direction of a link.
struct LinkSpec {
  Duration latency = us(200);
  Duration jitter = us(0);   // uniform in [0, jitter)
  double loss = 0.0;         // per-traversal drop probability
};

/// Preset link profiles used across benches so experiments agree on
/// what "a LAN" and "a WAN" mean.
LinkSpec lan_link();                    // 200us, 50us jitter, lossless
LinkSpec wan_link(Duration latency = ms(40), double loss = 0.0);
LinkSpec wireless_link(double loss);    // 2ms, 500us jitter, configurable loss

/// Result of a successful request/response exchange.
struct ExchangeResult {
  util::Bytes response;
  Duration rtt{0};
  int attempts = 1;
};

/// One response collected during a multicast query window.
struct MulticastResponse {
  NodeId responder = kInvalidNode;
  util::Bytes payload;
  Duration elapsed{0};  // time from query emission to response arrival
};

class Network {
 public:
  /// Handler invoked when a datagram arrives: return a payload to send
  /// a response, or nullopt to stay silent.
  using Handler =
      std::function<std::optional<util::Bytes>(std::span<const std::uint8_t> payload, NodeId from)>;
  /// Handler for audio chirps heard in the node's room (no response path;
  /// reply by chirping back).
  using AudioHandler = std::function<void(std::span<const std::uint8_t> payload, NodeId from)>;

  explicit Network(std::uint64_t seed);

  // -- topology -----------------------------------------------------------
  NodeId add_node(std::string name);
  void connect(NodeId a, NodeId b, LinkSpec spec);
  /// Take a link down (true) or restore it (false); affects both directions.
  void set_link_down(NodeId a, NodeId b, bool down);
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  // -- datagram service ---------------------------------------------------
  void set_handler(NodeId node, Handler handler);

  /// Synchronous query with timeout & retry. Advances virtual time by the
  /// realised RTT (including lost attempts). Fails if no route or all
  /// attempts are lost.
  util::Result<ExchangeResult> exchange(NodeId from, NodeId to,
                                        std::span<const std::uint8_t> payload,
                                        Duration timeout = ms(2000), int max_attempts = 3);

  /// One-way latency the next packet from->to would see (for diagnostics);
  /// fails if unreachable.
  util::Result<Duration> path_latency(NodeId from, NodeId to) const;

  // -- multicast ----------------------------------------------------------
  void join_group(std::uint32_t group, NodeId node);
  /// Send to a multicast group and collect responses arriving within
  /// `window`. Advances virtual time by `window` (a browser must wait the
  /// whole window before concluding the set of responders is complete).
  std::vector<MulticastResponse> multicast_query(NodeId from, std::uint32_t group,
                                                 std::span<const std::uint8_t> payload,
                                                 Duration window);

  // -- audio medium (rooms) -----------------------------------------------
  void place_in_room(NodeId node, std::uint32_t room);
  [[nodiscard]] std::optional<std::uint32_t> room_of(NodeId node) const;
  void set_audio_handler(NodeId node, AudioHandler handler);
  /// Chirp an audio payload; heard only by nodes in the same room.
  /// Advances time by the chirp duration (audio is slow: ~150 ms).
  void audio_broadcast(NodeId from, std::span<const std::uint8_t> payload,
                       Duration chirp_duration = ms(150));

  /// Called from inside a datagram handler: charge `d` of processing
  /// time to the in-flight request (it extends that exchange's RTT /
  /// multicast arrival time instead of warping the global clock).
  void add_processing_delay(Duration d) { processing_delay_ += d; }

  // -- observability ------------------------------------------------------
  /// Attach a metrics registry / tracer (both optional, non-owning).
  /// Exchanges then record `net.hop.latency_us`, loss and retry
  /// counters, and emit one `net.exchange` span per datagram delivery
  /// (nesting whatever the destination handler does under it).
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  // -- time ---------------------------------------------------------------
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] const SimClock& clock() const noexcept { return clock_; }
  [[nodiscard]] EventScheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

 private:
  struct Edge {
    NodeId peer;
    LinkSpec spec;
    bool down = false;
  };
  struct NodeState {
    std::string name;
    Handler handler;
    AudioHandler audio_handler;
    std::vector<Edge> edges;
    std::optional<std::uint32_t> room;
  };

  /// Dijkstra over expected latency; returns hop sequence (excluding
  /// `from`, including `to`), or empty if unreachable.
  [[nodiscard]] std::vector<NodeId> route(NodeId from, NodeId to) const;
  /// Sample the realised latency of one traversal of a path; nullopt = lost.
  std::optional<Duration> sample_path(const std::vector<NodeId>& path, NodeId from);
  [[nodiscard]] const Edge* find_edge(NodeId from, NodeId to) const;

  std::vector<NodeState> nodes_;
  std::map<std::uint32_t, std::vector<NodeId>> groups_;
  SimClock clock_;
  EventScheduler scheduler_;
  util::Rng rng_;
  Duration processing_delay_{0};  // accumulated by the current handler
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sns::net
