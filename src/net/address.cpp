#include "net/address.hpp"

#include <charconv>
#include <cstdio>

#include "util/strings.hpp"

namespace sns::net {

using util::fail;
using util::Result;

namespace {

Result<std::uint8_t> parse_hex_byte(std::string_view s) {
  auto bytes = util::from_hex(s);
  if (!bytes.ok() || bytes.value().size() != 1) return fail("invalid hex byte");
  return bytes.value()[0];
}

template <std::size_t N>
Result<std::array<std::uint8_t, N>> parse_colon_hex(std::string_view text) {
  auto parts = util::split(text, ':');
  if (parts.size() != N) return fail("expected " + std::to_string(N) + " colon-separated bytes");
  std::array<std::uint8_t, N> out{};
  for (std::size_t i = 0; i < N; ++i) {
    if (parts[i].size() != 2) return fail("each byte must be 2 hex digits");
    auto b = parse_hex_byte(parts[i]);
    if (!b.ok()) return b.error();
    out[i] = b.value();
  }
  return out;
}

template <std::size_t N>
std::string format_colon_hex(const std::array<std::uint8_t, N>& octets) {
  std::string out;
  char buf[4];
  for (std::size_t i = 0; i < N; ++i) {
    std::snprintf(buf, sizeof buf, "%02x", octets[i]);
    if (i != 0) out += ':';
    out += buf;
  }
  return out;
}

}  // namespace

Result<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  auto parts = util::split(text, '.');
  if (parts.size() != 4) return fail("ipv4: expected 4 octets");
  Ipv4Addr out;
  for (std::size_t i = 0; i < 4; ++i) {
    if (parts[i].empty() || parts[i].size() > 3) return fail("ipv4: bad octet");
    unsigned value = 0;
    auto [ptr, ec] =
        std::from_chars(parts[i].data(), parts[i].data() + parts[i].size(), value);
    if (ec != std::errc{} || ptr != parts[i].data() + parts[i].size() || value > 255)
      return fail("ipv4: bad octet '" + parts[i] + "'");
    out.octets[i] = static_cast<std::uint8_t>(value);
  }
  return out;
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octets[0], octets[1], octets[2], octets[3]);
  return buf;
}

std::uint32_t Ipv4Addr::as_u32() const {
  return (static_cast<std::uint32_t>(octets[0]) << 24) |
         (static_cast<std::uint32_t>(octets[1]) << 16) |
         (static_cast<std::uint32_t>(octets[2]) << 8) | octets[3];
}

Ipv4Addr Ipv4Addr::from_u32(std::uint32_t v) {
  return Ipv4Addr{{static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
                   static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)}};
}

Result<Ipv6Addr> Ipv6Addr::parse(std::string_view text) {
  // Handle one optional `::`. Split into the part before and after it.
  std::size_t gap = text.find("::");
  std::vector<std::string> head, tail;
  if (gap == std::string_view::npos) {
    head = util::split(text, ':');
  } else {
    std::string_view before = text.substr(0, gap);
    std::string_view after = text.substr(gap + 2);
    if (after.find("::") != std::string_view::npos) return fail("ipv6: multiple '::'");
    if (!before.empty()) head = util::split(before, ':');
    if (!after.empty()) tail = util::split(after, ':');
  }

  auto parse_group = [](const std::string& g) -> Result<std::uint16_t> {
    if (g.empty() || g.size() > 4) return fail("ipv6: bad group '" + g + "'");
    unsigned value = 0;
    auto [ptr, ec] = std::from_chars(g.data(), g.data() + g.size(), value, 16);
    if (ec != std::errc{} || ptr != g.data() + g.size()) return fail("ipv6: bad group '" + g + "'");
    return static_cast<std::uint16_t>(value);
  };

  std::size_t total = head.size() + tail.size();
  if (gap == std::string_view::npos) {
    if (total != 8) return fail("ipv6: expected 8 groups");
  } else if (total > 7) {
    return fail("ipv6: too many groups with '::'");
  }

  Ipv6Addr out;
  std::size_t idx = 0;
  for (const auto& g : head) {
    auto v = parse_group(g);
    if (!v.ok()) return v.error();
    out.octets[idx * 2] = static_cast<std::uint8_t>(v.value() >> 8);
    out.octets[idx * 2 + 1] = static_cast<std::uint8_t>(v.value() & 0xff);
    ++idx;
  }
  idx = 8 - tail.size();
  for (const auto& g : tail) {
    auto v = parse_group(g);
    if (!v.ok()) return v.error();
    out.octets[idx * 2] = static_cast<std::uint8_t>(v.value() >> 8);
    out.octets[idx * 2 + 1] = static_cast<std::uint8_t>(v.value() & 0xff);
    ++idx;
  }
  return out;
}

std::string Ipv6Addr::to_string() const {
  std::uint16_t groups[8];
  for (int i = 0; i < 8; ++i)
    groups[i] = static_cast<std::uint16_t>((octets[static_cast<std::size_t>(i * 2)] << 8) |
                                           octets[static_cast<std::size_t>(i * 2 + 1)]);

  // RFC 5952: compress the longest run of >= 2 zero groups.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += (i == 0) ? "::" : ":";
      i += best_len;
      if (i == 8) return out;
      continue;
    }
    std::snprintf(buf, sizeof buf, "%x", groups[i]);
    out += buf;
    if (i != 7) out += ':';
    ++i;
  }
  // Trailing ':' cleanup when compression ended the string handled above;
  // remove a dangling separator left by the loop when compression is at end.
  if (out.size() >= 2 && out.back() == ':' && out[out.size() - 2] != ':') out.pop_back();
  return out;
}

Result<Bdaddr> Bdaddr::parse(std::string_view text) {
  auto octets = parse_colon_hex<6>(text);
  if (!octets.ok()) return fail("bdaddr: " + octets.error().message);
  return Bdaddr{octets.value()};
}

std::string Bdaddr::to_string() const { return format_colon_hex(octets); }

Result<ZigbeeAddr> ZigbeeAddr::parse(std::string_view text) {
  auto octets = parse_colon_hex<8>(text);
  if (!octets.ok()) return fail("zigbee: " + octets.error().message);
  return ZigbeeAddr{octets.value()};
}

std::string ZigbeeAddr::to_string() const { return format_colon_hex(octets); }

Result<LoraDevAddr> LoraDevAddr::parse(std::string_view text) {
  if (text.size() != 8) return fail("lora devaddr: expected 8 hex digits");
  auto bytes = util::from_hex(text);
  if (!bytes.ok()) return fail("lora devaddr: " + bytes.error().message);
  std::uint32_t v = 0;
  for (std::uint8_t b : bytes.value()) v = (v << 8) | b;
  return LoraDevAddr{v};
}

std::string LoraDevAddr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", value);
  return buf;
}

Result<DtmfTone> DtmfTone::parse(std::string_view text) {
  if (text.empty() || text.size() > 32) return fail("dtmf: 1..32 symbols required");
  for (char c : text) {
    bool ok = (c >= '0' && c <= '9') || c == '*' || c == '#';
    if (!ok) return fail("dtmf: invalid symbol");
  }
  return DtmfTone{std::string(text)};
}

std::string to_string(const AnyAddress& address) {
  return std::visit([](const auto& a) { return a.to_string(); }, address);
}

std::string_view family_name(const AnyAddress& address) {
  struct Visitor {
    std::string_view operator()(const Ipv4Addr&) const { return "ipv4"; }
    std::string_view operator()(const Ipv6Addr&) const { return "ipv6"; }
    std::string_view operator()(const Bdaddr&) const { return "bluetooth"; }
    std::string_view operator()(const ZigbeeAddr&) const { return "zigbee"; }
    std::string_view operator()(const LoraDevAddr&) const { return "lorawan"; }
    std::string_view operator()(const DtmfTone&) const { return "audio"; }
  };
  return std::visit(Visitor{}, address);
}

int connectivity_rank(const AnyAddress& address) {
  struct Visitor {
    int operator()(const Bdaddr&) const { return 0; }
    int operator()(const ZigbeeAddr&) const { return 1; }
    int operator()(const DtmfTone&) const { return 2; }
    int operator()(const LoraDevAddr&) const { return 3; }
    int operator()(const Ipv4Addr&) const { return 4; }
    int operator()(const Ipv6Addr&) const { return 5; }
  };
  return std::visit(Visitor{}, address);
}

}  // namespace sns::net
