#include "net/sim.hpp"

#include <cassert>
#include <utility>

namespace sns::net {

void SimClock::advance_to(TimePoint t) {
  assert(t >= now_ && "virtual time cannot go backwards");
  now_ = t;
}

void EventScheduler::schedule_at(TimePoint t, std::function<void()> fn) {
  assert(t >= clock_.now() && "cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventScheduler::run_until(TimePoint t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    // Copy out before pop: the callback may schedule more events.
    Event ev = queue_.top();
    queue_.pop();
    clock_.advance_to(ev.at);
    ev.fn();
  }
  clock_.advance_to(t);
}

void EventScheduler::run_all() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    clock_.advance_to(ev.at);
    ev.fn();
  }
}

}  // namespace sns::net
