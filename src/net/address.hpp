// address.hpp — the addressing vocabulary of the SNS.
//
// The paper's core observation (§2.2) is that devices have *many*
// addresses — IPv4/6, Bluetooth, Zigbee, LoRaWAN, even audio tones — and
// that the name system should be the registry for all of them. These are
// the strongly-typed address values carried in DNS rdata (src/dns) and
// used for delivery by the simulator (src/net).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "util/result.hpp"

namespace sns::net {

/// IPv4 address (RFC 791 dotted quad).
struct Ipv4Addr {
  std::array<std::uint8_t, 4> octets{};

  static util::Result<Ipv4Addr> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::uint32_t as_u32() const;
  static Ipv4Addr from_u32(std::uint32_t v);

  friend auto operator<=>(const Ipv4Addr&, const Ipv4Addr&) = default;
};

/// IPv6 address; parses/prints RFC 5952 canonical form (incl. `::`).
struct Ipv6Addr {
  std::array<std::uint8_t, 16> octets{};

  static util::Result<Ipv6Addr> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Ipv6Addr&, const Ipv6Addr&) = default;
};

/// Bluetooth Device Address: 48 bits, printed "01:23:45:67:89:ab".
struct Bdaddr {
  std::array<std::uint8_t, 6> octets{};

  static util::Result<Bdaddr> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Bdaddr&, const Bdaddr&) = default;
};

/// Zigbee / IEEE 802.15.4 64-bit extended address.
struct ZigbeeAddr {
  std::array<std::uint8_t, 8> octets{};

  static util::Result<ZigbeeAddr> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const ZigbeeAddr&, const ZigbeeAddr&) = default;
};

/// LoRaWAN device address: 32-bit DevAddr printed as 8 hex digits.
struct LoraDevAddr {
  std::uint32_t value = 0;

  static util::Result<LoraDevAddr> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const LoraDevAddr&, const LoraDevAddr&) = default;
};

/// Audio tone prefix (the DTMF record of Table 1): a short digit string
/// that a device chirps / listens for on the room's audio medium.
struct DtmfTone {
  std::string digits;  // characters 0-9, *, #

  static util::Result<DtmfTone> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const { return digits; }

  friend auto operator<=>(const DtmfTone&, const DtmfTone&) = default;
};

/// Any address a device can expose. Order of alternatives is meaningful
/// for `connectivity_rank` below.
using AnyAddress = std::variant<Bdaddr, ZigbeeAddr, DtmfTone, LoraDevAddr, Ipv4Addr, Ipv6Addr>;

/// Human-readable form of any address.
std::string to_string(const AnyAddress& address);

/// Protocol family name ("ipv4", "bluetooth", ...).
std::string_view family_name(const AnyAddress& address);

/// Lower rank = more local / lower energy to use given physical
/// proximity (the paper's "choose the most appropriate option before
/// committing", §2.2). Bluetooth < Zigbee < audio < LoRa < IPv4 < IPv6.
int connectivity_rank(const AnyAddress& address);

}  // namespace sns::net
