// client.hpp — blocking DNS client primitives over real sockets.
//
// The query side of the transport subsystem: plain blocking calls with
// poll()-based deadlines, because a CLI client (sns-dig), a loopback
// test and a bench driver all want straight-line code, not an event
// loop. Three layers:
//
//   udp_query   one datagram exchange, id-checked, with retries
//   TcpClient   a persistent RFC 7766 connection — connect once, send
//               many framed queries (the connection-reuse half of
//               bench_transport's reuse-vs-reconnect comparison)
//   query_auto  the resolution policy clients actually want: try UDP,
//               and when the server answers TC=1, transparently retry
//               the same question over TCP (RFC 7766 §5).
#pragma once

#include <chrono>
#include <cstdint>

#include "dns/message.hpp"
#include "transport/frame.hpp"
#include "transport/socket.hpp"

namespace sns::transport {

struct QueryOptions {
  std::chrono::milliseconds timeout{2000};  // per attempt
  int attempts = 2;                         // UDP retransmissions
  /// EDNS0 payload size advertised on UDP queries that carry no OPT of
  /// their own; 0 = do not add EDNS (classic 512-byte behaviour).
  std::uint16_t edns_udp_size = 1232;
};

/// One UDP exchange. Responses with a mismatched transaction id are
/// ignored (off-path spoofing hygiene), not returned.
util::Result<dns::Message> udp_query(const Endpoint& server, const dns::Message& query,
                                     const QueryOptions& options = {});

/// Persistent DNS-over-TCP connection.
class TcpClient {
 public:
  TcpClient() = default;

  util::Status connect(const Endpoint& server, std::chrono::milliseconds timeout);
  [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }
  void disconnect() { fd_.reset(); }

  /// Send one framed query and block for its framed response.
  util::Result<dns::Message> query(const dns::Message& query_msg,
                                   std::chrono::milliseconds timeout);

 private:
  FdHandle fd_;
  FrameReader reader_;
};

/// One-shot TCP exchange (connect, query, close).
util::Result<dns::Message> tcp_query(const Endpoint& server, const dns::Message& query,
                                     const QueryOptions& options = {});

struct AutoQueryResult {
  dns::Message response;
  bool used_tcp = false;      // final answer travelled over TCP
  bool retried_tcp = false;   // UDP answered TC=1 first
};

/// UDP with automatic truncation→TCP fallback. `force_tcp` skips UDP
/// entirely (sns-dig's +tcp).
util::Result<AutoQueryResult> query_auto(const Endpoint& server, const dns::Message& query,
                                         const QueryOptions& options = {}, bool force_tcp = false);

}  // namespace sns::transport
