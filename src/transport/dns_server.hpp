// dns_server.hpp — UDP + TCP DNS service on one port.
//
// The deployable composition: one DnsTransportServer binds both
// transports to the same address/port (RFC 7766 requires serving both),
// resolves ephemeral ports (port 0) for tests and benches, and feeds a
// single DnsHandler. `snsd` wraps this around AuthoritativeServer; the
// loopback tests wrap it around canned-zone handlers.
#pragma once

#include "transport/tcp_listener.hpp"
#include "transport/udp_listener.hpp"

namespace sns::transport {

class DnsTransportServer {
 public:
  DnsTransportServer(EventLoop& loop, DnsHandler handler,
                     TcpListener::Options tcp_options = TcpListener::Options());

  /// Bind UDP and TCP to `at`. With port 0 the kernel picks the TCP
  /// port and UDP then binds the same number (retried on the rare
  /// collision where that UDP port is already taken).
  util::Status start(const Endpoint& at);
  void close();

  /// The realised endpoint (both transports) after start().
  [[nodiscard]] const Endpoint& local() const noexcept { return udp_.local(); }

  [[nodiscard]] UdpListener& udp() noexcept { return udp_; }
  [[nodiscard]] TcpListener& tcp() noexcept { return tcp_; }

  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    udp_.set_metrics(metrics);
    tcp_.set_metrics(metrics);
  }

 private:
  UdpListener udp_;
  TcpListener tcp_;
};

}  // namespace sns::transport
