// dns_server.hpp — UDP + TCP DNS service on one port.
//
// The deployable composition: one DnsTransportServer binds both
// transports to the same address/port (RFC 7766 requires serving both),
// resolves ephemeral ports (port 0) for tests and benches, and feeds a
// single DnsHandler. `snsd` wraps this around AuthoritativeServer; the
// loopback tests wrap it around canned-zone handlers.
#pragma once

#include "transport/tcp_listener.hpp"
#include "transport/udp_listener.hpp"

namespace sns::transport {

class DnsTransportServer {
 public:
  DnsTransportServer(EventLoop& loop, DnsHandler handler,
                     TcpListener::Options tcp_options = TcpListener::Options());

  /// Bind UDP and TCP to `at`. With port 0 the kernel picks the TCP
  /// port and UDP then binds the same number (retried on the rare
  /// collision where that UDP port is already taken). `reuse_port`
  /// sets SO_REUSEPORT on both sockets so N worker shards can share
  /// one endpoint (src/runtime/).
  util::Status start(const Endpoint& at, bool reuse_port = false);
  void close();

  /// Graceful shutdown, phase 1 (loop thread only): stop taking new
  /// work — the UDP socket closes (peers retry against the siblings
  /// still bound), TCP stops accepting and flushes what it owes.
  /// Complete when drained() turns true.
  void drain();
  [[nodiscard]] bool drained() const noexcept {
    return tcp_.draining() && tcp_.open_connections() == 0;
  }

  /// The realised endpoint (both transports) after start().
  [[nodiscard]] const Endpoint& local() const noexcept { return udp_.local(); }

  [[nodiscard]] UdpListener& udp() noexcept { return udp_; }
  [[nodiscard]] TcpListener& tcp() noexcept { return tcp_; }

  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    udp_.set_metrics(metrics);
    tcp_.set_metrics(metrics);
  }

  /// UDP syscall batching (see UdpListener::set_batch_size). Set before
  /// start().
  void set_udp_batch(std::size_t n) noexcept { udp_.set_batch_size(n); }

  /// Wire-level UDP fast path (handler.hpp); the precompiled-answer
  /// cache hooks in here. TCP keeps the decoded path: it is the
  /// truncation-retry fallback and already amortises syscalls through
  /// pipelining.
  void set_raw_udp_handler(RawDnsHandler raw) { udp_.set_raw_handler(std::move(raw)); }

 private:
  UdpListener udp_;
  TcpListener tcp_;
};

}  // namespace sns::transport
