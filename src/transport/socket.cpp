#include "transport/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sns::transport {

using util::fail;
using util::Result;

void FdHandle::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::string Endpoint::to_string() const {
  return address.to_string() + ":" + std::to_string(port);
}

Result<Endpoint> Endpoint::parse(std::string_view text, std::uint16_t default_port) {
  Endpoint ep;
  ep.port = default_port;
  auto colon = text.find(':');
  std::string_view addr_part = text;
  if (colon != std::string_view::npos) {
    addr_part = text.substr(0, colon);
    std::string_view port_part = text.substr(colon + 1);
    if (port_part.empty()) return fail("endpoint: empty port in '" + std::string(text) + "'");
    std::uint32_t port = 0;
    for (char c : port_part) {
      if (c < '0' || c > '9') return fail("endpoint: bad port in '" + std::string(text) + "'");
      port = port * 10 + static_cast<std::uint32_t>(c - '0');
      if (port > 65535) return fail("endpoint: port out of range in '" + std::string(text) + "'");
    }
    ep.port = static_cast<std::uint16_t>(port);
  }
  auto addr = net::Ipv4Addr::parse(addr_part);
  if (!addr.ok()) return addr.error();
  ep.address = addr.value();
  return ep;
}

void Endpoint::to_sockaddr(sockaddr_in& sa) const {
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(address.as_u32());
}

Endpoint Endpoint::from_sockaddr(const sockaddr_in& sa) {
  Endpoint ep;
  ep.address = net::Ipv4Addr::from_u32(ntohl(sa.sin_addr.s_addr));
  ep.port = ntohs(sa.sin_port);
  return ep;
}

std::string errno_message(std::string_view context) {
  return std::string(context) + ": " + std::strerror(errno);
}

util::Status set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return fail(errno_message("fcntl(F_GETFL)"));
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return fail(errno_message("fcntl(F_SETFL)"));
  return util::ok_status();
}

Result<FdHandle> bind_udp(const Endpoint& at, bool reuse_port) {
  FdHandle fd(::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return fail(errno_message("socket(udp)"));
  if (reuse_port) {
    int one = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0)
      return fail(errno_message("setsockopt(SO_REUSEPORT udp)"));
  }
  sockaddr_in sa{};
  at.to_sockaddr(sa);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0)
    return fail(errno_message("bind(udp " + at.to_string() + ")"));
  return fd;
}

Result<FdHandle> listen_tcp(const Endpoint& at, bool reuse_port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return fail(errno_message("socket(tcp)"));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0)
    return fail(errno_message("setsockopt(SO_REUSEPORT tcp)"));
  sockaddr_in sa{};
  at.to_sockaddr(sa);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0)
    return fail(errno_message("bind(tcp " + at.to_string() + ")"));
  if (::listen(fd.get(), 128) < 0) return fail(errno_message("listen"));
  return fd;
}

Result<Endpoint> local_endpoint(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) < 0)
    return fail(errno_message("getsockname"));
  return Endpoint::from_sockaddr(sa);
}

}  // namespace sns::transport
