#include "transport/dns_server.hpp"

namespace sns::transport {

DnsTransportServer::DnsTransportServer(EventLoop& loop, DnsHandler handler,
                                       TcpListener::Options tcp_options)
    : udp_(loop, handler), tcp_(loop, std::move(handler), tcp_options) {}

util::Status DnsTransportServer::start(const Endpoint& at, bool reuse_port) {
  constexpr int kEphemeralAttempts = 8;
  util::Status last = util::ok_status();
  for (int attempt = 0; attempt < kEphemeralAttempts; ++attempt) {
    auto tcp_status = tcp_.bind(at, reuse_port);
    if (!tcp_status.ok()) return tcp_status;
    Endpoint realised = tcp_.local();
    auto udp_status = udp_.bind(realised, reuse_port);
    if (udp_status.ok()) return util::ok_status();
    last = udp_status;
    tcp_.close();
    // A fixed port that UDP cannot bind will not free itself; only
    // ephemeral picks are worth retrying.
    if (at.port != 0) break;
  }
  return last;
}

void DnsTransportServer::close() {
  udp_.close();
  tcp_.close();
}

void DnsTransportServer::drain() {
  udp_.close();
  tcp_.drain();
}

}  // namespace sns::transport
