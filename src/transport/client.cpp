#include "transport/client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace sns::transport {

using util::fail;
using util::Result;

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped to >= 0.
int ms_remaining(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

/// Wait until `fd` has `events` ready or the deadline passes.
Result<util::Unit> wait_for(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    int r = ::poll(&pfd, 1, ms_remaining(deadline));
    if (r < 0) {
      if (errno == EINTR) continue;
      return fail(errno_message("poll"));
    }
    if (r == 0) return fail("timed out");
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && (pfd.revents & events) == 0)
      return fail("connection error");
    return util::Unit{};
  }
}

/// The query actually sent over UDP: ensure an OPT advertising
/// `edns_udp_size` unless the caller built their own or disabled EDNS.
/// Presence is checked directly — RFC 6891 allows at most one OPT, and
/// advertised_udp_size() clamps to 512, so a caller-built OPT
/// advertising <= 512 bytes must not get a second one appended.
dns::Message udp_form(const dns::Message& query, const QueryOptions& options) {
  if (options.edns_udp_size == 0) return query;
  for (const auto& rr : query.additionals)
    if (rr.type == dns::RRType::OPT) return query;
  dns::Message with_edns = query;
  dns::add_edns(with_edns, options.edns_udp_size);
  return with_edns;
}

}  // namespace

Result<dns::Message> udp_query(const Endpoint& server, const dns::Message& query,
                               const QueryOptions& options) {
  FdHandle fd(::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return fail(errno_message("socket(udp)"));
  sockaddr_in sa{};
  server.to_sockaddr(sa);
  // connect() scopes recv to the server's address — stray datagrams
  // from other peers never reach us.
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0)
    return fail(errno_message("connect(udp)"));

  auto wire = udp_form(query, options).encode();
  std::string last_error = "no attempts made";
  for (int attempt = 0; attempt < std::max(options.attempts, 1); ++attempt) {
    if (::send(fd.get(), wire.data(), wire.size(), 0) < 0) {
      last_error = errno_message("send(udp)");
      continue;
    }
    auto deadline = Clock::now() + options.timeout;
    for (;;) {
      auto ready = wait_for(fd.get(), POLLIN, deadline);
      if (!ready.ok()) {
        last_error = "udp " + server.to_string() + ": " + ready.error().message;
        break;  // next attempt
      }
      std::uint8_t buf[65535];
      ssize_t n;
      do {
        n = ::recv(fd.get(), buf, sizeof(buf), 0);
      } while (n < 0 && errno == EINTR);  // stray signal: just retry the read
      if (n < 0) {
        // Not readable after all (spurious wakeup, or a datagram the
        // kernel dropped after poll reported it): go back to poll()
        // rather than spinning on recv until the deadline.
        if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
        last_error = errno_message("recv(udp)");
        break;
      }
      auto response = dns::Message::decode(std::span(buf, static_cast<std::size_t>(n)));
      if (!response.ok() || response.value().header.id != query.header.id)
        continue;  // garbage or spoofed id: keep listening until deadline
      return response;
    }
  }
  return fail(last_error);
}

util::Status TcpClient::connect(const Endpoint& server, std::chrono::milliseconds timeout) {
  disconnect();
  reader_ = FrameReader();
  FdHandle fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return fail(errno_message("socket(tcp)"));
  sockaddr_in sa{};
  server.to_sockaddr(sa);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
    if (errno != EINPROGRESS) return fail(errno_message("connect(tcp " + server.to_string() + ")"));
    auto ready = wait_for(fd.get(), POLLOUT, Clock::now() + timeout);
    if (!ready.ok()) return fail("tcp connect " + server.to_string() + ": " +
                                 ready.error().message);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      errno = err;
      return fail(errno_message("connect(tcp " + server.to_string() + ")"));
    }
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = std::move(fd);
  return util::ok_status();
}

Result<dns::Message> TcpClient::query(const dns::Message& query_msg,
                                      std::chrono::milliseconds timeout) {
  if (!fd_.valid()) return fail("tcp client not connected");
  auto query_wire = query_msg.encode();
  auto framed = frame_message(std::span(query_wire));
  if (!framed.ok()) return framed.error();
  auto deadline = Clock::now() + timeout;

  std::size_t sent = 0;
  while (sent < framed.value().size()) {
    ssize_t n = ::send(fd_.get(), framed.value().data() + sent, framed.value().size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        auto ready = wait_for(fd_.get(), POLLOUT, deadline);
        if (!ready.ok()) {
          disconnect();
          return fail("tcp send: " + ready.error().message);
        }
        continue;
      }
      disconnect();
      return fail(errno_message("send(tcp)"));
    }
    sent += static_cast<std::size_t>(n);
  }

  for (;;) {
    if (auto frame = reader_.next()) {
      auto response = dns::Message::decode(std::span(*frame));
      if (!response.ok()) {
        disconnect();
        return fail("tcp: malformed response: " + response.error().message);
      }
      if (response.value().header.id != query_msg.header.id) continue;  // stale pipeline reply
      return response;
    }
    if (reader_.failed()) {
      disconnect();
      return fail("tcp framing: " + reader_.error());
    }
    auto ready = wait_for(fd_.get(), POLLIN, deadline);
    if (!ready.ok()) {
      disconnect();
      return fail("tcp recv: " + ready.error().message);
    }
    std::uint8_t buf[16384];
    ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n == 0) {
      disconnect();
      return fail("tcp: server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      disconnect();
      return fail(errno_message("recv(tcp)"));
    }
    reader_.feed(std::span(buf, static_cast<std::size_t>(n)));
  }
}

Result<dns::Message> tcp_query(const Endpoint& server, const dns::Message& query,
                               const QueryOptions& options) {
  TcpClient client;
  auto connected = client.connect(server, options.timeout);
  if (!connected.ok()) return connected.error();
  return client.query(query, options.timeout);
}

Result<AutoQueryResult> query_auto(const Endpoint& server, const dns::Message& query,
                                   const QueryOptions& options, bool force_tcp) {
  AutoQueryResult out;
  if (!force_tcp) {
    auto udp = udp_query(server, query, options);
    if (!udp.ok()) return udp.error();
    if (!udp.value().header.tc) {
      out.response = std::move(udp).value();
      return out;
    }
    out.retried_tcp = true;  // RFC 7766 §5: truncated → retry over TCP
  }
  auto tcp = tcp_query(server, query, options);
  if (!tcp.ok()) return tcp.error();
  out.response = std::move(tcp).value();
  out.used_tcp = true;
  return out;
}

}  // namespace sns::transport
