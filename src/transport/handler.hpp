// handler.hpp — the seam between kernel sockets and the DNS engine.
//
// Both listeners deliver decoded queries through the same DnsHandler,
// which is the exact shape AuthoritativeServer::handle already has
// (Message in, Message out) — the engine never learns which transport
// carried a query beyond the `via` tag it may use for policy (e.g.
// never truncating over TCP, which the listeners already enforce).
#pragma once

#include <functional>

#include "dns/message.hpp"
#include "transport/socket.hpp"

namespace sns::transport {

enum class Via { Udp, Tcp };

inline const char* to_string(Via via) { return via == Via::Udp ? "udp" : "tcp"; }

/// Produce the response for one query. Runs on the event-loop thread;
/// must not block.
using DnsHandler =
    std::function<dns::Message(const dns::Message& query, const Endpoint& peer, Via via)>;

/// Optional wire-level fast path, tried *before* Message::decode. Given
/// the raw query datagram, either produce the complete reply wire into
/// `reply` and return true, or return false to fall through to the
/// decoded DnsHandler. This is how the runtime's precompiled-answer
/// cache turns a hit into header-patch + memcpy with no decode, no
/// engine walk and no encode (src/runtime/answer_cache.hpp). Same
/// threading contract as DnsHandler: event-loop thread, must not block.
using RawDnsHandler = std::function<bool(std::span<const std::uint8_t> query_wire,
                                         const Endpoint& peer, Via via, util::Bytes& reply)>;

}  // namespace sns::transport
