// handler.hpp — the seam between kernel sockets and the DNS engine.
//
// Both listeners deliver decoded queries through the same DnsHandler,
// which is the exact shape AuthoritativeServer::handle already has
// (Message in, Message out) — the engine never learns which transport
// carried a query beyond the `via` tag it may use for policy (e.g.
// never truncating over TCP, which the listeners already enforce).
#pragma once

#include <functional>

#include "dns/message.hpp"
#include "transport/socket.hpp"

namespace sns::transport {

enum class Via { Udp, Tcp };

inline const char* to_string(Via via) { return via == Via::Udp ? "udp" : "tcp"; }

/// Produce the response for one query. Runs on the event-loop thread;
/// must not block.
using DnsHandler =
    std::function<dns::Message(const dns::Message& query, const Endpoint& peer, Via via)>;

}  // namespace sns::transport
