// socket.hpp — thin RAII layer over BSD sockets for the transport
// subsystem.
//
// Everything else in the repo speaks simulated time and simulated
// links; this file is where real file descriptors enter the picture.
// It stays deliberately small: an owning fd handle, an IPv4 endpoint
// value type that converts to/from sockaddr_in, and the handful of
// socket constructors the DNS listeners and clients need. All sockets
// the event loop touches are non-blocking; the client helpers use
// blocking sockets with poll()-based deadlines.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/address.hpp"
#include "util/result.hpp"

struct sockaddr_in;  // avoid pulling <netinet/in.h> into every includer

namespace sns::transport {

/// Owning file descriptor. Close-on-destroy, movable, non-copyable.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept : fd_(other.release()) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// IPv4 address + port. The SNS address vocabulary (net::Ipv4Addr) on
/// one side, sockaddr_in on the other.
struct Endpoint {
  net::Ipv4Addr address{};
  std::uint16_t port = 0;

  /// "127.0.0.1:5353" (the port is always printed).
  [[nodiscard]] std::string to_string() const;
  /// Parse "a.b.c.d" or "a.b.c.d:port"; `default_port` applies when no
  /// colon is present.
  static util::Result<Endpoint> parse(std::string_view text, std::uint16_t default_port = 0);

  void to_sockaddr(sockaddr_in& sa) const;
  static Endpoint from_sockaddr(const sockaddr_in& sa);

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

inline Endpoint loopback(std::uint16_t port) {
  return Endpoint{net::Ipv4Addr{{127, 0, 0, 1}}, port};
}

/// Non-blocking UDP socket bound to `at` (port 0 picks an ephemeral
/// port; query the realised one with local_endpoint). With
/// `reuse_port`, SO_REUSEPORT is set before bind so N worker shards
/// can bind the same address and let the kernel spread datagrams
/// across them (the runtime's multi-core serving model).
util::Result<FdHandle> bind_udp(const Endpoint& at, bool reuse_port = false);

/// Non-blocking listening TCP socket on `at` (SO_REUSEADDR, backlog
/// 128). `reuse_port` as for bind_udp: the kernel load-balances
/// incoming connections across all listeners sharing the port.
util::Result<FdHandle> listen_tcp(const Endpoint& at, bool reuse_port = false);

/// The locally bound address of a socket (resolves ephemeral ports).
util::Result<Endpoint> local_endpoint(int fd);

util::Status set_nonblocking(int fd);

/// errno rendered as "context: strerror" for Result errors.
std::string errno_message(std::string_view context);

}  // namespace sns::transport
