// frame.hpp — RFC 7766 §8 two-byte length framing for DNS over TCP.
//
// A pure state machine, deliberately socket-free so the edge cases the
// kernel will eventually throw at us (length prefixes split across
// reads, several pipelined queries in one read, zero-length frames,
// oversized frames, connections dying mid-message) are all testable as
// plain byte sequences. The TCP listener and client both drive one
// FrameReader per connection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace sns::transport {

/// Incremental decoder for a stream of length-prefixed DNS messages.
///
///   reader.feed(bytes_from_read);
///   while (auto frame = reader.next()) handle(*frame);
///   if (reader.failed()) close_connection(reader.error());
///
/// Once failed() the reader stays failed (the stream is unframeable —
/// resynchronising on a byte stream is impossible) and next() returns
/// nothing.
class FrameReader {
 public:
  /// `max_frame` rejects frames whose declared length exceeds it. The
  /// wire format caps lengths at 65535; a server may impose less.
  explicit FrameReader(std::size_t max_frame = 65535) : max_frame_(max_frame) {}

  /// Append raw stream bytes. Cheap: bytes are copied once into the
  /// pending buffer and handed out per frame without re-copying tails.
  void feed(std::span<const std::uint8_t> data);

  /// Extract the next complete message, if one is buffered.
  [[nodiscard]] std::optional<util::Bytes> next();

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// True when a message is cut off mid-frame (length prefix or body
  /// partially received) — i.e. a disconnect now would lose data.
  [[nodiscard]] bool mid_frame() const noexcept;
  /// Bytes buffered but not yet returned by next().
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

 private:
  std::size_t max_frame_;
  util::Bytes buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool failed_ = false;
  std::string error_;
};

/// Prepend the two-byte length prefix to an encoded message. Fails when
/// `wire` cannot be framed (empty or > 65535 bytes — RFC 7766 has no
/// jumbo frames; the server answers such a query with a truncated
/// response instead, which over TCP means "give up").
util::Result<util::Bytes> frame_message(std::span<const std::uint8_t> wire);

}  // namespace sns::transport
