// udp_listener.hpp — DNS-over-UDP on a real socket.
//
// One datagram, one query, one response. The listener drains the socket
// on every readiness event (bounded per wake so timers are not starved
// under flood), decodes with the hostile-input-safe Message::decode,
// and encodes replies through dns::encode_for_transport — which honours
// the querier's EDNS0 advertised payload size and falls back to a
// TC=1 header+question prefix when the answer does not fit (the client
// then retries over TCP; see tcp_listener.hpp for the other half).
#pragma once

#include "transport/event_loop.hpp"
#include "transport/handler.hpp"

namespace sns::obs {
class MetricsRegistry;
}

namespace sns::transport {

class UdpListener {
 public:
  UdpListener(EventLoop& loop, DnsHandler handler);
  ~UdpListener();
  UdpListener(const UdpListener&) = delete;
  UdpListener& operator=(const UdpListener&) = delete;

  /// Bind and start serving. Port 0 picks an ephemeral port; the
  /// realised endpoint is available from local() afterwards.
  /// `reuse_port` sets SO_REUSEPORT so sibling worker shards can bind
  /// the same endpoint (kernel-level load spreading).
  util::Status bind(const Endpoint& at, bool reuse_port = false);
  void close();

  [[nodiscard]] const Endpoint& local() const noexcept { return bound_; }

  /// Counters: transport.udp.{queries,responses,truncated,malformed}.
  /// Histogram: transport.udp.handle_us.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

 private:
  void on_readable();

  EventLoop& loop_;
  DnsHandler handler_;
  FdHandle fd_;
  Endpoint bound_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace sns::transport
