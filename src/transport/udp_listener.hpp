// udp_listener.hpp — DNS-over-UDP on a real socket.
//
// One datagram, one query, one response. The listener drains the socket
// on every readiness event (bounded per wake so timers are not starved
// under flood), decodes with the hostile-input-safe Message::decode,
// and encodes replies through dns::encode_for_transport — which honours
// the querier's EDNS0 advertised payload size and falls back to a
// TC=1 header+question prefix when the answer does not fit (the client
// then retries over TCP; see tcp_listener.hpp for the other half).
//
// On Linux the drain runs in batch mode: one recvmmsg() pulls up to
// `batch_size` datagrams, every reply is collected, and one sendmmsg()
// pushes them all back out — two syscalls per wake instead of two per
// datagram, which is where the per-datagram serving cost lives once
// encoding is cached (DESIGN.md §12). Platforms without the mmsg
// syscalls (and batch_size <= 1) use the single-datagram path; both
// paths produce byte-identical replies for identical input.
#pragma once

#include <vector>

#include "transport/event_loop.hpp"
#include "transport/handler.hpp"

namespace sns::obs {
class MetricsRegistry;
}

namespace sns::transport {

/// True when this build can batch datagram syscalls (Linux recvmmsg/
/// sendmmsg); elsewhere set_batch_size clamps to the single path.
#if defined(__linux__)
inline constexpr bool kUdpBatchSupported = true;
#else
inline constexpr bool kUdpBatchSupported = false;
#endif

/// Default datagrams per recvmmsg/sendmmsg round. 32 keeps the
/// per-listener receive buffers at 32 × 64 KiB = 2 MiB while amortising
/// the syscall pair ~30× under load; the per-wake drain bound still
/// caps total work per readiness event.
inline constexpr std::size_t kUdpBatchDefault = kUdpBatchSupported ? 32 : 1;

class UdpListener {
 public:
  UdpListener(EventLoop& loop, DnsHandler handler);
  ~UdpListener();
  UdpListener(const UdpListener&) = delete;
  UdpListener& operator=(const UdpListener&) = delete;

  /// Bind and start serving. Port 0 picks an ephemeral port; the
  /// realised endpoint is available from local() afterwards.
  /// `reuse_port` sets SO_REUSEPORT so sibling worker shards can bind
  /// the same endpoint (kernel-level load spreading).
  util::Status bind(const Endpoint& at, bool reuse_port = false);
  void close();

  [[nodiscard]] const Endpoint& local() const noexcept { return bound_; }

  /// Datagrams drained/answered per syscall round. Clamped to
  /// [1, kMaxBatch]; values > 1 need kUdpBatchSupported (clamped to 1
  /// otherwise). 1 selects the plain recvfrom/sendto path. Call before
  /// bind() or from the loop thread.
  void set_batch_size(std::size_t n) noexcept;
  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }

  /// Wire-level fast path consulted before Message::decode; see
  /// handler.hpp. Null (default) means every datagram takes the
  /// decoded path.
  void set_raw_handler(RawDnsHandler raw) { raw_handler_ = std::move(raw); }

  /// Counters: transport.udp.{queries,responses,truncated,malformed,
  /// send_errors}. Histograms: transport.udp.{handle_us,batch_size}.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

  /// Hard ceiling on batch_size (bounds the preallocated buffers).
  static constexpr std::size_t kMaxBatch = 64;

 private:
  void on_readable();
  void on_readable_single(int budget);
  void on_readable_batch(int budget);
  /// Decode/handle one datagram; false when no reply is owed (not even
  /// a FORMERR: the id did not survive). Shared by both drain paths.
  bool process_datagram(std::span<const std::uint8_t> wire, const Endpoint& peer,
                        util::Bytes& reply);
  void count_send_error(int err);

  EventLoop& loop_;
  DnsHandler handler_;
  RawDnsHandler raw_handler_;
  FdHandle fd_;
  Endpoint bound_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::size_t batch_size_ = kUdpBatchDefault;
  // Batch-mode receive buffers, one 64 KiB slot per batch entry,
  // allocated lazily on the first batched wake.
  std::vector<std::uint8_t> batch_buffers_;
  TimePoint last_send_warn_{TimePoint::min()};
};

}  // namespace sns::transport
