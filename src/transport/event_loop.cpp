#include "transport/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>

#include "util/log.hpp"

namespace sns::transport {

using util::fail;

namespace {
constexpr std::int64_t kNoDeadline = std::numeric_limits<std::int64_t>::max();

/// Dispatch token carried in epoll_data: fd in the low 32 bits, the
/// registration generation in the high 32 (see Watch in the header).
std::uint64_t pack_token(int fd, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) | static_cast<std::uint32_t>(fd);
}
}

EventLoop::EventLoop()
    : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)),
      earliest_tick_(kNoDeadline),
      epoch_(std::chrono::steady_clock::now()) {
  if (!epoll_fd_.valid() || !wake_fd_.valid()) {
    util::log_warn("transport", "event loop init failed: ", errno_message("epoll/eventfd"));
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = pack_token(wake_fd_.get(), 0);  // gen 0 is reserved for the eventfd
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev);
}

EventLoop::~EventLoop() = default;

TimePoint EventLoop::now() const {
  return std::chrono::duration_cast<Duration>(std::chrono::steady_clock::now() - epoch_);
}

util::Status EventLoop::watch(int fd, std::uint32_t events, IoHandler handler) {
  auto it = handlers_.find(fd);
  bool known = it != handlers_.end();
  // Same live fd keeps its generation across handler replacement; a
  // fresh registration (including an fd number the kernel reused after a
  // close) gets a new one so stale queued events can't reach it.
  std::uint32_t gen = known ? it->second.gen : ++watch_gen_;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = pack_token(fd, gen);
  int op = known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(epoll_fd_.get(), op, fd, &ev) < 0) return fail(errno_message("epoll_ctl(add)"));
  handlers_[fd] = Watch{gen, std::move(handler)};
  return util::ok_status();
}

util::Status EventLoop::modify(int fd, std::uint32_t events) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return fail("epoll_ctl(mod): fd not watched");
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = pack_token(fd, it->second.gen);
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0)
    return fail(errno_message("epoll_ctl(mod)"));
  return util::ok_status();
}

void EventLoop::unwatch(int fd) {
  if (handlers_.erase(fd) > 0) ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

EventLoop::TimerId EventLoop::schedule_at(TimePoint t, std::function<void()> fn) {
  TimerId id = next_timer_id_++;
  std::int64_t deadline = tick_of(t);
  // Never schedule into the past: a due-now timer fires on the next
  // advance, exactly like EventScheduler's same-instant semantics.
  deadline = std::max(deadline, current_tick_ + 1);
  wheel_[static_cast<std::size_t>(deadline) % kWheelSlots].push_back(
      Timer{id, deadline, std::move(fn)});
  timer_slots_.emplace(id, deadline);
  ++active_timers_;
  earliest_tick_ = std::min(earliest_tick_, deadline);
  return id;
}

bool EventLoop::cancel(TimerId id) {
  auto it = timer_slots_.find(id);
  if (it == timer_slots_.end()) return false;
  std::int64_t deadline = it->second;
  auto& slot = wheel_[static_cast<std::size_t>(deadline) % kWheelSlots];
  for (auto timer = slot.begin(); timer != slot.end(); ++timer) {
    if (timer->id == id) {
      slot.erase(timer);
      break;
    }
  }
  timer_slots_.erase(it);
  --active_timers_;
  // Cancelling the earliest timer would leave earliest_tick_ pointing at
  // a deadline nobody holds; once wall time passed it, next_timeout_ms()
  // would return 0 forever and run() would busy-spin on epoll_wait.
  if (deadline == earliest_tick_) recompute_earliest();
  return true;
}

void EventLoop::recompute_earliest() {
  earliest_tick_ = kNoDeadline;
  if (active_timers_ == 0) return;
  for (const auto& slot : wheel_)
    for (const auto& timer : slot) earliest_tick_ = std::min(earliest_tick_, timer.deadline_tick);
}

void EventLoop::advance_timers() {
  std::int64_t now_tick = now().count() / kTickUs;
  if (now_tick <= current_tick_ || earliest_tick_ > now_tick) {
    current_tick_ = std::max(current_tick_, now_tick);
    return;
  }

  // Collect everything due. When the elapsed span covers the whole
  // wheel, sweep every slot once instead of revisiting slots per tick.
  std::vector<Timer> due;
  auto harvest = [&](std::vector<Timer>& slot) {
    auto keep = slot.begin();
    for (auto& timer : slot) {
      if (timer.deadline_tick <= now_tick)
        due.push_back(std::move(timer));
      else
        *keep++ = std::move(timer);
    }
    slot.erase(keep, slot.end());
  };
  if (now_tick - current_tick_ >= static_cast<std::int64_t>(kWheelSlots)) {
    for (auto& slot : wheel_) harvest(slot);
  } else {
    for (std::int64_t tick = current_tick_ + 1; tick <= now_tick; ++tick)
      harvest(wheel_[static_cast<std::size_t>(tick) % kWheelSlots]);
  }
  current_tick_ = now_tick;

  // Deadline order, then scheduling order — the EventScheduler guarantee.
  std::sort(due.begin(), due.end(), [](const Timer& a, const Timer& b) {
    return a.deadline_tick != b.deadline_tick ? a.deadline_tick < b.deadline_tick : a.id < b.id;
  });
  for (auto& timer : due) {
    timer_slots_.erase(timer.id);
    --active_timers_;
  }
  // Recompute whenever the cached earliest is not ahead of now — even
  // with nothing due, a stale bound (e.g. left by a cancel) must move
  // forward or next_timeout_ms() degenerates to a zero timeout.
  if (earliest_tick_ <= now_tick) recompute_earliest();
  for (auto& timer : due) timer.fn();
}

int EventLoop::next_timeout_ms(int max_wait_ms) const {
  if (earliest_tick_ == kNoDeadline) return max_wait_ms;
  std::int64_t delta_us = earliest_tick_ * kTickUs - now().count();
  // Ceil to ms so we never wake before the deadline's tick.
  std::int64_t delta_ms = std::max<std::int64_t>(0, (delta_us + 999) / 1000);
  delta_ms = std::min<std::int64_t>(delta_ms, std::numeric_limits<int>::max());
  int timer_ms = static_cast<int>(delta_ms);
  return max_wait_ms < 0 ? timer_ms : std::min(timer_ms, max_wait_ms);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  std::uint64_t one = 1;
  [[maybe_unused]] auto r = ::write(wake_fd_.get(), &one, sizeof(one));
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard lock(posted_mu_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

int EventLoop::run_once(int max_wait_ms) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  int n = ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, next_timeout_ms(max_wait_ms));
  int dispatched = 0;
  for (int i = 0; i < std::max(n, 0); ++i) {
    std::uint64_t token = events[i].data.u64;
    int fd = static_cast<int>(token & 0xffffffffu);
    if (fd == wake_fd_.get()) {
      std::uint64_t drain = 0;
      [[maybe_unused]] auto r = ::read(wake_fd_.get(), &drain, sizeof(drain));
      continue;
    }
    // A handler earlier in this batch may have unwatched this fd — and
    // an accept may have reused the number for a brand-new connection.
    // The generation check drops events queued for the dead registration
    // so they never reach the newcomer; the copy keeps the callable
    // alive if the handler unwatches itself.
    auto it = handlers_.find(fd);
    if (it == handlers_.end() || it->second.gen != static_cast<std::uint32_t>(token >> 32))
      continue;
    IoHandler handler = it->second.handler;
    handler(events[i].events);
    ++dispatched;
  }
  advance_timers();
  drain_posted();
  return dispatched;
}

void EventLoop::run() {
  while (!stopped()) run_once();
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  std::uint64_t one = 1;
  [[maybe_unused]] auto r = ::write(wake_fd_.get(), &one, sizeof(one));
}

}  // namespace sns::transport
