// event_loop.hpp — non-blocking epoll event loop with a timer wheel.
//
// The real-socket twin of net::EventScheduler (src/net/sim.hpp): the
// timer API deliberately mirrors it — schedule_at / schedule_after /
// pending — so engine code written against the simulator's scheduler
// ports to the socket world by swapping the loop object, not the call
// sites (DESIGN.md §9, "sim-vs-socket symmetry"). On top of timers it
// adds what only a real kernel has: file-descriptor readiness.
//
// Timers live in a hashed timer wheel (256 slots × 1.024 ms ticks, a
// power of two so tick conversion is a shift). Insertion and expiry of
// a due tick are O(1); epoll_wait sleeps until the earliest deadline,
// tracked incrementally on insert and recomputed by a wheel sweep only
// when the earliest timer fires or is cancelled — the classic trade
// against a heap's O(log n) insert, and the right one for a DNS server
// whose timer load is thousands of identical idle timeouts that are
// usually cancelled (a cancel only sweeps when it removed the earliest).
//
// Threading: the loop is single-threaded by design. Every method except
// stop() and post() must be called from the loop thread (or before
// run() starts); stop() and post() may be called from any thread —
// both poke an internal eventfd to wake a sleeping epoll_wait, and
// post() is how another thread (the runtime's control plane) injects
// work that must run with loop-thread ownership (drain a listener,
// touch connection state).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "transport/socket.hpp"
#include "util/result.hpp"

namespace sns::transport {

/// Microseconds since loop construction (monotonic, wall-time backed —
/// the same vocabulary as net::TimePoint, but real).
using Duration = std::chrono::microseconds;
using TimePoint = std::chrono::microseconds;

class EventLoop {
 public:
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;
  /// Bitmask of EPOLLIN / EPOLLOUT / EPOLLERR / EPOLLHUP as delivered.
  using IoHandler = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] bool valid() const noexcept { return epoll_fd_.valid(); }

  // -- fd watchers --------------------------------------------------------
  /// Watch `fd` for `events` (EPOLLIN and/or EPOLLOUT). One handler per
  /// fd; re-adding an fd replaces its handler and interest set.
  util::Status watch(int fd, std::uint32_t events, IoHandler handler);
  /// Change the interest set, keeping the handler.
  util::Status modify(int fd, std::uint32_t events);
  /// Stop watching. Safe to call from inside any handler, including for
  /// an fd whose events are still queued for dispatch this iteration.
  void unwatch(int fd);

  // -- timers (EventScheduler-mirroring surface) --------------------------
  TimerId schedule_at(TimePoint t, std::function<void()> fn);
  TimerId schedule_after(Duration d, std::function<void()> fn) {
    return schedule_at(now() + d, std::move(fn));
  }
  /// Cancel a pending timer; false if it already fired or never existed.
  bool cancel(TimerId id);
  [[nodiscard]] std::size_t pending() const noexcept { return active_timers_; }

  [[nodiscard]] TimePoint now() const;

  // -- driving ------------------------------------------------------------
  /// Poll once: sleep until an fd is ready, the next timer is due, or
  /// `max_wait` elapses (negative = no cap), then dispatch everything
  /// due. Returns the number of io events dispatched.
  int run_once(int max_wait_ms = -1);
  /// run_once until stop() is called.
  void run();
  /// Queue `fn` to run on the loop thread after the current poll cycle
  /// and wake the loop. Thread-safe (this is the cross-thread entry
  /// point; everything else on the loop stays single-owner). Tasks run
  /// in post order.
  void post(std::function<void()> fn);

  /// Wake the loop and make run() return. Thread- and signal-safe.
  void stop();
  [[nodiscard]] bool stopped() const noexcept {
    return stop_requested_.load(std::memory_order_relaxed);
  }
  /// Re-arm a stopped loop so run() can be called again.
  void reset_stop() noexcept { stop_requested_ = false; }

  [[nodiscard]] std::size_t watched_fds() const noexcept { return handlers_.size(); }

 private:
  // Wheel geometry: 256 slots, one tick = 1024 us. An idle-timeout-heavy
  // server mostly schedules within a few hundred ticks; longer timers
  // just survive multiple laps via their absolute deadline.
  static constexpr std::size_t kWheelSlots = 256;
  static constexpr std::int64_t kTickUs = 1024;

  struct Timer {
    TimerId id;
    std::int64_t deadline_tick;
    std::function<void()> fn;
  };

  // Registration epoch for an fd. Dispatch keys on (fd, gen) packed into
  // epoll_data.u64: if a handler earlier in a batch closes an fd and a
  // new connection reuses the number, stale queued events carry the old
  // generation and are dropped instead of reaching the new handler.
  struct Watch {
    std::uint32_t gen;
    IoHandler handler;
  };

  [[nodiscard]] std::int64_t tick_of(TimePoint t) const noexcept {
    return (t.count() + kTickUs - 1) / kTickUs;
  }
  /// Fire every timer due at or before the tick containing now().
  void advance_timers();
  /// Run everything post()ed since the last drain (loop thread only).
  void drain_posted();
  /// Sweep the wheel for the earliest live deadline (after the cached
  /// earliest fired or was cancelled); kInt64Max when no timers remain.
  void recompute_earliest();
  [[nodiscard]] int next_timeout_ms(int max_wait_ms) const;

  FdHandle epoll_fd_;
  FdHandle wake_fd_;  // eventfd poked by stop()
  std::unordered_map<int, Watch> handlers_;
  std::uint32_t watch_gen_ = 0;  // last generation handed out by watch()
  std::vector<std::vector<Timer>> wheel_{kWheelSlots};
  std::size_t active_timers_ = 0;
  std::int64_t current_tick_ = 0;
  std::int64_t earliest_tick_;  // lower bound on the earliest live deadline
  std::unordered_map<TimerId, std::int64_t> timer_slots_;  // id -> deadline tick
  TimerId next_timer_id_ = 1;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> stop_requested_{false};
  std::mutex posted_mu_;  // guards posted_ (the only cross-thread state)
  std::vector<std::function<void()>> posted_;
};

}  // namespace sns::transport
