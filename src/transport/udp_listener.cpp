#include "transport/udp_listener.hpp"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace sns::transport {

namespace {

/// Minimal FORMERR reply for a datagram we could not decode: echo the
/// transaction id (first two bytes) so the querier can correlate, QR=1,
/// no sections. If not even the id survived, stay silent.
std::optional<util::Bytes> formerr_reply(std::span<const std::uint8_t> wire) {
  if (wire.size() < 2) return std::nullopt;
  dns::Message reply;
  reply.header.id = static_cast<std::uint16_t>((wire[0] << 8) | wire[1]);
  reply.header.qr = true;
  reply.header.rcode = dns::Rcode::FormErr;
  return reply.encode();
}

}  // namespace

UdpListener::UdpListener(EventLoop& loop, DnsHandler handler)
    : loop_(loop), handler_(std::move(handler)) {}

UdpListener::~UdpListener() { close(); }

util::Status UdpListener::bind(const Endpoint& at, bool reuse_port) {
  auto fd = bind_udp(at, reuse_port);
  if (!fd.ok()) return fd.error();
  auto local = local_endpoint(fd.value().get());
  if (!local.ok()) return local.error();
  bound_ = local.value();
  fd_ = std::move(fd).value();
  return loop_.watch(fd_.get(), EPOLLIN, [this](std::uint32_t) { on_readable(); });
}

void UdpListener::close() {
  if (!fd_.valid()) return;
  loop_.unwatch(fd_.get());
  fd_.reset();
}

void UdpListener::on_readable() {
  // Drain, but bounded: a flood must not starve timers and TCP peers.
  constexpr int kMaxDatagramsPerWake = 64;
  std::uint8_t buf[65535];
  for (int i = 0; i < kMaxDatagramsPerWake; ++i) {
    sockaddr_in sa{};
    socklen_t sa_len = sizeof(sa);
    ssize_t n = ::recvfrom(fd_.get(), buf, sizeof(buf), 0, reinterpret_cast<sockaddr*>(&sa),
                           &sa_len);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
        util::log_warn("transport", "udp recvfrom: ", errno_message("recvfrom"));
      return;
    }
    Endpoint peer = Endpoint::from_sockaddr(sa);
    std::span<const std::uint8_t> wire(buf, static_cast<std::size_t>(n));

    auto query = dns::Message::decode(wire);
    util::Bytes reply_wire;
    if (!query.ok()) {
      if (metrics_ != nullptr) metrics_->counter("transport.udp.malformed").add();
      auto formerr = formerr_reply(wire);
      if (!formerr) continue;
      reply_wire = std::move(*formerr);
    } else {
      if (metrics_ != nullptr) metrics_->counter("transport.udp.queries").add();
      TimePoint handle_start = loop_.now();
      dns::Message response = handler_(query.value(), peer, Via::Udp);
      if (metrics_ != nullptr)
        metrics_->histogram("transport.udp.handle_us")
            .record(static_cast<std::uint64_t>((loop_.now() - handle_start).count()));
      reply_wire = dns::encode_for_transport(query.value(), response);
      // TC bit lives in byte 2, bit 0x02 — counted so operators can see
      // how often clients are being pushed to TCP.
      if (metrics_ != nullptr && reply_wire.size() > 2 && (reply_wire[2] & 0x02) != 0)
        metrics_->counter("transport.udp.truncated").add();
    }

    ssize_t sent = ::sendto(fd_.get(), reply_wire.data(), reply_wire.size(), 0,
                            reinterpret_cast<const sockaddr*>(&sa), sa_len);
    if (sent >= 0 && metrics_ != nullptr) metrics_->counter("transport.udp.responses").add();
  }
}

}  // namespace sns::transport
