#include "transport/udp_listener.hpp"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace sns::transport {

namespace {

/// Per-readiness-event drain budget (both paths): a flood must not
/// starve timers and TCP peers sharing the loop.
constexpr int kMaxDatagramsPerWake = 64;

/// Largest UDP payload a DNS message can occupy.
constexpr std::size_t kDatagramMax = 65535;

/// Minimal FORMERR reply for a datagram we could not decode: echo the
/// transaction id (first two bytes) so the querier can correlate, QR=1,
/// no sections. If not even the id survived, stay silent.
std::optional<util::Bytes> formerr_reply(std::span<const std::uint8_t> wire) {
  if (wire.size() < 2) return std::nullopt;
  dns::Message reply;
  reply.header.id = static_cast<std::uint16_t>((wire[0] << 8) | wire[1]);
  reply.header.qr = true;
  reply.header.rcode = dns::Rcode::FormErr;
  return reply.encode();
}

}  // namespace

UdpListener::UdpListener(EventLoop& loop, DnsHandler handler)
    : loop_(loop), handler_(std::move(handler)) {}

UdpListener::~UdpListener() { close(); }

util::Status UdpListener::bind(const Endpoint& at, bool reuse_port) {
  auto fd = bind_udp(at, reuse_port);
  if (!fd.ok()) return fd.error();
  auto local = local_endpoint(fd.value().get());
  if (!local.ok()) return local.error();
  bound_ = local.value();
  fd_ = std::move(fd).value();
  if (metrics_ != nullptr) {
    // Create the flood/ops metrics eagerly so fleet dumps report
    // zeroes rather than absence before the first event.
    metrics_->counter("transport.udp.send_errors");
    if (batch_size_ > 1) metrics_->histogram("transport.udp.batch_size");
  }
  return loop_.watch(fd_.get(), EPOLLIN, [this](std::uint32_t) { on_readable(); });
}

void UdpListener::close() {
  if (!fd_.valid()) return;
  loop_.unwatch(fd_.get());
  fd_.reset();
}

void UdpListener::set_batch_size(std::size_t n) noexcept {
  if (!kUdpBatchSupported) n = 1;
  batch_size_ = std::clamp<std::size_t>(n, 1, kMaxBatch);
}

void UdpListener::on_readable() {
  if (batch_size_ > 1)
    on_readable_batch(kMaxDatagramsPerWake);
  else
    on_readable_single(kMaxDatagramsPerWake);
}

bool UdpListener::process_datagram(std::span<const std::uint8_t> wire, const Endpoint& peer,
                                   util::Bytes& reply) {
  if (raw_handler_ && raw_handler_(wire, peer, Via::Udp, reply)) {
    if (metrics_ != nullptr) metrics_->counter("transport.udp.queries").add();
  } else {
    auto query = dns::Message::decode(wire);
    if (!query.ok()) {
      if (metrics_ != nullptr) metrics_->counter("transport.udp.malformed").add();
      auto formerr = formerr_reply(wire);
      if (!formerr) return false;
      reply = std::move(*formerr);
    } else {
      if (metrics_ != nullptr) metrics_->counter("transport.udp.queries").add();
      TimePoint handle_start = loop_.now();
      dns::Message response = handler_(query.value(), peer, Via::Udp);
      if (metrics_ != nullptr)
        metrics_->histogram("transport.udp.handle_us")
            .record(static_cast<std::uint64_t>((loop_.now() - handle_start).count()));
      reply = dns::encode_for_transport(query.value(), response);
    }
  }
  // TC bit lives in byte 2, bit 0x02 — counted so operators can see
  // how often clients are being pushed to TCP.
  if (metrics_ != nullptr && reply.size() > 2 && (reply[2] & 0x02) != 0)
    metrics_->counter("transport.udp.truncated").add();
  return true;
}

void UdpListener::count_send_error(int err) {
  if (metrics_ != nullptr) metrics_->counter("transport.udp.send_errors").add();
  // Rate-limited: a saturated send buffer must not turn into a log
  // flood that makes the saturation worse.
  TimePoint now = loop_.now();
  if (now - last_send_warn_ >= std::chrono::seconds(1)) {
    last_send_warn_ = now;
    errno = err;
    util::log_warn("transport", "udp send failed (reply dropped): ", errno_message("sendto"));
  }
}

void UdpListener::on_readable_single(int budget) {
  std::uint8_t buf[kDatagramMax];
  for (int i = 0; i < budget; ++i) {
    sockaddr_in sa{};
    socklen_t sa_len = sizeof(sa);
    ssize_t n = ::recvfrom(fd_.get(), buf, sizeof(buf), 0, reinterpret_cast<sockaddr*>(&sa),
                           &sa_len);
    if (n < 0) {
      // A stray signal must not abort the drain: retry without burning
      // budget progress. Only empty-socket or a real error ends it.
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK)
        util::log_warn("transport", "udp recvfrom: ", errno_message("recvfrom"));
      return;
    }
    Endpoint peer = Endpoint::from_sockaddr(sa);
    util::Bytes reply;
    if (!process_datagram(std::span(buf, static_cast<std::size_t>(n)), peer, reply)) continue;

    ssize_t sent = ::sendto(fd_.get(), reply.data(), reply.size(), 0,
                            reinterpret_cast<const sockaddr*>(&sa), sa_len);
    if (sent < 0) {
      count_send_error(errno);
    } else if (metrics_ != nullptr) {
      metrics_->counter("transport.udp.responses").add();
    }
  }
}

#if defined(__linux__)

void UdpListener::on_readable_batch(int budget) {
  const std::size_t batch = batch_size_;
  if (batch_buffers_.size() < batch * kDatagramMax)
    batch_buffers_.resize(batch * kDatagramMax);

  mmsghdr recv_msgs[kMaxBatch];
  iovec recv_iovs[kMaxBatch];
  sockaddr_in peers[kMaxBatch];
  util::Bytes replies[kMaxBatch];
  mmsghdr send_msgs[kMaxBatch];
  iovec send_iovs[kMaxBatch];

  while (budget > 0) {
    unsigned want = static_cast<unsigned>(std::min<int>(budget, static_cast<int>(batch)));
    for (unsigned i = 0; i < want; ++i) {
      recv_iovs[i] = {batch_buffers_.data() + i * kDatagramMax, kDatagramMax};
      recv_msgs[i] = {};
      recv_msgs[i].msg_hdr.msg_iov = &recv_iovs[i];
      recv_msgs[i].msg_hdr.msg_iovlen = 1;
      recv_msgs[i].msg_hdr.msg_name = &peers[i];
      recv_msgs[i].msg_hdr.msg_namelen = sizeof(peers[i]);
      peers[i] = {};
    }
    int received = ::recvmmsg(fd_.get(), recv_msgs, want, 0, nullptr);
    if (received < 0) {
      // Same drain contract as the single path: EINTR retries, an
      // empty socket or a real error ends the wake.
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK)
        util::log_warn("transport", "udp recvmmsg: ", errno_message("recvmmsg"));
      return;
    }
    budget -= received;
    if (metrics_ != nullptr)
      metrics_->histogram("transport.udp.batch_size")
          .record(static_cast<std::uint64_t>(received));

    // Answer the whole batch, then push every owed reply with one
    // sendmmsg. Replies keep batch order; datagrams owing nothing
    // (sub-2-byte garbage) are compacted out.
    unsigned owed = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(received); ++i) {
      std::span<const std::uint8_t> wire(batch_buffers_.data() + i * kDatagramMax,
                                         recv_msgs[i].msg_len);
      Endpoint peer = Endpoint::from_sockaddr(peers[i]);
      if (!process_datagram(wire, peer, replies[owed])) continue;
      send_iovs[owed] = {replies[owed].data(), replies[owed].size()};
      send_msgs[owed] = {};
      send_msgs[owed].msg_hdr.msg_iov = &send_iovs[owed];
      send_msgs[owed].msg_hdr.msg_iovlen = 1;
      // Reply to the slot the datagram arrived in, not slot `owed`.
      send_msgs[owed].msg_hdr.msg_name = &peers[i];
      send_msgs[owed].msg_hdr.msg_namelen = recv_msgs[i].msg_hdr.msg_namelen;
      ++owed;
    }

    unsigned sent_total = 0;
    while (sent_total < owed) {
      int sent = ::sendmmsg(fd_.get(), send_msgs + sent_total, owed - sent_total, 0);
      if (sent < 0) {
        if (errno == EINTR) continue;
        // Send buffer full (or a per-destination error on the first
        // pending reply): UDP may drop, so count every undelivered
        // reply and move on — the client retransmits.
        int err = errno;
        for (unsigned i = sent_total; i < owed; ++i) count_send_error(err);
        break;
      }
      sent_total += static_cast<unsigned>(sent);
      if (metrics_ != nullptr)
        metrics_->counter("transport.udp.responses").add(static_cast<std::uint64_t>(sent));
    }

    // recvmmsg returning fewer than asked means the socket is dry.
    if (static_cast<unsigned>(received) < want) return;
  }
}

#else  // !__linux__

void UdpListener::on_readable_batch(int budget) { on_readable_single(budget); }

#endif

}  // namespace sns::transport
