#include "transport/frame.hpp"

#include <cstring>

namespace sns::transport {

void FrameReader::feed(std::span<const std::uint8_t> data) {
  if (failed_) return;
  // Compact before growing: drop the already-consumed prefix so the
  // buffer stays proportional to the unparsed tail, not stream history.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::optional<util::Bytes> FrameReader::next() {
  if (failed_) return std::nullopt;
  std::size_t avail = buffer_.size() - consumed_;
  if (avail < 2) return std::nullopt;
  std::size_t length = (static_cast<std::size_t>(buffer_[consumed_]) << 8) |
                       static_cast<std::size_t>(buffer_[consumed_ + 1]);
  if (length == 0) {
    failed_ = true;
    error_ = "zero-length DNS/TCP frame";
    return std::nullopt;
  }
  if (length > max_frame_) {
    failed_ = true;
    error_ = "frame of " + std::to_string(length) + " bytes exceeds limit of " +
             std::to_string(max_frame_);
    return std::nullopt;
  }
  if (avail < 2 + length) return std::nullopt;  // wait for more stream
  auto begin = buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 2);
  util::Bytes frame(begin, begin + static_cast<std::ptrdiff_t>(length));
  consumed_ += 2 + length;
  return frame;
}

bool FrameReader::mid_frame() const noexcept {
  if (failed_) return false;
  return buffer_.size() - consumed_ > 0;  // anything unconsumed is a partial frame
}

util::Result<util::Bytes> frame_message(std::span<const std::uint8_t> wire) {
  if (wire.empty()) return util::fail("cannot frame an empty message");
  if (wire.size() > 65535)
    return util::fail("message of " + std::to_string(wire.size()) +
                      " bytes exceeds the TCP frame limit");
  util::Bytes out;
  out.reserve(wire.size() + 2);
  out.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(wire.size() & 0xff));
  out.insert(out.end(), wire.begin(), wire.end());
  return out;
}

}  // namespace sns::transport
