// tcp_listener.hpp — DNS-over-TCP (RFC 7766) on real sockets.
//
// TCP is the fallback that makes UDP truncation honest: PR 3 taught the
// encoder to patch a TC=1 prefix, and this listener is what carries the
// retry. Each accepted connection runs three little state machines:
//
//   read side   FrameReader reassembles length-prefixed queries out of
//               arbitrary read() boundaries; every complete frame is
//               decoded and answered immediately, so pipelined queries
//               (RFC 7766 §6.2.1.1) are served in arrival order without
//               waiting for the client to stop sending.
//   write side  responses append to a per-connection output buffer;
//               partial write()s park the remainder and arm EPOLLOUT,
//               which is disarmed once the buffer drains.
//   liveness    an idle timer (event-loop timer wheel) closes
//               connections quiet for longer than `idle_timeout`; any
//               read or write activity re-arms it.
//
// Responses are never truncated over TCP; a response that cannot fit
// the 16-bit frame length degrades to ServFail.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>

#include "transport/event_loop.hpp"
#include "transport/frame.hpp"
#include "transport/handler.hpp"

namespace sns::obs {
class MetricsRegistry;
}

namespace sns::transport {

struct TcpOptions {
  Duration idle_timeout = std::chrono::seconds(30);
  std::size_t max_connections = 1024;
  std::size_t max_frame = 65535;       // reject larger declared query frames
  std::size_t max_buffered = 1 << 20;  // close a peer that won't read its answers
};

class TcpListener {
 public:
  using Options = TcpOptions;

  TcpListener(EventLoop& loop, DnsHandler handler, Options options = Options());
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  util::Status bind(const Endpoint& at, bool reuse_port = false);
  void close();

  /// Graceful-shutdown entry (loop thread only): stop accepting, close
  /// every connection with nothing left to flush, and close the rest as
  /// soon as their buffered responses drain. open_connections() hitting
  /// zero is the drain-complete signal.
  void drain();
  [[nodiscard]] bool draining() const noexcept { return draining_; }

  [[nodiscard]] const Endpoint& local() const noexcept { return bound_; }
  [[nodiscard]] std::size_t open_connections() const noexcept { return conns_.size(); }
  /// Total response bytes buffered and not yet written (all conns).
  [[nodiscard]] std::size_t buffered_bytes() const noexcept;

  /// Counters: transport.tcp.{accepted,rejected,queries,responses,
  /// frame_errors,malformed,idle_closed,overflow_closed,closed}.
  /// Histogram: transport.tcp.handle_us.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

 private:
  struct Conn {
    FdHandle fd;
    Endpoint peer;
    FrameReader reader;
    util::Bytes out;            // unsent response bytes
    std::size_t out_off = 0;    // sent prefix of `out`
    EventLoop::TimerId idle_timer = EventLoop::kInvalidTimer;
    bool writable_armed = false;

    explicit Conn(std::size_t max_frame) : reader(max_frame) {}
  };

  void on_accept();
  void on_conn_event(int fd, std::uint32_t events);
  /// Read until EAGAIN, answering every complete frame. May close.
  void read_input(int fd, Conn& conn);
  /// Push buffered output; arms/disarms EPOLLOUT. May close.
  void flush_output(int fd, Conn& conn);
  void arm_idle(int fd, Conn& conn);
  void close_conn(int fd, const char* counter);
  void bump(const char* counter);

  EventLoop& loop_;
  DnsHandler handler_;
  Options options_;
  FdHandle listen_fd_;
  Endpoint bound_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  obs::MetricsRegistry* metrics_ = nullptr;
  bool draining_ = false;
};

}  // namespace sns::transport
