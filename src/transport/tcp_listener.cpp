#include "transport/tcp_listener.hpp"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace sns::transport {

TcpListener::TcpListener(EventLoop& loop, DnsHandler handler, Options options)
    : loop_(loop), handler_(std::move(handler)), options_(options) {}

TcpListener::~TcpListener() { close(); }

util::Status TcpListener::bind(const Endpoint& at, bool reuse_port) {
  draining_ = false;
  auto fd = listen_tcp(at, reuse_port);
  if (!fd.ok()) return fd.error();
  auto local = local_endpoint(fd.value().get());
  if (!local.ok()) return local.error();
  bound_ = local.value();
  listen_fd_ = std::move(fd).value();
  return loop_.watch(listen_fd_.get(), EPOLLIN, [this](std::uint32_t) { on_accept(); });
}

void TcpListener::close() {
  while (!conns_.empty()) close_conn(conns_.begin()->first, nullptr);
  if (listen_fd_.valid()) {
    loop_.unwatch(listen_fd_.get());
    listen_fd_.reset();
  }
}

void TcpListener::drain() {
  draining_ = true;
  if (listen_fd_.valid()) {
    loop_.unwatch(listen_fd_.get());
    listen_fd_.reset();
  }
  // Connections with fully-flushed output have nothing owed to them;
  // ones mid-flush are closed by flush_output once the buffer empties.
  std::vector<int> idle;
  for (const auto& [fd, conn] : conns_)
    if (conn->out_off >= conn->out.size()) idle.push_back(fd);
  for (int fd : idle) close_conn(fd, "transport.tcp.drained");
}

std::size_t TcpListener::buffered_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [fd, conn] : conns_) total += conn->out.size() - conn->out_off;
  return total;
}

void TcpListener::bump(const char* counter) {
  if (metrics_ != nullptr && counter != nullptr) metrics_->counter(counter).add();
}

void TcpListener::on_accept() {
  for (;;) {
    sockaddr_in sa{};
    socklen_t sa_len = sizeof(sa);
    int raw = ::accept4(listen_fd_.get(), reinterpret_cast<sockaddr*>(&sa), &sa_len,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
        util::log_warn("transport", "accept: ", errno_message("accept4"));
      return;
    }
    if (conns_.size() >= options_.max_connections) {
      ::close(raw);
      bump("transport.tcp.rejected");
      continue;
    }
    auto conn = std::make_unique<Conn>(options_.max_frame);
    conn->fd = FdHandle(raw);
    conn->peer = Endpoint::from_sockaddr(sa);
    int fd = raw;
    auto status =
        loop_.watch(fd, EPOLLIN, [this, fd](std::uint32_t events) { on_conn_event(fd, events); });
    if (!status.ok()) continue;  // Conn destructor closes raw
    arm_idle(fd, *conn);
    conns_.emplace(fd, std::move(conn));
    bump("transport.tcp.accepted");
  }
}

void TcpListener::arm_idle(int fd, Conn& conn) {
  if (conn.idle_timer != EventLoop::kInvalidTimer) loop_.cancel(conn.idle_timer);
  conn.idle_timer = loop_.schedule_after(options_.idle_timeout, [this, fd] {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    it->second->idle_timer = EventLoop::kInvalidTimer;  // fired, nothing to cancel
    close_conn(fd, "transport.tcp.idle_closed");
  });
}

void TcpListener::close_conn(int fd, const char* counter) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second->idle_timer != EventLoop::kInvalidTimer) loop_.cancel(it->second->idle_timer);
  loop_.unwatch(fd);
  // Count before the close so a peer that observed our EOF also
  // observes the close reason in the metrics.
  bump(counter);
  bump("transport.tcp.closed");
  conns_.erase(it);  // FdHandle closes the socket
}

void TcpListener::on_conn_event(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_conn(fd, nullptr);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    flush_output(fd, conn);
    if (conns_.find(fd) == conns_.end()) return;  // flush closed it
  }
  if ((events & EPOLLIN) != 0) read_input(fd, conn);
}

void TcpListener::read_input(int fd, Conn& conn) {
  std::uint8_t buf[16384];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) {
      // Orderly shutdown. A disconnect mid-message just discards the
      // partial frame — there is nobody left to answer.
      close_conn(fd, nullptr);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      close_conn(fd, nullptr);
      return;
    }
    arm_idle(fd, conn);
    conn.reader.feed(std::span(buf, static_cast<std::size_t>(n)));

    while (auto frame = conn.reader.next()) {
      auto query = dns::Message::decode(std::span(*frame));
      dns::Message response;
      if (!query.ok()) {
        bump("transport.tcp.malformed");
        if (frame->size() < 2) {
          // No id to echo a FormErr with — drop the connection, but only
          // after flushing answers already buffered for earlier
          // pipelined queries (mirrors the reader.failed() path below).
          flush_output(fd, conn);
          close_conn(fd, "transport.tcp.frame_errors");
          return;
        }
        response.header.id = static_cast<std::uint16_t>(((*frame)[0] << 8) | (*frame)[1]);
        response.header.qr = true;
        response.header.rcode = dns::Rcode::FormErr;
      } else {
        bump("transport.tcp.queries");
        TimePoint handle_start = loop_.now();
        response = handler_(query.value(), conn.peer, Via::Tcp);
        if (metrics_ != nullptr)
          metrics_->histogram("transport.tcp.handle_us")
              .record(static_cast<std::uint64_t>((loop_.now() - handle_start).count()));
      }
      auto response_wire = response.encode();
      auto framed = frame_message(std::span(response_wire));
      if (!framed.ok()) {
        // Unframeable (>64 KiB) answer: degrade to ServFail rather than
        // silently dropping the query (TCP has no TC escape hatch).
        dns::Message servfail;
        servfail.header.id = response.header.id;
        servfail.header.qr = true;
        servfail.header.rcode = dns::Rcode::ServFail;
        auto servfail_wire = servfail.encode();
        framed = frame_message(std::span(servfail_wire));
      }
      conn.out.insert(conn.out.end(), framed.value().begin(), framed.value().end());
      bump("transport.tcp.responses");
    }

    if (conn.reader.failed()) {
      util::log_debug("transport", "tcp framing error from ", conn.peer.to_string(), ": ",
                      conn.reader.error());
      flush_output(fd, conn);  // best effort for already-answered queries
      close_conn(fd, "transport.tcp.frame_errors");
      return;
    }
    if (conn.out.size() - conn.out_off > options_.max_buffered) {
      close_conn(fd, "transport.tcp.overflow_closed");
      return;
    }
  }
  flush_output(fd, conn);
}

void TcpListener::flush_output(int fd, Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    ssize_t n = ::write(fd, conn.out.data() + conn.out_off, conn.out.size() - conn.out_off);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(fd, nullptr);
      return;
    }
    conn.out_off += static_cast<std::size_t>(n);
  }
  if (conn.out_off >= conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (draining_) {
      // Last owed byte written: the graceful-shutdown contract
      // ("flush in-flight answers, then go away") is fulfilled.
      close_conn(fd, "transport.tcp.drained");
      return;
    }
    if (conn.writable_armed) {
      conn.writable_armed = false;
      (void)loop_.modify(fd, EPOLLIN);
    }
  } else if (!conn.writable_armed) {
    conn.writable_armed = true;
    (void)loop_.modify(fd, EPOLLIN | EPOLLOUT);
  }
}

}  // namespace sns::transport
