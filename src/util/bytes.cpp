#include "util/bytes.hpp"

#include <cassert>

namespace sns::util {

Status ByteReader::seek(std::size_t pos) {
  if (pos > data_.size()) return fail("seek out of bounds");
  pos_ = pos;
  return ok_status();
}

Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return fail("truncated: need 1 byte");
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return fail("truncated: need 2 bytes");
  auto hi = data_[pos_], lo = data_[pos_ + 1];
  pos_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

Result<std::uint32_t> ByteReader::u32() {
  if (remaining() < 4) return fail("truncated: need 4 bytes");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  if (remaining() < 8) return fail("truncated: need 8 bytes");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

Result<Bytes> ByteReader::bytes(std::size_t n) {
  if (remaining() < n) return fail("truncated: need " + std::to_string(n) + " bytes");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<std::string> ByteReader::string(std::size_t n) {
  if (remaining() < n) return fail("truncated: need " + std::to_string(n) + " bytes");
  std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
  pos_ += n;
  return out;
}

Result<std::span<const std::uint8_t>> ByteReader::view(std::size_t n) {
  if (remaining() < n) return fail("truncated: need " + std::to_string(n) + " bytes");
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Status ByteReader::skip(std::size_t n) {
  if (remaining() < n) return fail("truncated: cannot skip " + std::to_string(n));
  pos_ += n;
  return ok_status();
}

void ByteWriter::u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::raw(std::string_view s) {
  out_.insert(out_.end(), s.begin(), s.end());
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  assert(offset + 2 <= out_.size());
  out_[offset] = static_cast<std::uint8_t>(v >> 8);
  out_[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
}

}  // namespace sns::util
