// result.hpp — lightweight Result<T, E> for recoverable errors.
//
// The SNS codebase uses Result for anything that can fail on untrusted
// input (wire parsing, zone files, queries over lossy links) and
// exceptions only for programming errors / unrecoverable misuse.
// C++20 on GCC 12 has no std::expected, so this is a minimal stand-in
// with the same flavour: value_or, map, and_then, and error access.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sns::util {

/// Error payload used across the project: a code-free message string.
/// Kept deliberately simple; callers that need to branch on error kind
/// define their own enum-typed Result instantiations.
struct Error {
  std::string message;

  friend bool operator==(const Error&, const Error&) = default;
};

/// Construct an Error in one call: `return fail("truncated header");`
inline Error fail(std::string message) { return Error{std::move(message)}; }

/// Result<T, E> — either a T (success) or an E (failure).
///
/// Invariant: exactly one alternative is engaged at all times.
template <typename T, typename E = Error>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like std::expected.
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(E error) : storage_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool ok() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  /// Access the success value. Precondition: ok().
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

  /// Access the error. Precondition: !ok().
  [[nodiscard]] const E& error() const& {
    assert(!ok());
    return std::get<1>(storage_);
  }
  [[nodiscard]] E&& error() && {
    assert(!ok());
    return std::get<1>(std::move(storage_));
  }

  /// Apply `f` to the value if ok, otherwise propagate the error.
  template <typename F>
  auto map(F&& f) && -> Result<decltype(f(std::declval<T&&>())), E> {
    if (ok()) return std::forward<F>(f)(std::get<0>(std::move(storage_)));
    return std::get<1>(std::move(storage_));
  }

  /// Monadic bind: `f` returns a Result itself.
  template <typename F>
  auto and_then(F&& f) && -> decltype(f(std::declval<T&&>())) {
    if (ok()) return std::forward<F>(f)(std::get<0>(std::move(storage_)));
    return std::get<1>(std::move(storage_));
  }

 private:
  std::variant<T, E> storage_;
};

/// Result<void> specialisation via a unit type.
struct Unit {
  friend bool operator==(const Unit&, const Unit&) = default;
};
using Status = Result<Unit>;

inline Status ok_status() { return Unit{}; }

}  // namespace sns::util
