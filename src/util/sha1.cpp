#include "util/sha1.hpp"

#include <cstring>
#include <vector>

namespace sns::util {

namespace {

std::uint32_t rotl(std::uint32_t value, int bits) {
  return (value << bits) | (value >> (32 - bits));
}

struct Sha1State {
  std::uint32_t h[5] = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};

  void process_block(const std::uint8_t* block) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
             (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i)
      w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5a827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ed9eba1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8f1bbcdcu;
      } else {
        f = b ^ c ^ d;
        k = 0xca62c1d6u;
      }
      std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
};

}  // namespace

Sha1Digest sha1(std::span<const std::uint8_t> data) {
  Sha1State state;
  std::size_t full_blocks = data.size() / 64;
  for (std::size_t i = 0; i < full_blocks; ++i) state.process_block(data.data() + i * 64);

  // Padding: 0x80, zeros, then 64-bit big-endian bit length.
  std::uint8_t tail[128] = {};
  std::size_t rem = data.size() - full_blocks * 64;
  if (rem != 0) std::memcpy(tail, data.data() + full_blocks * 64, rem);  // data may be {nullptr,0}
  tail[rem] = 0x80;
  std::size_t tail_len = (rem + 1 + 8 <= 64) ? 64 : 128;
  std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i)
    tail[tail_len - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  state.process_block(tail);
  if (tail_len == 128) state.process_block(tail + 64);

  Sha1Digest out;
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 4; ++j)
      out[static_cast<std::size_t>(i * 4 + j)] =
          static_cast<std::uint8_t>(state.h[i] >> (24 - 8 * j));
  return out;
}

Sha1Digest hmac_sha1(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t key_block[kBlock] = {};
  if (key.size() > kBlock) {
    Sha1Digest hashed = sha1(key);
    std::memcpy(key_block, hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  std::vector<std::uint8_t> inner;
  inner.reserve(kBlock + data.size());
  for (std::size_t i = 0; i < kBlock; ++i)
    inner.push_back(static_cast<std::uint8_t>(key_block[i] ^ 0x36));
  inner.insert(inner.end(), data.begin(), data.end());
  Sha1Digest inner_hash = sha1(inner);

  std::vector<std::uint8_t> outer;
  outer.reserve(kBlock + inner_hash.size());
  for (std::size_t i = 0; i < kBlock; ++i)
    outer.push_back(static_cast<std::uint8_t>(key_block[i] ^ 0x5c));
  outer.insert(outer.end(), inner_hash.begin(), inner_hash.end());
  return sha1(outer);
}

}  // namespace sns::util
