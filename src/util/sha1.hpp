// sha1.hpp — SHA-1 and HMAC-SHA1.
//
// Used for NSEC3 owner-name hashing (RFC 5155 mandates SHA-1) and as the
// MAC underlying the project's TSIG and *toy* DNSSEC signatures. SHA-1 is
// cryptographically broken for collision resistance; it is used here
// because the reproduced protocols specify it and because this codebase
// runs only against its own simulator — see DESIGN.md §2.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace sns::util {

using Sha1Digest = std::array<std::uint8_t, 20>;

/// One-shot SHA-1 of a byte span.
Sha1Digest sha1(std::span<const std::uint8_t> data);

/// HMAC-SHA1 per RFC 2104.
Sha1Digest hmac_sha1(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data);

}  // namespace sns::util
