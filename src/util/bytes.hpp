// bytes.hpp — bounds-checked big-endian byte buffer reader/writer.
//
// All DNS wire-format code is built on these two classes. ByteReader
// never reads out of bounds: every accessor returns a Result and a
// failed read leaves the cursor untouched, so parsers can report
// precise truncation errors on adversarial input. ByteWriter grows an
// owned vector and supports back-patching (needed for DNS name
// compression offsets and message lengths).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace sns::util {

using Bytes = std::vector<std::uint8_t>;

/// Sequential big-endian reader over a non-owned byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> buffer() const noexcept { return data_; }

  /// Reposition the cursor (used for DNS compression pointer chasing).
  Status seek(std::size_t pos);

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();

  /// Read exactly `n` bytes into an owned vector.
  Result<Bytes> bytes(std::size_t n);

  /// Read exactly `n` bytes as a string (no charset interpretation).
  Result<std::string> string(std::size_t n);

  /// View `n` bytes without copying; the view aliases the underlying buffer.
  Result<std::span<const std::uint8_t>> view(std::size_t n);

  /// Skip `n` bytes.
  Status skip(std::size_t n);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Append-only big-endian writer with back-patch support.
class ByteWriter {
 public:
  ByteWriter() = default;

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] const Bytes& data() const& noexcept { return out_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(out_); }

  /// Pre-size the buffer for `n` total bytes (callers sum wire-length
  /// estimates so one allocation serves the whole message).
  void reserve(std::size_t n) { out_.reserve(n); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(std::span<const std::uint8_t> bytes);
  void raw(std::string_view s);

  /// Overwrite a previously written u16 at `offset` (e.g. RDLENGTH).
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  Bytes out_;
};

}  // namespace sns::util
