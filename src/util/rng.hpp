// rng.hpp — deterministic pseudo-random source for simulations and tests.
//
// Everything stochastic in the simulator (link loss, jitter, GNSS noise,
// workload generation) draws from SplitMix64 seeded explicitly, so every
// experiment is reproducible bit-for-bit from its seed.
#pragma once

#include <cstdint>
#include <limits>

namespace sns::util {

/// SplitMix64: tiny, fast, statistically solid for simulation purposes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection-free modulo is fine for simulation workloads.
    return next_u64() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Approximate standard normal via the Irwin–Hall sum of 12 uniforms:
  /// cheap, deterministic, and more than accurate enough for noise models.
  double next_gaussian(double mean = 0.0, double stddev = 1.0) {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += next_double();
    return mean + stddev * (sum - 6.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace sns::util
