// pmap.hpp — persistent (structurally shared) hash map.
//
// The write-path primitive under the immutable-zone redesign: a
// bitmap-compressed hash-array-mapped trie whose set/erase path-copy
// only the O(log32 n) nodes between the root and the touched entry.
// Copying a PMap is copying one shared_ptr; the copy and the original
// share every untouched node, so a ZoneTxn commit (or an incremental
// answer-cache rebuild) costs O(entries touched × depth), not O(map).
//
// Entries are immutable payloads held by shared_ptr<const E>; E
// exposes its own key:
//
//   std::string_view key_view() const;   // stable for E's lifetime
//   std::size_t      key_hash() const;   // fnv1a(key_view()), cached
//
// Mutation uses the transient trick: a node whose use_count() is 1 is
// owned exclusively by the running operation (nodes reachable from any
// shared map root always hold count >= 2, because copying a parent
// bumps every child), so it is patched in place instead of copied.
// Bulk builds therefore run at in-place speed while committed maps
// stay frozen. Thread-safety contract: a PMap value is mutated by at
// most one thread; *snapshots* (copies) of it may be read from any
// number of threads concurrently — reads traverse raw pointers and
// never touch a refcount.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

namespace sns::util {

/// FNV-1a over arbitrary bytes — the same function dns::Name caches
/// for its packed key, so Name::hash() and fnv1a(name.packed()) agree.
inline std::size_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h);
}

template <typename E>
class PMap {
 public:
  using Ptr = std::shared_ptr<const E>;

  /// Entry with this exact key, or nullptr. Wait-free, no refcounts.
  [[nodiscard]] const E* find(std::string_view key, std::size_t hash) const noexcept {
    const Node* n = root_.get();
    unsigned shift = 0;
    while (n != nullptr) {
      if (!n->entries.empty()) {
        for (const auto& e : n->entries)
          if (e->key_hash() == hash && e->key_view() == key) return e.get();
        return nullptr;
      }
      std::uint32_t bit = bit_of(hash, shift);
      if ((n->bitmap & bit) == 0) return nullptr;
      n = n->children[slot_of(n->bitmap, bit)].get();
      shift += kBits;
    }
    return nullptr;
  }

  /// Insert or replace. The path to the entry is copied unless this map
  /// is the sole owner of it (freshly built nodes mutate in place).
  void set(Ptr entry) {
    bool added = false;
    std::size_t hash = entry->key_hash();
    root_ = set_rec(std::move(root_), std::move(entry), hash, 0, added);
    if (added) ++size_;
  }

  /// Remove by key; false if absent.
  bool erase(std::string_view key, std::size_t hash) {
    if (root_ == nullptr) return false;
    bool removed = false;
    root_ = erase_rec(std::move(root_), key, hash, 0, removed);
    if (removed) --size_;
    return removed;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Visit every entry (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(root_.get(), fn);
  }

 private:
  static constexpr unsigned kBits = 5;  // 32-way branching

  // A node is terminal when `entries` is non-empty: one entry is a
  // plain leaf; several share an identical 64-bit hash (a collision
  // bucket — with FNV-1a over distinct packed names this is all but
  // unreachable, but correctness must not depend on that). Otherwise
  // it is an interior node: `children` dense over the bitmap.
  struct Node {
    std::uint32_t bitmap = 0;
    std::vector<std::shared_ptr<Node>> children;
    std::vector<Ptr> entries;
  };
  using NodePtr = std::shared_ptr<Node>;

  static std::uint32_t bit_of(std::size_t hash, unsigned shift) noexcept {
    // Hash bits exhaust after 64/5 levels; past that only equal-hash
    // keys remain and they land in a collision bucket before this is
    // ever consulted again.
    std::size_t chunk = shift >= 64 ? 0 : (hash >> shift) & 31u;
    return std::uint32_t{1} << chunk;
  }
  static std::size_t slot_of(std::uint32_t bitmap, std::uint32_t bit) noexcept {
    return static_cast<std::size_t>(std::popcount(bitmap & (bit - 1)));
  }

  /// The transient trick: sole ownership (use_count 1 on a pointer we
  /// hold by value) proves no snapshot can reach this node, so the
  /// operation may patch it in place.
  static NodePtr owned(NodePtr n) {
    if (n.use_count() == 1) return n;
    return std::make_shared<Node>(*n);
  }

  static NodePtr leaf_of(Ptr entry) {
    auto n = std::make_shared<Node>();
    n->entries.push_back(std::move(entry));
    return n;
  }

  static NodePtr set_rec(NodePtr n, Ptr entry, std::size_t hash, unsigned shift, bool& added) {
    if (n == nullptr) {
      added = true;
      return leaf_of(std::move(entry));
    }
    if (!n->entries.empty()) {
      std::size_t have = n->entries.front()->key_hash();
      if (have == hash) {
        n = owned(std::move(n));
        for (auto& e : n->entries) {
          if (e->key_view() == entry->key_view()) {
            e = std::move(entry);  // replace
            return n;
          }
        }
        n->entries.push_back(std::move(entry));
        added = true;
        return n;
      }
      // Split: push the existing terminal one level down (shared, not
      // copied — terminals are depth-independent), then insert.
      auto inner = std::make_shared<Node>();
      std::uint32_t bit = bit_of(have, shift);
      inner->bitmap = bit;
      inner->children.push_back(std::move(n));
      return set_rec(std::move(inner), std::move(entry), hash, shift, added);
    }
    std::uint32_t bit = bit_of(hash, shift);
    std::size_t slot = slot_of(n->bitmap, bit);
    n = owned(std::move(n));
    if ((n->bitmap & bit) != 0) {
      n->children[slot] =
          set_rec(std::move(n->children[slot]), std::move(entry), hash, shift + kBits, added);
    } else {
      n->bitmap |= bit;
      n->children.insert(n->children.begin() + static_cast<std::ptrdiff_t>(slot),
                         leaf_of(std::move(entry)));
      added = true;
    }
    return n;
  }

  static NodePtr erase_rec(NodePtr n, std::string_view key, std::size_t hash, unsigned shift,
                           bool& removed) {
    if (!n->entries.empty()) {
      for (std::size_t i = 0; i < n->entries.size(); ++i) {
        if (n->entries[i]->key_hash() == hash && n->entries[i]->key_view() == key) {
          removed = true;
          if (n->entries.size() == 1) return nullptr;
          n = owned(std::move(n));
          n->entries.erase(n->entries.begin() + static_cast<std::ptrdiff_t>(i));
          return n;
        }
      }
      return n;  // absent: untouched
    }
    std::uint32_t bit = bit_of(hash, shift);
    if ((n->bitmap & bit) == 0) return n;
    std::size_t slot = slot_of(n->bitmap, bit);
    n = owned(std::move(n));
    n->children[slot] = erase_rec(std::move(n->children[slot]), key, hash, shift + kBits, removed);
    if (n->children[slot] == nullptr) {
      n->bitmap &= ~bit;
      n->children.erase(n->children.begin() + static_cast<std::ptrdiff_t>(slot));
    }
    if (n->children.empty()) return nullptr;
    // Canonical collapse: a chain down to one terminal child folds
    // into that child, keeping probes shallow after heavy churn.
    if (n->children.size() == 1 && !n->children.front()->entries.empty())
      return n->children.front();
    return n;
  }

  template <typename Fn>
  static void walk(const Node* n, Fn& fn) {
    if (n == nullptr) return;
    for (const auto& e : n->entries) fn(*e);
    for (const auto& c : n->children) walk(c.get(), fn);
  }

  NodePtr root_;
  std::size_t size_ = 0;
};

}  // namespace sns::util
