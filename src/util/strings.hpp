// strings.hpp — small string utilities shared across the project.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace sns::util {

/// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string> split_whitespace(std::string_view s);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// ASCII lowercase copy (DNS names compare case-insensitively).
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Hex encoding, lowercase, no separators.
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Parse hex (case-insensitive, no separators). Fails on odd length or
/// non-hex characters.
Result<std::vector<std::uint8_t>> from_hex(std::string_view hex);

/// Base32hex without padding as used by NSEC3 (RFC 4648 §7).
std::string to_base32hex(std::span<const std::uint8_t> bytes);

/// Join parts with a separator.
std::string join(std::span<const std::string> parts, std::string_view sep);

/// True if `s` ends with `suffix` (case-insensitive).
bool iends_with(std::string_view s, std::string_view suffix);

}  // namespace sns::util
