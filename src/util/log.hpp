// log.hpp — minimal leveled logger.
//
// The simulator is deterministic, so logs are a faithful trace of a run;
// default level is Warn to keep test output quiet.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace sns::util {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr: "[level] component: message".
void log_line(LogLevel level, std::string_view component, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(std::string_view component, Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_line(LogLevel::Debug, component, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(std::string_view component, Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_line(LogLevel::Info, component, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(std::string_view component, Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_line(LogLevel::Warn, component, detail::concat(std::forward<Args>(args)...));
}

}  // namespace sns::util
