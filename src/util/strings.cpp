#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace sns::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
    std::size_t start = i;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) == 0) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0)
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0)
    s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](unsigned char x, unsigned char y) {
           return std::tolower(x) == std::tolower(y);
         });
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Result<std::vector<std::uint8_t>> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return fail("hex string has odd length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return fail("invalid hex character");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string to_base32hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kAlphabet[] = "0123456789abcdefghijklmnopqrstuv";
  std::string out;
  std::uint32_t buffer = 0;
  int bits = 0;
  for (std::uint8_t b : bytes) {
    buffer = (buffer << 8) | b;
    bits += 8;
    while (bits >= 5) {
      out.push_back(kAlphabet[(buffer >> (bits - 5)) & 0x1f]);
      bits -= 5;
    }
  }
  if (bits > 0) out.push_back(kAlphabet[(buffer << (5 - bits)) & 0x1f]);
  return out;
}

std::string join(std::span<const std::string> parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool iends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && iequals(s.substr(s.size() - suffix.size()), suffix);
}

}  // namespace sns::util
