#include "util/log.hpp"

#include <cstdio>

namespace sns::util {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace sns::util
