// rdata.hpp — typed RDATA for every record the SNS uses.
//
// Covers the classic types needed for a working DNS (A, AAAA, NS, CNAME,
// SOA, PTR, MX, TXT, SRV), the location/key types the paper leans on
// (LOC, SSHFP), the security types (RRSIG, DNSKEY, NSEC3, TSIG, OPT) and
// the paper's Table 1 extensions (BDADDR, WIFI, LORA, DTMF). Unknown
// types round-trip as opaque bytes (RFC 3597).
//
// Backwards compatibility (§2.2): every extended type can be re-encoded
// as a TXT record ("sns:<family>=<value>") and recovered from it, so
// middleboxes that strip unknown types do not break the SNS.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/loc.hpp"
#include "dns/name.hpp"
#include "dns/type.hpp"
#include "net/address.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace sns::dns {

struct AData {
  net::Ipv4Addr address;
  friend bool operator==(const AData&, const AData&) = default;
};

struct AaaaData {
  net::Ipv6Addr address;
  friend bool operator==(const AaaaData&, const AaaaData&) = default;
};

struct NsData {
  Name nameserver;
  friend bool operator==(const NsData&, const NsData&) = default;
};

struct CnameData {
  Name target;
  friend bool operator==(const CnameData&, const CnameData&) = default;
};

struct SoaData {
  Name mname;   // primary nameserver
  Name rname;   // responsible mailbox
  std::uint32_t serial = 0;
  std::uint32_t refresh = 3600;
  std::uint32_t retry = 600;
  std::uint32_t expire = 86400;
  std::uint32_t minimum = 60;  // negative-caching TTL (RFC 2308)
  friend bool operator==(const SoaData&, const SoaData&) = default;
};

struct PtrData {
  Name target;
  friend bool operator==(const PtrData&, const PtrData&) = default;
};

struct MxData {
  std::uint16_t preference = 0;
  Name exchange;
  friend bool operator==(const MxData&, const MxData&) = default;
};

struct TxtData {
  std::vector<std::string> strings;  // each <= 255 octets on the wire
  friend bool operator==(const TxtData&, const TxtData&) = default;
};

struct SrvData {
  std::uint16_t priority = 0;
  std::uint16_t weight = 0;
  std::uint16_t port = 0;
  Name target;
  friend bool operator==(const SrvData&, const SrvData&) = default;
};

struct SshfpData {
  std::uint8_t algorithm = 0;  // 1=RSA 2=DSA 3=ECDSA 4=Ed25519
  std::uint8_t fp_type = 0;    // 1=SHA-1 2=SHA-256
  util::Bytes fingerprint;
  friend bool operator==(const SshfpData&, const SshfpData&) = default;
};

/// EDNS0 pseudo-record payload; we only model the UDP size and a raw
/// option blob (enough for larger messages and future extension).
struct OptData {
  std::uint16_t udp_payload_size = 1232;
  util::Bytes options;
  friend bool operator==(const OptData&, const OptData&) = default;
};

struct RrsigData {
  RRType type_covered = RRType::A;
  std::uint8_t algorithm = 0;
  std::uint8_t labels = 0;
  std::uint32_t original_ttl = 0;
  std::uint32_t expiration = 0;  // absolute seconds (simulated epoch)
  std::uint32_t inception = 0;
  std::uint16_t key_tag = 0;
  Name signer;
  util::Bytes signature;
  friend bool operator==(const RrsigData&, const RrsigData&) = default;
};

struct DnskeyData {
  std::uint16_t flags = 256;   // ZSK
  std::uint8_t protocol = 3;
  std::uint8_t algorithm = 0;
  util::Bytes public_key;
  friend bool operator==(const DnskeyData&, const DnskeyData&) = default;
};

struct Nsec3Data {
  std::uint8_t hash_algorithm = 1;  // SHA-1
  std::uint8_t flags = 0;
  std::uint16_t iterations = 0;
  util::Bytes salt;
  util::Bytes next_hashed_owner;  // 20 bytes for SHA-1
  std::vector<RRType> types;
  friend bool operator==(const Nsec3Data&, const Nsec3Data&) = default;
};

struct TsigData {
  Name algorithm;                // e.g. hmac-sha1.sig-alg.reg.int
  std::uint64_t time_signed = 0; // 48 bits on the wire
  std::uint16_t fudge = 300;
  util::Bytes mac;
  std::uint16_t original_id = 0;
  std::uint16_t error = 0;
  util::Bytes other;
  friend bool operator==(const TsigData&, const TsigData&) = default;
};

// --- Table 1 extensions ----------------------------------------------------

struct BdaddrData {
  net::Bdaddr address;
  friend bool operator==(const BdaddrData&, const BdaddrData&) = default;
};

/// Table 1: WIFI (<ssid>, 192.0.3.1) — which SSID to join, and the
/// device's address on that network.
struct WifiData {
  std::string ssid;  // <= 32 octets per 802.11
  net::Ipv4Addr address;
  friend bool operator==(const WifiData&, const WifiData&) = default;
};

/// Table 1: LORA (<gw>, <devaddr>) — gateway name + 32-bit DevAddr.
struct LoraData {
  Name gateway;
  net::LoraDevAddr devaddr;
  friend bool operator==(const LoraData&, const LoraData&) = default;
};

struct DtmfData {
  net::DtmfTone tone;
  friend bool operator==(const DtmfData&, const DtmfData&) = default;
};

/// Reverse geodetic area query (the spatial subsystem's wire protocol):
/// a geodetic bounding box carried in the additional section of an AREA
/// query, the same trick EDNS plays with OPT — question sections cannot
/// carry rdata. Coordinates travel as two's-complement 1e-7-degree
/// fixed point (~1 cm), network order, 16 bytes total; values assigned
/// from doubles should come through area_box()/from_box() in
/// src/spatial/ so both ends round identically.
struct AreaData {
  double min_lat = 0.0;
  double min_lon = 0.0;
  double max_lat = 0.0;
  double max_lon = 0.0;
  friend bool operator==(const AreaData&, const AreaData&) = default;
};

/// RFC 3597 opaque rdata for types we do not model.
struct RawData {
  util::Bytes bytes;
  friend bool operator==(const RawData&, const RawData&) = default;
};

using Rdata = std::variant<AData, AaaaData, NsData, CnameData, SoaData, PtrData, MxData, TxtData,
                           SrvData, LocData, SshfpData, OptData, RrsigData, DnskeyData, Nsec3Data,
                           TsigData, BdaddrData, WifiData, LoraData, DtmfData, AreaData, RawData>;

/// The wire type this rdata naturally belongs to (RawData → nullopt;
/// the owning record supplies the numeric type).
RRType rdata_type(const Rdata& rdata);

/// Encode RDATA (without the RDLENGTH prefix). Name compression is
/// applied only for the types where RFC 3597 §4 permits it (NS, CNAME,
/// SOA, PTR, MX); pass nullptr to disable compression entirely (canonical
/// form for signing).
void encode_rdata(const Rdata& rdata, util::ByteWriter& out, NameCompressor* compressor);

/// Upper bound on the encoded (uncompressed) wire size of `rdata`.
/// Cheap — no encoding happens — and used to reserve message buffers
/// up front; compression can only shrink the real encoding.
std::size_t rdata_wire_estimate(const Rdata& rdata);

/// Decode RDATA of `type` from a reader positioned at the RDATA start;
/// `rdlength` bytes belong to this record. Compression pointers inside
/// rdata may reference earlier message bytes.
util::Result<Rdata> decode_rdata(RRType type, util::ByteReader& reader, std::size_t rdlength);

/// Presentation (master-file) form of the rdata.
std::string rdata_to_string(const Rdata& rdata);

/// Parse rdata of `type` from master-file tokens.
util::Result<Rdata> rdata_from_tokens(RRType type, std::span<const std::string> tokens);

// --- TXT fallback (§2.2) ----------------------------------------------------

/// True for the SNS extended types that support the TXT fallback.
bool has_txt_fallback(RRType type);

/// Encode an extended rdata as a TXT record string "sns:<family>=<text>".
util::Result<TxtData> to_txt_fallback(const Rdata& rdata);

/// Recover (type, rdata) from a fallback TXT payload; fails if the TXT
/// is not an SNS fallback encoding.
util::Result<std::pair<RRType, Rdata>> from_txt_fallback(const TxtData& txt);

}  // namespace sns::dns
