#include "dns/master.hpp"

#include <cctype>
#include <charconv>

#include "util/strings.hpp"

namespace sns::dns {

using util::fail;
using util::Result;

namespace {

/// Tokenise one logical line: handles quoted strings (kept with their
/// quotes so rdata parsers can distinguish) and strips comments.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (c == ';') break;  // comment to end of line
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '"') {
      std::size_t close = line.find('"', i + 1);
      if (close == std::string_view::npos) close = line.size() - 1;
      out.emplace_back(line.substr(i, close - i + 1));
      i = close + 1;
      continue;
    }
    std::size_t start = i;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])) == 0 &&
           line[i] != ';')
      ++i;
    out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

bool parse_ttl_token(const std::string& token, std::uint32_t& ttl) {
  if (token.empty() || std::isdigit(static_cast<unsigned char>(token[0])) == 0) return false;
  std::uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{}) return false;
  std::string_view rest(ptr, static_cast<std::size_t>(token.data() + token.size() - ptr));
  std::uint32_t multiplier = 1;
  if (rest.empty())
    multiplier = 1;
  else if (rest == "s" || rest == "S")
    multiplier = 1;
  else if (rest == "m" || rest == "M")
    multiplier = 60;
  else if (rest == "h" || rest == "H")
    multiplier = 3600;
  else if (rest == "d" || rest == "D")
    multiplier = 86400;
  else if (rest == "w" || rest == "W")
    multiplier = 604800;
  else
    return false;
  ttl = value * multiplier;
  return true;
}

Result<Name> resolve_name(const std::string& token, const Name& origin) {
  if (token == "@") return origin;
  if (!token.empty() && token.back() == '.') return Name::parse(token);
  auto relative = Name::parse(token);
  if (!relative.ok()) return relative.error();
  return relative.value().concat(origin);
}

}  // namespace

Result<std::vector<ResourceRecord>> parse_master_file(std::string_view text,
                                                      const Name& default_origin) {
  std::vector<ResourceRecord> out;
  Name origin = default_origin;
  std::uint32_t default_ttl = 3600;
  Name last_owner = origin;
  bool have_owner = false;

  // Merge parenthesised continuations into logical lines first.
  std::vector<std::pair<std::size_t, std::string>> logical;  // (line number, text)
  {
    std::size_t lineno = 0;
    std::string pending;
    std::size_t pending_line = 0;
    int depth = 0;
    for (auto& raw : util::split(text, '\n')) {
      ++lineno;
      std::string line = raw;
      // Strip comments before counting parentheses (a ';' may hide one).
      std::size_t semicolon = line.find(';');
      std::string effective = semicolon == std::string::npos ? line : line.substr(0, semicolon);
      for (char c : effective) {
        if (c == '(') ++depth;
        if (c == ')') --depth;
      }
      if (pending.empty()) pending_line = lineno;
      pending += effective;
      pending += ' ';
      if (depth == 0) {
        logical.emplace_back(pending_line, pending);
        pending.clear();
      }
    }
    if (depth != 0) return fail("master: unbalanced parentheses");
  }

  for (auto& [lineno, line] : logical) {
    // Remove the parentheses themselves; they only group lines.
    std::string cleaned;
    cleaned.reserve(line.size());
    for (char c : line)
      if (c != '(' && c != ')') cleaned.push_back(c);

    bool owner_omitted =
        !cleaned.empty() && std::isspace(static_cast<unsigned char>(cleaned[0])) != 0;
    auto tokens = tokenize(cleaned);
    if (tokens.empty()) continue;

    auto error_at = [&](const std::string& what) {
      return fail("master line " + std::to_string(lineno) + ": " + what);
    };

    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() < 2) return error_at("$ORIGIN needs a name");
      auto parsed = Name::parse(tokens[1]);
      if (!parsed.ok()) return error_at(parsed.error().message);
      origin = std::move(parsed).value();
      continue;
    }
    if (tokens[0] == "$TTL") {
      if (tokens.size() < 2 || !parse_ttl_token(tokens[1], default_ttl))
        return error_at("$TTL needs a duration");
      continue;
    }

    std::size_t i = 0;
    Name owner = last_owner;
    if (owner_omitted) {
      if (!have_owner) return error_at("first record cannot omit its owner");
    } else {
      auto parsed = resolve_name(tokens[i], origin);
      if (!parsed.ok()) return error_at(parsed.error().message);
      owner = std::move(parsed).value();
      ++i;
    }

    std::uint32_t ttl = default_ttl;
    RRClass klass = RRClass::IN;
    // TTL and class may appear in either order before the type.
    for (int pass = 0; pass < 2 && i < tokens.size(); ++pass) {
      if (parse_ttl_token(tokens[i], ttl)) {
        ++i;
      } else if (util::iequals(tokens[i], "IN")) {
        klass = RRClass::IN;
        ++i;
      }
    }
    if (i >= tokens.size()) return error_at("missing record type");

    auto type = rrtype_from_string(tokens[i]);
    if (!type.ok()) return error_at(type.error().message);
    ++i;

    std::vector<std::string> rdata_tokens(tokens.begin() + static_cast<std::ptrdiff_t>(i),
                                          tokens.end());
    // Resolve relative names in rdata against the origin by handing the
    // token parser absolute names: for name-bearing fields we append the
    // origin when the token lacks a trailing dot.
    switch (type.value()) {
      case RRType::NS:
      case RRType::CNAME:
      case RRType::PTR: {
        if (!rdata_tokens.empty() && rdata_tokens[0] != "@" && rdata_tokens[0].back() != '.') {
          auto absolute = resolve_name(rdata_tokens[0], origin);
          if (!absolute.ok()) return error_at(absolute.error().message);
          rdata_tokens[0] = absolute.value().to_string() + ".";
        } else if (!rdata_tokens.empty() && rdata_tokens[0] == "@") {
          rdata_tokens[0] = origin.to_string() + ".";
        }
        break;
      }
      case RRType::SOA: {
        for (std::size_t f = 0; f < 2 && f < rdata_tokens.size(); ++f) {
          if (rdata_tokens[f] == "@") {
            rdata_tokens[f] = origin.to_string() + ".";
          } else if (rdata_tokens[f].back() != '.') {
            auto absolute = resolve_name(rdata_tokens[f], origin);
            if (!absolute.ok()) return error_at(absolute.error().message);
            rdata_tokens[f] = absolute.value().to_string() + ".";
          }
        }
        break;
      }
      case RRType::SRV:
      case RRType::MX: {
        std::size_t name_field = type.value() == RRType::SRV ? 3 : 1;
        if (rdata_tokens.size() > name_field && rdata_tokens[name_field] != "@" &&
            rdata_tokens[name_field].back() != '.') {
          auto absolute = resolve_name(rdata_tokens[name_field], origin);
          if (!absolute.ok()) return error_at(absolute.error().message);
          rdata_tokens[name_field] = absolute.value().to_string() + ".";
        }
        break;
      }
      default:
        break;
    }

    auto rdata = rdata_from_tokens(type.value(), rdata_tokens);
    if (!rdata.ok()) return error_at(rdata.error().message);

    out.push_back(ResourceRecord{owner, type.value(), klass, ttl, std::move(rdata).value()});
    last_owner = owner;
    have_owner = true;
  }
  return out;
}

std::string to_master_file(std::span<const ResourceRecord> records) {
  std::string out;
  for (const auto& rr : records) {
    out += rr.name.to_string() + ". " + std::to_string(rr.ttl) + " " + to_string(rr.klass) + " " +
           to_string(rr.type) + " " + rdata_to_string(rr.rdata) + "\n";
  }
  return out;
}

}  // namespace sns::dns
