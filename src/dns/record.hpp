// record.hpp — resource records and RRsets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "dns/rdata.hpp"
#include "dns/type.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace sns::dns {

struct ResourceRecord {
  Name name;
  RRType type = RRType::A;
  RRClass klass = RRClass::IN;
  std::uint32_t ttl = 300;
  Rdata rdata = AData{};

  /// Zone-file style one-liner: "name ttl class type rdata".
  [[nodiscard]] std::string to_string() const;

  /// Wire encode. `compressor` may be nullptr for canonical form.
  void encode(util::ByteWriter& out, NameCompressor* compressor) const;
  static util::Result<ResourceRecord> decode(util::ByteReader& reader);

  /// Upper bound on the encoded wire size (uncompressed): owner name +
  /// 10 fixed octets + rdata estimate. Used to reserve buffers.
  [[nodiscard]] std::size_t wire_estimate() const {
    return name.wire_length() + 10 + rdata_wire_estimate(rdata);
  }

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) = default;
};

/// Records sharing (name, type, class). Kept as a plain vector; the
/// invariant is maintained by the zone store.
using RRset = std::vector<ResourceRecord>;

/// Convenience constructors used throughout examples and tests.
ResourceRecord make_a(const Name& name, net::Ipv4Addr address, std::uint32_t ttl = 300);
ResourceRecord make_aaaa(const Name& name, net::Ipv6Addr address, std::uint32_t ttl = 300);
ResourceRecord make_ns(const Name& name, const Name& nameserver, std::uint32_t ttl = 3600);
ResourceRecord make_cname(const Name& name, const Name& target, std::uint32_t ttl = 300);
ResourceRecord make_txt(const Name& name, std::vector<std::string> strings,
                        std::uint32_t ttl = 300);
ResourceRecord make_ptr(const Name& name, const Name& target, std::uint32_t ttl = 300);
ResourceRecord make_srv(const Name& name, std::uint16_t port, const Name& target,
                        std::uint32_t ttl = 300);
ResourceRecord make_soa(const Name& zone, const Name& mname, std::uint32_t serial,
                        std::uint32_t ttl = 3600);
ResourceRecord make_bdaddr(const Name& name, net::Bdaddr address, std::uint32_t ttl = 300);
ResourceRecord make_loc(const Name& name, const LocData& loc, std::uint32_t ttl = 300);

}  // namespace sns::dns
