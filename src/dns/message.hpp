// message.hpp — complete DNS messages (RFC 1035 §4).
//
// Encoding applies name compression across the whole message; decoding
// is safe on hostile input (every read is bounds-checked, compression
// loops rejected). Query/response helpers encode the conventions the
// rest of the system uses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "dns/record.hpp"
#include "dns/type.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace sns::dns {

struct Header {
  std::uint16_t id = 0;
  bool qr = false;                  // response?
  Opcode opcode = Opcode::Query;
  bool aa = false;                  // authoritative answer
  bool tc = false;                  // truncated
  bool rd = true;                   // recursion desired
  bool ra = false;                  // recursion available
  bool ad = false;                  // authenticated data (DNSSEC)
  Rcode rcode = Rcode::NoError;

  friend bool operator==(const Header&, const Header&) = default;
};

struct Question {
  Name name;
  RRType type = RRType::A;
  RRClass klass = RRClass::IN;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const Question&, const Question&) = default;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  [[nodiscard]] util::Bytes encode() const;
  static util::Result<Message> decode(std::span<const std::uint8_t> wire);

  /// encode() plus section layout: the wire offset where the question
  /// section ends. encode_for_transport derives a truncated (TC=1)
  /// reply from this prefix instead of re-encoding the whole message.
  struct Encoded {
    util::Bytes wire;
    std::size_t questions_end = 0;
  };
  [[nodiscard]] Encoded encode_with_layout() const;

  /// Multi-line dig-style rendering for logs and examples.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Standard query for one (name, type).
Message make_query(std::uint16_t id, const Name& name, RRType type, bool recursion_desired = true);

/// Start a response matching `query` (copies id, opcode, question; sets
/// qr; echoes rd; sets ra/aa per flags).
Message make_response(const Message& query, Rcode rcode, bool authoritative);

// --- EDNS0 (RFC 6891) ---------------------------------------------------

/// Classic DNS-over-UDP payload limit when no OPT is present.
constexpr std::size_t kClassicUdpLimit = 512;

/// Append an OPT pseudo-record advertising `udp_size` (carried in the
/// OPT record's CLASS field per RFC 6891).
void add_edns(Message& message, std::uint16_t udp_size = 1232);

/// Payload size the sender of `message` can accept: the OPT's CLASS
/// value, or 512 when no OPT is present.
std::size_t advertised_udp_size(const Message& message);

/// Encode `response` respecting the querier's advertised limit: when
/// the full encoding exceeds it, return a truncated (TC=1, empty
/// sections) encoding instead so the client retries with EDNS/TCP.
/// The truncated form is the already-encoded header + question prefix
/// with the TC bit set and the record counts zeroed — no second encode.
util::Bytes encode_for_transport(const Message& query, const Message& response);

}  // namespace sns::dns
