#include "dns/dnssec.hpp"

#include <algorithm>

#include "util/strings.hpp"

// GCC 12 reports a spurious -Wstringop-overread through the memcmp
// that vector<unsigned char>'s synthesized <=> inlines into the sorts
// below (PR 105329 family) — the bound it warns about is the "negative
// size" branch the comparison can never take.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wstringop-overread"
#endif

namespace sns::dns {

using util::Bytes;
using util::ByteWriter;
using util::fail;
using util::Result;
using util::Status;

std::uint16_t ZoneKey::key_tag() const {
  // RFC 4034 appendix B flavour: fold the secret into 16 bits.
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < secret.size(); ++i)
    acc += (i & 1) != 0 ? secret[i] : static_cast<std::uint32_t>(secret[i]) << 8;
  acc += (acc >> 16) & 0xffff;
  return static_cast<std::uint16_t>(acc & 0xffff);
}

DnskeyData ZoneKey::to_dnskey() const {
  return DnskeyData{256, 3, kToyHmacAlgorithm, secret};
}

namespace {

Name lowercase_name(const Name& name) {
  std::vector<std::string> labels;
  labels.reserve(name.label_count());
  for (const auto& label : name.labels()) labels.push_back(util::to_lower(label));
  auto built = Name::from_labels(std::move(labels));
  // Lowercasing cannot invalidate a valid name.
  return built.ok() ? std::move(built).value() : name;
}

Bytes rdata_wire(const Rdata& rdata) {
  ByteWriter w;
  encode_rdata(rdata, w, nullptr);
  return std::move(w).take();
}

}  // namespace

Bytes canonical_rrset_bytes(const RRset& rrset) {
  // Sort records by canonical rdata bytes.
  std::vector<Bytes> rdatas;
  rdatas.reserve(rrset.size());
  for (const auto& rr : rrset) rdatas.push_back(rdata_wire(rr.rdata));
  std::sort(rdatas.begin(), rdatas.end());

  ByteWriter out;
  if (!rrset.empty()) {
    const auto& first = rrset.front();
    Name owner = lowercase_name(first.name);
    for (const auto& rd : rdatas) {
      owner.encode(out);
      out.u16(static_cast<std::uint16_t>(first.type));
      out.u16(static_cast<std::uint16_t>(first.klass));
      out.u32(first.ttl);
      out.u16(static_cast<std::uint16_t>(rd.size()));
      out.raw(std::span(rd));
    }
  }
  return std::move(out).take();
}

Result<ResourceRecord> sign_rrset(const RRset& rrset, const ZoneKey& key, std::uint32_t inception,
                                  std::uint32_t expiration) {
  if (rrset.empty()) return fail("sign: empty rrset");
  const auto& first = rrset.front();
  for (const auto& rr : rrset) {
    if (!(rr.name == first.name) || rr.type != first.type || rr.klass != first.klass ||
        rr.ttl != first.ttl)
      return fail("sign: rrset members disagree on name/type/class/ttl");
  }
  if (!first.name.is_subdomain_of(key.zone)) return fail("sign: rrset outside key's zone");

  RrsigData sig;
  sig.type_covered = first.type;
  sig.algorithm = kToyHmacAlgorithm;
  sig.labels = static_cast<std::uint8_t>(first.name.label_count());
  sig.original_ttl = first.ttl;
  sig.inception = inception;
  sig.expiration = expiration;
  sig.key_tag = key.key_tag();
  sig.signer = key.zone;

  // MAC covers the RRSIG rdata sans signature (RFC 4034 §3.1.8.1) plus
  // the canonical RRset.
  ByteWriter covered;
  covered.u16(static_cast<std::uint16_t>(sig.type_covered));
  covered.u8(sig.algorithm);
  covered.u8(sig.labels);
  covered.u32(sig.original_ttl);
  covered.u32(sig.expiration);
  covered.u32(sig.inception);
  covered.u16(sig.key_tag);
  sig.signer.encode(covered);
  Bytes canonical = canonical_rrset_bytes(rrset);
  covered.raw(std::span(canonical));

  auto mac = util::hmac_sha1(std::span(key.secret), std::span(covered.data()));
  sig.signature.assign(mac.begin(), mac.end());

  return ResourceRecord{first.name, RRType::RRSIG, first.klass, first.ttl, std::move(sig)};
}

Status verify_rrsig(const RRset& rrset, const RrsigData& sig, const ZoneKey& key,
                    std::uint32_t now) {
  if (rrset.empty()) return fail("verify: empty rrset");
  if (sig.algorithm != kToyHmacAlgorithm) return fail("verify: unknown algorithm");
  if (!(sig.signer == key.zone)) return fail("verify: signer does not match key zone");
  if (sig.key_tag != key.key_tag()) return fail("verify: key tag mismatch");
  if (now < sig.inception) return fail("verify: signature not yet valid");
  if (now > sig.expiration) return fail("verify: signature expired");

  // Recompute the MAC over the same bytes sign_rrset covered. The
  // RRset's TTL may have been decremented by caches; RFC 4034 says to
  // verify against the original TTL, so substitute it.
  RRset normalized = rrset;
  for (auto& rr : normalized) rr.ttl = sig.original_ttl;

  ByteWriter covered;
  covered.u16(static_cast<std::uint16_t>(sig.type_covered));
  covered.u8(sig.algorithm);
  covered.u8(static_cast<std::uint8_t>(normalized.front().name.label_count()));
  covered.u32(sig.original_ttl);
  covered.u32(sig.expiration);
  covered.u32(sig.inception);
  covered.u16(sig.key_tag);
  sig.signer.encode(covered);
  Bytes canonical = canonical_rrset_bytes(normalized);
  covered.raw(std::span(canonical));

  auto mac = util::hmac_sha1(std::span(key.secret), std::span(covered.data()));
  if (!std::equal(mac.begin(), mac.end(), sig.signature.begin(), sig.signature.end()))
    return fail("verify: MAC mismatch (record tampered or wrong key)");
  return util::ok_status();
}

Bytes nsec3_hash(const Name& name, std::span<const std::uint8_t> salt, std::uint16_t iterations) {
  ByteWriter w;
  lowercase_name(name).encode(w);
  Bytes input = std::move(w).take();
  input.insert(input.end(), salt.begin(), salt.end());
  auto digest = util::sha1(std::span(input));
  for (std::uint16_t i = 0; i < iterations; ++i) {
    Bytes round(digest.begin(), digest.end());
    round.insert(round.end(), salt.begin(), salt.end());
    digest = util::sha1(std::span(round));
  }
  return Bytes(digest.begin(), digest.end());
}

Result<Name> nsec3_owner(const Name& name, const Name& zone, std::span<const std::uint8_t> salt,
                         std::uint16_t iterations) {
  Bytes hash = nsec3_hash(name, salt, iterations);
  return zone.prepend(util::to_base32hex(std::span(hash)));
}

std::vector<ResourceRecord> build_nsec3_chain(
    const Name& zone, const std::vector<std::pair<Name, std::vector<RRType>>>& names,
    std::span<const std::uint8_t> salt, std::uint16_t iterations, std::uint32_t ttl) {
  struct Entry {
    Bytes hash;
    const Name* name;
    const std::vector<RRType>* types;
  };
  std::vector<Entry> entries;
  entries.reserve(names.size());
  for (const auto& [name, types] : names)
    entries.push_back(Entry{nsec3_hash(name, salt, iterations), &name, &types});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.hash < b.hash; });

  std::vector<ResourceRecord> out;
  out.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& entry = entries[i];
    const Entry& next = entries[(i + 1) % entries.size()];
    Nsec3Data data;
    data.iterations = iterations;
    data.salt.assign(salt.begin(), salt.end());
    data.next_hashed_owner = next.hash;
    data.types = *entry.types;
    auto owner = zone.prepend(util::to_base32hex(std::span(entry.hash)));
    if (!owner.ok()) continue;  // cannot happen: base32 of sha1 fits a label
    out.push_back(ResourceRecord{std::move(owner).value(), RRType::NSEC3, RRClass::IN, ttl,
                                 std::move(data)});
  }
  return out;
}

Result<bool> nsec3_covers(const ResourceRecord& chain_record, const Name& qname,
                          const Name& zone) {
  const auto* data = std::get_if<Nsec3Data>(&chain_record.rdata);
  if (data == nullptr) return fail("nsec3_covers: record is not NSEC3");
  if (chain_record.name.is_root()) return fail("nsec3_covers: bad owner");
  // Owner hash is the base32hex first label.
  const std::string& label = chain_record.name.labels().front();
  Bytes qhash = nsec3_hash(qname, std::span(data->salt), data->iterations);
  (void)zone;
  std::string qhash32 = util::to_base32hex(std::span(qhash));
  std::string next32 = util::to_base32hex(std::span(data->next_hashed_owner));
  std::string owner32 = util::to_lower(label);
  if (owner32 < next32)  // normal interval
    return owner32 < qhash32 && qhash32 < next32;
  // Wraparound interval (last NSEC3 in the chain).
  return qhash32 > owner32 || qhash32 < next32;
}

namespace {
const char* kTsigAlgorithmName = "hmac-sha1.sig-alg.reg.int";
}

void tsig_sign(Message& message, const TsigKey& key, std::uint64_t now_seconds) {
  // MAC covers the message as it stands (before the TSIG RR) plus the
  // key name, time and fudge — a simplification of RFC 2845 §3.4.
  Bytes wire = message.encode();
  ByteWriter covered;
  covered.raw(std::span(wire));
  lowercase_name(key.name).encode(covered);
  covered.u64(now_seconds);
  covered.u16(300);

  TsigData tsig;
  tsig.algorithm = name_of(kTsigAlgorithmName);
  tsig.time_signed = now_seconds;
  tsig.fudge = 300;
  auto mac = util::hmac_sha1(std::span(key.secret), std::span(covered.data()));
  tsig.mac.assign(mac.begin(), mac.end());
  tsig.original_id = message.header.id;

  message.additionals.push_back(
      ResourceRecord{key.name, RRType::TSIG, RRClass::ANY, 0, std::move(tsig)});
}

Status tsig_verify(Message& message, const TsigKey& key, std::uint64_t now_seconds) {
  if (message.additionals.empty() || message.additionals.back().type != RRType::TSIG)
    return fail("tsig: no TSIG record present");
  ResourceRecord tsig_rr = message.additionals.back();
  if (!(tsig_rr.name == key.name)) return fail("tsig: unknown key name");
  const auto* data = std::get_if<TsigData>(&tsig_rr.rdata);
  if (data == nullptr) return fail("tsig: malformed TSIG rdata");

  std::uint64_t delta = now_seconds > data->time_signed ? now_seconds - data->time_signed
                                                        : data->time_signed - now_seconds;
  if (delta > data->fudge) return fail("tsig: timestamp outside fudge window");

  message.additionals.pop_back();
  Bytes wire = message.encode();
  ByteWriter covered;
  covered.raw(std::span(wire));
  lowercase_name(key.name).encode(covered);
  covered.u64(data->time_signed);
  covered.u16(data->fudge);
  auto mac = util::hmac_sha1(std::span(key.secret), std::span(covered.data()));
  if (!std::equal(mac.begin(), mac.end(), data->mac.begin(), data->mac.end())) {
    message.additionals.push_back(std::move(tsig_rr));  // leave message intact on failure
    return fail("tsig: MAC mismatch");
  }
  return util::ok_status();
}

}  // namespace sns::dns
