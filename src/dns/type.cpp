#include "dns/type.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace sns::dns {

using util::fail;
using util::Result;

namespace {
struct TypeEntry {
  RRType type;
  std::string_view name;
};
constexpr TypeEntry kTypes[] = {
    {RRType::A, "A"},           {RRType::NS, "NS"},       {RRType::CNAME, "CNAME"},
    {RRType::SOA, "SOA"},       {RRType::PTR, "PTR"},     {RRType::MX, "MX"},
    {RRType::TXT, "TXT"},       {RRType::AAAA, "AAAA"},   {RRType::LOC, "LOC"},
    {RRType::SRV, "SRV"},       {RRType::OPT, "OPT"},     {RRType::SSHFP, "SSHFP"},
    {RRType::RRSIG, "RRSIG"},   {RRType::DNSKEY, "DNSKEY"}, {RRType::NSEC3, "NSEC3"},
    {RRType::TSIG, "TSIG"},     {RRType::ANY, "ANY"},     {RRType::BDADDR, "BDADDR"},
    {RRType::WIFI, "WIFI"},     {RRType::LORA, "LORA"},   {RRType::DTMF, "DTMF"},
    {RRType::AREA, "AREA"},
};
}  // namespace

std::string to_string(RRType type) {
  for (const auto& entry : kTypes)
    if (entry.type == type) return std::string(entry.name);
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(type));
}

std::string to_string(RRClass klass) {
  switch (klass) {
    case RRClass::IN: return "IN";
    case RRClass::NONE: return "NONE";
    case RRClass::ANY: return "ANY";
  }
  return "CLASS" + std::to_string(static_cast<std::uint16_t>(klass));
}

std::string to_string(Rcode rcode) {
  switch (rcode) {
    case Rcode::NoError: return "NOERROR";
    case Rcode::FormErr: return "FORMERR";
    case Rcode::ServFail: return "SERVFAIL";
    case Rcode::NXDomain: return "NXDOMAIN";
    case Rcode::NotImp: return "NOTIMP";
    case Rcode::Refused: return "REFUSED";
    case Rcode::YXDomain: return "YXDOMAIN";
    case Rcode::YXRRSet: return "YXRRSET";
    case Rcode::NXRRSet: return "NXRRSET";
    case Rcode::NotAuth: return "NOTAUTH";
    case Rcode::NotZone: return "NOTZONE";
  }
  return "RCODE" + std::to_string(static_cast<std::uint8_t>(rcode));
}

std::string to_string(Opcode opcode) {
  switch (opcode) {
    case Opcode::Query: return "QUERY";
    case Opcode::Notify: return "NOTIFY";
    case Opcode::Update: return "UPDATE";
  }
  return "OPCODE" + std::to_string(static_cast<std::uint8_t>(opcode));
}

Result<RRType> rrtype_from_string(std::string_view text) {
  for (const auto& entry : kTypes)
    if (util::iequals(entry.name, text)) return entry.type;
  if (text.size() > 4 && util::iequals(text.substr(0, 4), "TYPE")) {
    unsigned value = 0;
    auto rest = text.substr(4);
    auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), value);
    if (ec == std::errc{} && ptr == rest.data() + rest.size() && value <= 0xffff)
      return static_cast<RRType>(value);
  }
  return fail("unknown RR type '" + std::string(text) + "'");
}

}  // namespace sns::dns
