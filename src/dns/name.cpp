#include "dns/name.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

#include "util/strings.hpp"

namespace sns::dns {

using util::fail;
using util::Result;

namespace {

constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxWire = 255;

bool valid_label(std::string_view label) {
  if (label.empty() || label.size() > kMaxLabel) return false;
  // Permissive LDH-plus: printable, no dots, no whitespace. The SNS uses
  // hostname-style labels but we do not reject underscores (DNS-SD needs
  // `_services._dns-sd._udp` style labels).
  return std::all_of(label.begin(), label.end(), [](unsigned char c) {
    return std::isgraph(c) != 0 && c != '.';
  });
}

constexpr char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + ('a' - 'A')) : c;
}

}  // namespace

void Name::repack() {
  packed_.clear();
  offsets_.clear();
  std::size_t total = 0;
  for (const auto& label : labels_) total += 1 + label.size();
  packed_.reserve(total);
  offsets_.reserve(labels_.size());
  for (const auto& label : labels_) {
    offsets_.push_back(static_cast<std::uint8_t>(packed_.size()));
    packed_.push_back(static_cast<char>(static_cast<unsigned char>(label.size())));
    for (char c : label) packed_.push_back(ascii_lower(c));
  }
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : packed_) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  hash_ = static_cast<std::size_t>(h);
}

Result<Name> Name::parse(std::string_view text) {
  text = util::trim(text);
  if (text.empty()) return fail("name: empty string");
  if (text == ".") return Name{};
  if (text.back() == '.') text.remove_suffix(1);
  Name out;
  for (auto& label : util::split(text, '.')) {
    if (!valid_label(label)) return fail("name: invalid label '" + label + "'");
    out.labels_.push_back(std::move(label));
  }
  out.repack();
  if (out.wire_length() > kMaxWire) return fail("name: exceeds 255 octets");
  return out;
}

Result<Name> Name::from_labels(std::vector<std::string> labels) {
  Name out;
  for (auto& label : labels) {
    if (!valid_label(label)) return fail("name: invalid label '" + label + "'");
    out.labels_.push_back(std::move(label));
  }
  out.repack();
  if (out.wire_length() > kMaxWire) return fail("name: exceeds 255 octets");
  return out;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  return util::join(labels_, ".");
}

bool Name::is_subdomain_of(const Name& ancestor) const {
  std::size_t mine = labels_.size(), theirs = ancestor.labels_.size();
  if (theirs == 0) return true;
  if (theirs > mine) return false;
  std::string_view tail =
      theirs == mine ? std::string_view(packed_) : packed_suffix(mine - theirs);
  return tail == ancestor.packed_;
}

Name Name::parent() const {
  Name out;
  out.labels_.assign(labels_.begin() + 1, labels_.end());
  out.repack();
  return out;
}

Result<Name> Name::prepend(std::string_view label) const {
  if (!valid_label(label)) return fail("name: invalid label '" + std::string(label) + "'");
  Name out;
  out.labels_.reserve(labels_.size() + 1);
  out.labels_.emplace_back(label);
  out.labels_.insert(out.labels_.end(), labels_.begin(), labels_.end());
  out.repack();
  if (out.wire_length() > kMaxWire) return fail("name: exceeds 255 octets");
  return out;
}

Result<Name> Name::concat(const Name& suffix) const {
  Name out;
  out.labels_ = labels_;
  out.labels_.insert(out.labels_.end(), suffix.labels_.begin(), suffix.labels_.end());
  out.repack();
  if (out.wire_length() > kMaxWire) return fail("name: concatenation exceeds 255 octets");
  return out;
}

std::optional<Name> Name::strip_suffix(const Name& suffix) const {
  if (!is_subdomain_of(suffix)) return std::nullopt;
  Name out;
  out.labels_.assign(labels_.begin(),
                     labels_.end() - static_cast<std::ptrdiff_t>(suffix.labels_.size()));
  out.repack();
  return out;
}

void Name::encode(util::ByteWriter& out) const {
  for (const auto& label : labels_) {
    out.u8(static_cast<std::uint8_t>(label.size()));
    out.raw(label);
  }
  out.u8(0);
}

void Name::encode(util::ByteWriter& out, NameCompressor& compressor) const {
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (auto pointer = compressor.find(*this, i)) {
      out.u16(static_cast<std::uint16_t>(0xc000 | *pointer));
      return;
    }
    compressor.remember(*this, i, out.size());
    out.u8(static_cast<std::uint8_t>(labels_[i].size()));
    out.raw(labels_[i]);
  }
  out.u8(0);
}

Result<Name> Name::decode(util::ByteReader& reader) {
  Name out;
  std::size_t total = 0;
  int pointers_followed = 0;
  std::optional<std::size_t> resume_at;  // position after the first pointer

  while (true) {
    auto len = reader.u8();
    if (!len.ok()) return fail("name: " + len.error().message);
    std::uint8_t l = len.value();
    if (l == 0) break;
    if ((l & 0xc0) == 0xc0) {
      auto low = reader.u8();
      if (!low.ok()) return fail("name: truncated compression pointer");
      std::size_t target = static_cast<std::size_t>((l & 0x3f) << 8) | low.value();
      if (!resume_at.has_value()) resume_at = reader.position();
      // Pointers must go strictly backwards to rule out loops; also cap
      // the chain length defensively.
      if (target >= reader.position() - 2 && pointers_followed == 0)
        return fail("name: forward compression pointer");
      if (++pointers_followed > 32) return fail("name: compression pointer loop");
      if (auto s = reader.seek(target); !s.ok()) return fail("name: bad pointer target");
      continue;
    }
    if ((l & 0xc0) != 0) return fail("name: reserved label type");
    auto label = reader.string(l);
    if (!label.ok()) return fail("name: truncated label");
    total += 1 + label.value().size();
    if (total + 1 > kMaxWire) return fail("name: exceeds 255 octets");
    out.labels_.push_back(std::move(label.value()));
  }
  if (resume_at.has_value()) {
    if (auto s = reader.seek(*resume_at); !s.ok()) return fail("name: bad resume position");
  }
  out.repack();
  return out;
}

std::strong_ordering operator<=>(const Name& a, const Name& b) {
  if (a.hash_ == b.hash_ && a.packed_ == b.packed_) return std::strong_ordering::equal;
  // Canonical order: compare from the rightmost label. Labels are
  // already lowercased in the packed key, so each step is one memcmp.
  std::size_t na = a.offsets_.size(), nb = b.offsets_.size();
  std::size_t common = std::min(na, nb);
  for (std::size_t i = 1; i <= common; ++i) {
    std::size_t oa = a.offsets_[na - i], ob = b.offsets_[nb - i];
    std::size_t la = static_cast<std::uint8_t>(a.packed_[oa]);
    std::size_t lb = static_cast<std::uint8_t>(b.packed_[ob]);
    int cmp = std::memcmp(a.packed_.data() + oa + 1, b.packed_.data() + ob + 1,
                          std::min(la, lb));
    if (cmp != 0) return cmp < 0 ? std::strong_ordering::less : std::strong_ordering::greater;
    if (la != lb) return la <=> lb;
  }
  return na <=> nb;
}

std::optional<std::uint16_t> NameCompressor::find(const Name& name, std::size_t from_label) const {
  auto it = offsets_.find(name.packed_suffix(from_label));
  if (it == offsets_.end()) return std::nullopt;
  return it->second;
}

void NameCompressor::remember(const Name& name, std::size_t from_label, std::size_t offset) {
  if (offset > 0x3fff) return;  // beyond pointer reach
  offsets_.emplace(name.packed_suffix(from_label), static_cast<std::uint16_t>(offset));
}

Name name_of(std::string_view text) {
  auto parsed = Name::parse(text);
  if (!parsed.ok()) std::abort();
  return std::move(parsed).value();
}

}  // namespace sns::dns
