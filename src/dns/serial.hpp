// serial.hpp — RFC 1982 serial number arithmetic.
//
// SOA serials live in a 32-bit circular space: 0xffffffff is followed
// by 0, and "newer" is defined by which half of the circle the other
// serial falls in, not by integer order. Every serial comparison in
// the transfer path (IXFR serve/apply, edge refresh polling, the AXFR
// serial gate) must use these helpers — a plain `<` breaks the first
// time a long-lived zone wraps, which is exactly the kind of once-a-
// decade bug a test can force in a minute (see test_federation_ixfr).
#pragma once

#include <cstdint>

namespace sns::dns {

/// True when `a` precedes `b` on the RFC 1982 circle (addition space
/// 2^32, comparison window 2^31). Incomparable pairs (distance exactly
/// 2^31) are reported as not-less in both directions, per the RFC's
/// advice to treat them as an error-shaped "neither".
[[nodiscard]] constexpr bool serial_lt(std::uint32_t a, std::uint32_t b) noexcept {
  return a != b && ((a < b && b - a < 0x80000000u) || (a > b && a - b > 0x80000000u));
}

[[nodiscard]] constexpr bool serial_gt(std::uint32_t a, std::uint32_t b) noexcept {
  return serial_lt(b, a);
}

[[nodiscard]] constexpr bool serial_le(std::uint32_t a, std::uint32_t b) noexcept {
  return a == b || serial_lt(a, b);
}

[[nodiscard]] constexpr bool serial_ge(std::uint32_t a, std::uint32_t b) noexcept {
  return a == b || serial_gt(a, b);
}

}  // namespace sns::dns
