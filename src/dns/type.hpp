// type.hpp — RR types, classes, opcodes and response codes.
//
// Includes the paper's extended types from Table 1 (BDADDR, WIFI, LORA,
// DTMF), assigned in the private-use range 65280–65534 so they cannot
// collide with IANA allocations; the TXT fallback (§2.2) carries them
// through middleboxes that drop unknown types.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace sns::dns {

enum class RRType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  LOC = 29,        // RFC 1876
  SRV = 33,
  OPT = 41,        // EDNS0
  SSHFP = 44,      // RFC 4255
  RRSIG = 46,
  DNSKEY = 48,
  NSEC3 = 50,
  TSIG = 250,
  ANY = 255,
  // --- SNS extended types (Table 1), private-use range ---
  BDADDR = 65280,  // Bluetooth Device Address
  WIFI = 65281,    // (ssid, ipv4)
  LORA = 65282,    // (gateway, devaddr)
  DTMF = 65283,    // audio tone prefix
  AREA = 65284,    // reverse geodetic area query (bounding box)
};

enum class RRClass : std::uint16_t {
  IN = 1,
  NONE = 254,  // RFC 2136 update semantics
  ANY = 255,
};

enum class Opcode : std::uint8_t {
  Query = 0,
  Notify = 4,
  Update = 5,  // RFC 2136
};

enum class Rcode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NXDomain = 3,
  NotImp = 4,
  Refused = 5,
  YXDomain = 6,  // RFC 2136
  YXRRSet = 7,
  NXRRSet = 8,
  NotAuth = 9,
  NotZone = 10,
};

std::string to_string(RRType type);
std::string to_string(RRClass klass);
std::string to_string(Rcode rcode);
std::string to_string(Opcode opcode);

/// Parse a type mnemonic ("AAAA", "BDADDR", or RFC 3597 "TYPE65280").
util::Result<RRType> rrtype_from_string(std::string_view text);

}  // namespace sns::dns
