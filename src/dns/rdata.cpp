#include "dns/rdata.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "util/strings.hpp"

namespace sns::dns {

using util::Bytes;
using util::ByteReader;
using util::ByteWriter;
using util::fail;
using util::Result;

RRType rdata_type(const Rdata& rdata) {
  struct Visitor {
    RRType operator()(const AData&) const { return RRType::A; }
    RRType operator()(const AaaaData&) const { return RRType::AAAA; }
    RRType operator()(const NsData&) const { return RRType::NS; }
    RRType operator()(const CnameData&) const { return RRType::CNAME; }
    RRType operator()(const SoaData&) const { return RRType::SOA; }
    RRType operator()(const PtrData&) const { return RRType::PTR; }
    RRType operator()(const MxData&) const { return RRType::MX; }
    RRType operator()(const TxtData&) const { return RRType::TXT; }
    RRType operator()(const SrvData&) const { return RRType::SRV; }
    RRType operator()(const LocData&) const { return RRType::LOC; }
    RRType operator()(const SshfpData&) const { return RRType::SSHFP; }
    RRType operator()(const OptData&) const { return RRType::OPT; }
    RRType operator()(const RrsigData&) const { return RRType::RRSIG; }
    RRType operator()(const DnskeyData&) const { return RRType::DNSKEY; }
    RRType operator()(const Nsec3Data&) const { return RRType::NSEC3; }
    RRType operator()(const TsigData&) const { return RRType::TSIG; }
    RRType operator()(const BdaddrData&) const { return RRType::BDADDR; }
    RRType operator()(const WifiData&) const { return RRType::WIFI; }
    RRType operator()(const LoraData&) const { return RRType::LORA; }
    RRType operator()(const DtmfData&) const { return RRType::DTMF; }
    RRType operator()(const AreaData&) const { return RRType::AREA; }
    RRType operator()(const RawData&) const { return RRType::ANY; }
  };
  return std::visit(Visitor{}, rdata);
}

namespace {

void encode_character_string(ByteWriter& out, std::string_view s) {
  // Truncation is a caller bug; enforce the wire limit defensively.
  std::size_t n = std::min<std::size_t>(s.size(), 255);
  out.u8(static_cast<std::uint8_t>(n));
  out.raw(s.substr(0, n));
}

Result<std::string> decode_character_string(ByteReader& reader) {
  auto len = reader.u8();
  if (!len.ok()) return len.error();
  return reader.string(len.value());
}

// AREA fixed point: 1e-7 degrees, two's complement. llround keeps the
// encode/decode pair an exact round trip for every value a decoded
// AreaData can hold (the quotient of an int32 by 1e7 is exact in a
// double).
std::uint32_t area_fixed(double degrees) {
  return static_cast<std::uint32_t>(static_cast<std::int32_t>(std::llround(degrees * 1e7)));
}

double area_degrees(std::uint32_t fixed) {
  return static_cast<double>(static_cast<std::int32_t>(fixed)) / 1e7;
}

std::string area_coord_string(double degrees) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.7f", degrees);
  return buf;
}

}  // namespace

void encode_rdata(const Rdata& rdata, ByteWriter& out, NameCompressor* compressor) {
  auto put_name = [&](const Name& name, bool compressible) {
    if (compressible && compressor != nullptr)
      name.encode(out, *compressor);
    else
      name.encode(out);
  };

  struct Visitor {
    ByteWriter& out;
    decltype(put_name)& put_name_fn;

    void operator()(const AData& d) const { out.raw(std::span(d.address.octets)); }
    void operator()(const AaaaData& d) const { out.raw(std::span(d.address.octets)); }
    void operator()(const NsData& d) const { put_name_fn(d.nameserver, true); }
    void operator()(const CnameData& d) const { put_name_fn(d.target, true); }
    void operator()(const SoaData& d) const {
      put_name_fn(d.mname, true);
      put_name_fn(d.rname, true);
      out.u32(d.serial);
      out.u32(d.refresh);
      out.u32(d.retry);
      out.u32(d.expire);
      out.u32(d.minimum);
    }
    void operator()(const PtrData& d) const { put_name_fn(d.target, true); }
    void operator()(const MxData& d) const {
      out.u16(d.preference);
      put_name_fn(d.exchange, true);
    }
    void operator()(const TxtData& d) const {
      if (d.strings.empty()) {
        encode_character_string(out, "");
        return;
      }
      for (const auto& s : d.strings) encode_character_string(out, s);
    }
    void operator()(const SrvData& d) const {
      out.u16(d.priority);
      out.u16(d.weight);
      out.u16(d.port);
      put_name_fn(d.target, false);  // RFC 2782: no compression
    }
    void operator()(const LocData& d) const { d.encode(out); }
    void operator()(const SshfpData& d) const {
      out.u8(d.algorithm);
      out.u8(d.fp_type);
      out.raw(std::span(d.fingerprint));
    }
    void operator()(const OptData& d) const { out.raw(std::span(d.options)); }
    void operator()(const RrsigData& d) const {
      out.u16(static_cast<std::uint16_t>(d.type_covered));
      out.u8(d.algorithm);
      out.u8(d.labels);
      out.u32(d.original_ttl);
      out.u32(d.expiration);
      out.u32(d.inception);
      out.u16(d.key_tag);
      put_name_fn(d.signer, false);  // RFC 4034: no compression
      out.raw(std::span(d.signature));
    }
    void operator()(const DnskeyData& d) const {
      out.u16(d.flags);
      out.u8(d.protocol);
      out.u8(d.algorithm);
      out.raw(std::span(d.public_key));
    }
    void operator()(const Nsec3Data& d) const {
      out.u8(d.hash_algorithm);
      out.u8(d.flags);
      out.u16(d.iterations);
      out.u8(static_cast<std::uint8_t>(d.salt.size()));
      out.raw(std::span(d.salt));
      out.u8(static_cast<std::uint8_t>(d.next_hashed_owner.size()));
      out.raw(std::span(d.next_hashed_owner));
      // Type bitmap (RFC 4034 §4.1.2): window blocks.
      std::map<std::uint8_t, std::array<std::uint8_t, 32>> windows;
      for (RRType t : d.types) {
        auto v = static_cast<std::uint16_t>(t);
        auto window = static_cast<std::uint8_t>(v >> 8);
        auto low = static_cast<std::uint8_t>(v & 0xff);
        windows[window][low / 8] |= static_cast<std::uint8_t>(0x80 >> (low % 8));
      }
      for (const auto& [window, bitmap] : windows) {
        std::uint8_t len = 32;
        while (len > 0 && bitmap[len - 1] == 0) --len;
        if (len == 0) continue;
        out.u8(window);
        out.u8(len);
        out.raw(std::span(bitmap.data(), len));
      }
    }
    void operator()(const TsigData& d) const {
      put_name_fn(d.algorithm, false);
      out.u16(static_cast<std::uint16_t>(d.time_signed >> 32));
      out.u32(static_cast<std::uint32_t>(d.time_signed & 0xffffffff));
      out.u16(d.fudge);
      out.u16(static_cast<std::uint16_t>(d.mac.size()));
      out.raw(std::span(d.mac));
      out.u16(d.original_id);
      out.u16(d.error);
      out.u16(static_cast<std::uint16_t>(d.other.size()));
      out.raw(std::span(d.other));
    }
    void operator()(const BdaddrData& d) const { out.raw(std::span(d.address.octets)); }
    void operator()(const WifiData& d) const {
      encode_character_string(out, d.ssid);
      out.raw(std::span(d.address.octets));
    }
    void operator()(const LoraData& d) const {
      put_name_fn(d.gateway, false);  // new types must not compress (RFC 3597)
      out.u32(d.devaddr.value);
    }
    void operator()(const DtmfData& d) const { encode_character_string(out, d.tone.digits); }
    void operator()(const AreaData& d) const {
      out.u32(area_fixed(d.min_lat));
      out.u32(area_fixed(d.min_lon));
      out.u32(area_fixed(d.max_lat));
      out.u32(area_fixed(d.max_lon));
    }
    void operator()(const RawData& d) const { out.raw(std::span(d.bytes)); }
  };
  std::visit(Visitor{out, put_name}, rdata);
}

std::size_t rdata_wire_estimate(const Rdata& rdata) {
  struct Visitor {
    std::size_t operator()(const AData&) const { return 4; }
    std::size_t operator()(const AaaaData&) const { return 16; }
    std::size_t operator()(const NsData& d) const { return d.nameserver.wire_length(); }
    std::size_t operator()(const CnameData& d) const { return d.target.wire_length(); }
    std::size_t operator()(const SoaData& d) const {
      return d.mname.wire_length() + d.rname.wire_length() + 20;
    }
    std::size_t operator()(const PtrData& d) const { return d.target.wire_length(); }
    std::size_t operator()(const MxData& d) const { return 2 + d.exchange.wire_length(); }
    std::size_t operator()(const TxtData& d) const {
      std::size_t total = 1;  // empty TXT still encodes one empty string
      for (const auto& s : d.strings) total += 1 + s.size();
      return total;
    }
    std::size_t operator()(const SrvData& d) const { return 6 + d.target.wire_length(); }
    std::size_t operator()(const LocData&) const { return 16; }
    std::size_t operator()(const SshfpData& d) const { return 2 + d.fingerprint.size(); }
    std::size_t operator()(const OptData& d) const { return d.options.size(); }
    std::size_t operator()(const RrsigData& d) const {
      return 18 + d.signer.wire_length() + d.signature.size();
    }
    std::size_t operator()(const DnskeyData& d) const { return 4 + d.public_key.size(); }
    std::size_t operator()(const Nsec3Data& d) const {
      // Each distinct window block is at most 34 octets.
      return 6 + d.salt.size() + d.next_hashed_owner.size() +
             34 * std::min<std::size_t>(d.types.size(), 256);
    }
    std::size_t operator()(const TsigData& d) const {
      return d.algorithm.wire_length() + 16 + d.mac.size() + d.other.size();
    }
    std::size_t operator()(const BdaddrData&) const { return 6; }
    std::size_t operator()(const WifiData& d) const { return 1 + d.ssid.size() + 4; }
    std::size_t operator()(const LoraData& d) const { return d.gateway.wire_length() + 4; }
    std::size_t operator()(const DtmfData& d) const { return 1 + d.tone.digits.size(); }
    std::size_t operator()(const AreaData&) const { return 16; }
    std::size_t operator()(const RawData& d) const { return d.bytes.size(); }
  };
  return std::visit(Visitor{}, rdata);
}

Result<Rdata> decode_rdata(RRType type, ByteReader& reader, std::size_t rdlength) {
  std::size_t end = reader.position() + rdlength;
  if (end > reader.buffer().size()) return fail("rdata: rdlength exceeds message");

  // Empty RDATA is legal on the wire for RFC 2136 delete operations
  // (class ANY/NONE with RDLENGTH 0) regardless of type.
  if (rdlength == 0 && type != RRType::TXT) return Rdata{RawData{}};

  auto finish = [&](Rdata value) -> Result<Rdata> {
    if (reader.position() != end) return fail("rdata: length mismatch for " + to_string(type));
    return value;
  };

  switch (type) {
    case RRType::A: {
      auto bytes = reader.bytes(4);
      if (!bytes.ok()) return bytes.error();
      net::Ipv4Addr a;
      std::copy(bytes.value().begin(), bytes.value().end(), a.octets.begin());
      return finish(AData{a});
    }
    case RRType::AAAA: {
      auto bytes = reader.bytes(16);
      if (!bytes.ok()) return bytes.error();
      net::Ipv6Addr a;
      std::copy(bytes.value().begin(), bytes.value().end(), a.octets.begin());
      return finish(AaaaData{a});
    }
    case RRType::NS: {
      auto name = Name::decode(reader);
      if (!name.ok()) return name.error();
      return finish(NsData{std::move(name).value()});
    }
    case RRType::CNAME: {
      auto name = Name::decode(reader);
      if (!name.ok()) return name.error();
      return finish(CnameData{std::move(name).value()});
    }
    case RRType::SOA: {
      auto mname = Name::decode(reader);
      if (!mname.ok()) return mname.error();
      auto rname = Name::decode(reader);
      if (!rname.ok()) return rname.error();
      SoaData soa{std::move(mname).value(), std::move(rname).value(), 0, 0, 0, 0, 0};
      auto serial = reader.u32(), refresh = reader.u32(), retry = reader.u32(),
           expire = reader.u32(), minimum = reader.u32();
      if (!serial.ok() || !refresh.ok() || !retry.ok() || !expire.ok() || !minimum.ok())
        return fail("rdata: truncated SOA");
      soa.serial = serial.value();
      soa.refresh = refresh.value();
      soa.retry = retry.value();
      soa.expire = expire.value();
      soa.minimum = minimum.value();
      return finish(std::move(soa));
    }
    case RRType::PTR: {
      auto name = Name::decode(reader);
      if (!name.ok()) return name.error();
      return finish(PtrData{std::move(name).value()});
    }
    case RRType::MX: {
      auto pref = reader.u16();
      if (!pref.ok()) return pref.error();
      auto name = Name::decode(reader);
      if (!name.ok()) return name.error();
      return finish(MxData{pref.value(), std::move(name).value()});
    }
    case RRType::TXT: {
      TxtData txt;
      while (reader.position() < end) {
        auto s = decode_character_string(reader);
        if (!s.ok()) return s.error();
        txt.strings.push_back(std::move(s).value());
      }
      return finish(std::move(txt));
    }
    case RRType::SRV: {
      auto priority = reader.u16(), weight = reader.u16(), port = reader.u16();
      if (!priority.ok() || !weight.ok() || !port.ok()) return fail("rdata: truncated SRV");
      auto name = Name::decode(reader);
      if (!name.ok()) return name.error();
      return finish(SrvData{priority.value(), weight.value(), port.value(),
                            std::move(name).value()});
    }
    case RRType::LOC: {
      auto loc = LocData::decode(reader);
      if (!loc.ok()) return loc.error();
      return finish(std::move(loc).value());
    }
    case RRType::SSHFP: {
      auto algorithm = reader.u8(), fp_type = reader.u8();
      if (!algorithm.ok() || !fp_type.ok()) return fail("rdata: truncated SSHFP");
      auto fp = reader.bytes(end - reader.position());
      if (!fp.ok()) return fp.error();
      return finish(SshfpData{algorithm.value(), fp_type.value(), std::move(fp).value()});
    }
    case RRType::OPT: {
      auto options = reader.bytes(rdlength);
      if (!options.ok()) return options.error();
      return finish(OptData{0, std::move(options).value()});  // udp size lives in the RR class
    }
    case RRType::RRSIG: {
      RrsigData sig;
      auto covered = reader.u16();
      auto algorithm = reader.u8();
      auto labels = reader.u8();
      auto original_ttl = reader.u32();
      auto expiration = reader.u32();
      auto inception = reader.u32();
      auto key_tag = reader.u16();
      if (!covered.ok() || !algorithm.ok() || !labels.ok() || !original_ttl.ok() ||
          !expiration.ok() || !inception.ok() || !key_tag.ok())
        return fail("rdata: truncated RRSIG");
      sig.type_covered = static_cast<RRType>(covered.value());
      sig.algorithm = algorithm.value();
      sig.labels = labels.value();
      sig.original_ttl = original_ttl.value();
      sig.expiration = expiration.value();
      sig.inception = inception.value();
      sig.key_tag = key_tag.value();
      auto signer = Name::decode(reader);
      if (!signer.ok()) return signer.error();
      sig.signer = std::move(signer).value();
      if (reader.position() > end) return fail("rdata: RRSIG overrun");
      auto signature = reader.bytes(end - reader.position());
      if (!signature.ok()) return signature.error();
      sig.signature = std::move(signature).value();
      return finish(std::move(sig));
    }
    case RRType::DNSKEY: {
      auto flags = reader.u16();
      auto protocol = reader.u8();
      auto algorithm = reader.u8();
      if (!flags.ok() || !protocol.ok() || !algorithm.ok()) return fail("rdata: truncated DNSKEY");
      auto key = reader.bytes(end - reader.position());
      if (!key.ok()) return key.error();
      return finish(DnskeyData{flags.value(), protocol.value(), algorithm.value(),
                               std::move(key).value()});
    }
    case RRType::NSEC3: {
      Nsec3Data n;
      auto hash_algorithm = reader.u8();
      auto flags = reader.u8();
      auto iterations = reader.u16();
      if (!hash_algorithm.ok() || !flags.ok() || !iterations.ok())
        return fail("rdata: truncated NSEC3");
      n.hash_algorithm = hash_algorithm.value();
      n.flags = flags.value();
      n.iterations = iterations.value();
      auto salt_len = reader.u8();
      if (!salt_len.ok()) return salt_len.error();
      auto salt = reader.bytes(salt_len.value());
      if (!salt.ok()) return salt.error();
      n.salt = std::move(salt).value();
      auto hash_len = reader.u8();
      if (!hash_len.ok()) return hash_len.error();
      auto next = reader.bytes(hash_len.value());
      if (!next.ok()) return next.error();
      n.next_hashed_owner = std::move(next).value();
      while (reader.position() < end) {
        auto window = reader.u8();
        auto len = reader.u8();
        if (!window.ok() || !len.ok()) return fail("rdata: truncated NSEC3 bitmap");
        if (len.value() == 0 || len.value() > 32) return fail("rdata: bad NSEC3 bitmap length");
        auto bitmap = reader.bytes(len.value());
        if (!bitmap.ok()) return bitmap.error();
        for (std::size_t i = 0; i < bitmap.value().size(); ++i)
          for (int bit = 0; bit < 8; ++bit)
            if ((bitmap.value()[i] & (0x80 >> bit)) != 0)
              n.types.push_back(static_cast<RRType>(
                  (static_cast<std::size_t>(window.value()) << 8) |
                  (i * 8 + static_cast<std::size_t>(bit))));
      }
      return finish(std::move(n));
    }
    case RRType::TSIG: {
      TsigData t;
      auto algorithm = Name::decode(reader);
      if (!algorithm.ok()) return algorithm.error();
      t.algorithm = std::move(algorithm).value();
      auto time_high = reader.u16();
      auto time_low = reader.u32();
      auto fudge = reader.u16();
      if (!time_high.ok() || !time_low.ok() || !fudge.ok()) return fail("rdata: truncated TSIG");
      t.time_signed = (static_cast<std::uint64_t>(time_high.value()) << 32) | time_low.value();
      t.fudge = fudge.value();
      auto mac_size = reader.u16();
      if (!mac_size.ok()) return mac_size.error();
      auto mac = reader.bytes(mac_size.value());
      if (!mac.ok()) return mac.error();
      t.mac = std::move(mac).value();
      auto original_id = reader.u16();
      auto error = reader.u16();
      auto other_len = reader.u16();
      if (!original_id.ok() || !error.ok() || !other_len.ok())
        return fail("rdata: truncated TSIG trailer");
      t.original_id = original_id.value();
      t.error = error.value();
      auto other = reader.bytes(other_len.value());
      if (!other.ok()) return other.error();
      t.other = std::move(other).value();
      return finish(std::move(t));
    }
    case RRType::BDADDR: {
      auto bytes = reader.bytes(6);
      if (!bytes.ok()) return bytes.error();
      net::Bdaddr a;
      std::copy(bytes.value().begin(), bytes.value().end(), a.octets.begin());
      return finish(BdaddrData{a});
    }
    case RRType::WIFI: {
      auto ssid = decode_character_string(reader);
      if (!ssid.ok()) return ssid.error();
      auto bytes = reader.bytes(4);
      if (!bytes.ok()) return bytes.error();
      net::Ipv4Addr a;
      std::copy(bytes.value().begin(), bytes.value().end(), a.octets.begin());
      return finish(WifiData{std::move(ssid).value(), a});
    }
    case RRType::LORA: {
      auto gateway = Name::decode(reader);
      if (!gateway.ok()) return gateway.error();
      auto devaddr = reader.u32();
      if (!devaddr.ok()) return devaddr.error();
      return finish(LoraData{std::move(gateway).value(), net::LoraDevAddr{devaddr.value()}});
    }
    case RRType::DTMF: {
      auto tone = decode_character_string(reader);
      if (!tone.ok()) return tone.error();
      auto parsed = net::DtmfTone::parse(tone.value());
      if (!parsed.ok()) return parsed.error();
      return finish(DtmfData{std::move(parsed).value()});
    }
    case RRType::AREA: {
      auto min_lat = reader.u32(), min_lon = reader.u32(), max_lat = reader.u32(),
           max_lon = reader.u32();
      if (!min_lat.ok() || !min_lon.ok() || !max_lat.ok() || !max_lon.ok())
        return fail("rdata: truncated AREA");
      return finish(AreaData{area_degrees(min_lat.value()), area_degrees(min_lon.value()),
                             area_degrees(max_lat.value()), area_degrees(max_lon.value())});
    }
    default: {
      auto bytes = reader.bytes(rdlength);
      if (!bytes.ok()) return bytes.error();
      return finish(RawData{std::move(bytes).value()});
    }
  }
}

std::string rdata_to_string(const Rdata& rdata) {
  struct Visitor {
    std::string operator()(const AData& d) const { return d.address.to_string(); }
    std::string operator()(const AaaaData& d) const { return d.address.to_string(); }
    std::string operator()(const NsData& d) const { return d.nameserver.to_string(); }
    std::string operator()(const CnameData& d) const { return d.target.to_string(); }
    std::string operator()(const SoaData& d) const {
      return d.mname.to_string() + " " + d.rname.to_string() + " " + std::to_string(d.serial) +
             " " + std::to_string(d.refresh) + " " + std::to_string(d.retry) + " " +
             std::to_string(d.expire) + " " + std::to_string(d.minimum);
    }
    std::string operator()(const PtrData& d) const { return d.target.to_string(); }
    std::string operator()(const MxData& d) const {
      return std::to_string(d.preference) + " " + d.exchange.to_string();
    }
    std::string operator()(const TxtData& d) const {
      std::string out;
      for (std::size_t i = 0; i < d.strings.size(); ++i) {
        if (i != 0) out += ' ';
        out += '"' + d.strings[i] + '"';
      }
      return out;
    }
    std::string operator()(const SrvData& d) const {
      return std::to_string(d.priority) + " " + std::to_string(d.weight) + " " +
             std::to_string(d.port) + " " + d.target.to_string();
    }
    std::string operator()(const LocData& d) const { return d.to_string(); }
    std::string operator()(const SshfpData& d) const {
      return std::to_string(d.algorithm) + " " + std::to_string(d.fp_type) + " " +
             util::to_hex(d.fingerprint);
    }
    std::string operator()(const OptData& d) const {
      return "; EDNS0 " + std::to_string(d.options.size()) + " option bytes";
    }
    std::string operator()(const RrsigData& d) const {
      return to_string(d.type_covered) + " " + std::to_string(d.algorithm) + " " +
             std::to_string(d.labels) + " " + std::to_string(d.original_ttl) + " " +
             std::to_string(d.expiration) + " " + std::to_string(d.inception) + " " +
             std::to_string(d.key_tag) + " " + d.signer.to_string() + " " +
             util::to_hex(d.signature);
    }
    std::string operator()(const DnskeyData& d) const {
      return std::to_string(d.flags) + " " + std::to_string(d.protocol) + " " +
             std::to_string(d.algorithm) + " " + util::to_hex(d.public_key);
    }
    std::string operator()(const Nsec3Data& d) const {
      std::string out = std::to_string(d.hash_algorithm) + " " + std::to_string(d.flags) + " " +
                        std::to_string(d.iterations) + " " +
                        (d.salt.empty() ? "-" : util::to_hex(d.salt)) + " " +
                        util::to_base32hex(d.next_hashed_owner);
      for (RRType t : d.types) {
        out += ' ';
        out += to_string(t);
      }
      return out;
    }
    std::string operator()(const TsigData& d) const {
      return d.algorithm.to_string() + " " + std::to_string(d.time_signed) + " " +
             std::to_string(d.fudge) + " " + util::to_hex(d.mac);
    }
    std::string operator()(const BdaddrData& d) const { return d.address.to_string(); }
    std::string operator()(const WifiData& d) const {
      return "\"" + d.ssid + "\" " + d.address.to_string();
    }
    std::string operator()(const LoraData& d) const {
      return d.gateway.to_string() + " " + d.devaddr.to_string();
    }
    std::string operator()(const DtmfData& d) const { return d.tone.to_string(); }
    std::string operator()(const AreaData& d) const {
      return area_coord_string(d.min_lat) + " " + area_coord_string(d.min_lon) + " " +
             area_coord_string(d.max_lat) + " " + area_coord_string(d.max_lon);
    }
    std::string operator()(const RawData& d) const {
      return "\\# " + std::to_string(d.bytes.size()) + " " + util::to_hex(d.bytes);
    }
  };
  return std::visit(Visitor{}, rdata);
}

namespace {

Result<std::uint32_t> parse_u32(const std::string& token) {
  std::uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    return fail("expected integer, got '" + token + "'");
  return value;
}

Result<std::uint16_t> parse_u16(const std::string& token) {
  auto v = parse_u32(token);
  if (!v.ok()) return v.error();
  if (v.value() > 0xffff) return fail("integer out of u16 range: " + token);
  return static_cast<std::uint16_t>(v.value());
}

Result<std::uint8_t> parse_u8(const std::string& token) {
  auto v = parse_u32(token);
  if (!v.ok()) return v.error();
  if (v.value() > 0xff) return fail("integer out of u8 range: " + token);
  return static_cast<std::uint8_t>(v.value());
}

std::string unquote(const std::string& token) {
  if (token.size() >= 2 && token.front() == '"' && token.back() == '"')
    return token.substr(1, token.size() - 2);
  return token;
}

}  // namespace

Result<Rdata> rdata_from_tokens(RRType type, std::span<const std::string> tokens) {
  auto need = [&](std::size_t n) -> util::Status {
    if (tokens.size() < n)
      return fail(to_string(type) + ": expected >= " + std::to_string(n) + " fields");
    return util::ok_status();
  };

  switch (type) {
    case RRType::A: {
      if (auto s = need(1); !s.ok()) return s.error();
      auto a = net::Ipv4Addr::parse(tokens[0]);
      if (!a.ok()) return a.error();
      return Rdata{AData{a.value()}};
    }
    case RRType::AAAA: {
      if (auto s = need(1); !s.ok()) return s.error();
      auto a = net::Ipv6Addr::parse(tokens[0]);
      if (!a.ok()) return a.error();
      return Rdata{AaaaData{a.value()}};
    }
    case RRType::NS: {
      if (auto s = need(1); !s.ok()) return s.error();
      auto n = Name::parse(tokens[0]);
      if (!n.ok()) return n.error();
      return Rdata{NsData{std::move(n).value()}};
    }
    case RRType::CNAME: {
      if (auto s = need(1); !s.ok()) return s.error();
      auto n = Name::parse(tokens[0]);
      if (!n.ok()) return n.error();
      return Rdata{CnameData{std::move(n).value()}};
    }
    case RRType::SOA: {
      if (auto s = need(7); !s.ok()) return s.error();
      auto mname = Name::parse(tokens[0]);
      auto rname = Name::parse(tokens[1]);
      if (!mname.ok()) return mname.error();
      if (!rname.ok()) return rname.error();
      SoaData soa{std::move(mname).value(), std::move(rname).value(), 0, 0, 0, 0, 0};
      auto serial = parse_u32(tokens[2]), refresh = parse_u32(tokens[3]),
           retry = parse_u32(tokens[4]), expire = parse_u32(tokens[5]),
           minimum = parse_u32(tokens[6]);
      if (!serial.ok() || !refresh.ok() || !retry.ok() || !expire.ok() || !minimum.ok())
        return fail("SOA: bad integer field");
      soa.serial = serial.value();
      soa.refresh = refresh.value();
      soa.retry = retry.value();
      soa.expire = expire.value();
      soa.minimum = minimum.value();
      return Rdata{std::move(soa)};
    }
    case RRType::PTR: {
      if (auto s = need(1); !s.ok()) return s.error();
      auto n = Name::parse(tokens[0]);
      if (!n.ok()) return n.error();
      return Rdata{PtrData{std::move(n).value()}};
    }
    case RRType::MX: {
      if (auto s = need(2); !s.ok()) return s.error();
      auto pref = parse_u16(tokens[0]);
      if (!pref.ok()) return pref.error();
      auto n = Name::parse(tokens[1]);
      if (!n.ok()) return n.error();
      return Rdata{MxData{pref.value(), std::move(n).value()}};
    }
    case RRType::TXT: {
      if (auto s = need(1); !s.ok()) return s.error();
      TxtData txt;
      for (const auto& t : tokens) txt.strings.push_back(unquote(t));
      return Rdata{std::move(txt)};
    }
    case RRType::SRV: {
      if (auto s = need(4); !s.ok()) return s.error();
      auto priority = parse_u16(tokens[0]), weight = parse_u16(tokens[1]),
           port = parse_u16(tokens[2]);
      if (!priority.ok() || !weight.ok() || !port.ok()) return fail("SRV: bad integer field");
      auto n = Name::parse(tokens[3]);
      if (!n.ok()) return n.error();
      return Rdata{SrvData{priority.value(), weight.value(), port.value(), std::move(n).value()}};
    }
    case RRType::LOC: {
      auto loc = LocData::parse(tokens);
      if (!loc.ok()) return loc.error();
      return Rdata{std::move(loc).value()};
    }
    case RRType::SSHFP: {
      if (auto s = need(3); !s.ok()) return s.error();
      auto algorithm = parse_u8(tokens[0]);
      auto fp_type = parse_u8(tokens[1]);
      if (!algorithm.ok() || !fp_type.ok()) return fail("SSHFP: bad integer field");
      auto fp = util::from_hex(tokens[2]);
      if (!fp.ok()) return fp.error();
      return Rdata{SshfpData{algorithm.value(), fp_type.value(), std::move(fp).value()}};
    }
    case RRType::BDADDR: {
      if (auto s = need(1); !s.ok()) return s.error();
      auto a = net::Bdaddr::parse(tokens[0]);
      if (!a.ok()) return a.error();
      return Rdata{BdaddrData{a.value()}};
    }
    case RRType::WIFI: {
      if (auto s = need(2); !s.ok()) return s.error();
      auto a = net::Ipv4Addr::parse(tokens[1]);
      if (!a.ok()) return a.error();
      return Rdata{WifiData{unquote(tokens[0]), a.value()}};
    }
    case RRType::LORA: {
      if (auto s = need(2); !s.ok()) return s.error();
      auto gw = Name::parse(tokens[0]);
      if (!gw.ok()) return gw.error();
      auto dev = net::LoraDevAddr::parse(tokens[1]);
      if (!dev.ok()) return dev.error();
      return Rdata{LoraData{std::move(gw).value(), dev.value()}};
    }
    case RRType::DTMF: {
      if (auto s = need(1); !s.ok()) return s.error();
      auto tone = net::DtmfTone::parse(tokens[0]);
      if (!tone.ok()) return tone.error();
      return Rdata{DtmfData{std::move(tone).value()}};
    }
    case RRType::AREA: {
      if (auto s = need(4); !s.ok()) return s.error();
      double coords[4];
      for (int i = 0; i < 4; ++i) {
        char* endp = nullptr;
        coords[i] = std::strtod(tokens[static_cast<std::size_t>(i)].c_str(), &endp);
        if (endp == tokens[static_cast<std::size_t>(i)].c_str() || *endp != '\0')
          return fail("AREA: bad coordinate '" + tokens[static_cast<std::size_t>(i)] + "'");
      }
      return Rdata{AreaData{coords[0], coords[1], coords[2], coords[3]}};
    }
    default:
      return fail("rdata_from_tokens: unsupported type " + to_string(type));
  }
}

bool has_txt_fallback(RRType type) {
  return type == RRType::BDADDR || type == RRType::WIFI || type == RRType::LORA ||
         type == RRType::DTMF;
}

Result<TxtData> to_txt_fallback(const Rdata& rdata) {
  if (const auto* bd = std::get_if<BdaddrData>(&rdata))
    return TxtData{{"sns:bluetooth=" + bd->address.to_string()}};
  if (const auto* wifi = std::get_if<WifiData>(&rdata))
    return TxtData{{"sns:wifi=" + wifi->ssid + "," + wifi->address.to_string()}};
  if (const auto* lora = std::get_if<LoraData>(&rdata))
    return TxtData{{"sns:lorawan=" + lora->gateway.to_string() + "," +
                    lora->devaddr.to_string()}};
  if (const auto* dtmf = std::get_if<DtmfData>(&rdata))
    return TxtData{{"sns:audio=" + dtmf->tone.to_string()}};
  return fail("no TXT fallback for this rdata type");
}

Result<std::pair<RRType, Rdata>> from_txt_fallback(const TxtData& txt) {
  if (txt.strings.size() != 1) return fail("txt fallback: expected single string");
  std::string_view s = txt.strings[0];
  if (!s.starts_with("sns:")) return fail("txt fallback: missing sns: prefix");
  s.remove_prefix(4);
  std::size_t eq = s.find('=');
  if (eq == std::string_view::npos) return fail("txt fallback: missing '='");
  std::string_view family = s.substr(0, eq);
  std::string_view value = s.substr(eq + 1);

  if (family == "bluetooth") {
    auto a = net::Bdaddr::parse(value);
    if (!a.ok()) return a.error();
    return std::pair{RRType::BDADDR, Rdata{BdaddrData{a.value()}}};
  }
  if (family == "wifi") {
    std::size_t comma = value.rfind(',');
    if (comma == std::string_view::npos) return fail("txt fallback: wifi needs ssid,ip");
    auto a = net::Ipv4Addr::parse(value.substr(comma + 1));
    if (!a.ok()) return a.error();
    return std::pair{RRType::WIFI, Rdata{WifiData{std::string(value.substr(0, comma)), a.value()}}};
  }
  if (family == "lorawan") {
    std::size_t comma = value.rfind(',');
    if (comma == std::string_view::npos) return fail("txt fallback: lora needs gw,devaddr");
    auto gw = Name::parse(value.substr(0, comma));
    if (!gw.ok()) return gw.error();
    auto dev = net::LoraDevAddr::parse(value.substr(comma + 1));
    if (!dev.ok()) return dev.error();
    return std::pair{RRType::LORA, Rdata{LoraData{std::move(gw).value(), dev.value()}}};
  }
  if (family == "audio") {
    auto tone = net::DtmfTone::parse(value);
    if (!tone.ok()) return tone.error();
    return std::pair{RRType::DTMF, Rdata{DtmfData{std::move(tone).value()}}};
  }
  return fail("txt fallback: unknown family '" + std::string(family) + "'");
}

}  // namespace sns::dns
