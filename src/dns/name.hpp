// name.hpp — DNS domain names (RFC 1035 §3.1) with compression.
//
// Spatial names in the SNS *are* domain names (§2.3 of the paper), so
// this type is the common currency of the whole system:
// `mic.oval-office.1600.penn-ave.washington.dc.usa.loc` is a Name with
// eight labels. Names compare and sort case-insensitively in canonical
// DNS order (by label, right to left), which the zone store and NSEC3
// chain rely on.
//
// Because every zone probe, cache probe and compression lookup keys on
// a Name, construction computes a *canonical packed key* once: the
// lowercased wire-form bytes (length byte + lowercased label bytes per
// label, no terminal zero) plus per-label offsets and an FNV-1a hash.
// Equality is then one memcmp, hashing is free, and suffix-structured
// containers (Zone's owner index, the NameCompressor) can probe with
// packed_suffix() views without materialising ancestor names.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace sns::dns {

class NameCompressor;

class Name {
 public:
  /// The root name (zero labels).
  Name() = default;

  /// Parse presentation format. A trailing dot is accepted and ignored;
  /// all names are treated as fully qualified. "." parses to the root.
  /// Enforces RFC limits: labels 1..63 octets, total wire length <= 255.
  static util::Result<Name> parse(std::string_view text);

  /// Build from labels, leftmost (most specific) first.
  static util::Result<Name> from_labels(std::vector<std::string> labels);

  [[nodiscard]] const std::vector<std::string>& labels() const noexcept { return labels_; }
  [[nodiscard]] std::size_t label_count() const noexcept { return labels_.size(); }
  [[nodiscard]] bool is_root() const noexcept { return labels_.empty(); }

  /// Presentation form; root prints as ".". No trailing dot otherwise.
  [[nodiscard]] std::string to_string() const;

  /// Wire length in octets (labels + length bytes + terminal zero).
  [[nodiscard]] std::size_t wire_length() const noexcept { return packed_.size() + 1; }

  /// Canonical packed key: lowercased wire-form bytes without the
  /// terminal zero. Two names are equal iff their packed keys are
  /// byte-identical; the root's key is empty. Views returned here are
  /// invalidated by assigning to this Name.
  [[nodiscard]] std::string_view packed() const noexcept { return packed_; }

  /// Packed key of the suffix starting at label `from_label` (the whole
  /// key at 0, empty at label_count()). Suffix keys of one name are
  /// suffix bytes of its packed key, which is what the zone index and
  /// the compressor probe with.
  [[nodiscard]] std::string_view packed_suffix(std::size_t from_label) const noexcept {
    if (from_label >= offsets_.size()) return {};
    return std::string_view(packed_).substr(offsets_[from_label]);
  }

  /// Cached FNV-1a hash of packed(); equal names hash equal.
  [[nodiscard]] std::size_t hash() const noexcept { return hash_; }

  /// True if this name equals `ancestor` or is beneath it.
  [[nodiscard]] bool is_subdomain_of(const Name& ancestor) const;

  /// Drop the leftmost label. Precondition: !is_root().
  [[nodiscard]] Name parent() const;

  /// Prepend a single label. Fails on invalid label or overflow.
  [[nodiscard]] util::Result<Name> prepend(std::string_view label) const;

  /// Concatenate: this name (relative part) followed by `suffix`.
  [[nodiscard]] util::Result<Name> concat(const Name& suffix) const;

  /// Strip `suffix` from the right; nullopt if not a suffix of this.
  [[nodiscard]] std::optional<Name> strip_suffix(const Name& suffix) const;

  /// Wire encode without compression.
  void encode(util::ByteWriter& out) const;
  /// Wire encode using (and updating) the message-wide compressor.
  void encode(util::ByteWriter& out, NameCompressor& compressor) const;

  /// Wire decode, chasing compression pointers through the whole
  /// message buffer. The reader must be positioned at the name; on
  /// success it is positioned just past the name's in-place bytes.
  static util::Result<Name> decode(util::ByteReader& reader);

  /// Case-insensitive equality (one hash check + memcmp on packed keys).
  friend bool operator==(const Name& a, const Name& b) {
    return a.hash_ == b.hash_ && a.packed_ == b.packed_;
  }
  /// Canonical DNS ordering (RFC 4034 §6.1): label-by-label, rightmost
  /// label most significant, case-insensitive.
  friend std::strong_ordering operator<=>(const Name& a, const Name& b);

 private:
  /// Rebuild packed_/offsets_/hash_ from labels_. Every mutation path
  /// ends with this, so the invariants hold for any reachable Name.
  void repack();

  static constexpr std::size_t kEmptyHash =
      static_cast<std::size_t>(14695981039346656037ULL);  // FNV-1a offset basis

  std::vector<std::string> labels_;    // original case, for display/encode
  std::string packed_;                 // canonical packed key (lowercased)
  std::vector<std::uint8_t> offsets_;  // packed_ index of each label's length byte
  std::size_t hash_ = kEmptyHash;
};

/// Per-message state for RFC 1035 §4.1.4 name compression. Tracks the
/// offset of every name (and tail) already written; emits a pointer when
/// a suffix match is found. Pointers can only address the first 0x3FFF
/// octets, so later occurrences are written in full.
class NameCompressor {
 public:
  /// Record/lookup happens inside Name::encode; users just pass the
  /// same compressor for every name of one message.
  std::optional<std::uint16_t> find(const Name& name, std::size_t from_label) const;
  void remember(const Name& name, std::size_t from_label, std::size_t offset);

 private:
  // Keys are packed_suffix() views into the Names being encoded — no
  // per-suffix string is materialised. The compressor therefore must
  // not outlive the message whose names it indexes (it never does: one
  // compressor lives on the stack of one Message::encode call).
  std::unordered_map<std::string_view, std::uint16_t> offsets_;
};

/// Convenience for literals in tests/examples: aborts on invalid input.
Name name_of(std::string_view text);

}  // namespace sns::dns

/// Names are hashable with their cached packed-key hash, so
/// unordered_map<Name, T> works out of the box (zone index, caches).
template <>
struct std::hash<sns::dns::Name> {
  std::size_t operator()(const sns::dns::Name& name) const noexcept { return name.hash(); }
};
