// master.hpp — RFC 1035 §5 master-file (zone file) parser & writer.
//
// Supports $ORIGIN and $TTL directives, `@` for the origin, relative
// names, omitted owner (repeat previous), omitted TTL/class,
// parenthesised multi-line records (SOA style) and `;` comments — plus
// the SNS extended type mnemonics, so a spatial zone can be written as
// an ordinary-looking zone file:
//
//   $ORIGIN oval-office.1600.penn-ave.washington.dc.usa.loc.
//   $TTL 300
//   @        IN SOA  ns hostmaster 1 3600 600 86400 60
//   mic      IN BDADDR 01:23:45:67:89:ab
//   mic      IN WIFI  "wh-iot" 192.0.3.10
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dns/record.hpp"
#include "util/result.hpp"

namespace sns::dns {

/// Parse a complete master file. `default_origin` applies until a
/// $ORIGIN directive appears.
util::Result<std::vector<ResourceRecord>> parse_master_file(std::string_view text,
                                                            const Name& default_origin);

/// Serialise records to master-file text (absolute names, explicit TTLs).
std::string to_master_file(std::span<const ResourceRecord> records);

}  // namespace sns::dns
