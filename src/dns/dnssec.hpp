// dnssec.hpp — DNSSEC-shaped signing, NSEC3 denial, and TSIG.
//
// The paper relies on DNSSEC "operating as usual" for authenticated
// spatial answers (§4.1) and on TSIG/NSEC3 for the §4.2 security story.
// We implement the *real* wire formats and validation logic (canonical
// RRset form per RFC 4034 §6, NSEC3 owner hashing per RFC 5155 with real
// SHA-1, TSIG MAC coverage per RFC 2845) but substitute the public-key
// primitive: algorithm 250 here is HMAC-SHA1 under a zone-held secret,
// so a "public key" is really a shared verification key. This preserves
// everything the experiments exercise (chain walking, expiry, denial of
// existence, tamper detection) without shipping fake RSA. Clearly NOT
// SECURE for real deployments — see DESIGN.md §2.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/message.hpp"
#include "dns/record.hpp"
#include "util/result.hpp"
#include "util/sha1.hpp"

namespace sns::dns {

/// Private-use algorithm number for the toy HMAC-based "signature".
constexpr std::uint8_t kToyHmacAlgorithm = 250;

/// A zone's signing key. `secret` doubles as the DNSKEY public key so
/// validators can verify (toy scheme: MAC, not signature).
struct ZoneKey {
  Name zone;
  util::Bytes secret;

  [[nodiscard]] std::uint16_t key_tag() const;
  [[nodiscard]] DnskeyData to_dnskey() const;
};

/// Deterministic canonical form of an RRset (RFC 4034 §6.2-6.3):
/// owner lowercased, records sorted by rdata, no compression. This is
/// the byte string signatures cover.
util::Bytes canonical_rrset_bytes(const RRset& rrset);

/// Sign one RRset. All records must share (name, type, class, ttl).
util::Result<ResourceRecord> sign_rrset(const RRset& rrset, const ZoneKey& key,
                                        std::uint32_t inception, std::uint32_t expiration);

/// Verify an RRSIG over an RRset at simulated time `now` (checks
/// validity window, signer, key tag and MAC).
util::Status verify_rrsig(const RRset& rrset, const RrsigData& sig, const ZoneKey& key,
                          std::uint32_t now);

// --- NSEC3 (RFC 5155) -------------------------------------------------------

/// H(name) = SHA1(... SHA1(SHA1(canonical-name | salt) | salt) ...),
/// `iterations` additional rounds.
util::Bytes nsec3_hash(const Name& name, std::span<const std::uint8_t> salt,
                       std::uint16_t iterations);

/// Owner name of the NSEC3 record for `name` in `zone`:
/// base32hex(H(name)).zone.
util::Result<Name> nsec3_owner(const Name& name, const Name& zone,
                               std::span<const std::uint8_t> salt, std::uint16_t iterations);

/// Build the full NSEC3 chain for the given owner names (each paired
/// with the set of types present at it). Returns one NSEC3 record per
/// name, linked in hash order.
std::vector<ResourceRecord> build_nsec3_chain(
    const Name& zone, const std::vector<std::pair<Name, std::vector<RRType>>>& names,
    std::span<const std::uint8_t> salt, std::uint16_t iterations, std::uint32_t ttl);

/// Check that `chain_record` proves the nonexistence of `qname`:
/// H(qname) falls strictly between the record's owner hash and its
/// next-hash (with wraparound).
util::Result<bool> nsec3_covers(const ResourceRecord& chain_record, const Name& qname,
                                const Name& zone);

// --- TSIG (RFC 2845, simplified) --------------------------------------------

struct TsigKey {
  Name name;  // key name, e.g. edge-update-key.
  util::Bytes secret;
};

/// Append a TSIG record to `message` covering its current wire form.
void tsig_sign(Message& message, const TsigKey& key, std::uint64_t now_seconds);

/// Verify and strip the TSIG record; fails on missing/bad MAC or a
/// timestamp outside the fudge window.
util::Status tsig_verify(Message& message, const TsigKey& key, std::uint64_t now_seconds);

}  // namespace sns::dns
