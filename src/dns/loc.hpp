// loc.hpp — RFC 1876 LOC record data.
//
// §3.2 of the paper: "LOC RRs could be one method used to encode these
// geodetic locations". LocData stores the exact wire fields of RFC 1876
// and converts to/from floating-point degrees/metres. Size and the two
// precision fields use the RFC's base/exponent centimetre encoding
// (4-bit mantissa 0-9, 4-bit power of ten).
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace sns::dns {

struct LocData {
  std::uint8_t version = 0;
  std::uint8_t size = 0x12;       // default 1m  (1e2 cm)
  std::uint8_t horiz_pre = 0x16;  // default 10km
  std::uint8_t vert_pre = 0x13;   // default 10m
  std::uint32_t latitude = 1u << 31;   // thousandths of arcsec, offset 2^31
  std::uint32_t longitude = 1u << 31;
  std::uint32_t altitude = 10000000;   // cm, offset -100000m

  /// Build from conventional units. Fails on out-of-range coordinates.
  static util::Result<LocData> from_degrees(double lat_deg, double lon_deg, double alt_m = 0.0,
                                            double size_m = 1.0, double horiz_pre_m = 10000.0,
                                            double vert_pre_m = 10.0);

  [[nodiscard]] double latitude_degrees() const;
  [[nodiscard]] double longitude_degrees() const;
  [[nodiscard]] double altitude_meters() const;
  [[nodiscard]] double size_meters() const;
  [[nodiscard]] double horiz_precision_meters() const;
  [[nodiscard]] double vert_precision_meters() const;

  /// RFC 1876 presentation: "38 53 50.616 N 77 2 14.640 W 15.00m 1m ...".
  [[nodiscard]] std::string to_string() const;
  static util::Result<LocData> parse(std::span<const std::string> tokens);

  void encode(util::ByteWriter& out) const;
  static util::Result<LocData> decode(util::ByteReader& reader);

  friend bool operator==(const LocData&, const LocData&) = default;
};

/// RFC 1876 size/precision byte: mantissa (0-9) * 10^exponent centimetres.
std::uint8_t encode_loc_size(double meters);
double decode_loc_size(std::uint8_t encoded);

}  // namespace sns::dns
