#include "dns/message.hpp"

namespace sns::dns {

using util::fail;
using util::Result;

std::string Question::to_string() const {
  return name.to_string() + " " + dns::to_string(klass) + " " + dns::to_string(type);
}

namespace {

constexpr std::uint16_t kQrBit = 0x8000;
constexpr std::uint16_t kAaBit = 0x0400;
constexpr std::uint16_t kTcBit = 0x0200;
constexpr std::uint16_t kRdBit = 0x0100;
constexpr std::uint16_t kRaBit = 0x0080;
constexpr std::uint16_t kAdBit = 0x0020;

std::uint16_t pack_flags(const Header& h) {
  std::uint16_t flags = 0;
  if (h.qr) flags |= kQrBit;
  flags |= static_cast<std::uint16_t>((static_cast<std::uint16_t>(h.opcode) & 0xf) << 11);
  if (h.aa) flags |= kAaBit;
  if (h.tc) flags |= kTcBit;
  if (h.rd) flags |= kRdBit;
  if (h.ra) flags |= kRaBit;
  if (h.ad) flags |= kAdBit;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(h.rcode) & 0xf);
  return flags;
}

Header unpack_flags(std::uint16_t id, std::uint16_t flags) {
  Header h;
  h.id = id;
  h.qr = (flags & kQrBit) != 0;
  h.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
  h.aa = (flags & kAaBit) != 0;
  h.tc = (flags & kTcBit) != 0;
  h.rd = (flags & kRdBit) != 0;
  h.ra = (flags & kRaBit) != 0;
  h.ad = (flags & kAdBit) != 0;
  h.rcode = static_cast<Rcode>(flags & 0xf);
  return h;
}

}  // namespace

util::Bytes Message::encode() const { return encode_with_layout().wire; }

Message::Encoded Message::encode_with_layout() const {
  util::ByteWriter out;
  // One allocation: sum the uncompressed upper bounds up front
  // (compression only shrinks the real encoding).
  std::size_t estimate = 12;
  for (const auto& q : questions) estimate += q.name.wire_length() + 4;
  for (const auto& rr : answers) estimate += rr.wire_estimate();
  for (const auto& rr : authorities) estimate += rr.wire_estimate();
  for (const auto& rr : additionals) estimate += rr.wire_estimate();
  out.reserve(estimate);

  NameCompressor compressor;
  out.u16(header.id);
  out.u16(pack_flags(header));
  out.u16(static_cast<std::uint16_t>(questions.size()));
  out.u16(static_cast<std::uint16_t>(answers.size()));
  out.u16(static_cast<std::uint16_t>(authorities.size()));
  out.u16(static_cast<std::uint16_t>(additionals.size()));
  for (const auto& q : questions) {
    q.name.encode(out, compressor);
    out.u16(static_cast<std::uint16_t>(q.type));
    out.u16(static_cast<std::uint16_t>(q.klass));
  }
  std::size_t questions_end = out.size();
  for (const auto& rr : answers) rr.encode(out, &compressor);
  for (const auto& rr : authorities) rr.encode(out, &compressor);
  for (const auto& rr : additionals) rr.encode(out, &compressor);
  return Encoded{std::move(out).take(), questions_end};
}

Result<Message> Message::decode(std::span<const std::uint8_t> wire) {
  util::ByteReader reader(wire);
  auto id = reader.u16();
  auto flags = reader.u16();
  auto qdcount = reader.u16();
  auto ancount = reader.u16();
  auto nscount = reader.u16();
  auto arcount = reader.u16();
  if (!id.ok() || !flags.ok() || !qdcount.ok() || !ancount.ok() || !nscount.ok() || !arcount.ok())
    return fail("message: truncated header");

  Message msg;
  msg.header = unpack_flags(id.value(), flags.value());

  for (std::uint16_t i = 0; i < qdcount.value(); ++i) {
    Question q;
    auto name = Name::decode(reader);
    if (!name.ok()) return fail("question: " + name.error().message);
    q.name = std::move(name).value();
    auto type = reader.u16();
    auto klass = reader.u16();
    if (!type.ok() || !klass.ok()) return fail("question: truncated");
    q.type = static_cast<RRType>(type.value());
    q.klass = static_cast<RRClass>(klass.value());
    msg.questions.push_back(std::move(q));
  }

  auto read_section = [&](std::uint16_t count,
                          std::vector<ResourceRecord>& section) -> util::Status {
    for (std::uint16_t i = 0; i < count; ++i) {
      auto rr = ResourceRecord::decode(reader);
      if (!rr.ok()) return rr.error();
      section.push_back(std::move(rr).value());
    }
    return util::ok_status();
  };
  if (auto s = read_section(ancount.value(), msg.answers); !s.ok()) return s.error();
  if (auto s = read_section(nscount.value(), msg.authorities); !s.ok()) return s.error();
  if (auto s = read_section(arcount.value(), msg.additionals); !s.ok()) return s.error();
  return msg;
}

std::string Message::to_string() const {
  std::string out;
  out += ";; " + dns::to_string(header.opcode) + " id=" + std::to_string(header.id) +
         " rcode=" + dns::to_string(header.rcode);
  if (header.qr) out += " qr";
  if (header.aa) out += " aa";
  if (header.rd) out += " rd";
  if (header.ra) out += " ra";
  if (header.ad) out += " ad";
  out += "\n";
  for (const auto& q : questions) out += ";; question: " + q.to_string() + "\n";
  for (const auto& rr : answers) out += rr.to_string() + "\n";
  if (!authorities.empty()) {
    out += ";; authority:\n";
    for (const auto& rr : authorities) out += rr.to_string() + "\n";
  }
  if (!additionals.empty()) {
    out += ";; additional:\n";
    for (const auto& rr : additionals) out += rr.to_string() + "\n";
  }
  return out;
}

Message make_query(std::uint16_t id, const Name& name, RRType type, bool recursion_desired) {
  Message msg;
  msg.header.id = id;
  msg.header.rd = recursion_desired;
  msg.questions.push_back(Question{name, type, RRClass::IN});
  return msg;
}

Message make_response(const Message& query, Rcode rcode, bool authoritative) {
  Message msg;
  msg.header = query.header;
  msg.header.qr = true;
  msg.header.aa = authoritative;
  msg.header.ra = false;
  msg.header.rcode = rcode;
  msg.questions = query.questions;
  return msg;
}

void add_edns(Message& message, std::uint16_t udp_size) {
  ResourceRecord opt;
  opt.name = Name{};  // root owner per RFC 6891
  opt.type = RRType::OPT;
  opt.klass = static_cast<RRClass>(udp_size);
  opt.ttl = 0;
  opt.rdata = OptData{udp_size, {}};
  message.additionals.push_back(std::move(opt));
}

std::size_t advertised_udp_size(const Message& message) {
  for (const auto& rr : message.additionals)
    if (rr.type == RRType::OPT)
      return std::max<std::size_t>(kClassicUdpLimit,
                                   static_cast<std::uint16_t>(rr.klass));
  return kClassicUdpLimit;
}

util::Bytes encode_for_transport(const Message& query, const Message& response) {
  std::size_t limit = advertised_udp_size(query);
  Message::Encoded enc = response.encode_with_layout();
  if (enc.wire.size() <= limit) return std::move(enc.wire);
  // Too big for the client's transport: signal truncation (RFC 2181 §9
  // behaviour — drop the partial sections entirely). The header +
  // question prefix of the full encoding *is* the truncated message
  // once TC is set and the record counts are zeroed, so no re-encode:
  // question names compress only against earlier question names, which
  // all live inside the prefix.
  util::Bytes wire(enc.wire.begin(),
                   enc.wire.begin() + static_cast<std::ptrdiff_t>(enc.questions_end));
  wire[2] |= 0x02;                                   // TC bit (0x0200, high octet)
  for (std::size_t i = 6; i < 12; ++i) wire[i] = 0;  // ancount/nscount/arcount = 0
  return wire;
}

}  // namespace sns::dns
