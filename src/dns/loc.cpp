#include "dns/loc.hpp"

#include <cmath>
#include <cstdio>

#include "util/strings.hpp"

namespace sns::dns {

using util::fail;
using util::Result;

namespace {
constexpr double kThousandthsPerDegree = 3600.0 * 1000.0;
constexpr std::uint32_t kEquator = 1u << 31;
constexpr double kAltOffsetCm = 10000000.0;  // -100,000 m reference
}  // namespace

std::uint8_t encode_loc_size(double meters) {
  double cm = meters * 100.0;
  if (cm < 0) cm = 0;
  if (cm > 9e9) cm = 9e9;
  int exponent = 0;
  while (cm >= 10.0 && exponent < 9) {
    cm /= 10.0;
    ++exponent;
  }
  int mantissa = static_cast<int>(std::lround(cm));
  if (mantissa > 9) {
    mantissa = 1;
    ++exponent;
  }
  return static_cast<std::uint8_t>((mantissa << 4) | exponent);
}

double decode_loc_size(std::uint8_t encoded) {
  int mantissa = encoded >> 4;
  int exponent = encoded & 0xf;
  return static_cast<double>(mantissa) * std::pow(10.0, exponent) / 100.0;
}

Result<LocData> LocData::from_degrees(double lat_deg, double lon_deg, double alt_m, double size_m,
                                      double horiz_pre_m, double vert_pre_m) {
  if (lat_deg < -90.0 || lat_deg > 90.0) return fail("loc: latitude out of range");
  if (lon_deg < -180.0 || lon_deg > 180.0) return fail("loc: longitude out of range");
  if (alt_m < -100000.0 || alt_m > 42849672.95) return fail("loc: altitude out of range");
  LocData out;
  out.latitude = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(kEquator) +
      static_cast<std::int64_t>(std::llround(lat_deg * kThousandthsPerDegree)));
  out.longitude = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(kEquator) +
      static_cast<std::int64_t>(std::llround(lon_deg * kThousandthsPerDegree)));
  out.altitude = static_cast<std::uint32_t>(std::llround(alt_m * 100.0 + kAltOffsetCm));
  out.size = encode_loc_size(size_m);
  out.horiz_pre = encode_loc_size(horiz_pre_m);
  out.vert_pre = encode_loc_size(vert_pre_m);
  return out;
}

double LocData::latitude_degrees() const {
  return (static_cast<double>(latitude) - static_cast<double>(kEquator)) / kThousandthsPerDegree;
}

double LocData::longitude_degrees() const {
  return (static_cast<double>(longitude) - static_cast<double>(kEquator)) / kThousandthsPerDegree;
}

double LocData::altitude_meters() const {
  return (static_cast<double>(altitude) - kAltOffsetCm) / 100.0;
}

double LocData::size_meters() const { return decode_loc_size(size); }
double LocData::horiz_precision_meters() const { return decode_loc_size(horiz_pre); }
double LocData::vert_precision_meters() const { return decode_loc_size(vert_pre); }

namespace {

void format_dms(std::string& out, double degrees, char positive, char negative) {
  char hemisphere = degrees >= 0 ? positive : negative;
  double abs_deg = std::fabs(degrees);
  int d = static_cast<int>(abs_deg);
  double rem = (abs_deg - d) * 60.0;
  int m = static_cast<int>(rem);
  double s = (rem - m) * 60.0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%d %d %.3f %c", d, m, s, hemisphere);
  out += buf;
}

}  // namespace

std::string LocData::to_string() const {
  std::string out;
  format_dms(out, latitude_degrees(), 'N', 'S');
  out += ' ';
  format_dms(out, longitude_degrees(), 'E', 'W');
  char buf[96];
  std::snprintf(buf, sizeof buf, " %.2fm %.0fm %.0fm %.0fm", altitude_meters(), size_meters(),
                horiz_precision_meters(), vert_precision_meters());
  out += buf;
  return out;
}

Result<LocData> LocData::parse(std::span<const std::string> tokens) {
  // Accepted shape: "<d> [m [s]] {N|S} <d> [m [s]] {E|W} <alt>m [size [hp [vp]]]".
  auto take_angle = [&](std::size_t& i, char pos, char neg) -> Result<double> {
    double d = 0, m = 0, s = 0;
    int fields = 0;
    char hemisphere = 0;
    while (i < tokens.size() && fields < 3) {
      const std::string& t = tokens[i];
      if (t.size() == 1 && (t[0] == pos || t[0] == neg)) break;
      char* end = nullptr;
      double v = std::strtod(t.c_str(), &end);
      if (end != t.c_str() + t.size()) return fail("loc: bad angle token '" + t + "'");
      if (fields == 0) d = v;
      if (fields == 1) m = v;
      if (fields == 2) s = v;
      ++fields;
      ++i;
    }
    if (i >= tokens.size()) return fail("loc: missing hemisphere");
    hemisphere = tokens[i][0];
    if (tokens[i].size() != 1 || (hemisphere != pos && hemisphere != neg))
      return fail("loc: bad hemisphere '" + tokens[i] + "'");
    ++i;
    double angle = d + m / 60.0 + s / 3600.0;
    return hemisphere == pos ? angle : -angle;
  };

  auto take_meters = [&](std::size_t& i, double fallback) -> Result<double> {
    if (i >= tokens.size()) return fallback;
    std::string t = tokens[i];
    if (!t.empty() && t.back() == 'm') t.pop_back();
    char* end = nullptr;
    double v = std::strtod(t.c_str(), &end);
    if (end != t.c_str() + t.size()) return fail("loc: bad metric token '" + tokens[i] + "'");
    ++i;
    return v;
  };

  std::size_t i = 0;
  auto lat = take_angle(i, 'N', 'S');
  if (!lat.ok()) return lat.error();
  auto lon = take_angle(i, 'E', 'W');
  if (!lon.ok()) return lon.error();
  auto alt = take_meters(i, 0.0);
  if (!alt.ok()) return alt.error();
  auto size_m = take_meters(i, 1.0);
  if (!size_m.ok()) return size_m.error();
  auto hp = take_meters(i, 10000.0);
  if (!hp.ok()) return hp.error();
  auto vp = take_meters(i, 10.0);
  if (!vp.ok()) return vp.error();
  return from_degrees(lat.value(), lon.value(), alt.value(), size_m.value(), hp.value(),
                      vp.value());
}

void LocData::encode(util::ByteWriter& out) const {
  out.u8(version);
  out.u8(size);
  out.u8(horiz_pre);
  out.u8(vert_pre);
  out.u32(latitude);
  out.u32(longitude);
  out.u32(altitude);
}

Result<LocData> LocData::decode(util::ByteReader& reader) {
  LocData out;
  auto version = reader.u8();
  if (!version.ok()) return version.error();
  if (version.value() != 0) return fail("loc: unsupported version");
  out.version = version.value();
  auto size = reader.u8();
  auto hp = reader.u8();
  auto vp = reader.u8();
  auto lat = reader.u32();
  auto lon = reader.u32();
  auto alt = reader.u32();
  if (!size.ok() || !hp.ok() || !vp.ok() || !lat.ok() || !lon.ok() || !alt.ok())
    return fail("loc: truncated rdata");
  out.size = size.value();
  out.horiz_pre = hp.value();
  out.vert_pre = vp.value();
  out.latitude = lat.value();
  out.longitude = lon.value();
  out.altitude = alt.value();
  return out;
}

}  // namespace sns::dns
