#include "dns/record.hpp"

namespace sns::dns {

using util::fail;
using util::Result;

std::string ResourceRecord::to_string() const {
  return name.to_string() + " " + std::to_string(ttl) + " " + dns::to_string(klass) + " " +
         dns::to_string(type) + " " + rdata_to_string(rdata);
}

void ResourceRecord::encode(util::ByteWriter& out, NameCompressor* compressor) const {
  if (compressor != nullptr)
    name.encode(out, *compressor);
  else
    name.encode(out);
  out.u16(static_cast<std::uint16_t>(type));
  out.u16(static_cast<std::uint16_t>(klass));
  out.u32(ttl);
  std::size_t rdlength_at = out.size();
  out.u16(0);  // patched below
  std::size_t rdata_start = out.size();
  encode_rdata(rdata, out, compressor);
  out.patch_u16(rdlength_at, static_cast<std::uint16_t>(out.size() - rdata_start));
}

Result<ResourceRecord> ResourceRecord::decode(util::ByteReader& reader) {
  ResourceRecord rr;
  auto name = Name::decode(reader);
  if (!name.ok()) return name.error();
  rr.name = std::move(name).value();
  auto type = reader.u16();
  auto klass = reader.u16();
  auto ttl = reader.u32();
  auto rdlength = reader.u16();
  if (!type.ok() || !klass.ok() || !ttl.ok() || !rdlength.ok())
    return fail("record: truncated fixed header");
  rr.type = static_cast<RRType>(type.value());
  rr.klass = static_cast<RRClass>(klass.value());
  rr.ttl = ttl.value();
  auto rdata = decode_rdata(rr.type, reader, rdlength.value());
  if (!rdata.ok()) return rdata.error();
  rr.rdata = std::move(rdata).value();
  return rr;
}

ResourceRecord make_a(const Name& name, net::Ipv4Addr address, std::uint32_t ttl) {
  return ResourceRecord{name, RRType::A, RRClass::IN, ttl, AData{address}};
}

ResourceRecord make_aaaa(const Name& name, net::Ipv6Addr address, std::uint32_t ttl) {
  return ResourceRecord{name, RRType::AAAA, RRClass::IN, ttl, AaaaData{address}};
}

ResourceRecord make_ns(const Name& name, const Name& nameserver, std::uint32_t ttl) {
  return ResourceRecord{name, RRType::NS, RRClass::IN, ttl, NsData{nameserver}};
}

ResourceRecord make_cname(const Name& name, const Name& target, std::uint32_t ttl) {
  return ResourceRecord{name, RRType::CNAME, RRClass::IN, ttl, CnameData{target}};
}

ResourceRecord make_txt(const Name& name, std::vector<std::string> strings, std::uint32_t ttl) {
  return ResourceRecord{name, RRType::TXT, RRClass::IN, ttl, TxtData{std::move(strings)}};
}

ResourceRecord make_ptr(const Name& name, const Name& target, std::uint32_t ttl) {
  return ResourceRecord{name, RRType::PTR, RRClass::IN, ttl, PtrData{target}};
}

ResourceRecord make_srv(const Name& name, std::uint16_t port, const Name& target,
                        std::uint32_t ttl) {
  return ResourceRecord{name, RRType::SRV, RRClass::IN, ttl, SrvData{0, 0, port, target}};
}

ResourceRecord make_soa(const Name& zone, const Name& mname, std::uint32_t serial,
                        std::uint32_t ttl) {
  SoaData soa;
  soa.mname = mname;
  auto rname = Name::parse("hostmaster." + zone.to_string());
  soa.rname = rname.ok() ? std::move(rname).value() : mname;
  soa.serial = serial;
  return ResourceRecord{zone, RRType::SOA, RRClass::IN, ttl, std::move(soa)};
}

ResourceRecord make_bdaddr(const Name& name, net::Bdaddr address, std::uint32_t ttl) {
  return ResourceRecord{name, RRType::BDADDR, RRClass::IN, ttl, BdaddrData{address}};
}

ResourceRecord make_loc(const Name& name, const LocData& loc, std::uint32_t ttl) {
  return ResourceRecord{name, RRType::LOC, RRClass::IN, ttl, loc};
}

}  // namespace sns::dns
