#include "spatial/spatial_view.hpp"

#include <algorithm>
#include <utility>

#include "dns/rdata.hpp"
#include "dns/record.hpp"
#include "geo/rtree.hpp"
#include "server/zone.hpp"

namespace sns::spatial {

namespace {

bool device_less(const Device& a, const Device& b) {
  return a.d != b.d ? a.d < b.d : a.name.packed() < b.name.packed();
}

}  // namespace

const char* to_string(SpatialBackend backend) {
  switch (backend) {
    case SpatialBackend::Hilbert:
      return "hilbert";
    case SpatialBackend::RTree:
      return "rtree";
  }
  return "hilbert";
}

const geo::HilbertGrid& SpatialView::grid() {
  static const geo::HilbertGrid kGrid(geo::BoundingBox{-90.0, -180.0, 90.0, 180.0}, 20);
  return kGrid;
}

const server::ZoneView* SpatialView::owning_zone(const ZoneViews& zones,
                                                 const dns::Name& owner) {
  // A federated snapshot can hold nested zones (parent plus delegated
  // children); the one that answers a query for `owner` is the deepest
  // covering apex, so that is the one whose lookup gets to decide
  // whether the owner is spatially indexed.
  const server::ZoneView* best = nullptr;
  for (const auto& zone : zones) {
    if (!owner.is_subdomain_of(zone->apex())) continue;
    if (best == nullptr || zone->apex().label_count() > best->apex().label_count())
      best = zone.get();
  }
  return best;
}

void SpatialView::append_owner_devices(const ZoneViews& zones, const dns::Name& owner,
                                       std::vector<Device>& out) {
  // A wildcard source record is a template, not a device at a fixed
  // location — looking up the literal "*" owner succeeds without the
  // wildcard flag, so it must be screened out here.
  if (!owner.is_root() && owner.labels().front() == "*") return;
  const auto* zone = owning_zone(zones, owner);
  if (zone == nullptr) return;
  // Route through the lookup algorithm, not a raw node probe: names
  // occluded below a delegation cut must not be served spatially
  // either, and wildcard sources have no fixed location of their own.
  auto result = zone->lookup(owner, dns::RRType::LOC);
  if (result.kind != server::ZoneView::Lookup::Kind::Success || result.wildcard) return;
  for (const auto& rr : result.records) {
    const auto* loc = std::get_if<dns::LocData>(&rr.rdata);
    if (loc == nullptr) continue;
    Device dev;
    dev.latitude = loc->latitude_degrees();
    dev.longitude = loc->longitude_degrees();
    dev.d = grid().point_to_d(geo::GeoPoint{dev.latitude, dev.longitude, 0.0});
    dev.name = owner;
    dev.loc = *loc;
    out.push_back(std::move(dev));
  }
}

std::shared_ptr<const SpatialView> SpatialView::build(const ZoneViews& zones,
                                                      SpatialBackend backend) {
  auto base = std::make_shared<std::vector<Device>>();
  for (const auto& zone : zones) {
    for (const auto& [owner, types] : zone->all_names()) {
      if (std::find(types.begin(), types.end(), dns::RRType::LOC) == types.end()) continue;
      // Skip owners this zone does not own in the federated sense — a
      // deeper apex in the same snapshot claims them, and that zone's
      // own all_names() pass will index them exactly once.
      const auto* owning = owning_zone(zones, owner);
      if (owning != zone.get()) continue;
      append_owner_devices(zones, owner, *base);
    }
  }
  std::sort(base->begin(), base->end(), device_less);
  auto view = std::make_shared<SpatialView>();
  view->live_ = base->size();
  view->backend_ = backend;
  if (backend == SpatialBackend::RTree) {
    std::vector<std::pair<geo::EntryId, geo::GeoPoint>> points;
    points.reserve(base->size());
    for (std::size_t i = 0; i < base->size(); ++i)
      points.emplace_back(static_cast<geo::EntryId>(i),
                          geo::GeoPoint{(*base)[i].latitude, (*base)[i].longitude, 0.0});
    auto tree = std::make_shared<geo::RTree>();
    tree->bulk_load(points);
    view->rtree_ = std::move(tree);
  }
  view->base_ = std::move(base);
  return view;
}

std::shared_ptr<const SpatialView> SpatialView::rebuild(const SpatialView& parent,
                                                        const ZoneViews& old_zones,
                                                        const ZoneViews& new_zones,
                                                        const std::vector<dns::Name>& touched) {
  auto view = std::make_shared<SpatialView>();
  view->base_ = parent.base_;
  view->delta_ = parent.delta_;
  view->dead_ = parent.dead_;
  view->backend_ = parent.backend_;
  view->rtree_ = parent.rtree_;  // entry ids index the shared base_

  std::vector<Device> fresh;
  for (const auto& owner : touched) {
    // Purge whatever this view currently says about the owner...
    auto key = std::string(owner.packed());
    std::erase_if(view->delta_, [&](const Device& dev) { return dev.name == owner; });
    bool in_old = false;
    if (const auto* zone = owning_zone(old_zones, owner)) {
      auto result = zone->lookup(owner, dns::RRType::LOC);
      in_old = result.kind == server::ZoneView::Lookup::Kind::Success && !result.wildcard;
    }
    if (in_old) view->dead_.insert(key);
    // ...then re-derive it from the new views.
    fresh.clear();
    append_owner_devices(new_zones, owner, fresh);
    for (auto& dev : fresh) view->delta_.push_back(std::move(dev));
  }

  if (view->overlay_size() > kCompactLimit) return build(new_zones, parent.backend_);

  std::sort(view->delta_.begin(), view->delta_.end(), device_less);
  view->live_ = view->delta_.size();
  for (const auto& dev : *view->base_) {
    if (!view->dead_.contains(std::string(dev.name.packed()))) ++view->live_;
  }
  return view;
}

std::size_t SpatialView::query_rtree(const geo::BoundingBox& box, std::size_t limit,
                                     std::vector<const Device*>& out,
                                     const dns::Name* scope) const {
  std::size_t appended = 0;
  auto admit = [&](const Device& dev, bool check_dead) {
    if (appended >= limit) return;
    if (!box.contains(geo::GeoPoint{dev.latitude, dev.longitude, 0.0})) return;
    if (scope != nullptr && !dev.name.is_subdomain_of(*scope)) return;
    if (check_dead && dead_.contains(std::string(dev.name.packed()))) return;
    out.push_back(&dev);
    ++appended;
  };
  if (rtree_ != nullptr && base_ != nullptr) {
    // Entry ids are base_ indices; sort the hit set so both backends
    // emit base entries in the same (curve) order.
    auto ids = rtree_->query(box);
    std::sort(ids.begin(), ids.end());
    const bool check_dead = !dead_.empty();
    for (auto id : ids) {
      if (id >= base_->size()) continue;
      admit((*base_)[id], check_dead);
    }
  }
  // The delta overlay is small (bounded by kCompactLimit); a linear
  // scan beats maintaining a second mutable tree per generation.
  for (const auto& dev : delta_) admit(dev, false);
  return appended;
}

std::size_t SpatialView::query(const geo::BoundingBox& box, std::size_t limit,
                               std::vector<const Device*>& out, const dns::Name* scope) const {
  if (backend_ == SpatialBackend::RTree) return query_rtree(box, limit, out, scope);
  std::size_t appended = 0;
  const auto intervals = grid().decompose(box);
  auto scan = [&](const std::vector<Device>& devices, bool check_dead) {
    for (const auto& interval : intervals) {
      auto lo = std::lower_bound(devices.begin(), devices.end(), interval.lo,
                                 [](const Device& dev, geo::HilbertD d) { return dev.d < d; });
      for (auto it = lo; it != devices.end() && it->d <= interval.hi; ++it) {
        if (appended >= limit) return;
        if (!box.contains(geo::GeoPoint{it->latitude, it->longitude, 0.0})) continue;
        if (scope != nullptr && !it->name.is_subdomain_of(*scope)) continue;
        if (check_dead && dead_.contains(std::string(it->name.packed()))) continue;
        out.push_back(&*it);
        ++appended;
      }
    }
  };
  if (base_ != nullptr) scan(*base_, !dead_.empty());
  scan(delta_, false);
  return appended;
}

}  // namespace sns::spatial
