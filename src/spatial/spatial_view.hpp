// spatial_view.hpp — per-snapshot reverse geodetic index.
//
// The answer cache (DESIGN.md §12) precompiles the forward direction —
// name to records; this is the reverse one the paper's §3.2 promises:
// "which devices are in this area?" answered from the serving path. A
// SpatialView indexes every LOC-bearing owner of a snapshot's
// ZoneViews by Hilbert curve distance over a whole-earth grid, packed
// into one flat sorted array (16-byte entries + a parallel record
// array), so an area query is interval decomposition + a binary search
// and contiguous scan per interval: O(perimeter * log n + hits).
//
// Like the answer cache, the view is immutable and travels inside the
// ZoneSnapshot: readers see zones and spatial index consistent by
// construction, and publishing a successor retires the old view with
// its zones. And like the answer cache, successors are built
// incrementally from ZoneTxn commit logs: rebuild() shares the
// parent's sorted base array untouched and layers the commit's few
// re-homed owners as a delta (adds) plus tombstones (owners whose base
// entries died). Queries consult base minus tombstones plus delta;
// when the overlay outgrows kCompactLimit, rebuild compacts back to a
// single flat array (the full-build fallback). A device re-homing via
// RFC 2136 therefore costs O(delta log delta), not O(fleet).
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "dns/loc.hpp"
#include "dns/name.hpp"
#include "geo/hilbert.hpp"

namespace sns::server {
class ZoneView;
}
namespace sns::geo {
class RTree;
}

namespace sns::spatial {

/// Index structure backing a SpatialView. Hilbert is the flat
/// sorted-array default described above; RTree wraps the same base
/// device array in an STR-bulk-loaded geo::RTree (BENCH_geo.json shows
/// it 2–3× faster on point-heavy workloads — ROADMAP 1b). The overlay
/// discipline (delta + tombstones from commit logs) is identical for
/// both; only the base-array probe differs.
enum class SpatialBackend { Hilbert, RTree };

[[nodiscard]] const char* to_string(SpatialBackend backend);

/// One indexed LOC record: the owner (device name), its decoded
/// coordinates, and the original rdata for the answer section.
struct Device {
  geo::HilbertD d = 0;
  double latitude = 0.0;
  double longitude = 0.0;
  dns::Name name;
  dns::LocData loc;
};

class SpatialView {
 public:
  using ZoneViews = std::vector<std::shared_ptr<const server::ZoneView>>;

  /// Whole-earth grid every SpatialView indexes against. Order 20:
  /// cell side = 360deg / 2^20 ~ 0.00034deg ~ 38 m at the equator —
  /// room-scale queries decompose into a handful of intervals while
  /// 4^20 cells keep collisions (and thus scan overshoot) negligible.
  static const geo::HilbertGrid& grid();

  /// Index every LOC-bearing owner the zones' lookup algorithm serves
  /// authoritatively (wildcard sources and names occluded below zone
  /// cuts are skipped, mirroring what a query for the owner would get).
  /// With nested zones in one snapshot (a federated parent serving its
  /// children too), each owner is attributed to the deepest covering
  /// apex — the zone a query for it would actually land in.
  [[nodiscard]] static std::shared_ptr<const SpatialView> build(
      const ZoneViews& zones, SpatialBackend backend = SpatialBackend::Hilbert);

  /// Incremental successor: share the parent's flat base array, fold
  /// `touched` owners into the delta/tombstone overlay against the new
  /// views. Sound under the same contract as AnswerCache::rebuild —
  /// callers must route delegation-touching commits (and anything they
  /// cannot enumerate) through build(). Falls back to build() itself
  /// when the overlay would exceed kCompactLimit.
  [[nodiscard]] static std::shared_ptr<const SpatialView> rebuild(
      const SpatialView& parent, const ZoneViews& old_zones, const ZoneViews& new_zones,
      const std::vector<dns::Name>& touched);

  /// Every indexed device inside `box`, appended to `out` in curve
  /// order (base first, then delta), capped at `limit` devices. When
  /// `scope` is non-null only devices at or below that name match —
  /// an AREA query's qname narrows the search to its subtree. Returns
  /// the number appended.
  std::size_t query(const geo::BoundingBox& box, std::size_t limit,
                    std::vector<const Device*>& out, const dns::Name* scope = nullptr) const;

  /// Indexed devices (base minus tombstoned base entries plus delta).
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  /// Overlay pressure, exposed for tests of the compaction fallback.
  [[nodiscard]] std::size_t overlay_size() const noexcept {
    return delta_.size() + dead_.size();
  }

  /// Overlay size beyond which rebuild() compacts to a fresh flat
  /// array. Matches the commit log's own enumeration cap (Zone::
  /// kMaxTouched): past it, a full rebuild is cheaper than dragging an
  /// ever-growing overlay through every query.
  static constexpr std::size_t kCompactLimit = 4096;

  [[nodiscard]] SpatialBackend backend() const noexcept { return backend_; }

 private:
  static void append_owner_devices(const ZoneViews& zones, const dns::Name& owner,
                                   std::vector<Device>& out);
  /// The deepest view whose apex covers `owner` (the zone a query
  /// would land in), or null.
  static const server::ZoneView* owning_zone(const ZoneViews& zones, const dns::Name& owner);

  std::size_t query_rtree(const geo::BoundingBox& box, std::size_t limit,
                          std::vector<const Device*>& out, const dns::Name* scope) const;

  // Sorted by (d, then insertion order); base_ is shared across
  // snapshot generations, delta_ is private to this view and small.
  std::shared_ptr<const std::vector<Device>> base_;
  std::vector<Device> delta_;
  // Packed owner names whose base entries are dead (removed or
  // re-homed; re-homed owners reappear in delta_).
  std::unordered_set<std::string> dead_;
  std::size_t live_ = 0;
  SpatialBackend backend_ = SpatialBackend::Hilbert;
  // RTree backend only: entry ids are indices into *base_. Shared
  // across generations exactly like base_ itself (rebuild() reuses
  // both and layers the overlay on top).
  std::shared_ptr<const geo::RTree> rtree_;
};

}  // namespace sns::spatial
