#include "spatial/area.hpp"

#include <cmath>

#include "server/zone.hpp"
#include "spatial/spatial_view.hpp"

namespace sns::spatial {

dns::Message make_area_query(std::uint16_t id, const dns::Name& zone,
                             const geo::BoundingBox& box) {
  auto query = dns::make_query(id, zone, dns::RRType::AREA, /*recursion_desired=*/false);
  dns::ResourceRecord rr;
  rr.name = zone;
  rr.type = dns::RRType::AREA;
  rr.ttl = 0;
  rr.rdata = dns::AreaData{box.min_lat, box.min_lon, box.max_lat, box.max_lon};
  query.additionals.push_back(std::move(rr));
  return query;
}

bool is_area_query(const dns::Message& message) {
  return message.header.opcode == dns::Opcode::Query && !message.header.qr &&
         message.questions.size() == 1 && message.questions[0].type == dns::RRType::AREA;
}

util::Result<geo::BoundingBox> parse_area_query(const dns::Message& query) {
  const dns::AreaData* area = nullptr;
  for (const auto& rr : query.additionals) {
    const auto* candidate = std::get_if<dns::AreaData>(&rr.rdata);
    if (candidate == nullptr) continue;  // OPT and friends ride along
    if (area != nullptr) return util::fail("AREA: multiple boxes in query");
    area = candidate;
  }
  if (area == nullptr) return util::fail("AREA: query carries no bounding box");
  const geo::BoundingBox box{area->min_lat, area->min_lon, area->max_lat, area->max_lon};
  if (!std::isfinite(box.min_lat) || !std::isfinite(box.min_lon) || !std::isfinite(box.max_lat) ||
      !std::isfinite(box.max_lon)) {
    return util::fail("AREA: non-finite coordinate");
  }
  if (box.min_lat < -90.0 || box.max_lat > 90.0 || box.min_lon < -180.0 || box.max_lon > 180.0) {
    return util::fail("AREA: coordinate out of range");
  }
  if (box.min_lat > box.max_lat) return util::fail("AREA: inverted latitude span");
  if (box.min_lon > box.max_lon) {
    // BoundingBox does not model antimeridian wrapping (geometry.hpp);
    // accepting such a box would silently return the complement.
    return util::fail("AREA: longitude span wraps the antimeridian");
  }
  return box;
}

dns::Message answer_area(const dns::Message& query, const SpatialView* view,
                         const std::vector<std::shared_ptr<const server::ZoneView>>& zones) {
  const auto& qname = query.questions.at(0).name;
  bool ours = false;
  for (const auto& zone : zones) {
    if (qname.is_subdomain_of(zone->apex())) {
      ours = true;
      break;
    }
  }
  if (!ours) return dns::make_response(query, dns::Rcode::Refused, /*authoritative=*/false);
  auto box = parse_area_query(query);
  if (!box.ok()) return dns::make_response(query, dns::Rcode::FormErr, /*authoritative=*/true);
  auto response = dns::make_response(query, dns::Rcode::NoError, /*authoritative=*/true);
  if (view != nullptr) {
    std::vector<const Device*> matched;
    view->query(box.value(), kMaxAreaAnswers, matched, &qname);
    response.answers.reserve(matched.size());
    for (const auto* dev : matched) response.answers.push_back(dns::make_loc(dev->name, dev->loc));
  }
  return response;
}

}  // namespace sns::spatial
