// area.hpp — the AREA wire protocol: reverse geodetic queries as DNS.
//
// An AREA query is an ordinary DNS query (opcode QUERY, qtype AREA,
// qname = the spatial zone to search) carrying its geodetic bounding
// box as a single AREA record in the additional section — the same
// move EDNS makes with OPT, because question sections cannot carry
// rdata. The answer is a list of LOC records whose owners are the
// matching device names, flowing through the ordinary response path:
// EDNS-aware truncation, TCP retry, the lot. Nothing below the engine
// knows AREA is special.
//
// Validation is strict (§parse_area_query): a malformed box — missing
// or duplicated AREA additional, inverted latitudes, an antimeridian-
// wrapped longitude span (min_lon > max_lon), or out-of-range
// coordinates — is rejected with FORMERR before any index is touched.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dns/message.hpp"
#include "dns/rdata.hpp"
#include "geo/geometry.hpp"
#include "util/result.hpp"

namespace sns::server {
class ZoneView;
}

namespace sns::spatial {

/// Most LOC answers one response will carry. Far beyond this the reply
/// outgrows even TCP's 64 KiB frame; callers wanting "everything in
/// the city" should tile their box.
inline constexpr std::size_t kMaxAreaAnswers = 1000;

/// Build an AREA query: one question (zone, AREA, IN) plus the box as
/// an AREA additional. EDNS is the caller's choice (add_edns after).
dns::Message make_area_query(std::uint16_t id, const dns::Name& zone,
                             const geo::BoundingBox& box);

/// Extract and validate the bounding box of an AREA query. Errors mean
/// the server must answer FORMERR.
util::Result<geo::BoundingBox> parse_area_query(const dns::Message& query);

/// True if `message` is a well-formed-enough candidate: opcode QUERY,
/// exactly one question of qtype AREA. (Box validation is separate —
/// a candidate with a bad box gets FORMERR, a non-candidate is not an
/// AREA query at all.)
bool is_area_query(const dns::Message& message);

class SpatialView;

/// Serve an AREA query from a snapshot's SpatialView: Refused when the
/// qname is under none of the served apexes, FORMERR on a bad box,
/// otherwise NoError with one LOC answer per matching device at or
/// below the qname (capped at kMaxAreaAnswers). A null view (spatial
/// indexing disabled or pre-first-snapshot) answers as if empty.
dns::Message answer_area(const dns::Message& query, const SpatialView* view,
                         const std::vector<std::shared_ptr<const server::ZoneView>>& zones);

}  // namespace sns::spatial
