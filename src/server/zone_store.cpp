#include "server/zone_store.hpp"

#include <random>

namespace sns::server {

namespace {
// splitmix64 finaliser: full avalanche, so even owner names crafted
// for monotone FNV-1a hashes come out with independent-looking
// priorities once the seed is mixed in.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

std::uint64_t NameTree::priority(const Name& owner) {
  // One seed per process: priorities must agree wherever two trees
  // share structure, but an RFC 2136 client who could predict them
  // could degenerate the treap to O(n) depth (linear updates and a
  // recursion/destructor chain deep enough to threaten the stack).
  static const std::uint64_t seed = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) | rd();
  }();
  return mix64(static_cast<std::uint64_t>(owner.hash()) ^ seed);
}

// Sole ownership (use_count 1 on a pointer held by value) proves no
// frozen tree can reach this node, so the running mutation may patch
// it in place — the transient that makes bulk builds and multi-op
// txns run at in-place speed while committed trees stay immutable.
NameTree::TreePtr NameTree::owned(TreePtr n) {
  if (n.use_count() == 1) return n;
  return std::make_shared<TreeNode>(*n);
}

NameTree::TreePtr NameTree::rotate_right(TreePtr t) {
  // Precondition: t and t->left exclusively owned by the caller.
  TreePtr l = std::move(t->left);
  t->left = std::move(l->right);
  l->right = std::move(t);
  return l;
}

NameTree::TreePtr NameTree::rotate_left(TreePtr t) {
  TreePtr r = std::move(t->right);
  t->right = std::move(r->left);
  r->left = std::move(t);
  return r;
}

NameTree::TreePtr NameTree::set_rec(TreePtr t, ZoneNodePtr value, bool& added) {
  if (t == nullptr) {
    added = true;
    auto n = std::make_shared<TreeNode>();
    n->value = std::move(value);
    return n;
  }
  auto cmp = value->owner <=> t->value->owner;
  if (cmp == std::strong_ordering::equal) {
    t = owned(std::move(t));
    t->value = std::move(value);
    return t;
  }
  if (cmp < 0) {
    t = owned(std::move(t));
    t->left = set_rec(std::move(t->left), std::move(value), added);
    // Restore the heap property on the seeded priority. Subtrees
    // returned by set_rec are exclusively owned, so rotations move
    // pointers without further copies.
    if (priority(t->left->value->owner) > priority(t->value->owner))
      return rotate_right(std::move(t));
    return t;
  }
  t = owned(std::move(t));
  t->right = set_rec(std::move(t->right), std::move(value), added);
  if (priority(t->right->value->owner) > priority(t->value->owner))
    return rotate_left(std::move(t));
  return t;
}

NameTree::TreePtr NameTree::merge(TreePtr a, TreePtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (priority(a->value->owner) >= priority(b->value->owner)) {
    a = owned(std::move(a));
    a->right = merge(std::move(a->right), std::move(b));
    return a;
  }
  b = owned(std::move(b));
  b->left = merge(std::move(a), std::move(b->left));
  return b;
}

NameTree::TreePtr NameTree::erase_rec(TreePtr t, const Name& owner, bool& removed) {
  if (t == nullptr) return nullptr;
  auto cmp = owner <=> t->value->owner;
  if (cmp == std::strong_ordering::equal) {
    removed = true;
    // Copy the child pointers out, then drop our reference to the
    // erased node — never move from its members: the node may still
    // be shared with a frozen snapshot, and moving would gut it.
    TreePtr l = t->left;
    TreePtr r = t->right;
    t.reset();
    return merge(std::move(l), std::move(r));
  }
  t = owned(std::move(t));
  if (cmp < 0)
    t->left = erase_rec(std::move(t->left), owner, removed);
  else
    t->right = erase_rec(std::move(t->right), owner, removed);
  return t;
}

void NameTree::set(ZoneNodePtr value) {
  bool added = false;
  root_ = set_rec(std::move(root_), std::move(value), added);
  if (added) ++size_;
}

bool NameTree::erase(const Name& owner) {
  bool removed = false;
  root_ = erase_rec(std::move(root_), owner, removed);
  if (removed) --size_;
  return removed;
}

const ZoneNode* NameTree::lower_bound(const Name& key) const noexcept {
  const TreeNode* t = root_.get();
  const ZoneNode* best = nullptr;
  while (t != nullptr) {
    if (t->value->owner < key) {
      t = t->right.get();
    } else {
      best = t->value.get();
      t = t->left.get();
    }
  }
  return best;
}

}  // namespace sns::server
