#include "server/transfer.hpp"

#include "dns/serial.hpp"

namespace sns::server {

using dns::Message;
using dns::Rcode;
using util::fail;
using util::Result;

Message make_transfer_request(std::uint16_t id, const Name& zone_apex,
                              std::uint32_t have_serial) {
  Message msg;
  msg.header.id = id;
  msg.header.rd = false;
  msg.questions.push_back(dns::Question{zone_apex, kAxfrType, dns::RRClass::IN});
  // IXFR-style: current SOA in the authority section.
  auto soa = dns::make_soa(zone_apex, zone_apex, have_serial);
  msg.authorities.push_back(std::move(soa));
  return msg;
}

Message serve_transfer(const Zone& zone, const Message& request) {
  if (request.questions.size() != 1 || request.questions.front().type != kAxfrType)
    return dns::make_response(request, Rcode::FormErr, false);
  if (!(request.questions.front().name == zone.apex()))
    return dns::make_response(request, Rcode::NotAuth, false);

  // Serial gate: if the secondary is current, answer empty NOERROR.
  std::uint32_t have_serial = 0;
  for (const auto& rr : request.authorities)
    if (const auto* soa = std::get_if<dns::SoaData>(&rr.rdata)) have_serial = soa->serial;
  Message response = dns::make_response(request, Rcode::NoError, true);
  // RFC 1982 comparison, not plain >=: a primary whose serial wrapped
  // past 2^32 must not tell every secondary it is eternally current.
  if (dns::serial_ge(have_serial, zone.serial())) return response;

  // Full zone, SOA first and repeated last (AXFR framing).
  auto records = zone.all_records();
  dns::ResourceRecord apex_soa;
  bool have_soa = false;
  for (const auto& rr : records) {
    if (rr.type == RRType::SOA && rr.name == zone.apex()) {
      apex_soa = rr;
      have_soa = true;
      break;
    }
  }
  if (!have_soa) return dns::make_response(request, Rcode::ServFail, true);
  response.answers.push_back(apex_soa);
  for (auto& rr : records)
    if (!(rr.type == RRType::SOA && rr.name == zone.apex()))
      response.answers.push_back(std::move(rr));
  response.answers.push_back(apex_soa);
  return response;
}

Result<bool> apply_transfer(Zone& zone, const Message& response) {
  if (response.header.rcode != Rcode::NoError)
    return fail("transfer: primary answered " + dns::to_string(response.header.rcode));
  if (response.answers.empty()) return false;  // already current
  if (response.answers.size() < 2 || response.answers.front().type != RRType::SOA ||
      response.answers.back().type != RRType::SOA)
    return fail("transfer: missing AXFR SOA framing");
  if (!(response.answers.front() == response.answers.back()))
    return fail("transfer: first/last SOA mismatch (truncated transfer?)");

  std::vector<dns::ResourceRecord> records(response.answers.begin(),
                                           response.answers.end() - 1);
  auto built = build_zone_view(zone.apex(), std::move(records));
  if (!built.ok()) return built.error();
  zone.replace(std::move(built).value());
  return true;
}

Result<bool> refresh_secondary(net::Network& network, net::NodeId secondary_node,
                               net::NodeId primary_node, Zone& secondary) {
  Message request = make_transfer_request(0x5151, secondary.apex(), secondary.serial());
  auto wire = request.encode();
  auto exchanged = network.exchange(secondary_node, primary_node, std::span(wire));
  if (!exchanged.ok()) return exchanged.error();
  auto response = Message::decode(std::span(exchanged.value().response));
  if (!response.ok()) return fail("transfer: malformed response");
  return apply_transfer(secondary, response.value());
}

}  // namespace sns::server
