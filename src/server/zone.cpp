#include "server/zone.hpp"

#include <algorithm>

namespace sns::server {

using util::fail;
using util::Status;

Zone::Zone(Name apex, Name primary_ns) : apex_(std::move(apex)) {
  auto soa = dns::make_soa(apex_, primary_ns, 1);
  node_for(apex_)[RRType::SOA] = {std::move(soa)};
}

const Zone::NodeMap* Zone::node_of(std::string_view packed_owner) const {
  auto it = index_.find(packed_owner);
  return it == index_.end() ? nullptr : it->second;
}

Zone::NodeMap& Zone::node_for(const Name& owner) {
  auto [it, inserted] = nodes_.try_emplace(owner);
  if (inserted) index_.emplace(it->first.packed(), &it->second);
  return it->second;
}

void Zone::erase_node(NodeStore::iterator it) {
  index_.erase(it->first.packed());
  nodes_.erase(it);
}

void Zone::rebuild_index() {
  index_.clear();
  index_.reserve(nodes_.size());
  for (auto& [owner, node] : nodes_) index_.emplace(owner.packed(), &node);
}

Status Zone::add(ResourceRecord rr) {
  if (!rr.name.is_subdomain_of(apex_))
    return fail("zone " + apex_.to_string() + ": record " + rr.name.to_string() +
                " outside zone");
  auto& node = node_for(rr.name);
  if (rr.type == RRType::CNAME) {
    // CNAME must be alone at a node (ignoring DNSSEC metadata).
    for (const auto& [type, rrset] : node)
      if (type != RRType::CNAME && type != RRType::RRSIG && !rrset.empty())
        return fail("zone: CNAME cannot coexist with other data at " + rr.name.to_string());
  } else if (node.contains(RRType::CNAME) && rr.type != RRType::RRSIG) {
    return fail("zone: data cannot be added beside CNAME at " + rr.name.to_string());
  }
  auto& rrset = node[rr.type];
  // De-duplicate identical rdata (RFC 2136 §4 semantics).
  for (const auto& existing : rrset)
    if (existing.rdata == rr.rdata) return util::ok_status();
  rrset.push_back(std::move(rr));
  return util::ok_status();
}

std::size_t Zone::remove_rrset(const Name& owner, RRType type) {
  auto node = nodes_.find(owner);
  if (node == nodes_.end()) return 0;
  auto it = node->second.find(type);
  if (it == node->second.end()) return 0;
  std::size_t n = it->second.size();
  node->second.erase(it);
  if (node->second.empty()) erase_node(node);
  return n;
}

std::size_t Zone::remove_name(const Name& owner) {
  auto node = nodes_.find(owner);
  if (node == nodes_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [type, rrset] : node->second) n += rrset.size();
  erase_node(node);
  return n;
}

bool Zone::remove_record(const ResourceRecord& rr) {
  auto node = nodes_.find(rr.name);
  if (node == nodes_.end()) return false;
  auto it = node->second.find(rr.type);
  if (it == node->second.end()) return false;
  auto& rrset = it->second;
  auto removed = std::remove_if(rrset.begin(), rrset.end(), [&](const ResourceRecord& existing) {
    return existing.rdata == rr.rdata;
  });
  bool any = removed != rrset.end();
  rrset.erase(removed, rrset.end());
  if (rrset.empty()) node->second.erase(it);
  if (node->second.empty()) erase_node(node);
  return any;
}

const RRset* Zone::find(const Name& owner, RRType type) const {
  const NodeMap* node = node_of(owner.packed());
  if (node == nullptr) return nullptr;
  auto it = node->find(type);
  return it == node->end() ? nullptr : &it->second;
}

bool Zone::name_exists(const Name& owner) const {
  // A name "exists" if it owns records (hash probe) or is an empty
  // non-terminal — some descendant owns records (ordered-map walk).
  if (node_of(owner.packed()) != nullptr) return true;
  auto it = nodes_.lower_bound(owner);
  if (it == nodes_.end()) return false;
  return it->first.is_subdomain_of(owner);
}

std::vector<RRType> Zone::types_at(const Name& owner) const {
  std::vector<RRType> out;
  const NodeMap* node = node_of(owner.packed());
  if (node == nullptr) return out;
  for (const auto& [type, rrset] : *node)
    if (!rrset.empty()) out.push_back(type);
  return out;
}

Zone::Lookup Zone::lookup(const Name& qname, RRType qtype) const {
  Lookup result;
  if (!qname.is_subdomain_of(apex_)) {
    result.kind = Lookup::Kind::NotZone;
    return result;
  }
  const std::size_t below_apex = qname.label_count() - apex_.label_count();

  // 1. Delegation cut: probe every ancestor of qname strictly below the
  //    apex, topmost first, by packed suffix (label index i = leftmost
  //    retained label; i == 0 is qname itself). An NS set there (other
  //    than qname==cut with qtype==NS) is a referral.
  for (std::size_t i = below_apex; i-- > 0;) {
    const NodeMap* node = node_of(qname.packed_suffix(i));
    if (node == nullptr) continue;
    auto ns_it = node->find(RRType::NS);
    if (ns_it != node->end() && !(i == 0 && qtype == RRType::NS)) {
      const RRset& ns = ns_it->second;
      result.kind = Lookup::Kind::Delegation;
      result.records = ns;
      // Glue: in-zone addresses of the delegated nameservers.
      for (const auto& rr : ns) {
        if (const auto* data = std::get_if<dns::NsData>(&rr.rdata)) {
          for (RRType glue_type : {RRType::A, RRType::AAAA}) {
            if (const RRset* glue = find(data->nameserver, glue_type))
              result.additionals.insert(result.additionals.end(), glue->begin(), glue->end());
          }
        }
      }
      return result;
    }
  }

  // 2. Exact node.
  if (const NodeMap* node = node_of(qname.packed())) {
    if (qtype == RRType::ANY) {
      for (const auto& [type, rrset] : *node)
        result.records.insert(result.records.end(), rrset.begin(), rrset.end());
      result.kind = result.records.empty() ? Lookup::Kind::NoData : Lookup::Kind::Success;
      return result;
    }
    auto exact = node->find(qtype);
    if (exact != node->end() && !exact->second.empty()) {
      result.kind = Lookup::Kind::Success;
      result.records = exact->second;
      return result;
    }
    auto cname = node->find(RRType::CNAME);
    if (cname != node->end() && !cname->second.empty()) {
      result.kind = Lookup::Kind::CName;
      result.records = cname->second;
      return result;
    }
    result.kind = Lookup::Kind::NoData;
    return result;
  }

  // 3. Empty non-terminal => NODATA, not NXDOMAIN.
  if (name_exists(qname)) {
    result.kind = Lookup::Kind::NoData;
    return result;
  }

  // 4. Wildcard synthesis: *.<ancestor>, closest ancestor first —
  //    probed as packed "\1*" + suffix keys, no Name construction.
  std::string star_key;
  for (std::size_t i = 0; i < below_apex; ++i) {
    star_key.assign("\001*", 2);
    star_key.append(qname.packed_suffix(i + 1));
    const NodeMap* node = node_of(star_key);
    if (node == nullptr) continue;
    auto wild = node->find(qtype);
    if (wild != node->end()) {
      result.kind = Lookup::Kind::Success;
      result.wildcard = true;
      for (ResourceRecord rr : wild->second) {
        rr.name = qname;  // synthesise the owner
        result.records.push_back(std::move(rr));
      }
      return result;
    }
    auto wild_cname = node->find(RRType::CNAME);
    if (wild_cname != node->end()) {
      result.kind = Lookup::Kind::CName;
      result.wildcard = true;
      for (ResourceRecord rr : wild_cname->second) {
        rr.name = qname;
        result.records.push_back(std::move(rr));
      }
      return result;
    }
  }

  result.kind = Lookup::Kind::NxDomain;
  return result;
}

std::vector<ResourceRecord> Zone::all_records() const {
  std::vector<ResourceRecord> out;
  for (const auto& [owner, types] : nodes_)
    for (const auto& [type, rrset] : types)
      out.insert(out.end(), rrset.begin(), rrset.end());
  return out;
}

std::vector<std::pair<Name, std::vector<RRType>>> Zone::all_names() const {
  std::vector<std::pair<Name, std::vector<RRType>>> out;
  out.reserve(nodes_.size());
  for (const auto& [owner, types] : nodes_) {
    std::vector<RRType> list;
    for (const auto& [type, rrset] : types)
      if (!rrset.empty()) list.push_back(type);
    if (!list.empty()) out.emplace_back(owner, std::move(list));
  }
  return out;
}

std::size_t Zone::record_count() const {
  std::size_t n = 0;
  for (const auto& [owner, types] : nodes_)
    for (const auto& [type, rrset] : types) n += rrset.size();
  return n;
}

std::uint32_t Zone::serial() const {
  const RRset* soa = find(apex_, RRType::SOA);
  if (soa == nullptr || soa->empty()) return 0;
  const auto* data = std::get_if<dns::SoaData>(&soa->front().rdata);
  return data == nullptr ? 0 : data->serial;
}

void Zone::bump_serial() {
  auto node = nodes_.find(apex_);
  if (node == nodes_.end()) return;
  auto it = node->second.find(RRType::SOA);
  if (it == node->second.end() || it->second.empty()) return;
  if (auto* data = std::get_if<dns::SoaData>(&it->second.front().rdata)) ++data->serial;
}

Status Zone::load(std::vector<ResourceRecord> records) {
  NodeStore fresh;
  for (auto& rr : records) {
    if (!rr.name.is_subdomain_of(apex_))
      return fail("zone load: record " + rr.name.to_string() + " outside zone");
    fresh[rr.name][rr.type].push_back(std::move(rr));
  }
  if (!fresh.contains(apex_) || !fresh[apex_].contains(RRType::SOA))
    return fail("zone load: missing SOA at apex");
  nodes_ = std::move(fresh);
  rebuild_index();
  return util::ok_status();
}

}  // namespace sns::server
