#include "server/zone.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sns::server {

using util::fail;
using util::Status;

// ---------------------------------------------------------------- ZoneView

const RRset* ZoneView::find(const Name& owner, RRType type) const {
  const ZoneNode* node = node_of(owner.packed(), owner.hash());
  if (node == nullptr) return nullptr;
  auto it = node->types.find(type);
  return it == node->types.end() ? nullptr : &it->second;
}

bool ZoneView::name_exists(const Name& owner) const {
  // A name "exists" if it owns records (hash probe) or is an empty
  // non-terminal — some descendant owns records (ordered-tree walk).
  if (node_of(owner.packed(), owner.hash()) != nullptr) return true;
  const ZoneNode* next = tree_.lower_bound(owner);
  return next != nullptr && next->owner.is_subdomain_of(owner);
}

std::vector<RRType> ZoneView::types_at(const Name& owner) const {
  std::vector<RRType> out;
  const ZoneNode* node = node_of(owner.packed(), owner.hash());
  if (node == nullptr) return out;
  for (const auto& [type, rrset] : node->types)
    if (!rrset.empty()) out.push_back(type);
  return out;
}

ZoneView::Lookup ZoneView::lookup(const Name& qname, RRType qtype) const {
  Lookup result;
  if (!qname.is_subdomain_of(apex_)) {
    result.kind = Lookup::Kind::NotZone;
    return result;
  }
  const std::size_t below_apex = qname.label_count() - apex_.label_count();

  // 1. Delegation cut: probe every ancestor of qname strictly below the
  //    apex, topmost first, by packed suffix (label index i = leftmost
  //    retained label; i == 0 is qname itself). An NS set there (other
  //    than qname==cut with qtype==NS) is a referral.
  for (std::size_t i = below_apex; i-- > 0;) {
    std::string_view suffix = qname.packed_suffix(i);
    const ZoneNode* node = node_of(suffix, util::fnv1a(suffix));
    if (node == nullptr) continue;
    auto ns_it = node->types.find(RRType::NS);
    if (ns_it != node->types.end() && !(i == 0 && qtype == RRType::NS)) {
      const RRset& ns = ns_it->second;
      result.kind = Lookup::Kind::Delegation;
      result.records = ns;
      // Glue: in-zone addresses of the delegated nameservers.
      for (const auto& rr : ns) {
        if (const auto* data = std::get_if<dns::NsData>(&rr.rdata)) {
          for (RRType glue_type : {RRType::A, RRType::AAAA}) {
            if (const RRset* glue = find(data->nameserver, glue_type))
              result.additionals.insert(result.additionals.end(), glue->begin(), glue->end());
          }
        }
      }
      return result;
    }
  }

  // 2. Exact node.
  if (const ZoneNode* node = node_of(qname.packed(), qname.hash())) {
    if (qtype == RRType::ANY) {
      for (const auto& [type, rrset] : node->types)
        result.records.insert(result.records.end(), rrset.begin(), rrset.end());
      result.kind = result.records.empty() ? Lookup::Kind::NoData : Lookup::Kind::Success;
      return result;
    }
    auto exact = node->types.find(qtype);
    if (exact != node->types.end() && !exact->second.empty()) {
      result.kind = Lookup::Kind::Success;
      result.records = exact->second;
      return result;
    }
    auto cname = node->types.find(RRType::CNAME);
    if (cname != node->types.end() && !cname->second.empty()) {
      result.kind = Lookup::Kind::CName;
      result.records = cname->second;
      return result;
    }
    result.kind = Lookup::Kind::NoData;
    return result;
  }

  // 3. Empty non-terminal => NODATA, not NXDOMAIN.
  if (name_exists(qname)) {
    result.kind = Lookup::Kind::NoData;
    return result;
  }

  // 4. Wildcard synthesis: *.<ancestor>, closest ancestor first —
  //    probed as packed "\1*" + suffix keys, no Name construction.
  std::string star_key;
  for (std::size_t i = 0; i < below_apex; ++i) {
    star_key.assign("\001*", 2);
    star_key.append(qname.packed_suffix(i + 1));
    const ZoneNode* node = node_of(star_key, util::fnv1a(star_key));
    if (node == nullptr) continue;
    auto wild = node->types.find(qtype);
    if (wild != node->types.end()) {
      result.kind = Lookup::Kind::Success;
      result.wildcard = true;
      for (ResourceRecord rr : wild->second) {
        rr.name = qname;  // synthesise the owner
        result.records.push_back(std::move(rr));
      }
      return result;
    }
    auto wild_cname = node->types.find(RRType::CNAME);
    if (wild_cname != node->types.end()) {
      result.kind = Lookup::Kind::CName;
      result.wildcard = true;
      for (ResourceRecord rr : wild_cname->second) {
        rr.name = qname;
        result.records.push_back(std::move(rr));
      }
      return result;
    }
  }

  result.kind = Lookup::Kind::NxDomain;
  return result;
}

std::vector<ResourceRecord> ZoneView::all_records() const {
  std::vector<ResourceRecord> out;
  out.reserve(record_count_);
  tree_.for_each([&](const ZoneNode& node) {
    for (const auto& [type, rrset] : node.types)
      out.insert(out.end(), rrset.begin(), rrset.end());
  });
  return out;
}

std::vector<std::pair<Name, std::vector<RRType>>> ZoneView::all_names() const {
  std::vector<std::pair<Name, std::vector<RRType>>> out;
  out.reserve(tree_.size());
  tree_.for_each([&](const ZoneNode& node) {
    std::vector<RRType> list;
    for (const auto& [type, rrset] : node.types)
      if (!rrset.empty()) list.push_back(type);
    if (!list.empty()) out.emplace_back(node.owner, std::move(list));
  });
  return out;
}

std::uint32_t ZoneView::serial() const {
  const RRset* soa = find(apex_, RRType::SOA);
  if (soa == nullptr || soa->empty()) return 0;
  const auto* data = std::get_if<dns::SoaData>(&soa->front().rdata);
  return data == nullptr ? 0 : data->serial;
}

// -------------------------------------------------------------- ZoneBuilder

Status ZoneBuilder::add(ResourceRecord rr) {
  if (!rr.name.is_subdomain_of(apex_))
    return fail("zone load: record " + rr.name.to_string() + " outside zone");
  auto& rrset = staging_[rr.name][rr.type];
  rrset.push_back(std::move(rr));
  return util::ok_status();
}

util::Result<ZoneViewPtr> ZoneBuilder::build() && {
  auto apex_it = staging_.find(apex_);
  if (apex_it == staging_.end() || !apex_it->second.contains(RRType::SOA))
    return fail("zone load: missing SOA at apex");
  auto view = std::shared_ptr<ZoneView>(new ZoneView());
  view->apex_ = std::move(apex_);
  for (auto& [owner, types] : staging_) {
    auto node = std::make_shared<ZoneNode>();
    node->owner = owner;
    node->types = std::move(types);
    view->record_count_ += node->record_count();
    ZoneNodePtr frozen = std::move(node);
    view->tree_.set(frozen);
    view->index_.set(std::move(frozen));
  }
  return ZoneViewPtr(std::move(view));
}

util::Result<ZoneViewPtr> build_zone_view(Name apex, std::vector<ResourceRecord> records) {
  ZoneBuilder builder(std::move(apex));
  for (auto& rr : records)
    if (auto status = builder.add(std::move(rr)); !status.ok()) return status.error();
  return std::move(builder).build();
}

// ----------------------------------------------------------------- ZoneTxn

ZoneTxn::ZoneTxn(ZoneViewPtr base)
    : base_(std::move(base)),
      apex_(base_->apex_),
      tree_(base_->tree_),
      index_(base_->index_),
      record_count_(base_->record_count_) {}

const ZoneNode* ZoneTxn::node_of(const Name& owner) const noexcept {
  return index_.find(owner.packed(), owner.hash());
}

void ZoneTxn::set_node(ZoneNode node) {
  ZoneNodePtr frozen = std::make_shared<const ZoneNode>(std::move(node));
  tree_.set(frozen);
  index_.set(std::move(frozen));
}

void ZoneTxn::erase_node(const Name& owner) {
  tree_.erase(owner);
  index_.erase(owner.packed(), owner.hash());
}

Status ZoneTxn::add(ResourceRecord rr) {
  if (!rr.name.is_subdomain_of(apex_))
    return fail("zone " + apex_.to_string() + ": record " + rr.name.to_string() +
                " outside zone");
  const ZoneNode* existing = node_of(rr.name);
  if (rr.type == RRType::CNAME) {
    // CNAME must be alone at a node (ignoring DNSSEC metadata).
    if (existing != nullptr) {
      for (const auto& [type, rrset] : existing->types)
        if (type != RRType::CNAME && type != RRType::RRSIG && !rrset.empty())
          return fail("zone: CNAME cannot coexist with other data at " + rr.name.to_string());
    }
  } else if (existing != nullptr && existing->types.contains(RRType::CNAME) &&
             rr.type != RRType::RRSIG) {
    return fail("zone: data cannot be added beside CNAME at " + rr.name.to_string());
  }
  if (existing != nullptr) {
    auto it = existing->types.find(rr.type);
    if (it != existing->types.end()) {
      // De-duplicate identical rdata (RFC 2136 §4 semantics). The op
      // still counts as accepted: update callers bump on acceptance.
      for (const auto& have : it->second) {
        if (have.rdata == rr.rdata) {
          dirty_ = true;
          return util::ok_status();
        }
      }
    }
  }
  Name owner = rr.name;
  RRType type = rr.type;
  ZoneNode node = existing != nullptr ? *existing : ZoneNode{owner, {}};
  node.types[type].push_back(std::move(rr));
  set_node(std::move(node));
  ++record_count_;
  touched_.insert(std::move(owner));
  if (type == RRType::NS) ns_touched_ = true;
  dirty_ = true;
  return util::ok_status();
}

std::size_t ZoneTxn::remove_rrset(const Name& owner, RRType type) {
  const ZoneNode* existing = node_of(owner);
  if (existing == nullptr) return 0;
  auto it = existing->types.find(type);
  if (it == existing->types.end()) return 0;
  std::size_t n = it->second.size();
  if (existing->types.size() == 1) {
    erase_node(owner);
  } else {
    ZoneNode node = *existing;
    node.types.erase(type);
    set_node(std::move(node));
  }
  record_count_ -= n;
  touched_.insert(owner);
  if (type == RRType::NS) ns_touched_ = true;
  dirty_ = true;
  return n;
}

std::size_t ZoneTxn::remove_name(const Name& owner) {
  const ZoneNode* existing = node_of(owner);
  if (existing == nullptr) return 0;
  std::size_t n = existing->record_count();
  if (existing->types.contains(RRType::NS)) ns_touched_ = true;
  erase_node(owner);
  record_count_ -= n;
  touched_.insert(owner);
  dirty_ = true;
  return n;
}

bool ZoneTxn::remove_record(const ResourceRecord& rr) {
  const ZoneNode* existing = node_of(rr.name);
  if (existing == nullptr) return false;
  auto it = existing->types.find(rr.type);
  if (it == existing->types.end()) return false;
  std::size_t matches = 0;
  for (const auto& have : it->second)
    if (have.rdata == rr.rdata) ++matches;
  if (matches == 0) return false;
  ZoneNode node = *existing;
  auto& rrset = node.types[rr.type];
  rrset.erase(std::remove_if(rrset.begin(), rrset.end(),
                             [&](const ResourceRecord& have) { return have.rdata == rr.rdata; }),
              rrset.end());
  if (rrset.empty()) node.types.erase(rr.type);
  if (node.types.empty())
    erase_node(rr.name);
  else
    set_node(std::move(node));
  record_count_ -= matches;
  touched_.insert(rr.name);
  if (rr.type == RRType::NS) ns_touched_ = true;
  dirty_ = true;
  return true;
}

const RRset* ZoneTxn::find(const Name& owner, RRType type) const {
  const ZoneNode* node = node_of(owner);
  if (node == nullptr) return nullptr;
  auto it = node->types.find(type);
  return it == node->types.end() ? nullptr : &it->second;
}

bool ZoneTxn::name_exists(const Name& owner) const {
  if (node_of(owner) != nullptr) return true;
  const ZoneNode* next = tree_.lower_bound(owner);
  return next != nullptr && next->owner.is_subdomain_of(owner);
}

std::vector<RRType> ZoneTxn::types_at(const Name& owner) const {
  std::vector<RRType> out;
  const ZoneNode* node = node_of(owner);
  if (node == nullptr) return out;
  for (const auto& [type, rrset] : node->types)
    if (!rrset.empty()) out.push_back(type);
  return out;
}

ZoneTxn::Commit ZoneTxn::commit(Serial policy) && {
  if (forced_bump_ || (policy == Serial::BumpOnChange && dirty_)) {
    if (const ZoneNode* apex_node = node_of(apex_)) {
      auto it = apex_node->types.find(RRType::SOA);
      if (it != apex_node->types.end() && !it->second.empty()) {
        ZoneNode node = *apex_node;
        if (auto* data = std::get_if<dns::SoaData>(&node.types[RRType::SOA].front().rdata)) {
          ++data->serial;
          set_node(std::move(node));
          touched_.insert(apex_);
          dirty_ = true;
        }
      }
    }
  }
  auto view = std::shared_ptr<ZoneView>(new ZoneView());
  view->apex_ = std::move(apex_);
  view->tree_ = std::move(tree_);
  view->index_ = std::move(index_);
  view->record_count_ = record_count_;
  Commit result;
  result.view = std::move(view);
  result.touched.assign(touched_.begin(), touched_.end());
  result.ns_touched = ns_touched_;
  result.changed = dirty_;
  return result;
}

// -------------------------------------------------------------------- Zone

namespace {
ZoneViewPtr fresh_view(const Name& apex, const Name& primary_ns) {
  ZoneBuilder builder(apex);
  // The synthesised SOA cannot fail validation; assert via value().
  (void)builder.add(dns::make_soa(apex, primary_ns, 1));
  return std::move(builder).build().value();
}
}  // namespace

Zone::Zone(Name apex, Name primary_ns) : view_(fresh_view(apex, primary_ns)) {}

Zone::Zone(ZoneViewPtr view) : view_(std::move(view)) {}

void Zone::fold(const ZoneTxn::Commit& commit) {
  ++log_.commits;
  log_.ns_touched = log_.ns_touched || commit.ns_touched;
  if (log_.overflow) return;
  log_.touched.insert(commit.touched.begin(), commit.touched.end());
  if (log_.touched.size() > kMaxTouched) {
    log_.touched.clear();
    log_.overflow = true;
  }
}

ZoneTxn::Commit Zone::commit(ZoneTxn txn, ZoneTxn::Serial policy) {
  // A txn opened on anything but the current view would, once
  // installed below, silently drop every commit made since it was
  // opened (lost update). The facade is single-threaded, so a stale
  // base is always caller misuse — catch it loudly.
  assert(txn.base() == view_ && "ZoneTxn committed against a stale Zone view");
  auto result = std::move(txn).commit(policy);
  view_ = result.view;
  fold(result);
  return result;
}

void Zone::replace(ZoneViewPtr view) {
  view_ = std::move(view);
  ++log_.commits;
  log_.touched.clear();
  log_.overflow = true;
}

Zone::CommitLog Zone::take_commit_log() {
  CommitLog out = std::move(log_);
  log_ = CommitLog{};
  return out;
}

util::Status Zone::add(ResourceRecord rr) {
  ZoneTxn txn(view_);
  auto status = txn.add(std::move(rr));
  if (status.ok()) (void)commit(std::move(txn), ZoneTxn::Serial::Keep);
  return status;
}

std::size_t Zone::remove_rrset(const Name& owner, RRType type) {
  ZoneTxn txn(view_);
  std::size_t n = txn.remove_rrset(owner, type);
  if (n > 0) (void)commit(std::move(txn), ZoneTxn::Serial::Keep);
  return n;
}

std::size_t Zone::remove_name(const Name& owner) {
  ZoneTxn txn(view_);
  std::size_t n = txn.remove_name(owner);
  if (n > 0) (void)commit(std::move(txn), ZoneTxn::Serial::Keep);
  return n;
}

bool Zone::remove_record(const ResourceRecord& rr) {
  ZoneTxn txn(view_);
  bool any = txn.remove_record(rr);
  if (any) (void)commit(std::move(txn), ZoneTxn::Serial::Keep);
  return any;
}

}  // namespace sns::server
