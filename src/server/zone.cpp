#include "server/zone.hpp"

#include <algorithm>

namespace sns::server {

using util::fail;
using util::Status;

Zone::Zone(Name apex, Name primary_ns) : apex_(std::move(apex)) {
  auto soa = dns::make_soa(apex_, primary_ns, 1);
  nodes_[apex_][RRType::SOA] = {std::move(soa)};
}

Status Zone::add(ResourceRecord rr) {
  if (!rr.name.is_subdomain_of(apex_))
    return fail("zone " + apex_.to_string() + ": record " + rr.name.to_string() +
                " outside zone");
  auto& node = nodes_[rr.name];
  if (rr.type == RRType::CNAME) {
    // CNAME must be alone at a node (ignoring DNSSEC metadata).
    for (const auto& [type, rrset] : node)
      if (type != RRType::CNAME && type != RRType::RRSIG && !rrset.empty())
        return fail("zone: CNAME cannot coexist with other data at " + rr.name.to_string());
  } else if (node.contains(RRType::CNAME) && rr.type != RRType::RRSIG) {
    return fail("zone: data cannot be added beside CNAME at " + rr.name.to_string());
  }
  auto& rrset = node[rr.type];
  // De-duplicate identical rdata (RFC 2136 §4 semantics).
  for (const auto& existing : rrset)
    if (existing.rdata == rr.rdata) return util::ok_status();
  rrset.push_back(std::move(rr));
  return util::ok_status();
}

std::size_t Zone::remove_rrset(const Name& owner, RRType type) {
  auto node = nodes_.find(owner);
  if (node == nodes_.end()) return 0;
  auto it = node->second.find(type);
  if (it == node->second.end()) return 0;
  std::size_t n = it->second.size();
  node->second.erase(it);
  if (node->second.empty()) nodes_.erase(node);
  return n;
}

std::size_t Zone::remove_name(const Name& owner) {
  auto node = nodes_.find(owner);
  if (node == nodes_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [type, rrset] : node->second) n += rrset.size();
  nodes_.erase(node);
  return n;
}

bool Zone::remove_record(const ResourceRecord& rr) {
  auto node = nodes_.find(rr.name);
  if (node == nodes_.end()) return false;
  auto it = node->second.find(rr.type);
  if (it == node->second.end()) return false;
  auto& rrset = it->second;
  auto removed = std::remove_if(rrset.begin(), rrset.end(), [&](const ResourceRecord& existing) {
    return existing.rdata == rr.rdata;
  });
  bool any = removed != rrset.end();
  rrset.erase(removed, rrset.end());
  if (rrset.empty()) node->second.erase(it);
  if (node->second.empty()) nodes_.erase(node);
  return any;
}

const RRset* Zone::find(const Name& owner, RRType type) const {
  auto node = nodes_.find(owner);
  if (node == nodes_.end()) return nullptr;
  auto it = node->second.find(type);
  return it == node->second.end() ? nullptr : &it->second;
}

bool Zone::name_exists(const Name& owner) const {
  // A name "exists" if it owns records or is an empty non-terminal
  // (some descendant owns records).
  auto it = nodes_.lower_bound(owner);
  if (it == nodes_.end()) return false;
  return it->first == owner || it->first.is_subdomain_of(owner);
}

std::vector<RRType> Zone::types_at(const Name& owner) const {
  std::vector<RRType> out;
  auto node = nodes_.find(owner);
  if (node == nodes_.end()) return out;
  for (const auto& [type, rrset] : node->second)
    if (!rrset.empty()) out.push_back(type);
  return out;
}

Zone::Lookup Zone::lookup(const Name& qname, RRType qtype) const {
  Lookup result;
  if (!qname.is_subdomain_of(apex_)) {
    result.kind = Lookup::Kind::NotZone;
    return result;
  }

  // 1. Delegation cut: walk ancestors of qname strictly below the apex,
  //    topmost first; an NS set there (other than at qname==cut with
  //    qtype==NS? — referral anyway per RFC 1034) is a referral.
  std::vector<Name> ancestors;
  for (Name n = qname; n.label_count() > apex_.label_count(); n = n.parent())
    ancestors.push_back(n);
  std::reverse(ancestors.begin(), ancestors.end());  // topmost first
  for (const auto& ancestor : ancestors) {
    const RRset* ns = find(ancestor, RRType::NS);
    if (ns != nullptr && !(ancestor == qname && qtype == RRType::NS)) {
      result.kind = Lookup::Kind::Delegation;
      result.records = *ns;
      // Glue: in-zone addresses of the delegated nameservers.
      for (const auto& rr : *ns) {
        if (const auto* data = std::get_if<dns::NsData>(&rr.rdata)) {
          for (RRType glue_type : {RRType::A, RRType::AAAA}) {
            if (const RRset* glue = find(data->nameserver, glue_type))
              result.additionals.insert(result.additionals.end(), glue->begin(), glue->end());
          }
        }
      }
      return result;
    }
  }

  // 2. Exact node.
  auto node = nodes_.find(qname);
  if (node != nodes_.end()) {
    auto exact = node->second.find(qtype);
    if (qtype == RRType::ANY) {
      for (const auto& [type, rrset] : node->second)
        result.records.insert(result.records.end(), rrset.begin(), rrset.end());
      result.kind = result.records.empty() ? Lookup::Kind::NoData : Lookup::Kind::Success;
      return result;
    }
    if (exact != node->second.end() && !exact->second.empty()) {
      result.kind = Lookup::Kind::Success;
      result.records = exact->second;
      return result;
    }
    auto cname = node->second.find(RRType::CNAME);
    if (cname != node->second.end() && !cname->second.empty()) {
      result.kind = Lookup::Kind::CName;
      result.records = cname->second;
      return result;
    }
    result.kind = Lookup::Kind::NoData;
    return result;
  }

  // 3. Empty non-terminal => NODATA, not NXDOMAIN.
  if (name_exists(qname)) {
    result.kind = Lookup::Kind::NoData;
    return result;
  }

  // 4. Wildcard synthesis: *.<closest enclosing existing name>.
  for (Name n = qname; n.label_count() > apex_.label_count(); n = n.parent()) {
    auto star = n.parent().prepend("*");
    if (!star.ok()) break;
    const RRset* wild = find(star.value(), qtype);
    if (wild != nullptr) {
      result.kind = Lookup::Kind::Success;
      result.wildcard = true;
      for (ResourceRecord rr : *wild) {
        rr.name = qname;  // synthesise the owner
        result.records.push_back(std::move(rr));
      }
      return result;
    }
    const RRset* wild_cname = find(star.value(), RRType::CNAME);
    if (wild_cname != nullptr) {
      result.kind = Lookup::Kind::CName;
      result.wildcard = true;
      for (ResourceRecord rr : *wild_cname) {
        rr.name = qname;
        result.records.push_back(std::move(rr));
      }
      return result;
    }
  }

  result.kind = Lookup::Kind::NxDomain;
  return result;
}

std::vector<ResourceRecord> Zone::all_records() const {
  std::vector<ResourceRecord> out;
  for (const auto& [owner, types] : nodes_)
    for (const auto& [type, rrset] : types)
      out.insert(out.end(), rrset.begin(), rrset.end());
  return out;
}

std::vector<std::pair<Name, std::vector<RRType>>> Zone::all_names() const {
  std::vector<std::pair<Name, std::vector<RRType>>> out;
  out.reserve(nodes_.size());
  for (const auto& [owner, types] : nodes_) {
    std::vector<RRType> list;
    for (const auto& [type, rrset] : types)
      if (!rrset.empty()) list.push_back(type);
    if (!list.empty()) out.emplace_back(owner, std::move(list));
  }
  return out;
}

std::size_t Zone::record_count() const {
  std::size_t n = 0;
  for (const auto& [owner, types] : nodes_)
    for (const auto& [type, rrset] : types) n += rrset.size();
  return n;
}

std::uint32_t Zone::serial() const {
  const RRset* soa = find(apex_, RRType::SOA);
  if (soa == nullptr || soa->empty()) return 0;
  const auto* data = std::get_if<dns::SoaData>(&soa->front().rdata);
  return data == nullptr ? 0 : data->serial;
}

void Zone::bump_serial() {
  auto node = nodes_.find(apex_);
  if (node == nodes_.end()) return;
  auto it = node->second.find(RRType::SOA);
  if (it == node->second.end() || it->second.empty()) return;
  if (auto* data = std::get_if<dns::SoaData>(&it->second.front().rdata)) ++data->serial;
}

Status Zone::load(std::vector<ResourceRecord> records) {
  std::map<Name, std::map<RRType, RRset>> fresh;
  for (auto& rr : records) {
    if (!rr.name.is_subdomain_of(apex_))
      return fail("zone load: record " + rr.name.to_string() + " outside zone");
    fresh[rr.name][rr.type].push_back(std::move(rr));
  }
  if (!fresh.contains(apex_) || !fresh[apex_].contains(RRType::SOA))
    return fail("zone load: missing SOA at apex");
  nodes_ = std::move(fresh);
  return util::ok_status();
}

}  // namespace sns::server
