#include "server/mdns.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace sns::server {

using dns::Message;
using dns::Name;
using dns::ResourceRecord;
using util::fail;
using util::Result;

namespace {

/// DNS-SD instance labels may contain spaces; encode them as a single
/// label with spaces replaced (we keep it simple and RFC-safe).
std::string instance_label(const std::string& instance) {
  std::string label;
  for (char c : instance) label += (c == ' ' ? '-' : c);
  return util::to_lower(label);
}

}  // namespace

Result<Name> service_type_name(const ServiceInstance& service) {
  auto parts = util::split(service.service_type, '.');
  Name name = service.domain;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    auto next = name.prepend(*it);
    if (!next.ok()) return next.error();
    name = std::move(next).value();
  }
  return name;
}

Result<Name> service_instance_name(const ServiceInstance& service) {
  auto type_name = service_type_name(service);
  if (!type_name.ok()) return type_name.error();
  return type_name.value().prepend(instance_label(service.instance));
}

util::Status publish_service(Zone& zone, const ServiceInstance& service, std::uint32_t ttl) {
  auto type_name = service_type_name(service);
  if (!type_name.ok()) return type_name.error();
  auto instance_name = service_instance_name(service);
  if (!instance_name.ok()) return instance_name.error();

  // _services._dns-sd._udp.<domain> PTR <type>.<domain>
  auto enumeration = service.domain.prepend("_udp");
  if (!enumeration.ok()) return enumeration.error();
  enumeration = enumeration.value().prepend("_dns-sd");
  if (!enumeration.ok()) return enumeration.error();
  enumeration = enumeration.value().prepend("_services");
  if (!enumeration.ok()) return enumeration.error();

  if (auto s = zone.add(dns::make_ptr(enumeration.value(), type_name.value(), ttl)); !s.ok())
    return s;
  if (auto s = zone.add(dns::make_ptr(type_name.value(), instance_name.value(), ttl)); !s.ok())
    return s;
  if (auto s = zone.add(dns::make_srv(instance_name.value(), service.port, service.host, ttl));
      !s.ok())
    return s;
  return zone.add(dns::make_txt(instance_name.value(), service.txt, ttl));
}

MdnsResponder::MdnsResponder(net::Network& network, net::NodeId node)
    : network_(network), node_(node) {
  network_.join_group(kMdnsGroup, node_);
  network_.set_handler(node_, [this](std::span<const std::uint8_t> payload, net::NodeId) {
    return answer(payload);
  });
}

void MdnsResponder::add_record(ResourceRecord rr) { records_.push_back(std::move(rr)); }

void MdnsResponder::publish(const ServiceInstance& service, std::uint32_t ttl) {
  auto type_name = service_type_name(service);
  auto instance_name = service_instance_name(service);
  if (!type_name.ok() || !instance_name.ok()) return;
  add_record(dns::make_ptr(type_name.value(), instance_name.value(), ttl));
  add_record(dns::make_srv(instance_name.value(), service.port, service.host, ttl));
  add_record(dns::make_txt(instance_name.value(), service.txt, ttl));
}

std::optional<util::Bytes> MdnsResponder::answer(std::span<const std::uint8_t> payload) {
  auto query = Message::decode(payload);
  if (!query.ok() || query.value().questions.size() != 1) return std::nullopt;
  const auto& question = query.value().questions.front();

  Message response = dns::make_response(query.value(), dns::Rcode::NoError, true);
  for (const auto& rr : records_) {
    bool type_match = question.type == rr.type || question.type == dns::RRType::ANY;
    if (type_match && rr.name == question.name) response.answers.push_back(rr);
  }
  if (response.answers.empty()) return std::nullopt;  // mDNS: silence, not NXDOMAIN

  // RFC 6762 §6: shared-record responders delay 20-120 ms to avoid
  // collision storms. This is the structural latency the paper's AR
  // use-case cannot tolerate.
  auto delay_ms = 20 + static_cast<std::int64_t>(network_.rng().next_below(100));
  network_.add_processing_delay(net::ms(delay_ms));
  return response.encode();
}

}  // namespace sns::server
