#include "server/update.hpp"

#include "server/authoritative.hpp"

namespace sns::server {

using dns::Message;
using dns::Rcode;
using dns::ResourceRecord;
using dns::RRClass;
using dns::RRType;

Message process_update(AuthoritativeServer& server, const Message& request,
                       const ClientContext& ctx) {
  // TSIG gate: when the server has an update key, unsigned or badly
  // signed updates are refused. The simulator has no shared wall clock,
  // so the server validates the MAC at the signer's own timestamp; the
  // fudge-window check is exercised directly in the dnssec tests.
  Message working = request;
  if (server.update_key().has_value()) {
    if (working.additionals.empty() || working.additionals.back().type != RRType::TSIG)
      return dns::make_response(request, Rcode::Refused, false);
    const auto* tsig = std::get_if<dns::TsigData>(&working.additionals.back().rdata);
    if (tsig == nullptr ||
        !dns::tsig_verify(working, *server.update_key(), tsig->time_signed).ok())
      return dns::make_response(request, Rcode::Refused, false);
  }

  if (working.questions.size() != 1 || working.questions.front().type != RRType::SOA)
    return dns::make_response(request, Rcode::FormErr, false);
  const dns::Name& zone_name = working.questions.front().name;

  auto zones = server.zones_for(ctx);
  std::shared_ptr<Zone> zone;
  for (const auto& z : zones)
    if (z->apex() == zone_name) zone = z;
  if (zone == nullptr) return dns::make_response(request, Rcode::NotAuth, false);

  // Prerequisite checks (RFC 2136 §3.2), from the answer section.
  for (const auto& prereq : working.answers) {
    if (!prereq.name.is_subdomain_of(zone->apex()))
      return dns::make_response(request, Rcode::NotZone, false);
    if (prereq.klass == RRClass::ANY && prereq.type == RRType::ANY) {
      if (!zone->name_exists(prereq.name))
        return dns::make_response(request, Rcode::NXDomain, false);
    } else if (prereq.klass == RRClass::ANY) {
      if (zone->find(prereq.name, prereq.type) == nullptr)
        return dns::make_response(request, Rcode::NXRRSet, false);
    } else if (prereq.klass == RRClass::NONE && prereq.type == RRType::ANY) {
      if (zone->name_exists(prereq.name))
        return dns::make_response(request, Rcode::YXDomain, false);
    } else if (prereq.klass == RRClass::NONE) {
      if (zone->find(prereq.name, prereq.type) != nullptr)
        return dns::make_response(request, Rcode::YXRRSet, false);
    } else if (prereq.klass == RRClass::IN) {
      const dns::RRset* existing = zone->find(prereq.name, prereq.type);
      bool match = existing != nullptr;
      if (match) {
        bool found = false;
        for (const auto& rr : *existing)
          if (rr.rdata == prereq.rdata) found = true;
        match = found;
      }
      if (!match) return dns::make_response(request, Rcode::NXRRSet, false);
    }
  }

  // Update operations (RFC 2136 §3.4), from the authority section.
  // All ops stage into one transaction (later ops see earlier ones),
  // and the commit bumps the serial automatically iff any op was
  // accepted — there is no separate bump step to forget.
  ZoneTxn txn = zone->txn();
  for (const auto& update : working.authorities) {
    if (!update.name.is_subdomain_of(zone->apex()))
      return dns::make_response(request, Rcode::NotZone, false);
    if (update.klass == RRClass::IN) {
      ResourceRecord rr = update;
      (void)txn.add(std::move(rr));
    } else if (update.klass == RRClass::ANY && update.type == RRType::ANY) {
      (void)txn.remove_name(update.name);
    } else if (update.klass == RRClass::ANY) {
      (void)txn.remove_rrset(update.name, update.type);
    } else if (update.klass == RRClass::NONE) {
      ResourceRecord rr = update;
      rr.klass = RRClass::IN;
      (void)txn.remove_record(rr);
    }
  }
  (void)zone->commit(std::move(txn));

  return dns::make_response(request, Rcode::NoError, true);
}

Message make_update_add(std::uint16_t id, const dns::Name& zone, ResourceRecord record) {
  Message msg;
  msg.header.id = id;
  msg.header.opcode = dns::Opcode::Update;
  msg.header.rd = false;
  msg.questions.push_back(dns::Question{zone, RRType::SOA, RRClass::IN});
  msg.authorities.push_back(std::move(record));
  return msg;
}

Message make_update_delete_rrset(std::uint16_t id, const dns::Name& zone, const dns::Name& owner,
                                 RRType type) {
  Message msg;
  msg.header.id = id;
  msg.header.opcode = dns::Opcode::Update;
  msg.header.rd = false;
  msg.questions.push_back(dns::Question{zone, RRType::SOA, RRClass::IN});
  ResourceRecord del;
  del.name = owner;
  del.type = type;
  del.klass = RRClass::ANY;
  del.ttl = 0;
  del.rdata = dns::RawData{};
  msg.authorities.push_back(std::move(del));
  return msg;
}

}  // namespace sns::server
