// transfer.hpp — zone replication between edge nameservers (§4.2).
//
// Edge nameservers are single points of failure for their room; the
// paper's resilience story implies replication. This module implements
// an AXFR-shaped full transfer plus a serial-gated refresh (IXFR-lite):
// the secondary sends the primary its current SOA serial; the primary
// answers "current" or ships the full zone. Framed as ordinary DNS
// messages so it runs over the simulated network like everything else.
#pragma once

#include <memory>

#include "dns/message.hpp"
#include "net/network.hpp"
#include "server/zone.hpp"

namespace sns::server {

/// QTYPE 252 (AXFR), not in the base RRType enum on purpose.
constexpr dns::RRType kAxfrType = static_cast<dns::RRType>(252);

/// Build the transfer request. `have_serial` is the secondary's current
/// serial (encoded as an SOA in the authority section, like IXFR).
[[nodiscard]] dns::Message make_transfer_request(std::uint16_t id, const Name& zone_apex,
                                                 std::uint32_t have_serial);

/// Primary side: answer a transfer request against `zone`. Returns a
/// response whose answers are the full zone (SOA first and last, AXFR
/// convention) — or an empty NOERROR when the secondary is current.
[[nodiscard]] dns::Message serve_transfer(const Zone& zone, const dns::Message& request);

/// Secondary side: apply a transfer response. Returns true if the zone
/// contents were replaced (false = already current). Fails on malformed
/// responses.
util::Result<bool> apply_transfer(Zone& zone, const dns::Message& response);

/// Convenience: run one refresh cycle over the network. The primary
/// node must answer DNS (bind_to_network or equivalent).
util::Result<bool> refresh_secondary(net::Network& network, net::NodeId secondary_node,
                                     net::NodeId primary_node, Zone& secondary);

}  // namespace sns::server
