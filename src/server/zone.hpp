// zone.hpp — immutable zone snapshots + the transactional write API.
//
// A zone is no longer a mutable object: readers hold a `ZoneView`, an
// immutable snapshot answering the RFC 1034 §4.3.2 lookup algorithm
// (exact match, CNAME, delegation cut, wildcard synthesis, NODATA vs
// NXDOMAIN — spatial zones are ordinary zones whose apex is a civic
// name, the paper's central trick). Writers never touch a view; they
// stage changes in a `ZoneTxn` opened on a view and `commit()` a NEW
// view that shares all unmodified structure with its parent.
//
// Storage is two structurally shared tiers over the same immutable
// ZoneNode leaves (zone_store.hpp):
//
//   * a path-copying treap in canonical name order (AXFR walks,
//     empty-non-terminal checks, NSEC3 chain input), and
//   * a persistent hash trie keyed by packed owner-name bytes
//     (util::PMap) serving every exact-match probe — the lookup
//     algorithm walks delegation cuts and wildcards with
//     packed_suffix() views of the query name, allocating no
//     ancestor Names.
//
// A commit therefore costs O(records touched × depth), not O(zone):
// under the paper's churn workload (a fleet of devices re-homing via
// RFC 2136 while reader shards serve) updates no longer serialise on
// whole-zone copies. Commits also report which owners they touched
// (and whether any delegation changed), which is what lets the
// runtime's precompiled-answer cache rebuild incrementally.
//
// `Zone` remains as a thin mutable facade over the current view —
// single-threaded call sites (simulator deployments, tests, tools)
// keep their familiar object identity while every mutation internally
// becomes a one-op transaction. The old footguns are gone: there is
// no public `bump_serial()` (commits bump the serial) and no mutable
// `load()` (bulk builds go through ZoneBuilder).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string_view>
#include <vector>

#include "dns/record.hpp"
#include "server/zone_store.hpp"
#include "util/pmap.hpp"
#include "util/result.hpp"

namespace sns::server {

using dns::Name;
using dns::ResourceRecord;
using dns::RRset;
using dns::RRType;

class ZoneBuilder;
class ZoneTxn;

/// Immutable snapshot of one zone. Freely shared across threads with
/// no synchronisation: every member is const after construction and
/// reads never touch a refcount. Obtain one from ZoneBuilder::build()
/// or ZoneTxn::commit().
class ZoneView {
 public:
  [[nodiscard]] const Name& apex() const noexcept { return apex_; }

  [[nodiscard]] const RRset* find(const Name& owner, RRType type) const;
  /// True if `owner` owns records or is an empty non-terminal.
  [[nodiscard]] bool name_exists(const Name& owner) const;
  /// Types present at `owner` (empty if the name does not exist).
  [[nodiscard]] std::vector<RRType> types_at(const Name& owner) const;

  /// RFC 1034 §4.3.2 outcome for one (qname, qtype).
  struct Lookup {
    enum class Kind {
      Success,     // records = the answer RRset
      CName,       // records = the CNAME RRset; resolver restarts
      Delegation,  // records = NS RRset of the cut; additionals = glue
      NoData,      // name exists, type does not
      NxDomain,    // name does not exist
      NotZone,     // qname not under this apex
    };
    Kind kind = Kind::NxDomain;
    RRset records;
    std::vector<ResourceRecord> additionals;
    bool wildcard = false;  // answer was synthesised from a wildcard
  };
  [[nodiscard]] Lookup lookup(const Name& qname, RRType qtype) const;

  /// Every record in canonical order (zone transfer, NSEC3 build).
  [[nodiscard]] std::vector<ResourceRecord> all_records() const;
  /// All owner names with their type lists (NSEC3 chain input).
  [[nodiscard]] std::vector<std::pair<Name, std::vector<RRType>>> all_names() const;

  [[nodiscard]] std::size_t record_count() const noexcept { return record_count_; }

  /// Serial of the apex SOA (0 if somehow absent).
  [[nodiscard]] std::uint32_t serial() const;

 private:
  friend class ZoneBuilder;
  friend class ZoneTxn;
  ZoneView() = default;

  /// Exact-match probe by packed owner bytes + their FNV-1a hash.
  [[nodiscard]] const ZoneNode* node_of(std::string_view packed_owner,
                                        std::size_t hash) const noexcept {
    return index_.find(packed_owner, hash);
  }

  Name apex_;
  NameTree tree_;              // canonical order; shares leaves with index_
  util::PMap<ZoneNode> index_;  // packed-name exact-match probes
  std::size_t record_count_ = 0;
};
using ZoneViewPtr = std::shared_ptr<const ZoneView>;

/// Bulk construction of a fresh view (master-file load, AXFR apply).
/// Permissive like a zone file: no CNAME-exclusivity or duplicate
/// checks — the file is the authority on its own contents. build()
/// insists only on an apex SOA.
class ZoneBuilder {
 public:
  explicit ZoneBuilder(Name apex) : apex_(std::move(apex)) {}

  /// Stage one record. Fails only if the owner is outside the zone.
  util::Status add(ResourceRecord rr);

  [[nodiscard]] util::Result<ZoneViewPtr> build() &&;

 private:
  Name apex_;
  std::map<Name, std::map<RRType, RRset>> staging_;
};

/// Stage records straight into a view: builder boilerplate for the
/// common "apex + record list" case.
util::Result<ZoneViewPtr> build_zone_view(Name apex, std::vector<ResourceRecord> records);

/// A transaction over one base view. Stage adds/removes (with RFC
/// 1034 CNAME exclusivity and RFC 2136 rdata de-duplication), read
/// your own writes, then commit() a new view sharing every untouched
/// node with the base. The txn keeps the base view alive for its own
/// lifetime — that pin is what makes its internal in-place
/// fast path sound (any node a published view can reach is provably
/// shared, hence copied, never patched).
///
/// Not thread-safe; one txn belongs to one thread. Concurrent txns on
/// the same base produce independent successors — reconciling them is
/// the caller's problem (the runtime serialises committers through
/// SnapshotStore::update()).
class ZoneTxn {
 public:
  explicit ZoneTxn(ZoneViewPtr base);

  /// Add one record. Fails if the owner is outside the zone or the add
  /// violates CNAME exclusivity. Re-adding identical rdata is a no-op
  /// that still reports success AND marks the txn dirty — RFC 2136
  /// callers bump the serial on any accepted update op.
  util::Status add(ResourceRecord rr);

  /// Remove a whole RRset; returns number of records removed.
  std::size_t remove_rrset(const Name& owner, RRType type);
  /// Remove every record at `owner`.
  std::size_t remove_name(const Name& owner);
  /// Remove one exact record (name, type, rdata).
  bool remove_record(const ResourceRecord& rr);

  // Read-your-writes views of the staged state.
  [[nodiscard]] const Name& apex() const noexcept { return apex_; }
  /// The view this txn was opened on (Zone::commit checks it still is
  /// the facade's current view — see there).
  [[nodiscard]] const ZoneViewPtr& base() const noexcept { return base_; }
  [[nodiscard]] const RRset* find(const Name& owner, RRType type) const;
  [[nodiscard]] bool name_exists(const Name& owner) const;
  [[nodiscard]] std::vector<RRType> types_at(const Name& owner) const;

  /// Force a serial bump at commit even if nothing changed.
  void bump_serial() noexcept { forced_bump_ = true; }
  /// True once any op succeeded (including de-dup no-op adds).
  [[nodiscard]] bool dirty() const noexcept { return dirty_; }

  enum class Serial {
    BumpOnChange,  // ++serial iff the txn is dirty (RFC 2136 semantics)
    Keep,          // never bump (facade one-op edits, tests)
  };

  struct Commit {
    ZoneViewPtr view;
    /// Owners whose node changed (apex included when the serial moved).
    /// The incremental answer-cache rebuild invalidates exactly these.
    std::vector<Name> touched;
    /// An NS RRset was added or removed somewhere: delegation cuts can
    /// occlude or reveal whole subtrees, so per-name invalidation is
    /// unsound and consumers must fall back to a full rebuild.
    bool ns_touched = false;
    bool changed = false;
  };
  [[nodiscard]] Commit commit(Serial policy = Serial::BumpOnChange) &&;

 private:
  [[nodiscard]] const ZoneNode* node_of(const Name& owner) const noexcept;
  void set_node(ZoneNode node);
  void erase_node(const Name& owner);

  ZoneViewPtr base_;  // pins shared structure: required for soundness
  Name apex_;
  NameTree tree_;
  util::PMap<ZoneNode> index_;
  std::size_t record_count_ = 0;
  std::set<Name> touched_;
  bool ns_touched_ = false;
  bool dirty_ = false;
  bool forced_bump_ = false;
};

/// Mutable facade over the current ZoneView — the object identity the
/// rest of the system passes around (AuthoritativeServer engines, the
/// simulator's deployments, tests). Reads delegate to the current
/// view; each legacy mutator is a one-op transaction that never bumps
/// the serial (matching the old Zone, where serial management was an
/// explicit separate step). Multi-op writers should open txn() and
/// commit() once.
///
/// Not thread-safe. The runtime never shares a facade across threads:
/// each shard engine wraps the published views in its own facades, and
/// the RFC 2136 path builds throwaway facades inside the snapshot
/// store's writer critical section. view() hands out the current
/// snapshot, which IS safe to read anywhere.
class Zone {
 public:
  /// Creates an empty zone; a SOA (serial 1) is synthesised at the
  /// apex so the zone is immediately serveable.
  Zone(Name apex, Name primary_ns);
  /// Wrap an existing snapshot.
  explicit Zone(ZoneViewPtr view);

  Zone(const Zone&) = delete;
  Zone& operator=(const Zone&) = delete;
  Zone(Zone&&) = default;
  Zone& operator=(Zone&&) = default;

  [[nodiscard]] const Name& apex() const noexcept { return view_->apex(); }

  /// Current snapshot; O(1), immutable, safe to share across threads.
  [[nodiscard]] const ZoneViewPtr& view() const noexcept { return view_; }
  /// Open a transaction on the current snapshot.
  [[nodiscard]] ZoneTxn txn() const { return ZoneTxn(view_); }
  /// Commit a transaction: the new view becomes current and the commit
  /// record (touched owners, delegation flag) is folded into the log.
  /// The txn must have been opened on the CURRENT view (via txn());
  /// committing one opened on a stale view would silently discard
  /// every commit made in between, so that misuse is asserted against
  /// in debug builds.
  ZoneTxn::Commit commit(ZoneTxn txn, ZoneTxn::Serial policy = ZoneTxn::Serial::BumpOnChange);
  /// Wholesale replacement (AXFR apply, SIGHUP reload). Logged as an
  /// overflow: incremental consumers must rebuild fully.
  void replace(ZoneViewPtr view);

  /// What the facade's committers touched since the log was last
  /// taken; the runtime drains this to rebuild its answer cache
  /// incrementally after an update cycle.
  struct CommitLog {
    std::set<Name> touched;
    bool ns_touched = false;
    /// Tracking gave up (wholesale replace, or too many touched
    /// owners to be worth enumerating): treat everything as touched.
    bool overflow = false;
    std::size_t commits = 0;
  };
  [[nodiscard]] const CommitLog& commit_log() const noexcept { return log_; }
  CommitLog take_commit_log();

  // Legacy one-op mutators (Zone::add semantics preserved exactly).
  util::Status add(ResourceRecord rr);
  std::size_t remove_rrset(const Name& owner, RRType type);
  std::size_t remove_name(const Name& owner);
  bool remove_record(const ResourceRecord& rr);

  // Reads — delegate to the current view.
  using Lookup = ZoneView::Lookup;
  [[nodiscard]] const RRset* find(const Name& owner, RRType type) const {
    return view_->find(owner, type);
  }
  [[nodiscard]] bool name_exists(const Name& owner) const { return view_->name_exists(owner); }
  [[nodiscard]] std::vector<RRType> types_at(const Name& owner) const {
    return view_->types_at(owner);
  }
  [[nodiscard]] Lookup lookup(const Name& qname, RRType qtype) const {
    return view_->lookup(qname, qtype);
  }
  [[nodiscard]] std::vector<ResourceRecord> all_records() const { return view_->all_records(); }
  [[nodiscard]] std::vector<std::pair<Name, std::vector<RRType>>> all_names() const {
    return view_->all_names();
  }
  [[nodiscard]] std::size_t record_count() const { return view_->record_count(); }
  [[nodiscard]] std::uint32_t serial() const { return view_->serial(); }

 private:
  // Past this many distinct touched owners the log stops enumerating
  // and flips to overflow — a full cache rebuild is cheaper anyway.
  static constexpr std::size_t kMaxTouched = 4096;

  void fold(const ZoneTxn::Commit& commit);

  ZoneViewPtr view_;
  CommitLog log_;
};

}  // namespace sns::server
