// zone.hpp — authoritative zone store.
//
// A Zone owns every record under one apex, sorted in canonical name
// order, and answers the RFC 1034 §4.3.2 lookup algorithm: exact match,
// CNAME, delegation cut (NS below the apex), wildcard synthesis, NODATA
// vs NXDOMAIN. Spatial zones (SNS core) are ordinary Zones whose apex is
// a civic name — that is the paper's central trick.
//
// Storage is two-tier: the canonical-order std::map remains the owner
// of record data (NSEC3 chain, AXFR and empty-non-terminal walks need
// the ordering), while a hash index keyed by packed owner-name bytes
// serves every exact-match probe. The lookup algorithm walks delegation
// cuts and wildcards with packed_suffix() views of the query name, so a
// full RFC 1034 lookup allocates no ancestor Names at all.
#pragma once

#include <map>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/record.hpp"
#include "util/result.hpp"

namespace sns::server {

using dns::Name;
using dns::ResourceRecord;
using dns::RRset;
using dns::RRType;

class Zone {
 public:
  /// Creates an empty zone; a SOA is synthesised at the apex so the
  /// zone is immediately serveable.
  Zone(Name apex, Name primary_ns);

  // The hash index holds views into the node map's key storage, so the
  // store is movable (map nodes are pointer-stable) but not copyable —
  // zones are shared via shared_ptr throughout the system anyway.
  Zone(const Zone&) = delete;
  Zone& operator=(const Zone&) = delete;
  Zone(Zone&&) = default;
  Zone& operator=(Zone&&) = default;

  [[nodiscard]] const Name& apex() const noexcept { return apex_; }

  /// Add one record. Fails if the owner is outside the zone. Adding a
  /// CNAME alongside other data (or vice versa) is rejected per RFC 1034.
  util::Status add(ResourceRecord rr);

  /// Remove a whole RRset; returns number of records removed.
  std::size_t remove_rrset(const Name& owner, RRType type);
  /// Remove every record at `owner`.
  std::size_t remove_name(const Name& owner);
  /// Remove one exact record (name, type, rdata).
  bool remove_record(const ResourceRecord& rr);

  [[nodiscard]] const RRset* find(const Name& owner, RRType type) const;
  [[nodiscard]] bool name_exists(const Name& owner) const;
  /// Types present at `owner` (empty if the name does not exist).
  [[nodiscard]] std::vector<RRType> types_at(const Name& owner) const;

  /// RFC 1034 §4.3.2 outcome for one (qname, qtype).
  struct Lookup {
    enum class Kind {
      Success,     // records = the answer RRset
      CName,       // records = the CNAME RRset; resolver restarts
      Delegation,  // records = NS RRset of the cut; additionals = glue
      NoData,      // name exists, type does not
      NxDomain,    // name does not exist
      NotZone,     // qname not under this apex
    };
    Kind kind = Kind::NxDomain;
    RRset records;
    std::vector<ResourceRecord> additionals;
    bool wildcard = false;  // answer was synthesised from a wildcard
  };
  [[nodiscard]] Lookup lookup(const Name& qname, RRType qtype) const;

  /// Every record in canonical order (zone transfer, NSEC3 build).
  [[nodiscard]] std::vector<ResourceRecord> all_records() const;
  /// All owner names with their type lists (NSEC3 chain input).
  [[nodiscard]] std::vector<std::pair<Name, std::vector<RRType>>> all_names() const;

  [[nodiscard]] std::size_t record_count() const;

  /// SOA serial management (dynamic updates bump it).
  [[nodiscard]] std::uint32_t serial() const;
  void bump_serial();

  /// Replace full contents from a record list (zone transfer apply).
  util::Status load(std::vector<ResourceRecord> records);

 private:
  using NodeMap = std::map<RRType, RRset>;
  using NodeStore = std::map<Name, NodeMap>;

  /// Hash probe by packed owner bytes; nullptr if the owner is absent.
  [[nodiscard]] const NodeMap* node_of(std::string_view packed_owner) const;
  /// Node for `owner`, created (and indexed) if absent.
  NodeMap& node_for(const Name& owner);
  /// Erase a node from both tiers.
  void erase_node(NodeStore::iterator it);
  void rebuild_index();

  Name apex_;
  // Owner -> type -> rrset, canonical order (Name::operator<=>).
  NodeStore nodes_;
  // Exact-match index: packed owner-name bytes -> node. Views point at
  // the key Names inside nodes_ (node-based map: stable addresses).
  std::unordered_map<std::string_view, NodeMap*> index_;
};

}  // namespace sns::server
