// mdns.hpp — multicast DNS responder and DNS-SD publication.
//
// §4.1 of the paper: "DNS Service Discovery (DNS-SD) uses standard DNS
// protocols, including mDNS for the local link … With SNS, this domain
// becomes a spatial domain." This module publishes services in the
// DNS-SD shape (PTR enumeration + PTR instance + SRV/TXT) either into a
// spatial Zone (unicast DNS-SD) or via an mDNS responder joined to a
// simulated multicast group (the slow, layered path the paper's §1
// latency claim is measured against in bench E6).
#pragma once

#include <memory>
#include <string>

#include "dns/message.hpp"
#include "net/network.hpp"
#include "server/zone.hpp"

namespace sns::server {

/// The conventional mDNS multicast group id in the simulator.
constexpr std::uint32_t kMdnsGroup = 5353;

/// One DNS-SD service registration.
struct ServiceInstance {
  std::string instance;      // "Oval Office Speaker"
  std::string service_type;  // "_audio._udp"
  Name domain;               // spatial domain the service lives in
  Name host;                 // device host name
  std::uint16_t port = 0;
  std::vector<std::string> txt;  // key=value metadata
};

/// Write the four DNS-SD records for `service` into `zone`
/// (enumeration PTR, instance PTR, SRV, TXT).
util::Status publish_service(Zone& zone, const ServiceInstance& service,
                             std::uint32_t ttl = 120);

/// Name helpers.
util::Result<Name> service_type_name(const ServiceInstance& service);   // _audio._udp.<domain>
util::Result<Name> service_instance_name(const ServiceInstance& service);

/// A minimal mDNS responder: joins the multicast group on `node` and
/// answers queries it is authoritative for from its own little record
/// set. Real mDNS answers after a random 20-120 ms defensive delay
/// (RFC 6762 §6) — modelled here, which is exactly why discovery over
/// mDNS is slow compared to an SNS edge lookup.
class MdnsResponder {
 public:
  MdnsResponder(net::Network& network, net::NodeId node);

  void add_record(dns::ResourceRecord rr);
  /// Publish a DNS-SD service into the responder's record set.
  void publish(const ServiceInstance& service, std::uint32_t ttl = 120);

 private:
  [[nodiscard]] std::optional<util::Bytes> answer(std::span<const std::uint8_t> payload);

  net::Network& network_;
  net::NodeId node_;
  std::vector<dns::ResourceRecord> records_;
};

}  // namespace sns::server
