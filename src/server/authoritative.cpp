#include "server/authoritative.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/update.hpp"
#include "util/log.hpp"

namespace sns::server {

using dns::Message;
using dns::Rcode;
using dns::RRType;

ViewMatcher match_any() {
  return [](const ClientContext&) { return true; };
}

ViewMatcher match_internal() {
  return [](const ClientContext& ctx) { return ctx.internal; };
}

ViewMatcher match_room(std::uint32_t room) {
  return [room](const ClientContext& ctx) { return ctx.room.has_value() && *ctx.room == room; };
}

AuthoritativeServer::AuthoritativeServer(std::string name) : name_(std::move(name)) {}

std::size_t AuthoritativeServer::add_view(std::string view_name, ViewMatcher matcher) {
  views_.push_back(View{std::move(view_name), std::move(matcher), {}});
  return views_.size() - 1;
}

void AuthoritativeServer::add_zone(std::size_t view_index, std::shared_ptr<Zone> zone) {
  views_.at(view_index).zones.push_back(std::move(zone));
}

void AuthoritativeServer::add_zone(std::shared_ptr<Zone> zone) {
  if (views_.empty()) add_view("default", match_any());
  views_.back().zones.push_back(std::move(zone));
}

void AuthoritativeServer::add_presence_rule(PresenceRule rule) {
  presence_rules_.push_back(std::move(rule));
}

void AuthoritativeServer::set_zone_key(dns::ZoneKey key, std::function<std::uint32_t()> now) {
  zone_key_ = std::move(key);
  now_seconds_ = std::move(now);
}

void AuthoritativeServer::set_update_key(dns::TsigKey key) { update_key_ = std::move(key); }

void AuthoritativeServer::enable_nsec3(util::Bytes salt, std::uint16_t iterations) {
  nsec3_enabled_ = true;
  nsec3_salt_ = std::move(salt);
  nsec3_iterations_ = iterations;
  nsec3_cache_.clear();
}

const std::vector<dns::ResourceRecord>& AuthoritativeServer::nsec3_chain_for(const Zone& zone) {
  auto& entry = nsec3_cache_[&zone];
  if (entry.first != zone.serial() || entry.second.empty()) {
    entry.first = zone.serial();
    entry.second = dns::build_nsec3_chain(zone.apex(), zone.all_names(),
                                          std::span(nsec3_salt_), nsec3_iterations_, 60);
  }
  return entry.second;
}

void AuthoritativeServer::attach_denial(const Zone& zone, const Name& qname, dns::RRType qtype,
                                        dns::Message& response) {
  if (!nsec3_enabled_ || !zone_key_.has_value() ||
      !zone.apex().is_subdomain_of(zone_key_->zone))
    return;
  const auto& chain = nsec3_chain_for(zone);
  std::uint32_t now = now_seconds_ ? now_seconds_() : 0;

  auto attach_signed = [&](const dns::ResourceRecord& rr) {
    response.authorities.push_back(rr);
    auto sig = dns::sign_rrset({rr}, *zone_key_, now, now + 86400);
    if (sig.ok()) response.authorities.push_back(std::move(sig).value());
  };

  if (response.header.rcode == dns::Rcode::NXDomain) {
    // Cover the query name (and implicitly deny a wildcard, since the
    // chain covers *.<zone> owners too when absent).
    for (const auto& rr : chain) {
      auto covers = dns::nsec3_covers(rr, qname, zone.apex());
      if (covers.ok() && covers.value()) {
        attach_signed(rr);
        break;
      }
    }
  } else {
    // NODATA: present the NSEC3 that *matches* qname; its type bitmap
    // proves qtype's absence.
    auto owner = dns::nsec3_owner(qname, zone.apex(), std::span(nsec3_salt_),
                                  nsec3_iterations_);
    if (!owner.ok()) return;
    for (const auto& rr : chain) {
      if (rr.name == owner.value()) {
        attach_signed(rr);
        break;
      }
    }
  }
  (void)qtype;
  response.header.ad = true;
}

const AuthoritativeServer::View* AuthoritativeServer::match_view(const ClientContext& ctx) const {
  for (const auto& view : views_)
    if (view.matcher(ctx)) return &view;
  return nullptr;
}

std::shared_ptr<Zone> AuthoritativeServer::find_zone(const View& view, const Name& qname) const {
  // Longest-suffix match among the view's zones.
  std::shared_ptr<Zone> best;
  for (const auto& zone : view.zones) {
    if (qname.is_subdomain_of(zone->apex()) &&
        (best == nullptr || zone->apex().label_count() > best->apex().label_count()))
      best = zone;
  }
  return best;
}

bool AuthoritativeServer::presence_denied(const Name& qname, const ClientContext& ctx) const {
  for (const auto& rule : presence_rules_) {
    if (!qname.is_subdomain_of(rule.subtree)) continue;
    bool physically_present = ctx.room.has_value() && *ctx.room == rule.room;
    bool has_token = rule.token != nullptr && !rule.token->empty() &&
                     ctx.presence_tokens.contains(*rule.token);
    if (!physically_present && !has_token) return true;
  }
  return false;
}

void AuthoritativeServer::sign_answer(dns::Message& response) const {
  if (!zone_key_.has_value() || response.answers.empty()) return;
  std::uint32_t now = now_seconds_ ? now_seconds_() : 0;
  // Group answers into RRsets (consecutive same name+type after the
  // engine's construction) and sign each.
  std::vector<dns::ResourceRecord> signatures;
  std::size_t i = 0;
  while (i < response.answers.size()) {
    std::size_t j = i + 1;
    while (j < response.answers.size() && response.answers[j].name == response.answers[i].name &&
           response.answers[j].type == response.answers[i].type)
      ++j;
    dns::RRset rrset(response.answers.begin() + static_cast<std::ptrdiff_t>(i),
                     response.answers.begin() + static_cast<std::ptrdiff_t>(j));
    if (rrset.front().name.is_subdomain_of(zone_key_->zone)) {
      auto sig = dns::sign_rrset(rrset, *zone_key_, now, now + 86400);
      if (sig.ok()) signatures.push_back(std::move(sig).value());
    }
    i = j;
  }
  response.answers.insert(response.answers.end(), signatures.begin(), signatures.end());
  response.header.ad = !signatures.empty();
}

std::vector<std::shared_ptr<Zone>> AuthoritativeServer::zones_for(const ClientContext& ctx) const {
  const View* view = match_view(ctx);
  return view == nullptr ? std::vector<std::shared_ptr<Zone>>{} : view->zones;
}

Message AuthoritativeServer::handle(const Message& query, const ClientContext& ctx) {
  ++queries_served_;
  if (metrics_ != nullptr) metrics_->counter("server.queries").add();
  obs::ScopedSpan span(tracer_, "server.handle");
  span.annotate("server", name_);
  if (!query.questions.empty()) span.annotate("name", query.questions.front().name.to_string());

  Message response = handle_query(query, ctx);
  span.annotate("rcode", dns::to_string(response.header.rcode));
  return response;
}

Message AuthoritativeServer::handle_query(const Message& query, const ClientContext& ctx) {
  if (query.header.opcode == dns::Opcode::Update) return process_update(*this, query, ctx);

  if (query.questions.size() != 1) return dns::make_response(query, Rcode::FormErr, false);
  const auto& question = query.questions.front();

  const View* view = match_view(ctx);
  if (view == nullptr) return dns::make_response(query, Rcode::Refused, false);
  if (tracer_ != nullptr) tracer_->annotate("view", view->name);

  auto zone = find_zone(*view, question.name);
  if (zone == nullptr) return dns::make_response(query, Rcode::Refused, false);

  if (presence_denied(question.name, ctx)) {
    util::log_debug("authoritative", name_, ": refused (presence) ",
                    question.name.to_string());
    if (metrics_ != nullptr) metrics_->counter("server.refused.presence").add();
    return dns::make_response(query, Rcode::Refused, true);
  }

  Message response = dns::make_response(query, Rcode::NoError, true);

  // Resolve with CNAME chasing inside the view (restart across zones of
  // the same view, RFC 1034 §4.3.2 step 3a).
  Name qname = question.name;
  int chain = 0;
  while (chain++ < 8) {
    auto result = zone->lookup(qname, question.type);
    switch (result.kind) {
      case Zone::Lookup::Kind::Success:
        response.answers.insert(response.answers.end(), result.records.begin(),
                                result.records.end());
        sign_answer(response);
        return response;
      case Zone::Lookup::Kind::CName: {
        response.answers.insert(response.answers.end(), result.records.begin(),
                                result.records.end());
        const auto* cname = std::get_if<dns::CnameData>(&result.records.front().rdata);
        if (cname == nullptr) {
          response.header.rcode = Rcode::ServFail;
          return response;
        }
        qname = cname->target;
        auto next_zone = find_zone(*view, qname);
        if (next_zone == nullptr) {
          // Target is out of our authority: hand back what we have.
          sign_answer(response);
          return response;
        }
        zone = next_zone;
        continue;
      }
      case Zone::Lookup::Kind::Delegation:
        response.header.aa = false;
        response.authorities.insert(response.authorities.end(), result.records.begin(),
                                    result.records.end());
        response.additionals.insert(response.additionals.end(), result.additionals.begin(),
                                    result.additionals.end());
        return response;
      case Zone::Lookup::Kind::NoData: {
        // NODATA: SOA in authority for negative caching (RFC 2308).
        if (const RRset* soa = zone->find(zone->apex(), RRType::SOA))
          response.authorities.insert(response.authorities.end(), soa->begin(), soa->end());
        attach_denial(*zone, qname, question.type, response);
        return response;
      }
      case Zone::Lookup::Kind::NxDomain: {
        response.header.rcode = Rcode::NXDomain;
        if (const RRset* soa = zone->find(zone->apex(), RRType::SOA))
          response.authorities.insert(response.authorities.end(), soa->begin(), soa->end());
        attach_denial(*zone, qname, question.type, response);
        return response;
      }
      case Zone::Lookup::Kind::NotZone:
        response.header.rcode = Rcode::Refused;
        return response;
    }
  }
  response.header.rcode = Rcode::ServFail;  // CNAME chain too long
  return response;
}

void AuthoritativeServer::bind_to_network(net::Network& network, net::NodeId node,
                                          std::function<ClientContext(net::NodeId)> context_of) {
  network.set_handler(node, [this, context_of = std::move(context_of)](
                                std::span<const std::uint8_t> payload,
                                net::NodeId from) -> std::optional<util::Bytes> {
    auto query = Message::decode(payload);
    if (!query.ok()) {
      util::log_warn("authoritative", name_, ": dropping malformed query: ",
                     query.error().message);
      return std::nullopt;
    }
    Message response = handle(query.value(), context_of(from));
    return dns::encode_for_transport(query.value(), std::move(response));
  });
}

}  // namespace sns::server
