// authoritative.hpp — split-horizon authoritative nameserver engine.
//
// Implements the paper's §3.1 resolution model: the *same* spatial name
// answers differently depending on where the query comes from. A server
// holds an ordered list of views (BIND-style); each view matches a
// client context (inside the spatial domain? in the same physical room?
// holding a presence token?) and serves its own zone contents. A device
// can additionally be marked presence-protected — then the server
// refuses to resolve it for clients that cannot prove physical
// co-location (§3.1's Oval Office microphone).
//
// The engine is transport-independent (Message in, Message out);
// bind_to_network() attaches it to a simulated node.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dns/dnssec.hpp"
#include "dns/message.hpp"
#include "net/network.hpp"
#include "server/zone.hpp"

namespace sns::obs {
class MetricsRegistry;
class Tracer;
}  // namespace sns::obs

namespace sns::server {

/// Everything the server may know about the querying client. On the
/// real Internet this comes from source address + TSIG + presence
/// attestations; in the simulator the topology provides it.
struct ClientContext {
  net::NodeId node = net::kInvalidNode;
  bool internal = false;                     // inside the spatial domain's network
  std::optional<std::uint32_t> room;         // physical room (audio medium id)
  std::set<std::string> presence_tokens;     // proofs from audio challenges (§3.1)
};

/// Predicate deciding whether a view serves a given client.
using ViewMatcher = std::function<bool(const ClientContext&)>;

ViewMatcher match_any();
ViewMatcher match_internal();
ViewMatcher match_room(std::uint32_t room);

/// Access-control rule: names under `subtree` resolve only for clients
/// physically in `room`, or presenting the room beacon's *currently
/// valid* token (a live view — chirps rotate it).
struct PresenceRule {
  Name subtree;
  std::uint32_t room = 0;
  std::shared_ptr<const std::string> token;  // may be null (room-only rule)
};

class AuthoritativeServer {
 public:
  explicit AuthoritativeServer(std::string name);

  /// Views are consulted in insertion order; first match serves.
  /// Returns the view index for add_zone.
  std::size_t add_view(std::string view_name, ViewMatcher matcher);
  void add_zone(std::size_t view_index, std::shared_ptr<Zone> zone);

  /// Convenience: single catch-all view.
  void add_zone(std::shared_ptr<Zone> zone);

  void add_presence_rule(PresenceRule rule);

  /// Enable DNSSEC-style signing: answers from zones under key.zone get
  /// RRSIGs and the AD bit. `now_seconds` provider supplies simulated time.
  void set_zone_key(dns::ZoneKey key, std::function<std::uint32_t()> now_seconds);

  /// Also attach NSEC3 authenticated denial (RFC 5155) to negative
  /// answers from keyed zones — the §4.2 defence against zone
  /// enumeration while still proving nonexistence. Requires a zone key.
  void enable_nsec3(util::Bytes salt, std::uint16_t iterations);

  /// Require TSIG on dynamic updates.
  void set_update_key(dns::TsigKey key);

  /// Core entry point: answer one message for one client.
  [[nodiscard]] dns::Message handle(const dns::Message& query, const ClientContext& ctx);

  /// Attach to a simulated node; `context_of` maps a source node to a
  /// ClientContext (the deployment layer builds this from topology).
  void bind_to_network(net::Network& network, net::NodeId node,
                       std::function<ClientContext(net::NodeId)> context_of);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t queries_served() const noexcept { return queries_served_; }

  /// Observability sinks: `server.queries` / `server.refused.presence`
  /// counters and one `server.handle` span per query.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Zones visible to `ctx` (used by the update processor and tests).
  [[nodiscard]] std::vector<std::shared_ptr<Zone>> zones_for(const ClientContext& ctx) const;

  [[nodiscard]] const std::optional<dns::TsigKey>& update_key() const noexcept {
    return update_key_;
  }

 private:
  struct View {
    std::string name;
    ViewMatcher matcher;
    std::vector<std::shared_ptr<Zone>> zones;
  };

  [[nodiscard]] dns::Message handle_query(const dns::Message& query, const ClientContext& ctx);
  [[nodiscard]] const View* match_view(const ClientContext& ctx) const;
  [[nodiscard]] std::shared_ptr<Zone> find_zone(const View& view, const Name& qname) const;
  [[nodiscard]] bool presence_denied(const Name& qname, const ClientContext& ctx) const;
  void sign_answer(dns::Message& response) const;
  void attach_denial(const Zone& zone, const Name& qname, dns::RRType qtype,
                     dns::Message& response);
  const std::vector<dns::ResourceRecord>& nsec3_chain_for(const Zone& zone);

  std::string name_;
  std::vector<View> views_;
  std::vector<PresenceRule> presence_rules_;
  std::optional<dns::ZoneKey> zone_key_;
  std::function<std::uint32_t()> now_seconds_;
  std::optional<dns::TsigKey> update_key_;
  bool nsec3_enabled_ = false;
  util::Bytes nsec3_salt_;
  std::uint16_t nsec3_iterations_ = 0;
  // NSEC3 chain cache keyed by zone pointer, invalidated by SOA serial.
  std::map<const Zone*, std::pair<std::uint32_t, std::vector<dns::ResourceRecord>>>
      nsec3_cache_;
  std::uint64_t queries_served_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sns::server
