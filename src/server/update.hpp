// update.hpp — RFC 2136 dynamic update processing.
//
// The paper uses dynamic updates for geodetic mobility (§4.1: "updates
// to the geodetic mapping within a local spatial domain could be done
// using dynamic DNS updates") and for edge nameservers auto-registering
// devices that join the network (§4.2). The processor implements the
// RFC's zone check, prerequisite checks and update operations, guarded
// by the server's TSIG key when one is configured.
#pragma once

#include "dns/message.hpp"

namespace sns::server {

class AuthoritativeServer;
struct ClientContext;

/// Handle an UPDATE message against the server's view of the world.
/// Message layout per RFC 2136: question = zone, answer = prerequisites,
/// authority = updates.
[[nodiscard]] dns::Message process_update(AuthoritativeServer& server, const dns::Message& request,
                                          const ClientContext& ctx);

/// Build an UPDATE message adding `record` to `zone` (client side).
[[nodiscard]] dns::Message make_update_add(std::uint16_t id, const dns::Name& zone,
                                           dns::ResourceRecord record);

/// Build an UPDATE deleting the whole (name, type) RRset.
[[nodiscard]] dns::Message make_update_delete_rrset(std::uint16_t id, const dns::Name& zone,
                                                    const dns::Name& owner, dns::RRType type);

}  // namespace sns::server
