// zone_store.hpp — persistent storage primitives for immutable zones.
//
// A zone's contents live in two structurally shared tiers that a
// ZoneTxn commit path-copies together:
//
//   * NameTree — a path-copying treap over owner names in canonical
//     DNS order (Name::operator<=>), the tier that AXFR walks,
//     empty-non-terminal checks lower_bound through, and the NSEC3
//     chain is built from. Treap priorities mix the owner's cached
//     FNV-1a hash with a per-process random seed: consistent across
//     every tree in the process (structural sharing merges subtrees
//     built at different times) yet unpredictable to clients, so an
//     RFC 2136 updater cannot craft owner names whose priorities
//     degenerate the treap to a list. Rebalancing needs no per-node
//     RNG state.
//
//   * util::PMap<ZoneNode> — the packed-name exact-match index
//     (declared in zone.hpp next to its user), sharing the same
//     shared_ptr<const ZoneNode> leaves as the tree.
//
// Both tiers point at the SAME immutable ZoneNode objects; an update
// allocates one new node for the touched owner and path-copies
// O(depth) interior nodes per tier. Everything else — every other
// owner's RRsets included — is shared with the parent snapshot by
// refcount alone.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>

#include "dns/record.hpp"

namespace sns::server {

using dns::Name;
using dns::RRset;
using dns::RRType;

/// One owner name and every RRset at it. Immutable once published: a
/// txn that changes a node replaces the whole node (RRsets at one
/// owner are small — the per-record cost hides inside the node copy).
struct ZoneNode {
  Name owner;
  std::map<RRType, RRset> types;

  // util::PMap entry interface — keyed by canonical packed bytes with
  // the Name's cached hash, so index probes cost zero extra hashing.
  [[nodiscard]] std::string_view key_view() const noexcept { return owner.packed(); }
  [[nodiscard]] std::size_t key_hash() const noexcept { return owner.hash(); }

  [[nodiscard]] std::size_t record_count() const noexcept {
    std::size_t n = 0;
    for (const auto& [type, rrset] : types) n += rrset.size();
    return n;
  }
};
using ZoneNodePtr = std::shared_ptr<const ZoneNode>;

/// Persistent ordered map Name -> ZoneNode (canonical DNS order).
/// Copying a NameTree is copying one pointer; set/erase path-copy the
/// touched root-to-leaf spine unless this tree is the spine's sole
/// owner (the transient case — a txn mutating its private copy), in
/// which case nodes are patched in place. Reads never touch refcounts
/// and are safe from any thread against a frozen copy.
class NameTree {
 public:
  /// Insert or replace the node owning `value->owner`.
  void set(ZoneNodePtr value);

  /// Remove the node owning `owner`; false if absent.
  bool erase(const Name& owner);

  /// First node with owner >= `key` in canonical order, or nullptr.
  /// This is what empty-non-terminal detection probes.
  [[nodiscard]] const ZoneNode* lower_bound(const Name& key) const noexcept;

  /// In-order (canonical) visit of every node.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(root_.get(), fn);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  struct TreeNode {
    ZoneNodePtr value;
    std::shared_ptr<TreeNode> left;
    std::shared_ptr<TreeNode> right;
  };
  using TreePtr = std::shared_ptr<TreeNode>;

  /// Heap priority of a node: the owner's cached hash keyed with a
  /// per-process random seed (see the file comment — the shape must
  /// not be a function attacker-supplied names can predict).
  static std::uint64_t priority(const Name& owner);

  static TreePtr owned(TreePtr n);
  static TreePtr rotate_left(TreePtr t);
  static TreePtr rotate_right(TreePtr t);
  static TreePtr set_rec(TreePtr t, ZoneNodePtr value, bool& added);
  static TreePtr erase_rec(TreePtr t, const Name& owner, bool& removed);
  static TreePtr merge(TreePtr a, TreePtr b);

  template <typename Fn>
  static void walk(const TreeNode* n, Fn& fn) {
    if (n == nullptr) return;
    walk(n->left.get(), fn);
    fn(*n->value);
    walk(n->right.get(), fn);
  }

  TreePtr root_;
  std::size_t size_ = 0;
};

}  // namespace sns::server
