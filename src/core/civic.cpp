#include "core/civic.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace sns::core {

using util::fail;
using util::Result;

dns::Name loc_root() { return dns::name_of("loc"); }

Result<std::string> normalize_label(std::string_view text) {
  std::string out;
  bool pending_dash = false;
  for (char raw : text) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      if (pending_dash && !out.empty()) out += '-';
      pending_dash = false;
      out += c;
    } else {
      pending_dash = true;
    }
  }
  if (out.empty()) return fail("civic: component '" + std::string(text) + "' has no usable characters");
  if (out.size() > 63) out.resize(63);
  return out;
}

Result<CivicName> CivicName::from_components(std::vector<std::string> components) {
  if (components.empty()) return fail("civic: empty component list");
  CivicName out;
  for (auto& component : components) {
    auto label = normalize_label(component);
    if (!label.ok()) return label.error();
    out.components_.push_back(std::move(label).value());
  }
  return out;
}

Result<CivicName> CivicName::parse_postal(std::string_view address) {
  auto parts = util::split(address, ',');
  if (parts.empty()) return fail("civic: empty address");
  std::vector<std::string> broadest_first;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    auto trimmed = util::trim(*it);
    if (trimmed.empty()) continue;
    broadest_first.emplace_back(trimmed);
  }
  return from_components(std::move(broadest_first));
}

Result<CivicName> CivicName::from_domain(const dns::Name& domain, const dns::Name& root) {
  auto relative = domain.strip_suffix(root);
  if (!relative.has_value()) return fail("civic: domain not under root " + root.to_string());
  if (relative->is_root()) return fail("civic: domain equals the root");
  CivicName out;
  const auto& labels = relative->labels();
  // DNS labels are narrowest-first; civic components broadest-first.
  out.components_.assign(labels.rbegin(), labels.rend());
  return out;
}

Result<dns::Name> CivicName::to_domain(const dns::Name& root) const {
  dns::Name name = root;
  for (const auto& component : components_) {
    auto next = name.prepend(component);
    if (!next.ok()) return next.error();
    name = std::move(next).value();
  }
  return name;
}

CivicName CivicName::parent() const {
  CivicName out;
  out.components_.assign(components_.begin(), components_.end() - 1);
  return out;
}

Result<CivicName> CivicName::child(std::string component) const {
  auto label = normalize_label(component);
  if (!label.ok()) return label.error();
  CivicName out = *this;
  out.components_.push_back(std::move(label).value());
  return out;
}

bool CivicName::contains(const CivicName& other) const {
  if (components_.size() > other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(), other.components_.begin());
}

std::string CivicName::to_string() const {
  std::string out;
  for (auto it = components_.rbegin(); it != components_.rend(); ++it) {
    if (!out.empty()) out += ", ";
    out += *it;
  }
  return out;
}

}  // namespace sns::core
