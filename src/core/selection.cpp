#include "core/selection.hpp"

#include <algorithm>

namespace sns::core {

std::vector<AddressChoice> extract_addresses(const dns::RRset& records) {
  std::vector<AddressChoice> out;
  for (const auto& rr : records) {
    if (const auto* a = std::get_if<dns::AData>(&rr.rdata)) {
      out.push_back({a->address, dns::RRType::A, false});
    } else if (const auto* aaaa = std::get_if<dns::AaaaData>(&rr.rdata)) {
      out.push_back({aaaa->address, dns::RRType::AAAA, false});
    } else if (const auto* bd = std::get_if<dns::BdaddrData>(&rr.rdata)) {
      out.push_back({bd->address, dns::RRType::BDADDR, false});
    } else if (const auto* wifi = std::get_if<dns::WifiData>(&rr.rdata)) {
      out.push_back({wifi->address, dns::RRType::WIFI, false});
    } else if (const auto* lora = std::get_if<dns::LoraData>(&rr.rdata)) {
      out.push_back({lora->devaddr, dns::RRType::LORA, false});
    } else if (const auto* dtmf = std::get_if<dns::DtmfData>(&rr.rdata)) {
      out.push_back({dtmf->tone, dns::RRType::DTMF, false});
    } else if (const auto* txt = std::get_if<dns::TxtData>(&rr.rdata)) {
      // Fallback-encoded extended records survive middleboxes (§2.2).
      auto recovered = dns::from_txt_fallback(*txt);
      if (recovered.ok()) {
        auto nested = extract_addresses({dns::ResourceRecord{
            rr.name, recovered.value().first, rr.klass, rr.ttl, recovered.value().second}});
        for (auto& choice : nested) {
          choice.from_txt_fallback = true;
          out.push_back(std::move(choice));
        }
        continue;
      }
      // Zigbee has no dedicated RR type at all (Table 1); its only wire
      // form is the TXT fallback, decoded here.
      if (txt->strings.size() == 1 && txt->strings[0].starts_with("sns:zigbee=")) {
        auto zigbee = net::ZigbeeAddr::parse(
            std::string_view(txt->strings[0]).substr(sizeof("sns:zigbee=") - 1));
        if (zigbee.ok()) out.push_back({zigbee.value(), dns::RRType::TXT, true});
      }
    }
  }
  return out;
}

std::optional<AddressChoice> choose_address(const dns::RRset& records, SelectionPolicy policy) {
  auto candidates = extract_addresses(records);
  if (candidates.empty()) return std::nullopt;
  auto rank = [&](const AddressChoice& choice) {
    int r = net::connectivity_rank(choice.address);
    return policy == SelectionPolicy::PreferLocal ? r : -r;
  };
  return *std::min_element(candidates.begin(), candidates.end(),
                           [&](const AddressChoice& a, const AddressChoice& b) {
                             return rank(a) < rank(b);
                           });
}

}  // namespace sns::core
