#include "core/uri.hpp"

#include <cctype>
#include <charconv>

namespace sns::core {

using util::fail;
using util::Result;

Result<SnsUri> SnsUri::parse(std::string_view text) {
  SnsUri out;
  std::size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0)
    return fail("uri: missing scheme://");
  out.scheme = std::string(text.substr(0, scheme_end));
  for (char c : out.scheme)
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '+' && c != '-' && c != '.')
      return fail("uri: invalid scheme character");

  std::string_view rest = text.substr(scheme_end + 3);
  std::size_t path_start = rest.find('/');
  std::string_view authority = path_start == std::string_view::npos ? rest
                                                                    : rest.substr(0, path_start);
  if (path_start != std::string_view::npos) out.path = std::string(rest.substr(path_start));

  if (authority.empty()) return fail("uri: empty authority");
  std::size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    std::string_view port_text = authority.substr(colon + 1);
    unsigned port = 0;
    auto [ptr, ec] = std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() || port > 0xffff)
      return fail("uri: bad port");
    out.port = static_cast<std::uint16_t>(port);
    authority = authority.substr(0, colon);
  }

  auto name = dns::Name::parse(authority);
  if (!name.ok()) return fail("uri: bad authority: " + name.error().message);
  out.authority = std::move(name).value();
  return out;
}

std::string SnsUri::to_string() const {
  std::string out = scheme + "://" + authority.to_string();
  if (port.has_value()) {
    out += ':';
    out += std::to_string(*port);
  }
  out += path;
  return out;
}

bool SnsUri::is_spatial(const dns::Name& root) const { return authority.is_subdomain_of(root); }

}  // namespace sns::core
