#include "core/mobility.hpp"

#include "server/update.hpp"

namespace sns::core {

using dns::Name;
using util::fail;
using util::Result;

Result<MoveReport> move_device(SpatialZone& from, SpatialZone& to, const Name& device_name) {
  const Device* existing = from.find_device(device_name);
  if (existing == nullptr)
    return fail("move: no device " + device_name.to_string() + " in " + from.domain().to_string());

  Device moved = *existing;
  // The device keeps its function; position must be re-established in
  // the new domain (callers update it to the real new position first).
  if (!to.bounds().contains(moved.position)) moved.position = to.bounds().center();

  if (auto s = from.deregister_device(device_name); !s.ok()) return s.error();
  auto new_name = to.register_device(moved);
  if (!new_name.ok()) return new_name.error();

  MoveReport report;
  report.old_name = device_name;
  report.new_name = new_name.value();

  // Leave a forwarding CNAME at the old identity, in both views.
  bool ok_local = from.local_zone()->add(dns::make_cname(device_name, new_name.value())).ok();
  bool ok_global = from.global_zone()->add(dns::make_cname(device_name, new_name.value())).ok();
  report.cname_created = ok_local && ok_global;
  return report;
}

Result<Name> replace_device(SpatialZone& zone, const Name& device_name, Device replacement) {
  const Device* existing = zone.find_device(device_name);
  if (existing == nullptr) return fail("replace: no device " + device_name.to_string());
  replacement.function = existing->function;
  replacement.position = existing->position;
  if (auto s = zone.deregister_device(device_name); !s.ok()) return s.error();
  auto name = zone.register_device(std::move(replacement));
  if (!name.ok()) return name.error();
  if (!(name.value() == device_name))
    return fail("replace: name changed unexpectedly to " + name.value().to_string());
  return name;
}

Result<dns::Rcode> send_geodetic_update(resolver::StubResolver& stub, SpatialZone& zone,
                                        const Name& device_name, const geo::GeoPoint& position,
                                        const std::optional<dns::TsigKey>& key,
                                        std::uint64_t now_seconds) {
  auto loc = dns::LocData::from_degrees(position.latitude, position.longitude, position.altitude,
                                        1.0);
  if (!loc.ok()) return loc.error();

  // Delete the old LOC RRset, add the new one — one atomic update.
  dns::Message update = server::make_update_delete_rrset(42, zone.domain(), device_name,
                                                         dns::RRType::LOC);
  update.authorities.push_back(dns::make_loc(device_name, loc.value()));
  if (key.has_value()) dns::tsig_sign(update, *key, now_seconds);

  auto response = stub.exchange(update);
  if (!response.ok()) return response.error();
  if (response.value().header.rcode == dns::Rcode::NoError) {
    // Mirror into the geodetic index (the zone's own nameserver applied
    // the authoritative change; we keep the in-process view coherent).
    if (auto s = zone.update_position(device_name, position); !s.ok()) return s.error();
  }
  return response.value().header.rcode;
}

}  // namespace sns::core
