// civic.hpp — civic location names (§2.3).
//
// "Civic names are a location based on structured human-readable
// addresses … which form a hierarchy representing containment." A
// CivicName is that hierarchy, broadest component first; its domain
// form reverses into DNS labels under a root (the proposed `.loc` TLD,
// or any existing domain for incremental deployment —
// `whitehouse.loc.usa.gov` works the same way).
#pragma once

#include <string>
#include <vector>

#include "dns/name.hpp"
#include "util/result.hpp"

namespace sns::core {

/// The proposed top-level domain for global spatial names.
dns::Name loc_root();

class CivicName {
 public:
  /// Components broadest-first: {"usa","dc","washington","penn-ave",
  /// "1600","oval-office"}. Each component is normalised to a DNS label
  /// (lowercase, spaces and punctuation folded to '-').
  static util::Result<CivicName> from_components(std::vector<std::string> components);

  /// Parse a postal-style address, narrowest-first with commas:
  /// "Oval Office, 1600 Pennsylvania Ave NW, Washington, DC, USA".
  static util::Result<CivicName> parse_postal(std::string_view address);

  /// Recover a civic name from its domain form under `root`.
  static util::Result<CivicName> from_domain(const dns::Name& domain, const dns::Name& root);

  [[nodiscard]] const std::vector<std::string>& components() const noexcept {
    return components_;
  }
  [[nodiscard]] std::size_t depth() const noexcept { return components_.size(); }

  /// Domain form: narrowest component is the leftmost label.
  /// {"usa",…,"oval-office"} -> oval-office.….usa.loc
  [[nodiscard]] util::Result<dns::Name> to_domain(const dns::Name& root = loc_root()) const;

  /// One level broader ("the containing space"). Precondition: depth()>0.
  [[nodiscard]] CivicName parent() const;

  /// One level narrower.
  [[nodiscard]] util::Result<CivicName> child(std::string component) const;

  /// True if `other` is contained in (or equals) this location.
  [[nodiscard]] bool contains(const CivicName& other) const;

  /// Human form, narrowest first: "oval-office, 1600, penn-ave, …".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const CivicName&, const CivicName&) = default;

 private:
  std::vector<std::string> components_;  // broadest first
};

/// Normalise free text into a DNS label: lowercase, [a-z0-9-] only,
/// runs of other characters collapse to single '-'.
util::Result<std::string> normalize_label(std::string_view text);

}  // namespace sns::core
