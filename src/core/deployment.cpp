#include "core/deployment.hpp"

#include <cassert>

namespace sns::core {

using dns::Name;
using dns::name_of;
using util::Result;

SnsDeployment::SnsDeployment(std::uint64_t seed)
    : seed_(seed), network_(seed), tracer_(network_.clock()) {
  network_.set_metrics(&metrics_);
  network_.set_tracer(&tracer_);

  // Root (".") and the .loc TLD server.
  root_node_ = network_.add_node("root-ns");
  loc_node_ = network_.add_node("loc-ns");
  network_.connect(root_node_, loc_node_, net::wan_link(net::ms(20)));

  Name root_name = name_of(".");
  Name root_ns_name = name_of("a.root-servers.net");
  Name loc_ns_name = name_of("ns.loc");

  root_zone_ = std::make_shared<server::Zone>(root_name, root_ns_name);
  loc_zone_ = std::make_shared<server::Zone>(loc_root(), loc_ns_name);

  net::Ipv4Addr root_address = next_address();
  net::Ipv4Addr loc_address = next_address();

  // Root delegates .loc.
  (void)root_zone_->add(dns::make_ns(loc_root(), loc_ns_name));
  (void)root_zone_->add(dns::make_a(loc_ns_name, loc_address));
  (void)loc_zone_->add(dns::make_a(loc_ns_name, loc_address));

  root_server_ = std::make_unique<server::AuthoritativeServer>("root");
  root_server_->add_zone(root_zone_);
  root_server_->set_metrics(&metrics_);
  root_server_->set_tracer(&tracer_);
  loc_server_ = std::make_unique<server::AuthoritativeServer>("loc");
  loc_server_->add_zone(loc_zone_);
  loc_server_->set_metrics(&metrics_);
  loc_server_->set_tracer(&tracer_);
  loc_geo_ = std::make_unique<GeoResponder>(loc_root());

  directory_.register_server(root_ns_name, root_address, root_node_);
  directory_.register_server(loc_ns_name, loc_address, loc_node_);

  root_server_->bind_to_network(network_, root_node_,
                                [](net::NodeId) { return server::ClientContext{}; });

  // The .loc server answers both ordinary queries and _geo descent.
  network_.set_handler(loc_node_, [this](std::span<const std::uint8_t> payload,
                                         net::NodeId from) -> std::optional<util::Bytes> {
    auto query = dns::Message::decode(payload);
    if (!query.ok()) return std::nullopt;
    if (!query.value().questions.empty() &&
        is_geo_query(query.value().questions.front().name)) {
      if (auto geo_answer = loc_geo_->handle(query.value())) return geo_answer->encode();
    }
    server::ClientContext ctx;
    ctx.node = from;
    return loc_server_->handle(query.value(), ctx).encode();
  });
}

net::Ipv4Addr SnsDeployment::next_address() {
  std::uint32_t host = next_host_++;
  return net::Ipv4Addr::from_u32((10u << 24) | host);
}

std::uint32_t SnsDeployment::seconds_now() const {
  return static_cast<std::uint32_t>(
      std::chrono::duration_cast<std::chrono::seconds>(network_.clock().now()).count());
}

ZoneSite& SnsDeployment::add_zone(const CivicName& civic, const geo::BoundingBox& bounds,
                                  ZoneSite* parent, const ZoneOptions& options) {
  sites_.emplace_back();
  ZoneSite& site = sites_.back();
  site.parent = parent;
  site.zone = std::make_unique<SpatialZone>(civic, bounds, options.index, options.hilbert_order);
  auto ns_name = site.zone->domain().prepend("ns");
  assert(ns_name.ok());
  site.ns_name = std::move(ns_name).value();
  site.ns_address = next_address();
  site.ns_node = network_.add_node("ns." + site.zone->domain().to_string());

  net::NodeId uplink_node = parent != nullptr ? parent->ns_node : loc_node_;
  network_.connect(site.ns_node, uplink_node, options.uplink);
  directory_.register_server(site.ns_name, site.ns_address, site.ns_node);

  site.boundary = options.network_boundary;
  if (options.is_room) {
    site.room = next_room_++;
    site.room_secret = "room-secret-" + site.zone->domain().to_string();
    // The beacon is co-located with the edge nameserver appliance.
    network_.place_in_room(site.ns_node, *site.room);
    site.beacon = std::make_unique<PresenceBeacon>(network_, site.ns_node, site.room_secret,
                                                   seed_ ^ site.ns_node);
  }

  // Authoritative server with split-horizon views: internal clients see
  // the local zone, everyone else the global zone.
  site.server = std::make_unique<server::AuthoritativeServer>(site.zone->domain().to_string());
  site.server->set_metrics(&metrics_);
  site.server->set_tracer(&tracer_);
  std::size_t internal_view = site.server->add_view("internal", server::match_internal());
  std::size_t external_view = site.server->add_view("external", server::match_any());
  site.server->add_zone(internal_view, site.zone->local_zone());
  site.server->add_zone(external_view, site.zone->global_zone());

  site.geo = std::make_unique<GeoResponder>(site.zone.get());

  // Delegate from the parent (or from .loc for top-level zones), and
  // register in the parent's geodetic responder.
  GeoChild child{site.zone->domain(), bounds, site.zone->shape(), site.ns_name, site.ns_address};
  if (parent != nullptr) {
    (void)parent->zone->delegate_child(site.zone->domain(), site.ns_name, site.ns_address);
    parent->geo->add_child(child);
    parent->children.push_back(&site);
  } else {
    (void)loc_zone_->add(dns::make_ns(site.zone->domain(), site.ns_name));
    (void)loc_zone_->add(dns::make_a(site.ns_name, site.ns_address));
    loc_geo_->add_child(child);
  }

  bind_site(site);
  return site;
}

namespace {

/// Nearest enclosing network boundary, the site itself included.
const ZoneSite* enclosing_boundary(const ZoneSite* site) {
  for (const ZoneSite* z = site; z != nullptr; z = z->parent)
    if (z->boundary) return z;
  return nullptr;
}

}  // namespace

server::ClientContext SnsDeployment::context_for(net::NodeId node, const ZoneSite& site) const {
  server::ClientContext ctx;
  ctx.node = node;
  ctx.room = network_.room_of(node);
  // Internal = the client sits behind the same NAT/firewall boundary as
  // the serving zone. Without boundaries (infrastructure-only
  // hierarchies) fall back to "attached to this zone or a descendant".
  auto attached = attachment_.find(node);
  if (attached != attachment_.end()) {
    const ZoneSite* client_boundary = enclosing_boundary(attached->second);
    const ZoneSite* site_boundary = enclosing_boundary(&site);
    if (client_boundary != nullptr || site_boundary != nullptr) {
      ctx.internal = client_boundary == site_boundary && client_boundary != nullptr;
    } else {
      for (const ZoneSite* z = attached->second; z != nullptr; z = z->parent) {
        if (z == &site) {
          ctx.internal = true;
          break;
        }
      }
    }
  }
  auto listener = listeners_.find(node);
  if (listener != listeners_.end() && listener->second->has_token())
    ctx.presence_tokens.insert(listener->second->last_token());
  return ctx;
}

void SnsDeployment::bind_site(ZoneSite& site) {
  ZoneSite* site_ptr = &site;
  network_.set_handler(site.ns_node, [this, site_ptr](std::span<const std::uint8_t> payload,
                                                      net::NodeId from)
                                         -> std::optional<util::Bytes> {
    auto query = dns::Message::decode(payload);
    if (!query.ok()) return std::nullopt;
    if (!query.value().questions.empty() &&
        is_geo_query(query.value().questions.front().name)) {
      if (auto geo_answer = site_ptr->geo->handle(query.value()))
        return dns::encode_for_transport(query.value(), std::move(*geo_answer));
    }
    return dns::encode_for_transport(
        query.value(), site_ptr->server->handle(query.value(), context_for(from, *site_ptr)));
  });
}

Result<Name> SnsDeployment::add_device(ZoneSite& site, Device device, bool attach_node) {
  if (attach_node) {
    device.node = network_.add_node(device.function + "@" + site.zone->domain().to_string());
    network_.connect(device.node, site.ns_node, net::lan_link());
    if (site.room.has_value()) network_.place_in_room(device.node, *site.room);
    attachment_[device.node] = &site;
    listeners_[device.node] = std::make_unique<PresenceListener>(network_, device.node);
  }
  net::NodeId device_node = device.node;
  bool protect = device.presence_protected;
  auto name = site.zone->register_device(std::move(device));
  if (!name.ok()) return name;

  if (protect && site.room.has_value()) {
    site.server->add_presence_rule(server::PresenceRule{
        name.value(), *site.room,
        site.beacon != nullptr ? site.beacon->token_ref() : nullptr});
  }
  (void)device_node;
  return name;
}

net::NodeId SnsDeployment::add_client(const std::string& name, ZoneSite& site, bool inside) {
  net::NodeId node = network_.add_node(name);
  if (inside) {
    network_.connect(node, site.ns_node, net::lan_link());
    if (site.room.has_value()) network_.place_in_room(node, *site.room);
    attachment_[node] = &site;
  } else {
    // Outside clients reach the world through the core (the .loc node
    // stands in for "the Internet").
    network_.connect(node, loc_node_, net::wan_link());
  }
  listeners_[node] = std::make_unique<PresenceListener>(network_, node);
  return node;
}

resolver::StubResolver SnsDeployment::make_stub(net::NodeId client, ZoneSite& site) {
  resolver::StubResolver stub(network_, client, site.ns_node);
  // Search list: the zone itself, then each ancestor domain (§2.1).
  std::vector<Name> suffixes;
  for (const ZoneSite* z = &site; z != nullptr; z = z->parent)
    suffixes.push_back(z->zone->domain());
  stub.set_search_list(std::move(suffixes));
  stub.set_metrics(&metrics_);
  stub.set_tracer(&tracer_);
  return stub;
}

resolver::IterativeResolver SnsDeployment::make_iterative(net::NodeId client) {
  resolver::IterativeResolver iterative(network_, client, directory_, root_node_);
  iterative.set_metrics(&metrics_);
  iterative.set_tracer(&tracer_);
  return iterative;
}

net::NodeId SnsDeployment::add_recursive_resolver(const std::string& name, ZoneSite* site) {
  net::NodeId node = network_.add_node(name);
  if (site != nullptr) {
    network_.connect(node, site->ns_node, net::lan_link());
    attachment_[node] = site;
  } else {
    network_.connect(node, loc_node_, net::wan_link());
  }
  recursives_.emplace_back(network_, node, directory_, root_node_);
  recursives_.back().set_metrics(&metrics_);
  recursives_.back().set_tracer(&tracer_);
  recursives_.back().bind();
  return node;
}

resolver::StubResolver SnsDeployment::make_plain_stub(net::NodeId client, net::NodeId server) {
  resolver::StubResolver stub(network_, client, server);
  stub.set_metrics(&metrics_);
  stub.set_tracer(&tracer_);
  return stub;
}

GeodeticClient SnsDeployment::make_geodetic_client(net::NodeId client) {
  return GeodeticClient(network_, client, directory_, loc_root(), loc_node_);
}

namespace {

CivicName civic_of(std::initializer_list<const char*> components) {
  std::vector<std::string> list;
  for (const char* c : components) list.emplace_back(c);
  auto civic = CivicName::from_components(std::move(list));
  assert(civic.ok());
  return std::move(civic).value();
}

}  // namespace

WhiteHouseWorld make_white_house_world(std::uint64_t seed) {
  WhiteHouseWorld world;
  world.deployment = std::make_unique<SnsDeployment>(seed);
  SnsDeployment& d = *world.deployment;

  // Real-ish footprints (degrees): USA, DC, down to the Oval Office.
  geo::BoundingBox usa_box{24.0, -125.0, 49.5, -66.0};
  geo::BoundingBox dc_box{38.79, -77.12, 39.0, -76.90};
  geo::BoundingBox washington_box = dc_box;  // city ~ district here
  geo::BoundingBox penn_box{38.8955, -77.042, 38.90, -77.032};
  geo::BoundingBox wh_box{38.8970, -77.0387, 38.8980, -77.0360};
  geo::BoundingBox oval_box{38.89725, -77.03745, 38.89735, -77.03730};

  geo::BoundingBox uk_box{49.9, -8.2, 60.9, 1.8};
  geo::BoundingBox london_box{51.28, -0.51, 51.70, 0.33};
  geo::BoundingBox downing_box{51.5032, -0.1280, 51.5036, -0.1272};
  geo::BoundingBox cabinet_box{51.50332, -0.12780, 51.50338, -0.12770};

  ZoneOptions country{IndexKind::Hilbert, 12, false, false, net::wan_link(net::ms(40))};
  ZoneOptions metro{IndexKind::Hilbert, 12, false, false, net::wan_link(net::ms(10))};
  ZoneOptions campus{IndexKind::Hilbert, 10, false, false, net::wan_link(net::ms(5))};
  // Buildings own the NAT/firewall boundary: everything inside the
  // White House (or Number 10) shares one private network.
  ZoneOptions building{IndexKind::Hilbert, 10, false, true, net::wan_link(net::ms(5))};
  ZoneOptions room{IndexKind::Hilbert, 8, true, false, net::lan_link()};

  world.usa = &d.add_zone(civic_of({"usa"}), usa_box, nullptr, country);
  world.dc = &d.add_zone(civic_of({"usa", "dc"}), dc_box, world.usa, metro);
  world.washington =
      &d.add_zone(civic_of({"usa", "dc", "washington"}), washington_box, world.dc, metro);
  world.penn_ave = &d.add_zone(civic_of({"usa", "dc", "washington", "penn-ave"}), penn_box,
                               world.washington, campus);
  world.white_house = &d.add_zone(civic_of({"usa", "dc", "washington", "penn-ave", "1600"}),
                                  wh_box, world.penn_ave, building);
  world.oval_office =
      &d.add_zone(civic_of({"usa", "dc", "washington", "penn-ave", "1600", "oval-office"}),
                  oval_box, world.white_house, room);

  world.uk = &d.add_zone(civic_of({"uk"}), uk_box, nullptr, country);
  world.london = &d.add_zone(civic_of({"uk", "london"}), london_box, world.uk, metro);
  world.downing = &d.add_zone(civic_of({"uk", "london", "downing-street", "10"}), downing_box,
                              world.london, building);
  world.cabinet_room = &d.add_zone(
      civic_of({"uk", "london", "downing-street", "10", "cabinet-room"}), cabinet_box,
      world.downing, room);

  // Devices of Figure 3. The microphone is presence-protected (§3.1).
  Device mic;
  mic.function = "mic";
  mic.local_addresses = {net::Bdaddr{{0x01, 0x23, 0x45, 0x67, 0x89, 0xab}},
                         net::Ipv4Addr{{192, 0, 3, 10}},
                         net::ZigbeeAddr{{0, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77}}};
  mic.position = {38.897291, -77.037399, 18.0};
  mic.presence_protected = true;

  Device speaker;
  speaker.function = "speaker";
  speaker.local_addresses = {net::Bdaddr{{0x0a, 0x1b, 0x2c, 0x3d, 0x4e, 0x5f}},
                             net::Ipv4Addr{{192, 0, 3, 11}},
                             net::DtmfTone{"421#"}};
  speaker.position = {38.897305, -77.037370, 18.0};

  Device display;
  display.function = "display";
  display.local_addresses = {net::Ipv4Addr{{192, 0, 3, 12}},
                             net::Bdaddr{{0x6a, 0x7b, 0x8c, 0x9d, 0xae, 0xbf}}};
  auto display_global = net::Ipv6Addr::parse("2001:db8:0:1::12");
  assert(display_global.ok());
  display.global_address = display_global.value();
  display.position = {38.897320, -77.037340, 18.5};

  Device camera;
  camera.function = "camera";
  camera.local_addresses = {net::Ipv4Addr{{192, 0, 9, 20}}};
  auto camera_global = net::Ipv6Addr::parse("2001:db8:0:2::20");
  assert(camera_global.ok());
  camera.global_address = camera_global.value();
  camera.position = {51.503345, -0.127755, 6.0};

  auto mic_name = d.add_device(*world.oval_office, std::move(mic));
  auto speaker_name = d.add_device(*world.oval_office, std::move(speaker));
  auto display_name = d.add_device(*world.oval_office, std::move(display));
  auto camera_name = d.add_device(*world.cabinet_room, std::move(camera));
  assert(mic_name.ok() && speaker_name.ok() && display_name.ok() && camera_name.ok());
  world.mic = mic_name.value();
  world.speaker = speaker_name.value();
  world.display = display_name.value();
  world.camera = camera_name.value();
  return world;
}

}  // namespace sns::core
