// geodetic.hpp — geodetic resolution (§3.2): coordinates → names.
//
// "we introduce a geodetic resolution to resolve a coordinate-based
// location to spatial names or network addresses … a query to
// '38.8974°N, 77.0374°W' would start at '.loc', which would return
// '.usa' as the next domain to check, operating like normal iterative
// DNS."
//
// The protocol is plain DNS: an area query is a PTR question for
//     q-<lat>x<lon>x<half>._geo.<domain>
// (scaled-integer microdegrees, offset to stay unsigned). The zone's
// nameserver answers with
//   * PTR records naming devices whose position intersects the area, and
//   * NS records in the AUTHORITY section for every child spatial
//     domain whose footprint intersects the area — several at once for
//     border queries, which the client pursues concurrently.
// Because it is just DNS, answers cache, sign and transport like
// anything else.
#pragma once

#include <functional>

#include "core/spatial_zone.hpp"
#include "dns/message.hpp"
#include "net/network.hpp"
#include "resolver/iterative.hpp"

namespace sns::core {

/// Encode an area query name under `domain`.
util::Result<dns::Name> encode_geo_query(const geo::BoundingBox& area, const dns::Name& domain);

/// Parse an area query name; also yields the domain it was sent to.
util::Result<std::pair<geo::BoundingBox, dns::Name>> parse_geo_query(const dns::Name& qname);

/// True if `qname` contains the `_geo` protocol label.
bool is_geo_query(const dns::Name& qname);

/// A child spatial domain a GeoResponder can refer to.
struct GeoChild {
  dns::Name apex;
  geo::BoundingBox footprint;
  std::optional<geo::Polygon> shape;  // precise border when available
  dns::Name ns_name;
  net::Ipv4Addr ns_address;
};

/// Server-side handler for _geo queries over one spatial zone.
class GeoResponder {
 public:
  /// Responder for a device-bearing zone.
  explicit GeoResponder(const SpatialZone* zone) : zone_(zone), domain_(zone->domain()) {}
  /// Referral-only responder (e.g. the `.loc` root, which has children
  /// but no devices of its own).
  explicit GeoResponder(dns::Name domain) : zone_(nullptr), domain_(std::move(domain)) {}

  void add_child(GeoChild child) { children_.push_back(std::move(child)); }

  /// Answer a _geo query addressed to this zone; nullopt if the qname
  /// is not a valid geo query for this domain.
  [[nodiscard]] std::optional<dns::Message> handle(const dns::Message& query) const;

  [[nodiscard]] const std::vector<GeoChild>& children() const noexcept { return children_; }

 private:
  const SpatialZone* zone_;
  dns::Name domain_;
  std::vector<GeoChild> children_;
};

/// Client-side iterative geodetic resolution.
struct GeoResolution {
  std::vector<dns::Name> names;   // devices found in the area
  int zones_visited = 0;
  int fanout_max = 1;             // concurrent domains pursued (border case)
  int queries_sent = 0;
  net::Duration latency{0};       // overlap-adjusted (parallel pursuit)
};

class GeodeticClient {
 public:
  /// `root_domain`/`root_server`: where descent starts (normally the
  /// `.loc` nameserver).
  GeodeticClient(net::Network& network, net::NodeId self,
                 const resolver::ServerDirectory& directory, dns::Name root_domain,
                 net::NodeId root_server);

  util::Result<GeoResolution> resolve_area(const geo::BoundingBox& area);
  util::Result<GeoResolution> resolve_point(const geo::GeoPoint& point, double half_side_deg);

 private:
  void descend(const geo::BoundingBox& area, const dns::Name& domain, net::NodeId server,
               int depth, GeoResolution& out);

  net::Network& network_;
  net::NodeId self_;
  const resolver::ServerDirectory& directory_;
  dns::Name root_domain_;
  net::NodeId root_server_;
  std::uint16_t next_id_ = 7000;
};

}  // namespace sns::core
