// presence.hpp — proof of physical co-location via audio beacons (§3.1).
//
// "authentication to a room like the Oval Office could be done by being
// physically present in the same space using audio beacons that chirp an
// encoded message to prove presence." The room's beacon periodically
// chirps a short-lived token HMAC(room_secret, nonce) over the
// room-scoped audio medium. Hearing the chirp *is* the proof: listeners
// in the room present the heard token to the nameserver (which derives
// the same token from the shared secret); sound does not leave the
// room, so outsiders cannot obtain it. The secret itself is never
// chirped and listeners never learn it.
#pragma once

#include <memory>
#include <string>

#include "net/network.hpp"
#include "util/bytes.hpp"

namespace sns::core {

/// Derive the presence token for a heard nonce. The secret is shared
/// between the beacon and the room's nameserver — never chirped.
std::string presence_token(std::string_view room_secret, std::span<const std::uint8_t> nonce);

/// The room's chirping beacon, attached to a simulator node placed in
/// the room.
class PresenceBeacon {
 public:
  PresenceBeacon(net::Network& network, net::NodeId node, std::string room_secret,
                 std::uint64_t seed);

  /// Chirp a fresh nonce now; every listener in the room hears it.
  /// Returns the token the nameserver should currently accept.
  std::string chirp();

  [[nodiscard]] const std::string& current_token() const noexcept { return *current_token_; }
  /// Live view for server::PresenceRule — follows rotation on chirp.
  [[nodiscard]] std::shared_ptr<const std::string> token_ref() const noexcept {
    return current_token_;
  }

 private:
  net::Network& network_;
  net::NodeId node_;
  std::string room_secret_;
  util::Rng rng_;
  std::shared_ptr<std::string> current_token_ = std::make_shared<std::string>();
};

/// A device-side listener that records the tokens it hears. It needs no
/// secret — possession of a heard token is the credential.
class PresenceListener {
 public:
  PresenceListener(net::Network& network, net::NodeId node);

  [[nodiscard]] const std::string& last_token() const noexcept { return last_token_; }
  [[nodiscard]] bool has_token() const noexcept { return !last_token_.empty(); }

 private:
  std::string last_token_;
};

}  // namespace sns::core
