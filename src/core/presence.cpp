#include "core/presence.hpp"

#include "util/sha1.hpp"
#include "util/strings.hpp"

namespace sns::core {

std::string presence_token(std::string_view room_secret, std::span<const std::uint8_t> nonce) {
  std::vector<std::uint8_t> key(room_secret.begin(), room_secret.end());
  auto mac = util::hmac_sha1(std::span(key), nonce);
  return util::to_hex(std::span(mac.data(), mac.size()));
}

PresenceBeacon::PresenceBeacon(net::Network& network, net::NodeId node, std::string room_secret,
                               std::uint64_t seed)
    : network_(network), node_(node), room_secret_(std::move(room_secret)), rng_(seed) {}

std::string PresenceBeacon::chirp() {
  util::Bytes nonce(16);
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng_.next_below(256));
  *current_token_ = presence_token(room_secret_, std::span(nonce));
  // Chirp the derived token itself: hearing it is the credential.
  util::Bytes payload(current_token_->begin(), current_token_->end());
  network_.audio_broadcast(node_, std::span(payload));
  return *current_token_;
}

PresenceListener::PresenceListener(net::Network& network, net::NodeId node) {
  network.set_audio_handler(node, [this](std::span<const std::uint8_t> payload, net::NodeId) {
    last_token_.assign(payload.begin(), payload.end());
  });
}

}  // namespace sns::core
