// spatial_zone.hpp — a spatial domain: civic name + geometry + devices.
//
// The central object of the SNS. A SpatialZone binds
//   * a civic domain name (its DNS apex, e.g.
//     oval-office.1600.penn-ave.washington.dc.usa.loc),
//   * a geodetic footprint (bounding box, optionally a polygon for the
//     "very complex geometries" of high-level domains, §3.2),
//   * a registry of devices with all their addresses (§2.2),
//   * two zone views for split-horizon resolution (§3.1): the *local*
//     view carries link-layer addresses (BDADDR, WIFI, …) and private
//     IPs; the *global* view carries only globally routable addresses,
//   * a geodetic index answering "which devices are in this area?".
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/civic.hpp"
#include "dns/loc.hpp"
#include "geo/hilbert_index.hpp"
#include "geo/index.hpp"
#include "net/address.hpp"
#include "net/network.hpp"
#include "server/zone.hpp"

namespace sns::core {

/// A networked thing living in a spatial domain.
struct Device {
  std::string function;                       // "mic", "speaker", "display"
  dns::Name name;                             // assigned FQDN (zero-conf)
  std::vector<net::AnyAddress> local_addresses;
  std::optional<net::Ipv6Addr> global_address;  // set => externally reachable
  geo::GeoPoint position;
  double position_accuracy_m = 1.0;
  net::NodeId node = net::kInvalidNode;       // simulator attachment
  bool presence_protected = false;            // §3.1 Oval Office microphone
};

enum class IndexKind { Naive, Hilbert, RTree, Quadtree };

class SpatialZone {
 public:
  /// `hilbert_order` applies when kind == Hilbert.
  SpatialZone(CivicName civic, geo::BoundingBox bounds, IndexKind kind = IndexKind::Hilbert,
              int hilbert_order = 10, const dns::Name& root = loc_root());

  [[nodiscard]] const CivicName& civic() const noexcept { return civic_; }
  [[nodiscard]] const dns::Name& domain() const noexcept { return domain_; }
  [[nodiscard]] const geo::BoundingBox& bounds() const noexcept { return bounds_; }
  void set_shape(geo::Polygon shape) { shape_ = std::move(shape); }
  [[nodiscard]] const std::optional<geo::Polygon>& shape() const noexcept { return shape_; }

  /// The split-horizon views, served by an AuthoritativeServer.
  [[nodiscard]] const std::shared_ptr<server::Zone>& local_zone() const noexcept {
    return local_zone_;
  }
  [[nodiscard]] const std::shared_ptr<server::Zone>& global_zone() const noexcept {
    return global_zone_;
  }

  /// Zero-configuration naming (§2.3): assigns `<function>` (or
  /// `<function>-N` if taken) under the zone apex, derives local/global
  /// records from the device's addresses, adds a LOC record from its
  /// position, and indexes it geodetically. Returns the final name.
  util::Result<dns::Name> register_device(Device device);

  util::Status deregister_device(const dns::Name& name);

  [[nodiscard]] const Device* find_device(const dns::Name& name) const;
  [[nodiscard]] std::vector<const Device*> devices() const;
  [[nodiscard]] std::size_t device_count() const noexcept { return devices_.size(); }

  /// Geodetic resolution, local case (§3.2): device names whose
  /// position intersects `area`.
  [[nodiscard]] std::vector<dns::Name> devices_in(const geo::BoundingBox& area) const;

  /// Move a registered device (dynamic geodetic update, §4.1).
  util::Status update_position(const dns::Name& name, const geo::GeoPoint& position);

  /// Record a delegation to a child spatial domain in both views.
  util::Status delegate_child(const dns::Name& child_apex, const dns::Name& ns_name,
                              net::Ipv4Addr ns_address);

  [[nodiscard]] const geo::SpatialIndex& index() const noexcept { return *index_; }

 private:
  util::Status add_device_records(const Device& device);
  void remove_device_records(const Device& device);

  CivicName civic_;
  dns::Name domain_;
  geo::BoundingBox bounds_;
  std::optional<geo::Polygon> shape_;
  std::unique_ptr<geo::SpatialIndex> index_;
  std::shared_ptr<server::Zone> local_zone_;
  std::shared_ptr<server::Zone> global_zone_;
  std::vector<Device> devices_;
  std::map<dns::Name, geo::EntryId> entry_ids_;
  std::map<geo::EntryId, dns::Name> names_by_entry_;
  geo::EntryId next_entry_ = 1;
};

/// Build the RR(s) describing one address of a device (Table 1 mapping);
/// Zigbee has no dedicated type and uses the TXT fallback encoding.
std::vector<dns::ResourceRecord> records_for_address(const dns::Name& owner,
                                                     const net::AnyAddress& address,
                                                     const dns::Name& zone_domain,
                                                     std::uint32_t ttl = 120);

}  // namespace sns::core
