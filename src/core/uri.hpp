// uri.hpp — SNS URIs (§2.1, §4.4).
//
// "The domain names can also be combined into a fully qualified domain
// name, allowing the device to be named globally as a URI, e.g.
// capnp://mic.oval-office.1600.penn-ave.washington.dc.usa.loc/secret."
// Any scheme works — the authority is simply a spatial name.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dns/name.hpp"
#include "util/result.hpp"

namespace sns::core {

struct SnsUri {
  std::string scheme;           // "capnp", "https", "matrix", ...
  dns::Name authority;          // the spatial name
  std::optional<std::uint16_t> port;
  std::string path;             // includes the leading '/', may be empty

  static util::Result<SnsUri> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  /// True if the authority sits under the `.loc` spatial TLD (or a
  /// caller-supplied spatial root for incremental deployments).
  [[nodiscard]] bool is_spatial(const dns::Name& root) const;

  friend bool operator==(const SnsUri&, const SnsUri&) = default;
};

}  // namespace sns::core
