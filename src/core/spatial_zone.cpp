#include "core/spatial_zone.hpp"

#include <algorithm>

#include "geo/naive_index.hpp"
#include "geo/quadtree.hpp"
#include "geo/rtree.hpp"

namespace sns::core {

using dns::Name;
using util::fail;
using util::Result;
using util::Status;

namespace {

std::unique_ptr<geo::SpatialIndex> make_index(IndexKind kind, const geo::BoundingBox& bounds,
                                              int hilbert_order) {
  switch (kind) {
    case IndexKind::Naive: return std::make_unique<geo::NaiveIndex>();
    case IndexKind::Hilbert: return std::make_unique<geo::HilbertIndex>(bounds, hilbert_order);
    case IndexKind::RTree: return std::make_unique<geo::RTree>();
    case IndexKind::Quadtree: return std::make_unique<geo::Quadtree>(bounds);
  }
  return std::make_unique<geo::NaiveIndex>();
}

Name must(Result<Name> name) {
  // Internal invariant: zone-derived names are always valid.
  if (!name.ok()) std::abort();
  return std::move(name).value();
}

// The registry mutators edit through the facade's one-op commits
// (which deliberately leave the serial alone), then publish the whole
// edit as one serial bump per zone — mirroring the old explicit
// bump_serial() call, now an empty forced-bump transaction.
void publish_serial(server::Zone& zone) {
  auto txn = zone.txn();
  txn.bump_serial();
  (void)zone.commit(std::move(txn));
}

}  // namespace

std::vector<dns::ResourceRecord> records_for_address(const Name& owner,
                                                     const net::AnyAddress& address,
                                                     const Name& zone_domain, std::uint32_t ttl) {
  std::vector<dns::ResourceRecord> out;
  if (const auto* bd = std::get_if<net::Bdaddr>(&address)) {
    out.push_back(dns::make_bdaddr(owner, *bd, ttl));
  } else if (const auto* v4 = std::get_if<net::Ipv4Addr>(&address)) {
    out.push_back(dns::make_a(owner, *v4, ttl));
  } else if (const auto* v6 = std::get_if<net::Ipv6Addr>(&address)) {
    out.push_back(dns::make_aaaa(owner, *v6, ttl));
  } else if (const auto* tone = std::get_if<net::DtmfTone>(&address)) {
    out.push_back(dns::ResourceRecord{owner, dns::RRType::DTMF, dns::RRClass::IN, ttl,
                                      dns::DtmfData{*tone}});
  } else if (const auto* lora = std::get_if<net::LoraDevAddr>(&address)) {
    Name gateway = must(zone_domain.prepend("gw"));
    out.push_back(dns::ResourceRecord{owner, dns::RRType::LORA, dns::RRClass::IN, ttl,
                                      dns::LoraData{gateway, *lora}});
  } else if (const auto* zb = std::get_if<net::ZigbeeAddr>(&address)) {
    // No dedicated type in Table 1: ship via the TXT fallback (§2.2).
    out.push_back(dns::make_txt(owner, {"sns:zigbee=" + zb->to_string()}, ttl));
  }
  return out;
}

SpatialZone::SpatialZone(CivicName civic, geo::BoundingBox bounds, IndexKind kind,
                         int hilbert_order, const Name& root)
    : civic_(std::move(civic)),
      domain_(must(civic_.to_domain(root))),
      bounds_(bounds),
      index_(make_index(kind, bounds, hilbert_order)),
      local_zone_(std::make_shared<server::Zone>(domain_, must(domain_.prepend("ns")))),
      global_zone_(std::make_shared<server::Zone>(domain_, must(domain_.prepend("ns")))) {}

Result<Name> SpatialZone::register_device(Device device) {
  // Zero-conf function naming: mic, mic-2, mic-3, …
  auto label = normalize_label(device.function);
  if (!label.ok()) return label.error();
  std::string candidate = label.value();
  int suffix = 1;
  while (true) {
    auto name = domain_.prepend(candidate);
    if (!name.ok()) return name.error();
    if (find_device(name.value()) == nullptr) {
      device.name = std::move(name).value();
      break;
    }
    ++suffix;
    candidate = label.value() + "-" + std::to_string(suffix);
  }

  if (!bounds_.contains(device.position))
    return fail("spatial zone " + domain_.to_string() + ": device position " +
                device.position.to_string() + " outside zone bounds");

  if (auto s = add_device_records(device); !s.ok()) return s.error();

  geo::EntryId id = next_entry_++;
  index_->insert(id, device.position);
  entry_ids_[device.name] = id;
  names_by_entry_[id] = device.name;
  Name assigned = device.name;
  devices_.push_back(std::move(device));
  publish_serial(*local_zone_);
  publish_serial(*global_zone_);
  return assigned;
}

Status SpatialZone::add_device_records(const Device& device) {
  // Local view: every connectivity option + LOC.
  for (const auto& address : device.local_addresses)
    for (auto& rr : records_for_address(device.name, address, domain_))
      if (auto s = local_zone_->add(std::move(rr)); !s.ok()) return s;

  auto loc = dns::LocData::from_degrees(device.position.latitude, device.position.longitude,
                                        device.position.altitude, device.position_accuracy_m);
  if (loc.ok()) {
    if (auto s = local_zone_->add(dns::make_loc(device.name, loc.value())); !s.ok()) return s;
  }

  // Global view: only the globally routable address (if any); the LOC
  // record is public too — the name's existence implies its location.
  if (device.global_address.has_value()) {
    if (auto s = global_zone_->add(dns::make_aaaa(device.name, *device.global_address));
        !s.ok())
      return s;
    if (loc.ok()) {
      if (auto s = global_zone_->add(dns::make_loc(device.name, loc.value())); !s.ok()) return s;
    }
  }
  return util::ok_status();
}

void SpatialZone::remove_device_records(const Device& device) {
  local_zone_->remove_name(device.name);
  global_zone_->remove_name(device.name);
}

Status SpatialZone::deregister_device(const Name& name) {
  auto it = std::find_if(devices_.begin(), devices_.end(),
                         [&](const Device& d) { return d.name == name; });
  if (it == devices_.end()) return fail("spatial zone: unknown device " + name.to_string());
  remove_device_records(*it);
  auto entry = entry_ids_.find(name);
  if (entry != entry_ids_.end()) {
    index_->remove(entry->second);
    names_by_entry_.erase(entry->second);
    entry_ids_.erase(entry);
  }
  devices_.erase(it);
  publish_serial(*local_zone_);
  publish_serial(*global_zone_);
  return util::ok_status();
}

const Device* SpatialZone::find_device(const Name& name) const {
  for (const auto& device : devices_)
    if (device.name == name) return &device;
  return nullptr;
}

std::vector<const Device*> SpatialZone::devices() const {
  std::vector<const Device*> out;
  out.reserve(devices_.size());
  for (const auto& device : devices_) out.push_back(&device);
  return out;
}

std::vector<Name> SpatialZone::devices_in(const geo::BoundingBox& area) const {
  std::vector<Name> out;
  for (geo::EntryId id : index_->query(area)) {
    auto it = names_by_entry_.find(id);
    if (it != names_by_entry_.end()) out.push_back(it->second);
  }
  return out;
}

Status SpatialZone::update_position(const Name& name, const geo::GeoPoint& position) {
  auto it = std::find_if(devices_.begin(), devices_.end(),
                         [&](const Device& d) { return d.name == name; });
  if (it == devices_.end()) return fail("spatial zone: unknown device " + name.to_string());
  if (!bounds_.contains(position))
    return fail("spatial zone: new position outside zone (device must move zones)");

  it->position = position;
  auto entry = entry_ids_.find(name);
  if (entry != entry_ids_.end()) {
    index_->remove(entry->second);
    index_->insert(entry->second, position);
  }

  // Refresh the LOC records (the dynamic-update path, §4.1).
  local_zone_->remove_rrset(name, dns::RRType::LOC);
  global_zone_->remove_rrset(name, dns::RRType::LOC);
  auto loc = dns::LocData::from_degrees(position.latitude, position.longitude, position.altitude,
                                        it->position_accuracy_m);
  if (loc.ok()) {
    if (auto s = local_zone_->add(dns::make_loc(name, loc.value())); !s.ok()) return s;
    if (global_zone_->find(name, dns::RRType::AAAA) != nullptr) {
      if (auto s = global_zone_->add(dns::make_loc(name, loc.value())); !s.ok()) return s;
    }
  }
  publish_serial(*local_zone_);
  publish_serial(*global_zone_);
  return util::ok_status();
}

Status SpatialZone::delegate_child(const Name& child_apex, const Name& ns_name,
                                   net::Ipv4Addr ns_address) {
  for (const auto& zone : {local_zone_, global_zone_}) {
    if (auto s = zone->add(dns::make_ns(child_apex, ns_name)); !s.ok()) return s;
    if (auto s = zone->add(dns::make_a(ns_name, ns_address)); !s.ok()) return s;
  }
  return util::ok_status();
}

}  // namespace sns::core
