#include "core/geodetic.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "util/strings.hpp"

namespace sns::core {

using dns::Message;
using dns::Name;
using dns::RRType;
using util::fail;
using util::Result;

namespace {

constexpr double kScale = 1e6;            // microdegrees
constexpr std::int64_t kLatOffset = 90000000;   // keep encodings unsigned
constexpr std::int64_t kLonOffset = 180000000;

std::int64_t scaled(double degrees, std::int64_t offset) {
  return static_cast<std::int64_t>(std::llround(degrees * kScale)) + offset;
}

double unscaled(std::int64_t value, std::int64_t offset) {
  return static_cast<double>(value - offset) / kScale;
}

Result<std::int64_t> parse_i64(std::string_view text) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    return fail("geo: bad number '" + std::string(text) + "'");
  return value;
}

}  // namespace

Result<Name> encode_geo_query(const geo::BoundingBox& area, const Name& domain) {
  geo::GeoPoint center = area.center();
  double half = std::max(area.height(), area.width()) / 2.0;
  std::string label = "q-" + std::to_string(scaled(center.latitude, kLatOffset)) + "x" +
                      std::to_string(scaled(center.longitude, kLonOffset)) + "x" +
                      std::to_string(static_cast<std::int64_t>(std::llround(half * kScale)));
  auto geo_name = domain.prepend("_geo");
  if (!geo_name.ok()) return geo_name.error();
  return geo_name.value().prepend(label);
}

bool is_geo_query(const Name& qname) {
  return qname.label_count() >= 2 && qname.labels()[1] == "_geo" &&
         qname.labels()[0].starts_with("q-");
}

Result<std::pair<geo::BoundingBox, Name>> parse_geo_query(const Name& qname) {
  if (!is_geo_query(qname)) return fail("geo: not a geo query name");
  std::string_view label = qname.labels()[0];
  label.remove_prefix(2);  // "q-"
  auto parts = util::split(label, 'x');
  if (parts.size() != 3) return fail("geo: expected lat x lon x half");
  auto lat = parse_i64(parts[0]);
  auto lon = parse_i64(parts[1]);
  auto half = parse_i64(parts[2]);
  if (!lat.ok() || !lon.ok() || !half.ok()) return fail("geo: bad query numbers");
  double center_lat = unscaled(lat.value(), kLatOffset);
  double center_lon = unscaled(lon.value(), kLonOffset);
  double half_deg = static_cast<double>(half.value()) / kScale;
  geo::BoundingBox area{center_lat - half_deg, center_lon - half_deg, center_lat + half_deg,
                        center_lon + half_deg};
  // Domain = qname minus the two protocol labels.
  Name domain = qname.parent().parent();
  return std::pair{area, domain};
}

std::optional<Message> GeoResponder::handle(const Message& query) const {
  if (query.questions.size() != 1) return std::nullopt;
  const auto& question = query.questions.front();
  auto parsed = parse_geo_query(question.name);
  if (!parsed.ok()) return std::nullopt;
  const auto& [area, domain] = parsed.value();
  if (!(domain == domain_)) return std::nullopt;

  Message response = dns::make_response(query, dns::Rcode::NoError, true);

  // Devices in this zone intersecting the area -> PTR answers.
  if (zone_ != nullptr)
    for (const auto& device_name : zone_->devices_in(area))
      response.answers.push_back(dns::make_ptr(question.name, device_name, 30));

  // Children whose footprint intersects -> NS referrals (possibly
  // several: the border-ambiguity case of §3.2).
  for (const auto& child : children_) {
    bool overlaps = child.shape.has_value() ? child.shape->intersects(area)
                                            : child.footprint.intersects(area);
    if (!overlaps) continue;
    response.authorities.push_back(dns::make_ns(child.apex, child.ns_name, 300));
    response.additionals.push_back(dns::make_a(child.ns_name, child.ns_address, 300));
  }

  if (response.answers.empty() && response.authorities.empty())
    response.header.rcode = dns::Rcode::NXDomain;  // nothing here
  return response;
}

GeodeticClient::GeodeticClient(net::Network& network, net::NodeId self,
                               const resolver::ServerDirectory& directory, Name root_domain,
                               net::NodeId root_server)
    : network_(network),
      self_(self),
      directory_(directory),
      root_domain_(std::move(root_domain)),
      root_server_(root_server) {}

Result<GeoResolution> GeodeticClient::resolve_area(const geo::BoundingBox& area) {
  GeoResolution out;
  descend(area, root_domain_, root_server_, 0, out);
  std::sort(out.names.begin(), out.names.end());
  out.names.erase(std::unique(out.names.begin(), out.names.end()), out.names.end());
  return out;
}

Result<GeoResolution> GeodeticClient::resolve_point(const geo::GeoPoint& point,
                                                    double half_side_deg) {
  return resolve_area(geo::BoundingBox::around(point, half_side_deg));
}

void GeodeticClient::descend(const geo::BoundingBox& area, const Name& domain,
                             net::NodeId server, int depth, GeoResolution& out) {
  if (depth > 16) return;
  auto qname = encode_geo_query(area, domain);
  if (!qname.ok()) return;
  Message query = dns::make_query(next_id_++, qname.value(), RRType::PTR, false);
  auto wire = query.encode();
  ++out.queries_sent;
  ++out.zones_visited;

  net::TimePoint t0 = network_.clock().now();
  auto exchanged = network_.exchange(self_, server, std::span(wire));
  net::Duration rtt = network_.clock().now() - t0;
  if (!exchanged.ok()) return;
  auto response = Message::decode(std::span(exchanged.value().response));
  if (!response.ok()) return;

  out.latency += rtt;  // sequential component; fan-out handled below

  for (const auto& rr : response.value().answers)
    if (const auto* ptr = std::get_if<dns::PtrData>(&rr.rdata)) out.names.push_back(ptr->target);

  // Follow every referral. Children are pursued "concurrently": charge
  // only the slowest branch's latency on top of what we have so far.
  struct Branch {
    Name apex;
    net::NodeId server;
  };
  std::vector<Branch> branches;
  for (const auto& rr : response.value().authorities) {
    const auto* ns = std::get_if<dns::NsData>(&rr.rdata);
    if (ns == nullptr) continue;
    std::optional<net::NodeId> node;
    for (const auto& glue : response.value().additionals)
      if (glue.name == ns->nameserver)
        if (const auto* a = std::get_if<dns::AData>(&glue.rdata))
          node = directory_.by_address(a->address);
    if (!node.has_value()) node = directory_.by_name(ns->nameserver);
    if (node.has_value()) branches.push_back(Branch{rr.name, *node});
  }
  if (branches.empty()) return;

  out.fanout_max = std::max(out.fanout_max, static_cast<int>(branches.size()));
  net::Duration base = out.latency;
  net::Duration slowest = base;
  for (const auto& branch : branches) {
    out.latency = base;  // each branch starts from the same instant
    descend(area, branch.apex, branch.server, depth + 1, out);
    slowest = std::max(slowest, out.latency);
  }
  out.latency = slowest;
}

}  // namespace sns::core
