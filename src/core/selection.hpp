// selection.hpp — connectivity selection (§2.2).
//
// "a connecting device today needs the user to know which address to
// select or has to perform expensive wireless scans … Having a name
// system act as a registry for these local connectivity options … permits
// connecting devices to choose the most appropriate option before
// committing to any one mechanism."
//
// Given a resolved answer (possibly mixing native extended RRs and TXT
// fallbacks), extract every address and choose the best one under a
// simple policy: most-local first (Bluetooth < Zigbee < audio < LoRa <
// IPv4 < IPv6), or global-capable first for off-site callers.
#pragma once

#include <optional>
#include <vector>

#include "dns/record.hpp"
#include "net/address.hpp"

namespace sns::core {

struct AddressChoice {
  net::AnyAddress address;
  dns::RRType source_type = dns::RRType::A;  // record that carried it
  bool from_txt_fallback = false;
};

enum class SelectionPolicy {
  PreferLocal,   // proximity wins: Bluetooth before IP (§2.2 default)
  PreferGlobal,  // routable wins: IP before link-local radios
};

/// Pull every address out of an answer RRset. Understands A, AAAA,
/// BDADDR, WIFI (yields the IPv4), LORA (yields the DevAddr), DTMF and
/// the "sns:*" TXT fallback encodings; ignores everything else.
std::vector<AddressChoice> extract_addresses(const dns::RRset& records);

/// Best address under the policy; nullopt if the answer carries none.
std::optional<AddressChoice> choose_address(const dns::RRset& records,
                                            SelectionPolicy policy = SelectionPolicy::PreferLocal);

}  // namespace sns::core
