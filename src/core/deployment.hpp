// deployment.hpp — one-call bring-up of a complete SNS world (§4.1-4.2).
//
// An SnsDeployment owns a simulated network plus the full DNS side of
// the paper's architecture:
//   * a root nameserver (".") and the `.loc` TLD nameserver,
//   * one *edge* authoritative nameserver per spatial zone (§4.2:
//     "deploying authoritative nameservers to the edge of the network"),
//     each serving split-horizon views, a GeoResponder for `_geo`
//     queries, and — for room zones — a presence beacon,
//   * parent-zone delegations and a ServerDirectory so iterative
//     resolution works end to end,
//   * clients (stub or iterative) attached anywhere in the topology.
//
// make_white_house_world() builds the exact scenario of Figures 2 and 3
// (Oval Office with mic/speaker/display; 10 Downing Street cabinet room
// with a camera), used by the examples, the integration tests and
// benches E2/E3/E6/E7/E9.
#pragma once

#include <list>
#include <memory>

#include "core/geodetic.hpp"
#include "core/mobility.hpp"
#include "core/presence.hpp"
#include "core/spatial_zone.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resolver/iterative.hpp"
#include "resolver/recursive.hpp"
#include "resolver/stub.hpp"
#include "server/authoritative.hpp"

namespace sns::core {

/// One deployed spatial domain: the zone, its edge nameserver, and its
/// place in the hierarchy.
struct ZoneSite {
  std::unique_ptr<SpatialZone> zone;
  std::unique_ptr<server::AuthoritativeServer> server;
  std::unique_ptr<GeoResponder> geo;
  net::NodeId ns_node = net::kInvalidNode;
  net::Ipv4Addr ns_address{};
  dns::Name ns_name;
  std::optional<std::uint32_t> room;  // set for room-scale zones
  std::unique_ptr<PresenceBeacon> beacon;
  std::string room_secret;
  bool boundary = false;  // NAT/firewall sits at this zone's edge
  ZoneSite* parent = nullptr;
  std::vector<ZoneSite*> children;
};

struct ZoneOptions {
  IndexKind index = IndexKind::Hilbert;
  int hilbert_order = 10;
  bool is_room = false;                    // gets a room id + audio beacon
  // The NAT/firewall boundary of a private network (a building, a
  // campus). Clients attached anywhere behind the same boundary are
  // "internal" to every zone behind it and see internal views (§3.1).
  bool network_boundary = false;
  net::LinkSpec uplink = net::wan_link();  // link to parent nameserver
};

class SnsDeployment {
 public:
  explicit SnsDeployment(std::uint64_t seed);

  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] resolver::ServerDirectory& directory() noexcept { return directory_; }

  /// Deployment-wide observability: every server, resolver and network
  /// exchange built through this deployment reports here.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] net::NodeId root_node() const noexcept { return root_node_; }
  [[nodiscard]] net::NodeId loc_node() const noexcept { return loc_node_; }

  /// Deploy a spatial zone. parent == nullptr puts it directly under
  /// the `.loc` TLD.
  ZoneSite& add_zone(const CivicName& civic, const geo::BoundingBox& bounds, ZoneSite* parent,
                     const ZoneOptions& options = {});

  /// Register a device in a zone. If `attach_node` is true, a simulator
  /// node is created in the zone's room (if any) and linked to the edge
  /// nameserver. Updates the device's `node` field.
  util::Result<dns::Name> add_device(ZoneSite& site, Device device, bool attach_node = true);

  /// Attach a client node near a zone's edge nameserver. `inside` marks
  /// it as part of the zone's network (internal view) and places it in
  /// the room, if the zone has one.
  net::NodeId add_client(const std::string& name, ZoneSite& site, bool inside);

  /// A stub resolver pointed at the zone's edge nameserver, with the
  /// spatial search list pre-configured (§2.1 relative names).
  resolver::StubResolver make_stub(net::NodeId client, ZoneSite& site);

  /// An iterative resolver starting from the root.
  resolver::IterativeResolver make_iterative(net::NodeId client);

  /// Deploy a caching recursive resolver (§4.1 "existing DNS resolver
  /// infrastructure"). When `site` is non-null the service sits on that
  /// zone's LAN — i.e. inside its network boundary, so it resolves
  /// internal views for the internal clients it serves; point stubs of
  /// outside clients at a resolver deployed with site == nullptr.
  net::NodeId add_recursive_resolver(const std::string& name, ZoneSite* site);

  /// A stub pointed at an explicit server node (e.g. a recursive
  /// resolver) with no spatial search list.
  resolver::StubResolver make_plain_stub(net::NodeId client, net::NodeId server);

  /// A geodetic client starting descent at `.loc`.
  GeodeticClient make_geodetic_client(net::NodeId client);

  /// The client context a given zone's server would compute for `node`
  /// (exposed for tests).
  [[nodiscard]] server::ClientContext context_for(net::NodeId node, const ZoneSite& site) const;

  [[nodiscard]] const std::list<ZoneSite>& sites() const noexcept { return sites_; }
  [[nodiscard]] std::uint32_t seconds_now() const;

 private:
  void bind_site(ZoneSite& site);
  net::Ipv4Addr next_address();

  std::uint64_t seed_;
  net::Network network_;
  // Declared after network_: tracer_ reads the network's clock.
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  resolver::ServerDirectory directory_;

  std::shared_ptr<server::Zone> root_zone_;
  std::shared_ptr<server::Zone> loc_zone_;
  std::unique_ptr<server::AuthoritativeServer> root_server_;
  std::unique_ptr<server::AuthoritativeServer> loc_server_;
  std::unique_ptr<GeoResponder> loc_geo_;
  net::NodeId root_node_ = net::kInvalidNode;
  net::NodeId loc_node_ = net::kInvalidNode;

  std::list<ZoneSite> sites_;  // stable addresses
  std::list<resolver::RecursiveResolver> recursives_;
  std::map<net::NodeId, const ZoneSite*> attachment_;  // node -> home zone
  std::map<net::NodeId, std::unique_ptr<PresenceListener>> listeners_;
  std::uint32_t next_room_ = 1;
  std::uint32_t next_host_ = 10;
};

/// The Figure 2/3 world. Hierarchy:
///   .loc -> usa -> dc -> washington -> penn-ave -> 1600 -> oval-office
///        -> uk  -> london -> 10 -> downing-street? (see body)
struct WhiteHouseWorld {
  std::unique_ptr<SnsDeployment> deployment;
  ZoneSite* usa = nullptr;
  ZoneSite* dc = nullptr;
  ZoneSite* washington = nullptr;
  ZoneSite* penn_ave = nullptr;
  ZoneSite* white_house = nullptr;   // "1600"
  ZoneSite* oval_office = nullptr;
  ZoneSite* uk = nullptr;
  ZoneSite* london = nullptr;
  ZoneSite* downing = nullptr;       // "10.downing-street"
  ZoneSite* cabinet_room = nullptr;
  dns::Name mic, speaker, display, camera;
};

WhiteHouseWorld make_white_house_world(std::uint64_t seed);

}  // namespace sns::core
