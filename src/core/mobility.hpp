// mobility.hpp — device mobility over DNS mechanisms (§4.1).
//
// "If a device moves between spatial domains and wants to retain
// communication with its identity at its former location, it can use a
// CNAME record to point to the new location. If a device moves geodetic
// location, updates to the geodetic mapping within a local spatial
// domain could be done using dynamic DNS updates."
#pragma once

#include "core/spatial_zone.hpp"
#include "dns/dnssec.hpp"
#include "resolver/stub.hpp"

namespace sns::core {

struct MoveReport {
  dns::Name old_name;
  dns::Name new_name;
  bool cname_created = false;
};

/// Move a device between spatial domains: deregister from `from`,
/// re-register in `to` (same function, so it gets the equivalent name
/// there), and leave a CNAME at the old name pointing to the new one so
/// existing references keep resolving.
util::Result<MoveReport> move_device(SpatialZone& from, SpatialZone& to,
                                     const dns::Name& device_name);

/// Replace a device in place (§1: "if the device is replaced then the
/// replacement should assume the function of its predecessor"): the
/// name survives; addresses, node and keys change.
util::Result<dns::Name> replace_device(SpatialZone& zone, const dns::Name& device_name,
                                       Device replacement);

/// Send a geodetic move as an RFC 2136 dynamic update over the wire
/// (LOC rewrite, TSIG-signed when `key` is provided), then mirror it in
/// the local SpatialZone index. Exercises the real update path.
util::Result<dns::Rcode> send_geodetic_update(resolver::StubResolver& stub, SpatialZone& zone,
                                              const dns::Name& device_name,
                                              const geo::GeoPoint& position,
                                              const std::optional<dns::TsigKey>& key,
                                              std::uint64_t now_seconds);

}  // namespace sns::core
