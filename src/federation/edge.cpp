#include "federation/edge.hpp"

#include <algorithm>
#include <utility>

#include "dns/rdata.hpp"
#include "dns/serial.hpp"
#include "util/log.hpp"

namespace sns::federation {

using dns::Name;
using dns::RRType;
using util::fail;
using util::Result;
using Clock = std::chrono::steady_clock;

namespace {

std::uint16_t fresh_id() {
  auto ticks = Clock::now().time_since_epoch().count();
  return static_cast<std::uint16_t>((static_cast<std::uint64_t>(ticks) >> 4) & 0xffff);
}

}  // namespace

EdgeNameserver::EdgeNameserver(runtime::ServerRuntime& runtime, EdgeOptions options)
    : runtime_(runtime), options_(std::move(options)) {
  mirrors_.reserve(options_.zones.size());
  for (const auto& apex : options_.zones) {
    Mirror mirror;
    mirror.apex = apex;
    mirror.last_success = Clock::now();
    mirrors_.push_back(std::move(mirror));
  }
}

EdgeNameserver::~EdgeNameserver() { stop(); }

void EdgeNameserver::adopt_soa_timers(Mirror& mirror, const server::ZoneView& view) {
  const auto* set = view.find(view.apex(), RRType::SOA);
  if (set == nullptr || set->empty()) return;
  if (const auto* soa = std::get_if<dns::SoaData>(&set->front().rdata)) {
    mirror.soa_refresh_s = soa->refresh;
    mirror.soa_retry_s = soa->retry;
    mirror.soa_expire_s = soa->expire;
  }
}

Result<std::vector<server::ZoneViewPtr>> EdgeNameserver::initial_sync() {
  std::vector<server::ZoneViewPtr> views;
  views.reserve(mirrors_.size());
  for (auto& mirror : mirrors_) {
    // Serial 0 can never be current, so the primary ships the full
    // zone — over TCP from the start, transfers do not fit a datagram.
    auto response =
        transport::tcp_query(options_.primary, make_ixfr_request(fresh_id(), mirror.apex, 0),
                             options_.query);
    if (!response.ok())
      return fail("initial sync of " + mirror.apex.to_string() + ": " +
                  response.error().message);
    server::Zone scratch(mirror.apex, mirror.apex);
    auto applied = apply_transfer_response(scratch, response.value());
    if (!applied.ok())
      return fail("initial sync of " + mirror.apex.to_string() + ": " +
                  applied.error().message);
    if (applied.value().kind != ApplyKind::Replaced)
      return fail("initial sync of " + mirror.apex.to_string() +
                  ": primary declined the full transfer");
    adopt_soa_timers(mirror, *scratch.view());
    mirror.last_success = Clock::now();
    views.push_back(scratch.view());
  }
  runtime_.metrics().counter("federation.refresh.axfr").add(mirrors_.size());
  return views;
}

std::uint32_t EdgeNameserver::local_serial(const Name& apex) const {
  auto snap = runtime_.snapshot();
  if (snap == nullptr) return 0;
  for (const auto& view : snap->zones)
    if (view->apex() == apex) return view->serial();
  return 0;
}

std::chrono::milliseconds EdgeNameserver::refresh_delay(const Mirror& m) const {
  if (options_.refresh_interval.count() > 0) return options_.refresh_interval;
  return std::chrono::seconds(m.soa_refresh_s);
}

std::chrono::milliseconds EdgeNameserver::retry_delay(const Mirror& m) const {
  if (options_.retry_interval.count() > 0) return options_.retry_interval;
  if (options_.refresh_interval.count() > 0) return options_.refresh_interval;
  return std::chrono::seconds(m.soa_retry_s);
}

std::chrono::milliseconds EdgeNameserver::expire_horizon(const Mirror& m) const {
  if (options_.expire_after.count() > 0) return options_.expire_after;
  return std::chrono::seconds(m.soa_expire_s);
}

util::Status EdgeNameserver::start() {
  if (started_) return fail("edge refresh loop already running");
  if (!runtime_.running()) return fail("edge refresh loop needs a started runtime");
  if (!loop_.valid()) return fail("edge event loop init failed");
  loop_.reset_stop();
  for (std::size_t i = 0; i < mirrors_.size(); ++i) schedule(i, refresh_delay(mirrors_[i]));
  thread_ = std::thread([this] { loop_.run(); });
  started_ = true;
  return util::ok_status();
}

void EdgeNameserver::stop() {
  if (!started_) return;
  loop_.stop();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void EdgeNameserver::poke() {
  if (!started_) return;
  loop_.post([this] {
    for (std::size_t i = 0; i < mirrors_.size(); ++i) refresh(i);
  });
}

void EdgeNameserver::schedule(std::size_t i, std::chrono::milliseconds delay) {
  auto& mirror = mirrors_[i];
  if (mirror.timer != transport::EventLoop::kInvalidTimer) loop_.cancel(mirror.timer);
  mirror.timer = loop_.schedule_after(
      std::chrono::duration_cast<transport::Duration>(delay), [this, i] {
        mirrors_[i].timer = transport::EventLoop::kInvalidTimer;
        refresh(i);
      });
}

void EdgeNameserver::refresh(std::size_t i) {
  auto& mirror = mirrors_[i];
  auto& metrics = runtime_.metrics();
  const std::uint32_t have = local_serial(mirror.apex);

  auto fail_cycle = [&] {
    metrics.counter("federation.refresh.failed").add();
    update_staleness();
    schedule(i, retry_delay(mirror));
  };
  auto success_cycle = [&] {
    mirror.last_success = Clock::now();
    update_staleness();
    schedule(i, refresh_delay(mirror));
  };

  // Cheap probe first: one SOA datagram decides whether a transfer is
  // worth a TCP connection at all.
  auto probe = transport::udp_query(
      options_.primary, dns::make_query(fresh_id(), mirror.apex, RRType::SOA, false),
      options_.query);
  if (!probe.ok() || probe.value().header.rcode != dns::Rcode::NoError) {
    fail_cycle();
    return;
  }
  std::uint32_t remote = have;
  for (const auto& rr : probe.value().answers)
    if (const auto* soa = std::get_if<dns::SoaData>(&rr.rdata)) remote = soa->serial;
  if (!dns::serial_gt(remote, have)) {
    metrics.counter("federation.refresh.current").add();
    success_cycle();
    return;
  }

  auto apply_via_runtime = [&](const dns::Message& response,
                               std::string& error) -> std::optional<ApplyKind> {
    std::optional<ApplyKind> kind;
    runtime_.commit_zones([&](std::vector<std::shared_ptr<server::Zone>>& facades) {
      for (auto& facade : facades) {
        if (!(facade->apex() == mirror.apex)) continue;
        auto applied = apply_transfer_response(*facade, response);
        if (!applied.ok()) {
          error = applied.error().message;
          return false;  // abort: the store keeps the pre-apply snapshot
        }
        kind = applied.value().kind;
        return true;
      }
      error = "runtime no longer serves " + mirror.apex.to_string();
      return false;
    });
    return kind;
  };

  auto transfer = transport::tcp_query(
      options_.primary, make_ixfr_request(fresh_id(), mirror.apex, have), options_.query);
  if (!transfer.ok()) {
    fail_cycle();
    return;
  }
  std::string error;
  auto kind = apply_via_runtime(transfer.value(), error);
  if (!kind) {
    // The delta contradicted local state (missed generation, primary
    // swap): RFC 1995's remedy is one full transfer, not guesswork.
    util::log_info("federation", "edge ", mirror.apex.to_string(),
                   ": incremental apply failed (", error, "), falling back to full transfer");
    auto full = transport::tcp_query(options_.primary,
                                     make_ixfr_request(fresh_id(), mirror.apex, 0),
                                     options_.query);
    if (!full.ok()) {
      fail_cycle();
      return;
    }
    error.clear();
    kind = apply_via_runtime(full.value(), error);
    if (!kind) {
      fail_cycle();
      return;
    }
  }
  switch (*kind) {
    case ApplyKind::Current:
      metrics.counter("federation.refresh.current").add();
      break;
    case ApplyKind::Patched:
      metrics.counter("federation.refresh.ixfr").add();
      break;
    case ApplyKind::Replaced:
      metrics.counter("federation.refresh.axfr").add();
      break;
  }
  success_cycle();
}

void EdgeNameserver::update_staleness() {
  std::size_t stale = 0;
  auto now = Clock::now();
  for (auto& mirror : mirrors_)
    if (now - mirror.last_success > expire_horizon(mirror)) ++stale;
  auto& gauge = runtime_.metrics().gauge("federation.stale_zones");
  gauge.set(static_cast<double>(stale));
  runtime_.set_serving_stale(stale > 0);
}

}  // namespace sns::federation
