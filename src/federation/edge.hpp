// edge.hpp — IXFR-fed edge nameserver with RFC 8767 serve-stale.
//
// The paper's deployment story (§4.1–4.2) puts a nameserver at the
// network edge of every building: it mirrors its zones from a parent
// and keeps answering AR clients when the uplink dies. EdgeNameserver
// is that role bolted onto a ServerRuntime:
//
//   initial_sync()   full transfer of every mirrored zone (blocking,
//                    before serving starts) — the one AXFR a healthy
//                    edge ever performs.
//   refresh loop     a dedicated EventLoop thread polls each zone's
//                    SOA over UDP on its refresh interval; a moved
//                    serial triggers an IXFR over TCP, applied through
//                    the runtime's transactional commit path (so the
//                    answer cache and spatial index rebuild
//                    incrementally from the transfer's touched
//                    owners). An apply that contradicts local state
//                    falls back to one full transfer.
//   serve-stale      when a zone goes unrefreshed past its SOA expire
//                    (or `expire_override`), a compliant secondary
//                    would go dark; the paper's edge must not. The
//                    runtime keeps serving the last good data and
//                    counts every such answer in `federation.
//                    stale_serves` (RFC 8767's spirit: stale data
//                    beats no data for local devices during a
//                    partition).
//
// Counters (on the runtime's control-plane registry):
//   federation.refresh.current   SOA poll found us current
//   federation.refresh.ixfr      delta transfer applied
//   federation.refresh.axfr      full transfer applied
//   federation.refresh.failed    poll or transfer failed
//   federation.stale_zones       gauge: zones currently past expiry
#pragma once

#include <chrono>
#include <thread>
#include <vector>

#include "dns/name.hpp"
#include "federation/ixfr.hpp"
#include "runtime/runtime.hpp"
#include "transport/client.hpp"
#include "transport/event_loop.hpp"

namespace sns::federation {

struct EdgeOptions {
  /// Parent nameserver to mirror from.
  transport::Endpoint primary;
  /// Zone apexes to mirror.
  std::vector<dns::Name> zones;
  /// Poll cadence; 0 honours each zone's SOA refresh field.
  std::chrono::milliseconds refresh_interval{0};
  /// Delay before re-polling after a failure; 0 honours SOA retry.
  std::chrono::milliseconds retry_interval{0};
  /// Staleness horizon; 0 honours each zone's SOA expire field.
  std::chrono::milliseconds expire_after{0};
  /// Timeouts for SOA probes (UDP) and transfers (TCP).
  transport::QueryOptions query;
};

class EdgeNameserver {
 public:
  EdgeNameserver(runtime::ServerRuntime& runtime, EdgeOptions options);
  ~EdgeNameserver();
  EdgeNameserver(const EdgeNameserver&) = delete;
  EdgeNameserver& operator=(const EdgeNameserver&) = delete;

  /// Blocking full transfer of every mirrored zone from the primary —
  /// run this BEFORE runtime.start() and hand the views to it. Fails
  /// if any zone cannot be fetched (an edge with a hole in its mirror
  /// set would serve NXDOMAIN for names it is supposed to own).
  util::Result<std::vector<server::ZoneViewPtr>> initial_sync();

  /// Start the refresh loop thread (runtime must be serving).
  util::Status start();
  void stop();

  /// Re-poll every zone now (snsd forwards SIGHUP here in edge mode).
  void poke();

  [[nodiscard]] bool running() const noexcept { return started_; }

 private:
  struct Mirror {
    dns::Name apex;
    std::uint32_t soa_refresh_s = 3600;
    std::uint32_t soa_retry_s = 600;
    std::uint32_t soa_expire_s = 86400;
    std::chrono::steady_clock::time_point last_success;
    transport::EventLoop::TimerId timer = transport::EventLoop::kInvalidTimer;
  };

  void adopt_soa_timers(Mirror& mirror, const server::ZoneView& view);
  [[nodiscard]] std::uint32_t local_serial(const dns::Name& apex) const;
  void schedule(std::size_t i, std::chrono::milliseconds delay);
  void refresh(std::size_t i);
  void update_staleness();
  [[nodiscard]] std::chrono::milliseconds refresh_delay(const Mirror& m) const;
  [[nodiscard]] std::chrono::milliseconds retry_delay(const Mirror& m) const;
  [[nodiscard]] std::chrono::milliseconds expire_horizon(const Mirror& m) const;

  runtime::ServerRuntime& runtime_;
  EdgeOptions options_;
  std::vector<Mirror> mirrors_;
  transport::EventLoop loop_;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace sns::federation
