// zone_dir.hpp — master-file loading for a federated zone set.
//
// A federated snsd serves a *directory* of `.loc` master files — one
// file per zone, apexes nested to taste (country.loc containing a
// delegation, city zones below it, and so on). The engine's
// deepest-apex matching does the rest: queries land in the most
// specific zone present, and names below a delegation cut in a parent
// zone come back as referrals when the child zone lives elsewhere.
#pragma once

#include <string>
#include <vector>

#include "dns/name.hpp"
#include "server/zone.hpp"

namespace sns::federation {

/// Parse one master file into an immutable view; the apex is the SOA
/// owner (after `origin` is applied as the default $ORIGIN).
util::Result<server::ZoneViewPtr> load_zone_file(const std::string& path,
                                                 const dns::Name& origin);

/// Load every `*.loc` / `*.zone` file under `dir` (sorted by filename
/// for deterministic ordering). Fails on an unreadable directory, any
/// unparsable file (naming the file), a duplicate apex, or an empty
/// zone set — a server with nothing to serve is a deployment error,
/// not a valid state.
util::Result<std::vector<server::ZoneViewPtr>> load_zone_dir(const std::string& dir,
                                                             const dns::Name& origin);

}  // namespace sns::federation
