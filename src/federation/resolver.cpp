#include "federation/resolver.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "dns/rdata.hpp"

namespace sns::federation {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::ResourceRecord;
using dns::RRType;
using transport::Endpoint;
using util::fail;
using util::Result;
using Clock = std::chrono::steady_clock;

namespace {

int ms_remaining(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

/// EDNS policy mirroring the blocking client's udp_form: advertise a
/// large payload unless the caller built their own OPT or disabled it.
Message udp_form(const Message& query, const transport::QueryOptions& options) {
  if (options.edns_udp_size == 0) return query;
  for (const auto& rr : query.additionals)
    if (rr.type == RRType::OPT) return query;
  Message with_edns = query;
  dns::add_edns(with_edns, options.edns_udp_size);
  return with_edns;
}

}  // namespace

bool is_referral(const Message& response) {
  if (response.header.rcode != Rcode::NoError) return false;
  if (response.header.aa || !response.answers.empty()) return false;
  for (const auto& rr : response.authorities)
    if (rr.type == RRType::NS) return true;
  return false;
}

void ReferralCache::insert(const Name& zone, std::vector<Endpoint> servers) {
  if (servers.empty()) return;
  by_zone_[zone] = std::move(servers);
}

std::optional<ReferralCache::Hit> ReferralCache::best_for(const Name& qname) const {
  const std::map<Name, std::vector<Endpoint>>::value_type* best = nullptr;
  for (const auto& entry : by_zone_) {
    if (!qname.is_subdomain_of(entry.first)) continue;
    if (best == nullptr || entry.first.label_count() > best->first.label_count()) best = &entry;
  }
  if (best == nullptr) return std::nullopt;
  return Hit{best->first, best->second};
}

IterativeClient::IterativeClient(std::vector<Endpoint> roots, ResolveOptions options)
    : roots_(std::move(roots)), options_(options) {
  auto ticks = Clock::now().time_since_epoch().count();
  next_id_ = static_cast<std::uint16_t>((static_cast<std::uint64_t>(ticks) >> 4) & 0xffff);
}

Result<IterativeClient::Wave> IterativeClient::race(const std::vector<Endpoint>& servers,
                                                    const Message& query) {
  struct Candidate {
    transport::FdHandle fd;
    Endpoint at;
  };
  std::vector<Candidate> candidates;
  for (const auto& server : servers) {
    transport::FdHandle fd(::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) continue;
    sockaddr_in sa{};
    server.to_sockaddr(sa);
    // connect() scopes each socket to its server, so a readable fd
    // identifies the answering endpoint without recvfrom bookkeeping.
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) continue;
    candidates.push_back(Candidate{std::move(fd), server});
  }
  if (candidates.empty()) return fail("race: no usable candidate sockets");

  auto wire = udp_form(query, options_.query).encode();
  std::string last_error = "no answer";
  for (int attempt = 0; attempt < std::max(options_.query.attempts, 1); ++attempt) {
    for (auto& candidate : candidates)
      (void)::send(candidate.fd.get(), wire.data(), wire.size(), 0);
    auto deadline = Clock::now() + options_.query.timeout;
    for (;;) {
      std::vector<pollfd> pfds;
      pfds.reserve(candidates.size());
      for (const auto& candidate : candidates)
        pfds.push_back(pollfd{candidate.fd.get(), POLLIN, 0});
      int r = ::poll(pfds.data(), pfds.size(), ms_remaining(deadline));
      if (r < 0) {
        if (errno == EINTR) continue;
        return fail(transport::errno_message("poll"));
      }
      if (r == 0) {
        last_error = "timed out racing " + std::to_string(candidates.size()) + " server(s)";
        break;  // next attempt
      }
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if ((pfds[i].revents & POLLIN) == 0) continue;
        std::uint8_t buf[65535];
        ssize_t n;
        do {
          n = ::recv(candidates[i].fd.get(), buf, sizeof(buf), 0);
        } while (n < 0 && errno == EINTR);
        if (n < 0) continue;
        auto response = dns::Message::decode(std::span(buf, static_cast<std::size_t>(n)));
        if (!response.ok() || response.value().header.id != query.header.id ||
            !response.value().header.qr)
          continue;  // garbage or spoofed id: the race keeps running
        Wave wave{std::move(response).value(), candidates[i].at,
                  static_cast<int>(candidates.size())};
        if (wave.response.header.tc) {
          // The winner truncated: the full answer is one RFC 7766
          // exchange away, still from the server that won the race.
          auto over_tcp = transport::tcp_query(wave.winner, query, options_.query);
          if (!over_tcp.ok()) return over_tcp.error();
          wave.response = std::move(over_tcp).value();
        }
        return wave;
      }
    }
  }
  return fail(last_error);
}

std::vector<Endpoint> IterativeClient::referral_endpoints(const Message& response,
                                                          int depth_budget) {
  std::vector<Endpoint> out;
  std::vector<Name> glueless;
  for (const auto& rr : response.authorities) {
    const auto* ns = std::get_if<dns::NsData>(&rr.rdata);
    if (ns == nullptr) continue;
    bool glued = false;
    for (const auto& extra : response.additionals) {
      if (extra.type != RRType::A || !(extra.name == ns->nameserver)) continue;
      if (const auto* a = std::get_if<dns::AData>(&extra.rdata)) {
        out.push_back(Endpoint{a->address, options_.glue_port});
        glued = true;
      }
    }
    if (!glued) glueless.push_back(ns->nameserver);
  }
  // Glueless cuts (the NS target lives outside the parent zone) cost a
  // side resolution; only pay it when no glue came along at all.
  if (out.empty() && depth_budget > 0) {
    for (const auto& target : glueless) {
      auto resolved = resolve_impl(target, RRType::A, nullptr, depth_budget);
      if (!resolved.ok()) continue;
      for (const auto& rr : resolved.value().response.answers)
        if (rr.type == RRType::A && rr.name == target)
          if (const auto* a = std::get_if<dns::AData>(&rr.rdata))
            out.push_back(Endpoint{a->address, options_.glue_port});
      if (!out.empty()) break;
    }
  }
  return out;
}

Result<IterativeAnswer> IterativeClient::resolve(const Name& qname, RRType qtype,
                                                 const TraceFn& trace) {
  return resolve_impl(qname, qtype, trace, options_.max_referrals);
}

Result<IterativeAnswer> IterativeClient::resolve_impl(const Name& qname, RRType qtype,
                                                      const TraceFn& trace, int depth_budget) {
  IterativeAnswer out;
  Name current = qname;
  std::vector<ResourceRecord> cname_chain;
  int cnames = 0;

  Name zone;  // root
  std::vector<Endpoint> servers = roots_;
  bool from_cache = false;
  if (auto hit = cache_.best_for(current)) {
    zone = hit->zone;
    servers = std::move(hit->servers);
    from_cache = true;
    out.started_from_cache = true;
  }

  for (int hop = 0; hop <= options_.max_referrals; ++hop) {
    Message query = dns::make_query(++next_id_, current, qtype, /*recursion_desired=*/false);
    auto t0 = Clock::now();
    auto wave = race(servers, query);
    ++out.waves;
    if (!wave.ok()) {
      // A cache-steered start gets one restart from the roots: the
      // cached servers may simply be gone (that is the partition
      // drill in bench_federation).
      if (from_cache) {
        zone = Name{};
        servers = roots_;
        from_cache = false;
        continue;
      }
      return wave.error();
    }
    out.raced += wave.value().raced;
    const Message& response = wave.value().response;
    const bool referral = is_referral(response);
    if (trace) {
      TraceHop hop_info;
      hop_info.zone = zone;
      hop_info.servers = servers;
      hop_info.winner = wave.value().winner;
      hop_info.from_cache = from_cache;
      hop_info.referral = referral;
      hop_info.response = response;
      hop_info.rtt = std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0);
      trace(hop_info);
    }

    if (referral) {
      const Name* cut = nullptr;
      for (const auto& rr : response.authorities)
        if (rr.type == RRType::NS) {
          cut = &rr.name;
          break;
        }
      // Lame-delegation guards: the cut must descend (strictly) from
      // the zone we asked and still cover the qname, or the fabric is
      // pointing us in a circle.
      if (cut == nullptr || !current.is_subdomain_of(*cut) ||
          !cut->is_subdomain_of(zone) || cut->label_count() <= zone.label_count())
        return fail("lame referral from " + wave.value().winner.to_string() + " for " +
                    current.to_string());
      auto endpoints = referral_endpoints(response, depth_budget - 1);
      if (endpoints.empty())
        return fail("referral to " + cut->to_string() + " carried no resolvable nameserver");
      cache_.insert(*cut, endpoints);
      zone = *cut;
      servers = std::move(endpoints);
      from_cache = false;
      ++out.referrals;
      continue;
    }

    // CNAME restart: accumulate the link, chase the target from the
    // closest cached zone (or the roots).
    if (qtype != RRType::CNAME && response.header.rcode == Rcode::NoError) {
      const ResourceRecord* link = nullptr;
      bool has_qtype = false;
      for (const auto& rr : response.answers) {
        if (!(rr.name == current)) continue;
        if (rr.type == RRType::CNAME) link = &rr;
        if (rr.type == qtype) has_qtype = true;
      }
      if (link != nullptr && !has_qtype) {
        if (++cnames > options_.max_cname) return fail("CNAME chain too long");
        const auto* cname = std::get_if<dns::CnameData>(&link->rdata);
        if (cname == nullptr) return fail("malformed CNAME rdata");
        cname_chain.push_back(*link);
        current = cname->target;
        zone = Name{};
        servers = roots_;
        from_cache = false;
        if (auto hit = cache_.best_for(current)) {
          zone = hit->zone;
          servers = std::move(hit->servers);
          from_cache = true;
        }
        continue;
      }
    }

    // Terminal: authoritative answer, NODATA or NXDOMAIN. Prepend the
    // CNAME chain so the caller sees the full resolution story.
    out.response = response;
    out.response.answers.insert(out.response.answers.begin(), cname_chain.begin(),
                                cname_chain.end());
    return out;
  }
  return fail("referral limit (" + std::to_string(options_.max_referrals) + ") exceeded for " +
              qname.to_string());
}

}  // namespace sns::federation
