#include "federation/ixfr.hpp"

#include <utility>

#include "dns/rdata.hpp"
#include "dns/serial.hpp"

namespace sns::federation {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::ResourceRecord;
using dns::RRType;
using server::ZoneViewPtr;
using util::fail;
using util::Result;

namespace {

const ResourceRecord* apex_soa_of(const server::ZoneView& view) {
  const auto* set = view.find(view.apex(), RRType::SOA);
  return (set != nullptr && !set->empty()) ? &set->front() : nullptr;
}

/// AXFR framing into `response`: SOA first, every other record, SOA
/// repeated last.
void append_full_zone(Message& response, const server::ZoneView& view,
                      const ResourceRecord& soa) {
  response.answers.push_back(soa);
  for (auto& rr : view.all_records())
    if (!(rr.type == RRType::SOA && rr.name == view.apex()))
      response.answers.push_back(std::move(rr));
  response.answers.push_back(soa);
}

}  // namespace

bool is_transfer_query(const Message& query) {
  return !query.questions.empty() && (query.questions.front().type == kIxfrType ||
                                      query.questions.front().type == server::kAxfrType);
}

Message make_ixfr_request(std::uint16_t id, const Name& apex, std::uint32_t have_serial) {
  Message msg;
  msg.header.id = id;
  msg.header.rd = false;
  msg.questions.push_back(dns::Question{apex, kIxfrType, dns::RRClass::IN});
  msg.authorities.push_back(dns::make_soa(apex, apex, have_serial));
  return msg;
}

TransferAnswer serve_transfer_query(const Message& request,
                                    const std::vector<ZoneViewPtr>& zones,
                                    const JournalSet* journals) {
  TransferAnswer out;
  if (request.questions.size() != 1 || !is_transfer_query(request)) {
    out.response = dns::make_response(request, Rcode::FormErr, false);
    return out;
  }
  const auto& question = request.questions.front();

  const server::ZoneView* view = nullptr;
  for (const auto& zone : zones)
    if (zone->apex() == question.name) {
      view = zone.get();
      break;
    }
  if (view == nullptr) {
    out.response = dns::make_response(request, Rcode::NotAuth, false);
    return out;
  }
  const auto* soa = apex_soa_of(*view);
  if (soa == nullptr) {
    out.response = dns::make_response(request, Rcode::ServFail, true);
    return out;
  }

  std::uint32_t have_serial = 0;
  for (const auto& rr : request.authorities)
    if (const auto* have = std::get_if<dns::SoaData>(&rr.rdata)) have_serial = have->serial;

  out.response = dns::make_response(request, Rcode::NoError, true);
  const std::uint32_t current = view->serial();
  if (dns::serial_ge(have_serial, current)) {
    // RFC 1995 §2: a current (or ahead — likely a primary swap)
    // secondary gets just the SOA, never a transfer.
    out.response.answers.push_back(*soa);
    out.kind = TransferKind::UpToDate;
    return out;
  }

  if (question.type == kIxfrType && journals != nullptr) {
    if (auto chain = journals->collect(view->apex(), have_serial, current)) {
      out.response.answers.push_back(*soa);
      for (const auto& delta : *chain) {
        out.response.answers.push_back(delta.old_soa);
        for (const auto& rr : delta.deleted) out.response.answers.push_back(rr);
        out.response.answers.push_back(delta.new_soa);
        for (const auto& rr : delta.added) out.response.answers.push_back(rr);
      }
      out.response.answers.push_back(*soa);
      out.kind = TransferKind::Incremental;
      return out;
    }
  }

  // AXFR request, no journal, or history that no longer reaches back
  // to the secondary's serial: ship the whole zone.
  append_full_zone(out.response, *view, *soa);
  out.kind = TransferKind::Full;
  return out;
}

Result<ApplyOutcome> apply_transfer_response(server::Zone& zone, const Message& response) {
  if (response.header.rcode != Rcode::NoError)
    return fail("transfer: primary answered " + dns::to_string(response.header.rcode));
  const auto& answers = response.answers;
  // Tolerate the legacy empty-NOERROR "already current" shape alongside
  // RFC 1995's single-SOA one.
  if (answers.empty()) return ApplyOutcome{ApplyKind::Current, zone.serial()};
  if (answers.front().type != RRType::SOA || !(answers.front().name == zone.apex()))
    return fail("transfer: response does not start with the apex SOA");
  const auto* target_soa = std::get_if<dns::SoaData>(&answers.front().rdata);
  if (target_soa == nullptr) return fail("transfer: malformed leading SOA");
  const std::uint32_t target = target_soa->serial;
  if (answers.size() == 1) return ApplyOutcome{ApplyKind::Current, zone.serial()};

  if (answers.back().type != RRType::SOA)
    return fail("transfer: missing closing SOA (truncated transfer?)");

  // Second record decides the shape (RFC 1995 §4): an SOA opens a
  // deletion section (incremental); anything else is a full zone. The
  // two-record [SOA, SOA] corner — a zone holding nothing but its SOA
  // — is a degenerate full transfer, not an empty delta.
  const bool incremental =
      answers.size() > 2 && answers[1].type == RRType::SOA && answers[1].name == zone.apex();

  if (!incremental) {
    if (!(answers.front() == answers.back()))
      return fail("transfer: first/last SOA mismatch (truncated transfer?)");
    std::vector<ResourceRecord> records(answers.begin(), answers.end() - 1);
    auto built = server::build_zone_view(zone.apex(), std::move(records));
    if (!built.ok()) return built.error();
    zone.replace(std::move(built).value());
    return ApplyOutcome{ApplyKind::Replaced, zone.serial()};
  }

  // Delta sequence: [SOA(old) deletions... SOA(new) additions...]*
  // between the leading and closing SOA(target).
  std::size_t i = 1;
  const std::size_t end = answers.size() - 1;
  while (i < end) {
    const auto* old_soa = std::get_if<dns::SoaData>(&answers[i].rdata);
    if (old_soa == nullptr || !(answers[i].name == zone.apex()))
      return fail("transfer: delta does not open with an apex SOA");
    if (old_soa->serial != zone.serial())
      return fail("transfer: delta chain expects serial " + std::to_string(old_soa->serial) +
                  ", zone is at " + std::to_string(zone.serial()));
    ++i;

    auto txn = zone.txn();
    while (i < end && answers[i].type != RRType::SOA) {
      if (!txn.remove_record(answers[i]))
        return fail("transfer: delta deletes a record this zone does not hold");
      ++i;
    }
    if (i >= end) return fail("transfer: delta missing its addition SOA");
    const ResourceRecord& new_soa = answers[i];
    ++i;
    // ZoneTxn::add de-duplicates but never replaces: clear the old SOA
    // RRset explicitly so the new serial is the only one.
    txn.remove_rrset(zone.apex(), RRType::SOA);
    if (auto added = txn.add(new_soa); !added.ok()) return added.error();
    while (i < end && answers[i].type != RRType::SOA) {
      if (auto added = txn.add(answers[i]); !added.ok()) return added.error();
      ++i;
    }
    // Serial::Keep — the SOA we just installed is the authority on the
    // zone's new serial; a policy bump on top would desynchronise us
    // from the primary forever.
    zone.commit(std::move(txn), server::ZoneTxn::Serial::Keep);
  }
  if (zone.serial() != target)
    return fail("transfer: delta chain ended at serial " + std::to_string(zone.serial()) +
                ", expected " + std::to_string(target));
  return ApplyOutcome{ApplyKind::Patched, target};
}

}  // namespace sns::federation
