// ixfr.hpp — RFC 1995 incremental zone transfer on the wire.
//
// The serving half answers IXFR (and AXFR) queries against a
// snapshot's immutable zone views plus the runtime's delta journals
// (journal.hpp): a secondary whose serial the journal still covers
// gets the RFC 1995 delta sequence — SOA(new), then per generation a
// deletion section headed by SOA(old) and an addition section headed
// by SOA(next) — and everyone else gets the AXFR-style full zone,
// which is the fallback the RFC demands when the primary's history
// runs out. A secondary that is already current gets the single-SOA
// answer.
//
// The applying half patches a Zone facade delta by delta through the
// ordinary transaction API (each delta is one commit under
// Serial::Keep — the new SOA record carries the serial, and the
// facade's commit log accumulates the touched owners so the runtime
// can rebuild its caches incrementally, exactly as it does for RFC
// 2136 updates). A full transfer replaces the view wholesale. Any
// mismatch between a delta and the local zone (a deletion of a record
// we do not hold, a broken serial chain) fails the apply — the caller
// falls back to AXFR rather than guessing.
#pragma once

#include "dns/message.hpp"
#include "federation/journal.hpp"
#include "server/transfer.hpp"
#include "server/zone.hpp"

namespace sns::federation {

/// QTYPE 251 (IXFR); like server::kAxfrType, deliberately not in the
/// base RRType enum — it is a question type, never a record type.
constexpr dns::RRType kIxfrType = static_cast<dns::RRType>(251);

/// True for the two transfer question types the runtime intercepts
/// ahead of its query engine.
[[nodiscard]] bool is_transfer_query(const dns::Message& query);

/// Build an IXFR request: question (apex, IXFR), secondary's current
/// serial as an SOA in the authority section (RFC 1995 §2). Serial 0
/// asks for everything a fresh secondary needs.
[[nodiscard]] dns::Message make_ixfr_request(std::uint16_t id, const dns::Name& apex,
                                             std::uint32_t have_serial);

enum class TransferKind {
  UpToDate,     // single-SOA answer: secondary is current (or ahead)
  Incremental,  // RFC 1995 delta sequence
  Full,         // AXFR-style full zone (requested, or journal miss)
  Refused,      // malformed question / not authoritative for the apex
};

struct TransferAnswer {
  dns::Message response;
  TransferKind kind = TransferKind::Refused;
};

/// Primary side: answer one IXFR/AXFR query against the served views.
/// `journals` may be null (no history: every behind-serial IXFR
/// degrades to Full). The apex must match a view exactly — transfers
/// are zone-granular, never subtree-granular.
[[nodiscard]] TransferAnswer serve_transfer_query(const dns::Message& request,
                                                  const std::vector<server::ZoneViewPtr>& zones,
                                                  const JournalSet* journals);

enum class ApplyKind {
  Current,   // nothing to do
  Patched,   // delta sequence applied through transactions
  Replaced,  // full zone swapped in
};

struct ApplyOutcome {
  ApplyKind kind = ApplyKind::Current;
  std::uint32_t serial = 0;  // zone serial after the apply
};

/// Secondary side: apply a transfer response to the local facade.
/// Patching commits one transaction per delta (Serial::Keep — the SOA
/// records carry the serial), so the facade's commit log ends up with
/// exactly the owners the transfer touched. Fails without modifying
/// the zone beyond already-committed deltas if the response contradicts
/// local state; callers should then retry with a full transfer.
util::Result<ApplyOutcome> apply_transfer_response(server::Zone& zone,
                                                   const dns::Message& response);

}  // namespace sns::federation
