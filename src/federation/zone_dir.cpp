#include "federation/zone_dir.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "dns/master.hpp"

namespace sns::federation {

using util::fail;
using util::Result;

Result<server::ZoneViewPtr> load_zone_file(const std::string& path, const dns::Name& origin) {
  std::ifstream in(path);
  if (!in) return fail("cannot read zone file " + path);
  std::ostringstream text;
  text << in.rdbuf();

  auto records = dns::parse_master_file(text.str(), origin);
  if (!records.ok()) return fail(path + ": " + records.error().message);

  const dns::ResourceRecord* soa = nullptr;
  for (const auto& rr : records.value())
    if (rr.type == dns::RRType::SOA) {
      soa = &rr;
      break;
    }
  if (soa == nullptr) return fail(path + ": zone file has no SOA record");

  auto built = server::build_zone_view(soa->name, std::move(records).value());
  if (!built.ok()) return fail(path + ": " + built.error().message);
  return built;
}

Result<std::vector<server::ZoneViewPtr>> load_zone_dir(const std::string& dir,
                                                       const dns::Name& origin) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    auto ext = entry.path().extension().string();
    if (ext == ".loc" || ext == ".zone") paths.push_back(entry.path().string());
  }
  if (ec) return fail("cannot read zone directory " + dir + ": " + ec.message());
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) return fail("no *.loc or *.zone files in " + dir);

  std::vector<server::ZoneViewPtr> zones;
  zones.reserve(paths.size());
  for (const auto& path : paths) {
    auto view = load_zone_file(path, origin);
    if (!view.ok()) return view.error();
    for (const auto& existing : zones)
      if (existing->apex() == view.value()->apex())
        return fail(path + ": duplicate apex " + view.value()->apex().to_string());
    zones.push_back(std::move(view).value());
  }
  return zones;
}

}  // namespace sns::federation
