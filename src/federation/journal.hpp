// journal.hpp — per-zone IXFR delta journals fed by commit logs.
//
// RFC 1995 asks the primary to remember how it got from serial N to
// serial N+k so a secondary can catch up without a full transfer. This
// repo already records exactly that: every ZoneTxn commit reports the
// owners it touched (zone.hpp, `Commit::touched`), and the runtime
// drains those logs to rebuild its answer cache incrementally. A
// ZoneJournal is the same information kept a little longer — each
// published generation appends one Delta (the per-owner record set
// difference between the old and new views, computed only over the
// touched owners, so a delta costs O(touched × depth), never O(zone)).
//
// The journal is bounded by total record count. When it overflows —
// or when a wholesale replace() voids the touched enumeration — it
// resets, and serve_transfer falls back to a full AXFR-style answer
// for secondaries older than the remembered horizon. That is the RFC
// 1995 contract: IXFR is an optimisation the primary may decline.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "dns/record.hpp"
#include "server/zone.hpp"

namespace sns::federation {

/// One zone generation step: everything a secondary at `from_serial`
/// must delete and add to reach `to_serial`. The apex SOAs travel
/// separately (they frame the wire sections and are never listed in
/// deleted/added).
struct Delta {
  std::uint32_t from_serial = 0;
  std::uint32_t to_serial = 0;
  dns::ResourceRecord old_soa;
  dns::ResourceRecord new_soa;
  std::vector<dns::ResourceRecord> deleted;
  std::vector<dns::ResourceRecord> added;

  /// Wire records this delta contributes to an IXFR answer (the two
  /// framing SOAs plus the change sets) — the unit the journal budget
  /// counts.
  [[nodiscard]] std::size_t record_count() const noexcept {
    return deleted.size() + added.size() + 2;
  }
};

/// Diff two views of the same zone over the commit's touched owners.
/// Sound under the commit-log contract: any owner whose node changed
/// appears in `touched` (the apex always does when the serial moved).
[[nodiscard]] Delta diff_views(const server::ZoneView& old_view,
                               const server::ZoneView& new_view,
                               const std::vector<dns::Name>& touched);

/// Bounded delta history for one zone. Not thread-safe on its own;
/// JournalSet provides the locking.
class ZoneJournal {
 public:
  /// Budget in wire records across all retained deltas. Matches the
  /// commit log's own enumeration cap (Zone::kMaxTouched): past that a
  /// full transfer is cheaper than shipping the history anyway.
  static constexpr std::size_t kDefaultBudget = 4096;

  explicit ZoneJournal(std::size_t record_budget = kDefaultBudget)
      : budget_(record_budget) {}

  /// Append one generation step; drops the oldest deltas past the
  /// budget (shrinking the horizon, never corrupting the chain).
  void append(Delta delta);

  /// Forget everything (wholesale replace or commit-log overflow: the
  /// touched enumeration is void, so no delta can be trusted).
  void clear();

  /// The contiguous delta chain taking a secondary from `from` to
  /// `to`; nullopt when the journal no longer reaches back to `from`
  /// (caller falls back to a full transfer). `from == to` yields an
  /// empty chain.
  [[nodiscard]] std::optional<std::vector<Delta>> collect(std::uint32_t from,
                                                          std::uint32_t to) const;

  [[nodiscard]] std::size_t size() const noexcept { return deltas_.size(); }
  [[nodiscard]] std::size_t record_load() const noexcept { return records_; }

 private:
  std::deque<Delta> deltas_;
  std::size_t records_ = 0;
  std::size_t budget_;
};

/// The runtime's journal fleet: one ZoneJournal per served apex,
/// written by the snapshot writers (already serialised on the store's
/// writer mutex) and read concurrently by every worker shard serving a
/// transfer query — hence the internal lock. Collection copies the
/// chain out, so no reference escapes the critical section.
class JournalSet {
 public:
  /// Fold one zone commit into its journal. `overflow` (wholesale
  /// replace or an unenumerated commit) clears the journal instead.
  void record_commit(const server::ZoneView& old_view, const server::ZoneView& new_view,
                     const std::vector<dns::Name>& touched, bool overflow);

  /// Drop every journal (full reload published a new zone set).
  void clear();

  [[nodiscard]] std::optional<std::vector<Delta>> collect(const dns::Name& apex,
                                                          std::uint32_t from,
                                                          std::uint32_t to) const;

  [[nodiscard]] std::size_t delta_count(const dns::Name& apex) const;

 private:
  mutable std::mutex mu_;
  std::map<dns::Name, ZoneJournal> journals_;
};

}  // namespace sns::federation
