#include "federation/journal.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "dns/rdata.hpp"

namespace sns::federation {

using dns::Name;
using dns::ResourceRecord;
using dns::RRType;
using server::ZoneView;

namespace {

bool is_apex_soa(const ResourceRecord& rr, const Name& apex) {
  return rr.type == RRType::SOA && rr.name == apex;
}

std::vector<ResourceRecord> records_at(const ZoneView& view, const Name& owner) {
  std::vector<ResourceRecord> out;
  for (auto type : view.types_at(owner)) {
    const auto* set = view.find(owner, type);
    if (set != nullptr) out.insert(out.end(), set->begin(), set->end());
  }
  return out;
}

}  // namespace

Delta diff_views(const ZoneView& old_view, const ZoneView& new_view,
                 const std::vector<Name>& touched) {
  Delta delta;
  delta.from_serial = old_view.serial();
  delta.to_serial = new_view.serial();
  const Name& apex = new_view.apex();
  if (const auto* soa = old_view.find(apex, RRType::SOA); soa != nullptr && !soa->empty())
    delta.old_soa = soa->front();
  if (const auto* soa = new_view.find(apex, RRType::SOA); soa != nullptr && !soa->empty())
    delta.new_soa = soa->front();

  // The caller may hand a concatenated multi-zone touched list (the
  // runtime drains one log per facade but diffs per zone); owners
  // outside this apex belong to sibling zones and duplicates are
  // harmless but wasteful, so screen both out.
  std::set<Name> owners(touched.begin(), touched.end());
  for (const auto& owner : owners) {
    if (!owner.is_subdomain_of(apex)) continue;
    auto old_records = records_at(old_view, owner);
    auto new_records = records_at(new_view, owner);
    for (const auto& rr : old_records) {
      if (is_apex_soa(rr, apex)) continue;
      if (std::find(new_records.begin(), new_records.end(), rr) == new_records.end())
        delta.deleted.push_back(rr);
    }
    for (const auto& rr : new_records) {
      if (is_apex_soa(rr, apex)) continue;
      if (std::find(old_records.begin(), old_records.end(), rr) == old_records.end())
        delta.added.push_back(rr);
    }
  }
  return delta;
}

void ZoneJournal::append(Delta delta) {
  if (delta.from_serial == delta.to_serial) return;
  // A gap means some generation was never journalled (or the chain was
  // cleared); retaining the older history would let collect() splice a
  // chain across the hole, so the hole truncates it.
  if (!deltas_.empty() && deltas_.back().to_serial != delta.from_serial) clear();
  records_ += delta.record_count();
  deltas_.push_back(std::move(delta));
  while (records_ > budget_ && !deltas_.empty()) {
    records_ -= deltas_.front().record_count();
    deltas_.pop_front();
  }
}

void ZoneJournal::clear() {
  deltas_.clear();
  records_ = 0;
}

std::optional<std::vector<Delta>> ZoneJournal::collect(std::uint32_t from,
                                                       std::uint32_t to) const {
  std::vector<Delta> chain;
  if (from == to) return chain;
  std::size_t i = 0;
  while (i < deltas_.size() && deltas_[i].from_serial != from) ++i;
  for (; i < deltas_.size(); ++i) {
    chain.push_back(deltas_[i]);
    if (deltas_[i].to_serial == to) return chain;
  }
  return std::nullopt;
}

void JournalSet::record_commit(const ZoneView& old_view, const ZoneView& new_view,
                               const std::vector<Name>& touched, bool overflow) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& journal = journals_.try_emplace(new_view.apex()).first->second;
  if (overflow) {
    journal.clear();
    return;
  }
  if (old_view.serial() == new_view.serial()) {
    // A commit that changed data without moving the serial (facade
    // one-op edits under Serial::Keep) is invisible to secondaries —
    // any remembered history now lies about what serial N contains.
    if (!touched.empty()) journal.clear();
    return;
  }
  journal.append(diff_views(old_view, new_view, touched));
}

void JournalSet::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  journals_.clear();
}

std::optional<std::vector<Delta>> JournalSet::collect(const Name& apex, std::uint32_t from,
                                                      std::uint32_t to) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = journals_.find(apex);
  if (it == journals_.end()) return std::nullopt;
  return it->second.collect(from, to);
}

std::size_t JournalSet::delta_count(const Name& apex) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = journals_.find(apex);
  return it == journals_.end() ? 0 : it->second.size();
}

}  // namespace sns::federation
